package mystore

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mystore/internal/cluster"
	"mystore/internal/docstore"
)

func startTestCluster(t *testing.T, opts ClusterOptions) *Cluster {
	t.Helper()
	if opts.GossipInterval == 0 {
		opts.GossipInterval = 20 * time.Millisecond
	}
	c, err := StartCluster(opts)
	if err != nil {
		t.Fatalf("StartCluster: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestStartClusterDefaultsAndConvergence(t *testing.T) {
	c := startTestCluster(t, ClusterOptions{})
	if len(c.Nodes()) != 5 {
		t.Fatalf("nodes = %d, want default 5", len(c.Nodes()))
	}
	if !c.WaitConverged(5 * time.Second) {
		t.Fatal("cluster did not converge")
	}
	for i, n := range c.Nodes() {
		if n.Ring().Len() != 5 {
			t.Fatalf("node %d ring = %d members", i, n.Ring().Len())
		}
	}
}

func TestPublicAPICrud(t *testing.T) {
	c := startTestCluster(t, ClusterOptions{Nodes: 5})
	client, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := client.Put(ctx, "scene-1", []byte("<scene/>")); err != nil {
		t.Fatal(err)
	}
	val, err := client.Get(ctx, "scene-1")
	if err != nil || string(val) != "<scene/>" {
		t.Fatalf("Get = %q, %v", val, err)
	}
	if err := client.Delete(ctx, "scene-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Get(ctx, "scene-1"); err == nil {
		t.Fatal("Get after delete succeeded")
	}
}

func TestPublicAPIDocQuery(t *testing.T) {
	c := startTestCluster(t, ClusterOptions{Nodes: 3})
	client, _ := c.Client()
	ctx := context.Background()
	for i := 0; i < 12; i++ {
		doc := Document{
			{Key: "discipline", Value: []string{"physics", "chemistry"}[i%2]},
			{Key: "n", Value: int64(i)},
		}
		if err := client.PutDoc(ctx, fmt.Sprintf("exp-%02d", i), doc); err != nil {
			t.Fatal(err)
		}
	}
	results, err := client.Query(ctx, Filter{
		{Key: "doc.discipline", Value: "physics"},
		{Key: "doc.n", Value: Document{{Key: "$lt", Value: int64(6)}}},
	}, FindOptions{Sort: []SortField{{Field: "self-key"}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("query = %d results, want 3 (n=0,2,4)", len(results))
	}
	doc, err := client.GetDoc(ctx, "exp-03")
	if err != nil || doc.StringOr("discipline", "") != "chemistry" {
		t.Fatalf("GetDoc = %s, %v", doc, err)
	}
}

func TestClusterSurvivesNodeStopAndRestart(t *testing.T) {
	c := startTestCluster(t, ClusterOptions{Nodes: 5})
	client, _ := c.Client()
	ctx := context.Background()
	for i := 0; i < 30; i++ {
		if err := client.Put(ctx, fmt.Sprintf("k%02d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	c.StopNode(2)
	// Writes and reads continue during the outage.
	for i := 0; i < 30; i++ {
		if _, err := client.Get(ctx, fmt.Sprintf("k%02d", i)); err != nil {
			t.Fatalf("Get during outage: %v", err)
		}
	}
	if err := client.Put(ctx, "during-outage", []byte("v")); err != nil {
		t.Fatalf("Put during outage: %v", err)
	}
	c.RestartNode(2)
	time.Sleep(200 * time.Millisecond) // let hints deliver
	if _, err := client.Get(ctx, "during-outage"); err != nil {
		t.Fatalf("Get after recovery: %v", err)
	}
}

func TestClusterAddNode(t *testing.T) {
	c := startTestCluster(t, ClusterOptions{Nodes: 4})
	client, _ := c.Client()
	ctx := context.Background()
	for i := 0; i < 40; i++ {
		client.Put(ctx, fmt.Sprintf("k%02d", i), []byte("v")) //nolint:errcheck
	}
	node, err := c.AddNode()
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if node.Store().C("records").Len() > 0 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if node.Store().C("records").Len() == 0 {
		t.Fatal("new node received no migrated data")
	}
	for i := 0; i < 40; i++ {
		if _, err := client.Get(ctx, fmt.Sprintf("k%02d", i)); err != nil {
			t.Fatalf("Get(%d) after join: %v", i, err)
		}
	}
}

func TestGatewayOverCluster(t *testing.T) {
	c := startTestCluster(t, ClusterOptions{Nodes: 3})
	client, _ := c.Client()
	gw := NewGateway(ClusterBackend{Client: client}, GatewayOptions{CacheServers: 2, Workers: 4})
	defer gw.Close()
	srv := httptest.NewServer(gw.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/data/web-key", "application/octet-stream",
		strings.NewReader("via-http"))
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("POST: %v / %d", err, resp.StatusCode)
	}
	resp.Body.Close()
	resp, err = http.Get(srv.URL + "/data/web-key")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "via-http" {
		t.Fatalf("GET body = %q", body)
	}
	resp, _ = http.Get(srv.URL + "/data/absent-key")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("absent key status = %d, want 404", resp.StatusCode)
	}
}

func TestNetworkedClusterOverTCP(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Boot three TCP nodes; the first is the seed.
	seedNode, err := ListenNode(ctx, "127.0.0.1:0", NodeOptions{GossipInterval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer seedNode.Close()
	seeds := []string{seedNode.Addr()}
	var nodes []*Node
	nodes = append(nodes, seedNode)
	for i := 0; i < 2; i++ {
		n, err := ListenNode(ctx, "127.0.0.1:0", NodeOptions{Seeds: seeds, GossipInterval: 20 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		nodes = append(nodes, n)
	}
	// Recreate the seed's view: its own seeds list points at itself.
	var addrs []string
	for _, n := range nodes {
		addrs = append(addrs, n.Addr())
	}
	// Wait for membership.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if nodes[0].Ring().Len() == 3 && nodes[2].Ring().Len() == 3 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	client, err := Connect(ctx, addrs, ClientOptions{AutoRetry: true})
	if err != nil {
		t.Fatalf("Connect over TCP: %v", err)
	}
	if err := client.Put(ctx, "tcp-key", []byte("tcp-value")); err != nil {
		t.Fatalf("Put over TCP: %v", err)
	}
	val, err := client.Get(ctx, "tcp-key")
	if err != nil || string(val) != "tcp-value" {
		t.Fatalf("Get over TCP = %q, %v", val, err)
	}
}

func TestClusterFacadeEdges(t *testing.T) {
	c := startTestCluster(t, ClusterOptions{Nodes: 2})
	// Out-of-range node operations are harmless no-ops.
	c.StopNode(-1)
	c.StopNode(99)
	c.RestartNode(-1)
	c.RestartNode(99)
	if got := len(c.Addrs()); got != 2 {
		t.Fatalf("Addrs = %d", got)
	}
	// Convergence with a node down: the live subset still converges.
	c.StopNode(1)
	if !c.WaitConverged(3 * time.Second) {
		t.Fatal("single live node should trivially converge")
	}
	// Double close is safe.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSeedCountClamped(t *testing.T) {
	c := startTestCluster(t, ClusterOptions{Nodes: 2, SeedCount: 10})
	if len(c.seeds) != 2 {
		t.Fatalf("seeds = %d, want clamped to 2", len(c.seeds))
	}
}

func TestConnectFailsWithNoNodes(t *testing.T) {
	if _, err := Connect(context.Background(), nil, ClientOptions{}); !errors.Is(err, cluster.ErrNoNodes) {
		t.Fatalf("err = %v", err)
	}
}

func TestWeightedCluster(t *testing.T) {
	c := startTestCluster(t, ClusterOptions{
		Nodes:   3,
		Weights: func(i int) int { return i + 1 }, // capacities 1, 2, 3
	})
	client, _ := c.Client()
	ctx := context.Background()
	for i := 0; i < 300; i++ {
		client.Put(ctx, fmt.Sprintf("w-key-%04d", i), []byte("v")) //nolint:errcheck
	}
	// The heaviest node should hold at least as many records as the
	// lightest (probabilistic, wide margin).
	l0 := c.Nodes()[0].Store().C("records").Len()
	l2 := c.Nodes()[2].Store().C("records").Len()
	if l2 <= l0/2 {
		t.Fatalf("weight-3 node holds %d, weight-1 node %d", l2, l0)
	}
}

func TestLargeObjectOverCluster(t *testing.T) {
	c := startTestCluster(t, ClusterOptions{Nodes: 5})
	client, _ := c.Client()
	ctx := context.Background()
	payload := make([]byte, 2<<20+77) // a guideline-video-sized object
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	m, err := PutLarge(ctx, client, "video/guide-1", bytesReader(payload), LargeObjectConfig{ChunkSize: 256 << 10})
	if err != nil {
		t.Fatalf("PutLarge: %v", err)
	}
	if m.Chunks != 9 {
		t.Fatalf("chunks = %d, want 9", m.Chunks)
	}
	got, err := GetLarge(ctx, client, "video/guide-1")
	if err != nil {
		t.Fatalf("GetLarge: %v", err)
	}
	if len(got) != len(payload) {
		t.Fatalf("GetLarge returned %d bytes, want %d", len(got), len(payload))
	}
	for i := range got {
		if got[i] != payload[i] {
			t.Fatalf("payload differs at byte %d", i)
		}
	}
	st, err := StatLarge(ctx, client, "video/guide-1")
	if err != nil || st.Size != int64(len(payload)) {
		t.Fatalf("StatLarge = %+v, %v", st, err)
	}
	// Chunks survive a node outage (each replicates independently).
	c.StopNode(2)
	if _, err := GetLarge(ctx, client, "video/guide-1"); err != nil {
		t.Fatalf("GetLarge with a node down: %v", err)
	}
	c.RestartNode(2)
	// Distributed queries must not leak internal chunk records: only the
	// manifest key is visible.
	results, err := client.Query(ctx, Filter{}, FindOptions{})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	for _, r := range results {
		if strings.ContainsRune(r.Key, 0) {
			t.Fatalf("chunk key leaked into query results: %q", r.Key)
		}
	}
	if len(results) != 1 || results[0].Key != "video/guide-1" {
		t.Fatalf("query results = %d (%v), want just the manifest", len(results), results)
	}
	if err := DeleteLarge(ctx, client, "video/guide-1"); err != nil {
		t.Fatalf("DeleteLarge: %v", err)
	}
	if _, err := StatLarge(ctx, client, "video/guide-1"); err == nil {
		t.Fatal("manifest survives DeleteLarge")
	}
}

func bytesReader(b []byte) *strings.Reader {
	// strings.Reader avoids bytes import churn; the payload is binary-safe.
	return strings.NewReader(string(b))
}

// recordSnapshot captures a node's local records collection as a printable
// map, so two WAL replays of the same directory can be compared.
func recordSnapshot(t *testing.T, n *Node) map[string]string {
	t.Helper()
	docs, err := n.Store().C("records").Find(docstore.Filter{}, docstore.FindOptions{})
	if err != nil {
		t.Fatalf("scan records: %v", err)
	}
	out := make(map[string]string, len(docs))
	for _, d := range docs {
		key, _ := d.Get("key")
		out[fmt.Sprint(key)] = fmt.Sprint(d)
	}
	return out
}

func TestCrashRestartRecoversAckedWrites(t *testing.T) {
	// A node dies mid-quorum-write (hard crash: process gone, endpoint dark)
	// and a fresh process restarts on the same WAL directory. Every write
	// acknowledged before or during the outage must remain readable, and a
	// second replay of the same WAL must rebuild the identical store.
	dir := t.TempDir()
	c := startTestCluster(t, ClusterOptions{Nodes: 5, DataDir: dir, Durable: true})
	client, err := c.Client()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Writer runs across the crash so some quorum writes are in flight when
	// the node dies; failed Puts are allowed, acked ones are the contract.
	var mu sync.Mutex
	acked := map[string][]byte{}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			key := fmt.Sprintf("crash-%04d", i)
			val := []byte(fmt.Sprintf("v%04d", i))
			opCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
			err := client.Put(opCtx, key, val)
			cancel()
			if err == nil {
				mu.Lock()
				acked[key] = val
				mu.Unlock()
			}
		}
	}()

	time.Sleep(100 * time.Millisecond) // build up a write stream
	if err := c.CrashNode(2); err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond) // writes continue against the hole
	if _, err := c.RestartNodeFresh(2); err != nil {
		t.Fatalf("restart from WAL: %v", err)
	}
	time.Sleep(150 * time.Millisecond)
	close(stop)
	wg.Wait()

	mu.Lock()
	want := make(map[string][]byte, len(acked))
	for k, v := range acked {
		want[k] = v
	}
	mu.Unlock()
	if len(want) == 0 {
		t.Fatal("no writes were acked")
	}
	c.WaitConverged(5 * time.Second)

	// Every acked write must read back with its value; recovery (hint
	// writeback, read repair) gets a bounded window.
	deadline := time.Now().Add(10 * time.Second)
	for key, val := range want {
		for {
			got, err := client.Get(ctx, key)
			if err == nil {
				if !bytes.Equal(got, val) {
					t.Fatalf("key %s = %q, want %q", key, got, val)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("acked key %s unreadable after crash-restart: %v", key, err)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	// Replay-equivalence: crash the recovered node again with no writes in
	// between; a second WAL replay must produce the same records.
	first := recordSnapshot(t, c.Nodes()[2])
	if len(first) == 0 {
		t.Fatal("restarted node recovered no records")
	}
	if err := c.CrashNode(2); err != nil {
		t.Fatal(err)
	}
	node, err := c.RestartNodeFresh(2)
	if err != nil {
		t.Fatal(err)
	}
	second := recordSnapshot(t, node)
	// Background replication may append between the snapshot and the second
	// crash, so the second replay can hold more — but never less or different.
	for k, v := range first {
		if second[k] != v {
			t.Fatalf("replay divergence at %s:\n first: %s\nsecond: %s", k, v, second[k])
		}
	}
}

func TestClusterWithPersistence(t *testing.T) {
	dir := t.TempDir()
	c := startTestCluster(t, ClusterOptions{Nodes: 3, DataDir: dir})
	client, _ := c.Client()
	if err := client.Put(context.Background(), "durable", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Stores persisted under the data dir; the last replication may land
	// just after the quorum return.
	var total int
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		total = 0
		for _, n := range c.Nodes() {
			total += n.Store().C("records").Len()
		}
		if total == 3 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if total != 3 {
		t.Fatalf("replicas = %d", total)
	}
}
