.PHONY: verify test bench chaos obs-smoke

verify:
	./verify.sh

test:
	go test ./...

bench:
	go test -bench=. -benchmem

# chaos runs the resilience gate: randomized fault schedules, crash-restarts
# with WAL recovery, and partitions; exits non-zero on any lost acked write,
# undrained hint queue, or deadline overrun.
chaos:
	go run ./cmd/mystore-bench -quick chaos
	go run ./cmd/mystore-bench -quick -seed 42 chaos

# obs-smoke boots a gateway over an in-process durable cluster, drives
# traffic, and asserts /metrics exports every required family, /stats kept
# its keys, and /debug/traces serves the traffic's traces.
obs-smoke:
	go test -run TestObsSmoke -count=1 -v .
