.PHONY: verify test bench bench-read bench-repair bench-storage bench-consensus chaos obs-smoke

verify:
	./verify.sh

test:
	go test ./...

bench:
	go test -bench=. -benchmem

# bench-read runs the A8 read-path ablation (quorum-first / hedge / coalesce
# vs the seed's wait-for-all read, one slow replica) at a fixed seed and
# records its rows under "read_path" in BENCH_results.json.
bench-read:
	go run ./cmd/mystore-bench -quick -seed 42 -json BENCH_results.json read_path

# bench-repair runs the A9 repair ablation (Merkle anti-entropy + streamed
# transfer vs the seed's flat digests + item-at-a-time movement, one diskless
# crash on a loaded cluster) at a fixed seed and records its rows under
# "repair" in BENCH_results.json.
bench-repair:
	go run ./cmd/mystore-bench -quick -seed 42 -json BENCH_results.json repair

# bench-storage runs the A10 storage ablation (lsm memtable/SSTable engine
# with WAL checkpointing vs the seed's all-in-memory map engine: restart
# cost, resident heap, foreground p99 under rate-limited compaction) at a
# fixed seed and records its rows under "storage" in BENCH_results.json.
bench-storage:
	go run ./cmd/mystore-bench -quick -seed 42 -json BENCH_results.json storage

# bench-consensus runs the A11 consensus ablation (strong consensus-
# replicated puts vs eventual quorum puts, lease-served leader-local strong
# reads vs quorum reads, strong-write downtime across a leader kill) at a
# fixed seed and records its rows under "consensus" in BENCH_results.json.
bench-consensus:
	go run ./cmd/mystore-bench -quick -seed 42 -json BENCH_results.json consensus

# chaos runs the resilience gate: randomized fault schedules, crash-restarts
# with WAL recovery, and partitions; exits non-zero on any lost acked write,
# undrained hint queue, or deadline overrun.
chaos:
	go run ./cmd/mystore-bench -quick chaos
	go run ./cmd/mystore-bench -quick -seed 42 chaos

# obs-smoke boots a gateway over an in-process durable cluster, drives
# traffic, and asserts /metrics exports every required family, /stats kept
# its keys, and /debug/traces serves the traffic's traces.
obs-smoke:
	go test -run TestObsSmoke -count=1 -v .
