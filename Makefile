.PHONY: verify test bench chaos

verify:
	./verify.sh

test:
	go test ./...

bench:
	go test -bench=. -benchmem

# chaos runs the resilience gate: randomized fault schedules, crash-restarts
# with WAL recovery, and partitions; exits non-zero on any lost acked write,
# undrained hint queue, or deadline overrun.
chaos:
	go run ./cmd/mystore-bench -quick chaos
	go run ./cmd/mystore-bench -quick -seed 42 chaos
