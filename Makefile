.PHONY: verify test bench

verify:
	./verify.sh

test:
	go test ./...

bench:
	go test -bench=. -benchmem
