#!/bin/sh
# verify.sh — the repo's tier-1 gate: vet, build, full test suite, and the
# race detector on the write-path packages (docstore, wal, transport, nwr).
# CI and pre-commit both run exactly this.
set -eux

go vet ./...
go build ./...
go test ./...
go test -race ./internal/docstore ./internal/wal ./internal/transport ./internal/nwr
