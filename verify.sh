#!/bin/sh
# verify.sh — the repo's tier-1 gate: vet, build, full test suite, and the
# race detector on the write path (docstore, wal, transport, nwr), the
# resilience-bearing packages (cluster, gossip, cache, dispatch, resilience),
# the CP tier (consensus), the repair path (merkle) and the observability
# packages (metrics, trace).
# CI and pre-commit both run exactly this.
set -eux

go vet ./...
go build ./...
go test ./...
go test -race ./internal/docstore ./internal/lsm ./internal/wal ./internal/transport ./internal/nwr \
	./internal/cluster ./internal/gossip ./internal/cache ./internal/dispatch ./internal/resilience \
	./internal/consensus ./internal/merkle ./internal/metrics ./internal/trace
