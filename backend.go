package mystore

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"mystore/internal/auth"
	"mystore/internal/cache"
	"mystore/internal/cluster"
	"mystore/internal/metrics"
	"mystore/internal/rest"
	"mystore/internal/transport"
)

// ClusterBackend adapts a cluster Client to the REST gateway's Backend
// interface, completing the paper's four-module stack (user interface →
// distribution → cache → data storage).
type ClusterBackend struct {
	Client *Client
}

// Put implements rest.Backend.
func (b ClusterBackend) Put(ctx context.Context, key string, val []byte) error {
	return b.Client.Put(ctx, key, val)
}

// Get implements rest.Backend, translating missing keys to the gateway's
// not-found sentinel.
func (b ClusterBackend) Get(ctx context.Context, key string) ([]byte, error) {
	val, err := b.Client.Get(ctx, key)
	if errors.Is(err, cluster.ErrKeyNotFound) {
		return nil, fmt.Errorf("%w: %q", rest.ErrNotFound, key)
	}
	if transport.IsRemote(err) {
		// The remote coordinator reports unknown keys as an application
		// error; surface them as 404s rather than 502s.
		return nil, fmt.Errorf("%w: %q (%v)", rest.ErrNotFound, key, err)
	}
	return val, err
}

// GetMany implements rest.BatchBackend: the whole key set travels to one
// storage node, which coordinates a batched quorum read with one replica RPC
// per peer.
func (b ClusterBackend) GetMany(ctx context.Context, keys []string) (map[string][]byte, map[string]string, error) {
	return b.Client.GetMany(ctx, keys)
}

// Delete implements rest.Backend.
func (b ClusterBackend) Delete(ctx context.Context, key string) error {
	return b.Client.Delete(ctx, key)
}

// StrongPut implements rest.StrongBackend: the write commits through the
// key's range consensus log before acknowledging.
func (b ClusterBackend) StrongPut(ctx context.Context, key string, val []byte) error {
	return b.Client.StrongPut(ctx, key, val)
}

// StrongGet implements rest.StrongBackend: a leader-local linearizable read.
func (b ClusterBackend) StrongGet(ctx context.Context, key string) ([]byte, error) {
	val, err := b.Client.StrongGet(ctx, key)
	if errors.Is(err, cluster.ErrKeyNotFound) {
		return nil, fmt.Errorf("%w: %q", rest.ErrNotFound, key)
	}
	if transport.IsRemote(err) && strings.Contains(err.Error(), "not found") {
		return nil, fmt.Errorf("%w: %q (%v)", rest.ErrNotFound, key, err)
	}
	return val, err
}

// StrongDelete implements rest.StrongBackend: the tombstone replicates
// through the range's log.
func (b ClusterBackend) StrongDelete(ctx context.Context, key string) error {
	return b.Client.StrongDelete(ctx, key)
}

// GatewayOptions configure a full MyStore HTTP front end.
type GatewayOptions struct {
	// CacheServers and CacheBytes size the cache tier; zero servers
	// disables caching.
	CacheServers int
	CacheBytes   int64
	// Auth, when non-nil, enforces URI signatures.
	Auth *auth.TokenDB
	// Workers sizes the logical-process pool.
	Workers int
	// RequestTimeout caps each request's end-to-end time; the deadline
	// propagates through the backend to the storage nodes. Zero applies the
	// REST layer's default; negative disables the cap.
	RequestTimeout time.Duration
	// Metrics, when non-nil, receives the gateway's and cache tier's metric
	// families and is served at /metrics. Pair it with
	// Cluster.RegisterMetrics to fold node-side metrics into the same page.
	Metrics *MetricsRegistry
	// Trace, when non-nil, collects a per-request trace served at
	// /debug/traces; traces past its slow threshold hit the slow-op log.
	Trace *TraceCollector
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
}

// Gateway bundles the REST gateway with its cache tier.
type Gateway struct {
	*rest.Gateway
	Cache *cache.Tier
}

// NewGateway assembles gateway + cache + backend. Serve it with
// http.ListenAndServe(addr, gw.Handler()).
func NewGateway(backend rest.Backend, opts GatewayOptions) *Gateway {
	var tier *cache.Tier
	if opts.CacheServers > 0 {
		per := opts.CacheBytes
		if per <= 0 {
			per = 64 << 20
		}
		tier = cache.NewTier(opts.CacheServers, per/int64(opts.CacheServers))
	}
	gw := rest.NewGateway(backend, rest.Config{
		Cache:          tier,
		Auth:           opts.Auth,
		Workers:        opts.Workers,
		RequestTimeout: opts.RequestTimeout,
		Metrics:        opts.Metrics,
		Trace:          opts.Trace,
		EnablePprof:    opts.EnablePprof,
	})
	if opts.Metrics != nil {
		if cb, ok := backend.(ClusterBackend); ok {
			if ins, isIns := cb.Client.Transport().(transport.Instrumented); isIns {
				opts.Metrics.Register("mystore_rpc_seconds", "Outbound RPC latency by destination peer.",
					metrics.TypeHistogram, "peer").AddHistogramVec(1e-9, ins.RPCLatency().Snapshots)
			}
		}
	}
	return &Gateway{Gateway: gw, Cache: tier}
}

// NewTokenDB creates an authentication database for gateway options.
func NewTokenDB() *auth.TokenDB { return auth.NewTokenDB(0) }

var _ rest.Backend = ClusterBackend{}
var _ rest.BatchBackend = ClusterBackend{}
var _ rest.StrongBackend = ClusterBackend{}
