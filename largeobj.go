package mystore

import (
	"context"
	"io"

	"mystore/internal/largeobj"
)

// Large-object support: the segmentation of big values (guideline videos
// and the like) the paper lists as future work. A large object is split
// into fixed-size chunk records plus a manifest under the object's key;
// chunks replicate independently across the ring.

// LargeObjectManifest describes a stored large object.
type LargeObjectManifest = largeobj.Manifest

// LargeObjectConfig tunes segmentation; the zero value uses 1 MiB chunks
// with 4-way transfer concurrency.
type LargeObjectConfig = largeobj.Config

// PutLarge streams r into the cluster as a segmented object under key.
func PutLarge(ctx context.Context, c *Client, key string, r io.Reader, cfg LargeObjectConfig) (LargeObjectManifest, error) {
	return largeobj.Upload(ctx, clientStore{c}, key, r, cfg)
}

// GetLarge fetches a segmented object into memory, verifying its checksum.
func GetLarge(ctx context.Context, c *Client, key string) ([]byte, error) {
	return largeobj.Download(ctx, clientStore{c}, key, LargeObjectConfig{})
}

// GetLargeTo streams a segmented object to w, verifying its checksum.
func GetLargeTo(ctx context.Context, c *Client, key string, w io.Writer) (LargeObjectManifest, error) {
	return largeobj.DownloadTo(ctx, clientStore{c}, key, w, LargeObjectConfig{})
}

// StatLarge fetches a segmented object's manifest.
func StatLarge(ctx context.Context, c *Client, key string) (LargeObjectManifest, error) {
	return largeobj.Stat(ctx, clientStore{c}, key)
}

// DeleteLarge removes a segmented object and its chunks.
func DeleteLarge(ctx context.Context, c *Client, key string) error {
	return largeobj.Remove(ctx, clientStore{c}, key, LargeObjectConfig{})
}

// clientStore adapts the cluster client to the largeobj store surface.
type clientStore struct{ c *Client }

func (s clientStore) Put(ctx context.Context, key string, val []byte) error {
	return s.c.Put(ctx, key, val)
}

func (s clientStore) Get(ctx context.Context, key string) ([]byte, error) {
	return s.c.Get(ctx, key)
}

func (s clientStore) Delete(ctx context.Context, key string) error {
	return s.c.Delete(ctx, key)
}
