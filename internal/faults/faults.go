// Package faults implements the failure-injection framework used by the
// evaluation (paper §6.2, Table 2). Each fault type fires independently per
// operation with a configured probability, using a seeded deterministic
// generator so experiments are reproducible:
//
//	type 1  short failure  network exception    p = 0.1
//	type 2  short failure  disk IO error        p = 0.002
//	type 3  short failure  blocking processing  p = 0.002
//	type 4  long failure   node breakdown       p = 0.001
//
// Short failures affect a single operation (the message is lost, the disk
// write errors, the process stalls); a long failure takes the whole node
// down until something external recovers it.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Kind enumerates the paper's fault classes.
type Kind int

// Fault kinds, numbered as in Table 2.
const (
	NetworkException Kind = iota + 1
	DiskIOError
	BlockingProcess
	NodeBreakdown
)

// String names the fault kind as the paper's table does.
func (k Kind) String() string {
	switch k {
	case NetworkException:
		return "network exception"
	case DiskIOError:
		return "disk IO error"
	case BlockingProcess:
		return "blocking processing"
	case NodeBreakdown:
		return "node breakdown"
	default:
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// IsShort reports whether the kind is a short failure (self-recovering).
func (k Kind) IsShort() bool { return k != NodeBreakdown }

// Errors injected by the framework. Injection sites wrap these so callers
// can classify with errors.Is.
var (
	ErrNetwork  = errors.New("faults: injected network exception")
	ErrDiskIO   = errors.New("faults: injected disk IO error")
	ErrBlocking = errors.New("faults: injected blocking processing")
	ErrNodeDown = errors.New("faults: node is broken down")
)

// Err maps a kind to its sentinel error.
func (k Kind) Err() error {
	switch k {
	case NetworkException:
		return ErrNetwork
	case DiskIOError:
		return ErrDiskIO
	case BlockingProcess:
		return ErrBlocking
	case NodeBreakdown:
		return ErrNodeDown
	default:
		return fmt.Errorf("faults: injected fault %d", int(k))
	}
}

// Plan is a probability table: the chance each operation triggers each
// fault kind.
type Plan map[Kind]float64

// PaperTable2 returns the probabilities from the paper's Table 2.
func PaperTable2() Plan {
	return Plan{
		NetworkException: 0.1,
		DiskIOError:      0.002,
		BlockingProcess:  0.002,
		NodeBreakdown:    0.001,
	}
}

// None returns an empty plan (the "no-fault" arm of Fig 16/17).
func None() Plan { return Plan{} }

// Injector rolls the plan's dice per operation and tracks which nodes are
// broken down. It is safe for concurrent use.
type Injector struct {
	mu     sync.Mutex
	rng    *rand.Rand
	plan   Plan
	order  []Kind // deterministic roll order
	down   map[string]bool
	counts map[Kind]int64
	// BlockDelay is how long a blocking-process fault stalls the operation
	// before it proceeds (the paper's "server process being blocked").
	BlockDelay time.Duration
	// NetworkDelay is how long a network exception takes to surface: a
	// failed connection costs its timeout (the paper's connecttimeoutms),
	// it does not fail for free. Applied before the error returns.
	NetworkDelay time.Duration
	// MaxDown caps how many nodes may be broken down at once. The paper's
	// fault run keeps the cluster alive for its whole experiment, which a
	// raw per-operation breakdown probability would not; with the default
	// 1, a breakdown cannot fire while another node is already down.
	MaxDown int
}

// NewInjector returns an injector rolling with the given seed.
func NewInjector(plan Plan, seed int64) *Injector {
	return &Injector{
		rng:          rand.New(rand.NewSource(seed)),
		plan:         plan,
		order:        []Kind{NetworkException, DiskIOError, BlockingProcess, NodeBreakdown},
		down:         make(map[string]bool),
		counts:       make(map[Kind]int64),
		BlockDelay:   20 * time.Millisecond,
		NetworkDelay: 10 * time.Millisecond,
		MaxDown:      1,
	}
}

// Roll decides the fate of one operation on the given node. It returns
// (0, nil) when the operation proceeds normally. A BlockingProcess fault
// stalls for BlockDelay, then lets the operation proceed, returning the
// kind so callers can account for it. A NodeBreakdown marks the node down
// permanently (until Recover) and returns ErrNodeDown; subsequent rolls on
// that node fail immediately.
func (in *Injector) Roll(node string) (Kind, error) {
	in.mu.Lock()
	if in.down[node] {
		in.mu.Unlock()
		return NodeBreakdown, fmt.Errorf("%w: %s", ErrNodeDown, node)
	}
	var fired Kind
	for _, k := range in.order {
		p := in.plan[k]
		if p > 0 && in.rng.Float64() < p {
			fired = k
			break
		}
	}
	if fired == NodeBreakdown {
		if in.MaxDown > 0 && len(in.down) >= in.MaxDown {
			fired = 0 // breakdown budget exhausted; the op proceeds
		} else {
			in.down[node] = true
		}
	}
	if fired != 0 {
		in.counts[fired]++
	}
	blockDelay, netDelay := in.BlockDelay, in.NetworkDelay
	in.mu.Unlock()

	switch fired {
	case 0:
		return 0, nil
	case BlockingProcess:
		time.Sleep(blockDelay)
		return BlockingProcess, nil
	case NetworkException:
		time.Sleep(netDelay)
		return fired, fmt.Errorf("%w (%s)", fired.Err(), node)
	default:
		return fired, fmt.Errorf("%w (%s)", fired.Err(), node)
	}
}

// IsDown reports whether node is broken down.
func (in *Injector) IsDown(node string) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.down[node]
}

// Down lists broken-down nodes.
func (in *Injector) Down() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]string, 0, len(in.down))
	for n, d := range in.down {
		if d {
			out = append(out, n)
		}
	}
	return out
}

// Break forces a node into breakdown (for directed failure tests).
func (in *Injector) Break(node string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.down[node] = true
}

// Recover clears a node's breakdown.
func (in *Injector) Recover(node string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	delete(in.down, node)
}

// Counts returns how many times each kind has fired.
func (in *Injector) Counts() map[Kind]int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[Kind]int64, len(in.counts))
	for k, v := range in.counts {
		out[k] = v
	}
	return out
}
