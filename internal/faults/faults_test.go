package faults

import (
	"errors"
	"math"
	"strings"
	"testing"
	"time"
)

func TestPaperTable2Probabilities(t *testing.T) {
	p := PaperTable2()
	want := map[Kind]float64{
		NetworkException: 0.1,
		DiskIOError:      0.002,
		BlockingProcess:  0.002,
		NodeBreakdown:    0.001,
	}
	for k, v := range want {
		if p[k] != v {
			t.Errorf("PaperTable2[%s] = %v, want %v", k, p[k], v)
		}
	}
}

func TestKindStringsAndShortness(t *testing.T) {
	for k, want := range map[Kind]string{
		NetworkException: "network exception",
		DiskIOError:      "disk IO error",
		BlockingProcess:  "blocking processing",
		NodeBreakdown:    "node breakdown",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if !NetworkException.IsShort() || !DiskIOError.IsShort() || !BlockingProcess.IsShort() {
		t.Error("short failures misclassified")
	}
	if NodeBreakdown.IsShort() {
		t.Error("NodeBreakdown classified as short")
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Error("unknown kind String")
	}
}

func TestKindErrMapping(t *testing.T) {
	if !errors.Is(NetworkException.Err(), ErrNetwork) ||
		!errors.Is(DiskIOError.Err(), ErrDiskIO) ||
		!errors.Is(BlockingProcess.Err(), ErrBlocking) ||
		!errors.Is(NodeBreakdown.Err(), ErrNodeDown) {
		t.Error("Err mapping wrong")
	}
	if Kind(42).Err() == nil {
		t.Error("unknown kind Err = nil")
	}
}

func TestRollFrequencies(t *testing.T) {
	in := NewInjector(Plan{NetworkException: 0.1}, 1)
	in.NetworkDelay = 0 // 50k rolls; the timeout model is tested separately
	const trials = 50000
	fails := 0
	for i := 0; i < trials; i++ {
		if _, err := in.Roll("node-x"); err != nil {
			fails++
		}
	}
	got := float64(fails) / trials
	if math.Abs(got-0.1) > 0.01 {
		t.Fatalf("network exception rate = %.4f, want ~0.1", got)
	}
	if in.Counts()[NetworkException] != int64(fails) {
		t.Fatalf("Counts = %v, fired %d", in.Counts(), fails)
	}
}

func TestRollDeterministicForSeed(t *testing.T) {
	a := NewInjector(PaperTable2(), 42)
	b := NewInjector(PaperTable2(), 42)
	a.BlockDelay, b.BlockDelay = 0, 0
	a.NetworkDelay, b.NetworkDelay = 0, 0
	for i := 0; i < 2000; i++ {
		ka, ea := a.Roll("n")
		kb, eb := b.Roll("n")
		if ka != kb || (ea == nil) != (eb == nil) {
			t.Fatalf("divergence at roll %d: %v/%v vs %v/%v", i, ka, ea, kb, eb)
		}
		if ea != nil && errors.Is(ea, ErrNodeDown) {
			break // both are down from here on; nothing further to compare
		}
	}
}

func TestNodeBreakdownSticks(t *testing.T) {
	in := NewInjector(Plan{NodeBreakdown: 1.0}, 7)
	if _, err := in.Roll("n1"); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("first roll err = %v", err)
	}
	if !in.IsDown("n1") {
		t.Fatal("node not marked down")
	}
	if _, err := in.Roll("n1"); !errors.Is(err, ErrNodeDown) {
		t.Fatal("down node accepted an operation")
	}
	if in.IsDown("n2") {
		t.Fatal("unrelated node marked down")
	}
	down := in.Down()
	if len(down) != 1 || down[0] != "n1" {
		t.Fatalf("Down() = %v", down)
	}
	in.Recover("n1")
	if in.IsDown("n1") {
		t.Fatal("Recover did not clear breakdown")
	}
}

func TestBreakForcesBreakdown(t *testing.T) {
	in := NewInjector(None(), 1)
	in.Break("n")
	if _, err := in.Roll("n"); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("err = %v after Break", err)
	}
}

func TestBlockingProcessDelaysButSucceeds(t *testing.T) {
	in := NewInjector(Plan{BlockingProcess: 1.0}, 1)
	in.BlockDelay = 30 * time.Millisecond
	start := time.Now()
	k, err := in.Roll("n")
	if err != nil {
		t.Fatalf("blocking roll err = %v, want nil (operation proceeds)", err)
	}
	if k != BlockingProcess {
		t.Fatalf("kind = %v, want BlockingProcess", k)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("blocking fault stalled only %v", elapsed)
	}
}

func TestNetworkExceptionCostsItsTimeout(t *testing.T) {
	in := NewInjector(Plan{NetworkException: 1.0}, 1)
	in.NetworkDelay = 30 * time.Millisecond
	start := time.Now()
	_, err := in.Roll("n")
	if !errors.Is(err, ErrNetwork) {
		t.Fatalf("err = %v, want ErrNetwork", err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("network exception surfaced in %v, want ~30ms (the connection timeout)", elapsed)
	}
}

func TestNoneNeverFires(t *testing.T) {
	in := NewInjector(None(), 3)
	for i := 0; i < 10000; i++ {
		if k, err := in.Roll("n"); k != 0 || err != nil {
			t.Fatalf("None plan fired %v/%v", k, err)
		}
	}
}

func TestConcurrentRolls(t *testing.T) {
	in := NewInjector(PaperTable2(), 11)
	in.BlockDelay = 0
	in.NetworkDelay = 0
	done := make(chan struct{})
	for w := 0; w < 8; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				in.Roll("shared-node") //nolint:errcheck
			}
		}(w)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
	// Sanity: the counters are consistent (no torn updates).
	total := int64(0)
	for _, c := range in.Counts() {
		total += c
	}
	if total <= 0 {
		t.Fatal("no faults fired across 8000 rolls of Table 2")
	}
}
