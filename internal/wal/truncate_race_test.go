package wal

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestTruncateAppendRace hammers TruncateBefore against concurrent
// AppendNoWait with a segment size small enough that appenders roll new
// segments continuously while truncators retire old ones. The consensus
// tier runs exactly this shape — proposals appending to the log while
// snapshot-triggered truncation deletes covered segments — so the test
// exists to run under -race and to prove the suffix survives: after the
// dust settles, every record at or above the highest truncation point must
// replay with its exact payload, densely, in LSN order.
func TestTruncateAppendRace(t *testing.T) {
	l, _ := openTestLog(t, Options{SegmentSize: 512})

	const appenders, perAppender = 4, 400
	var (
		mu       sync.Mutex
		appended = map[LSN][]byte{}
		highest  atomic.Int64 // max LSN appended so far
		maxCut   atomic.Int64 // largest upto passed to TruncateBefore
		done     atomic.Bool
	)

	var wg sync.WaitGroup
	for w := 0; w < appenders; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perAppender; i++ {
				rec := []byte(fmt.Sprintf("worker-%d-record-%06d", w, i))
				lsn, err := l.AppendNoWait(rec)
				if err != nil {
					t.Errorf("AppendNoWait: %v", err)
					return
				}
				mu.Lock()
				appended[lsn] = rec
				mu.Unlock()
				for {
					prev := highest.Load()
					if int64(lsn) <= prev || highest.CompareAndSwap(prev, int64(lsn)) {
						break
					}
				}
			}
		}(w)
	}

	// Two truncators chase the appenders, always keeping a tail of records
	// live, interleaved with SegmentCount (which walks the directory the
	// truncators are deleting from).
	var twg sync.WaitGroup
	for tr := 0; tr < 2; tr++ {
		twg.Add(1)
		go func() {
			defer twg.Done()
			for !done.Load() {
				upto := highest.Load() - 64
				if upto > 0 {
					if err := l.TruncateBefore(LSN(upto)); err != nil {
						t.Errorf("TruncateBefore(%d): %v", upto, err)
						return
					}
					for {
						prev := maxCut.Load()
						if upto <= prev || maxCut.CompareAndSwap(prev, upto) {
							break
						}
					}
				}
				if _, err := l.SegmentCount(); err != nil {
					t.Errorf("SegmentCount: %v", err)
					return
				}
				runtime.Gosched()
			}
		}()
	}

	wg.Wait()
	done.Store(true)
	twg.Wait()
	if t.Failed() {
		return
	}
	// One final cut with everything quiet, so the check below exercises a
	// truncation point near the end of the log too.
	cut := LSN(highest.Load() - 64)
	if err := l.TruncateBefore(cut); err != nil {
		t.Fatalf("final TruncateBefore: %v", err)
	}

	survivors := collect(t, l, 1)
	if len(survivors) == 0 {
		t.Fatal("nothing survived truncation")
	}
	var minL LSN = ^LSN(0)
	for lsn := range survivors {
		if lsn < minL {
			minL = lsn
		}
	}
	top := LSN(highest.Load())
	if minL > cut {
		t.Fatalf("truncation removed records >= its cut: first survivor %d > cut %d", minL, cut)
	}
	// The surviving suffix must be dense and byte-exact: TruncateBefore
	// only removes whole segments whose every record is below the cut.
	for lsn := minL; lsn <= top; lsn++ {
		got, ok := survivors[lsn]
		if !ok {
			t.Fatalf("hole in surviving suffix at lsn %d (suffix %d..%d)", lsn, minL, top)
		}
		mu.Lock()
		want := appended[lsn]
		mu.Unlock()
		if !bytes.Equal(got, want) {
			t.Fatalf("lsn %d: replayed %q, appended %q", lsn, got, want)
		}
	}
}
