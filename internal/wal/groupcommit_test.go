package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestGroupCommitDurableAppends checks the basic contract: with
// SyncEveryAppend on, every Append that returned has its record on disk, in
// LSN order, whether the fsyncs were coalesced or not.
func TestGroupCommitDurableAppends(t *testing.T) {
	l, _ := openTestLog(t, Options{SyncEveryAppend: true})
	const writers, perWriter = 16, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	recs := collect(t, l, 1)
	if len(recs) != writers*perWriter {
		t.Fatalf("replayed %d records, want %d", len(recs), writers*perWriter)
	}
	st := l.Stats()
	if st.Appends != writers*perWriter {
		t.Fatalf("Appends = %d, want %d", st.Appends, writers*perWriter)
	}
	if st.Fsyncs == 0 {
		t.Fatal("no fsyncs recorded under SyncEveryAppend")
	}
}

// TestGroupCommitCoalesces drives many concurrent writers and asserts fsyncs
// were actually shared: far fewer fsyncs than appends (the ISSUE acceptance
// bar is fsyncs-per-op < 0.25 at 64 writers).
func TestGroupCommitCoalesces(t *testing.T) {
	l, _ := openTestLog(t, Options{SyncEveryAppend: true})
	const writers, perWriter = 64, 20
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := l.Stats()
	ratio := float64(st.Fsyncs) / float64(st.Appends)
	t.Logf("appends=%d fsyncs=%d ratio=%.3f maxBatch=%d", st.Appends, st.Fsyncs, ratio, st.MaxBatch)
	if ratio >= 0.25 {
		t.Fatalf("fsyncs-per-append = %.3f, want < 0.25 (no coalescing happening)", ratio)
	}
	if st.MaxBatch < 2 {
		t.Fatalf("MaxBatch = %d, want >= 2", st.MaxBatch)
	}
}

// TestGroupCommitDisableSyncsEveryAppend checks the ablation mode keeps the
// seed's one-fsync-per-append behaviour.
func TestGroupCommitDisableSyncsEveryAppend(t *testing.T) {
	l, _ := openTestLog(t, Options{
		SyncEveryAppend: true,
		GroupCommit:     GroupCommit{Disable: true},
	})
	for i := 0; i < 20; i++ {
		if _, err := l.Append([]byte("x")); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	st := l.Stats()
	if st.Fsyncs != 20 {
		t.Fatalf("Fsyncs = %d, want 20 (one per append with group commit disabled)", st.Fsyncs)
	}
}

// TestWaitDurableNoSyncEveryAppend: WaitDurable is a no-op without
// SyncEveryAppend, so the AppendNoWait+WaitDurable split is safe to use
// unconditionally by the docstore.
func TestWaitDurableNoSyncEveryAppend(t *testing.T) {
	l, _ := openTestLog(t, Options{})
	lsn, err := l.AppendNoWait([]byte("x"))
	if err != nil {
		t.Fatalf("AppendNoWait: %v", err)
	}
	if err := l.WaitDurable(lsn); err != nil {
		t.Fatalf("WaitDurable: %v", err)
	}
}

// TestGroupCommitAcrossSegmentRoll: rolling to a new segment mid-stream must
// not lose durability tracking for records in the outgoing segment.
func TestGroupCommitAcrossSegmentRoll(t *testing.T) {
	l, _ := openTestLog(t, Options{SyncEveryAppend: true, SegmentSize: 256})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				if _, err := l.Append([]byte(fmt.Sprintf("w%d-%d-padding-padding", w, i))); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if n, _ := l.SegmentCount(); n < 2 {
		t.Fatalf("SegmentCount = %d, want >= 2 (segment size too big for test)", n)
	}
	recs := collect(t, l, 1)
	if len(recs) != 8*30 {
		t.Fatalf("replayed %d records, want %d", len(recs), 8*30)
	}
}

// TestGroupCommitCrashPrefix is the crash-consistency test: concurrent
// writers append under group commit, then we simulate a crash by copying the
// live segment files and truncating the tail copy at an arbitrary byte
// offset. Replaying the copy must always yield an exact LSN prefix of the
// full log — never a hole, never a reordering, never a corrupt record
// surviving.
func TestGroupCommitCrashPrefix(t *testing.T) {
	l, dir := openTestLog(t, Options{SyncEveryAppend: true})
	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	full := collect(t, l, 1)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("expected a single segment, got %d", len(segs))
	}
	segPath := filepath.Join(dir, segs[0].name)
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}

	// Truncate at a spread of arbitrary offsets, including mid-header and
	// mid-payload cuts, and check the recovered log each time.
	for _, cut := range []int{0, 1, 5, headerSize - 1, headerSize, headerSize + 3,
		len(data) / 7, len(data) / 3, len(data) / 2, len(data) - 11, len(data) - 1, len(data)} {
		if cut < 0 || cut > len(data) {
			continue
		}
		crashDir := t.TempDir()
		if err := os.WriteFile(filepath.Join(crashDir, segs[0].name), data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		rl, err := Open(crashDir, Options{})
		if err != nil {
			t.Fatalf("reopen after cut at %d: %v", cut, err)
		}
		recovered := collect(t, rl, 1)
		rl.Close()

		// Prefix property: recovered LSNs are exactly 1..k for some k, and
		// each record matches the full log byte for byte.
		for lsn := LSN(1); lsn <= LSN(len(recovered)); lsn++ {
			rec, ok := recovered[lsn]
			if !ok {
				t.Fatalf("cut at %d: hole at lsn %d (recovered %d records)", cut, lsn, len(recovered))
			}
			if string(rec) != string(full[lsn]) {
				t.Fatalf("cut at %d: lsn %d = %q, want %q", cut, lsn, rec, full[lsn])
			}
		}
		if len(recovered) > len(full) {
			t.Fatalf("cut at %d: recovered %d records from a %d-record log", cut, len(recovered), len(full))
		}
	}
}

// TestGroupCommitCloseWakesWaiters: closing the log must not strand blocked
// WaitDurable callers.
func TestGroupCommitCloseWakesWaiters(t *testing.T) {
	l, _ := openTestLog(t, Options{SyncEveryAppend: true})
	lsn, err := l.AppendNoWait([]byte("x"))
	if err != nil {
		t.Fatalf("AppendNoWait: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- l.WaitDurable(lsn) }()
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Close fsyncs before closing, so the record is durable: the waiter must
	// return (nil or ErrClosed are both acceptable — it must not hang).
	if err := <-done; err != nil && err != ErrClosed {
		t.Fatalf("WaitDurable after Close: %v", err)
	}
}

func BenchmarkAppendSyncGroupCommit(b *testing.B) {
	dir := b.TempDir()
	l, err := Open(dir, Options{SyncEveryAppend: true})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	rec := make([]byte, 256)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := l.Append(rec); err != nil {
				b.Fatal(err)
			}
		}
	})
	st := l.Stats()
	if st.Appends > 0 {
		b.ReportMetric(float64(st.Fsyncs)/float64(st.Appends), "fsyncs/op")
	}
}

func BenchmarkAppendSyncPerRecord(b *testing.B) {
	dir := b.TempDir()
	l, err := Open(dir, Options{SyncEveryAppend: true, GroupCommit: GroupCommit{Disable: true}})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	rec := make([]byte, 256)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := l.Append(rec); err != nil {
				b.Fatal(err)
			}
		}
	})
	st := l.Stats()
	if st.Appends > 0 {
		b.ReportMetric(float64(st.Fsyncs)/float64(st.Appends), "fsyncs/op")
	}
}
