package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

func openTestLog(t *testing.T, opts Options) (*Log, string) {
	t.Helper()
	dir := t.TempDir()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	return l, dir
}

func collect(t *testing.T, l *Log, from LSN) map[LSN][]byte {
	t.Helper()
	out := map[LSN][]byte{}
	err := l.Replay(from, func(lsn LSN, rec []byte) error {
		out[lsn] = append([]byte(nil), rec...)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return out
}

func TestAppendReplay(t *testing.T) {
	l, _ := openTestLog(t, Options{})
	for i := 0; i < 100; i++ {
		lsn, err := l.Append([]byte(fmt.Sprintf("record-%d", i)))
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		if lsn != LSN(i+1) {
			t.Fatalf("Append lsn = %d, want %d", lsn, i+1)
		}
	}
	recs := collect(t, l, 1)
	if len(recs) != 100 {
		t.Fatalf("replayed %d records, want 100", len(recs))
	}
	if !bytes.Equal(recs[50], []byte("record-49")) {
		t.Fatalf("record 50 = %q", recs[50])
	}
}

func TestReplayFrom(t *testing.T) {
	l, _ := openTestLog(t, Options{})
	for i := 0; i < 20; i++ {
		l.Append([]byte{byte(i)}) //nolint:errcheck
	}
	recs := collect(t, l, 15)
	if len(recs) != 6 {
		t.Fatalf("Replay(15) returned %d records, want 6", len(recs))
	}
	if _, ok := recs[14]; ok {
		t.Fatal("Replay(15) included lsn 14")
	}
}

func TestReplayErrorPropagates(t *testing.T) {
	l, _ := openTestLog(t, Options{})
	l.Append([]byte("a")) //nolint:errcheck
	sentinel := errors.New("stop")
	if err := l.Replay(1, func(LSN, []byte) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("Replay err = %v, want sentinel", err)
	}
}

func TestReopenContinuesLSN(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		l.Append([]byte("x")) //nolint:errcheck
	}
	l.Close()

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	lsn, err := l2.Append([]byte("after-reopen"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 11 {
		t.Fatalf("post-reopen lsn = %d, want 11", lsn)
	}
	recs := map[LSN][]byte{}
	l2.Replay(1, func(l LSN, r []byte) error { recs[l] = append([]byte(nil), r...); return nil }) //nolint:errcheck
	if len(recs) != 11 {
		t.Fatalf("replay after reopen: %d records, want 11", len(recs))
	}
}

func TestSegmentRolling(t *testing.T) {
	l, dir := openTestLog(t, Options{SegmentSize: 256})
	payload := bytes.Repeat([]byte("p"), 100)
	for i := 0; i < 20; i++ {
		if _, err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	n, err := l.SegmentCount()
	if err != nil {
		t.Fatal(err)
	}
	if n < 3 {
		t.Fatalf("SegmentCount = %d, want several after rolling", n)
	}
	recs := collect(t, l, 1)
	if len(recs) != 20 {
		t.Fatalf("replay across segments: %d, want 20", len(recs))
	}
	// Reopen must still see all records and continue numbering.
	l.Close()
	l2, err := Open(dir, Options{SegmentSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.NextLSN(); got != 21 {
		t.Fatalf("NextLSN after reopen = %d, want 21", got)
	}
}

func TestTornTailRepairedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		l.Append([]byte(fmt.Sprintf("rec-%d", i))) //nolint:errcheck
	}
	l.Close()

	// Simulate a crash mid-append: append garbage and a half-written record.
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if len(segs) != 1 {
		t.Fatalf("segments = %v", segs)
	}
	f, err := os.OpenFile(segs[0], os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{recordMagic, 1, 2}) //nolint:errcheck // torn header
	f.Close()

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	defer l2.Close()
	if got := l2.NextLSN(); got != 6 {
		t.Fatalf("NextLSN = %d, want 6 (torn tail dropped)", got)
	}
	// The log must be appendable and replayable after repair.
	if _, err := l2.Append([]byte("recovered")); err != nil {
		t.Fatal(err)
	}
	recs := map[LSN][]byte{}
	l2.Replay(1, func(l LSN, r []byte) error { recs[l] = append([]byte(nil), r...); return nil }) //nolint:errcheck
	if len(recs) != 6 || !bytes.Equal(recs[6], []byte("recovered")) {
		t.Fatalf("post-repair replay = %d records", len(recs))
	}
}

func TestCorruptMiddleStopsAtCorruption(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		l.Append(bytes.Repeat([]byte{byte(i)}, 32)) //nolint:errcheck
	}
	l.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	data, _ := os.ReadFile(segs[0])
	data[headerSize+40] ^= 0xff        // flip a payload byte in record 2
	os.WriteFile(segs[0], data, 0o644) //nolint:errcheck

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	// Only record 1 survives; records 2 and 3 are discarded.
	if got := l2.NextLSN(); got != 2 {
		t.Fatalf("NextLSN = %d, want 2 after corruption", got)
	}
}

func TestTruncateBefore(t *testing.T) {
	l, _ := openTestLog(t, Options{SegmentSize: 128})
	payload := bytes.Repeat([]byte("z"), 64)
	var last LSN
	for i := 0; i < 12; i++ {
		var err error
		if last, err = l.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := l.SegmentCount()
	if before < 4 {
		t.Fatalf("segments before truncate = %d, want several", before)
	}
	if err := l.TruncateBefore(last); err != nil {
		t.Fatal(err)
	}
	after, _ := l.SegmentCount()
	if after >= before {
		t.Fatalf("TruncateBefore removed nothing: %d -> %d", before, after)
	}
	// Remaining records still replay, starting somewhere ≤ last.
	count := 0
	l.Replay(1, func(LSN, []byte) error { count++; return nil }) //nolint:errcheck
	if count == 0 {
		t.Fatal("no records remain after truncation")
	}
}

func TestRecordTooBig(t *testing.T) {
	l, _ := openTestLog(t, Options{MaxRecordSize: 10})
	if _, err := l.Append(bytes.Repeat([]byte("a"), 11)); !errors.Is(err, ErrRecordTooBig) {
		t.Fatalf("err = %v, want ErrRecordTooBig", err)
	}
}

func TestClosedErrors(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := l.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after close: %v", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Sync after close: %v", err)
	}
	if err := l.Replay(1, func(LSN, []byte) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("Replay after close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func TestConcurrentAppends(t *testing.T) {
	l, _ := openTestLog(t, Options{})
	var wg sync.WaitGroup
	const workers, per = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if _, err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	recs := collect(t, l, 1)
	if len(recs) != workers*per {
		t.Fatalf("replayed %d, want %d", len(recs), workers*per)
	}
	// LSNs must be dense.
	for i := 1; i <= workers*per; i++ {
		if _, ok := recs[LSN(i)]; !ok {
			t.Fatalf("missing lsn %d", i)
		}
	}
}

func TestSyncEveryAppend(t *testing.T) {
	l, _ := openTestLog(t, Options{SyncEveryAppend: true})
	if _, err := l.Append([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTripProperty(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var written [][]byte
	f := func(rec []byte) bool {
		if rec == nil {
			rec = []byte{}
		}
		if _, err := l.Append(rec); err != nil {
			return false
		}
		written = append(written, append([]byte(nil), rec...))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
	i := 0
	err = l.Replay(1, func(_ LSN, rec []byte) error {
		if !bytes.Equal(rec, written[i]) {
			return fmt.Errorf("record %d mismatch", i)
		}
		i++
		return nil
	})
	if err != nil || i != len(written) {
		t.Fatalf("replay: err=%v, replayed %d of %d", err, i, len(written))
	}
}

func BenchmarkAppend1KB(b *testing.B) {
	dir := b.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := bytes.Repeat([]byte("x"), 1024)
	b.SetBytes(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(payload); err != nil {
			b.Fatal(err)
		}
	}
}
