// Package wal implements the write-ahead log that gives the document store
// durable, crash-recoverable persistence. The log is a sequence of CRC32-
// checked records spread across fixed-size segment files; on open, a torn
// tail (a partially written final record from a crash) is detected and
// discarded, and everything before it replays.
//
// Record layout on disk:
//
//	magic   byte   (0xA5)
//	crc32   uint32 (little endian, over length+payload)
//	length  uint32 (little endian)
//	payload length bytes
//
// Segment files are named wal-<firstLSN, 16 hex digits>.seg. LSNs are
// 1-based, dense, monotonically increasing record sequence numbers.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"mystore/internal/metrics"
)

const (
	recordMagic   = 0xA5
	headerSize    = 1 + 4 + 4
	segmentSuffix = ".seg"
	segmentPrefix = "wal-"
)

// LSN is a log sequence number: the 1-based index of a record in the log.
type LSN uint64

// Options configure a Log.
type Options struct {
	// SegmentSize is the byte size at which a new segment file is started.
	// Zero means 8 MiB.
	SegmentSize int64
	// SyncEveryAppend makes every append durable before it returns. The
	// experiments run with this off (matching MongoDB 1.6's default
	// non-durable writes); the crash-recovery tests and durable deployments
	// turn it on. With it on, concurrent appenders share fsyncs through the
	// group-commit protocol unless GroupCommit.Disable reverts to one fsync
	// per append.
	SyncEveryAppend bool
	// MaxRecordSize bounds one record. Zero means 32 MiB.
	MaxRecordSize int
	// GroupCommit tunes fsync coalescing under SyncEveryAppend.
	GroupCommit GroupCommit
}

// GroupCommit configures the commit protocol used when SyncEveryAppend is
// on: appenders write their record under the log lock, then wait for a
// sync leader to make it durable. The first waiter becomes leader and
// issues one fsync covering every record appended so far, so N concurrent
// appenders cost ~1 fsync instead of N.
type GroupCommit struct {
	// MaxBatch is the waiter count that makes a leader sync immediately
	// instead of waiting MaxDelay for more followers. Zero means 64.
	MaxBatch int
	// MaxDelay is how long a leader waits for more appenders to join its
	// cohort before syncing. Zero means no wait: the leader syncs at once,
	// batching whatever accumulated while the previous fsync ran (the
	// classic self-clocking group commit, and the right default — an idle
	// log gets per-append latency, a busy log gets big batches).
	MaxDelay time.Duration
	// Disable reverts to the seed behaviour: one fsync per append inside
	// the append lock (kept for the write-path ablation bench).
	Disable bool
}

func (o Options) withDefaults() Options {
	if o.SegmentSize <= 0 {
		o.SegmentSize = 8 << 20
	}
	if o.MaxRecordSize <= 0 {
		o.MaxRecordSize = 32 << 20
	}
	if o.GroupCommit.MaxBatch <= 0 {
		o.GroupCommit.MaxBatch = 64
	}
	return o
}

// Errors returned by the log.
var (
	ErrClosed       = errors.New("wal: log is closed")
	ErrRecordTooBig = errors.New("wal: record exceeds MaxRecordSize")
	ErrCorrupt      = errors.New("wal: corrupt record")
)

// Log is an append-only segmented write-ahead log. It is safe for concurrent
// use.
type Log struct {
	mu     sync.Mutex
	dir    string
	opts   Options
	file   *os.File // active segment
	size   int64    // bytes written to active segment
	next   LSN      // LSN the next appended record will receive
	closed bool

	// Group-commit state. Lock order: mu may be taken with syncMu NOT held
	// by the same goroutine (a sync leader releases syncMu before touching
	// mu); syncMu may be taken while holding mu (markDurable from
	// rollSegment/Close). Never the reverse nesting.
	syncMu    sync.Mutex
	syncCond  *sync.Cond
	syncedLSN LSN   // every record with lsn <= syncedLSN is on stable storage
	syncErr   error // a failed fsync poisons the log (its coverage is unknown)
	syncing   bool  // a leader is currently running fsync
	waiting   int   // appenders blocked in waitDurable

	// Commit metrics, exposed via Stats: fsyncs-per-append and mean batch
	// size are the two numbers the group-commit ablation tracks.
	appends     metrics.Counter
	fsyncs      metrics.Counter
	batches     metrics.Counter // fsyncs that covered >= 1 new record
	batchedRecs metrics.Counter // records made durable by those fsyncs
	maxBatch    int64           // largest single-fsync batch, guarded by syncMu

	// Production distributions behind /metrics: how long each fsync took and
	// how many records it covered.
	fsyncDur  *metrics.BucketedHistogram
	batchSize *metrics.BucketedHistogram
}

// FsyncLatency exposes the per-fsync duration histogram for registry
// registration.
func (l *Log) FsyncLatency() *metrics.BucketedHistogram { return l.fsyncDur }

// BatchSizes exposes the records-per-group-fsync histogram for registry
// registration.
func (l *Log) BatchSizes() *metrics.BucketedHistogram { return l.batchSize }

// Open opens (creating if needed) the log in dir, scans existing segments,
// truncates a torn tail if one exists, and positions the log for appending.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create dir: %w", err)
	}
	l := &Log{
		dir:       dir,
		opts:      opts,
		next:      1,
		fsyncDur:  metrics.NewBucketedHistogram(nil),
		batchSize: metrics.NewBucketedHistogram(metrics.DefaultSizeBounds()),
	}
	l.syncCond = sync.NewCond(&l.syncMu)

	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		if err := l.rollSegment(); err != nil {
			return nil, err
		}
		return l, nil
	}
	// Count records in all but the last segment, then scan (and possibly
	// repair) the last.
	for _, s := range segs[:len(segs)-1] {
		n, _, err := scanSegment(filepath.Join(dir, s.name), opts.MaxRecordSize)
		if err != nil {
			return nil, fmt.Errorf("wal: segment %s: %w", s.name, err)
		}
		l.next = s.first + LSN(n)
	}
	last := segs[len(segs)-1]
	n, validBytes, err := scanSegment(filepath.Join(dir, last.name), opts.MaxRecordSize)
	if err != nil {
		return nil, fmt.Errorf("wal: segment %s: %w", last.name, err)
	}
	l.next = last.first + LSN(n)

	f, err := os.OpenFile(filepath.Join(dir, last.name), os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open segment: %w", err)
	}
	if err := f.Truncate(validBytes); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: repair torn tail: %w", err)
	}
	if _, err := f.Seek(validBytes, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	l.file = f
	l.size = validBytes
	l.syncedLSN = l.next - 1 // everything recovered from disk is durable
	return l, nil
}

type segmentInfo struct {
	name  string
	first LSN
}

func listSegments(dir string) ([]segmentInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: read dir: %w", err)
	}
	var segs []segmentInfo
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segmentPrefix) || !strings.HasSuffix(name, segmentSuffix) {
			continue
		}
		hexPart := strings.TrimSuffix(strings.TrimPrefix(name, segmentPrefix), segmentSuffix)
		first, err := strconv.ParseUint(hexPart, 16, 64)
		if err != nil {
			continue // foreign file, ignore
		}
		segs = append(segs, segmentInfo{name: name, first: LSN(first)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	return segs, nil
}

// scanSegment counts complete valid records and returns the byte offset just
// past the last valid record. A torn or corrupt tail simply ends the scan.
func scanSegment(path string, maxRecord int) (records int, validBytes int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	var off int64
	hdr := make([]byte, headerSize)
	var payload []byte
	for {
		if _, err := io.ReadFull(f, hdr); err != nil {
			return records, off, nil // clean EOF or torn header: stop here
		}
		if hdr[0] != recordMagic {
			return records, off, nil
		}
		crc := binary.LittleEndian.Uint32(hdr[1:5])
		length := int(binary.LittleEndian.Uint32(hdr[5:9]))
		if length < 0 || length > maxRecord {
			return records, off, nil
		}
		if cap(payload) < length {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(f, payload); err != nil {
			return records, off, nil // torn payload
		}
		if crc32.ChecksumIEEE(append(hdr[5:9:9], payload...)) != crc {
			return records, off, nil // corrupt record ends the log
		}
		records++
		off += int64(headerSize + length)
	}
}

func segmentName(first LSN) string {
	return fmt.Sprintf("%s%016x%s", segmentPrefix, uint64(first), segmentSuffix)
}

func (l *Log) rollSegment() error {
	if l.file != nil {
		if err := l.file.Sync(); err != nil {
			return err
		}
		if err := l.file.Close(); err != nil {
			return err
		}
		l.markDurable(l.next - 1) // the outgoing segment is fully synced
	}
	f, err := os.OpenFile(filepath.Join(l.dir, segmentName(l.next)), os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	l.file = f
	l.size = 0
	return nil
}

// Append writes one record and returns its LSN. With SyncEveryAppend it
// does not return until the record is on stable storage; concurrent
// appenders share fsyncs through the group-commit protocol (one leader
// syncs for the whole cohort) unless GroupCommit.Disable is set.
func (l *Log) Append(rec []byte) (LSN, error) {
	lsn, err := l.AppendNoWait(rec)
	if err != nil {
		return 0, err
	}
	if l.opts.SyncEveryAppend && !l.opts.GroupCommit.Disable {
		if err := l.WaitDurable(lsn); err != nil {
			return 0, err
		}
	}
	return lsn, nil
}

// AppendNoWait writes one record and returns its LSN without waiting for
// durability. Callers that must not hold their own serialization lock
// across an fsync (the docstore's write path) append with this inside the
// lock and call WaitDurable after releasing it, which is what lets many
// writers commit under one fsync.
func (l *Log) AppendNoWait(rec []byte) (LSN, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if len(rec) > l.opts.MaxRecordSize {
		return 0, ErrRecordTooBig
	}
	if l.size >= l.opts.SegmentSize {
		if err := l.rollSegment(); err != nil {
			return 0, err
		}
	}
	buf := make([]byte, headerSize+len(rec))
	buf[0] = recordMagic
	binary.LittleEndian.PutUint32(buf[5:9], uint32(len(rec)))
	copy(buf[headerSize:], rec)
	crc := crc32.ChecksumIEEE(buf[5:])
	binary.LittleEndian.PutUint32(buf[1:5], crc)
	if _, err := l.file.Write(buf); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.appends.Inc()
	if l.opts.SyncEveryAppend && l.opts.GroupCommit.Disable {
		// Seed behaviour: one fsync per record, inside the append lock.
		start := time.Now()
		if err := l.file.Sync(); err != nil {
			return 0, fmt.Errorf("wal: sync: %w", err)
		}
		l.fsyncDur.ObserveDuration(time.Since(start))
		l.batchSize.Observe(1)
		l.fsyncs.Inc()
		l.markDurable(l.next)
	}
	lsn := l.next
	l.next++
	l.size += int64(len(buf))
	return lsn, nil
}

// WaitDurable blocks until the record at lsn is on stable storage. Without
// SyncEveryAppend it is a no-op (the caller opted out of durability). The
// first waiter becomes the sync leader: it optionally waits MaxDelay for
// followers to accumulate (longer cohorts per fsync), issues one fsync
// covering every record appended so far, and wakes everyone it covered.
func (l *Log) WaitDurable(lsn LSN) error {
	if !l.opts.SyncEveryAppend {
		return nil
	}
	gc := l.opts.GroupCommit
	l.syncMu.Lock()
	l.waiting++
	for {
		if l.syncedLSN >= lsn {
			l.waiting--
			l.syncMu.Unlock()
			return nil
		}
		if l.syncErr != nil {
			err := l.syncErr
			l.waiting--
			l.syncMu.Unlock()
			return err
		}
		if !l.syncing {
			l.leaderSync(gc)
			continue // re-check under syncMu (leaderSync re-acquired it)
		}
		l.syncCond.Wait()
	}
}

// leaderSync runs one group fsync. Called with syncMu held; returns with
// syncMu held. The leader releases syncMu while it touches the file so
// followers can enqueue, and — crucially — runs the fsync itself off the
// append lock, so writers keep appending while the flush is in flight and
// the next leader's cohort grows to cover them (the self-clocking batch).
func (l *Log) leaderSync(gc GroupCommit) {
	l.syncing = true
	delay := gc.MaxDelay > 0 && l.waiting < gc.MaxBatch
	l.syncMu.Unlock()
	if delay {
		time.Sleep(gc.MaxDelay)
	}
	l.mu.Lock()
	f := l.file
	target := l.next - 1
	closed := l.closed
	l.mu.Unlock()

	var err error
	if closed {
		// Close() syncs before closing the file, so anything appended
		// before it is already durable; markDurable in Close covers those
		// waiters. Anyone left waiting raced Close and loses.
		err = ErrClosed
	} else {
		// fsync outside l.mu: concurrent appends may land past target and
		// be flushed early, which is harmless — syncedLSN only advances to
		// target, a lower bound on what this fsync covered.
		start := time.Now()
		err = f.Sync()
		if err == nil {
			l.fsyncDur.ObserveDuration(time.Since(start))
		}
	}

	l.syncMu.Lock()
	l.syncing = false
	if err != nil && target <= l.syncedLSN {
		// The fd was fsynced and closed under us by a segment roll or
		// Close; both mark their coverage durable first, so target is safe.
		err = nil
	} else if err == nil {
		l.fsyncs.Inc()
		if target > l.syncedLSN {
			batch := int64(target - l.syncedLSN)
			l.batches.Inc()
			l.batchedRecs.Add(batch)
			l.batchSize.Observe(batch)
			if batch > l.maxBatch {
				l.maxBatch = batch
			}
			l.syncedLSN = target
		}
	}
	if err != nil {
		if !errors.Is(err, ErrClosed) {
			err = fmt.Errorf("wal: sync: %w", err)
		}
		if l.syncErr == nil {
			l.syncErr = err
		}
	}
	l.syncCond.Broadcast()
}

// markDurable records that every LSN <= upto is on stable storage and wakes
// waiters. Callers hold l.mu (rollSegment, Close) or nothing (Sync).
func (l *Log) markDurable(upto LSN) {
	l.syncMu.Lock()
	if upto > l.syncedLSN {
		l.syncedLSN = upto
	}
	l.syncCond.Broadcast()
	l.syncMu.Unlock()
}

// Sync flushes the active segment to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	start := time.Now()
	err := l.file.Sync()
	if err == nil {
		l.fsyncDur.ObserveDuration(time.Since(start))
		l.fsyncs.Inc()
		l.markDurable(l.next - 1)
	}
	l.mu.Unlock()
	return err
}

// NextLSN returns the LSN the next appended record will receive.
func (l *Log) NextLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Replay calls fn for every record with lsn ≥ from, in order. It opens its
// own read handles so it can run while the log continues appending, but the
// caller is responsible for not relying on records appended after the call
// begins being visible.
func (l *Log) Replay(from LSN, fn func(lsn LSN, rec []byte) error) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if err := l.file.Sync(); err != nil {
		l.mu.Unlock()
		return err
	}
	dir, maxRecord := l.dir, l.opts.MaxRecordSize
	l.mu.Unlock()

	segs, err := listSegments(dir)
	if err != nil {
		return err
	}
	for _, s := range segs {
		if err := replaySegment(filepath.Join(dir, s.name), s.first, from, maxRecord, fn); err != nil {
			return err
		}
	}
	return nil
}

func replaySegment(path string, first, from LSN, maxRecord int, fn func(LSN, []byte) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	hdr := make([]byte, headerSize)
	lsn := first
	for {
		if _, err := io.ReadFull(f, hdr); err != nil {
			return nil
		}
		if hdr[0] != recordMagic {
			return nil
		}
		crc := binary.LittleEndian.Uint32(hdr[1:5])
		length := int(binary.LittleEndian.Uint32(hdr[5:9]))
		if length < 0 || length > maxRecord {
			return nil
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			return nil
		}
		if crc32.ChecksumIEEE(append(hdr[5:9:9], payload...)) != crc {
			return nil
		}
		if lsn >= from {
			if err := fn(lsn, payload); err != nil {
				return err
			}
		}
		lsn++
	}
}

// TruncateBefore removes whole segments all of whose records have LSN < upto.
// It is called after the owning store writes a snapshot covering those
// records. The active segment is never removed.
func (l *Log) TruncateBefore(upto LSN) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	segs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	for i := 0; i < len(segs)-1; i++ {
		// A segment is removable when the next segment starts at or below
		// upto, meaning every record in this one is < upto.
		if segs[i+1].first <= upto {
			if err := os.Remove(filepath.Join(l.dir, segs[i].name)); err != nil {
				return fmt.Errorf("wal: truncate: %w", err)
			}
		}
	}
	return nil
}

// SegmentCount reports how many segment files exist, for tests and stats.
func (l *Log) SegmentCount() (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	segs, err := listSegments(l.dir)
	return len(segs), err
}

// Close syncs and closes the active segment. Further operations return
// ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.file.Sync(); err != nil {
		l.file.Close()
		return err
	}
	l.markDurable(l.next - 1) // close's fsync covers every appended record
	return l.file.Close()
}

// Abandon closes the log as an abrupt process death would: the active
// segment's file handle is dropped WITHOUT a final fsync, so any appended-
// but-unsynced tail is lost exactly as kill -9 would lose it. Durability
// waiters are released with an error instead of a durable ack. The chaos
// harness uses it to simulate hard crashes in-process.
func (l *Log) Abandon() {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	l.closed = true
	l.file.Close() // deliberately no Sync
	l.mu.Unlock()
	l.syncMu.Lock()
	if l.syncErr == nil {
		l.syncErr = ErrClosed
	}
	l.syncCond.Broadcast()
	l.syncMu.Unlock()
}

// SyncStats snapshots the commit counters. FsyncsPerAppend =
// Fsyncs/Appends is the group-commit headline number; BatchedRecords /
// Batches gives the mean records per coalesced fsync.
type SyncStats struct {
	Appends        int64 // records appended
	Fsyncs         int64 // fsync syscalls issued
	Batches        int64 // group fsyncs that covered at least one record
	BatchedRecords int64 // records made durable by those group fsyncs
	MaxBatch       int64 // largest single-fsync cohort observed
}

// Stats returns a snapshot of the commit counters.
func (l *Log) Stats() SyncStats {
	l.syncMu.Lock()
	mb := l.maxBatch
	l.syncMu.Unlock()
	return SyncStats{
		Appends:        l.appends.Value(),
		Fsyncs:         l.fsyncs.Value(),
		Batches:        l.batches.Value(),
		BatchedRecords: l.batchedRecs.Value(),
		MaxBatch:       mb,
	}
}
