// Package wal implements the write-ahead log that gives the document store
// durable, crash-recoverable persistence. The log is a sequence of CRC32-
// checked records spread across fixed-size segment files; on open, a torn
// tail (a partially written final record from a crash) is detected and
// discarded, and everything before it replays.
//
// Record layout on disk:
//
//	magic   byte   (0xA5)
//	crc32   uint32 (little endian, over length+payload)
//	length  uint32 (little endian)
//	payload length bytes
//
// Segment files are named wal-<firstLSN, 16 hex digits>.seg. LSNs are
// 1-based, dense, monotonically increasing record sequence numbers.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

const (
	recordMagic   = 0xA5
	headerSize    = 1 + 4 + 4
	segmentSuffix = ".seg"
	segmentPrefix = "wal-"
)

// LSN is a log sequence number: the 1-based index of a record in the log.
type LSN uint64

// Options configure a Log.
type Options struct {
	// SegmentSize is the byte size at which a new segment file is started.
	// Zero means 8 MiB.
	SegmentSize int64
	// SyncEveryAppend fsyncs after every append. The experiments run with
	// this off (matching MongoDB 1.6's default non-durable writes); the
	// crash-recovery tests turn it on.
	SyncEveryAppend bool
	// MaxRecordSize bounds one record. Zero means 32 MiB.
	MaxRecordSize int
}

func (o Options) withDefaults() Options {
	if o.SegmentSize <= 0 {
		o.SegmentSize = 8 << 20
	}
	if o.MaxRecordSize <= 0 {
		o.MaxRecordSize = 32 << 20
	}
	return o
}

// Errors returned by the log.
var (
	ErrClosed       = errors.New("wal: log is closed")
	ErrRecordTooBig = errors.New("wal: record exceeds MaxRecordSize")
	ErrCorrupt      = errors.New("wal: corrupt record")
)

// Log is an append-only segmented write-ahead log. It is safe for concurrent
// use.
type Log struct {
	mu     sync.Mutex
	dir    string
	opts   Options
	file   *os.File // active segment
	size   int64    // bytes written to active segment
	next   LSN      // LSN the next appended record will receive
	closed bool
}

// Open opens (creating if needed) the log in dir, scans existing segments,
// truncates a torn tail if one exists, and positions the log for appending.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: create dir: %w", err)
	}
	l := &Log{dir: dir, opts: opts, next: 1}

	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		if err := l.rollSegment(); err != nil {
			return nil, err
		}
		return l, nil
	}
	// Count records in all but the last segment, then scan (and possibly
	// repair) the last.
	for _, s := range segs[:len(segs)-1] {
		n, _, err := scanSegment(filepath.Join(dir, s.name), opts.MaxRecordSize)
		if err != nil {
			return nil, fmt.Errorf("wal: segment %s: %w", s.name, err)
		}
		l.next = s.first + LSN(n)
	}
	last := segs[len(segs)-1]
	n, validBytes, err := scanSegment(filepath.Join(dir, last.name), opts.MaxRecordSize)
	if err != nil {
		return nil, fmt.Errorf("wal: segment %s: %w", last.name, err)
	}
	l.next = last.first + LSN(n)

	f, err := os.OpenFile(filepath.Join(dir, last.name), os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open segment: %w", err)
	}
	if err := f.Truncate(validBytes); err != nil {
		f.Close()
		return nil, fmt.Errorf("wal: repair torn tail: %w", err)
	}
	if _, err := f.Seek(validBytes, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	l.file = f
	l.size = validBytes
	return l, nil
}

type segmentInfo struct {
	name  string
	first LSN
}

func listSegments(dir string) ([]segmentInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: read dir: %w", err)
	}
	var segs []segmentInfo
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, segmentPrefix) || !strings.HasSuffix(name, segmentSuffix) {
			continue
		}
		hexPart := strings.TrimSuffix(strings.TrimPrefix(name, segmentPrefix), segmentSuffix)
		first, err := strconv.ParseUint(hexPart, 16, 64)
		if err != nil {
			continue // foreign file, ignore
		}
		segs = append(segs, segmentInfo{name: name, first: LSN(first)})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	return segs, nil
}

// scanSegment counts complete valid records and returns the byte offset just
// past the last valid record. A torn or corrupt tail simply ends the scan.
func scanSegment(path string, maxRecord int) (records int, validBytes int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	var off int64
	hdr := make([]byte, headerSize)
	var payload []byte
	for {
		if _, err := io.ReadFull(f, hdr); err != nil {
			return records, off, nil // clean EOF or torn header: stop here
		}
		if hdr[0] != recordMagic {
			return records, off, nil
		}
		crc := binary.LittleEndian.Uint32(hdr[1:5])
		length := int(binary.LittleEndian.Uint32(hdr[5:9]))
		if length < 0 || length > maxRecord {
			return records, off, nil
		}
		if cap(payload) < length {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(f, payload); err != nil {
			return records, off, nil // torn payload
		}
		if crc32.ChecksumIEEE(append(hdr[5:9:9], payload...)) != crc {
			return records, off, nil // corrupt record ends the log
		}
		records++
		off += int64(headerSize + length)
	}
}

func segmentName(first LSN) string {
	return fmt.Sprintf("%s%016x%s", segmentPrefix, uint64(first), segmentSuffix)
}

func (l *Log) rollSegment() error {
	if l.file != nil {
		if err := l.file.Sync(); err != nil {
			return err
		}
		if err := l.file.Close(); err != nil {
			return err
		}
	}
	f, err := os.OpenFile(filepath.Join(l.dir, segmentName(l.next)), os.O_CREATE|os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	l.file = f
	l.size = 0
	return nil
}

// Append writes one record and returns its LSN.
func (l *Log) Append(rec []byte) (LSN, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if len(rec) > l.opts.MaxRecordSize {
		return 0, ErrRecordTooBig
	}
	if l.size >= l.opts.SegmentSize {
		if err := l.rollSegment(); err != nil {
			return 0, err
		}
	}
	buf := make([]byte, headerSize+len(rec))
	buf[0] = recordMagic
	binary.LittleEndian.PutUint32(buf[5:9], uint32(len(rec)))
	copy(buf[headerSize:], rec)
	crc := crc32.ChecksumIEEE(buf[5:])
	binary.LittleEndian.PutUint32(buf[1:5], crc)
	if _, err := l.file.Write(buf); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	if l.opts.SyncEveryAppend {
		if err := l.file.Sync(); err != nil {
			return 0, fmt.Errorf("wal: sync: %w", err)
		}
	}
	lsn := l.next
	l.next++
	l.size += int64(len(buf))
	return lsn, nil
}

// Sync flushes the active segment to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	return l.file.Sync()
}

// NextLSN returns the LSN the next appended record will receive.
func (l *Log) NextLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Replay calls fn for every record with lsn ≥ from, in order. It opens its
// own read handles so it can run while the log continues appending, but the
// caller is responsible for not relying on records appended after the call
// begins being visible.
func (l *Log) Replay(from LSN, fn func(lsn LSN, rec []byte) error) error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return ErrClosed
	}
	if err := l.file.Sync(); err != nil {
		l.mu.Unlock()
		return err
	}
	dir, maxRecord := l.dir, l.opts.MaxRecordSize
	l.mu.Unlock()

	segs, err := listSegments(dir)
	if err != nil {
		return err
	}
	for _, s := range segs {
		if err := replaySegment(filepath.Join(dir, s.name), s.first, from, maxRecord, fn); err != nil {
			return err
		}
	}
	return nil
}

func replaySegment(path string, first, from LSN, maxRecord int, fn func(LSN, []byte) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	hdr := make([]byte, headerSize)
	lsn := first
	for {
		if _, err := io.ReadFull(f, hdr); err != nil {
			return nil
		}
		if hdr[0] != recordMagic {
			return nil
		}
		crc := binary.LittleEndian.Uint32(hdr[1:5])
		length := int(binary.LittleEndian.Uint32(hdr[5:9]))
		if length < 0 || length > maxRecord {
			return nil
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			return nil
		}
		if crc32.ChecksumIEEE(append(hdr[5:9:9], payload...)) != crc {
			return nil
		}
		if lsn >= from {
			if err := fn(lsn, payload); err != nil {
				return err
			}
		}
		lsn++
	}
}

// TruncateBefore removes whole segments all of whose records have LSN < upto.
// It is called after the owning store writes a snapshot covering those
// records. The active segment is never removed.
func (l *Log) TruncateBefore(upto LSN) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	segs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	for i := 0; i < len(segs)-1; i++ {
		// A segment is removable when the next segment starts at or below
		// upto, meaning every record in this one is < upto.
		if segs[i+1].first <= upto {
			if err := os.Remove(filepath.Join(l.dir, segs[i].name)); err != nil {
				return fmt.Errorf("wal: truncate: %w", err)
			}
		}
	}
	return nil
}

// SegmentCount reports how many segment files exist, for tests and stats.
func (l *Log) SegmentCount() (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	segs, err := listSegments(l.dir)
	return len(segs), err
}

// Close syncs and closes the active segment. Further operations return
// ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	if err := l.file.Sync(); err != nil {
		l.file.Close()
		return err
	}
	return l.file.Close()
}
