// Package btree implements an in-memory B-tree keyed by byte slices, the
// ordered-index substrate under the document store's secondary indexes and
// the relational baseline's primary-key index. Keys are compared
// lexicographically (bytes.Compare); values are opaque.
//
// The tree is not safe for concurrent use; callers synchronize around it
// (the document store holds a per-collection lock).
package btree

import (
	"bytes"
)

// degree is the minimum number of children of an internal node. Each node
// holds between degree-1 and 2*degree-1 items, a reasonable trade between
// pointer chasing and copy cost for the key sizes indexes produce.
const degree = 32

const (
	maxItems = 2*degree - 1
	minItems = degree - 1
)

// Item is one key/value pair stored in the tree.
type Item struct {
	Key   []byte
	Value any
}

type node struct {
	items    []Item
	children []*node // nil for leaves
}

// Tree is an in-memory B-tree. The zero value is not usable; call New.
type Tree struct {
	root   *node
	length int
}

// New returns an empty tree.
func New() *Tree {
	return &Tree{root: &node{}}
}

// Len returns the number of stored items.
func (t *Tree) Len() int { return t.length }

// Get returns the value stored at key and whether it was present.
func (t *Tree) Get(key []byte) (any, bool) {
	n := t.root
	for {
		i, found := n.search(key)
		if found {
			return n.items[i].Value, true
		}
		if n.children == nil {
			return nil, false
		}
		n = n.children[i]
	}
}

// search returns the index of the first item ≥ key and whether it equals key.
func (n *node) search(key []byte) (int, bool) {
	lo, hi := 0, len(n.items)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(n.items[mid].Key, key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(n.items) && bytes.Equal(n.items[lo].Key, key) {
		return lo, true
	}
	return lo, false
}

// Set stores value at key, replacing any existing value. It reports whether
// the key was newly inserted.
func (t *Tree) Set(key []byte, value any) bool {
	if len(t.root.items) == maxItems {
		old := t.root
		t.root = &node{children: []*node{old}}
		t.root.splitChild(0)
	}
	inserted := t.root.insert(keyCopy(key), value)
	if inserted {
		t.length++
	}
	return inserted
}

func keyCopy(k []byte) []byte {
	c := make([]byte, len(k))
	copy(c, k)
	return c
}

// splitChild splits the full child at index i, lifting its median into n.
func (n *node) splitChild(i int) {
	child := n.children[i]
	median := child.items[minItems]
	right := &node{
		items: append([]Item(nil), child.items[minItems+1:]...),
	}
	if child.children != nil {
		right.children = append([]*node(nil), child.children[minItems+1:]...)
		child.children = child.children[:minItems+1]
	}
	child.items = child.items[:minItems]

	n.items = append(n.items, Item{})
	copy(n.items[i+1:], n.items[i:])
	n.items[i] = median

	n.children = append(n.children, nil)
	copy(n.children[i+2:], n.children[i+1:])
	n.children[i+1] = right
}

func (n *node) insert(key []byte, value any) bool {
	i, found := n.search(key)
	if found {
		n.items[i].Value = value
		return false
	}
	if n.children == nil {
		n.items = append(n.items, Item{})
		copy(n.items[i+1:], n.items[i:])
		n.items[i] = Item{Key: key, Value: value}
		return true
	}
	if len(n.children[i].items) == maxItems {
		n.splitChild(i)
		switch c := bytes.Compare(key, n.items[i].Key); {
		case c == 0:
			n.items[i].Value = value
			return false
		case c > 0:
			i++
		}
	}
	return n.children[i].insert(key, value)
}

// Delete removes key and reports whether it was present.
func (t *Tree) Delete(key []byte) bool {
	if t.length == 0 {
		return false
	}
	deleted := t.root.delete(key)
	if len(t.root.items) == 0 && t.root.children != nil {
		t.root = t.root.children[0]
	}
	if deleted {
		t.length--
	}
	return deleted
}

func (n *node) delete(key []byte) bool {
	i, found := n.search(key)
	if n.children == nil {
		if !found {
			return false
		}
		copy(n.items[i:], n.items[i+1:])
		n.items = n.items[:len(n.items)-1]
		return true
	}
	if found {
		// Replace with predecessor from the left subtree, then delete the
		// predecessor from that subtree.
		n.ensureChildCanLose(i)
		// The target may have moved during rebalancing; re-search.
		i, found = n.search(key)
		if !found {
			return n.children[i].delete(key)
		}
		pred := n.children[i].max()
		n.items[i] = pred
		return n.children[i].delete(pred.Key)
	}
	n.ensureChildCanLose(i)
	i, _ = n.search(key)
	return n.children[i].delete(key)
}

func (n *node) max() Item {
	cur := n
	for cur.children != nil {
		cur = cur.children[len(cur.children)-1]
	}
	return cur.items[len(cur.items)-1]
}

// ensureChildCanLose guarantees children[i] holds more than minItems items,
// borrowing from a sibling or merging when necessary.
func (n *node) ensureChildCanLose(i int) {
	if i >= len(n.children) {
		i = len(n.children) - 1
	}
	child := n.children[i]
	if len(child.items) > minItems {
		return
	}
	if i > 0 && len(n.children[i-1].items) > minItems {
		// Borrow from the left sibling through the separator.
		left := n.children[i-1]
		child.items = append([]Item{n.items[i-1]}, child.items...)
		n.items[i-1] = left.items[len(left.items)-1]
		left.items = left.items[:len(left.items)-1]
		if left.children != nil {
			moved := left.children[len(left.children)-1]
			left.children = left.children[:len(left.children)-1]
			child.children = append([]*node{moved}, child.children...)
		}
		return
	}
	if i < len(n.children)-1 && len(n.children[i+1].items) > minItems {
		// Borrow from the right sibling through the separator.
		right := n.children[i+1]
		child.items = append(child.items, n.items[i])
		n.items[i] = right.items[0]
		copy(right.items, right.items[1:])
		right.items = right.items[:len(right.items)-1]
		if right.children != nil {
			moved := right.children[0]
			copy(right.children, right.children[1:])
			right.children = right.children[:len(right.children)-1]
			child.children = append(child.children, moved)
		}
		return
	}
	// Merge with a sibling around the separator.
	if i > 0 {
		i--
	}
	left, right := n.children[i], n.children[i+1]
	left.items = append(left.items, n.items[i])
	left.items = append(left.items, right.items...)
	left.children = append(left.children, right.children...)
	copy(n.items[i:], n.items[i+1:])
	n.items = n.items[:len(n.items)-1]
	copy(n.children[i+1:], n.children[i+2:])
	n.children = n.children[:len(n.children)-1]
}

// Ascend calls fn for every item in ascending key order until fn returns
// false.
func (t *Tree) Ascend(fn func(Item) bool) {
	t.root.ascend(nil, nil, fn)
}

// AscendRange calls fn for every item with lo ≤ key < hi in ascending order
// until fn returns false. A nil lo means from the start; a nil hi means to
// the end.
func (t *Tree) AscendRange(lo, hi []byte, fn func(Item) bool) {
	t.root.ascend(lo, hi, fn)
}

func (n *node) ascend(lo, hi []byte, fn func(Item) bool) bool {
	start := 0
	if lo != nil {
		start, _ = n.search(lo)
	}
	for i := start; i < len(n.items); i++ {
		if n.children != nil && !n.children[i].ascend(lo, hi, fn) {
			return false
		}
		if hi != nil && bytes.Compare(n.items[i].Key, hi) >= 0 {
			return false
		}
		if lo == nil || bytes.Compare(n.items[i].Key, lo) >= 0 {
			if !fn(n.items[i]) {
				return false
			}
		}
	}
	if n.children != nil {
		return n.children[len(n.items)].ascend(lo, hi, fn)
	}
	return true
}

// Min returns the smallest item, or a zero Item and false when empty.
func (t *Tree) Min() (Item, bool) {
	if t.length == 0 {
		return Item{}, false
	}
	n := t.root
	for n.children != nil {
		n = n.children[0]
	}
	return n.items[0], true
}

// Max returns the largest item, or a zero Item and false when empty.
func (t *Tree) Max() (Item, bool) {
	if t.length == 0 {
		return Item{}, false
	}
	return t.root.max(), true
}

// Height returns the number of levels in the tree; an empty tree has height 1.
func (t *Tree) Height() int {
	h := 1
	for n := t.root; n.children != nil; n = n.children[0] {
		h++
	}
	return h
}
