package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func key(i int) []byte { return []byte(fmt.Sprintf("key-%06d", i)) }

func TestSetGet(t *testing.T) {
	tr := New()
	for i := 0; i < 1000; i++ {
		if !tr.Set(key(i), i) {
			t.Fatalf("Set(%d) reported existing key", i)
		}
	}
	if tr.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", tr.Len())
	}
	for i := 0; i < 1000; i++ {
		v, ok := tr.Get(key(i))
		if !ok || v != i {
			t.Fatalf("Get(%d) = %v, %v", i, v, ok)
		}
	}
	if _, ok := tr.Get([]byte("absent")); ok {
		t.Fatal("Get(absent) = true")
	}
}

func TestSetOverwrite(t *testing.T) {
	tr := New()
	tr.Set([]byte("k"), 1)
	if tr.Set([]byte("k"), 2) {
		t.Fatal("overwrite reported as insert")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d after overwrite, want 1", tr.Len())
	}
	if v, _ := tr.Get([]byte("k")); v != 2 {
		t.Fatalf("Get = %v, want 2", v)
	}
}

func TestSetCopiesKey(t *testing.T) {
	tr := New()
	k := []byte("mutable")
	tr.Set(k, 1)
	k[0] = 'X'
	if _, ok := tr.Get([]byte("mutable")); !ok {
		t.Fatal("tree was affected by caller mutating the key slice")
	}
}

func TestDelete(t *testing.T) {
	tr := New()
	const n = 2000
	for i := 0; i < n; i++ {
		tr.Set(key(i), i)
	}
	// Delete odd keys.
	for i := 1; i < n; i += 2 {
		if !tr.Delete(key(i)) {
			t.Fatalf("Delete(%d) = false", i)
		}
	}
	if tr.Len() != n/2 {
		t.Fatalf("Len = %d, want %d", tr.Len(), n/2)
	}
	for i := 0; i < n; i++ {
		_, ok := tr.Get(key(i))
		if want := i%2 == 0; ok != want {
			t.Fatalf("Get(%d) present=%v, want %v", i, ok, want)
		}
	}
	if tr.Delete([]byte("absent")) {
		t.Fatal("Delete(absent) = true")
	}
	if (New()).Delete([]byte("x")) {
		t.Fatal("Delete on empty tree = true")
	}
}

func TestDeleteAllRandomOrder(t *testing.T) {
	tr := New()
	const n = 3000
	rng := rand.New(rand.NewSource(42))
	perm := rng.Perm(n)
	for _, i := range perm {
		tr.Set(key(i), i)
	}
	perm = rng.Perm(n)
	for idx, i := range perm {
		if !tr.Delete(key(i)) {
			t.Fatalf("Delete(%d) failed at step %d", i, idx)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d after deleting everything", tr.Len())
	}
}

func TestAscendOrder(t *testing.T) {
	tr := New()
	rng := rand.New(rand.NewSource(7))
	for _, i := range rng.Perm(500) {
		tr.Set(key(i), i)
	}
	var got []string
	tr.Ascend(func(it Item) bool {
		got = append(got, string(it.Key))
		return true
	})
	if len(got) != 500 {
		t.Fatalf("Ascend visited %d items, want 500", len(got))
	}
	if !sort.StringsAreSorted(got) {
		t.Fatal("Ascend not in sorted order")
	}
}

func TestAscendEarlyStop(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Set(key(i), i)
	}
	count := 0
	tr.Ascend(func(Item) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("early stop visited %d, want 10", count)
	}
}

func TestAscendRange(t *testing.T) {
	tr := New()
	for i := 0; i < 100; i++ {
		tr.Set(key(i), i)
	}
	var got []int
	tr.AscendRange(key(10), key(20), func(it Item) bool {
		got = append(got, it.Value.(int))
		return true
	})
	if len(got) != 10 || got[0] != 10 || got[9] != 19 {
		t.Fatalf("AscendRange[10,20) = %v", got)
	}
	// Open-ended ranges.
	var tail []int
	tr.AscendRange(key(95), nil, func(it Item) bool {
		tail = append(tail, it.Value.(int))
		return true
	})
	if len(tail) != 5 {
		t.Fatalf("AscendRange[95,∞) len = %d, want 5", len(tail))
	}
	var head []int
	tr.AscendRange(nil, key(5), func(it Item) bool {
		head = append(head, it.Value.(int))
		return true
	})
	if len(head) != 5 {
		t.Fatalf("AscendRange(-∞,5) len = %d, want 5", len(head))
	}
}

func TestMinMaxHeight(t *testing.T) {
	tr := New()
	if _, ok := tr.Min(); ok {
		t.Fatal("Min on empty = true")
	}
	if _, ok := tr.Max(); ok {
		t.Fatal("Max on empty = true")
	}
	if tr.Height() != 1 {
		t.Fatalf("empty Height = %d, want 1", tr.Height())
	}
	for i := 0; i < 10000; i++ {
		tr.Set(key(i), i)
	}
	mn, _ := tr.Min()
	mx, _ := tr.Max()
	if !bytes.Equal(mn.Key, key(0)) || !bytes.Equal(mx.Key, key(9999)) {
		t.Fatalf("Min/Max = %s/%s", mn.Key, mx.Key)
	}
	if h := tr.Height(); h < 2 || h > 5 {
		t.Fatalf("Height = %d for 10000 keys, want small", h)
	}
}

// TestMatchesReferenceMap drives the tree and a map with the same random
// operation stream and checks they agree at every step.
func TestMatchesReferenceMap(t *testing.T) {
	tr := New()
	ref := map[string]int{}
	rng := rand.New(rand.NewSource(99))
	for step := 0; step < 50000; step++ {
		k := key(rng.Intn(800))
		switch rng.Intn(3) {
		case 0, 1:
			v := rng.Int()
			insertedTree := tr.Set(k, v)
			_, existed := ref[string(k)]
			if insertedTree == existed {
				t.Fatalf("step %d: Set insert=%v but map existed=%v", step, insertedTree, existed)
			}
			ref[string(k)] = v
		case 2:
			delTree := tr.Delete(k)
			_, existed := ref[string(k)]
			if delTree != existed {
				t.Fatalf("step %d: Delete=%v but map existed=%v", step, delTree, existed)
			}
			delete(ref, string(k))
		}
		if tr.Len() != len(ref) {
			t.Fatalf("step %d: Len=%d ref=%d", step, tr.Len(), len(ref))
		}
	}
	for k, v := range ref {
		got, ok := tr.Get([]byte(k))
		if !ok || got != v {
			t.Fatalf("final: Get(%s) = %v,%v want %v", k, got, ok, v)
		}
	}
}

func TestSortedOrderProperty(t *testing.T) {
	f := func(keys [][]byte) bool {
		tr := New()
		uniq := map[string]bool{}
		for _, k := range keys {
			tr.Set(k, true)
			uniq[string(k)] = true
		}
		if tr.Len() != len(uniq) {
			return false
		}
		var prev []byte
		ok := true
		first := true
		tr.Ascend(func(it Item) bool {
			if !first && bytes.Compare(prev, it.Key) >= 0 {
				ok = false
				return false
			}
			prev = append(prev[:0], it.Key...)
			first = false
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSet(b *testing.B) {
	tr := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Set(key(i), i)
	}
}

func BenchmarkGet(b *testing.B) {
	tr := New()
	for i := 0; i < 100000; i++ {
		tr.Set(key(i), i)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Get(key(i % 100000))
	}
}
