// Package largeobj implements the segmentation of large values — the
// "segmentation, storage and schedule of large video files" the paper
// names as future work (§7). A large object is split into fixed-size
// chunks stored as independent records, described by a manifest record
// stored under the object's own key. Chunks replicate independently, so a
// multi-gigabyte guideline video spreads over the whole cluster instead of
// hammering one replica set, and failed chunk writes retry independently.
//
// Layout:
//
//	<key>              manifest: {"lo": 1, "size", "chunkSize", "chunks", "md5"}
//	<key>\x00c\x00000000   chunk 0
//	<key>\x00c\x00000001   chunk 1 ...
//
// The NUL separators keep chunk keys out of the user keyspace.
package largeobj

import (
	"bytes"
	"context"
	"crypto/md5"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sync"

	"mystore/internal/bson"
)

// Store is the key-value surface large objects are stored through; the
// cluster client satisfies it.
type Store interface {
	Put(ctx context.Context, key string, val []byte) error
	Get(ctx context.Context, key string) ([]byte, error)
	Delete(ctx context.Context, key string) error
}

// Config tunes segmentation.
type Config struct {
	// ChunkSize is the segment size in bytes. Zero means 1 MiB.
	ChunkSize int
	// Concurrency bounds parallel chunk transfers. Zero means 4.
	Concurrency int
}

func (c Config) withDefaults() Config {
	if c.ChunkSize <= 0 {
		c.ChunkSize = 1 << 20
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 4
	}
	return c
}

// Manifest describes a stored large object.
type Manifest struct {
	Size      int64
	ChunkSize int
	Chunks    int
	MD5       string
}

// Errors returned by the package.
var (
	ErrNotLargeObject = errors.New("largeobj: key does not hold a manifest")
	ErrCorrupt        = errors.New("largeobj: chunk data does not match manifest")
)

func chunkKey(key string, i int) string {
	return fmt.Sprintf("%s\x00c\x00%06d", key, i)
}

func manifestDoc(m Manifest) bson.D {
	return bson.D{
		{Key: "lo", Value: int32(1)},
		{Key: "size", Value: m.Size},
		{Key: "chunkSize", Value: int64(m.ChunkSize)},
		{Key: "chunks", Value: int64(m.Chunks)},
		{Key: "md5", Value: m.MD5},
	}
}

func manifestFromDoc(d bson.D) (Manifest, bool) {
	if v, ok := d.Get("lo"); !ok || v != int32(1) {
		return Manifest{}, false
	}
	m := Manifest{MD5: d.StringOr("md5", "")}
	if v, ok := d.Get("size"); ok {
		m.Size, _ = v.(int64)
	}
	if v, ok := d.Get("chunkSize"); ok {
		cs, _ := v.(int64)
		m.ChunkSize = int(cs)
	}
	if v, ok := d.Get("chunks"); ok {
		n, _ := v.(int64)
		m.Chunks = int(n)
	}
	return m, true
}

// Upload reads r to its end, segments it and stores chunks then manifest.
// Chunks upload concurrently; the manifest is written last so a reader
// never sees a manifest whose chunks are missing.
func Upload(ctx context.Context, s Store, key string, r io.Reader, cfg Config) (Manifest, error) {
	cfg = cfg.withDefaults()
	hash := md5.New()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		sem      = make(chan struct{}, cfg.Concurrency)
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	var size int64
	chunks := 0
	buf := make([]byte, cfg.ChunkSize)
	for {
		n, err := io.ReadFull(r, buf)
		if n > 0 {
			hash.Write(buf[:n]) //nolint:errcheck
			size += int64(n)
			data := make([]byte, n)
			copy(data, buf[:n])
			idx := chunks
			chunks++
			wg.Add(1)
			sem <- struct{}{}
			go func() {
				defer wg.Done()
				defer func() { <-sem }()
				if err := s.Put(ctx, chunkKey(key, idx), data); err != nil {
					fail(fmt.Errorf("largeobj: chunk %d: %w", idx, err))
				}
			}()
		}
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			break
		}
		if err != nil {
			wg.Wait()
			return Manifest{}, fmt.Errorf("largeobj: read: %w", err)
		}
	}
	wg.Wait()
	if firstErr != nil {
		return Manifest{}, firstErr
	}
	m := Manifest{
		Size:      size,
		ChunkSize: cfg.ChunkSize,
		Chunks:    chunks,
		MD5:       hex.EncodeToString(hash.Sum(nil)),
	}
	enc, err := bson.Marshal(manifestDoc(m))
	if err != nil {
		return Manifest{}, err
	}
	if err := s.Put(ctx, key, enc); err != nil {
		return Manifest{}, fmt.Errorf("largeobj: manifest: %w", err)
	}
	return m, nil
}

// Stat fetches and parses the manifest for key.
func Stat(ctx context.Context, s Store, key string) (Manifest, error) {
	val, err := s.Get(ctx, key)
	if err != nil {
		return Manifest{}, err
	}
	doc, err := bson.Unmarshal(val)
	if err != nil {
		return Manifest{}, fmt.Errorf("%w: %v", ErrNotLargeObject, err)
	}
	m, ok := manifestFromDoc(doc)
	if !ok {
		return Manifest{}, ErrNotLargeObject
	}
	return m, nil
}

// DownloadTo streams the object to w in order, fetching up to
// cfg.Concurrency chunks ahead, and verifies the whole-object checksum.
func DownloadTo(ctx context.Context, s Store, key string, w io.Writer, cfg Config) (Manifest, error) {
	cfg = cfg.withDefaults()
	m, err := Stat(ctx, s, key)
	if err != nil {
		return m, err
	}
	type fetched struct {
		data []byte
		err  error
	}
	results := make([]chan fetched, m.Chunks)
	sem := make(chan struct{}, cfg.Concurrency)
	for i := 0; i < m.Chunks; i++ {
		results[i] = make(chan fetched, 1)
		go func(i int) {
			sem <- struct{}{}
			defer func() { <-sem }()
			data, err := s.Get(ctx, chunkKey(key, i))
			results[i] <- fetched{data: data, err: err}
		}(i)
	}
	hash := md5.New()
	var written int64
	for i := 0; i < m.Chunks; i++ {
		f := <-results[i]
		if f.err != nil {
			return m, fmt.Errorf("largeobj: chunk %d: %w", i, f.err)
		}
		hash.Write(f.data) //nolint:errcheck
		n, err := w.Write(f.data)
		if err != nil {
			return m, err
		}
		written += int64(n)
	}
	if written != m.Size {
		return m, fmt.Errorf("%w: wrote %d of %d bytes", ErrCorrupt, written, m.Size)
	}
	if sum := hex.EncodeToString(hash.Sum(nil)); sum != m.MD5 {
		return m, fmt.Errorf("%w: md5 %s != manifest %s", ErrCorrupt, sum, m.MD5)
	}
	return m, nil
}

// Download fetches the whole object into memory.
func Download(ctx context.Context, s Store, key string, cfg Config) ([]byte, error) {
	var buf bytes.Buffer
	m, err := Stat(ctx, s, key)
	if err != nil {
		return nil, err
	}
	buf.Grow(int(m.Size))
	if _, err := DownloadTo(ctx, s, key, &buf, cfg); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Remove deletes the manifest first (so readers stop resolving the object)
// and then the chunks.
func Remove(ctx context.Context, s Store, key string, cfg Config) error {
	m, err := Stat(ctx, s, key)
	if err != nil {
		return err
	}
	if err := s.Delete(ctx, key); err != nil {
		return err
	}
	cfg = cfg.withDefaults()
	sem := make(chan struct{}, cfg.Concurrency)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for i := 0; i < m.Chunks; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := s.Delete(ctx, chunkKey(key, i)); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	return firstErr
}
