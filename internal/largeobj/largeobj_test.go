package largeobj

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

// memStore is an in-memory Store with optional per-op failure hooks.
type memStore struct {
	mu     sync.Mutex
	data   map[string][]byte
	failOn func(op, key string) error
}

func newMemStore() *memStore { return &memStore{data: map[string][]byte{}} }

func (m *memStore) Put(_ context.Context, key string, val []byte) error {
	if m.failOn != nil {
		if err := m.failOn("put", key); err != nil {
			return err
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.data[key] = append([]byte(nil), val...)
	return nil
}

func (m *memStore) Get(_ context.Context, key string) ([]byte, error) {
	if m.failOn != nil {
		if err := m.failOn("get", key); err != nil {
			return nil, err
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.data[key]
	if !ok {
		return nil, fmt.Errorf("not found: %q", key)
	}
	return append([]byte(nil), v...), nil
}

func (m *memStore) Delete(_ context.Context, key string) error {
	if m.failOn != nil {
		if err := m.failOn("delete", key); err != nil {
			return err
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.data, key)
	return nil
}

func (m *memStore) len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.data)
}

func randomPayload(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	rng.Read(b) //nolint:errcheck
	return b
}

func TestUploadDownloadRoundTrip(t *testing.T) {
	s := newMemStore()
	ctx := context.Background()
	payload := randomPayload(3<<20+123, 1) // 3 MiB + change: uneven tail chunk
	m, err := Upload(ctx, s, "video-1", bytes.NewReader(payload), Config{ChunkSize: 1 << 20})
	if err != nil {
		t.Fatalf("Upload: %v", err)
	}
	if m.Chunks != 4 || m.Size != int64(len(payload)) {
		t.Fatalf("manifest = %+v", m)
	}
	// 4 chunks + 1 manifest.
	if s.len() != 5 {
		t.Fatalf("stored keys = %d, want 5", s.len())
	}
	got, err := Download(ctx, s, "video-1", Config{})
	if err != nil {
		t.Fatalf("Download: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("round trip corrupted payload")
	}
}

func TestUploadEmptyObject(t *testing.T) {
	s := newMemStore()
	ctx := context.Background()
	m, err := Upload(ctx, s, "empty", bytes.NewReader(nil), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Chunks != 0 || m.Size != 0 {
		t.Fatalf("manifest = %+v", m)
	}
	got, err := Download(ctx, s, "empty", Config{})
	if err != nil || len(got) != 0 {
		t.Fatalf("Download empty = %d bytes, %v", len(got), err)
	}
}

func TestExactChunkBoundary(t *testing.T) {
	s := newMemStore()
	ctx := context.Background()
	payload := randomPayload(2<<20, 2) // exactly two chunks
	m, err := Upload(ctx, s, "k", bytes.NewReader(payload), Config{ChunkSize: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if m.Chunks != 2 {
		t.Fatalf("chunks = %d, want 2", m.Chunks)
	}
	got, err := Download(ctx, s, "k", Config{})
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("round trip failed: %v", err)
	}
}

func TestStat(t *testing.T) {
	s := newMemStore()
	ctx := context.Background()
	payload := randomPayload(100, 3)
	if _, err := Upload(ctx, s, "k", bytes.NewReader(payload), Config{ChunkSize: 64}); err != nil {
		t.Fatal(err)
	}
	m, err := Stat(ctx, s, "k")
	if err != nil {
		t.Fatal(err)
	}
	if m.Size != 100 || m.Chunks != 2 || m.ChunkSize != 64 || len(m.MD5) != 32 {
		t.Fatalf("Stat = %+v", m)
	}
}

func TestStatRejectsPlainValue(t *testing.T) {
	s := newMemStore()
	ctx := context.Background()
	s.Put(ctx, "plain", []byte("just bytes")) //nolint:errcheck
	if _, err := Stat(ctx, s, "plain"); !errors.Is(err, ErrNotLargeObject) {
		t.Fatalf("err = %v, want ErrNotLargeObject", err)
	}
}

func TestDownloadDetectsMissingChunk(t *testing.T) {
	s := newMemStore()
	ctx := context.Background()
	payload := randomPayload(300, 4)
	Upload(ctx, s, "k", bytes.NewReader(payload), Config{ChunkSize: 100}) //nolint:errcheck
	s.Delete(ctx, chunkKey("k", 1))                                       //nolint:errcheck
	if _, err := Download(ctx, s, "k", Config{}); err == nil {
		t.Fatal("Download succeeded with a missing chunk")
	}
}

func TestDownloadDetectsCorruptChunk(t *testing.T) {
	s := newMemStore()
	ctx := context.Background()
	payload := randomPayload(300, 5)
	Upload(ctx, s, "k", bytes.NewReader(payload), Config{ChunkSize: 100}) //nolint:errcheck
	// Flip a byte in chunk 2 (same length, wrong content).
	s.mu.Lock()
	s.data[chunkKey("k", 2)][0] ^= 0xFF
	s.mu.Unlock()
	if _, err := Download(ctx, s, "k", Config{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestUploadChunkFailureSurfaces(t *testing.T) {
	s := newMemStore()
	boom := errors.New("replica down")
	s.failOn = func(op, key string) error {
		if op == "put" && strings.Contains(key, "\x00c\x00000002") {
			return boom
		}
		return nil
	}
	_, err := Upload(context.Background(), s, "k", bytes.NewReader(randomPayload(500, 6)), Config{ChunkSize: 100})
	if err == nil {
		t.Fatal("Upload succeeded despite chunk failure")
	}
	// The manifest must NOT exist: readers never see a partial object.
	if _, err := Stat(context.Background(), s, "k"); err == nil {
		t.Fatal("manifest written despite failed chunks")
	}
}

func TestRemove(t *testing.T) {
	s := newMemStore()
	ctx := context.Background()
	Upload(ctx, s, "k", bytes.NewReader(randomPayload(500, 7)), Config{ChunkSize: 100}) //nolint:errcheck
	if err := Remove(ctx, s, "k", Config{}); err != nil {
		t.Fatal(err)
	}
	if s.len() != 0 {
		t.Fatalf("%d keys remain after Remove", s.len())
	}
	if err := Remove(ctx, s, "k", Config{}); err == nil {
		t.Fatal("Remove of absent object succeeded")
	}
}

func TestDownloadToWriter(t *testing.T) {
	s := newMemStore()
	ctx := context.Background()
	payload := randomPayload(1<<20, 8)
	Upload(ctx, s, "k", bytes.NewReader(payload), Config{ChunkSize: 128 << 10}) //nolint:errcheck
	var buf bytes.Buffer
	m, err := DownloadTo(ctx, s, "k", &buf, Config{Concurrency: 2})
	if err != nil {
		t.Fatal(err)
	}
	if m.Size != int64(len(payload)) || !bytes.Equal(buf.Bytes(), payload) {
		t.Fatal("streamed download mismatch")
	}
}

func TestChunkKeysOutsideUserKeyspace(t *testing.T) {
	k := chunkKey("user-key", 0)
	if !strings.Contains(k, "\x00") {
		t.Fatal("chunk keys must contain NUL separators")
	}
}
