package metrics

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	for i := 100; i >= 1; i-- { // insert descending to exercise sorting
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("Count = %d, want 100", got)
	}
	if got := h.Min(); got != time.Millisecond {
		t.Errorf("Min = %v, want 1ms", got)
	}
	if got := h.Max(); got != 100*time.Millisecond {
		t.Errorf("Max = %v, want 100ms", got)
	}
	if got := h.Quantile(0.5); got < 49*time.Millisecond || got > 52*time.Millisecond {
		t.Errorf("median = %v, want ~50ms", got)
	}
	if got := h.Quantile(0); got != time.Millisecond {
		t.Errorf("q0 = %v, want 1ms", got)
	}
	if got := h.Quantile(1); got != 100*time.Millisecond {
		t.Errorf("q1 = %v, want 100ms", got)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Stddev() != 0 {
		t.Error("empty histogram should report zeros")
	}
}

func TestHistogramMeanStddev(t *testing.T) {
	h := NewHistogram()
	h.Observe(10 * time.Millisecond)
	h.Observe(20 * time.Millisecond)
	h.Observe(30 * time.Millisecond)
	if got := h.Mean(); got != 20*time.Millisecond {
		t.Errorf("Mean = %v, want 20ms", got)
	}
	if got := h.Stddev(); got != 10*time.Millisecond {
		t.Errorf("Stddev = %v, want 10ms", got)
	}
}

func TestHistogramCumulativeWithin(t *testing.T) {
	h := NewHistogram()
	for _, ms := range []int{5, 10, 15, 20, 25} {
		h.Observe(time.Duration(ms) * time.Millisecond)
	}
	got := h.CumulativeWithin([]time.Duration{
		time.Millisecond, 10 * time.Millisecond, 17 * time.Millisecond, time.Second,
	})
	want := []int{0, 2, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("CumulativeWithin[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestHistogramCumulativeMonotone(t *testing.T) {
	f := func(raw []uint16) bool {
		h := NewHistogram()
		for _, r := range raw {
			h.Observe(time.Duration(r) * time.Microsecond)
		}
		ths := []time.Duration{0, time.Microsecond, 100 * time.Microsecond,
			10 * time.Millisecond, 100 * time.Millisecond}
		counts := h.CumulativeWithin(ths)
		prev := -1
		for _, c := range counts {
			if c < prev || c > len(raw) {
				return false
			}
			prev = c
		}
		return counts[len(counts)-1] == len(raw) // all uint16 µs fit under 100ms
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 8000 {
		t.Fatalf("Count = %d, want 8000", got)
	}
}

// TestHistogramSampleCap is the satellite bugfix regression: Observe past
// the retention cap must not grow memory, while exact statistics survive and
// quantiles remain reservoir estimates of the full stream.
func TestHistogramSampleCap(t *testing.T) {
	const capN = 1000
	h := NewHistogramCap(capN)
	for i := 1; i <= 10*capN; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	if got := h.Count(); got != 10*capN {
		t.Fatalf("Count = %d, want %d (exact past the cap)", got, 10*capN)
	}
	if got := len(h.Samples()); got != capN {
		t.Fatalf("retained %d samples, want cap %d", got, capN)
	}
	if got := h.Min(); got != time.Microsecond {
		t.Errorf("Min = %v, want 1µs (exact)", got)
	}
	if got := h.Max(); got != 10*capN*time.Microsecond {
		t.Errorf("Max = %v, want %v (exact)", got, 10*capN*time.Microsecond)
	}
	wantMean := time.Duration(10*capN+1) * time.Microsecond / 2
	if got := h.Mean(); got != wantMean {
		t.Errorf("Mean = %v, want %v (exact)", got, wantMean)
	}
	// The stream is uniform over (0, 10ms]; the reservoir median should be a
	// fair estimate, not stuck in the first cap samples (which would put it
	// at ~500µs).
	if got := h.Quantile(0.5); got < 3*time.Millisecond || got > 7*time.Millisecond {
		t.Errorf("reservoir median = %v, want ~5ms", got)
	}
	// CumulativeWithin scales the retained fraction back to the full stream.
	within := h.CumulativeWithin([]time.Duration{10 * capN * time.Microsecond})
	if within[0] < 9*capN || within[0] > 10*capN {
		t.Errorf("CumulativeWithin(max) = %d, want ~%d", within[0], 10*capN)
	}
}

// TestHistogramEmptyQuantile pins the empty-histogram contract the harness
// relies on: every statistic reports zero rather than indexing.
func TestHistogramEmptyQuantile(t *testing.T) {
	h := NewHistogram()
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
	if got := h.CumulativeWithin([]time.Duration{time.Second}); got[0] != 0 {
		t.Fatalf("empty CumulativeWithin = %d, want 0", got[0])
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for w := 0; w < 10; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 1000 {
		t.Fatalf("Counter = %d, want 1000", got)
	}
}

func TestThroughput(t *testing.T) {
	tp := Throughput{Bytes: 10e6, Ops: 500, Elapsed: 2 * time.Second}
	if got := tp.MBPerSec(); got != 5 {
		t.Errorf("MBPerSec = %v, want 5", got)
	}
	if got := tp.RPS(); got != 250 {
		t.Errorf("RPS = %v, want 250", got)
	}
	zero := Throughput{}
	if zero.MBPerSec() != 0 || zero.RPS() != 0 {
		t.Error("zero-elapsed throughput should report 0")
	}
	if s := tp.String(); s == "" {
		t.Error("String() empty")
	}
}

func TestTimeSeries(t *testing.T) {
	start := time.Date(2026, 7, 4, 0, 0, 0, 0, time.UTC)
	ts := NewTimeSeries(start, time.Second)
	ts.Record(start)
	ts.Record(start.Add(200 * time.Millisecond))
	ts.Record(start.Add(1500 * time.Millisecond))
	ts.Record(start.Add(3 * time.Second))
	got := ts.Buckets()
	want := []int64{2, 1, 0, 1}
	if len(got) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if ts.BucketWidth() != time.Second {
		t.Errorf("BucketWidth = %v, want 1s", ts.BucketWidth())
	}
}

func TestTimeSeriesBeforeStartClamps(t *testing.T) {
	start := time.Now()
	ts := NewTimeSeries(start, time.Second)
	ts.Record(start.Add(-5 * time.Second))
	if got := ts.Buckets(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("record before start: buckets = %v, want [1]", got)
	}
}

func TestTimeSeriesZeroBucketDefaults(t *testing.T) {
	ts := NewTimeSeries(time.Now(), 0)
	if ts.BucketWidth() != time.Second {
		t.Fatalf("zero bucket width should default to 1s, got %v", ts.BucketWidth())
	}
}
