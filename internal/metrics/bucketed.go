package metrics

import (
	"sync"
	"sync/atomic"
	"time"
)

// BucketedHistogram is the production counterpart of the exact-sample
// Histogram: fixed log-spaced boundaries chosen at construction, one atomic
// counter per bucket, no lock and no allocation on Observe. It trades exact
// order statistics for bounded memory and a hot path cheap enough for WAL
// fsyncs and per-RPC latencies; quantiles interpolate within the landing
// bucket, so their error is bounded by the bucket width (a factor of two
// with the default bounds).
type BucketedHistogram struct {
	bounds []int64        // sorted upper bounds; values v <= bounds[i] land in bucket i
	counts []atomic.Int64 // len(bounds)+1; the last is the +Inf overflow bucket
	count  atomic.Int64
	sum    atomic.Int64
}

// DefaultLatencyBounds covers 1µs to ~64s in factor-of-two steps (27
// buckets), wide enough for a cache hit and a timed-out quorum write alike.
func DefaultLatencyBounds() []int64 {
	bounds := make([]int64, 27)
	v := int64(time.Microsecond)
	for i := range bounds {
		bounds[i] = v
		v *= 2
	}
	return bounds
}

// DefaultSizeBounds covers 1 to ~1M in factor-of-two steps (21 buckets), for
// unitless sizes such as records per WAL fsync batch or queue depths.
func DefaultSizeBounds() []int64 {
	bounds := make([]int64, 21)
	v := int64(1)
	for i := range bounds {
		bounds[i] = v
		v *= 2
	}
	return bounds
}

// NewBucketedHistogram builds a histogram over the given sorted, strictly
// increasing upper bounds (nil means DefaultLatencyBounds).
func NewBucketedHistogram(bounds []int64) *BucketedHistogram {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBounds()
	}
	own := make([]int64, len(bounds))
	copy(own, bounds)
	for i := 1; i < len(own); i++ {
		if own[i] <= own[i-1] {
			panic("metrics: bucket bounds must be strictly increasing")
		}
	}
	return &BucketedHistogram{
		bounds: own,
		counts: make([]atomic.Int64, len(own)+1),
	}
}

// Observe records one value. Lock-free and allocation-free: two atomic adds
// plus a binary search over the bounds. The search is hand-rolled (not
// sort.Search) so no closure escapes to the heap.
func (h *BucketedHistogram) Observe(v int64) {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if v > h.bounds[mid] {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	// Count and sum land before the bucket; Snapshot reads in the opposite
	// order (buckets first), so a concurrent snapshot's bucket total never
	// exceeds its count.
	h.count.Add(1)
	h.sum.Add(v)
	h.counts[lo].Add(1)
}

// ObserveDuration records a duration in nanoseconds.
func (h *BucketedHistogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count returns the number of observations.
func (h *BucketedHistogram) Count() int64 { return h.count.Load() }

// Sum returns the running sum of observed values.
func (h *BucketedHistogram) Sum() int64 { return h.sum.Load() }

// Snapshot captures a point-in-time copy. Buckets are read individually, so
// a snapshot taken during concurrent observation may lag the in-flight
// handful — fine for monitoring, which is its only consumer. Buckets are
// read before count/sum (the reverse of Observe's write order), so the
// bucket total never exceeds the count.
func (h *BucketedHistogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds, // immutable after construction; safe to share
		Counts: make([]int64, len(h.counts)),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	return s
}

// HistogramSnapshot is an immutable copy of a BucketedHistogram's state.
// Snapshots with identical bounds merge associatively, so per-shard or
// per-node histograms aggregate into cluster views.
type HistogramSnapshot struct {
	Bounds []int64
	Counts []int64 // len(Bounds)+1, last is +Inf
	Count  int64
	Sum    int64
}

// Merge returns the sum of two snapshots. Both must share bounds (they came
// from histograms built with the same constructor); mismatched bounds panic
// rather than silently mis-merge.
func (s HistogramSnapshot) Merge(o HistogramSnapshot) HistogramSnapshot {
	if len(s.Bounds) == 0 {
		return o
	}
	if len(o.Bounds) == 0 {
		return s
	}
	if len(s.Bounds) != len(o.Bounds) {
		panic("metrics: merging snapshots with different bounds")
	}
	for i := range s.Bounds {
		if s.Bounds[i] != o.Bounds[i] {
			panic("metrics: merging snapshots with different bounds")
		}
	}
	out := HistogramSnapshot{
		Bounds: s.Bounds,
		Counts: make([]int64, len(s.Counts)),
		Count:  s.Count + o.Count,
		Sum:    s.Sum + o.Sum,
	}
	for i := range s.Counts {
		out.Counts[i] = s.Counts[i] + o.Counts[i]
	}
	return out
}

// Quantile estimates the q-th (0 ≤ q ≤ 1) quantile by locating the bucket
// holding the target rank and interpolating linearly within it. Returns 0
// when empty.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		lower := int64(0)
		if i > 0 {
			lower = s.Bounds[i-1]
		}
		upper := lower
		if i < len(s.Bounds) {
			upper = s.Bounds[i]
		}
		// Overflow bucket has no upper bound: report its lower edge.
		if upper == lower {
			return lower
		}
		frac := (rank - prev) / float64(c)
		return lower + int64(frac*float64(upper-lower))
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Mean returns the exact arithmetic mean, or 0 when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// HistogramVec groups BucketedHistograms by one label value (peer address,
// shard id). Lookup is a sync.Map load on the steady-state path; histograms
// are created on first use and share the vec's bounds.
type HistogramVec struct {
	bounds []int64
	m      sync.Map // string -> *BucketedHistogram
}

// NewHistogramVec builds a vec whose member histograms use the given bounds
// (nil means DefaultLatencyBounds).
func NewHistogramVec(bounds []int64) *HistogramVec {
	if len(bounds) == 0 {
		bounds = DefaultLatencyBounds()
	}
	own := make([]int64, len(bounds))
	copy(own, bounds)
	return &HistogramVec{bounds: own}
}

// With returns the histogram for the given label value, creating it on first
// use.
func (v *HistogramVec) With(label string) *BucketedHistogram {
	if h, ok := v.m.Load(label); ok {
		return h.(*BucketedHistogram)
	}
	h, _ := v.m.LoadOrStore(label, NewBucketedHistogram(v.bounds))
	return h.(*BucketedHistogram)
}

// Snapshots returns a snapshot per label value.
func (v *HistogramVec) Snapshots() map[string]HistogramSnapshot {
	out := make(map[string]HistogramSnapshot)
	v.m.Range(func(k, h any) bool {
		out[k.(string)] = h.(*BucketedHistogram).Snapshot()
		return true
	})
	return out
}
