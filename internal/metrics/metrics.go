// Package metrics provides the measurement primitives the evaluation harness
// uses to reproduce the paper's figures: latency histograms with percentile
// extraction (TTFB/TTLB), throughput and request-rate counters, and
// time-series samplers for the Put-success-over-time experiment (Fig 16).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultSampleCap bounds how many exact samples a Histogram retains. A full
// reservoir is 8 MiB; beyond it, incoming samples displace retained ones
// uniformly at random (Vitter's algorithm R), so a multi-hour chaos run keeps
// a statistically faithful window instead of growing memory linearly.
const DefaultSampleCap = 1 << 20

// Histogram records durations and extracts order statistics. It keeps exact
// samples up to a cap (the experiments record at most a few hundred thousand
// operations, well under it), guarded by a mutex so load-generator goroutines
// can record concurrently. Count, Mean, Min and Max stay exact past the cap;
// quantiles and cumulative counts become reservoir estimates.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
	sorted  bool
	cap     int
	seen    int64 // total observations, including displaced ones
	sum     time.Duration
	min     time.Duration
	max     time.Duration
	rng     uint64
}

// NewHistogram returns an empty histogram retaining up to DefaultSampleCap
// samples.
func NewHistogram() *Histogram {
	return &Histogram{cap: DefaultSampleCap, rng: 0x9E3779B97F4A7C15}
}

// NewHistogramCap returns an empty histogram retaining up to n samples
// (n <= 0 means DefaultSampleCap).
func NewHistogramCap(n int) *Histogram {
	h := NewHistogram()
	if n > 0 {
		h.cap = n
	}
	return h
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.seen++
	h.sum += d
	if h.seen == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	if h.cap <= 0 { // zero value: retain everything (legacy behavior)
		h.samples = append(h.samples, d)
		h.sorted = false
		return
	}
	if len(h.samples) < h.cap {
		h.samples = append(h.samples, d)
		h.sorted = false
		return
	}
	// Reservoir full: keep d with probability cap/seen, displacing a
	// uniformly random resident (xorshift64, cheap and already under h.mu).
	h.rng ^= h.rng << 13
	h.rng ^= h.rng >> 7
	h.rng ^= h.rng << 17
	if j := h.rng % uint64(h.seen); j < uint64(h.cap) {
		h.samples[j] = d
		h.sorted = false
	}
}

// Count returns the number of observed samples, including any no longer
// retained by the reservoir.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return int(h.seen)
}

func (h *Histogram) sortLocked() {
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
}

// Quantile returns the q-th (0 ≤ q ≤ 1) order statistic, or zero when empty.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	h.sortLocked()
	idx := int(q * float64(len(h.samples)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.samples) {
		idx = len(h.samples) - 1
	}
	return h.samples[idx]
}

// Mean returns the arithmetic mean over every observation (exact even past
// the reservoir cap), or zero when empty.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.seen == 0 {
		return 0
	}
	return h.sum / time.Duration(h.seen)
}

// Min returns the smallest observation (exact even past the reservoir cap),
// or zero when empty.
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max returns the largest observation (exact even past the reservoir cap),
// or zero when empty.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Stddev returns the sample standard deviation, or zero for fewer than two
// samples.
func (h *Histogram) Stddev() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.samples)
	if n < 2 {
		return 0
	}
	var mean float64
	for _, s := range h.samples {
		mean += float64(s)
	}
	mean /= float64(n)
	var variance float64
	for _, s := range h.samples {
		d := float64(s) - mean
		variance += d * d
	}
	variance /= float64(n - 1)
	return time.Duration(math.Sqrt(variance))
}

// Samples returns a copy of the recorded samples in insertion order is not
// guaranteed; callers treating them as a distribution must not rely on order.
func (h *Histogram) Samples() []time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]time.Duration, len(h.samples))
	copy(out, h.samples)
	return out
}

// CumulativeWithin returns how many samples are ≤ each of the given
// thresholds. This is the statistic Fig 17 plots: "the sum of all the Put
// operations whose consuming time is less than the consuming time specified
// by the horizontal axis".
func (h *Histogram) CumulativeWithin(thresholds []time.Duration) []int {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sortLocked()
	out := make([]int, len(thresholds))
	for i, t := range thresholds {
		n := sort.Search(len(h.samples), func(j int) bool { return h.samples[j] > t })
		if int64(len(h.samples)) < h.seen {
			// Reservoir displaced samples: scale the retained fraction back
			// up to an estimate over every observation.
			n = int(float64(n) * float64(h.seen) / float64(len(h.samples)))
		}
		out[i] = n
	}
	return out
}

// Counter is a concurrency-safe monotonically increasing counter. It is
// lock-free so hot paths (WAL appends, cache lookups) can bump it without
// contending: the zero value is ready to use.
type Counter struct {
	n atomic.Int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) { c.n.Add(delta) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.n.Load() }

// Throughput summarizes a timed run: bytes moved, operations completed and
// the wall-clock window, from which it derives MB/s and requests per second.
type Throughput struct {
	Bytes   int64
	Ops     int64
	Errors  int64
	Elapsed time.Duration
}

// MBPerSec returns megabytes per second (decimal MB, as the paper reports).
func (t Throughput) MBPerSec() float64 {
	if t.Elapsed <= 0 {
		return 0
	}
	return float64(t.Bytes) / 1e6 / t.Elapsed.Seconds()
}

// RPS returns successful requests per second.
func (t Throughput) RPS() float64 {
	if t.Elapsed <= 0 {
		return 0
	}
	return float64(t.Ops) / t.Elapsed.Seconds()
}

// String renders the summary in the units the paper's figures use.
func (t Throughput) String() string {
	return fmt.Sprintf("%.2f MB/s, %.1f req/s (%d ops, %d errors, %s)",
		t.MBPerSec(), t.RPS(), t.Ops, t.Errors, t.Elapsed.Round(time.Millisecond))
}

// TimeSeries accumulates per-bucket counts over elapsed time, used for the
// "successful hits per second" plot (Fig 16).
type TimeSeries struct {
	mu     sync.Mutex
	start  time.Time
	bucket time.Duration
	counts []int64
}

// NewTimeSeries starts a series at now with the given bucket width.
func NewTimeSeries(now time.Time, bucket time.Duration) *TimeSeries {
	if bucket <= 0 {
		bucket = time.Second
	}
	return &TimeSeries{start: now, bucket: bucket}
}

// Record adds one event at time at.
func (ts *TimeSeries) Record(at time.Time) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	idx := int(at.Sub(ts.start) / ts.bucket)
	if idx < 0 {
		idx = 0
	}
	for len(ts.counts) <= idx {
		ts.counts = append(ts.counts, 0)
	}
	ts.counts[idx]++
}

// Buckets returns a copy of the per-bucket counts.
func (ts *TimeSeries) Buckets() []int64 {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	out := make([]int64, len(ts.counts))
	copy(out, ts.counts)
	return out
}

// BucketWidth returns the configured bucket width.
func (ts *TimeSeries) BucketWidth() time.Duration { return ts.bucket }
