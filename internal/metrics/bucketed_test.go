package metrics

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// bucketIndex returns which bucket of bounds v lands in, mirroring Observe.
func bucketIndex(bounds []int64, v int64) int {
	i := sort.Search(len(bounds), func(j int) bool { return v <= bounds[j] })
	return i
}

// TestBucketedQuantileAccuracy drives both histogram kinds with the same
// samples across several distributions and requires the bucketed quantile to
// land within one bucket of the exact order statistic — the "agree within
// bucket error" guarantee the production metrics rely on.
func TestBucketedQuantileAccuracy(t *testing.T) {
	const n = 20000
	gen := rand.New(rand.NewSource(42))
	cases := []struct {
		name string
		draw func() time.Duration
	}{
		{"uniform", func() time.Duration {
			return time.Microsecond + time.Duration(gen.Int63n(int64(100*time.Millisecond)))
		}},
		{"exponential", func() time.Duration {
			d := time.Duration(gen.ExpFloat64() * float64(time.Millisecond))
			if d < time.Microsecond {
				d = time.Microsecond
			}
			return d
		}},
		{"bimodal", func() time.Duration {
			if gen.Float64() < 0.9 {
				return 50*time.Microsecond + time.Duration(gen.Int63n(int64(100*time.Microsecond)))
			}
			return 20*time.Millisecond + time.Duration(gen.Int63n(int64(60*time.Millisecond)))
		}},
		{"constant", func() time.Duration { return 1500 * time.Microsecond }},
		{"heavy-tail", func() time.Duration {
			// Pareto-ish: 1µs * 2^(12*u), spanning the full bucket range.
			return time.Duration(float64(time.Microsecond) * pow2(12*gen.Float64()))
		}},
	}
	quantiles := []float64{0.1, 0.25, 0.5, 0.9, 0.99, 0.999}
	bounds := DefaultLatencyBounds()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			exact := NewHistogram()
			bucketed := NewBucketedHistogram(bounds)
			for i := 0; i < n; i++ {
				d := tc.draw()
				exact.Observe(d)
				bucketed.ObserveDuration(d)
			}
			snap := bucketed.Snapshot()
			for _, q := range quantiles {
				want := int64(exact.Quantile(q))
				got := snap.Quantile(q)
				if diff := bucketIndex(bounds, got) - bucketIndex(bounds, want); diff < -1 || diff > 1 {
					t.Errorf("q%.3f: bucketed %v in bucket %d, exact %v in bucket %d",
						q, time.Duration(got), bucketIndex(bounds, got),
						time.Duration(want), bucketIndex(bounds, want))
				}
			}
			if snap.Count != n || snap.Count != bucketed.Count() {
				t.Fatalf("count = %d / %d, want %d", snap.Count, bucketed.Count(), n)
			}
			exactMean := float64(exact.Mean())
			if m := snap.Mean(); m < exactMean*0.999 || m > exactMean*1.001 {
				t.Errorf("mean = %v, exact %v", m, exactMean)
			}
		})
	}
}

func pow2(x float64) float64 {
	out := 1.0
	for x >= 1 {
		out *= 2
		x--
	}
	return out * (1 + x) // linear between powers; fine for test data
}

func TestBucketedQuantileEdges(t *testing.T) {
	var empty HistogramSnapshot
	if got := empty.Quantile(0.5); got != 0 {
		t.Fatalf("empty quantile = %d", got)
	}
	if got := empty.Mean(); got != 0 {
		t.Fatalf("empty mean = %v", got)
	}
	h := NewBucketedHistogram([]int64{10, 100, 1000})
	h.Observe(5)
	h.Observe(5000) // overflow bucket
	s := h.Snapshot()
	if got := s.Quantile(-1); got < 0 || got > 10 {
		t.Fatalf("q<0 = %d, want within first bucket", got)
	}
	if got := s.Quantile(2); got != 1000 {
		t.Fatalf("q>1 = %d, want overflow lower edge 1000", got)
	}
	if got := s.Quantile(1); got != 1000 {
		t.Fatalf("q1 = %d, want 1000 (overflow reports its lower edge)", got)
	}
}

func TestSnapshotMergeAssociative(t *testing.T) {
	gen := rand.New(rand.NewSource(7))
	mk := func() HistogramSnapshot {
		h := NewBucketedHistogram(DefaultSizeBounds())
		for i := 0; i < 500; i++ {
			h.Observe(gen.Int63n(2_000_000))
		}
		return h.Snapshot()
	}
	a, b, c := mk(), mk(), mk()
	left := a.Merge(b).Merge(c)
	right := a.Merge(b.Merge(c))
	if left.Count != right.Count || left.Sum != right.Sum {
		t.Fatalf("merge not associative: %d/%d vs %d/%d", left.Count, left.Sum, right.Count, right.Sum)
	}
	for i := range left.Counts {
		if left.Counts[i] != right.Counts[i] {
			t.Fatalf("bucket %d: %d vs %d", i, left.Counts[i], right.Counts[i])
		}
	}
	if left.Count != 1500 {
		t.Fatalf("merged count = %d", left.Count)
	}
	// Merging with a zero snapshot is the identity.
	var zero HistogramSnapshot
	id := zero.Merge(a)
	if id.Count != a.Count || a.Merge(zero).Count != a.Count {
		t.Fatal("zero snapshot is not a merge identity")
	}
	// Mismatched bounds must refuse loudly.
	other := NewBucketedHistogram([]int64{1, 2, 3}).Snapshot()
	defer func() {
		if recover() == nil {
			t.Fatal("merging mismatched bounds did not panic")
		}
	}()
	a.Merge(other)
}

// TestBucketedHammer is the satellite -race test: 64 concurrent observers
// plus snapshot readers against one histogram; exact totals must survive.
func TestBucketedHammer(t *testing.T) {
	const (
		workers = 64
		perW    = 2000
	)
	h := NewBucketedHistogram(nil)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	go func() { // concurrent scraper
		for {
			select {
			case <-stop:
				return
			default:
				s := h.Snapshot()
				var cum int64
				for _, c := range s.Counts {
					cum += c
				}
				// Observe writes count before bucket and Snapshot reads
				// buckets before count, so this holds exactly.
				if cum > s.Count {
					panic("snapshot bucket total ran ahead of count")
				}
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				h.Observe(int64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	s := h.Snapshot()
	if s.Count != workers*perW {
		t.Fatalf("count = %d, want %d", s.Count, workers*perW)
	}
	var cum int64
	for _, c := range s.Counts {
		cum += c
	}
	if cum != s.Count {
		t.Fatalf("bucket total %d != count %d", cum, s.Count)
	}
}

// TestObserveAllocationFree pins the acceptance criterion that the hot path
// never touches the heap.
func TestObserveAllocationFree(t *testing.T) {
	h := NewBucketedHistogram(nil)
	if avg := testing.AllocsPerRun(1000, func() { h.Observe(123456) }); avg != 0 {
		t.Fatalf("Observe allocates %.1f objects per call", avg)
	}
	v := NewHistogramVec(nil)
	peer := v.With("n1") // steady state: histogram exists
	if avg := testing.AllocsPerRun(1000, func() { peer.ObserveDuration(5 * time.Millisecond) }); avg != 0 {
		t.Fatalf("vec Observe allocates %.1f objects per call", avg)
	}
}

func BenchmarkBucketedObserve(b *testing.B) {
	h := NewBucketedHistogram(nil)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := int64(1)
		for pb.Next() {
			h.Observe(v)
			v = v*2097169 + 7 // wander across buckets
		}
	})
}

func TestHistogramVec(t *testing.T) {
	v := NewHistogramVec([]int64{10, 100})
	v.With("a").Observe(5)
	v.With("a").Observe(50)
	v.With("b").Observe(500)
	snaps := v.Snapshots()
	if len(snaps) != 2 {
		t.Fatalf("labels = %d, want 2", len(snaps))
	}
	if snaps["a"].Count != 2 || snaps["b"].Count != 1 {
		t.Fatalf("counts a=%d b=%d", snaps["a"].Count, snaps["b"].Count)
	}
	if snaps["b"].Counts[2] != 1 {
		t.Fatal("b's sample should land in the overflow bucket")
	}
	if v.With("a") != v.With("a") {
		t.Fatal("With not stable per label")
	}
}

func TestBadBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-increasing bounds did not panic")
		}
	}()
	NewBucketedHistogram([]int64{10, 10, 20})
}
