package metrics

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// MetricType is the exposition type of a metric family.
type MetricType string

// Exposition types rendered on the # TYPE line.
const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

// source is one labeled sample provider inside a family.
type source struct {
	label string // label value, "" for unlabeled
	value func() float64
	hist  func() HistogramSnapshot            // set for histogram families
	vec   func() map[string]HistogramSnapshot // set for dynamic-label histogram families
	scale float64                             // multiplies values (1e-9 turns nanos into seconds)
}

// Family is one named metric with HELP/TYPE metadata and any number of
// labeled sources, each read lazily at scrape time so registration costs the
// instrumented subsystem nothing.
type Family struct {
	name      string
	help      string
	typ       MetricType
	labelName string

	mu      sync.Mutex
	sources []source
}

// Add registers a gauge/counter source under the given label value (empty
// for an unlabeled family). fn is called at scrape time.
func (f *Family) Add(labelValue string, fn func() float64) *Family {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.sources = append(f.sources, source{label: labelValue, value: fn, scale: 1})
	return f
}

// AddHistogram registers a histogram source under the given label value.
// scale multiplies observed values at render time: pass 1e-9 for histograms
// observed in nanoseconds so exposition follows the Prometheus convention of
// seconds (0 means 1).
func (f *Family) AddHistogram(labelValue string, scale float64, fn func() HistogramSnapshot) *Family {
	if scale == 0 {
		scale = 1
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.sources = append(f.sources, source{label: labelValue, hist: fn, scale: scale})
	return f
}

// AddHistogramVec registers a dynamic-label histogram source: fn returns a
// label→snapshot map read at scrape time, so labels that appear later (a peer
// first contacted mid-run) show up without re-registration. Snapshots from
// different vec sources that share a label are merged, which lets several
// in-proc nodes report into one per-peer family.
func (f *Family) AddHistogramVec(scale float64, fn func() map[string]HistogramSnapshot) *Family {
	if scale == 0 {
		scale = 1
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.sources = append(f.sources, source{vec: fn, scale: scale})
	return f
}

func (f *Family) snapshotSources() []source {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]source, len(f.sources))
	copy(out, f.sources)
	return out
}

// expandedSources resolves vec sources into concrete per-label histogram
// sources, merging same-label snapshots across vecs.
func (f *Family) expandedSources() []source {
	srcs := f.snapshotSources()
	out := make([]source, 0, len(srcs))
	var merged map[string]HistogramSnapshot
	var vecScale float64
	for _, s := range srcs {
		if s.vec == nil {
			out = append(out, s)
			continue
		}
		vecScale = s.scale
		for label, snap := range s.vec() {
			if merged == nil {
				merged = make(map[string]HistogramSnapshot)
			}
			if prev, ok := merged[label]; ok {
				merged[label] = prev.Merge(snap)
			} else {
				merged[label] = snap
			}
		}
	}
	for label, snap := range merged {
		snap := snap
		out = append(out, source{label: label, hist: func() HistogramSnapshot { return snap }, scale: vecScale})
	}
	return out
}

// Registry is the central catalog every subsystem registers its metrics
// into. One registry serves a whole process (gateway plus any in-proc
// cluster nodes); families are created once and accumulate labeled sources
// as nodes register.
type Registry struct {
	mu       sync.Mutex
	families map[string]*Family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*Family)}
}

// Register returns the family with the given name, creating it on first use.
// Re-registering an existing name returns the same family (so five in-proc
// nodes each add their labeled source to one mystore_wal_appends_total); the
// first registration's help/type/label metadata wins.
func (r *Registry) Register(name, help string, typ MetricType, labelName string) *Family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		return f
	}
	f := &Family{name: name, help: help, typ: typ, labelName: labelName}
	r.families[name] = f
	return f
}

// CounterFunc registers a single-source counter family in one call.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.Register(name, help, TypeCounter, "").Add("", fn)
}

// GaugeFunc registers a single-source gauge family in one call.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.Register(name, help, TypeGauge, "").Add("", fn)
}

func (r *Registry) sortedFamilies() []*Family {
	r.mu.Lock()
	out := make([]*Family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// escapeLabel escapes a label value per the Prometheus text format:
// backslash, double quote, and newline.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string: backslash and newline (quotes pass
// through, per the format spec).
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// fmtFloat renders a sample value: integers without a mantissa, everything
// else in shortest round-trip form.
func fmtFloat(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelPair renders {name="value"} (with extra appended inside the braces),
// or the empty string for unlabeled samples.
func labelPair(name, value, extra string) string {
	switch {
	case name == "" && extra == "":
		return ""
	case name == "":
		return "{" + extra + "}"
	case extra == "":
		return `{` + name + `="` + escapeLabel(value) + `"}`
	default:
		return `{` + name + `="` + escapeLabel(value) + `",` + extra + `}`
	}
}

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, sources by label value,
// histograms as cumulative le-buckets plus _sum and _count. Hand-rendered on
// the stdlib so the repo takes no client library dependency.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		sources := f.expandedSources()
		if len(sources) == 0 {
			continue
		}
		sort.SliceStable(sources, func(i, j int) bool { return sources[i].label < sources[j].label })
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			f.name, escapeHelp(f.help), f.name, f.typ); err != nil {
			return err
		}
		for _, s := range sources {
			if s.hist == nil {
				if _, err := fmt.Fprintf(w, "%s%s %s\n",
					f.name, labelPair(f.labelName, s.label, ""), fmtFloat(s.value()*s.scale)); err != nil {
					return err
				}
				continue
			}
			snap := s.hist()
			var cum int64
			for i, c := range snap.Counts {
				cum += c
				le := "+Inf"
				if i < len(snap.Bounds) {
					le = fmtFloat(float64(snap.Bounds[i]) * s.scale)
				}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
					f.name, labelPair(f.labelName, s.label, `le="`+le+`"`), cum); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n",
				f.name, labelPair(f.labelName, s.label, ""), fmtFloat(float64(snap.Sum)*s.scale),
				f.name, labelPair(f.labelName, s.label, ""), snap.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// Snapshot flattens the registry to name → value for the JSON /stats
// endpoint: labeled sources sum into their family, histograms contribute
// <name>_count and <name>_sum (both in the histogram's native unit,
// unscaled).
func (r *Registry) Snapshot() map[string]float64 {
	out := make(map[string]float64)
	for _, f := range r.sortedFamilies() {
		for _, s := range f.expandedSources() {
			if s.hist == nil {
				out[f.name] += s.value() * s.scale
				continue
			}
			snap := s.hist()
			out[f.name+"_count"] += float64(snap.Count)
			out[f.name+"_sum"] += float64(snap.Sum) * s.scale
		}
	}
	return out
}
