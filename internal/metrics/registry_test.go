package metrics

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// buildFixtureRegistry assembles a registry whose rendered form is fully
// deterministic: fixed counter values, a histogram with hand-placed samples,
// labels exercising sort order and escaping.
func buildFixtureRegistry() *Registry {
	r := NewRegistry()
	r.CounterFunc("mystore_test_requests_total", "Requests handled.", func() float64 { return 42 })
	r.GaugeFunc("mystore_test_queue_depth", "Current queue depth.", func() float64 { return 7.5 })

	shards := r.Register("mystore_test_cache_hits_total", "Cache hits per shard.", TypeCounter, "shard")
	shards.Add("b", func() float64 { return 2 }) // registered out of order: render must sort
	shards.Add("a", func() float64 { return 1 })
	shards.Add(`quote"back\slash`+"\n", func() float64 { return 3 }) // escaping

	help := r.Register("mystore_test_help_escape", "Line one\nline \\two.", TypeGauge, "")
	help.Add("", func() float64 { return 0 })

	h := NewBucketedHistogram([]int64{1_000_000, 10_000_000, 100_000_000}) // 1ms/10ms/100ms in ns
	h.Observe(500_000)
	h.Observe(5_000_000)
	h.Observe(5_000_000)
	h.Observe(2_000_000_000) // overflow
	r.Register("mystore_test_latency_seconds", "Request latency.", TypeHistogram, "op").
		AddHistogram("put", 1e-9, h.Snapshot)
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := buildFixtureRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

func TestWritePrometheusDeterministic(t *testing.T) {
	r := buildFixtureRegistry()
	var a, b bytes.Buffer
	if err := r.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two renders of one registry differ")
	}
}

func TestRegisterIdempotent(t *testing.T) {
	r := NewRegistry()
	f1 := r.Register("mystore_x_total", "X.", TypeCounter, "node")
	f2 := r.Register("mystore_x_total", "ignored", TypeGauge, "ignored")
	if f1 != f2 {
		t.Fatal("re-registering a name returned a different family")
	}
	f1.Add("n1", func() float64 { return 1 })
	f2.Add("n2", func() float64 { return 2 })
	snap := r.Snapshot()
	if snap["mystore_x_total"] != 3 {
		t.Fatalf("summed family = %v, want 3", snap["mystore_x_total"])
	}
}

func TestSnapshotFlattensHistograms(t *testing.T) {
	r := NewRegistry()
	h := NewBucketedHistogram([]int64{10})
	h.Observe(4)
	h.Observe(20)
	r.Register("mystore_h", "H.", TypeHistogram, "").AddHistogram("", 1, h.Snapshot)
	snap := r.Snapshot()
	if snap["mystore_h_count"] != 2 || snap["mystore_h_sum"] != 24 {
		t.Fatalf("snapshot = %v", snap)
	}
	// Sums honor the family scale, matching WritePrometheus (nanos → seconds).
	r2 := NewRegistry()
	r2.Register("mystore_h_seconds", "H.", TypeHistogram, "").AddHistogram("", 1e-9, h.Snapshot)
	snap2 := r2.Snapshot()
	if got := snap2["mystore_h_seconds_sum"]; got < 23.9e-9 || got > 24.1e-9 {
		t.Fatalf("scaled sum = %v, want ~24e-9", got)
	}
	if snap2["mystore_h_seconds_count"] != 2 {
		t.Fatalf("scaled count = %v", snap2["mystore_h_seconds_count"])
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	var buf bytes.Buffer
	if err := buildFixtureRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// The +Inf bucket must equal the count and cumulate over lower buckets.
	if !strings.Contains(out, `mystore_test_latency_seconds_bucket{op="put",le="+Inf"} 4`) {
		t.Fatalf("missing cumulative +Inf bucket:\n%s", out)
	}
	if !strings.Contains(out, `mystore_test_latency_seconds_bucket{op="put",le="0.001"} 1`) {
		t.Fatalf("missing first bucket:\n%s", out)
	}
	if !strings.Contains(out, `mystore_test_latency_seconds_count{op="put"} 4`) {
		t.Fatalf("missing _count:\n%s", out)
	}
}
