// Package merkle implements the incrementally maintained hash trees behind
// MyStore's anti-entropy (Dynamo §4.7, Spinnaker's recovery catch-up): the
// 32-bit ring hash space is partitioned into a fixed number of leaf ranges,
// each leaf holds a commutative digest of the records whose key hash falls in
// it, and internal nodes combine their children. Two replicas compare trees
// top-down, exchanging O(log leaves) hashes per level, so a converged pair
// settles a round after a single root comparison instead of re-digesting
// every key.
//
// The leaf digest is the XOR of per-record identity hashes. XOR makes the
// digest incrementally maintainable in O(1) per mutation — apply a write by
// XOR-ing out the old record hash and XOR-ing in the new one — at the cost
// of cryptographic strength, which anti-entropy does not need: a collision
// merely delays one repair to the next divergence, it cannot lose data.
package merkle

import (
	"sync"
)

// DefaultLeafBits sizes a tree at 1<<10 = 1024 leaf ranges: 8 KiB of digest
// state per tree, a 10-level descent, and at paper scale (100k keys over 5
// nodes) ~100 shared keys per leaf — one leaf sync moves a small, targeted
// batch.
const DefaultLeafBits = 10

// fnv64 constants (FNV-1a).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// hashString folds s into h with FNV-1a.
func hashString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

func hashByte(h uint64, b byte) uint64 {
	h ^= uint64(b)
	h *= fnvPrime
	return h
}

func hashUint64(h uint64, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = hashByte(h, byte(v>>(8*i)))
	}
	return h
}

// RecordHash is the identity hash of one stored record version. Two replicas
// holding the same (key, ver, origin, deleted) contribute identical terms to
// their leaf digests; any difference — missing, stale, diverged tombstone —
// changes the XOR.
func RecordHash(key string, ver int64, origin string, deleted bool) uint64 {
	h := uint64(fnvOffset)
	h = hashString(h, key)
	h = hashByte(h, 0)
	h = hashUint64(h, uint64(ver))
	h = hashString(h, origin)
	d := byte(0)
	if deleted {
		d = 1
	}
	return hashByte(h, d)
}

// combine mixes two child hashes into their parent. Position matters (left
// vs right feed in order), so sibling swaps are visible.
func combine(left, right uint64) uint64 {
	h := uint64(fnvOffset)
	h = hashUint64(h, left)
	h = hashUint64(h, right)
	return h
}

// Tree is one incrementally maintained hash tree. It is safe for concurrent
// use; updates are O(1) (one XOR under a mutex) and node reads fold the
// covered leaves on demand — O(leaves/2^level), at most 1024 XORs for the
// root, which is independent of the number of keys.
type Tree struct {
	mu       sync.Mutex
	leafBits uint
	leaves   []uint64
	records  int64 // records currently folded in (diagnostics)
}

// New returns an empty tree with 1<<leafBits leaf ranges. leafBits outside
// [1, 24] takes DefaultLeafBits.
func New(leafBits int) *Tree {
	if leafBits < 1 || leafBits > 24 {
		leafBits = DefaultLeafBits
	}
	return &Tree{leafBits: uint(leafBits), leaves: make([]uint64, 1<<uint(leafBits))}
}

// LeafBits returns the tree's depth in levels below the root.
func (t *Tree) LeafBits() int { return int(t.leafBits) }

// Leaves returns the number of leaf ranges.
func (t *Tree) Leaves() int { return 1 << t.leafBits }

// Leaf maps a 32-bit key hash to its leaf index: the high leafBits bits, so
// a leaf covers one contiguous range of the hash ring.
func (t *Tree) Leaf(keyHash uint32) uint32 {
	return keyHash >> (32 - t.leafBits)
}

// Add folds one record hash into the leaf covering keyHash.
func (t *Tree) Add(keyHash uint32, recordHash uint64) {
	t.mu.Lock()
	t.leaves[t.Leaf(keyHash)] ^= recordHash
	t.records++
	t.mu.Unlock()
}

// Remove folds one record hash out (XOR is its own inverse).
func (t *Tree) Remove(keyHash uint32, recordHash uint64) {
	t.mu.Lock()
	t.leaves[t.Leaf(keyHash)] ^= recordHash
	t.records--
	t.mu.Unlock()
}

// Replace swaps oldHash for newHash in keyHash's leaf: the O(1) per-apply
// update the docstore observer drives on every record write.
func (t *Tree) Replace(keyHash uint32, oldHash, newHash uint64) {
	t.mu.Lock()
	t.leaves[t.Leaf(keyHash)] ^= oldHash ^ newHash
	t.mu.Unlock()
}

// Records returns how many records are currently folded in.
func (t *Tree) Records() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.records
}

// Reset empties the tree (rebuilds start here).
func (t *Tree) Reset() {
	t.mu.Lock()
	for i := range t.leaves {
		t.leaves[i] = 0
	}
	t.records = 0
	t.mu.Unlock()
}

// Node returns the hash of the node at (level, index), where level 0 is the
// root covering everything and level LeafBits is the leaf row. An index past
// the row's width returns 0.
func (t *Tree) Node(level int, index uint32) uint64 {
	if level < 0 {
		level = 0
	}
	if level > int(t.leafBits) {
		level = int(t.leafBits)
	}
	if index >= 1<<uint(level) {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.nodeLocked(uint(level), index)
}

// Nodes returns the hashes at the given (level, index) pairs in one lock
// acquisition — the descent handler's batch read.
func (t *Tree) Nodes(level int, indexes []uint32) []uint64 {
	if level < 0 {
		level = 0
	}
	if level > int(t.leafBits) {
		level = int(t.leafBits)
	}
	out := make([]uint64, len(indexes))
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, idx := range indexes {
		if idx < 1<<uint(level) {
			out[i] = t.nodeLocked(uint(level), idx)
		}
	}
	return out
}

// Root returns the root hash. Two trees over the same record set have equal
// roots; a converged anti-entropy round costs exactly this one comparison.
func (t *Tree) Root() uint64 { return t.Node(0, 0) }

// nodeLocked folds the leaves covered by (level, index) up to one hash.
// Caller holds mu.
func (t *Tree) nodeLocked(level uint, index uint32) uint64 {
	span := uint32(1) << (t.leafBits - level)
	lo := index * span
	if span == 1 {
		return t.leaves[lo]
	}
	// Fold bottom-up: row k holds the subtree's nodes at depth k below this
	// node. Work in place over a copy-free window using pairwise combines.
	return t.foldLocked(lo, span)
}

// foldLocked combines leaves[lo:lo+span] pairwise into a single hash without
// allocating per call beyond one scratch row.
func (t *Tree) foldLocked(lo, span uint32) uint64 {
	// span is a power of two ≥ 2.
	row := make([]uint64, span)
	copy(row, t.leaves[lo:lo+span])
	for width := span; width > 1; width /= 2 {
		for i := uint32(0); i < width/2; i++ {
			row[i] = combine(row[2*i], row[2*i+1])
		}
	}
	return row[0]
}

// LeafRange returns the half-open key-hash range [lo, hi) a leaf covers
// (hi == 0 means wrap to 2^32, i.e. the top leaf's exclusive bound).
func (t *Tree) LeafRange(leaf uint32) (lo, hi uint32) {
	width := uint32(1) << (32 - t.leafBits)
	return leaf * width, (leaf + 1) * width
}
