package merkle

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func TestEmptyTreesAgree(t *testing.T) {
	a, b := New(10), New(10)
	if a.Root() != b.Root() {
		t.Fatalf("empty roots differ: %x vs %x", a.Root(), b.Root())
	}
	if a.Records() != 0 {
		t.Fatalf("empty tree reports %d records", a.Records())
	}
}

func TestIncrementalMatchesRebuild(t *testing.T) {
	// Applying a mutation history incrementally (Add/Replace/Remove) must
	// land on the same tree as rebuilding from the final state.
	rng := rand.New(rand.NewSource(42))
	inc := New(8)
	type rec struct {
		ver  int64
		hash uint64
	}
	state := map[string]rec{}
	keyHash := func(k string) uint32 { return uint32(hashString(fnvOffset, k)) }
	for i := 0; i < 5000; i++ {
		k := fmt.Sprintf("key-%03d", rng.Intn(400))
		switch {
		case rng.Intn(10) == 0: // delete
			if old, ok := state[k]; ok {
				inc.Remove(keyHash(k), old.hash)
				delete(state, k)
			}
		default: // write a new version
			ver := int64(i + 1)
			h := RecordHash(k, ver, "origin-a", false)
			if old, ok := state[k]; ok {
				inc.Replace(keyHash(k), old.hash, h)
			} else {
				inc.Add(keyHash(k), h)
			}
			state[k] = rec{ver: ver, hash: h}
		}
	}
	rebuilt := New(8)
	for k, r := range state {
		rebuilt.Add(keyHash(k), r.hash)
	}
	if inc.Root() != rebuilt.Root() {
		t.Fatalf("incremental root %x != rebuilt root %x", inc.Root(), rebuilt.Root())
	}
	if inc.Records() != int64(len(state)) {
		t.Fatalf("record count drifted: %d vs %d", inc.Records(), len(state))
	}
	for leaf := uint32(0); leaf < uint32(inc.Leaves()); leaf++ {
		if got, want := inc.Node(inc.LeafBits(), leaf), rebuilt.Node(rebuilt.LeafBits(), leaf); got != want {
			t.Fatalf("leaf %d diverged: %x vs %x", leaf, got, want)
		}
	}
}

func TestDescentLocalizesDivergence(t *testing.T) {
	// Two trees differing in exactly one record must disagree on exactly the
	// root-to-leaf path covering that record's leaf, and agree elsewhere.
	a, b := New(10), New(10)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		k := fmt.Sprintf("rec-%05d", i)
		h := RecordHash(k, int64(rng.Intn(1000)), "o", false)
		kh := uint32(hashString(fnvOffset, k))
		a.Add(kh, h)
		b.Add(kh, h)
	}
	divergedKey := "rec-00042"
	kh := uint32(hashString(fnvOffset, divergedKey))
	b.Replace(kh, RecordHash(divergedKey, 0, "", false), RecordHash(divergedKey, 0, "", false)) // no-op sanity
	b.Add(kh, RecordHash(divergedKey, 99999, "other", false))                                  // extra version on b

	wantLeaf := a.Leaf(kh)
	// Walk the descent exactly as the anti-entropy round does.
	frontier := []uint32{0}
	for level := 0; level < a.LeafBits(); level++ {
		var next []uint32
		for _, idx := range frontier {
			for _, child := range []uint32{2 * idx, 2*idx + 1} {
				if a.Node(level+1, child) != b.Node(level+1, child) {
					next = append(next, child)
				}
			}
		}
		if len(next) != 1 {
			t.Fatalf("level %d: %d divergent nodes, want 1", level+1, len(next))
		}
		frontier = next
	}
	if frontier[0] != wantLeaf {
		t.Fatalf("descent landed on leaf %d, want %d", frontier[0], wantLeaf)
	}
	// Every other leaf agrees.
	for leaf := uint32(0); leaf < uint32(a.Leaves()); leaf++ {
		equal := a.Node(a.LeafBits(), leaf) == b.Node(b.LeafBits(), leaf)
		if leaf == wantLeaf && equal {
			t.Fatalf("diverged leaf %d compares equal", leaf)
		}
		if leaf != wantLeaf && !equal {
			t.Fatalf("leaf %d diverged unexpectedly", leaf)
		}
	}
}

func TestNodesBatchMatchesNode(t *testing.T) {
	tr := New(6)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		tr.Add(rng.Uint32(), rng.Uint64())
	}
	idx := []uint32{0, 1, 2, 3, 62, 63, 64, 1 << 30} // includes out-of-range
	got := tr.Nodes(6, idx)
	for i, ix := range idx {
		if got[i] != tr.Node(6, ix) {
			t.Fatalf("Nodes[%d] = %x, Node = %x", i, got[i], tr.Node(6, ix))
		}
	}
	if got[len(got)-1] != 0 {
		t.Fatalf("out-of-range index returned %x, want 0", got[len(got)-1])
	}
}

func TestOrderIndependence(t *testing.T) {
	// XOR leaves commute: insertion order must not matter.
	a, b := New(8), New(8)
	hashes := make([]uint64, 300)
	keys := make([]uint32, 300)
	rng := rand.New(rand.NewSource(11))
	for i := range hashes {
		hashes[i] = rng.Uint64()
		keys[i] = rng.Uint32()
		a.Add(keys[i], hashes[i])
	}
	perm := rng.Perm(len(hashes))
	for _, i := range perm {
		b.Add(keys[i], hashes[i])
	}
	if a.Root() != b.Root() {
		t.Fatalf("order changed the root: %x vs %x", a.Root(), b.Root())
	}
}

func TestConcurrentUpdatesRace(t *testing.T) {
	// Hammer a tree with concurrent writers and readers; -race is the real
	// assertion, the final root equality the functional one.
	tr := New(10)
	const writers = 8
	const perWriter = 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < perWriter; i++ {
				k := uint32(rng.Intn(1 << 16))
				tr.Replace(k<<16, uint64(w*perWriter+i), uint64(w*perWriter+i+1))
				if i%64 == 0 {
					tr.Root()
					tr.Nodes(5, []uint32{0, 1, 2, 3})
				}
			}
		}(w)
	}
	wg.Wait()
	// Each writer net-applied XOR of (first, last+...) pairs; recompute the
	// expected tree serially.
	want := New(10)
	for w := 0; w < writers; w++ {
		rng := rand.New(rand.NewSource(int64(w)))
		for i := 0; i < perWriter; i++ {
			k := uint32(rng.Intn(1 << 16))
			want.Replace(k<<16, uint64(w*perWriter+i), uint64(w*perWriter+i+1))
		}
	}
	if tr.Root() != want.Root() {
		t.Fatalf("concurrent root %x != serial root %x", tr.Root(), want.Root())
	}
}

func TestLeafRange(t *testing.T) {
	tr := New(10)
	for leaf := uint32(0); leaf < uint32(tr.Leaves()); leaf++ {
		lo, hi := tr.LeafRange(leaf)
		if tr.Leaf(lo) != leaf {
			t.Fatalf("lo bound of leaf %d maps to %d", leaf, tr.Leaf(lo))
		}
		if hi != 0 && tr.Leaf(hi-1) != leaf {
			t.Fatalf("hi-1 bound of leaf %d maps to %d", leaf, tr.Leaf(hi-1))
		}
	}
}

func BenchmarkReplace(b *testing.B) {
	tr := New(10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Replace(uint32(i), uint64(i), uint64(i+1))
	}
}

func BenchmarkRoot(b *testing.B) {
	tr := New(10)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		tr.Add(rng.Uint32(), rng.Uint64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Root()
	}
}
