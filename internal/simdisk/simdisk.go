// Package simdisk models the storage hardware under the evaluation's three
// systems. The paper's testbed gives every server two 146 GB SAS disks; the
// reproduction replaces them with a service-time model so that the three
// compared systems run against identical simulated hardware and the
// benchmark shapes come from architecture (cache tier, partitioning,
// replication protocol), not from incidental host-machine effects.
//
// A Disk services one request at a time per spindle; a request costs a
// fixed positioning overhead plus size/bandwidth transfer time. Callers
// charge the disk synchronously, so queueing under load emerges naturally.
package simdisk

import (
	"sync"
	"time"
)

// Params describe one disk.
type Params struct {
	// Seek is the per-request positioning cost. Default 100µs, between a
	// raw SAS seek and an array with write-back cache.
	Seek time.Duration
	// BytesPerSec is the sequential transfer rate. Default 100 MB/s.
	BytesPerSec float64
	// Spindles is how many requests proceed concurrently (the testbed has
	// two disks per node). Default 2.
	Spindles int
}

func (p Params) withDefaults() Params {
	if p.Seek <= 0 {
		p.Seek = 100 * time.Microsecond
	}
	if p.BytesPerSec <= 0 {
		p.BytesPerSec = 100e6
	}
	if p.Spindles <= 0 {
		p.Spindles = 2
	}
	return p
}

// Disk is one node's storage. It is safe for concurrent use; concurrent
// requests beyond the spindle count queue.
type Disk struct {
	params Params
	slots  chan struct{}

	mu        sync.Mutex
	requests  int64
	busyTotal time.Duration
}

// New builds a disk.
func New(params Params) *Disk {
	params = params.withDefaults()
	d := &Disk{params: params, slots: make(chan struct{}, params.Spindles)}
	for i := 0; i < params.Spindles; i++ {
		d.slots <- struct{}{}
	}
	return d
}

// ServiceTime returns the cost of one request of the given size, excluding
// queueing.
func (d *Disk) ServiceTime(bytes int) time.Duration {
	return d.params.Seek + time.Duration(float64(bytes)/d.params.BytesPerSec*float64(time.Second))
}

// Access charges one request: it waits for a spindle, holds it for the
// service time, and returns. Both reads and writes use the same model.
func (d *Disk) Access(bytes int) {
	<-d.slots
	st := d.ServiceTime(bytes)
	time.Sleep(st)
	d.slots <- struct{}{}
	d.mu.Lock()
	d.requests++
	d.busyTotal += st
	d.mu.Unlock()
}

// Stats reports requests served and cumulative busy time.
func (d *Disk) Stats() (requests int64, busy time.Duration) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.requests, d.busyTotal
}
