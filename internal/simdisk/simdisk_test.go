package simdisk

import (
	"sync"
	"testing"
	"time"
)

func TestServiceTimeScalesWithSize(t *testing.T) {
	d := New(Params{Seek: time.Millisecond, BytesPerSec: 1e6, Spindles: 1})
	small := d.ServiceTime(1000)
	big := d.ServiceTime(1000000)
	if small != time.Millisecond+time.Millisecond {
		t.Fatalf("ServiceTime(1KB) = %v, want 2ms (1ms seek + 1ms transfer)", small)
	}
	if big <= small {
		t.Fatalf("ServiceTime(1MB)=%v should exceed ServiceTime(1KB)=%v", big, small)
	}
}

func TestAccessTakesServiceTime(t *testing.T) {
	d := New(Params{Seek: 10 * time.Millisecond, BytesPerSec: 1e9, Spindles: 1})
	start := time.Now()
	d.Access(0)
	if elapsed := time.Since(start); elapsed < 9*time.Millisecond {
		t.Fatalf("Access returned after %v, want >= ~10ms", elapsed)
	}
}

func TestSpindlesLimitConcurrency(t *testing.T) {
	// Two spindles, four concurrent 20ms requests: total wall time must be
	// at least two batches (~40ms), not one (~20ms).
	d := New(Params{Seek: 20 * time.Millisecond, BytesPerSec: 1e12, Spindles: 2})
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			d.Access(0)
		}()
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed < 35*time.Millisecond {
		t.Fatalf("4 requests on 2 spindles finished in %v, want >= ~40ms", elapsed)
	}
}

func TestStats(t *testing.T) {
	d := New(Params{Seek: time.Millisecond, BytesPerSec: 1e9, Spindles: 2})
	for i := 0; i < 5; i++ {
		d.Access(100)
	}
	reqs, busy := d.Stats()
	if reqs != 5 {
		t.Fatalf("requests = %d, want 5", reqs)
	}
	if busy < 5*time.Millisecond {
		t.Fatalf("busy = %v, want >= 5ms", busy)
	}
}

func TestDefaults(t *testing.T) {
	d := New(Params{})
	if st := d.ServiceTime(0); st != 100*time.Microsecond {
		t.Fatalf("default seek = %v, want 100µs", st)
	}
	// 100 MB at 100 MB/s = 1s transfer.
	if st := d.ServiceTime(100e6); st < time.Second {
		t.Fatalf("ServiceTime(100MB) = %v, want >= 1s", st)
	}
}
