package cluster

import (
	"context"
	"sort"

	"mystore/internal/bson"
	"mystore/internal/nwr"
	"mystore/internal/resilience"
)

// Rebalance runs the paper's two data-movement duties on this node:
//
//   - Node addition (§5.2.4 "adding node"): records whose hash now falls in
//     a new node's region are pushed there and removed here, "the mapping
//     and migrating operation are executed by the next physical node on the
//     ring" — which is exactly the node currently holding the data.
//   - Node removal (Fig 9): for records this node still owns, any owner in
//     the current replica set that lacks the record receives a copy, so the
//     replication factor recovers after a departure.
//
// One in-place pass over the records collection (no deep-cloned snapshot)
// buckets work per destination peer; each peer then gets a digest offer —
// so records it already holds current move no payload — and the wanted
// records in streamed, throttled batches. Peers whose circuit breaker is
// open are skipped before any dial. It returns how many records were pushed
// and how many were dropped locally. A pass that could not complete — a
// peer unreachable, its breaker open, a migrated record unconfirmed — re-
// arms the rebalance flag, so the next tick retries instead of stranding
// records on non-owners until the next membership change.
func (n *Node) Rebalance(ctx context.Context) (pushed, dropped int) {
	coll := n.store.C(nwr.RecordCollection)
	self := n.Addr()

	// Bucket the work in one scan. Docs passed by Each are shared, not
	// cloned — records and ids are retained but never mutated.
	type migration struct {
		rec    nwr.Record
		id     any
		owners []string
	}
	perPeer := map[string][]nwr.Record{}
	var migrations []migration
	coll.Each(func(doc bson.D) bool {
		rec, err := nwr.RecordFromDoc(doc)
		if err != nil {
			return true
		}
		owners, err := n.ring.Successors(rec.Key, n.cfg.NWR.N)
		if err != nil {
			return true
		}
		selfOwns := false
		for _, o := range owners {
			if o == self {
				selfOwns = true
				break
			}
		}
		if !selfOwns && rec.Strong && n.consensusReplicatesKey(rec.Key) {
			// Consensus replicas hold every log-managed record of their
			// ranges, including keys whose per-key NWR owner set excludes
			// this node. Migrating such a record away and dropping it
			// locally would erase acked strong writes from the replica set;
			// keep it like owned data.
			selfOwns = true
		}
		if selfOwns {
			// Ensure fellow owners hold the record (re-replication after a
			// departure). Reads would repair lazily; this is the proactive
			// path Fig 9 describes.
			for _, o := range owners {
				if o != self {
					perPeer[o] = append(perPeer[o], rec)
				}
			}
			return true
		}
		// The record now belongs elsewhere (a node joined). It goes to every
		// owner; the local copy is dropped once at least one owner confirms.
		id, _ := doc.Get("_id")
		migrations = append(migrations, migration{rec: rec, id: id, owners: owners})
		for _, o := range owners {
			perPeer[o] = append(perPeer[o], rec)
		}
		return true
	})

	peers := make([]string, 0, len(perPeer))
	for p := range perPeer {
		peers = append(peers, p)
	}
	sort.Strings(peers) // deterministic movement order under -seed

	incomplete := false
	confirmed := make(map[string]map[string]bool, len(peers))
	for _, peer := range peers {
		if n.peerBreakerOpen(peer) {
			// An open breaker means recent proof the peer is down: skip the
			// dial entirely instead of burning a call into it, and retry
			// after the cool-down.
			incomplete = true
			continue
		}
		recs := perPeer[peer]
		if n.cfg.DisableStreamTransfer {
			// Item-at-a-time baseline: one read plus one write RPC per
			// record needing movement.
			got := map[string]bool{}
			for _, rec := range recs {
				sent, failed := n.ensureReplica(ctx, peer, rec)
				if sent {
					pushed++
				}
				if failed {
					incomplete = true
				} else {
					got[rec.Key] = true
				}
			}
			confirmed[peer] = got
			continue
		}
		os := n.newOfferSender(peer)
		for _, rec := range recs {
			os.Add(ctx, rec)
		}
		got, ok := os.Close(ctx)
		pushed += os.Sent()
		if !ok {
			incomplete = true
		}
		confirmed[peer] = got
	}

	// Drop migrated records that at least one of their new owners confirmed
	// holding (deletes deferred out of the scan: Each callbacks must not
	// re-enter the collection).
	for _, m := range migrations {
		delivered := false
		for _, o := range m.owners {
			if confirmed[o][m.rec.Key] {
				delivered = true
				break
			}
		}
		if !delivered {
			incomplete = true
			continue
		}
		if m.id != nil {
			if _, err := coll.Delete(m.id); err == nil {
				dropped++
			}
		}
	}

	if incomplete {
		// Retry, but after a cool-down: an immediate re-arm would make every
		// tick re-scan the whole store while peers are still unreachable,
		// starving the gossip ticks that share the tick loop.
		n.mu.Lock()
		n.rebalanceWanted = true
		n.rebalanceNotBefore = n.cfg.Now().Add(10 * n.cfg.GossipInterval)
		n.mu.Unlock()
	}
	return pushed, dropped
}

// peerBreakerOpen reports whether peer's circuit breaker is currently open.
func (n *Node) peerBreakerOpen(peer string) bool {
	return n.breakers != nil && n.breakers.For(peer).State() == resilience.Open
}

// ensureReplica pushes rec to owner if the owner lacks it or holds an older
// version. It reports whether a push happened and succeeded, and whether the
// owner's state could not be brought current (so the caller retries later).
func (n *Node) ensureReplica(ctx context.Context, owner string, rec nwr.Record) (sent, failed bool) {
	cur, found, err := n.coord.ReadReplicaFrom(ctx, owner, rec.Key)
	if err != nil {
		return false, true
	}
	if found && !rec.Newer(cur) {
		return false, false // already current
	}
	if n.coord.WriteReplicaTo(ctx, owner, rec) {
		return true, false
	}
	return false, true
}
