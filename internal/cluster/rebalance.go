package cluster

import (
	"context"

	"mystore/internal/docstore"
	"mystore/internal/nwr"
)

// Rebalance runs the paper's two data-movement duties on this node:
//
//   - Node addition (§5.2.4 "adding node"): records whose hash now falls in
//     a new node's region are pushed there and removed here, "the mapping
//     and migrating operation are executed by the next physical node on the
//     ring" — which is exactly the node currently holding the data.
//   - Node removal (Fig 9): for records this node still owns, any owner in
//     the current replica set that lacks the record receives a copy, so the
//     replication factor recovers after a departure.
//
// The scan is one pass over the local records collection against the
// current ring view. It returns how many records were pushed and how many
// were dropped locally. A pass that could not complete a push — the new
// owner unreachable, its breaker open — re-arms the rebalance flag, so the
// next tick retries instead of stranding records on non-owners until the
// next membership change.
func (n *Node) Rebalance(ctx context.Context) (pushed, dropped int) {
	coll := n.store.C(nwr.RecordCollection)
	docs, err := coll.Find(docstore.Filter{}, docstore.FindOptions{})
	if err != nil {
		return 0, 0
	}
	self := n.Addr()
	incomplete := false
	for _, doc := range docs {
		rec, err := nwr.RecordFromDoc(doc)
		if err != nil {
			continue
		}
		owners, err := n.ring.Successors(rec.Key, n.cfg.NWR.N)
		if err != nil {
			continue
		}
		selfOwns := false
		for _, o := range owners {
			if o == self {
				selfOwns = true
				break
			}
		}
		if selfOwns {
			// Ensure fellow owners hold the record (re-replication after a
			// departure). Reads would repair lazily; this is the proactive
			// path Fig 9 describes.
			for _, o := range owners {
				if o == self {
					continue
				}
				sent, failed := n.ensureReplica(ctx, o, rec)
				if sent {
					pushed++
				}
				if failed {
					incomplete = true
				}
			}
			continue
		}
		// The record now belongs elsewhere (a node joined). Push it to the
		// owners that lack it, then drop the local copy.
		delivered := false
		for _, o := range owners {
			sent, failed := n.ensureReplica(ctx, o, rec)
			if sent {
				pushed++
			}
			if failed {
				incomplete = true
			}
			if n.hasReplica(ctx, o, rec) {
				delivered = true
			}
		}
		if delivered {
			if id, ok := doc.Get("_id"); ok {
				if _, err := coll.Delete(id); err == nil {
					dropped++
				}
			}
		} else {
			incomplete = true
		}
	}
	if incomplete {
		// Retry, but after a cool-down: an immediate re-arm would make every
		// tick re-scan the whole store while peers are still unreachable,
		// starving the gossip ticks that share the tick loop.
		n.mu.Lock()
		n.rebalanceWanted = true
		n.rebalanceNotBefore = n.cfg.Now().Add(10 * n.cfg.GossipInterval)
		n.mu.Unlock()
	}
	return pushed, dropped
}

// ensureReplica pushes rec to owner if the owner lacks it or holds an older
// version. It reports whether a push happened and succeeded, and whether the
// owner's state could not be brought current (so the caller retries later).
func (n *Node) ensureReplica(ctx context.Context, owner string, rec nwr.Record) (sent, failed bool) {
	cur, found, err := n.coord.ReadReplicaFrom(ctx, owner, rec.Key)
	if err != nil {
		return false, true
	}
	if found && !rec.Newer(cur) {
		return false, false // already current
	}
	if n.coord.WriteReplicaTo(ctx, owner, rec) {
		return true, false
	}
	return false, true
}

// hasReplica reports whether owner currently holds rec's key at rec's
// version or newer.
func (n *Node) hasReplica(ctx context.Context, owner string, rec nwr.Record) bool {
	cur, found, err := n.coord.ReadReplicaFrom(ctx, owner, rec.Key)
	if err != nil || !found {
		return false
	}
	return !rec.Newer(cur)
}
