package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"mystore/internal/bson"
	"mystore/internal/docstore"
	"mystore/internal/gossip"
	"mystore/internal/nwr"
	"mystore/internal/transport"
)

// harness runs an in-process cluster over a MemNetwork with a virtual
// clock, mirroring the paper's 5-node testbed (1 seed + 4 normal nodes).
type harness struct {
	t     *testing.T
	net   *transport.MemNetwork
	eps   []*transport.MemTransport
	nodes []*Node
	mu    sync.Mutex
	now   time.Time
}

func addr(i int) string { return fmt.Sprintf("10.0.0.%d:19870", i+1) }

func newHarness(t *testing.T, n int) *harness {
	t.Helper()
	h := &harness{t: t, net: transport.NewMemNetwork(), now: time.Unix(5000, 0)}
	seeds := []string{addr(0)}
	for i := 0; i < n; i++ {
		h.addNode(i, seeds)
	}
	return h
}

func (h *harness) clock() time.Time {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.now
}

func (h *harness) addNode(i int, seeds []string) *Node {
	h.t.Helper()
	ep, err := h.net.Endpoint(addr(i))
	if err != nil {
		h.t.Fatal(err)
	}
	node, err := NewNode(ep, Config{
		Seeds:          seeds,
		Weight:         1,
		NWR:            nwr.Config{N: 3, W: 2, R: 1, Retries: 1, CallTimeout: time.Second},
		GossipInterval: time.Second,
		Now:            h.clock,
	})
	if err != nil {
		h.t.Fatal(err)
	}
	h.t.Cleanup(func() { node.Close() })
	h.eps = append(h.eps, ep)
	h.nodes = append(h.nodes, node)
	return node
}

// advance moves the harness's virtual clock forward.
func (h *harness) advance(d time.Duration) {
	h.mu.Lock()
	h.now = h.now.Add(d)
	h.mu.Unlock()
}

// converge runs gossip rounds until every node knows every other (or the
// round budget runs out).
func (h *harness) converge(rounds int) {
	for r := 0; r < rounds; r++ {
		for i, n := range h.nodes {
			if h.eps[i].Closed() {
				continue
			}
			n.Tick(context.Background())
		}
		h.mu.Lock()
		h.now = h.now.Add(time.Second)
		h.mu.Unlock()
	}
}

func (h *harness) client(t *testing.T) *Client {
	t.Helper()
	ep, err := h.net.Endpoint(fmt.Sprintf("client-%d:0", len(h.net.Addresses())))
	if err != nil {
		t.Fatal(err)
	}
	var nodes []string
	for i := range h.nodes {
		nodes = append(nodes, addr(i))
	}
	c, err := Connect(context.Background(), ep, nodes, ClientOptions{AutoRetry: true})
	if err != nil {
		t.Fatalf("Connect: %v", err)
	}
	return c
}

func TestMembershipConvergence(t *testing.T) {
	h := newHarness(t, 5)
	h.converge(12)
	for i, n := range h.nodes {
		if got := n.Ring().Len(); got != 5 {
			t.Fatalf("node %d ring has %d members, want 5", i, got)
		}
	}
}

func TestClientConnectTestsConnection(t *testing.T) {
	h := newHarness(t, 3)
	h.converge(8)
	// Healthy connect.
	c := h.client(t)
	if len(c.Nodes()) != 3 {
		t.Fatalf("client nodes = %v", c.Nodes())
	}
	// All nodes down: Connect must fail the test, as the paper requires a
	// real connection before returning true.
	for _, ep := range h.eps {
		ep.Close()
	}
	ep, _ := h.net.Endpoint("client-x:0")
	if _, err := Connect(context.Background(), ep, []string{addr(0)}, ClientOptions{}); !errors.Is(err, ErrNoNodes) {
		t.Fatalf("Connect err = %v, want ErrNoNodes", err)
	}
	if _, err := Connect(context.Background(), ep, nil, ClientOptions{}); !errors.Is(err, ErrNoNodes) {
		t.Fatalf("Connect with no nodes err = %v", err)
	}
}

func TestClientPutGetDelete(t *testing.T) {
	h := newHarness(t, 5)
	h.converge(12)
	c := h.client(t)
	ctx := context.Background()
	if err := c.Put(ctx, "Resistor5", []byte("component-xml")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	val, err := c.Get(ctx, "Resistor5")
	if err != nil || string(val) != "component-xml" {
		t.Fatalf("Get = %q, %v", val, err)
	}
	if err := c.Delete(ctx, "Resistor5"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := c.Get(ctx, "Resistor5"); !errors.Is(err, ErrKeyNotFound) && !transport.IsRemote(err) {
		t.Fatalf("Get after delete = %v", err)
	}
}

func TestClientDocQueries(t *testing.T) {
	h := newHarness(t, 5)
	h.converge(12)
	c := h.client(t)
	ctx := context.Background()
	for i := 0; i < 30; i++ {
		doc := bson.D{
			{Key: "type", Value: []string{"scene", "video", "report"}[i%3]},
			{Key: "course", Value: fmt.Sprintf("EE%d", 100+i%2)},
			{Key: "seq", Value: int64(i)},
		}
		if err := c.PutDoc(ctx, fmt.Sprintf("item-%02d", i), doc); err != nil {
			t.Fatalf("PutDoc: %v", err)
		}
	}
	// Complex query: embedded-document field + operator, sorted, limited.
	results, err := c.Query(ctx, docstore.Filter{
		{Key: "doc.type", Value: "scene"},
		{Key: "doc.seq", Value: bson.D{{Key: "$gte", Value: int64(9)}}},
	}, docstore.FindOptions{
		Sort:  []docstore.SortField{{Field: "self-key", Desc: false}},
		Limit: 4,
	})
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(results) != 4 {
		t.Fatalf("Query returned %d results, want 4", len(results))
	}
	prev := ""
	for _, r := range results {
		if r.Key <= prev {
			t.Fatalf("results unsorted: %q after %q", r.Key, prev)
		}
		prev = r.Key
		if r.Doc.StringOr("type", "") != "scene" {
			t.Fatalf("non-scene result %s", r.Doc)
		}
	}
	// Regex on self-key, the MongoDB-style query Dynamo cannot serve.
	results, err = c.Query(ctx, docstore.Filter{
		{Key: "self-key", Value: bson.D{{Key: "$regex", Value: "^item-0[0-3]$"}}},
	}, docstore.FindOptions{})
	if err != nil || len(results) != 4 {
		t.Fatalf("regex query = %d results, %v", len(results), err)
	}
	// GetDoc round trip.
	doc, err := c.GetDoc(ctx, "item-05")
	if err != nil || doc.StringOr("type", "") == "" {
		t.Fatalf("GetDoc = %s, %v", doc, err)
	}
}

func TestDistributedAggregate(t *testing.T) {
	h := newHarness(t, 5)
	h.converge(12)
	c := h.client(t)
	ctx := context.Background()
	for i := 0; i < 24; i++ {
		doc := bson.D{
			{Key: "kind", Value: []string{"scene", "video"}[i%2]},
			{Key: "bytes", Value: int64(100 * (i + 1))},
		}
		if err := c.PutDoc(ctx, fmt.Sprintf("agg-%02d", i), doc); err != nil {
			t.Fatal(err)
		}
	}
	// One record deleted: aggregation must not see it.
	c.Delete(ctx, "agg-00") //nolint:errcheck
	rows, err := c.Aggregate(ctx, docstore.Filter{}, docstore.GroupSpec{
		By: "doc.kind",
		Accumulators: []docstore.AccumulatorSpec{
			{Name: "n", Op: docstore.AccCount},
			{Name: "total", Op: docstore.AccSum, Field: "doc.bytes"},
			{Name: "maxB", Op: docstore.AccMax, Field: "doc.bytes"},
		},
	})
	if err != nil {
		t.Fatalf("Aggregate: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("groups = %d, want 2", len(rows))
	}
	// Despite N=3 replication, counts must reflect DISTINCT keys, not
	// replicas: 11 scenes (one deleted) + 12 videos.
	byKind := map[string]bson.D{}
	for _, r := range rows {
		id, _ := r.Get("_id")
		byKind[id.(string)] = r
	}
	if n, _ := byKind["scene"].Get("n"); n != int64(11) {
		t.Fatalf("scene count = %v, want 11 (dedup across replicas, minus delete)", n)
	}
	if n, _ := byKind["video"].Get("n"); n != int64(12) {
		t.Fatalf("video count = %v, want 12", n)
	}
	// scene bytes: indices 2,4,...,22 → 100*(3+5+...+23); video: 100*(2+4+...+24).
	wantScene := int64(0)
	for i := 2; i < 24; i += 2 {
		wantScene += int64(100 * (i + 1))
	}
	if total, _ := byKind["scene"].Get("total"); total != wantScene {
		t.Fatalf("scene total = %v, want %d", total, wantScene)
	}
	if maxB, _ := byKind["video"].Get("maxB"); maxB != int64(2400) {
		t.Fatalf("video maxB = %v", maxB)
	}
}

func TestQueryExcludesDeleted(t *testing.T) {
	h := newHarness(t, 3)
	h.converge(8)
	c := h.client(t)
	ctx := context.Background()
	c.Put(ctx, "alive", []byte("x"))  //nolint:errcheck
	c.Put(ctx, "doomed", []byte("y")) //nolint:errcheck
	c.Delete(ctx, "doomed")           //nolint:errcheck
	results, err := c.Query(ctx, docstore.Filter{}, docstore.FindOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Key != "alive" {
		t.Fatalf("Query = %+v, want only 'alive'", results)
	}
}

func TestReplicaDistributionAcrossNodes(t *testing.T) {
	h := newHarness(t, 5)
	h.converge(12)
	c := h.client(t)
	ctx := context.Background()
	const records = 200
	for i := 0; i < records; i++ {
		if err := c.Put(ctx, fmt.Sprintf("key-%04d", i), []byte("v")); err != nil {
			t.Fatalf("Put %d: %v", i, err)
		}
	}
	// Put returns at the W quorum; the Nth replication may land after the
	// call, so poll for the full census.
	var total int
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		total = 0
		for _, n := range h.nodes {
			total += n.Store().C(nwr.RecordCollection).Len()
		}
		if total == records*3 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if total != records*3 {
		t.Fatalf("total replicas = %d, want %d (N=3)", total, records*3)
	}
	for i, n := range h.nodes {
		if n.Store().C(nwr.RecordCollection).Len() == 0 {
			t.Errorf("node %d holds no replicas", i)
		}
	}
}

func TestNodeJoinMigratesData(t *testing.T) {
	h := newHarness(t, 4)
	h.converge(12)
	c := h.client(t)
	ctx := context.Background()
	const records = 150
	for i := 0; i < records; i++ {
		if err := c.Put(ctx, fmt.Sprintf("key-%04d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// A fifth node joins; gossip spreads it; rebalance pushes its ranges.
	h.addNode(4, []string{addr(0)})
	h.converge(20)
	newNode := h.nodes[4]
	got := newNode.Store().C(nwr.RecordCollection).Len()
	if got == 0 {
		t.Fatal("joined node received no data")
	}
	// Every key must still be fully replicated N=3 times cluster-wide and
	// readable.
	for i := 0; i < records; i++ {
		key := fmt.Sprintf("key-%04d", i)
		copies := 0
		for _, n := range h.nodes {
			if _, found, _ := n.Coordinator().GetLocal(key); found {
				copies++
			}
		}
		if copies < 3 {
			t.Fatalf("key %s has %d copies after join", key, copies)
		}
		if _, err := c.Get(ctx, key); err != nil {
			t.Fatalf("Get(%s) after join: %v", key, err)
		}
	}
}

func TestLongFailureTriggersReReplication(t *testing.T) {
	h := newHarness(t, 5)
	h.converge(12)
	c := h.client(t)
	ctx := context.Background()
	const records = 100
	for i := 0; i < records; i++ {
		if err := c.Put(ctx, fmt.Sprintf("key-%04d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// Node 4 breaks down for good.
	h.eps[4].Close()
	// Long failure confirmation (seed LongFailAfter = 10 intervals) plus
	// spread plus rebalance.
	h.converge(30)
	for i := 0; i < 4; i++ {
		if st := h.nodes[i].Gossiper().StatusOf(addr(4)); st != gossip.StatusLongFail {
			t.Fatalf("node %d believes node 4 is %v", i, st)
		}
		if h.nodes[i].Ring().Contains(addr(4)) {
			t.Fatalf("node %d still has node 4 in its ring", i)
		}
	}
	// Replication factor restored among survivors.
	for i := 0; i < records; i++ {
		key := fmt.Sprintf("key-%04d", i)
		copies := 0
		for j := 0; j < 4; j++ {
			if _, found, _ := h.nodes[j].Coordinator().GetLocal(key); found {
				copies++
			}
		}
		if copies < 3 {
			t.Fatalf("key %s has %d live copies after re-replication", key, copies)
		}
	}
}

func TestShortFailureHintsAndWriteback(t *testing.T) {
	h := newHarness(t, 5)
	h.converge(12)
	c := h.client(t)
	ctx := context.Background()
	// Node 3 goes quiet briefly.
	h.eps[3].Close()
	h.converge(4) // enough for short-fail belief, not long-fail
	const records = 60
	for i := 0; i < records; i++ {
		if err := c.Put(ctx, fmt.Sprintf("hkey-%04d", i), []byte("v")); err != nil {
			t.Fatalf("Put with node down: %v", err)
		}
	}
	hinted := 0
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		hinted = 0
		for _, n := range h.nodes {
			hinted += n.Coordinator().HintCount()
		}
		if hinted > 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if hinted == 0 {
		t.Fatal("no hints parked while a replica was down")
	}
	// Node 3 recovers; ticks deliver the hints. Background hint parking
	// from the quorum-returned puts may still be in flight, so converge
	// and poll until every record is fully replicated.
	h.eps[3].Reopen()
	fullyReplicated := func() (int, int) {
		remaining := 0
		for _, n := range h.nodes {
			remaining += n.Coordinator().HintCount()
		}
		short := 0
		for i := 0; i < records; i++ {
			key := fmt.Sprintf("hkey-%04d", i)
			copies := 0
			for _, n := range h.nodes {
				if _, found, _ := n.Coordinator().GetLocal(key); found {
					copies++
				}
			}
			if copies < 3 {
				short++
			}
		}
		return remaining, short
	}
	var remaining, short int
	recoveryDeadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(recoveryDeadline) {
		h.converge(2)
		if remaining, short = fullyReplicated(); remaining == 0 && short == 0 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if remaining != 0 || short != 0 {
		t.Fatalf("after recovery: %d hints undelivered, %d keys under-replicated", remaining, short)
	}
}

func TestReadsSurviveSingleNodeLoss(t *testing.T) {
	h := newHarness(t, 5)
	h.converge(12)
	c := h.client(t)
	ctx := context.Background()
	for i := 0; i < 50; i++ {
		c.Put(ctx, fmt.Sprintf("rkey-%02d", i), []byte("v")) //nolint:errcheck
	}
	h.eps[2].Close()
	h.converge(4)
	for i := 0; i < 50; i++ {
		if _, err := c.Get(ctx, fmt.Sprintf("rkey-%02d", i)); err != nil {
			t.Fatalf("Get(%d) with a node down: %v", i, err)
		}
	}
}

func TestStatusDoc(t *testing.T) {
	h := newHarness(t, 3)
	h.converge(8)
	c := h.client(t)
	st, err := c.Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.StringOr("addr", "") == "" {
		t.Fatalf("status missing addr: %s", st)
	}
	if v, ok := st.Get("ringSize"); !ok || v.(int64) != 3 {
		t.Fatalf("ringSize = %v", v)
	}
}

func TestUnknownMessage(t *testing.T) {
	h := newHarness(t, 1)
	_, err := h.nodes[0].handleMessage(context.Background(), transport.Message{Type: "nope"})
	if err == nil {
		t.Fatal("unknown message accepted")
	}
}

func TestNodeCloseIdempotent(t *testing.T) {
	h := newHarness(t, 1)
	if err := h.nodes[0].Close(); err != nil {
		t.Fatal(err)
	}
	if err := h.nodes[0].Close(); err != nil {
		t.Fatal(err)
	}
}
