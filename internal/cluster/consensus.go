// The node's side of the CP replication tier: wiring the consensus manager
// into the coordinator's breaker-gated RPC path, the local store, the ring
// walk, and the streaming bulk-transfer path for snapshot catch-up.
package cluster

import (
	"context"
	"path/filepath"
	"time"

	"mystore/internal/bson"
	"mystore/internal/consensus"
	"mystore/internal/nwr"
	"mystore/internal/ring"
)

// startConsensus builds the consensus manager over the node's environment.
func (n *Node) startConsensus() error {
	cfg := n.cfg
	rf := cfg.NWR.N
	if rf <= 0 {
		rf = 3
	}
	walDir := ""
	if cfg.StoreDir != "" {
		walDir = filepath.Join(cfg.StoreDir, "consensus")
	}
	m, err := consensus.NewManager(consensus.Options{
		Ranges:            cfg.StrongRanges,
		ReplicationFactor: rf,
		ElectionTimeout:   cfg.StrongElectionTimeout,
		LeaseDuration:     cfg.StrongLeaseDuration,
		WALDir:            walDir,
		SyncEveryAppend:   cfg.Store.WAL.SyncEveryAppend,
		Seed:              cfg.Seed,
		Now:               cfg.Now,
	}, consensus.Env{
		Self: n.tr.Addr(),
		// All consensus RPCs — elections included — ride the coordinator's
		// breaker-gated, deadline-bounded peer path, so probes against a
		// dead peer fast-fail instead of burning a CallTimeout each.
		Call: func(ctx context.Context, target, msgType string, body bson.D) (bson.D, error) {
			return n.coord.CallPeer(ctx, target, msgType, body)
		},
		Apply: func(ctx context.Context, rec nwr.Record) error {
			return n.coord.ApplyLocalCtx(ctx, rec)
		},
		Read: func(key string) (nwr.Record, bool, error) {
			return n.coord.GetLocal(key)
		},
		Replicas: func(lo uint32) ([]string, error) {
			if n.ring.Len() < rf {
				return nil, consensus.ErrRingNotReady
			}
			return n.ring.SuccessorsAt(lo, rf)
		},
		StreamRange: func(ctx context.Context, target string, lo, hi uint32) bool {
			return n.streamRangeTo(ctx, target, lo, hi)
		},
	})
	if err != nil {
		return err
	}
	n.cns = m
	// Hint writeback leaves log-managed (_strong) records parked while their
	// range's leader is elsewhere — the replicated log is their only legal
	// mover; a later pass retries after failover. Eventual-tier records in
	// the same hash range keep flowing normally.
	n.coord.SkipHint = n.consensusGuardsRecord
	return nil
}

// Consensus exposes the consensus manager (nil when the tier is off).
func (n *Node) Consensus() *consensus.Manager { return n.cns }

// StrongPut writes key through the range's replicated log.
func (n *Node) StrongPut(ctx context.Context, key string, val []byte) error {
	if n.cns == nil {
		return consensus.ErrDisabled
	}
	return n.cns.Put(ctx, key, val, true)
}

// StrongGet serves a leader-local strong read.
func (n *Node) StrongGet(ctx context.Context, key string) ([]byte, error) {
	if n.cns == nil {
		return nil, consensus.ErrDisabled
	}
	rec, err := n.cns.Get(ctx, key)
	if err != nil {
		return nil, err
	}
	return rec.Val, nil
}

// StrongDelete replicates a tombstone through the range's log.
func (n *Node) StrongDelete(ctx context.Context, key string) error {
	if n.cns == nil {
		return consensus.ErrDisabled
	}
	return n.cns.Delete(ctx, key)
}

// consensusGuardsRecord reports whether background LWW repair (anti-entropy
// push/pull, hint drain) must leave rec alone: it was written through a
// consensus log (_strong) and its range's leader is on another node, so LWW
// movement would race the log. Eventual-tier records are never guarded —
// a consensus range's hash span carries ordinary quorum traffic too, and
// that traffic still needs hints and repair.
func (n *Node) consensusGuardsRecord(rec nwr.Record) bool {
	return rec.Strong && n.cns != nil && n.cns.GuardKey(rec.Key)
}

// consensusReplicatesKey reports whether this node is a consensus replica
// for key's range; rebalance treats log-managed records of such ranges as
// owned (never migrates them away and drops the local copy).
func (n *Node) consensusReplicatesKey(key string) bool {
	return n.cns != nil && n.cns.ReplicatesKey(key)
}

// hashInRange reports whether ring hash h falls in [lo, hi); hi == 0 means
// the range runs to the top of the 32-bit space.
func hashInRange(h, lo, hi uint32) bool {
	if hi == 0 {
		return h >= lo
	}
	return h >= lo && h < hi
}

// streamRangeTo bulk-transfers every local record hashing into [lo, hi) to
// target over the offer-based streaming path (digests first, payload only
// for keys the receiver is missing). It is the consensus snapshot transport:
// LWW-idempotent batches make a crash mid-transfer resumable by re-running.
func (n *Node) streamRangeTo(ctx context.Context, target string, lo, hi uint32) bool {
	coll := n.store.C(nwr.RecordCollection)
	os := n.newOfferSender(target)
	coll.Each(func(doc bson.D) bool {
		rec, err := nwr.RecordFromDoc(doc)
		if err != nil {
			return true
		}
		if hashInRange(ring.Hash(rec.Key), lo, hi) {
			os.Add(ctx, rec)
		}
		return true
	})
	_, ok := os.Close(ctx)
	return ok
}

// strongTimeout derives a default deadline for strong ops arriving without
// one (transport deadlines normally provide it).
func (n *Node) strongTimeout(ctx context.Context) (context.Context, context.CancelFunc) {
	if _, ok := ctx.Deadline(); ok {
		return ctx, func() {}
	}
	et := n.cfg.StrongElectionTimeout
	if et <= 0 {
		et = 150 * time.Millisecond
	}
	return context.WithTimeout(ctx, 10*et)
}
