package cluster

import (
	"fmt"

	"mystore/internal/metrics"
	"mystore/internal/transport"
)

// RegisterMetrics adds this node's subsystem metrics to r, labeled
// node=<addr>. A process hosting several in-proc nodes points them all at the
// same registry: Register is idempotent per family name, so each node only
// contributes its own labeled source. All sources are lazy — nothing is
// sampled until a scrape.
func (n *Node) RegisterMetrics(r *metrics.Registry) {
	addr := n.Addr()
	store := n.store
	coord := n.coord
	gossiper := n.gossiper

	r.Register("mystore_store_documents", "Documents held in the local document store.", metrics.TypeGauge, "node").
		Add(addr, func() float64 { return float64(store.Stats().Documents) })
	r.Register("mystore_store_bytes", "Payload bytes held in the local document store.", metrics.TypeGauge, "node").
		Add(addr, func() float64 { return float64(store.Stats().DataBytes) })

	r.Register("mystore_nwr_puts_total", "Coordinator writes started on this node.", metrics.TypeCounter, "node").
		Add(addr, func() float64 { return float64(coord.Stats().Puts) })
	r.Register("mystore_nwr_gets_total", "Coordinator reads started on this node.", metrics.TypeCounter, "node").
		Add(addr, func() float64 { return float64(coord.Stats().Gets) })
	r.Register("mystore_nwr_put_seconds", "Coordinator write latency until the W quorum acknowledged.", metrics.TypeHistogram, "node").
		AddHistogram(addr, 1e-9, coord.PutLatency().Snapshot)
	r.Register("mystore_nwr_get_seconds", "Coordinator read latency until the R quorum answered.", metrics.TypeHistogram, "node").
		AddHistogram(addr, 1e-9, coord.GetLatency().Snapshot)
	r.Register("mystore_hints_queued", "Hinted-handoff records parked on this node awaiting delivery.", metrics.TypeGauge, "node").
		Add(addr, func() float64 { return float64(coord.HintCount()) })

	r.Register("mystore_nwr_hedged_reads_total", "Replica reads launched early by the hedge timer or a primary failure.", metrics.TypeCounter, "node").
		Add(addr, func() float64 { return float64(coord.Stats().HedgedReads) })
	r.Register("mystore_nwr_coalesced_reads_total", "Reads served by joining an in-flight fan-out for the same key.", metrics.TypeCounter, "node").
		Add(addr, func() float64 { return float64(coord.Stats().CoalescedReads) })
	r.Register("mystore_nwr_batch_gets_total", "Batched multi-get operations coordinated on this node.", metrics.TypeCounter, "node").
		Add(addr, func() float64 { return float64(coord.Stats().BatchGets) })
	r.Register("mystore_nwr_repair_backlog", "Read-repair jobs queued or in flight on the async repair pool.", metrics.TypeGauge, "node").
		Add(addr, func() float64 { return float64(coord.RepairBacklog()) })
	r.Register("mystore_nwr_read_repair_dropped_total", "Read-repair jobs dropped because the repair queue was full.", metrics.TypeCounter, "node").
		Add(addr, func() float64 { return float64(coord.Stats().ReadRepairDropped) })

	r.Register("mystore_gossip_live_peers", "Peers this node currently believes are up.", metrics.TypeGauge, "node").
		Add(addr, func() float64 { return float64(len(gossiper.LiveEndpoints())) })

	r.Register("mystore_ae_rounds_total", "Merkle anti-entropy rounds initiated by this node.", metrics.TypeCounter, "node").
		Add(addr, func() float64 { return float64(n.aeRounds.Load()) })
	r.Register("mystore_ae_fallback_rounds_total", "Flat-digest anti-entropy rounds initiated (Merkle disabled).", metrics.TypeCounter, "node").
		Add(addr, func() float64 { return float64(n.aeFallbackRounds.Load()) })
	r.Register("mystore_ae_digest_bytes_total", "Reconciliation metadata shipped: tree hashes plus key/version digests.", metrics.TypeCounter, "node").
		Add(addr, func() float64 { return float64(n.aeDigestBytes.Load()) })
	r.Register("mystore_ae_leaves_diverged_total", "Merkle leaf ranges found divergent and reconciled.", metrics.TypeCounter, "node").
		Add(addr, func() float64 { return float64(n.aeLeavesDiverged.Load()) })
	r.Register("mystore_ae_version_regressions_total", "Applied mutations that replaced a record with an older version (must stay 0).", metrics.TypeCounter, "node").
		Add(addr, func() float64 { return float64(n.aeRegressions.Load()) })
	r.Register("mystore_stream_batches_total", "Streamed repair batches sent by this node.", metrics.TypeCounter, "node").
		Add(addr, func() float64 { return float64(n.streamBatches.Load()) })
	r.Register("mystore_stream_records_total", "Records moved by streamed repair batches sent from this node.", metrics.TypeCounter, "node").
		Add(addr, func() float64 { return float64(n.streamRecords.Load()) })
	r.Register("mystore_stream_bytes_total", "Payload bytes moved by streamed repair from this node.", metrics.TypeCounter, "node").
		Add(addr, func() float64 { return float64(n.streamBytes.Load()) })
	r.Register("mystore_stream_throttle_wait_seconds_total", "Time streamed repair spent stalled in the bandwidth throttle.", metrics.TypeCounter, "node").
		Add(addr, func() float64 { return float64(n.streamThrottleNanos.Load()) / 1e9 })

	if bs := n.breakers; bs != nil {
		r.Register("mystore_breaker_open", "Peer circuit breakers currently open.", metrics.TypeGauge, "node").
			Add(addr, func() float64 { return float64(bs.OpenCount()) })
		r.Register("mystore_breaker_opened_total", "Circuit-breaker closed/half-open to open transitions.", metrics.TypeCounter, "node").
			Add(addr, func() float64 { return float64(bs.Stats().Opened) })
		r.Register("mystore_breaker_fastfail_total", "Calls rejected instantly by an open breaker.", metrics.TypeCounter, "node").
			Add(addr, func() float64 { return float64(bs.Stats().FastFailures) })
	}

	if eng := store.Engine(); eng != nil {
		r.Register("mystore_lsm_memtable_bytes", "Bytes buffered in the lsm engine's mutable memtable.", metrics.TypeGauge, "node").
			Add(addr, func() float64 { return float64(eng.Stats().MemtableBytes) })
		r.Register("mystore_lsm_flushes_total", "Memtables flushed to SSTables.", metrics.TypeCounter, "node").
			Add(addr, func() float64 { return float64(eng.Stats().Flushes) })
		r.Register("mystore_lsm_flush_bytes_total", "Bytes written by memtable flushes.", metrics.TypeCounter, "node").
			Add(addr, func() float64 { return float64(eng.Stats().FlushBytes) })
		r.Register("mystore_lsm_sstables", "Live SSTables in the lsm engine.", metrics.TypeGauge, "node").
			Add(addr, func() float64 { return float64(eng.Stats().Tables) })
		r.Register("mystore_lsm_sstable_bytes", "Bytes held in live SSTables.", metrics.TypeGauge, "node").
			Add(addr, func() float64 { return float64(eng.Stats().TableBytes) })
		// Per-level table counts. Levels are created on demand; absent
		// levels read 0. Seven levels cover any realistic dataset under the
		// default 10x fanout.
		lvlFamily := r.Register("mystore_lsm_sstables_level", "Live SSTables per lsm level.", metrics.TypeGauge, "node_level")
		for lvl := 0; lvl < 7; lvl++ {
			lvl := lvl
			lvlFamily.Add(fmt.Sprintf("%s L%d", addr, lvl), func() float64 {
				counts := eng.Stats().TableCounts
				if lvl >= len(counts) {
					return 0
				}
				return float64(counts[lvl])
			})
		}
		r.Register("mystore_lsm_compactions_total", "Background compactions completed.", metrics.TypeCounter, "node").
			Add(addr, func() float64 { return float64(eng.Stats().Compactions) })
		r.Register("mystore_lsm_compaction_read_bytes_total", "Bytes read by background compaction.", metrics.TypeCounter, "node").
			Add(addr, func() float64 { return float64(eng.Stats().CompactBytesIn) })
		r.Register("mystore_lsm_compaction_written_bytes_total", "Bytes written by background compaction.", metrics.TypeCounter, "node").
			Add(addr, func() float64 { return float64(eng.Stats().CompactBytesOut) })
		r.Register("mystore_lsm_compaction_throttle_wait_seconds_total", "Time compaction spent stalled in the bandwidth throttle.", metrics.TypeCounter, "node").
			Add(addr, func() float64 { return float64(eng.Stats().ThrottleWaitNanos) / 1e9 })
		r.Register("mystore_lsm_block_cache_hits_total", "SSTable block reads served from the block cache.", metrics.TypeCounter, "node").
			Add(addr, func() float64 { return float64(eng.Stats().BlockCacheHits) })
		r.Register("mystore_lsm_block_cache_misses_total", "SSTable block reads that went to disk.", metrics.TypeCounter, "node").
			Add(addr, func() float64 { return float64(eng.Stats().BlockCacheMisses) })
		r.Register("mystore_lsm_bloom_negatives_total", "Table probes skipped because the bloom filter excluded the key.", metrics.TypeCounter, "node").
			Add(addr, func() float64 { return float64(eng.Stats().BloomNegatives) })
	}

	if log := store.WAL(); log != nil {
		r.Register("mystore_wal_replay_ops_total", "WAL records re-applied by the last store open (restart cost).", metrics.TypeCounter, "node").
			Add(addr, func() float64 { return float64(store.ReplayedOps()) })
		r.Register("mystore_wal_appends_total", "Records appended to the write-ahead log.", metrics.TypeCounter, "node").
			Add(addr, func() float64 { return float64(log.Stats().Appends) })
		r.Register("mystore_wal_fsyncs_total", "fsync syscalls issued by the write-ahead log.", metrics.TypeCounter, "node").
			Add(addr, func() float64 { return float64(log.Stats().Fsyncs) })
		r.Register("mystore_wal_fsync_seconds", "WAL fsync latency.", metrics.TypeHistogram, "node").
			AddHistogram(addr, 1e-9, log.FsyncLatency().Snapshot)
		r.Register("mystore_wal_batch_records", "Records made durable per group-commit fsync.", metrics.TypeHistogram, "node").
			AddHistogram(addr, 1, log.BatchSizes().Snapshot)
	}

	if cns := n.cns; cns != nil {
		r.Register("mystore_consensus_ranges_led", "Consensus ranges this node currently leads.", metrics.TypeGauge, "node").
			Add(addr, func() float64 { return float64(cns.RangesLed()) })
		r.Register("mystore_consensus_elections_total", "Elections this node started (candidate transitions).", metrics.TypeCounter, "node").
			Add(addr, func() float64 { return float64(cns.Stats().Elections) })
		r.Register("mystore_consensus_elections_won_total", "Elections this node won.", metrics.TypeCounter, "node").
			Add(addr, func() float64 { return float64(cns.Stats().ElectionsWon) })
		r.Register("mystore_consensus_leader_changes_total", "Observed leader changes across this node's ranges.", metrics.TypeCounter, "node").
			Add(addr, func() float64 { return float64(cns.Stats().LeaderChanges) })
		r.Register("mystore_consensus_proposals_total", "Strong writes proposed to a log this node leads.", metrics.TypeCounter, "node").
			Add(addr, func() float64 { return float64(cns.Stats().Proposals) })
		r.Register("mystore_consensus_commits_total", "Log entries committed on this node.", metrics.TypeCounter, "node").
			Add(addr, func() float64 { return float64(cns.Stats().Commits) })
		r.Register("mystore_consensus_applies_total", "Committed entries applied to the local store.", metrics.TypeCounter, "node").
			Add(addr, func() float64 { return float64(cns.Stats().Applies) })
		r.Register("mystore_consensus_not_leader_rejects_total", "Strong requests refused because this node does not lead the range.", metrics.TypeCounter, "node").
			Add(addr, func() float64 { return float64(cns.Stats().NotLeaderRejects) })
		r.Register("mystore_consensus_lease_expiries_total", "Leaderships stepped down because the quorum lease expired.", metrics.TypeCounter, "node").
			Add(addr, func() float64 { return float64(cns.Stats().LeaseExpiries) })
		r.Register("mystore_consensus_stale_term_rejects_total", "Append RPCs refused for carrying a stale term (fencing).", metrics.TypeCounter, "node").
			Add(addr, func() float64 { return float64(cns.Stats().StaleTermRejects) })
		r.Register("mystore_consensus_snapshots_sent_total", "Snapshot catch-up transfers sent to lagging followers.", metrics.TypeCounter, "node").
			Add(addr, func() float64 { return float64(cns.Stats().SnapshotsSent) })
		r.Register("mystore_consensus_snapshots_installed_total", "Snapshot catch-ups installed on this node.", metrics.TypeCounter, "node").
			Add(addr, func() float64 { return float64(cns.Stats().SnapshotsInstalled) })
		r.Register("mystore_consensus_strong_reads_total", "Leader-local linearizable reads served.", metrics.TypeCounter, "node").
			Add(addr, func() float64 { return float64(cns.Stats().StrongReads) })
		r.Register("mystore_consensus_propose_seconds", "Strong write latency through the replicated log (propose to commit).", metrics.TypeHistogram, "node").
			AddHistogram(addr, 1e-9, cns.ProposeLatency().Snapshot)
	}

	if ins, ok := n.tr.(transport.Instrumented); ok {
		r.Register("mystore_rpc_seconds", "Outbound RPC latency by destination peer.", metrics.TypeHistogram, "peer").
			AddHistogramVec(1e-9, ins.RPCLatency().Snapshots)
		r.Register("mystore_transport_deadline_dropped_total", "Requests dropped on arrival because the propagated deadline had expired.", metrics.TypeCounter, "node").
			Add(addr, func() float64 { return float64(ins.DeadlineDropped()) })
	}
}
