package cluster

import (
	"context"
	"sort"
	"sync"

	"mystore/internal/bson"
	"mystore/internal/merkle"
	"mystore/internal/nwr"
	"mystore/internal/ring"
	"mystore/internal/trace"
	"mystore/internal/transport"
)

// Active anti-entropy: the paper's future-work direction of "solving
// problems on data's consistency" (§7). Read repair only fixes replicas of
// keys that are actually read; anti-entropy sweeps the rest.
//
// The default path compares incrementally maintained Merkle trees (Dynamo
// §4.7): each node keeps, per peer, a hash tree over the records whose
// replica sets include both nodes, updated O(1) on every docstore apply.
// A round walks the two trees top-down — O(log leaves) hashes per level —
// so a converged pair settles after ONE root comparison, and a diverged
// pair localizes the damage to individual leaf ranges whose keys are then
// reconciled bidirectionally and moved in streamed batches. The flat
// digest exchange (every shared record digested per round) survives behind
// Config.DisableMerkleAE as the ablation baseline.

// Message types of the anti-entropy protocol.
const (
	// MsgAntiEntropy carries one flat digest batch (baseline path).
	MsgAntiEntropy = "node.ae.digest"
	// MsgAEChildren asks a peer for its tree-node hashes at one level
	// (the Merkle descent step).
	MsgAEChildren = "node.ae.children"
	// MsgAELeaf asks a peer for the record digests inside divergent leaves.
	MsgAELeaf = "node.ae.leaf"
)

const (
	// aeBatchLimit bounds keys per flat round so a round stays cheap under
	// load (baseline path only).
	aeBatchLimit = 512
	// maxAEFrontier bounds tree indexes per descent RPC; a wider divergence
	// frontier is truncated and picked up again next round.
	maxAEFrontier = 256
	// maxAELeavesPerRound bounds how many divergent leaves one round
	// reconciles; massive divergence (a wiped node) heals across rounds.
	maxAELeavesPerRound = 64
	// maxFetchKeysPerCall bounds keys named in one stream.fetch pull.
	maxFetchKeysPerCall = 2048
)

// aeState is the node's Merkle forest: one tree per peer, covering exactly
// the records whose replica sets include both this node and that peer (a
// whole-store tree would never match between peers, since each stores only
// the keys it owns). The forest is maintained incrementally by the docstore
// apply observer and rebuilt lazily — first use after a restart or a ring
// change scans the records collection once.
type aeState struct {
	mu    sync.Mutex
	trees map[string]*merkle.Tree
	built bool
	dirty bool
}

// markDirty schedules a rebuild (ring changed: ownership moved between
// trees).
func (s *aeState) markDirty() {
	s.mu.Lock()
	s.dirty = true
	s.mu.Unlock()
}

// treeFor returns the tree tracking peer, creating an empty one on demand —
// holding no shared keys is itself comparable state (the peer may hold keys
// this node lacks).
func (s *aeState) treeFor(peer string) *merkle.Tree {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.trees[peer]
	if t == nil {
		t = merkle.New(merkle.DefaultLeafBits)
		if s.trees == nil {
			s.trees = map[string]*merkle.Tree{}
		}
		s.trees[peer] = t
	}
	return t
}

// observeRecordApply is the docstore apply observer: it runs under the
// records collection's write lock on every applied mutation and folds the
// change into each affected peer tree — the O(1) incremental maintenance
// that makes a steady-state round cost one root comparison. It also trips
// the version-regression counter the chaos harness asserts on: no repair
// path may ever replace a record with an older version.
func (n *Node) observeRecordApply(old, new bson.D) {
	var oldRec, newRec nwr.Record
	var hasOld, hasNew bool
	if old != nil {
		if r, err := nwr.RecordFromDoc(old); err == nil {
			oldRec, hasOld = r, true
		}
	}
	if new != nil {
		if r, err := nwr.RecordFromDoc(new); err == nil {
			newRec, hasNew = r, true
		}
	}
	if hasOld && hasNew && oldRec.Newer(newRec) {
		n.aeRegressions.Add(1)
	}
	n.ae.mu.Lock()
	defer n.ae.mu.Unlock()
	if !n.ae.built {
		return // the lazy rebuild will see this record
	}
	self := n.Addr()
	apply := func(rec nwr.Record, add bool) {
		owners, err := n.ring.Successors(rec.Key, n.cfg.NWR.N)
		if err != nil {
			return
		}
		kh := ring.Hash(rec.Key)
		h := merkle.RecordHash(rec.Key, rec.Ver, rec.Origin, rec.Deleted)
		for _, o := range owners {
			if o == self {
				continue
			}
			t := n.ae.trees[o]
			if t == nil {
				t = merkle.New(merkle.DefaultLeafBits)
				if n.ae.trees == nil {
					n.ae.trees = map[string]*merkle.Tree{}
				}
				n.ae.trees[o] = t
			}
			if add {
				t.Add(kh, h)
			} else {
				t.Remove(kh, h)
			}
		}
	}
	if hasOld {
		apply(oldRec, false)
	}
	if hasNew {
		apply(newRec, true)
	}
}

// ensureForest rebuilds the Merkle forest if it is missing or stale. The
// scan runs under the collection read lock with the live-update window
// opened at the exact snapshot point (EachSynced's begin hook), so every
// concurrent apply is counted exactly once: either the scan sees it or the
// observer does, never both.
func (n *Node) ensureForest() {
	n.ae.mu.Lock()
	fresh := n.ae.built && !n.ae.dirty
	n.ae.mu.Unlock()
	if fresh {
		return
	}
	trees := map[string]*merkle.Tree{}
	self := n.Addr()
	n.store.C(nwr.RecordCollection).EachSynced(func() {
		n.ae.mu.Lock()
		n.ae.trees = trees
		n.ae.built = true
		n.ae.dirty = false
		n.ae.mu.Unlock()
	}, func(doc bson.D) bool {
		rec, err := nwr.RecordFromDoc(doc)
		if err != nil {
			return true
		}
		owners, err := n.ring.Successors(rec.Key, n.cfg.NWR.N)
		if err != nil {
			return true
		}
		kh := ring.Hash(rec.Key)
		h := merkle.RecordHash(rec.Key, rec.Ver, rec.Origin, rec.Deleted)
		for _, o := range owners {
			if o == self {
				continue
			}
			t := trees[o]
			if t == nil {
				t = merkle.New(merkle.DefaultLeafBits)
				trees[o] = t
			}
			t.Add(kh, h)
		}
		return true
	})
}

// pickAEPeer selects this round's partner with the node's seeded RNG over
// the sorted live peers, so -seed runs reconcile in a reproducible order.
func (n *Node) pickAEPeer() string {
	peers := n.gossiper.LiveEndpoints()
	candidates := peers[:0]
	for _, p := range peers {
		if p != n.Addr() {
			candidates = append(candidates, p)
		}
	}
	if len(candidates) == 0 {
		return ""
	}
	sort.Strings(candidates)
	n.mu.Lock()
	pick := candidates[n.rng.Intn(len(candidates))]
	n.mu.Unlock()
	return pick
}

// AntiEntropyRound reconciles with one random live peer. It returns how
// many records were pushed to the peer and how many newer records were
// pulled from it.
func (n *Node) AntiEntropyRound(ctx context.Context) (pushed, pulled int) {
	peer := n.pickAEPeer()
	if peer == "" {
		return 0, 0
	}
	if n.cfg.DisableMerkleAE {
		n.aeFallbackRounds.Add(1)
		return n.flatAntiEntropyRound(ctx, peer)
	}
	return n.merkleAntiEntropyRound(ctx, peer)
}

// merkleAntiEntropyRound walks this node's tree for peer against peer's
// tree for this node: one hashes-per-level exchange localizes divergence to
// leaf ranges, then a single leaf-digest exchange reconciles those ranges
// bidirectionally, pulling newer records and streaming ours back.
func (n *Node) merkleAntiEntropyRound(ctx context.Context, peer string) (pushed, pulled int) {
	ctx, sp := trace.Start(ctx, "ae.round")
	sp.SetPeer(peer)
	var roundErr error
	defer func() { sp.End(roundErr) }()
	n.aeRounds.Add(1)
	n.ensureForest()
	tree := n.ae.treeFor(peer)

	// Descend: compare the root, then only the children of divergent nodes,
	// level by level. A converged pair costs exactly the first exchange.
	frontier := []uint32{0}
	var divergedLeaves []uint32
	for level := 0; level <= tree.LeafBits(); level++ {
		if len(frontier) == 0 {
			return 0, 0 // trees agree
		}
		if len(frontier) > maxAEFrontier {
			frontier = frontier[:maxAEFrontier] // rest heals next round
		}
		remote, err := n.fetchPeerNodes(ctx, peer, level, frontier)
		if err != nil {
			roundErr = err
			return 0, 0
		}
		local := tree.Nodes(level, frontier)
		var diverged []uint32
		for i := range frontier {
			if i < len(remote) && remote[i] != local[i] {
				diverged = append(diverged, frontier[i])
			}
		}
		if level == tree.LeafBits() {
			divergedLeaves = diverged
			break
		}
		frontier = frontier[:0]
		for _, idx := range diverged {
			frontier = append(frontier, 2*idx, 2*idx+1)
		}
	}
	if len(divergedLeaves) == 0 {
		return 0, 0
	}
	if len(divergedLeaves) > maxAELeavesPerRound {
		divergedLeaves = divergedLeaves[:maxAELeavesPerRound]
	}
	n.aeLeavesDiverged.Add(int64(len(divergedLeaves)))
	return n.syncLeaves(ctx, peer, tree, divergedLeaves, &roundErr)
}

// fetchPeerNodes asks peer for its tree-node hashes at (level, idxs) in its
// tree covering this node.
func (n *Node) fetchPeerNodes(ctx context.Context, peer string, level int, idxs []uint32) ([]uint64, error) {
	req := make(bson.A, len(idxs))
	for i, idx := range idxs {
		req[i] = int64(idx)
	}
	n.aeDigestBytes.Add(int64(12*len(idxs)) + 16)
	resp, err := n.coord.CallPeer(ctx, peer, MsgAEChildren, bson.D{
		{Key: "from", Value: n.Addr()},
		{Key: "level", Value: int64(level)},
		{Key: "idxs", Value: req},
	})
	if err != nil {
		return nil, err
	}
	v, _ := resp.Get("hashes")
	arr, ok := v.(bson.A)
	if !ok {
		return nil, nil
	}
	out := make([]uint64, len(arr))
	for i, e := range arr {
		if h, isInt := e.(int64); isInt {
			out[i] = uint64(h)
		}
	}
	return out, nil
}

// handleAEChildren serves the descent: return this node's tree-for-caller
// hashes at the requested level and indexes.
func (n *Node) handleAEChildren(body bson.D) (bson.D, error) {
	from := body.StringOr("from", "")
	levelV, _ := body.Get("level")
	level, _ := levelV.(int64)
	v, _ := body.Get("idxs")
	arr, _ := v.(bson.A)
	idxs := make([]uint32, 0, len(arr))
	for _, e := range arr {
		if i, isInt := e.(int64); isInt && i >= 0 {
			idxs = append(idxs, uint32(i))
		}
	}
	n.ensureForest()
	hashes := n.ae.treeFor(from).Nodes(int(level), idxs)
	out := make(bson.A, len(hashes))
	for i, h := range hashes {
		out[i] = int64(h)
	}
	return bson.D{{Key: "hashes", Value: out}}, nil
}

// syncLeaves reconciles the divergent leaf ranges: one RPC fetches the
// peer's record digests inside them, a local scan gathers ours, and the
// diff drives pulls (peer newer or only-peer) and streamed pushes (we newer
// or only-us).
func (n *Node) syncLeaves(ctx context.Context, peer string, tree *merkle.Tree, leaves []uint32, roundErr *error) (pushed, pulled int) {
	leafSet := make(map[uint32]bool, len(leaves))
	req := make(bson.A, len(leaves))
	for i, l := range leaves {
		leafSet[l] = true
		req[i] = int64(l)
	}
	resp, err := n.coord.CallPeer(ctx, peer, MsgAELeaf, bson.D{
		{Key: "from", Value: n.Addr()},
		{Key: "leaves", Value: req},
	})
	if err != nil {
		*roundErr = err
		return 0, 0
	}

	// Our shared records inside the divergent leaves. This scan is O(keys)
	// but only runs when divergence exists — converged rounds stop at the
	// root comparison.
	local := n.sharedRecordsInLeaves(peer, tree, leafSet)

	type remoteDigest struct {
		rec nwr.Record
	}
	remote := map[string]remoteDigest{}
	if v, ok := resp.Get("digests"); ok {
		if arr, isArr := v.(bson.A); isArr {
			for _, e := range arr {
				d, isDoc := e.(bson.D)
				if !isDoc {
					continue
				}
				key := d.StringOr("key", "")
				if key == "" {
					continue
				}
				verV, _ := d.Get("ver")
				ver, _ := verV.(int64)
				n.aeDigestBytes.Add(int64(len(key)) + 24)
				remote[key] = remoteDigest{rec: nwr.Record{
					Key: key, Ver: ver,
					Origin: d.StringOr("origin", ""),
					Strong: d.StringOr("strong", "0") == "1",
				}}
			}
		}
	}

	var wantKeys []string     // pull from peer: they have it newer or we lack it
	var pushRecs []nwr.Record // push to peer: we have it newer or they lack it
	for key, rd := range remote {
		lrec, have := local[key]
		if n.consensusGuardsRecord(rd.rec) || (have && n.consensusGuardsRecord(lrec)) {
			// A log-managed record whose range leader is elsewhere: the
			// replicated log is the only writer allowed to move it, or LWW
			// repair would race acked strong writes.
			continue
		}
		switch {
		case !have:
			wantKeys = append(wantKeys, key)
		case rd.rec.Newer(lrec):
			wantKeys = append(wantKeys, key)
		case lrec.Newer(rd.rec):
			pushRecs = append(pushRecs, lrec)
		}
	}
	for key, lrec := range local {
		if _, listed := remote[key]; !listed && !n.consensusGuardsRecord(lrec) {
			pushRecs = append(pushRecs, lrec)
		}
	}
	sort.Strings(wantKeys)
	sort.Slice(pushRecs, func(i, j int) bool { return pushRecs[i].Key < pushRecs[j].Key })

	pulled = n.pullRecords(ctx, peer, wantKeys)
	pushed = n.pushRecords(ctx, peer, pushRecs)
	return pushed, pulled
}

// sharedRecordsInLeaves gathers this node's records that live in the given
// leaf ranges and are co-owned by peer, in one read-locked pass.
func (n *Node) sharedRecordsInLeaves(peer string, tree *merkle.Tree, leafSet map[uint32]bool) map[string]nwr.Record {
	out := map[string]nwr.Record{}
	n.store.C(nwr.RecordCollection).Each(func(doc bson.D) bool {
		rec, err := nwr.RecordFromDoc(doc)
		if err != nil {
			return true
		}
		if !leafSet[tree.Leaf(ring.Hash(rec.Key))] {
			return true
		}
		owners, err := n.ring.Successors(rec.Key, n.cfg.NWR.N)
		if err != nil {
			return true
		}
		for _, o := range owners {
			if o == peer {
				out[rec.Key] = rec
				break
			}
		}
		return true
	})
	return out
}

// handleAELeaf serves the leaf sync: return digests of this node's records
// inside the named leaves that are co-owned by the caller.
func (n *Node) handleAELeaf(body bson.D) (bson.D, error) {
	from := body.StringOr("from", "")
	v, _ := body.Get("leaves")
	arr, _ := v.(bson.A)
	leafSet := make(map[uint32]bool, len(arr))
	for _, e := range arr {
		if i, isInt := e.(int64); isInt && i >= 0 {
			leafSet[uint32(i)] = true
		}
	}
	n.ensureForest()
	tree := n.ae.treeFor(from)
	recs := n.sharedRecordsInLeaves(from, tree, leafSet)
	digests := make(bson.A, 0, len(recs))
	for _, rec := range recs {
		if n.consensusGuardsRecord(rec) {
			continue // log-managed record, leader elsewhere: the log moves it
		}
		d := bson.D{
			{Key: "key", Value: rec.Key},
			{Key: "ver", Value: rec.Ver},
			{Key: "origin", Value: rec.Origin},
		}
		if rec.Strong {
			d = append(d, bson.E{Key: "strong", Value: "1"})
		}
		digests = append(digests, d)
	}
	return bson.D{{Key: "digests", Value: digests}}, nil
}

// pullRecords fetches keys' records from peer — paged stream.fetch calls
// bounded by the batch byte budget — and merges them last-write-wins.
// DisableStreamTransfer degrades to one read RPC per key (baseline).
func (n *Node) pullRecords(ctx context.Context, peer string, keys []string) (pulled int) {
	if len(keys) == 0 {
		return 0
	}
	if n.cfg.DisableStreamTransfer {
		for _, k := range keys {
			rec, found, err := n.coord.ReadReplicaFrom(ctx, peer, k)
			if err != nil || !found {
				continue
			}
			if n.coord.ApplyLocalCtx(ctx, rec) == nil {
				pulled++
			}
		}
		return pulled
	}
	budget := int64(n.cfg.StreamBatchBytes)
	if budget <= 0 {
		budget = defaultStreamBatchBytes
	}
	remaining := keys
	for len(remaining) > 0 {
		page := remaining
		if len(page) > maxFetchKeysPerCall {
			page = page[:maxFetchKeysPerCall]
		}
		req := make(bson.A, len(page))
		for i, k := range page {
			req[i] = k
		}
		resp, err := n.coord.CallPeer(ctx, peer, MsgStreamFetch, bson.D{
			{Key: "keys", Value: req},
			{Key: "budget", Value: budget},
		})
		if err != nil {
			return pulled
		}
		batchBytes := 0
		batchRecords := 0
		if v, ok := resp.Get("records"); ok {
			if arr, isArr := v.(bson.A); isArr {
				for _, e := range arr {
					d, isDoc := e.(bson.D)
					if !isDoc {
						continue
					}
					rec, err := nwr.RecordFromDoc(d)
					if err != nil {
						continue
					}
					batchBytes += recordWireSize(rec)
					batchRecords++
					if n.coord.ApplyLocalCtx(ctx, rec) == nil {
						pulled++
					}
				}
			}
		}
		if batchRecords > 0 {
			n.streamBatches.Add(1)
			n.streamRecords.Add(int64(batchRecords))
			n.streamBytes.Add(int64(batchBytes))
			n.throttleWait(ctx, batchBytes)
		}
		consumed := int64(0)
		if cv, ok := resp.Get("consumed"); ok {
			consumed, _ = cv.(int64)
		}
		if consumed <= 0 {
			return pulled // peer made no progress; give up this round
		}
		if consumed > int64(len(remaining)) {
			consumed = int64(len(remaining))
		}
		remaining = remaining[consumed:]
	}
	return pulled
}

// pushRecords ships recs to peer in streamed batches (or one write RPC per
// record under DisableStreamTransfer).
func (n *Node) pushRecords(ctx context.Context, peer string, recs []nwr.Record) (pushed int) {
	if len(recs) == 0 {
		return 0
	}
	if n.cfg.DisableStreamTransfer {
		for _, rec := range recs {
			if n.coord.WriteReplicaTo(ctx, peer, rec) {
				pushed++
			}
		}
		return pushed
	}
	ss := n.newStreamSender(peer)
	for _, rec := range recs {
		ss.Add(ctx, rec)
	}
	ss.Flush(ctx)
	return ss.Sent()
}

// --- flat baseline (Config.DisableMerkleAE) ---

// flatAntiEntropyRound is the pre-Merkle protocol: digest up to
// aeBatchLimit shared records, ship the digests, apply the peer's newer
// versions and push what it asked for. Kept as the A9 ablation baseline.
// The scan iterates in place (Each) instead of materializing a deep-cloned
// snapshot of the whole collection.
func (n *Node) flatAntiEntropyRound(ctx context.Context, peer string) (pushed, pulled int) {
	var entries []nwr.Record
	n.store.C(nwr.RecordCollection).Each(func(doc bson.D) bool {
		rec, err := nwr.RecordFromDoc(doc)
		if err != nil {
			return true
		}
		if n.consensusGuardsRecord(rec) {
			return true // log-managed record, leader elsewhere: the log moves it
		}
		owners, err := n.ring.Successors(rec.Key, n.cfg.NWR.N)
		if err != nil {
			return true
		}
		for _, o := range owners {
			if o == peer {
				entries = append(entries, rec)
				break
			}
		}
		return len(entries) < aeBatchLimit
	})
	if len(entries) == 0 {
		return 0, 0
	}
	digests := make(bson.A, len(entries))
	for i, rec := range entries {
		d := bson.D{
			{Key: "key", Value: rec.Key},
			{Key: "ver", Value: rec.Ver},
			{Key: "origin", Value: rec.Origin},
		}
		if rec.Strong {
			d = append(d, bson.E{Key: "strong", Value: "1"})
		}
		digests[i] = d
		n.aeDigestBytes.Add(int64(len(rec.Key) + len(rec.Origin) + 24))
	}
	resp, err := n.tr.Call(ctx, peer, transport.Message{
		Type: MsgAntiEntropy,
		Body: bson.D{{Key: "digests", Value: digests}},
	})
	if err != nil {
		return 0, 0
	}
	// Apply the peer's newer versions.
	if v, ok := resp.Get("newer"); ok {
		if arr, isArr := v.(bson.A); isArr {
			for _, e := range arr {
				d, isDoc := e.(bson.D)
				if !isDoc {
					continue
				}
				rec, err := nwr.RecordFromDoc(d)
				if err != nil {
					continue
				}
				if n.coord.ApplyLocal(rec) == nil {
					pulled++
				}
			}
		}
	}
	// Push the records the peer asked for, one write RPC per record — the
	// item-at-a-time movement the streaming path replaces.
	wantKeys := map[string]bool{}
	if v, ok := resp.Get("want"); ok {
		if arr, isArr := v.(bson.A); isArr {
			for _, e := range arr {
				if s, isStr := e.(string); isStr {
					wantKeys[s] = true
				}
			}
		}
	}
	for _, rec := range entries {
		if wantKeys[rec.Key] {
			if n.coord.WriteReplicaTo(ctx, peer, rec) {
				pushed++
			}
		}
	}
	return pushed, pulled
}

// handleAntiEntropy serves the flat baseline's peer side: compare each
// digest against local state, return records strictly newer here and the
// keys wanted from the caller.
func (n *Node) handleAntiEntropy(body bson.D) (bson.D, error) {
	var newer bson.A
	var want bson.A
	v, _ := body.Get("digests")
	arr, ok := v.(bson.A)
	if !ok {
		return bson.D{}, nil
	}
	for _, e := range arr {
		d, isDoc := e.(bson.D)
		if !isDoc {
			continue
		}
		key := d.StringOr("key", "")
		verV, _ := d.Get("ver")
		ver, _ := verV.(int64)
		remote := nwr.Record{
			Key: key, Ver: ver,
			Origin: d.StringOr("origin", ""),
			Strong: d.StringOr("strong", "0") == "1",
		}
		local, found, err := n.coord.GetLocal(key)
		if err != nil {
			continue
		}
		if n.consensusGuardsRecord(remote) || (found && n.consensusGuardsRecord(local)) {
			continue // log-managed record, leader elsewhere: neither offer nor ask
		}
		switch {
		case !found:
			want = append(want, key)
		case local.Newer(remote):
			newer = append(newer, local.ToDoc())
		case remote.Newer(local):
			want = append(want, key)
		}
	}
	return bson.D{
		{Key: "newer", Value: newer},
		{Key: "want", Value: want},
	}, nil
}

// AEStats snapshots the anti-entropy and streaming-transfer counters.
type AEStats struct {
	// Rounds counts Merkle rounds initiated; FallbackRounds flat ones.
	Rounds, FallbackRounds int64
	// DigestBytes approximates reconciliation metadata shipped (tree hashes
	// plus key/version digests) — the O(keys) vs O(log keys) comparison.
	DigestBytes int64
	// LeavesDiverged counts leaf ranges that needed reconciliation.
	LeavesDiverged int64
	// Stream transfer volume and throttle stalls (all streaming users:
	// anti-entropy, rebalance, hint drain).
	StreamBatches, StreamRecords, StreamBytes int64
	ThrottleWaitNanos                         int64
	// VersionRegressions counts applied mutations that replaced a record
	// with an older version — must stay zero (chaos invariant 5).
	VersionRegressions int64
}

// AEStats returns this node's anti-entropy/transfer counters.
func (n *Node) AEStats() AEStats {
	return AEStats{
		Rounds:             n.aeRounds.Load(),
		FallbackRounds:     n.aeFallbackRounds.Load(),
		DigestBytes:        n.aeDigestBytes.Load(),
		LeavesDiverged:     n.aeLeavesDiverged.Load(),
		StreamBatches:      n.streamBatches.Load(),
		StreamRecords:      n.streamRecords.Load(),
		StreamBytes:        n.streamBytes.Load(),
		ThrottleWaitNanos:  n.streamThrottleNanos.Load(),
		VersionRegressions: n.aeRegressions.Load(),
	}
}

// VersionRegressions exposes chaos invariant 5's tripwire directly.
func (n *Node) VersionRegressions() int64 { return n.aeRegressions.Load() }
