package cluster

import (
	"context"
	"math/rand"

	"mystore/internal/bson"
	"mystore/internal/docstore"
	"mystore/internal/nwr"
	"mystore/internal/transport"
)

// Active anti-entropy: the paper's future-work direction of "solving
// problems on data's consistency" (§7). Read repair only fixes replicas of
// keys that are actually read; anti-entropy sweeps the rest. Each round a
// node picks a random live peer, sends version digests of the local
// records whose replica sets include both nodes, and the pair reconciles:
// the peer pushes back its newer versions and asks for the ones it is
// missing or holds stale.

// MsgAntiEntropy carries one digest batch.
const MsgAntiEntropy = "node.ae.digest"

// aeBatchLimit bounds keys per round so a round stays cheap under load.
const aeBatchLimit = 512

// AntiEntropyRound reconciles a batch of shared keys with one random live
// peer. It returns how many records were pushed to the peer and how many
// newer records were pulled from it.
func (n *Node) AntiEntropyRound(ctx context.Context) (pushed, pulled int) {
	peers := n.gossiper.LiveEndpoints()
	candidates := peers[:0]
	for _, p := range peers {
		if p != n.Addr() {
			candidates = append(candidates, p)
		}
	}
	if len(candidates) == 0 {
		return 0, 0
	}
	peer := candidates[rand.Intn(len(candidates))]

	// Digest the local records the peer also owns.
	docs, err := n.store.C(nwr.RecordCollection).Find(docstore.Filter{}, docstore.FindOptions{})
	if err != nil {
		return 0, 0
	}
	type digestEntry struct {
		rec nwr.Record
	}
	var entries []digestEntry
	for _, doc := range docs {
		rec, err := nwr.RecordFromDoc(doc)
		if err != nil {
			continue
		}
		owners, err := n.ring.Successors(rec.Key, n.cfg.NWR.N)
		if err != nil {
			continue
		}
		peerOwns := false
		for _, o := range owners {
			if o == peer {
				peerOwns = true
				break
			}
		}
		if peerOwns {
			entries = append(entries, digestEntry{rec: rec})
			if len(entries) >= aeBatchLimit {
				break
			}
		}
	}
	if len(entries) == 0 {
		return 0, 0
	}
	digests := make(bson.A, len(entries))
	for i, e := range entries {
		digests[i] = bson.D{
			{Key: "key", Value: e.rec.Key},
			{Key: "ver", Value: e.rec.Ver},
			{Key: "origin", Value: e.rec.Origin},
		}
	}
	resp, err := n.tr.Call(ctx, peer, transport.Message{
		Type: MsgAntiEntropy,
		Body: bson.D{{Key: "digests", Value: digests}},
	})
	if err != nil {
		return 0, 0
	}
	// Apply the peer's newer versions.
	if v, ok := resp.Get("newer"); ok {
		if arr, isArr := v.(bson.A); isArr {
			for _, e := range arr {
				d, isDoc := e.(bson.D)
				if !isDoc {
					continue
				}
				rec, err := nwr.RecordFromDoc(d)
				if err != nil {
					continue
				}
				if n.coord.ApplyLocal(rec) == nil {
					pulled++
				}
			}
		}
	}
	// Push the records the peer asked for.
	wantKeys := map[string]bool{}
	if v, ok := resp.Get("want"); ok {
		if arr, isArr := v.(bson.A); isArr {
			for _, e := range arr {
				if s, isStr := e.(string); isStr {
					wantKeys[s] = true
				}
			}
		}
	}
	for _, e := range entries {
		if wantKeys[e.rec.Key] {
			if n.coord.WriteReplicaTo(ctx, peer, e.rec) {
				pushed++
			}
		}
	}
	return pushed, pulled
}

// handleAntiEntropy serves the peer side: compare each digest against local
// state, return records strictly newer here and the keys wanted from the
// caller.
func (n *Node) handleAntiEntropy(body bson.D) (bson.D, error) {
	var newer bson.A
	var want bson.A
	v, _ := body.Get("digests")
	arr, ok := v.(bson.A)
	if !ok {
		return bson.D{}, nil
	}
	for _, e := range arr {
		d, isDoc := e.(bson.D)
		if !isDoc {
			continue
		}
		key := d.StringOr("key", "")
		verV, _ := d.Get("ver")
		ver, _ := verV.(int64)
		remote := nwr.Record{Key: key, Ver: ver, Origin: d.StringOr("origin", "")}
		local, found, err := n.coord.GetLocal(key)
		if err != nil {
			continue
		}
		switch {
		case !found:
			want = append(want, key)
		case local.Newer(remote):
			newer = append(newer, local.ToDoc())
		case remote.Newer(local):
			want = append(want, key)
		}
	}
	return bson.D{
		{Key: "newer", Value: newer},
		{Key: "want", Value: want},
	}, nil
}
