package cluster

import (
	"context"
	"errors"
	"sync"
	"time"

	"mystore/internal/bson"
	"mystore/internal/nwr"
	"mystore/internal/trace"
)

// Streaming bulk transfer: background data movement (rebalance,
// re-replication after a departure, anti-entropy leaf sync, hint drain)
// ships records in size-bounded batches over one RPC instead of one RPC per
// record — Spinnaker's recovery catch-up and DynoStore's bulk movement
// argument. Every batch passes through the node's token-bucket throttle so
// repair traffic cannot starve foreground puts and gets, and through the
// coordinator's breaker-gated call path so a dead peer fast-fails.
const (
	// MsgStreamRecords pushes one batch of records; the receiver merges each
	// last-write-wins, which makes the stream idempotent and resumable — a
	// crash mid-stream re-sends batches without harm.
	MsgStreamRecords = "node.stream.records"
	// MsgStreamOffer sends (key, ver, origin) digests; the receiver answers
	// with the keys it is missing or holds stale, so senders don't blind-push
	// records the peer already has current.
	MsgStreamOffer = "node.stream.offer"
	// MsgStreamFetch pulls the requested keys' records, up to a byte budget
	// (anti-entropy pulling a peer's newer versions).
	MsgStreamFetch = "node.stream.fetch"
)

const (
	// defaultStreamBatchBytes bounds one records batch. Big enough to
	// amortize the per-RPC overhead ~1000x for small records, small enough
	// that one batch never monopolizes the wire for long.
	defaultStreamBatchBytes = 256 << 10
	// offerPageSize bounds digests per offer RPC.
	offerPageSize = 1024
	// defaultFetchBudget bounds one fetch response when the caller names none.
	defaultFetchBudget = int64(1 << 20)
)

// recordWireSize approximates one record's on-wire footprint: payload plus
// per-field BSON overhead. It only has to be proportionally right — the batch
// limit and the token bucket both consume it consistently.
func recordWireSize(rec nwr.Record) int {
	return len(rec.Key) + len(rec.Val) + len(rec.Origin) + 64
}

// tokenBucket is a byte-rate limiter for background transfer. take reserves
// bytes immediately and returns how long the caller must stall first, so one
// oversized batch borrows ahead rather than blocking forever.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64 // bytes per second
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
}

// newTokenBucket returns nil (unthrottled) for a non-positive rate. The burst
// is one second of rate, floored at one default batch so a tiny cap can still
// pass a full batch through.
func newTokenBucket(bytesPerSec int64, now func() time.Time) *tokenBucket {
	if bytesPerSec <= 0 {
		return nil
	}
	burst := float64(bytesPerSec)
	if burst < float64(defaultStreamBatchBytes) {
		burst = float64(defaultStreamBatchBytes)
	}
	return &tokenBucket{rate: float64(bytesPerSec), burst: burst, now: now}
}

// take reserves n bytes and returns the stall the caller owes.
func (b *tokenBucket) take(n int) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	if b.last.IsZero() {
		b.tokens = b.burst
	} else {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	b.tokens -= float64(n)
	if b.tokens >= 0 {
		return 0
	}
	return time.Duration(-b.tokens / b.rate * float64(time.Second))
}

// throttleWait charges nBytes against the repair-bandwidth budget, sleeping
// out any stall the bucket demands (cut short if ctx ends).
func (n *Node) throttleWait(ctx context.Context, nBytes int) {
	if n.throttle == nil {
		return
	}
	d := n.throttle.take(nBytes)
	if d <= 0 {
		return
	}
	n.streamThrottleNanos.Add(int64(d))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// streamSender accumulates records bound for one peer and flushes them in
// size-bounded MsgStreamRecords batches. After the first failed flush the
// sender is dead: Add and Flush become no-ops reporting failure, so callers
// finish their scan cheaply and re-arm a retry instead of hammering a dead
// peer once per record.
type streamSender struct {
	n     *Node
	peer  string
	limit int

	batch bson.A
	keys  []string
	bytes int

	// onDelivered, when set, receives the keys of every batch the peer
	// acknowledged (the rebalancer's drop-after-confirmed bookkeeping).
	onDelivered func(keys []string)

	sent   int
	failed bool
}

func (n *Node) newStreamSender(peer string) *streamSender {
	limit := n.cfg.StreamBatchBytes
	if limit <= 0 {
		limit = defaultStreamBatchBytes
	}
	return &streamSender{n: n, peer: peer, limit: limit}
}

// Add queues rec, flushing if the pending batch passed the size bound.
func (s *streamSender) Add(ctx context.Context, rec nwr.Record) {
	if s.failed {
		return
	}
	s.batch = append(s.batch, rec.ToDoc())
	s.keys = append(s.keys, rec.Key)
	s.bytes += recordWireSize(rec)
	if s.bytes >= s.limit {
		s.Flush(ctx)
	}
}

// Flush ships the pending batch, reporting whether the sender is still
// healthy (an empty pending batch is a healthy no-op).
func (s *streamSender) Flush(ctx context.Context) bool {
	if s.failed {
		return false
	}
	if len(s.batch) == 0 {
		return true
	}
	n := s.n
	n.throttleWait(ctx, s.bytes)
	sctx, sp := trace.Start(ctx, "stream.batch")
	sp.SetPeer(s.peer)
	_, err := n.coord.CallPeer(sctx, s.peer, MsgStreamRecords,
		bson.D{{Key: "records", Value: s.batch}})
	sp.End(err)
	if err != nil {
		s.failed = true
		return false
	}
	n.streamBatches.Add(1)
	n.streamRecords.Add(int64(len(s.batch)))
	n.streamBytes.Add(int64(s.bytes))
	s.sent += len(s.batch)
	if s.onDelivered != nil {
		s.onDelivered(s.keys)
	}
	s.batch = s.batch[:0]
	s.keys = s.keys[:0]
	s.bytes = 0
	return true
}

// Sent returns how many records the peer has acknowledged.
func (s *streamSender) Sent() int { return s.sent }

// Failed reports whether a flush has failed (remaining work must retry later).
func (s *streamSender) Failed() bool { return s.failed }

// offerSender fronts a streamSender with digest offers: records accumulate
// in pages, each page's (key, ver, origin) digests go to the peer first, and
// only the keys the peer asked for enter the stream. Records the peer
// already holds current are confirmed without moving their payload.
type offerSender struct {
	n    *Node
	peer string
	ss   *streamSender

	page   []nwr.Record
	failed bool
	// confirmed holds keys the peer is known to hold at least as new as
	// ours — either it declined the offer or it acked the batch carrying it.
	confirmed map[string]bool
}

func (n *Node) newOfferSender(peer string) *offerSender {
	o := &offerSender{n: n, peer: peer, ss: n.newStreamSender(peer), confirmed: map[string]bool{}}
	o.ss.onDelivered = func(keys []string) {
		for _, k := range keys {
			o.confirmed[k] = true
		}
	}
	return o
}

// Add queues rec for the offer/stream exchange.
func (o *offerSender) Add(ctx context.Context, rec nwr.Record) {
	if o.failed {
		return
	}
	o.page = append(o.page, rec)
	if len(o.page) >= offerPageSize {
		o.flushOffer(ctx)
	}
}

// flushOffer runs one digest exchange for the pending page and streams the
// wanted records.
func (o *offerSender) flushOffer(ctx context.Context) {
	if o.failed || len(o.page) == 0 {
		return
	}
	digests := make(bson.A, len(o.page))
	dBytes := 0
	for i, rec := range o.page {
		digests[i] = bson.D{
			{Key: "key", Value: rec.Key},
			{Key: "ver", Value: rec.Ver},
			{Key: "origin", Value: rec.Origin},
		}
		dBytes += len(rec.Key) + len(rec.Origin) + 24
	}
	o.n.throttleWait(ctx, dBytes)
	resp, err := o.n.coord.CallPeer(ctx, o.peer, MsgStreamOffer,
		bson.D{{Key: "digests", Value: digests}})
	if err != nil {
		o.failed = true
		return
	}
	want := map[string]bool{}
	if v, ok := resp.Get("want"); ok {
		if arr, isArr := v.(bson.A); isArr {
			for _, e := range arr {
				if s, isStr := e.(string); isStr {
					want[s] = true
				}
			}
		}
	}
	for _, rec := range o.page {
		if want[rec.Key] {
			o.ss.Add(ctx, rec)
		} else {
			o.confirmed[rec.Key] = true
		}
	}
	o.page = o.page[:0]
	if o.ss.Failed() {
		o.failed = true
	}
}

// Close flushes everything pending. It returns the set of keys confirmed on
// the peer and whether every queued record made it (false means retry later).
func (o *offerSender) Close(ctx context.Context) (confirmed map[string]bool, ok bool) {
	o.flushOffer(ctx)
	if !o.failed {
		o.ss.Flush(ctx)
	}
	return o.confirmed, !o.failed && !o.ss.Failed()
}

// Sent returns how many records were actually streamed (offers the peer
// declined move nothing).
func (o *offerSender) Sent() int { return o.ss.Sent() }

// --- receiver side ---

// handleStreamRecords merges one pushed batch last-write-wins.
func (n *Node) handleStreamRecords(ctx context.Context, body bson.D) (bson.D, error) {
	v, _ := body.Get("records")
	arr, ok := v.(bson.A)
	if !ok {
		return nil, errors.New("cluster: stream.records requires records")
	}
	applied := int64(0)
	for _, e := range arr {
		d, isDoc := e.(bson.D)
		if !isDoc {
			continue
		}
		rec, err := nwr.RecordFromDoc(d)
		if err != nil {
			continue
		}
		if n.coord.ApplyLocalCtx(ctx, rec) == nil {
			applied++
		}
	}
	return bson.D{{Key: "applied", Value: applied}}, nil
}

// handleStreamOffer answers a digest page with the keys this node is missing
// or holds stale.
func (n *Node) handleStreamOffer(body bson.D) (bson.D, error) {
	v, _ := body.Get("digests")
	arr, ok := v.(bson.A)
	if !ok {
		return nil, errors.New("cluster: stream.offer requires digests")
	}
	var want bson.A
	for _, e := range arr {
		d, isDoc := e.(bson.D)
		if !isDoc {
			continue
		}
		key := d.StringOr("key", "")
		if key == "" {
			continue
		}
		verV, _ := d.Get("ver")
		ver, _ := verV.(int64)
		remote := nwr.Record{Key: key, Ver: ver, Origin: d.StringOr("origin", "")}
		local, found, err := n.coord.GetLocal(key)
		if err != nil {
			continue
		}
		if !found || remote.Newer(local) {
			want = append(want, key)
		}
	}
	return bson.D{{Key: "want", Value: want}}, nil
}

// handleStreamFetch returns the requested keys' local records up to a byte
// budget; truncated tells the caller to come back for the rest.
func (n *Node) handleStreamFetch(body bson.D) (bson.D, error) {
	v, _ := body.Get("keys")
	arr, ok := v.(bson.A)
	if !ok {
		return nil, errors.New("cluster: stream.fetch requires keys")
	}
	budget := defaultFetchBudget
	if bv, ok := body.Get("budget"); ok {
		if b, isInt := bv.(int64); isInt && b > 0 {
			budget = b
		}
	}
	var out bson.A
	bytes := int64(0)
	consumed := int64(0)
	for _, e := range arr {
		key, isStr := e.(string)
		if !isStr {
			consumed++
			continue
		}
		rec, found, err := n.coord.GetLocal(key)
		if err != nil || !found {
			consumed++
			continue
		}
		sz := int64(recordWireSize(rec))
		if len(out) > 0 && bytes+sz > budget {
			break // truncated; consumed tells the caller where to resume
		}
		out = append(out, rec.ToDoc())
		bytes += sz
		consumed++
	}
	return bson.D{
		{Key: "records", Value: out},
		{Key: "consumed", Value: consumed},
	}, nil
}
