// Package cluster assembles MyStore's storage module (paper §5): each Node
// couples a local document store (the clustered MongoDB instance), an NWR
// replication coordinator, a gossip endpoint and a transport into one
// process. Nodes learn membership through gossip, maintain their own view
// of the consistent-hash ring, migrate data when nodes join, re-replicate
// when seeds confirm a long failure, and deliver parked hints when a
// short-failed node returns.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mystore/internal/bson"
	"mystore/internal/consensus"
	"mystore/internal/docstore"
	"mystore/internal/gossip"
	"mystore/internal/nwr"
	"mystore/internal/resilience"
	"mystore/internal/ring"
	"mystore/internal/trace"
	"mystore/internal/transport"
)

// Message types a Node serves beyond the embedded nwr.* and gossip.* sets.
const (
	MsgVersion    = "node.version"
	MsgPut        = "node.put"
	MsgGet        = "node.get"
	MsgGetMany    = "node.get.many"
	MsgDelete     = "node.delete"
	MsgQuery      = "node.query"
	MsgStatus     = "node.status"
	MsgQueryLocal = "node.query.local"
	MsgAggregate  = "node.aggregate"
)

// Version is the engine version string the Connect test queries, mirroring
// the paper's use of MongoDB's getversion interface for connection testing.
const Version = "mystore-1.0"

// Config assembles a Node.
type Config struct {
	// Seeds are the seed node addresses (paper Fig 7). A node whose own
	// address is listed acts as a seed.
	Seeds []string
	// Weight sizes this node's virtual-node count relative to others.
	Weight int
	// NWR is the replication configuration; the evaluation uses (3,2,1).
	NWR nwr.Config
	// StoreDir persists the local document store; empty means in-memory.
	StoreDir string
	// Store tunes the local document store beyond the directory: WAL
	// durability and group commit, or the serialized write path for
	// ablations. Its Dir field is ignored — StoreDir wins.
	Store docstore.Options
	// GossipInterval is the gossip tick period (default 1s).
	GossipInterval time.Duration
	// Breakers tunes the per-peer circuit breakers every replica RPC is
	// gated on; zero values take the resilience defaults.
	Breakers resilience.BreakerConfig
	// DisableBreakers leaves the circuit breakers unwired, so a dead peer
	// costs a full CallTimeout per attempt again (ablations).
	DisableBreakers bool
	// Seed, when non-zero, seeds the node's background-work RNG (anti-entropy
	// peer selection) so chaos and ablation runs are reproducible. Zero keeps
	// the process-global RNG.
	Seed int64
	// RepairBandwidth caps background transfer (streaming batches: rebalance,
	// re-replication, anti-entropy leaf sync, hint drain) at this many bytes
	// per second via a token bucket, so repair traffic cannot starve
	// foreground puts/gets. Zero means unthrottled.
	RepairBandwidth int64
	// StreamBatchBytes bounds one node.stream.records batch (default 256 KiB).
	StreamBatchBytes int
	// DisableMerkleAE falls back to the flat digest anti-entropy (every shared
	// record digested per round, aeBatchLimit keys max). Ablations only.
	DisableMerkleAE bool
	// DisableStreamTransfer moves records one RPC at a time instead of in
	// streamed batches (rebalance, re-replication, leaf sync). Ablations only.
	DisableStreamTransfer bool
	// Tracer, when non-nil, is this node's trace collector. Transports that
	// support it (TCP) join incoming on-wire trace ids against it, so a
	// networked node's spans correlate with the originating gateway trace.
	// In-process clusters don't need one: the simulated network passes the
	// caller's context — and with it the gateway's collector — straight
	// through.
	Tracer *trace.Collector
	// StrongRanges, when > 0, enables the CP replication tier: the ring-hash
	// space is cut into this many ranges, each replicated by a consensus
	// group over its first NWR.N clockwise owners. Requests carrying
	// consistency=strong route through the range leader's replicated log
	// instead of the NWR quorum path. Zero leaves the tier off.
	StrongRanges int
	// StrongElectionTimeout is the consensus election timeout base (see
	// consensus.Options.ElectionTimeout). Zero takes the default.
	StrongElectionTimeout time.Duration
	// StrongLeaseDuration bounds leader-local strong reads (clamped to the
	// election timeout). Zero takes the default.
	StrongLeaseDuration time.Duration
	// Now injects a clock for deterministic simulations.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Weight <= 0 {
		c.Weight = 1
	}
	if c.GossipInterval <= 0 {
		c.GossipInterval = time.Second
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.NWR.Now == nil {
		c.NWR.Now = c.Now
	}
	return c
}

// Node is one MyStore storage process.
type Node struct {
	cfg      Config
	tr       transport.Transport
	store    *docstore.Store
	ring     *ring.Ring
	gossiper *gossip.Gossiper
	coord    *nwr.Coordinator
	cns      *consensus.Manager // nil unless cfg.StrongRanges > 0

	breakers *resilience.BreakerSet // nil when cfg.DisableBreakers

	// throttle paces background streaming transfer (nil when unthrottled).
	throttle *tokenBucket
	// rng drives anti-entropy peer selection; seeded from cfg.Seed for
	// reproducible runs. Guarded by mu.
	rng *rand.Rand
	// ae holds the incrementally maintained Merkle forest (one tree per
	// peer) behind anti-entropy.
	ae aeState

	// Background-transfer instrumentation (see stream.go, antientropy.go).
	streamBatches       atomic.Int64
	streamRecords       atomic.Int64
	streamBytes         atomic.Int64
	streamThrottleNanos atomic.Int64
	aeRounds            atomic.Int64
	aeDigestBytes       atomic.Int64
	aeLeavesDiverged    atomic.Int64
	aeFallbackRounds    atomic.Int64
	aeRegressions       atomic.Int64

	mu                 sync.Mutex
	closed             bool
	rebalanceWanted    bool
	rebalanceNotBefore time.Time // retry cool-down after an incomplete pass
	inRing             map[string]bool
	tickCount          uint64
}

// NewNode builds and starts serving a node on tr. The node immediately
// answers RPCs; call Tick (or RunLoop) to participate in gossip.
func NewNode(tr transport.Transport, cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	storeOpts := cfg.Store
	storeOpts.Dir = cfg.StoreDir
	store, err := docstore.Open(storeOpts)
	if err != nil {
		return nil, err
	}
	n := &Node{
		cfg:    cfg,
		tr:     tr,
		store:  store,
		ring:   ring.New(),
		inRing: map[string]bool{},
	}
	n.throttle = newTokenBucket(cfg.RepairBandwidth, cfg.Now)
	seed := cfg.Seed
	if seed == 0 {
		seed = rand.Int63() // unseeded runs stay random
	}
	n.rng = rand.New(rand.NewSource(seed))
	if !cfg.DisableBreakers {
		if cfg.NWR.Breakers == nil {
			cfg.NWR.Breakers = resilience.NewBreakerSet(cfg.Breakers)
		}
		n.breakers = cfg.NWR.Breakers
		if cfg.NWR.RetryBudget == nil {
			cfg.NWR.RetryBudget = resilience.NewRetryBudget(0, 0)
		}
		n.cfg = cfg
	}
	n.gossiper = gossip.New(tr, gossip.Config{
		Seeds:    cfg.Seeds,
		Interval: cfg.GossipInterval,
		Now:      cfg.Now,
		OnEvent:  n.onGossipEvent,
	})
	n.coord, err = nwr.NewCoordinator(cfg.NWR, tr.Addr(), n.ring, tr, store)
	if err != nil {
		store.Close()
		return nil, err
	}
	n.coord.Live = func(addr string) bool {
		st := n.gossiper.StatusOf(addr)
		return st == gossip.StatusUp || st == gossip.StatusUnknown
	}
	// Maintain the anti-entropy Merkle forest incrementally on every record
	// apply (and trip the version-regression invariant if a repair path ever
	// goes backwards). WAL replay already ran in Open, so the forest starts
	// unbuilt and the first round's scan covers restart data.
	store.C(nwr.RecordCollection).SetApplyObserver(n.observeRecordApply)
	if !cfg.DisableStreamTransfer {
		// Hint writeback drains a page per streamed batch instead of one
		// RPC per parked record.
		n.coord.StreamTo = func(ctx context.Context, target string, recs []nwr.Record) bool {
			ss := n.newStreamSender(target)
			for _, rec := range recs {
				ss.Add(ctx, rec)
			}
			return ss.Flush(ctx)
		}
	}
	// Join the ring locally and announce capacity through gossip so peers
	// add us with the right weight.
	if err := n.addToRing(tr.Addr(), cfg.Weight); err != nil {
		store.Close()
		return nil, err
	}
	n.gossiper.SetLocal("weight", strconv.Itoa(cfg.Weight))
	if cfg.StrongRanges > 0 {
		if err := n.startConsensus(); err != nil {
			store.Close()
			return nil, err
		}
	}
	if cfg.Tracer != nil {
		if ts, ok := tr.(interface{ SetTracer(*trace.Collector) }); ok {
			ts.SetTracer(cfg.Tracer)
		}
	}
	tr.SetHandler(n.handleMessage)
	return n, nil
}

// Tracer returns the node-local trace collector (nil unless configured).
func (n *Node) Tracer() *trace.Collector { return n.cfg.Tracer }

// Addr returns the node's address.
func (n *Node) Addr() string { return n.tr.Addr() }

// Store exposes the local document store (tests, tooling).
func (n *Node) Store() *docstore.Store { return n.store }

// Coordinator exposes the NWR coordinator (tests, stats).
func (n *Node) Coordinator() *nwr.Coordinator { return n.coord }

// Gossiper exposes the gossip endpoint (tests, stats).
func (n *Node) Gossiper() *gossip.Gossiper { return n.gossiper }

// Ring exposes this node's membership view.
func (n *Node) Ring() *ring.Ring { return n.ring }

// Breakers exposes the per-peer circuit breakers (nil when disabled).
func (n *Node) Breakers() *resilience.BreakerSet { return n.breakers }

func (n *Node) addToRing(addr string, weight int) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.inRing[addr] {
		return nil
	}
	if err := n.ring.AddNode(ring.Node{ID: addr, Weight: weight}); err != nil && !errors.Is(err, ring.ErrNodeExists) {
		return err
	}
	n.inRing[addr] = true
	n.rebalanceWanted = true
	n.rebalanceNotBefore = time.Time{} // a real ring change rebalances now
	n.ae.markDirty()                   // ownership moved; the Merkle forest must be rebuilt
	return nil
}

func (n *Node) removeFromRing(addr string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.inRing[addr] {
		return
	}
	if err := n.ring.RemoveNode(addr); err == nil || errors.Is(err, ring.ErrNodeUnknown) {
		delete(n.inRing, addr)
		n.rebalanceWanted = true
		n.rebalanceNotBefore = time.Time{}
		n.ae.markDirty()
	}
}

// onGossipEvent reacts to believed status changes: long failures shrink the
// ring and trigger re-replication; recoveries trigger hint writeback. Every
// classification also feeds the peer's circuit breaker, so a node-wide
// belief translates into fast failovers on all RPC paths immediately.
func (n *Node) onGossipEvent(e gossip.Event) {
	switch e.New {
	case gossip.StatusLongFail:
		n.breakers.ObservePeer(e.Addr, resilience.PeerLongFail)
		n.removeFromRing(e.Addr)
	case gossip.StatusShortFail:
		n.breakers.ObservePeer(e.Addr, resilience.PeerShortFail)
	case gossip.StatusUp:
		n.breakers.ObservePeer(e.Addr, resilience.PeerUp)
		if e.Old == gossip.StatusShortFail || e.Old == gossip.StatusLongFail {
			// A returning node gets its parked writes back (Fig 8) and, if
			// it was removed, rejoins the ring on the next sync.
			n.coord.NoteTargetUp(e.Addr)
			go n.coord.DeliverHints(context.Background())
		}
	}
}

// Tick drives one round of background work: gossip, membership sync, hint
// delivery, any pending rebalance, and (every tenth tick) an anti-entropy
// round with a random peer.
func (n *Node) Tick(ctx context.Context) {
	n.gossiper.Tick(ctx)
	n.syncMembership()
	n.coord.DeliverHints(ctx)
	n.mu.Lock()
	wanted := n.rebalanceWanted && !n.cfg.Now().Before(n.rebalanceNotBefore)
	if wanted {
		n.rebalanceWanted = false
	}
	n.tickCount++
	aeDue := n.tickCount%10 == 0
	compactDue := n.tickCount%600 == 0
	n.mu.Unlock()
	if wanted {
		n.Rebalance(ctx)
	}
	if aeDue {
		n.AntiEntropyRound(ctx)
	}
	if compactDue {
		// Periodic snapshot compaction bounds WAL growth on persistent
		// nodes (a no-op for in-memory stores).
		n.store.Compact() //nolint:errcheck // best-effort; the WAL remains authoritative
	}
}

// syncMembership folds gossip knowledge into the local ring view: every
// non-long-failed endpoint that has announced a weight is a member.
func (n *Node) syncMembership() {
	for _, addr := range n.gossiper.Endpoints() {
		st := n.gossiper.StatusOf(addr)
		if st == gossip.StatusLongFail {
			n.removeFromRing(addr)
			continue
		}
		if w, ok := n.gossiper.Lookup(addr, "weight"); ok {
			weight, err := strconv.Atoi(w)
			if err != nil || weight <= 0 {
				weight = 1
			}
			n.addToRing(addr, weight) //nolint:errcheck // best-effort; next tick retries
		}
	}
}

// RunLoop ticks until ctx is cancelled.
func (n *Node) RunLoop(ctx context.Context) {
	t := time.NewTicker(n.cfg.GossipInterval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			n.Tick(ctx)
		}
	}
}

// handleMessage is the node's transport mux.
func (n *Node) handleMessage(ctx context.Context, msg transport.Message) (bson.D, error) {
	switch {
	case strings.HasPrefix(msg.Type, "gossip."):
		return n.gossiper.HandleMessage(ctx, msg)
	case strings.HasPrefix(msg.Type, "nwr."):
		return n.coord.HandleMessage(ctx, msg)
	case strings.HasPrefix(msg.Type, "cns."):
		if n.cns == nil {
			return nil, consensus.ErrDisabled
		}
		return n.cns.HandleMessage(msg.Type, msg.Body)
	}
	switch msg.Type {
	case MsgVersion:
		return bson.D{{Key: "version", Value: Version}, {Key: "addr", Value: n.Addr()}}, nil
	case MsgStatus:
		return n.statusDoc(), nil
	case MsgPut:
		key := msg.Body.StringOr("self-key", "")
		val, _ := msg.Body.Get("val")
		b, ok := val.([]byte)
		if key == "" || !ok {
			return nil, errors.New("cluster: put requires self-key and binary val")
		}
		if msg.Body.StringOr("consistency", "") == "strong" {
			sctx, cancel := n.strongTimeout(ctx)
			err := n.StrongPut(sctx, key, b)
			cancel()
			if err != nil {
				return nil, err
			}
			return bson.D{{Key: "ok", Value: true}}, nil
		}
		if err := n.coord.Put(ctx, key, b); err != nil {
			return nil, err
		}
		return bson.D{{Key: "ok", Value: true}}, nil
	case MsgGet:
		key := msg.Body.StringOr("self-key", "")
		if msg.Body.StringOr("consistency", "") == "strong" {
			sctx, cancel := n.strongTimeout(ctx)
			val, err := n.StrongGet(sctx, key)
			cancel()
			if errors.Is(err, consensus.ErrNotFound) {
				return bson.D{{Key: "found", Value: false}}, nil
			}
			if err != nil {
				return nil, err
			}
			return bson.D{{Key: "found", Value: true}, {Key: "val", Value: val}}, nil
		}
		val, err := n.coord.Get(ctx, key)
		if errors.Is(err, nwr.ErrNotFound) {
			return bson.D{{Key: "found", Value: false}}, nil
		}
		if err != nil {
			return nil, err
		}
		return bson.D{{Key: "found", Value: true}, {Key: "val", Value: val}}, nil
	case MsgGetMany:
		return n.handleGetMany(ctx, msg.Body)
	case MsgDelete:
		key := msg.Body.StringOr("self-key", "")
		if msg.Body.StringOr("consistency", "") == "strong" {
			sctx, cancel := n.strongTimeout(ctx)
			err := n.StrongDelete(sctx, key)
			cancel()
			if err != nil {
				return nil, err
			}
			return bson.D{{Key: "ok", Value: true}}, nil
		}
		if err := n.coord.Delete(ctx, key); err != nil {
			return nil, err
		}
		return bson.D{{Key: "ok", Value: true}}, nil
	case MsgQuery:
		return n.handleQuery(ctx, msg.Body)
	case MsgQueryLocal:
		return n.handleQueryLocal(msg.Body)
	case MsgAntiEntropy:
		return n.handleAntiEntropy(msg.Body)
	case MsgAEChildren:
		return n.handleAEChildren(msg.Body)
	case MsgAELeaf:
		return n.handleAELeaf(msg.Body)
	case MsgStreamRecords:
		return n.handleStreamRecords(ctx, msg.Body)
	case MsgStreamOffer:
		return n.handleStreamOffer(msg.Body)
	case MsgStreamFetch:
		return n.handleStreamFetch(msg.Body)
	case MsgAggregate:
		return n.handleAggregate(ctx, msg.Body)
	default:
		return nil, fmt.Errorf("cluster: unknown message type %q", msg.Type)
	}
}

// handleGetMany serves MsgGetMany: this node coordinates a batched quorum
// read over every requested key (one MsgGetReplicaBatch RPC per peer). Each
// result entry carries found/val; a key whose quorum failed carries its
// error instead, so callers can tell "absent" from "unreadable".
func (n *Node) handleGetMany(ctx context.Context, body bson.D) (bson.D, error) {
	kv, _ := body.Get("keys")
	arr, ok := kv.(bson.A)
	if !ok {
		return nil, errors.New("cluster: get.many requires keys")
	}
	keys := make([]string, 0, len(arr))
	for _, v := range arr {
		if s, isStr := v.(string); isStr {
			keys = append(keys, s)
		}
	}
	results, err := n.coord.GetMany(ctx, keys)
	if err != nil {
		return nil, err
	}
	out := make(bson.A, 0, len(results))
	for _, kr := range results {
		entry := bson.D{{Key: "self-key", Value: kr.Key}}
		switch {
		case kr.Err == nil:
			entry = append(entry,
				bson.E{Key: "found", Value: true},
				bson.E{Key: "val", Value: kr.Res.Val})
		case errors.Is(kr.Err, nwr.ErrNotFound):
			entry = append(entry, bson.E{Key: "found", Value: false})
		default:
			entry = append(entry,
				bson.E{Key: "found", Value: false},
				bson.E{Key: "err", Value: kr.Err.Error()})
		}
		out = append(out, entry)
	}
	return bson.D{{Key: "results", Value: out}}, nil
}

// statusDoc summarizes the node for monitoring.
func (n *Node) statusDoc() bson.D {
	st := n.store.Stats()
	cs := n.coord.Stats()
	live := n.gossiper.LiveEndpoints()
	liveArr := make(bson.A, len(live))
	for i, a := range live {
		liveArr[i] = a
	}
	doc := bson.D{
		{Key: "addr", Value: n.Addr()},
		{Key: "records", Value: int64(n.store.C(nwr.RecordCollection).Len())},
		{Key: "hints", Value: int64(n.coord.HintCount())},
		{Key: "documents", Value: int64(st.Documents)},
		{Key: "dataBytes", Value: st.DataBytes},
		{Key: "puts", Value: cs.Puts},
		{Key: "gets", Value: cs.Gets},
		{Key: "ringSize", Value: int64(n.ring.Len())},
		{Key: "live", Value: liveArr},
		{Key: "isSeed", Value: n.gossiper.IsSeed()},
		{Key: "breakersOpen", Value: int64(n.breakers.OpenCount())},
		{Key: "breakerFastFails", Value: n.breakers.Stats().FastFailures},
	}
	if n.cns != nil {
		st := n.cns.Stats()
		doc = append(doc,
			bson.E{Key: "strongRangesLed", Value: int64(st.RangesLed)},
			bson.E{Key: "strongProposals", Value: st.Proposals},
			bson.E{Key: "strongReads", Value: st.StrongReads},
		)
	}
	return doc
}

// Kill abandons the node as an abrupt process death (kill -9) would: the
// endpoint stops answering, and the store crashes without flushing or
// fsyncing — in-flight memtable flushes and compactions are left torn on
// disk. A replacement node must recover from the directory state alone.
// The chaos harness uses it to exercise storage recovery invariants.
func (n *Node) Kill() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	n.mu.Unlock()
	n.tr.Close()
	if n.cns != nil {
		n.cns.Kill() // abandon the consensus WAL unsynced, like the store
	}
	n.coord.Close()
	n.store.Crash()
}

// Close stops serving and closes the local store.
func (n *Node) Close() error {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil
	}
	n.closed = true
	n.mu.Unlock()
	terr := n.tr.Close()
	if n.cns != nil {
		n.cns.Close()
	}
	n.coord.Close()
	serr := n.store.Close()
	if terr != nil {
		return terr
	}
	return serr
}
