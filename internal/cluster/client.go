package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"mystore/internal/bson"
	"mystore/internal/consensus"
	"mystore/internal/docstore"
	"mystore/internal/resilience"
	"mystore/internal/trace"
	"mystore/internal/transport"
)

// Client talks to a MyStore cluster from outside: it connects to any node
// ("all physical nodes have open service interfaces over TCP, which lets
// clients can connect to any node in the system to get/put data", §6.2) and
// rotates across the nodes it knows, skipping ones that fail.
//
// Connect follows the paper's three-step procedure (§5.1): the transport
// supplies the connection pool, ClientOptions carry the connection
// parameters, and the version query performs the real connection test — the
// client is only usable once a node has actually answered.
type Client struct {
	tr    transport.Transport
	opts  ClientOptions
	mu    sync.Mutex
	nodes []string
	next  int
}

// ClientOptions are the connection parameters (the paper's
// connecttimeoutms / sockettimeoutms / autoconnectretry analogues).
type ClientOptions struct {
	// ConnectTimeout bounds the Connect test per node. Zero means 2s.
	ConnectTimeout time.Duration
	// CallTimeout bounds each data operation. Zero means 10s.
	CallTimeout time.Duration
	// AutoRetry, when true, retries a failed operation on the next node in
	// rotation (legacy switch: equivalent to Attempts=2).
	AutoRetry bool
	// Attempts is the total number of tries per operation; it overrides
	// AutoRetry when set. Zero defers to AutoRetry (2 attempts) or 1.
	Attempts int
	// RetryBackoff spaces the attempts with jittered exponential delays.
	// The zero value uses the resilience package defaults.
	RetryBackoff resilience.Backoff
	// Breakers, when non-nil, skips nodes whose breaker is open when
	// picking, and feeds call outcomes back per node.
	Breakers *resilience.BreakerSet
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.ConnectTimeout <= 0 {
		o.ConnectTimeout = 2 * time.Second
	}
	if o.CallTimeout <= 0 {
		o.CallTimeout = 10 * time.Second
	}
	if o.Attempts <= 0 {
		o.Attempts = 1
		if o.AutoRetry {
			o.Attempts = 2
		}
	}
	return o
}

// ErrNoNodes means the client has no reachable node.
var ErrNoNodes = errors.New("cluster: no reachable nodes")

// ErrKeyNotFound is returned by Get for absent or deleted keys.
var ErrKeyNotFound = errors.New("cluster: key not found")

// Connect builds a client over tr and verifies at least one node answers
// the version test. Nodes that fail the test are kept in rotation (they may
// recover) but at least one must pass now, mirroring "only when the
// connection to the database is built really, the Connect will return
// true".
func Connect(ctx context.Context, tr transport.Transport, nodes []string, opts ClientOptions) (*Client, error) {
	if len(nodes) == 0 {
		return nil, ErrNoNodes
	}
	c := &Client{tr: tr, opts: opts.withDefaults(), nodes: append([]string(nil), nodes...)}
	var lastErr error
	for _, node := range nodes {
		cctx, cancel := context.WithTimeout(ctx, c.opts.ConnectTimeout)
		resp, err := tr.Call(cctx, node, transport.Message{Type: MsgVersion})
		cancel()
		if err != nil {
			lastErr = err
			continue
		}
		if v := resp.StringOr("version", ""); v == "" {
			lastErr = fmt.Errorf("cluster: node %s returned no version", node)
			continue
		}
		return c, nil
	}
	return nil, fmt.Errorf("%w: connection test failed everywhere: %v", ErrNoNodes, lastErr)
}

// pick returns the next node in rotation, preferring nodes that have not
// just failed this operation (avoid) and whose breaker admits calls. When
// every node is excluded it falls back to plain rotation — trying a
// doubtful node beats failing without trying at all.
func (c *Client) pick(avoid map[string]bool) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.nodes)
	for i := 0; i < n; i++ {
		node := c.nodes[c.next%n]
		c.next++
		if avoid[node] {
			continue
		}
		if c.opts.Breakers != nil && !c.opts.Breakers.Allow(node) {
			continue
		}
		return node
	}
	node := c.nodes[c.next%n]
	c.next++
	return node
}

// call performs one operation with up to opts.Attempts tries, jittered
// exponential backoff between them, skipping nodes that already failed this
// operation while others remain.
func (c *Client) call(ctx context.Context, msgType string, body bson.D) (bson.D, error) {
	ctx, sp := trace.Start(ctx, "cluster.call")
	resp, err := c.callAttempts(ctx, msgType, body)
	sp.End(err)
	return resp, err
}

func (c *Client) callAttempts(ctx context.Context, msgType string, body bson.D) (bson.D, error) {
	var failed map[string]bool
	var lastErr error
	for i := 0; i < c.opts.Attempts; i++ {
		if i > 0 {
			if resilience.Sleep(ctx, c.opts.RetryBackoff.Delay(i-1, nil)) != nil {
				break // caller gave up mid-backoff
			}
		}
		node := c.pick(failed)
		cctx, cancel := context.WithTimeout(ctx, c.opts.CallTimeout)
		resp, err := c.tr.Call(cctx, node, transport.Message{Type: msgType, Body: body})
		cancel()
		c.opts.Breakers.Report(node, err == nil || transport.IsRemote(err))
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if failed == nil {
			failed = make(map[string]bool, c.opts.Attempts)
		}
		failed[node] = true
		// Remote application errors will not improve on another node if
		// they are data errors, but quorum failures might; retry anyway.
	}
	return nil, lastErr
}

// maxLeaderRedirects bounds how many NotLeader redirect hops one attempt
// may follow before the hop chain counts as a failed attempt. Redirects are
// free — a node telling us exactly where to go is progress, not failure, so
// following its hint must not consume the caller's retry budget.
const maxLeaderRedirects = 3

// callStrong performs one strong operation: the request carries
// consistency=strong, NotLeader rejections are treated as retryable, and a
// rejection's leader hint is followed first — as a free hop within the same
// attempt, then as the preferred target of the next attempt.
func (c *Client) callStrong(ctx context.Context, msgType string, body bson.D) (bson.D, error) {
	ctx, sp := trace.Start(ctx, "cluster.call.strong")
	req := make(bson.D, 0, len(body)+1)
	req = append(req, body...)
	req = append(req, bson.E{Key: "consistency", Value: "strong"})

	var failed map[string]bool
	var lastErr error
	hint := ""
	for i := 0; i < c.opts.Attempts; i++ {
		if i > 0 {
			if resilience.Sleep(ctx, c.opts.RetryBackoff.Delay(i-1, nil)) != nil {
				break // caller gave up mid-backoff
			}
		}
		node := hint
		hint = ""
		if node == "" {
			node = c.pick(failed)
		}
		for hop := 0; hop <= maxLeaderRedirects; hop++ {
			cctx, cancel := context.WithTimeout(ctx, c.opts.CallTimeout)
			resp, err := c.tr.Call(cctx, node, transport.Message{Type: msgType, Body: req})
			cancel()
			c.opts.Breakers.Report(node, err == nil || transport.IsRemote(err))
			if err == nil {
				sp.End(nil)
				return resp, nil
			}
			lastErr = err
			if leader, isNL := consensus.ParseNotLeader(err); isNL {
				// The node answered — it just isn't the leader. Its hint is
				// a free redirect; without one (mid-election) fall through
				// to the next attempt, whose backoff rides the election out.
				if leader != "" && leader != node {
					node = leader
					continue
				}
				break
			}
			// Transport-level failure: this node is out for this operation.
			if failed == nil {
				failed = make(map[string]bool, c.opts.Attempts)
			}
			failed[node] = true
			break
		}
	}
	sp.End(lastErr)
	return nil, lastErr
}

// StrongPut writes key through the owning range's replicated log: the ack
// means a majority of the range's replicas hold the write durably.
func (c *Client) StrongPut(ctx context.Context, key string, val []byte) error {
	_, err := c.callStrong(ctx, MsgPut, bson.D{
		{Key: "self-key", Value: key},
		{Key: "val", Value: val},
	})
	return err
}

// StrongGet reads key from the range leader under its lease — linearizable
// with respect to StrongPut/StrongDelete acks.
func (c *Client) StrongGet(ctx context.Context, key string) ([]byte, error) {
	resp, err := c.callStrong(ctx, MsgGet, bson.D{{Key: "self-key", Value: key}})
	if err != nil {
		return nil, err
	}
	if found, ok := resp.Get("found"); !ok || found != true {
		return nil, fmt.Errorf("%w: %q", ErrKeyNotFound, key)
	}
	v, _ := resp.Get("val")
	b, ok := v.([]byte)
	if !ok {
		return nil, errors.New("cluster: malformed strong get response")
	}
	return b, nil
}

// StrongDelete replicates a tombstone for key through the range's log.
func (c *Client) StrongDelete(ctx context.Context, key string) error {
	_, err := c.callStrong(ctx, MsgDelete, bson.D{{Key: "self-key", Value: key}})
	return err
}

// Put stores val under key.
func (c *Client) Put(ctx context.Context, key string, val []byte) error {
	_, err := c.call(ctx, MsgPut, bson.D{
		{Key: "self-key", Value: key},
		{Key: "val", Value: val},
	})
	return err
}

// PutDoc stores a BSON document under key; its fields become queryable via
// Query filters under the "doc." prefix.
func (c *Client) PutDoc(ctx context.Context, key string, doc bson.D) error {
	enc, err := bson.Marshal(doc)
	if err != nil {
		return err
	}
	return c.Put(ctx, key, enc)
}

// Get fetches the value stored under key.
func (c *Client) Get(ctx context.Context, key string) ([]byte, error) {
	resp, err := c.call(ctx, MsgGet, bson.D{{Key: "self-key", Value: key}})
	if err != nil {
		return nil, err
	}
	if found, ok := resp.Get("found"); !ok || found != true {
		return nil, fmt.Errorf("%w: %q", ErrKeyNotFound, key)
	}
	v, _ := resp.Get("val")
	b, ok := v.([]byte)
	if !ok {
		return nil, errors.New("cluster: malformed get response")
	}
	return b, nil
}

// GetMany fetches several keys in one round trip: the receiving node
// coordinates a batched quorum read with one replica RPC per peer. The first
// map holds the keys that were found; failed holds per-key error text for
// keys whose read quorum could not be met (keys in neither map simply do not
// exist). Duplicate keys are collapsed.
func (c *Client) GetMany(ctx context.Context, keys []string) (found map[string][]byte, failed map[string]string, err error) {
	found = map[string][]byte{}
	if len(keys) == 0 {
		return found, nil, nil
	}
	arr := make(bson.A, len(keys))
	for i, k := range keys {
		arr[i] = k
	}
	resp, err := c.call(ctx, MsgGetMany, bson.D{{Key: "keys", Value: arr}})
	if err != nil {
		return nil, nil, err
	}
	rv, _ := resp.Get("results")
	ra, ok := rv.(bson.A)
	if !ok {
		return nil, nil, errors.New("cluster: malformed get.many response")
	}
	for _, ev := range ra {
		d, isDoc := ev.(bson.D)
		if !isDoc {
			continue
		}
		key := d.StringOr("self-key", "")
		if msg := d.StringOr("err", ""); msg != "" {
			if failed == nil {
				failed = map[string]string{}
			}
			failed[key] = msg
			continue
		}
		if fv, _ := d.Get("found"); fv != true {
			continue
		}
		v, _ := d.Get("val")
		b, isBytes := v.([]byte)
		if !isBytes {
			return nil, nil, errors.New("cluster: malformed get.many entry")
		}
		found[key] = b
	}
	return found, failed, nil
}

// GetDoc fetches and decodes a document stored with PutDoc.
func (c *Client) GetDoc(ctx context.Context, key string) (bson.D, error) {
	val, err := c.Get(ctx, key)
	if err != nil {
		return nil, err
	}
	return bson.Unmarshal(val)
}

// Delete tombstones key.
func (c *Client) Delete(ctx context.Context, key string) error {
	_, err := c.call(ctx, MsgDelete, bson.D{{Key: "self-key", Value: key}})
	return err
}

// Query runs a distributed query. Filters address record fields (self-key,
// size, isDel) and stored-document fields as "doc.<field>".
func (c *Client) Query(ctx context.Context, filter docstore.Filter, opts docstore.FindOptions) ([]QueryResult, error) {
	resp, err := c.call(ctx, MsgQuery, encodeQuery(filter, opts))
	if err != nil {
		return nil, err
	}
	v, _ := resp.Get("results")
	arr, ok := v.(bson.A)
	if !ok {
		return nil, nil
	}
	out := make([]QueryResult, 0, len(arr))
	for _, e := range arr {
		d, isDoc := e.(bson.D)
		if !isDoc {
			continue
		}
		r := QueryResult{Key: d.StringOr("self-key", "")}
		if val, ok := d.Get("val"); ok {
			if b, isBytes := val.([]byte); isBytes {
				r.Val = b
			}
		}
		if doc, ok := d.Get("doc"); ok {
			if dd, isDoc := doc.(bson.D); isDoc {
				r.Doc = dd
			}
		}
		out = append(out, r)
	}
	return out, nil
}

// Aggregate runs a distributed group-by: filter as in Query, grouped by
// spec.By with spec's accumulators. One result document per group, ordered
// by group value.
func (c *Client) Aggregate(ctx context.Context, filter docstore.Filter, spec docstore.GroupSpec) ([]bson.D, error) {
	body := encodeQuery(filter, docstore.FindOptions{})
	body = append(body, bson.E{Key: "by", Value: spec.By})
	accs := make(bson.A, len(spec.Accumulators))
	for i, a := range spec.Accumulators {
		accs[i] = bson.D{
			{Key: "name", Value: a.Name},
			{Key: "op", Value: a.Op},
			{Key: "field", Value: a.Field},
		}
	}
	body = append(body, bson.E{Key: "accs", Value: accs})
	resp, err := c.call(ctx, MsgAggregate, body)
	if err != nil {
		return nil, err
	}
	v, _ := resp.Get("rows")
	arr, ok := v.(bson.A)
	if !ok {
		return nil, nil
	}
	out := make([]bson.D, 0, len(arr))
	for _, e := range arr {
		if d, isDoc := e.(bson.D); isDoc {
			out = append(out, d)
		}
	}
	return out, nil
}

// Status fetches a node status snapshot (round-robin across nodes).
func (c *Client) Status(ctx context.Context) (bson.D, error) {
	return c.call(ctx, MsgStatus, nil)
}

// Transport exposes the client's transport (metrics registration: the
// per-peer RPC latency vec lives on the transport).
func (c *Client) Transport() transport.Transport { return c.tr }

// Nodes returns the node addresses in rotation.
func (c *Client) Nodes() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string(nil), c.nodes...)
}
