package cluster

import (
	"context"
	"strings"
	"sync"

	"mystore/internal/bson"
	"mystore/internal/docstore"
	"mystore/internal/nwr"
	"mystore/internal/transport"
)

// Distributed queries: the feature MyStore keeps from MongoDB that Dynamo
// and Cassandra lack (paper §2). A record's value may be a BSON document;
// Query scatters a filter to every live node, each node matches its local
// records (against the record fields and, when the value decodes as BSON,
// the embedded document), and the coordinator merges answers last-write-
// wins, drops tombstones, then sorts and windows the result.

// QueryResult is one record matched by a distributed query.
type QueryResult struct {
	Key string
	Doc bson.D // decoded value document; nil when the value is opaque bytes
	Val []byte // raw value bytes
}

// handleQuery serves MsgQuery: scatter to live nodes, merge, shape.
func (n *Node) handleQuery(ctx context.Context, body bson.D) (bson.D, error) {
	filter, opts, err := decodeQuery(body)
	if err != nil {
		return nil, err
	}
	results, err := n.Query(ctx, filter, opts)
	if err != nil {
		return nil, err
	}
	arr := make(bson.A, len(results))
	for i, r := range results {
		entry := bson.D{{Key: "self-key", Value: r.Key}, {Key: "val", Value: r.Val}}
		if r.Doc != nil {
			entry = append(entry, bson.E{Key: "doc", Value: r.Doc})
		}
		arr[i] = entry
	}
	return bson.D{{Key: "results", Value: arr}}, nil
}

// Query runs a distributed query from this node.
func (n *Node) Query(ctx context.Context, filter docstore.Filter, opts docstore.FindOptions) ([]QueryResult, error) {
	targets := n.gossiper.LiveEndpoints()
	if len(targets) == 0 {
		targets = []string{n.Addr()}
	}
	type shard struct {
		recs []nwr.Record
		err  error
	}
	shards := make([]shard, len(targets))
	var wg sync.WaitGroup
	reqBody := encodeQuery(filter, docstore.FindOptions{}) // shaping happens after merge
	for i, target := range targets {
		wg.Add(1)
		go func(i int, target string) {
			defer wg.Done()
			if target == n.Addr() {
				shards[i].recs, shards[i].err = n.queryLocal(filter)
				return
			}
			resp, err := n.tr.Call(ctx, target, transport.Message{Type: MsgQueryLocal, Body: reqBody})
			if err != nil {
				shards[i].err = err
				return
			}
			shards[i].recs = decodeRecordList(resp)
		}(i, target)
	}
	wg.Wait()

	// Merge newest-wins by key; unreachable shards degrade coverage, they
	// do not fail the query (availability first).
	newest := map[string]nwr.Record{}
	for _, sh := range shards {
		for _, rec := range sh.recs {
			if cur, ok := newest[rec.Key]; !ok || rec.Newer(cur) {
				newest[rec.Key] = rec
			}
		}
	}
	merged := make([]bson.D, 0, len(newest))
	byKey := map[string]nwr.Record{}
	for key, rec := range newest {
		if rec.Deleted {
			continue
		}
		byKey[key] = rec
		merged = append(merged, queryView(rec))
	}
	docstore.SortDocuments(merged, opts.Sort)
	merged = docstore.WindowDocuments(merged, opts.Skip, opts.Limit)

	out := make([]QueryResult, 0, len(merged))
	for _, view := range merged {
		key := view.StringOr("self-key", "")
		rec := byKey[key]
		r := QueryResult{Key: key, Val: rec.Val}
		if doc, err := bson.Unmarshal(rec.Val); err == nil {
			r.Doc = doc
		}
		out = append(out, r)
	}
	return out, nil
}

// Aggregate runs a distributed aggregation: a deduplicated distributed
// query collects the matching records (newest version per key, tombstones
// dropped), then the filter view of each record is grouped and reduced.
// Filters and group fields use the same paths Query exposes ("self-key",
// "size", "doc.<field>").
func (n *Node) Aggregate(ctx context.Context, filter docstore.Filter, spec docstore.GroupSpec) ([]bson.D, error) {
	results, err := n.Query(ctx, filter, docstore.FindOptions{})
	if err != nil {
		return nil, err
	}
	views := make([]bson.D, len(results))
	for i, r := range results {
		rec := nwr.Record{Key: r.Key, Val: r.Val, IsData: true}
		views[i] = queryView(rec)
	}
	return docstore.GroupDocuments(views, spec)
}

// handleAggregate serves MsgAggregate.
func (n *Node) handleAggregate(ctx context.Context, body bson.D) (bson.D, error) {
	filter, _, err := decodeQuery(body)
	if err != nil {
		return nil, err
	}
	spec := docstore.GroupSpec{By: body.StringOr("by", "")}
	if v, ok := body.Get("accs"); ok {
		if arr, isArr := v.(bson.A); isArr {
			for _, e := range arr {
				d, isDoc := e.(bson.D)
				if !isDoc {
					continue
				}
				spec.Accumulators = append(spec.Accumulators, docstore.AccumulatorSpec{
					Name:  d.StringOr("name", ""),
					Op:    d.StringOr("op", ""),
					Field: d.StringOr("field", ""),
				})
			}
		}
	}
	rows, err := n.Aggregate(ctx, filter, spec)
	if err != nil {
		return nil, err
	}
	arr := make(bson.A, len(rows))
	for i, r := range rows {
		arr[i] = r
	}
	return bson.D{{Key: "rows", Value: arr}}, nil
}

// handleQueryLocal serves MsgQueryLocal: match this node's records only.
func (n *Node) handleQueryLocal(body bson.D) (bson.D, error) {
	filter, _, err := decodeQuery(body)
	if err != nil {
		return nil, err
	}
	recs, err := n.queryLocal(filter)
	if err != nil {
		return nil, err
	}
	arr := make(bson.A, len(recs))
	for i, rec := range recs {
		arr[i] = rec.ToDoc()
	}
	return bson.D{{Key: "records", Value: arr}}, nil
}

// queryLocal matches filter against local records. The filter sees a view
// with the record's self-key, isData and isDel fields plus the decoded
// value document under "doc" (so filters can reach stored fields as
// "doc.field"). Keys containing NUL are reserved for internal records
// (large-object chunks) and never surface in queries.
func (n *Node) queryLocal(filter docstore.Filter) ([]nwr.Record, error) {
	docs, err := n.store.C(nwr.RecordCollection).Find(docstore.Filter{}, docstore.FindOptions{})
	if err != nil {
		return nil, err
	}
	var out []nwr.Record
	for _, doc := range docs {
		rec, err := nwr.RecordFromDoc(doc)
		if err != nil {
			continue
		}
		if strings.ContainsRune(rec.Key, 0) {
			continue // internal key (e.g. a large-object chunk)
		}
		match, err := docstore.Match(queryView(rec), filter)
		if err != nil {
			return nil, err
		}
		if match {
			out = append(out, rec)
		}
	}
	return out, nil
}

// queryView is the document a filter matches against for a record.
func queryView(rec nwr.Record) bson.D {
	view := bson.D{
		{Key: "self-key", Value: rec.Key},
		{Key: "isData", Value: boolFlag(rec.IsData)},
		{Key: "isDel", Value: boolFlag(rec.Deleted)},
		{Key: "size", Value: int64(len(rec.Val))},
	}
	if doc, err := bson.Unmarshal(rec.Val); err == nil {
		view = append(view, bson.E{Key: "doc", Value: doc})
	}
	return view
}

func boolFlag(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

// --- wire encoding for query requests/responses ---

func encodeQuery(filter docstore.Filter, opts docstore.FindOptions) bson.D {
	sortArr := make(bson.A, len(opts.Sort))
	for i, s := range opts.Sort {
		sortArr[i] = bson.D{{Key: "field", Value: s.Field}, {Key: "desc", Value: s.Desc}}
	}
	projArr := make(bson.A, len(opts.Projection))
	for i, p := range opts.Projection {
		projArr[i] = p
	}
	return bson.D{
		{Key: "filter", Value: bson.D(filter)},
		{Key: "sort", Value: sortArr},
		{Key: "skip", Value: int64(opts.Skip)},
		{Key: "limit", Value: int64(opts.Limit)},
		{Key: "projection", Value: projArr},
	}
}

func decodeQuery(body bson.D) (docstore.Filter, docstore.FindOptions, error) {
	var filter docstore.Filter
	if v, ok := body.Get("filter"); ok {
		if d, isDoc := v.(bson.D); isDoc {
			filter = docstore.Filter(d)
		}
	}
	opts := docstore.FindOptions{}
	if v, ok := body.Get("sort"); ok {
		if arr, isArr := v.(bson.A); isArr {
			for _, e := range arr {
				if d, isDoc := e.(bson.D); isDoc {
					desc, _ := d.Get("desc")
					descB, _ := desc.(bool)
					opts.Sort = append(opts.Sort, docstore.SortField{
						Field: d.StringOr("field", ""),
						Desc:  descB,
					})
				}
			}
		}
	}
	if v, ok := body.Get("skip"); ok {
		if i, isInt := v.(int64); isInt {
			opts.Skip = int(i)
		}
	}
	if v, ok := body.Get("limit"); ok {
		if i, isInt := v.(int64); isInt {
			opts.Limit = int(i)
		}
	}
	if v, ok := body.Get("projection"); ok {
		if arr, isArr := v.(bson.A); isArr {
			for _, e := range arr {
				if s, isStr := e.(string); isStr {
					opts.Projection = append(opts.Projection, s)
				}
			}
		}
	}
	return filter, opts, nil
}

func decodeRecordList(resp bson.D) []nwr.Record {
	v, ok := resp.Get("records")
	arr, isArr := v.(bson.A)
	if !ok || !isArr {
		return nil
	}
	out := make([]nwr.Record, 0, len(arr))
	for _, e := range arr {
		d, isDoc := e.(bson.D)
		if !isDoc {
			continue
		}
		rec, err := nwr.RecordFromDoc(d)
		if err != nil {
			continue
		}
		out = append(out, rec)
	}
	return out
}
