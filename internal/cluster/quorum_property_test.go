package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"mystore/internal/nwr"
	"mystore/internal/transport"
)

// newQuorumHarness builds a cluster with explicit (N, W, R).
func newQuorumHarness(t *testing.T, nodes, n, w, r int) *harness {
	t.Helper()
	h := &harness{t: t, net: transport.NewMemNetwork(), now: time.Unix(5000, 0)}
	seeds := []string{addr(0)}
	for i := 0; i < nodes; i++ {
		ep, err := h.net.Endpoint(addr(i))
		if err != nil {
			t.Fatal(err)
		}
		node, err := NewNode(ep, Config{
			Seeds:          seeds,
			Weight:         1,
			NWR:            nwr.Config{N: n, W: w, R: r, Retries: 1, CallTimeout: time.Second},
			GossipInterval: time.Second,
			Now:            h.clock,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close() })
		h.eps = append(h.eps, ep)
		h.nodes = append(h.nodes, node)
	}
	h.converge(12)
	return h
}

// TestReadYourWritesProperty: with R + W > N (strict quorum intersection)
// and a healthy cluster, a read issued through ANY coordinator after an
// acknowledged write must return that write's value — the classic quorum
// overlap guarantee the paper's §5.2.2 configuration discussion relies on.
func TestReadYourWritesProperty(t *testing.T) {
	h := newQuorumHarness(t, 5, 3, 2, 2) // R+W = 4 > N = 3
	ctx := context.Background()
	rng := rand.New(rand.NewSource(41))
	type last struct {
		val string
	}
	state := map[string]last{}
	for step := 0; step < 400; step++ {
		// Advance the virtual clock between operations: last-write-wins
		// orders concurrent writes by timestamp, so writes from different
		// coordinators need distinct instants — exactly the wall-clock
		// assumption a production LWW deployment makes.
		h.advance(time.Millisecond)
		key := fmt.Sprintf("ryw-%02d", rng.Intn(30))
		writer := h.nodes[rng.Intn(len(h.nodes))]
		reader := h.nodes[rng.Intn(len(h.nodes))]
		switch rng.Intn(3) {
		case 0, 1:
			val := fmt.Sprintf("v-%d", step)
			if err := writer.Coordinator().Put(ctx, key, []byte(val)); err != nil {
				t.Fatalf("step %d: Put: %v", step, err)
			}
			state[key] = last{val: val}
		default:
			expect, written := state[key]
			got, err := reader.Coordinator().Get(ctx, key)
			if !written {
				if err == nil {
					t.Fatalf("step %d: read of never-written key succeeded: %q", step, got)
				}
				continue
			}
			if err != nil {
				t.Fatalf("step %d: Get(%s): %v", step, key, err)
			}
			if string(got) != expect.val {
				t.Fatalf("step %d: read-your-writes violated: got %q want %q", step, got, expect.val)
			}
		}
	}
}

// TestMonotonicReadsAfterRepair: even at R = 1 (the paper's availability
// setting), once a read has returned a value, later reads through the same
// coordinator must not return an older value for an unchanged key, because
// read repair pushed the newest version to every replica it reached.
func TestMonotonicReadsAfterRepair(t *testing.T) {
	h := newQuorumHarness(t, 5, 3, 2, 1)
	ctx := context.Background()
	key := "monotonic-key"
	if err := h.nodes[0].Coordinator().Put(ctx, key, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	h.converge(2)
	if err := h.nodes[1].Coordinator().Put(ctx, key, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	h.converge(2)
	// First read resolves and repairs; all subsequent reads agree.
	first, err := h.nodes[2].Coordinator().Get(ctx, key)
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != "v2" {
		t.Fatalf("first read = %q, want v2", first)
	}
	for i := 0; i < 20; i++ {
		got, err := h.nodes[rand.Intn(5)].Coordinator().Get(ctx, key)
		if err != nil || string(got) != "v2" {
			t.Fatalf("read %d regressed: %q, %v", i, got, err)
		}
	}
}
