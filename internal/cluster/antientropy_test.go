package cluster

import (
	"context"
	"fmt"
	"testing"

	"mystore/internal/docstore"
	"mystore/internal/nwr"
)

func TestAntiEntropyRepairsMissingReplica(t *testing.T) {
	h := newHarness(t, 5)
	h.converge(12)
	c := h.client(t)
	ctx := context.Background()
	const records = 40
	for i := 0; i < records; i++ {
		if err := c.Put(ctx, fmt.Sprintf("ae-%03d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	h.converge(4) // let trailing replications land

	// Physically strip every replica off node 2 (silent data loss: disk
	// replaced, store wiped) without any membership change.
	victim := h.nodes[2]
	coll := victim.Store().C(nwr.RecordCollection)
	lost := 0
	for {
		docs, _ := coll.Find(nil, docstoreFindAll())
		if len(docs) == 0 {
			break
		}
		for _, d := range docs {
			id, _ := d.Get("_id")
			coll.Delete(id) //nolint:errcheck
			lost++
		}
	}
	if lost == 0 {
		t.Skip("victim held no replicas for the keyspace; nothing to verify")
	}

	// Anti-entropy rounds from the other nodes push the lost records back.
	deadline := 200
	for round := 0; round < deadline; round++ {
		for i, n := range h.nodes {
			if i != 2 {
				n.AntiEntropyRound(ctx)
			}
		}
		if coll.Len() >= lost {
			break
		}
	}
	if got := coll.Len(); got < lost {
		t.Fatalf("anti-entropy restored %d of %d lost replicas", got, lost)
	}
}

func TestAntiEntropyPullsNewerVersions(t *testing.T) {
	h := newHarness(t, 3)
	h.converge(8)
	c := h.client(t)
	ctx := context.Background()
	if err := c.Put(ctx, "ae-key", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	h.converge(2)
	// Force one replica stale: rewrite it with an ancient version.
	var victim *Node
	owners, _ := h.nodes[0].Ring().Successors("ae-key", 3)
	for _, n := range h.nodes {
		if n.Addr() == owners[0] {
			victim = n
		}
	}
	coll := victim.Store().C(nwr.RecordCollection)
	docs, _ := coll.Find(nil, docstoreFindAll())
	for _, d := range docs {
		if d.StringOr("self-key", "") == "ae-key" {
			id, _ := d.Get("_id")
			coll.Delete(id) //nolint:errcheck
		}
	}
	stale := nwr.Record{Key: "ae-key", Val: []byte("ancient"), Ver: 1, Origin: "old"}
	if err := victim.Coordinator().ApplyLocal(stale); err != nil {
		t.Fatal(err)
	}
	// The victim's own anti-entropy rounds pull the newer version.
	for round := 0; round < 50; round++ {
		victim.AntiEntropyRound(ctx)
		rec, found, _ := victim.Coordinator().GetLocal("ae-key")
		if found && string(rec.Val) == "v1" {
			return
		}
	}
	rec, _, _ := victim.Coordinator().GetLocal("ae-key")
	t.Fatalf("victim still stale after anti-entropy: %q", rec.Val)
}

func TestAntiEntropyNoPeers(t *testing.T) {
	h := newHarness(t, 1)
	pushed, pulled := h.nodes[0].AntiEntropyRound(context.Background())
	if pushed != 0 || pulled != 0 {
		t.Fatalf("single-node round did work: %d/%d", pushed, pulled)
	}
}

// docstoreFindAll returns empty find options (helper keeping test call
// sites short).
func docstoreFindAll() docstore.FindOptions { return docstore.FindOptions{} }
