package cluster

import (
	"context"
	"fmt"
	"testing"
)

// TestClientGetMany round-trips the batched read: Client → MsgGetMany → the
// serving node's coordinator GetMany → one MsgGetReplicaBatch per peer.
func TestClientGetMany(t *testing.T) {
	h := newHarness(t, 5)
	h.converge(12)
	c := h.client(t)
	ctx := context.Background()
	want := map[string]string{}
	var keys []string
	for i := 0; i < 12; i++ {
		k := fmt.Sprintf("bulk-%02d", i)
		v := fmt.Sprintf("component-%02d", i)
		if err := c.Put(ctx, k, []byte(v)); err != nil {
			t.Fatalf("Put %s: %v", k, err)
		}
		want[k] = v
		keys = append(keys, k)
	}
	found, failed, err := c.GetMany(ctx, append(keys, "bulk-ghost"))
	if err != nil {
		t.Fatalf("GetMany: %v", err)
	}
	if len(failed) != 0 {
		t.Fatalf("failed = %v", failed)
	}
	if len(found) != len(want) {
		t.Fatalf("found %d keys, want %d", len(found), len(want))
	}
	for k, v := range want {
		if string(found[k]) != v {
			t.Fatalf("found[%s] = %q, want %q", k, found[k], v)
		}
	}
	if _, ok := found["bulk-ghost"]; ok {
		t.Fatal("ghost key reported found")
	}
	// Exactly one node coordinated the whole batch.
	var batches int64
	for _, n := range h.nodes {
		batches += n.Coordinator().Stats().BatchGets
	}
	if batches != 1 {
		t.Fatalf("BatchGets across nodes = %d, want 1", batches)
	}

	// Empty request: no RPC, empty result.
	found, failed, err = c.GetMany(ctx, nil)
	if err != nil || len(found) != 0 || len(failed) != 0 {
		t.Fatalf("empty GetMany = %v, %v, %v", found, failed, err)
	}
}
