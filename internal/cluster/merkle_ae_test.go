package cluster

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"mystore/internal/nwr"
	"mystore/internal/transport"
)

// newSeededHarness mirrors newHarness but seeds every node's background RNG
// (reproducible anti-entropy peer selection) and lets tests adjust the
// config per node.
func newSeededHarness(t *testing.T, n int, mod func(i int, cfg *Config)) *harness {
	t.Helper()
	h := &harness{t: t, net: transport.NewMemNetwork(), now: time.Unix(5000, 0)}
	seeds := []string{addr(0)}
	for i := 0; i < n; i++ {
		ep, err := h.net.Endpoint(addr(i))
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			Seeds:          seeds,
			Weight:         1,
			NWR:            nwr.Config{N: 3, W: 2, R: 1, Retries: 1, CallTimeout: time.Second},
			GossipInterval: time.Second,
			Now:            h.clock,
			Seed:           int64(i + 1),
		}
		if mod != nil {
			mod(i, &cfg)
		}
		node, err := NewNode(ep, cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { node.Close() })
		h.eps = append(h.eps, ep)
		h.nodes = append(h.nodes, node)
	}
	return h
}

// fullAERound runs one anti-entropy round on every node.
func fullAERound(h *harness) {
	for i, n := range h.nodes {
		if h.eps[i].Closed() {
			continue
		}
		n.AntiEntropyRound(context.Background())
	}
}

// ownersOf returns the replica set node indexes for key.
func ownersOf(h *harness, key string) []*Node {
	owners, _ := h.nodes[0].Ring().Successors(key, 3)
	var out []*Node
	for _, o := range owners {
		for _, n := range h.nodes {
			if n.Addr() == o {
				out = append(out, n)
			}
		}
	}
	return out
}

func TestMerkleDivergenceRepairConvergence(t *testing.T) {
	// k corrupted replicas — stale versions planted on individual owners —
	// must heal within ⌈log₂ n⌉+1 full rounds (n=5 nodes ⇒ 4 rounds): the
	// Merkle descent localizes each divergence in one exchange, and seeded
	// random peer selection spreads repair epidemically. Seeds make the
	// round schedule deterministic, so this bound is reproducible, not
	// flaky.
	h := newSeededHarness(t, 5, nil)
	h.converge(12)
	c := h.client(t)
	ctx := context.Background()

	const records = 200
	for i := 0; i < records; i++ {
		if err := c.Put(ctx, fmt.Sprintf("mk-%03d", i), []byte("good")); err != nil {
			t.Fatal(err)
		}
	}
	h.converge(4)
	// Reach full replication first (W=2 acks synchronously; stragglers and
	// any hints settle through a few rounds).
	for r := 0; r < 12; r++ {
		fullAERound(h)
	}

	// Corrupt k replicas: on one owner per key, replace the record with an
	// ancient version (silent bit-rot / restored-from-old-backup model).
	const k = 10
	type corruption struct {
		key    string
		victim *Node
	}
	var corrupted []corruption
	for i := 0; i < k; i++ {
		key := fmt.Sprintf("mk-%03d", i*7)
		owners := ownersOf(h, key)
		if len(owners) == 0 {
			continue
		}
		victim := owners[i%len(owners)]
		coll := victim.Store().C(nwr.RecordCollection)
		docs, _ := coll.Find(nil, docstoreFindAll())
		for _, d := range docs {
			if d.StringOr("self-key", "") == key {
				id, _ := d.Get("_id")
				coll.Delete(id) //nolint:errcheck
			}
		}
		stale := nwr.Record{Key: key, Val: []byte("ancient"), IsData: true, Ver: 1, Origin: "old"}
		if err := victim.Coordinator().ApplyLocal(stale); err != nil {
			t.Fatal(err)
		}
		corrupted = append(corrupted, corruption{key: key, victim: victim})
	}

	healed := func() bool {
		for _, cr := range corrupted {
			rec, found, _ := cr.victim.Coordinator().GetLocal(cr.key)
			if !found || string(rec.Val) != "good" {
				return false
			}
		}
		return true
	}
	const maxRounds = 4 // ⌈log₂ 5⌉ + 1
	rounds := 0
	for ; rounds < maxRounds && !healed(); rounds++ {
		fullAERound(h)
	}
	if !healed() {
		for _, cr := range corrupted {
			rec, found, _ := cr.victim.Coordinator().GetLocal(cr.key)
			t.Logf("%s on %s: found=%v val=%q ver=%d", cr.key, cr.victim.Addr(), found, rec.Val, rec.Ver)
		}
		t.Fatalf("%d corrupted replicas not healed within %d full rounds", len(corrupted), maxRounds)
	}
	for _, n := range h.nodes {
		if vr := n.VersionRegressions(); vr != 0 {
			t.Fatalf("repair regressed %d records on %s", vr, n.Addr())
		}
	}
	t.Logf("healed %d corruptions in %d full rounds", len(corrupted), rounds)
}

func TestStreamTransferCrashMidBatch(t *testing.T) {
	// A node loses its store and recovers over the streaming path; the link
	// dies mid-stream (2 batches in), then the node restarts its endpoint.
	// Nothing acked before the crash may be lost or regressed, and the
	// resumed transfer completes — batches merge last-write-wins, so
	// re-sending is harmless.
	h := newSeededHarness(t, 3, func(i int, cfg *Config) {
		cfg.StreamBatchBytes = 2048 // many small batches
	})
	h.converge(8)
	c := h.client(t)
	ctx := context.Background()

	const records = 120
	for i := 0; i < records; i++ {
		if err := c.Put(ctx, fmt.Sprintf("cr-%03d", i), []byte("payload-payload-payload-payload")); err != nil {
			t.Fatal(err)
		}
	}
	h.converge(4)
	for r := 0; r < 6; r++ {
		fullAERound(h)
	}

	victim := h.nodes[2]
	coll := victim.Store().C(nwr.RecordCollection)
	lost := coll.Len()
	if lost == 0 {
		t.Fatal("victim held no replicas")
	}
	// Wipe the victim's records (disk replaced).
	for {
		docs, _ := coll.Find(nil, docstoreFindAll())
		if len(docs) == 0 {
			break
		}
		for _, d := range docs {
			id, _ := d.Get("_id")
			coll.Delete(id) //nolint:errcheck
		}
	}

	// Fail the stream to the victim after 2 delivered batches.
	var mu sync.Mutex
	batches, faulting := 0, true
	h.net.SetFault(func(from, to, msgType string) error {
		if msgType != MsgStreamRecords || to != victim.Addr() {
			return nil
		}
		mu.Lock()
		defer mu.Unlock()
		if !faulting {
			return nil
		}
		batches++
		if batches > 2 {
			return errors.New("injected: link died mid-stream")
		}
		return nil
	})

	// Peers push what they can before the link dies.
	for r := 0; r < 4; r++ {
		for i, n := range h.nodes {
			if i != 2 {
				n.AntiEntropyRound(ctx)
			}
		}
	}
	applied := map[string]int64{}
	docs, _ := coll.Find(nil, docstoreFindAll())
	for _, d := range docs {
		key := d.StringOr("self-key", "")
		verV, _ := d.Get("_ver")
		ver, _ := verV.(int64)
		applied[key] = ver
	}
	if len(applied) == 0 {
		t.Fatal("no batch landed before the injected failure")
	}
	if len(applied) >= lost {
		t.Fatalf("fault never fired: %d/%d records already back", len(applied), lost)
	}

	// "Crash" the victim's endpoint entirely, prove transfers fail cleanly,
	// then restart it and heal the link.
	h.eps[2].Close()
	for i, n := range h.nodes {
		if i != 2 {
			n.AntiEntropyRound(ctx)
		}
	}
	h.eps[2].Reopen()
	mu.Lock()
	faulting = false
	mu.Unlock()

	for r := 0; r < 60 && coll.Len() < lost; r++ {
		fullAERound(h)
	}
	if got := coll.Len(); got < lost {
		t.Fatalf("resume incomplete: %d of %d replicas restored", got, lost)
	}
	// Nothing that was acked mid-stream regressed or vanished.
	final := map[string]int64{}
	docs, _ = coll.Find(nil, docstoreFindAll())
	for _, d := range docs {
		key := d.StringOr("self-key", "")
		verV, _ := d.Get("_ver")
		ver, _ := verV.(int64)
		final[key] = ver
	}
	for key, ver := range applied {
		got, ok := final[key]
		if !ok {
			t.Fatalf("acked record %s lost across the crash", key)
		}
		if got < ver {
			t.Fatalf("acked record %s regressed: %d -> %d", key, ver, got)
		}
	}
	for _, n := range h.nodes {
		if vr := n.VersionRegressions(); vr != 0 {
			t.Fatalf("stream recovery regressed %d records on %s", vr, n.Addr())
		}
	}
}

func TestMerkleForestConcurrentWritesRace(t *testing.T) {
	// Hammer the forest: client writes racing anti-entropy rounds and
	// rebalance passes across every node. -race is the main assertion; the
	// functional one is that the incrementally maintained trees equal a
	// from-scratch rebuild once the dust settles.
	h := newSeededHarness(t, 3, nil)
	h.converge(8)
	c := h.client(t)
	ctx := context.Background()
	for _, n := range h.nodes {
		n.ensureForest()
	}

	stop := make(chan struct{})
	var churn sync.WaitGroup
	for _, n := range h.nodes {
		churn.Add(1)
		go func(n *Node) {
			defer churn.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				n.AntiEntropyRound(ctx)
				n.Rebalance(ctx)
			}
		}(n)
	}
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 150; i++ {
				c.Put(ctx, fmt.Sprintf("h-%d-%03d", w, i), []byte("x")) //nolint:errcheck
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	churn.Wait()
	h.converge(6)

	// Background replication goroutines may drain for a few more moments;
	// retry the coherence check until the store quiesces.
	for _, n := range h.nodes {
		ok := false
		var before, after map[string]uint64
		for attempt := 0; attempt < 5 && !ok; attempt++ {
			time.Sleep(50 * time.Millisecond)
			n.ensureForest()
			before = forestRoots(n)
			n.ae.markDirty()
			n.ensureForest()
			after = forestRoots(n)
			ok = rootsEqual(before, after)
		}
		if !ok {
			t.Fatalf("%s: incremental forest diverged from rebuild:\n inc: %v\n reb: %v",
				n.Addr(), before, after)
		}
	}
	for _, n := range h.nodes {
		if vr := n.VersionRegressions(); vr != 0 {
			t.Fatalf("hammer regressed %d records on %s", vr, n.Addr())
		}
	}
}

func forestRoots(n *Node) map[string]uint64 {
	n.ae.mu.Lock()
	defer n.ae.mu.Unlock()
	out := make(map[string]uint64, len(n.ae.trees))
	for peer, tree := range n.ae.trees {
		out[peer] = tree.Root()
	}
	return out
}

func rootsEqual(a, b map[string]uint64) bool {
	for peer, root := range a {
		if root != 0 && b[peer] != root {
			return false
		}
	}
	for peer, root := range b {
		if root != 0 && a[peer] != root {
			return false
		}
	}
	return true
}
