// Package resilience provides the availability machinery the storage
// cluster wires through its RPC paths: per-peer circuit breakers, a
// token-bucket retry budget, jittered exponential backoff, and deadline
// helpers for propagated call deadlines.
//
// The design goal (paper §6.2, Table 2) is that a dead or degraded peer
// costs its callers almost nothing: instead of burning a full CallTimeout
// per attempt per caller, the first few failures trip the peer's breaker
// and every subsequent caller fails over in microseconds until a half-open
// probe proves the peer back. Breakers are fed from two sides — directly
// by call outcomes, and by gossip's short/long failure classification —
// so a node-wide belief ("B short-failed") translates immediately into
// fast failovers on every RPC path that touches B.
package resilience

import (
	"sync"
	"time"

	"mystore/internal/metrics"
)

// State is a breaker's position in the closed/open/half-open cycle.
type State int32

// Breaker states.
const (
	// Closed passes calls through and counts failures.
	Closed State = iota
	// Open fails calls instantly until the cool-down elapses.
	Open
	// HalfOpen admits one probe call; its outcome decides the next state.
	HalfOpen
)

// String renders the state.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "invalid"
	}
}

// BreakerConfig tunes the per-peer breakers of a BreakerSet.
type BreakerConfig struct {
	// FailureThreshold is how many consecutive transport failures trip a
	// closed breaker. Zero means 3.
	FailureThreshold int
	// OpenFor is how long an open breaker rejects before admitting a
	// half-open probe. Zero means 1s.
	OpenFor time.Duration
	// LongFailOpenFor is the cool-down applied when gossip classifies the
	// peer as long-failed (seed-confirmed departure). Zero means 8×OpenFor.
	LongFailOpenFor time.Duration
	// Now overrides the clock (deterministic tests). Nil means time.Now.
	Now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 3
	}
	if c.OpenFor <= 0 {
		c.OpenFor = time.Second
	}
	if c.LongFailOpenFor <= 0 {
		c.LongFailOpenFor = 8 * c.OpenFor
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Breaker is a circuit breaker for one peer. It is safe for concurrent use;
// every method is a handful of nanoseconds — the whole point is that
// checking a dead peer costs callers microseconds, not a CallTimeout.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    State
	failures int       // consecutive failures while closed
	until    time.Time // while open: when a half-open probe is admitted
	probing  bool      // while half-open: a probe is already in flight
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// Allow reports whether a call to the peer may proceed now. While open it
// returns false until the cool-down elapses, then admits exactly one
// half-open probe at a time; the probe's Success/Failure decides what
// happens next.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.cfg.Now().Before(b.until) {
			return false
		}
		b.state = HalfOpen
		b.probing = true
		return true
	default: // HalfOpen
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success records a call that reached the peer; it closes the breaker and
// clears the failure run.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = Closed
	b.failures = 0
	b.probing = false
}

// Failure records a transport-level failure. A failed half-open probe
// re-opens immediately; a run of FailureThreshold failures trips a closed
// breaker. It reports whether this call opened the breaker.
func (b *Breaker) Failure() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case HalfOpen:
		b.openLocked(b.cfg.OpenFor)
		return true
	case Closed:
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.openLocked(b.cfg.OpenFor)
			return true
		}
	}
	return false
}

// Trip forces the breaker open for at least d (gossip's failure
// classification feeds in here). A zero d means the configured OpenFor.
func (b *Breaker) Trip(d time.Duration) {
	if d <= 0 {
		d = b.cfg.OpenFor
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.openLocked(d)
}

// Reset force-closes the breaker (gossip believes the peer up again).
func (b *Breaker) Reset() {
	b.Success()
}

func (b *Breaker) openLocked(d time.Duration) {
	b.state = Open
	b.failures = 0
	b.probing = false
	b.until = b.cfg.Now().Add(d)
}

// State returns the breaker's current state, surfacing the open→half-open
// transition that Allow would take now.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open && !b.cfg.Now().Before(b.until) {
		return HalfOpen
	}
	return b.state
}

// PeerStatus is gossip's classification of a peer, fed into ObservePeer.
type PeerStatus int

// Peer statuses as the gossip failure detector reports them.
const (
	// PeerUp: the peer answered gossip; close its breaker.
	PeerUp PeerStatus = iota
	// PeerShortFail: the peer went quiet (self-recovering class); open its
	// breaker for the standard cool-down.
	PeerShortFail
	// PeerLongFail: a seed confirmed the departure; open the breaker for
	// the long cool-down (re-replication will route around it anyway).
	PeerLongFail
)

// BreakerStats is a snapshot of a BreakerSet's counters.
type BreakerStats struct {
	// Opened counts closed/half-open → open transitions.
	Opened int64
	// FastFailures counts calls rejected instantly by an open breaker —
	// each one is a CallTimeout a caller did not burn.
	FastFailures int64
	// Probes counts half-open probe admissions.
	Probes int64
}

// BreakerSet manages one breaker per peer address. The zero value is not
// usable; construct with NewBreakerSet. A nil *BreakerSet is a valid
// no-op: Allow always passes and Report does nothing, so call sites can
// leave resilience unwired.
type BreakerSet struct {
	cfg BreakerConfig

	mu sync.RWMutex
	m  map[string]*Breaker

	opened    metrics.Counter
	fastFails metrics.Counter
	probes    metrics.Counter
}

// NewBreakerSet returns an empty set creating breakers on demand.
func NewBreakerSet(cfg BreakerConfig) *BreakerSet {
	return &BreakerSet{cfg: cfg.withDefaults(), m: make(map[string]*Breaker)}
}

// For returns addr's breaker, creating it (closed) on first use.
func (s *BreakerSet) For(addr string) *Breaker {
	s.mu.RLock()
	b, ok := s.m[addr]
	s.mu.RUnlock()
	if ok {
		return b
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok = s.m[addr]; ok {
		return b
	}
	b = NewBreaker(s.cfg)
	s.m[addr] = b
	return b
}

// Allow reports whether a call to addr may proceed, counting fast
// failures and probe admissions. A nil set always allows.
func (s *BreakerSet) Allow(addr string) bool {
	if s == nil {
		return true
	}
	b := s.For(addr)
	wasOpen := b.State() != Closed
	if !b.Allow() {
		s.fastFails.Inc()
		return false
	}
	if wasOpen {
		s.probes.Inc()
	}
	return true
}

// Report records a call outcome for addr. ok should be true whenever the
// peer answered at the transport layer — a remote application error still
// proves the peer alive. A nil set does nothing.
func (s *BreakerSet) Report(addr string, ok bool) {
	if s == nil {
		return
	}
	if ok {
		s.For(addr).Success()
		return
	}
	if s.For(addr).Failure() {
		s.opened.Inc()
	}
}

// ObservePeer feeds gossip's failure classification into addr's breaker.
// A nil set does nothing.
func (s *BreakerSet) ObservePeer(addr string, st PeerStatus) {
	if s == nil {
		return
	}
	b := s.For(addr)
	switch st {
	case PeerUp:
		b.Reset()
	case PeerShortFail:
		if b.State() != Open {
			s.opened.Inc()
		}
		b.Trip(s.cfg.OpenFor)
	case PeerLongFail:
		if b.State() != Open {
			s.opened.Inc()
		}
		b.Trip(s.cfg.LongFailOpenFor)
	}
}

// States snapshots every known breaker's state.
func (s *BreakerSet) States() map[string]State {
	if s == nil {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]State, len(s.m))
	for addr, b := range s.m {
		out[addr] = b.State()
	}
	return out
}

// OpenCount returns how many breakers are currently open.
func (s *BreakerSet) OpenCount() int {
	n := 0
	for _, st := range s.States() {
		if st == Open {
			n++
		}
	}
	return n
}

// Stats snapshots the set's counters.
func (s *BreakerSet) Stats() BreakerStats {
	if s == nil {
		return BreakerStats{}
	}
	return BreakerStats{
		Opened:       s.opened.Value(),
		FastFailures: s.fastFails.Value(),
		Probes:       s.probes.Value(),
	}
}
