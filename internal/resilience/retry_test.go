package resilience

import (
	"context"
	"math/rand"
	"testing"
	"time"
)

func TestRetryBudgetDrainsAndRefills(t *testing.T) {
	b := NewRetryBudget(2, 0.5)
	if !b.Spend() || !b.Spend() {
		t.Fatal("a full budget must grant its tokens")
	}
	if b.Spend() {
		t.Fatal("an empty budget must refuse")
	}
	b.Earn() // +0.5: still under one token
	if b.Spend() {
		t.Fatal("half a token must not grant a retry")
	}
	b.Earn()
	if !b.Spend() {
		t.Fatal("earned tokens must grant retries again")
	}
}

func TestRetryBudgetCapsAtMax(t *testing.T) {
	b := NewRetryBudget(3, 1)
	for i := 0; i < 100; i++ {
		b.Earn()
	}
	if got := b.Tokens(); got != 3 {
		t.Fatalf("tokens = %v, want capped at 3", got)
	}
}

func TestNilRetryBudgetAlwaysGrants(t *testing.T) {
	var b *RetryBudget
	if !b.Spend() {
		t.Fatal("nil budget must grant")
	}
	b.Earn() // must not panic
}

func TestBackoffGrowsAndCaps(t *testing.T) {
	b := Backoff{Base: 10 * time.Millisecond, Max: 80 * time.Millisecond, Factor: 2}
	rng := rand.New(rand.NewSource(1))
	prevLow := time.Duration(0)
	for attempt := 0; attempt < 6; attempt++ {
		target := float64(10*time.Millisecond) * float64(int(1)<<attempt)
		if target > float64(80*time.Millisecond) {
			target = float64(80 * time.Millisecond)
		}
		for i := 0; i < 50; i++ {
			d := b.Delay(attempt, rng)
			if d < time.Duration(target/2) || d > time.Duration(target) {
				t.Fatalf("attempt %d: delay %v outside [%v, %v]",
					attempt, d, time.Duration(target/2), time.Duration(target))
			}
		}
		if low := time.Duration(target / 2); low < prevLow {
			t.Fatalf("attempt %d: backoff floor shrank", attempt)
		} else {
			prevLow = low
		}
	}
}

func TestBackoffJitterVaries(t *testing.T) {
	b := Backoff{Base: 20 * time.Millisecond}
	rng := rand.New(rand.NewSource(7))
	seen := map[time.Duration]bool{}
	for i := 0; i < 32; i++ {
		seen[b.Delay(0, rng)] = true
	}
	if len(seen) < 16 {
		t.Fatalf("only %d distinct jittered delays in 32 draws", len(seen))
	}
}

func TestSleepHonoursContext(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := Sleep(ctx, time.Second)
	if err == nil {
		t.Fatal("sleep must surface the context error")
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("sleep ignored the deadline, took %v", elapsed)
	}
	if err := Sleep(context.Background(), time.Millisecond); err != nil {
		t.Fatalf("plain sleep errored: %v", err)
	}
}

func TestRemainingAndExpired(t *testing.T) {
	if _, ok := Remaining(context.Background()); ok {
		t.Fatal("background context must report no deadline")
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	left, ok := Remaining(ctx)
	if !ok || left <= 0 || left > time.Hour {
		t.Fatalf("remaining = %v, %v", left, ok)
	}
	if Expired(ctx) {
		t.Fatal("live context must not be expired")
	}
	cancel()
	if !Expired(ctx) {
		t.Fatal("cancelled context must be expired")
	}
}
