package resilience

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// RetryBudget is a token bucket bounding the cluster-wide retry
// amplification a degraded dependency can cause: each retry spends one
// token, each success earns a fraction of one back. When everything is
// failing the bucket drains and retries stop — callers fail fast instead
// of multiplying load onto a struggling peer (retry-storm protection).
//
// The zero value is unusable; construct with NewRetryBudget. A nil
// *RetryBudget always grants, so call sites can leave it unwired.
type RetryBudget struct {
	mu         sync.Mutex
	tokens     float64
	max        float64
	perSuccess float64
}

// NewRetryBudget returns a full bucket holding max tokens, earning
// perSuccess tokens per recorded success. Non-positive arguments take
// defaults (10 tokens, 0.1 per success — i.e. steady-state retries are
// capped near 10% of successful traffic).
func NewRetryBudget(max, perSuccess float64) *RetryBudget {
	if max <= 0 {
		max = 10
	}
	if perSuccess <= 0 {
		perSuccess = 0.1
	}
	return &RetryBudget{tokens: max, max: max, perSuccess: perSuccess}
}

// Spend takes one token for a retry, reporting whether the retry is
// allowed. A nil budget always allows.
func (r *RetryBudget) Spend() bool {
	if r == nil {
		return true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.tokens < 1 {
		return false
	}
	r.tokens--
	return true
}

// Earn credits one successful call. A nil budget does nothing.
func (r *RetryBudget) Earn() {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tokens += r.perSuccess
	if r.tokens > r.max {
		r.tokens = r.max
	}
}

// Tokens returns the current balance (tests, stats).
func (r *RetryBudget) Tokens() float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tokens
}

// Backoff computes jittered exponential delays between retry attempts.
// The zero value is usable and takes the defaults documented per field.
type Backoff struct {
	// Base is the mean delay before the first retry. Zero means 10ms.
	Base time.Duration
	// Max caps the (pre-jitter) delay. Zero means 1s.
	Max time.Duration
	// Factor is the per-attempt growth. Zero means 2.
	Factor float64
}

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 10 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = time.Second
	}
	if b.Factor <= 0 {
		b.Factor = 2
	}
	return b
}

// Delay returns the wait before retry attempt (0-based): an exponentially
// grown target with "equal jitter" — half deterministic, half uniformly
// random — so simultaneous failers decorrelate instead of retrying in
// lock-step. rng may be nil to use the global generator.
func (b Backoff) Delay(attempt int, rng *rand.Rand) time.Duration {
	b = b.withDefaults()
	d := float64(b.Base)
	for i := 0; i < attempt; i++ {
		d *= b.Factor
		if d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	var u float64
	if rng != nil {
		u = rng.Float64()
	} else {
		u = rand.Float64()
	}
	return time.Duration(d/2 + u*d/2)
}

// Sleep waits for d or until ctx is done, returning ctx's error in the
// latter case. Retry loops use it so a caller's deadline cuts the backoff
// short.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Remaining returns the time left before ctx's deadline. ok is false when
// ctx carries no deadline.
func Remaining(ctx context.Context) (left time.Duration, ok bool) {
	dl, ok := ctx.Deadline()
	if !ok {
		return 0, false
	}
	return time.Until(dl), true
}

// Expired reports whether ctx is already done (deadline passed or
// cancelled) — the server-side shed check for propagated deadlines.
func Expired(ctx context.Context) bool {
	return ctx.Err() != nil
}
