package resilience

import (
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic breaker tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func cfgWith(c *fakeClock) BreakerConfig {
	return BreakerConfig{FailureThreshold: 3, OpenFor: time.Second, Now: c.now}
}

func TestBreakerTripsAfterThreshold(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(cfgWith(clk))
	if b.State() != Closed {
		t.Fatalf("new breaker state = %v, want closed", b.State())
	}
	b.Failure()
	b.Failure()
	if b.State() != Closed {
		t.Fatalf("state after 2 failures = %v, want closed", b.State())
	}
	if !b.Failure() {
		t.Fatal("third failure should report the breaker opened")
	}
	if b.State() != Open {
		t.Fatalf("state after 3 failures = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker must reject")
	}
}

func TestBreakerSuccessClearsFailureRun(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(cfgWith(clk))
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed (run was cleared)", b.State())
	}
}

func TestBreakerHalfOpenProbeCycle(t *testing.T) {
	clk := newFakeClock()
	b := NewBreaker(cfgWith(clk))
	b.Trip(0)
	if b.Allow() {
		t.Fatal("open breaker must reject before cool-down")
	}
	clk.advance(1100 * time.Millisecond)
	if b.State() != HalfOpen {
		t.Fatalf("state after cool-down = %v, want half-open", b.State())
	}
	if !b.Allow() {
		t.Fatal("cooled-down breaker must admit one probe")
	}
	if b.Allow() {
		t.Fatal("second concurrent probe must be rejected")
	}
	// Failed probe re-opens for a fresh cool-down.
	b.Failure()
	if b.State() != Open || b.Allow() {
		t.Fatal("failed probe must re-open the breaker")
	}
	clk.advance(1100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("re-opened breaker must admit a probe after cool-down")
	}
	b.Success()
	if b.State() != Closed || !b.Allow() {
		t.Fatal("successful probe must close the breaker")
	}
}

func TestBreakerSetGossipFeed(t *testing.T) {
	clk := newFakeClock()
	s := NewBreakerSet(cfgWith(clk))
	s.ObservePeer("b", PeerShortFail)
	if s.Allow("b") {
		t.Fatal("short-failed peer must be rejected")
	}
	s.ObservePeer("b", PeerUp)
	if !s.Allow("b") {
		t.Fatal("recovered peer must be allowed")
	}
	s.ObservePeer("c", PeerLongFail)
	clk.advance(2 * time.Second) // past OpenFor but inside LongFailOpenFor
	if s.Allow("c") {
		t.Fatal("long-failed peer must stay rejected past the short cool-down")
	}
	clk.advance(7 * time.Second)
	if !s.Allow("c") {
		t.Fatal("long-failed peer must eventually admit a probe")
	}
	st := s.Stats()
	if st.Opened != 2 {
		t.Fatalf("Opened = %d, want 2", st.Opened)
	}
	if st.FastFailures != 2 {
		t.Fatalf("FastFailures = %d, want 2", st.FastFailures)
	}
	if st.Probes != 1 {
		t.Fatalf("Probes = %d, want 1", st.Probes)
	}
}

// TestOpenBreakerCostsCallersMicroseconds is the acceptance check: with a
// peer's breaker open, the caller learns "don't bother" in well under a
// millisecond, instead of burning a multi-second CallTimeout per attempt.
func TestOpenBreakerCostsCallersMicroseconds(t *testing.T) {
	s := NewBreakerSet(BreakerConfig{OpenFor: time.Minute})
	s.ObservePeer("dead:19870", PeerShortFail)

	const calls = 1000
	start := time.Now()
	for i := 0; i < calls; i++ {
		if s.Allow("dead:19870") {
			t.Fatal("open breaker must reject")
		}
	}
	elapsed := time.Since(start)
	if perCall := elapsed / calls; perCall >= time.Millisecond {
		t.Fatalf("open-breaker rejection cost %v per call, want < 1ms", perCall)
	}
	if st := s.Stats(); st.FastFailures != calls {
		t.Fatalf("FastFailures = %d, want %d", st.FastFailures, calls)
	}
}

func TestNilBreakerSetIsNoOp(t *testing.T) {
	var s *BreakerSet
	if !s.Allow("anyone") {
		t.Fatal("nil set must allow")
	}
	s.Report("anyone", false)
	s.ObservePeer("anyone", PeerLongFail)
	if got := s.Stats(); got != (BreakerStats{}) {
		t.Fatalf("nil set stats = %+v, want zero", got)
	}
}
