// Package sqlstore is the evaluation's second baseline (paper §6.1): a
// master-slave relational database storing unstructured data as BLOB rows,
// in the manner of the MySQL deployment the paper compares against. It
// reproduces the structural costs that motivated MyStore:
//
//   - one table with a primary-key B-tree index and a BLOB value column;
//   - a single table-level write lock (writes serialize);
//   - synchronous master→slave replication (a write completes only after
//     every reachable slave applied it);
//   - no partitioning: the master holds every row, so it cannot scale out.
package sqlstore

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"mystore/internal/btree"
	"mystore/internal/rest"
)

// Row is one table row.
type Row struct {
	Key string // PRIMARY KEY
	Val []byte // BLOB
}

// table is the storage for one node (master or slave).
type table struct {
	mu   sync.RWMutex
	tree *btree.Tree // key -> Row
}

func newTable() *table { return &table{tree: btree.New()} }

func (t *table) get(key string) (Row, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	v, ok := t.tree.Get([]byte(key))
	if !ok {
		return Row{}, false
	}
	return v.(Row), true
}

func (t *table) put(r Row) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.tree.Set([]byte(r.Key), r)
}

func (t *table) delete(key string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tree.Delete([]byte(key))
}

func (t *table) len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.tree.Len()
}

// Store is a master with zero or more synchronous slaves.
type Store struct {
	writeLock sync.Mutex // the table-level lock writes contend on
	master    *table
	slaves    []*table

	// BeforeOp, when non-nil, runs before each node-level operation (node
	// 0 = master) so the failure framework can perturb the baseline the
	// same way it perturbs MyStore. An error on the master fails the
	// operation; an error on a slave fails the synchronous write.
	BeforeOp func(node int, op string) error
}

// New builds a master with the given number of slaves.
func New(slaves int) *Store {
	s := &Store{master: newTable()}
	for i := 0; i < slaves; i++ {
		s.slaves = append(s.slaves, newTable())
	}
	return s
}

// ErrReplication reports a synchronous replication failure.
var ErrReplication = errors.New("sqlstore: synchronous replication failed")

// Put inserts or updates a row; it returns only after every slave applied
// the write (synchronous replication), holding the table write lock
// throughout — the serialization MySQL's table locks impose on BLOB-heavy
// workloads.
func (s *Store) Put(_ context.Context, key string, val []byte) error {
	if key == "" {
		return errors.New("sqlstore: empty key")
	}
	s.writeLock.Lock()
	defer s.writeLock.Unlock()
	if s.BeforeOp != nil {
		if err := s.BeforeOp(0, "put"); err != nil {
			return fmt.Errorf("sqlstore: master: %w", err)
		}
	}
	row := Row{Key: key, Val: append([]byte(nil), val...)}
	s.master.put(row)
	for i, slave := range s.slaves {
		if s.BeforeOp != nil {
			if err := s.BeforeOp(i+1, "replicate"); err != nil {
				return fmt.Errorf("%w: slave %d: %v", ErrReplication, i+1, err)
			}
		}
		slave.put(row)
	}
	return nil
}

// Get reads a row, master first, falling back to slaves when the master is
// perturbed.
func (s *Store) Get(_ context.Context, key string) ([]byte, error) {
	for node := 0; node <= len(s.slaves); node++ {
		if s.BeforeOp != nil {
			if err := s.BeforeOp(node, "get"); err != nil {
				continue
			}
		}
		var t *table
		if node == 0 {
			t = s.master
		} else {
			t = s.slaves[node-1]
		}
		if row, ok := t.get(key); ok {
			return append([]byte(nil), row.Val...), nil
		}
		if node == 0 {
			return nil, fmt.Errorf("%w: %q", rest.ErrNotFound, key)
		}
	}
	return nil, errors.New("sqlstore: no reachable node")
}

// Delete removes a row everywhere, under the write lock.
func (s *Store) Delete(_ context.Context, key string) error {
	s.writeLock.Lock()
	defer s.writeLock.Unlock()
	if s.BeforeOp != nil {
		if err := s.BeforeOp(0, "delete"); err != nil {
			return fmt.Errorf("sqlstore: master: %w", err)
		}
	}
	s.master.delete(key)
	for i, slave := range s.slaves {
		if s.BeforeOp != nil {
			if err := s.BeforeOp(i+1, "replicate"); err != nil {
				return fmt.Errorf("%w: slave %d: %v", ErrReplication, i+1, err)
			}
		}
		slave.delete(key)
	}
	return nil
}

// Len returns the master's row count.
func (s *Store) Len() int { return s.master.len() }

// SlaveLen returns slave i's row count (tests).
func (s *Store) SlaveLen(i int) int { return s.slaves[i].len() }
