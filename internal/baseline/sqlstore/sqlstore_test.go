package sqlstore

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"mystore/internal/rest"
)

func TestPutGetDelete(t *testing.T) {
	s := New(2)
	ctx := context.Background()
	if err := s.Put(ctx, "k", []byte("blob")); err != nil {
		t.Fatal(err)
	}
	v, err := s.Get(ctx, "k")
	if err != nil || string(v) != "blob" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if err := s.Delete(ctx, "k"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(ctx, "k"); !errors.Is(err, rest.ErrNotFound) {
		t.Fatalf("Get after delete = %v", err)
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	if err := New(0).Put(context.Background(), "", []byte("v")); err == nil {
		t.Fatal("empty key accepted")
	}
}

func TestSynchronousReplication(t *testing.T) {
	s := New(2)
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if err := s.Put(ctx, fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 10 || s.SlaveLen(0) != 10 || s.SlaveLen(1) != 10 {
		t.Fatalf("row counts: master=%d slaves=%d/%d", s.Len(), s.SlaveLen(0), s.SlaveLen(1))
	}
	s.Delete(ctx, "k0") //nolint:errcheck
	if s.SlaveLen(0) != 9 {
		t.Fatal("delete not replicated")
	}
}

func TestSlaveFailureFailsSyncWrite(t *testing.T) {
	s := New(1)
	s.BeforeOp = func(node int, op string) error {
		if node == 1 && op == "replicate" {
			return errors.New("slave down")
		}
		return nil
	}
	err := s.Put(context.Background(), "k", []byte("v"))
	if !errors.Is(err, ErrReplication) {
		t.Fatalf("err = %v, want ErrReplication", err)
	}
}

func TestMasterFailureFailsWritesButReadsFallBack(t *testing.T) {
	s := New(1)
	ctx := context.Background()
	s.Put(ctx, "k", []byte("v")) //nolint:errcheck
	s.BeforeOp = func(node int, op string) error {
		if node == 0 {
			return errors.New("master down")
		}
		return nil
	}
	if err := s.Put(ctx, "k2", []byte("v")); err == nil {
		t.Fatal("write with master down succeeded")
	}
	if err := s.Delete(ctx, "k"); err == nil {
		t.Fatal("delete with master down succeeded")
	}
	// Reads fall back to the slave.
	v, err := s.Get(ctx, "k")
	if err != nil || string(v) != "v" {
		t.Fatalf("Get via slave = %q, %v", v, err)
	}
}

func TestAllNodesDown(t *testing.T) {
	s := New(1)
	s.BeforeOp = func(int, string) error { return errors.New("down") }
	if _, err := s.Get(context.Background(), "k"); err == nil {
		t.Fatal("Get with all nodes down succeeded")
	}
}

func TestWritesSerialize(t *testing.T) {
	s := New(1)
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if err := s.Put(ctx, fmt.Sprintf("k-%d-%d", w, i), []byte("v")); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 800 {
		t.Fatalf("Len = %d, want 800", s.Len())
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := New(0)
	ctx := context.Background()
	s.Put(ctx, "k", []byte{1, 2}) //nolint:errcheck
	v, _ := s.Get(ctx, "k")
	v[0] = 99
	v2, _ := s.Get(ctx, "k")
	if v2[0] != 1 {
		t.Fatal("Get shares memory")
	}
}
