// Package fsstore is the evaluation's first baseline (paper §6.1): storing
// unstructured data as plain files in a local (ext3-style) filesystem with
// an index mapping keys to paths. It is fast on one node but offers no
// replication and no availability under node loss — the trade-off the
// paper's comparison illustrates.
package fsstore

import (
	"context"
	"crypto/md5"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"mystore/internal/rest"
)

// Store keeps one file per object under dir, fanned out over 256
// subdirectories by key hash so no directory grows unbounded — the layout
// the paper's "local file system with an index table" approach implies.
type Store struct {
	mu    sync.RWMutex
	dir   string
	index map[string]string // key -> relative path (the in-memory index table)
}

// Open creates a store rooted at dir, rebuilding the index from files
// already present.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fsstore: create dir: %w", err)
	}
	s := &Store{dir: dir, index: make(map[string]string)}
	// Rebuild the index: each fan-out directory holds files named by
	// hex-encoded key.
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, sub := range entries {
		if !sub.IsDir() {
			continue
		}
		files, err := os.ReadDir(filepath.Join(dir, sub.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			keyBytes, err := hex.DecodeString(f.Name())
			if err != nil {
				continue
			}
			s.index[string(keyBytes)] = filepath.Join(sub.Name(), f.Name())
		}
	}
	return s, nil
}

func (s *Store) pathFor(key string) string {
	sum := md5.Sum([]byte(key))
	return filepath.Join(hex.EncodeToString(sum[:1]), hex.EncodeToString([]byte(key)))
}

// Put writes the value as a file and indexes it.
func (s *Store) Put(_ context.Context, key string, val []byte) error {
	if key == "" {
		return errors.New("fsstore: empty key")
	}
	rel := s.pathFor(key)
	abs := filepath.Join(s.dir, rel)
	if err := os.MkdirAll(filepath.Dir(abs), 0o755); err != nil {
		return err
	}
	tmp := abs + ".tmp"
	if err := os.WriteFile(tmp, val, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, abs); err != nil {
		return err
	}
	s.mu.Lock()
	s.index[key] = rel
	s.mu.Unlock()
	return nil
}

// Get reads the value for key.
func (s *Store) Get(_ context.Context, key string) ([]byte, error) {
	s.mu.RLock()
	rel, ok := s.index[key]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", rest.ErrNotFound, key)
	}
	data, err := os.ReadFile(filepath.Join(s.dir, rel))
	if errors.Is(err, os.ErrNotExist) {
		// Index and filesystem diverged — the consistency hazard the paper
		// calls out for this storage pattern.
		s.mu.Lock()
		delete(s.index, key)
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", rest.ErrNotFound, key)
	}
	return data, err
}

// Delete removes the file and index entry.
func (s *Store) Delete(_ context.Context, key string) error {
	s.mu.Lock()
	rel, ok := s.index[key]
	delete(s.index, key)
	s.mu.Unlock()
	if !ok {
		return nil
	}
	err := os.Remove(filepath.Join(s.dir, rel))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	return err
}

// Len returns the number of indexed objects.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}
