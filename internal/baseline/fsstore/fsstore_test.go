package fsstore

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"mystore/internal/rest"
)

func TestPutGetDelete(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if err := s.Put(ctx, "scene1", []byte("xml")); err != nil {
		t.Fatal(err)
	}
	v, err := s.Get(ctx, "scene1")
	if err != nil || string(v) != "xml" {
		t.Fatalf("Get = %q, %v", v, err)
	}
	if err := s.Delete(ctx, "scene1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(ctx, "scene1"); !errors.Is(err, rest.ErrNotFound) {
		t.Fatalf("Get after delete err = %v", err)
	}
	if err := s.Delete(ctx, "scene1"); err != nil {
		t.Fatalf("double delete: %v", err)
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	s, _ := Open(t.TempDir())
	if err := s.Put(context.Background(), "", []byte("v")); err == nil {
		t.Fatal("empty key accepted")
	}
}

func TestOverwrite(t *testing.T) {
	s, _ := Open(t.TempDir())
	ctx := context.Background()
	s.Put(ctx, "k", []byte("v1")) //nolint:errcheck
	s.Put(ctx, "k", []byte("v2")) //nolint:errcheck
	v, _ := s.Get(ctx, "k")
	if string(v) != "v2" {
		t.Fatalf("Get = %q", v)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d", s.Len())
	}
}

func TestIndexRebuiltOnReopen(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		if err := s.Put(ctx, fmt.Sprintf("key/%d with spaces", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 20 {
		t.Fatalf("reopened Len = %d, want 20", s2.Len())
	}
	if v, err := s2.Get(ctx, "key/7 with spaces"); err != nil || string(v) != "v" {
		t.Fatalf("Get after reopen = %q, %v", v, err)
	}
}

func TestConcurrent(t *testing.T) {
	s, _ := Open(t.TempDir())
	ctx := context.Background()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("k-%d-%d", w, i)
				if err := s.Put(ctx, key, []byte("v")); err != nil {
					t.Errorf("Put: %v", err)
					return
				}
				if _, err := s.Get(ctx, key); err != nil {
					t.Errorf("Get: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 400 {
		t.Fatalf("Len = %d, want 400", s.Len())
	}
}

func TestBinaryKeysAndValues(t *testing.T) {
	s, _ := Open(t.TempDir())
	ctx := context.Background()
	key := string([]byte{0, 1, 2, 255})
	val := make([]byte, 4096)
	for i := range val {
		val[i] = byte(i)
	}
	if err := s.Put(ctx, key, val); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(ctx, key)
	if err != nil || len(got) != len(val) {
		t.Fatalf("binary round trip failed: %v", err)
	}
}
