package workload

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"
)

func TestCorpusDeterministic(t *testing.T) {
	a := NewCorpus(ReadCorpusConfig(100, 42))
	b := NewCorpus(ReadCorpusConfig(100, 42))
	if len(a.Items) != 100 || len(b.Items) != 100 {
		t.Fatalf("corpus sizes %d/%d", len(a.Items), len(b.Items))
	}
	for i := range a.Items {
		if a.Items[i] != b.Items[i] {
			t.Fatalf("corpus diverges at %d", i)
		}
		if !bytes.Equal(a.Items[i].Payload(), b.Items[i].Payload()) {
			t.Fatalf("payload diverges at %d", i)
		}
	}
}

func TestCorpusSizeBounds(t *testing.T) {
	c := NewCorpus(ReadCorpusConfig(500, 7))
	for _, it := range c.Items {
		if it.Size < 3<<10 || it.Size > 600<<10 {
			t.Fatalf("item size %d outside [3KB, 600KB]", it.Size)
		}
		if got := len(it.Payload()); got != it.Size {
			t.Fatalf("payload length %d != declared size %d", got, it.Size)
		}
	}
}

func TestCorpusClasses(t *testing.T) {
	c := NewCorpus(ReadCorpusConfig(900, 3))
	counts := map[string]int{}
	for _, it := range c.Items {
		counts[it.Class]++
	}
	for _, class := range []string{"a", "b", "c"} {
		if counts[class] == 0 {
			t.Fatalf("class %s empty: %v", class, counts)
		}
		if got := c.ByClass(class); len(got) != counts[class] {
			t.Fatalf("ByClass(%s) = %d, want %d", class, len(got), counts[class])
		}
	}
	// Classes are ordered by size: max(a) <= min sizes should trend upward.
	maxA, minC := 0, 1<<30
	for _, it := range c.ByClass("a") {
		if it.Size > maxA {
			maxA = it.Size
		}
	}
	for _, it := range c.ByClass("c") {
		if it.Size < minC {
			minC = it.Size
		}
	}
	if maxA >= minC {
		t.Fatalf("class a max %d >= class c min %d", maxA, minC)
	}
}

func TestCorpusDefaults(t *testing.T) {
	c := NewCorpus(CorpusConfig{})
	if len(c.Items) != 1 {
		t.Fatalf("default corpus size = %d", len(c.Items))
	}
}

func TestPayloadLooksLikeXML(t *testing.T) {
	c := NewCorpus(ReadCorpusConfig(5, 1))
	p := c.Items[0].Payload()
	if !bytes.HasPrefix(p, []byte("<?xml")) {
		t.Fatalf("payload prefix = %q", p[:20])
	}
	if !bytes.HasSuffix(p, []byte("</component>")) {
		t.Fatal("payload missing closing tag")
	}
}

func TestGaussianPickerConcentration(t *testing.T) {
	c := NewCorpus(PutCorpusConfig(1000, 5))
	// With µ=15 σ=5 on a 0-99 percentile scale, picks concentrate in the
	// lower-middle of the size-sorted list: nearly all below the median.
	p := NewGaussianPicker(c, 11)
	low, total := 0, 5000
	for i := 0; i < total; i++ {
		it := p.Pick()
		rank := 0
		for _, other := range c.Items {
			if other.Size < it.Size {
				rank++
			}
		}
		if float64(rank)/float64(len(c.Items)) < 0.5 {
			low++
		}
	}
	frac := float64(low) / float64(total)
	if frac < 0.95 {
		t.Fatalf("only %.2f of picks below the size median, want nearly all (µ=15 σ=5)", frac)
	}
}

func TestGaussianPickerDeterministic(t *testing.T) {
	c := NewCorpus(PutCorpusConfig(100, 5))
	p1 := NewGaussianPicker(c, 9)
	p2 := NewGaussianPicker(c, 9)
	for i := 0; i < 100; i++ {
		if p1.Pick() != p2.Pick() {
			t.Fatal("picker not deterministic")
		}
	}
}

func TestTotalBytes(t *testing.T) {
	c := NewCorpus(ReadCorpusConfig(50, 2))
	var want int64
	for _, it := range c.Items {
		want += int64(it.Size)
	}
	if got := c.TotalBytes(); got != want {
		t.Fatalf("TotalBytes = %d, want %d", got, want)
	}
}

func TestRunRequestBudget(t *testing.T) {
	var count int64
	res := Run(context.Background(), Options{Processes: 4, Requests: 100}, func(ctx context.Context, rng *rand.Rand) OpResult {
		return OpResult{Bytes: 10}
	})
	count = res.Throughput.Ops
	if count != 100 {
		t.Fatalf("ops = %d, want 100", count)
	}
	if res.Throughput.Bytes != 1000 {
		t.Fatalf("bytes = %d", res.Throughput.Bytes)
	}
	if res.TTLB.Count() != 100 {
		t.Fatalf("TTLB samples = %d", res.TTLB.Count())
	}
}

func TestRunDurationBound(t *testing.T) {
	start := time.Now()
	res := Run(context.Background(), Options{Processes: 2, Duration: 50 * time.Millisecond},
		func(ctx context.Context, rng *rand.Rand) OpResult {
			time.Sleep(time.Millisecond)
			return OpResult{Bytes: 1}
		})
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("run took %v, want ~50ms", elapsed)
	}
	if res.Throughput.Ops == 0 {
		t.Fatal("no ops completed in duration-bound run")
	}
}

func TestRunCountsErrors(t *testing.T) {
	boom := errors.New("boom")
	res := Run(context.Background(), Options{Processes: 2, Requests: 50},
		func(ctx context.Context, rng *rand.Rand) OpResult {
			if rng.Intn(2) == 0 {
				return OpResult{Err: boom}
			}
			return OpResult{Bytes: 1}
		})
	if res.Throughput.Errors == 0 {
		t.Fatal("errors not counted")
	}
	if res.Throughput.Ops+res.Throughput.Errors != 50 {
		t.Fatalf("ops+errors = %d, want 50", res.Throughput.Ops+res.Throughput.Errors)
	}
}

func TestRunThinkTime(t *testing.T) {
	start := time.Now()
	Run(context.Background(), Options{
		Processes: 1, Requests: 5,
		ThinkMin: 5 * time.Millisecond, ThinkMax: 10 * time.Millisecond,
	}, func(ctx context.Context, rng *rand.Rand) OpResult { return OpResult{Bytes: 1} })
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("5 requests with >=5ms think finished in %v", elapsed)
	}
}

func TestRunTTFBSubstitution(t *testing.T) {
	res := Run(context.Background(), Options{Processes: 1, Requests: 3},
		func(ctx context.Context, rng *rand.Rand) OpResult {
			time.Sleep(2 * time.Millisecond)
			return OpResult{Bytes: 1} // no explicit TTFB
		})
	if res.TTFB.Count() != 3 {
		t.Fatalf("TTFB samples = %d", res.TTFB.Count())
	}
	if res.TTFB.Min() <= 0 {
		t.Fatal("TTFB not substituted with total latency")
	}
}

func TestRunExplicitTTFB(t *testing.T) {
	res := Run(context.Background(), Options{Processes: 1, Requests: 1},
		func(ctx context.Context, rng *rand.Rand) OpResult {
			return OpResult{Bytes: 1, TTFB: 42 * time.Microsecond}
		})
	if got := res.TTFB.Min(); got != 42*time.Microsecond {
		t.Fatalf("TTFB = %v", got)
	}
}
