package workload

import (
	"context"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"mystore/internal/metrics"
)

// OpResult is what one operation reports to the measurement layer.
type OpResult struct {
	// Bytes moved (payload size), counted toward throughput on success.
	Bytes int
	// TTFB is the time to first byte when the operation can observe it
	// (HTTP reads); zero means "same as total" and the harness substitutes
	// the full latency.
	TTFB time.Duration
	// Err marks the operation failed; failed operations count as errors,
	// not toward RPS.
	Err error
}

// Op performs one request. The load generator supplies a per-process RNG
// so operations can pick work items deterministically without contending
// on a shared source.
type Op func(ctx context.Context, rng *rand.Rand) OpResult

// Options shape a load run, mirroring the paper's WAS tool settings.
type Options struct {
	// Processes is the number of concurrent request processes (the
	// Figs 13-14 sweep variable).
	Processes int
	// Requests is the total request budget across all processes. Zero
	// means run until Duration elapses.
	Requests int
	// Duration bounds the run when Requests is zero.
	Duration time.Duration
	// ThinkMin/ThinkMax delay each process between requests; the paper's
	// soak uses "randomly delay between 0 to 500 ms".
	ThinkMin, ThinkMax time.Duration
	// Seed makes process RNGs reproducible.
	Seed int64
}

// Result is the measured outcome of a load run.
type Result struct {
	TTFB       *metrics.Histogram
	TTLB       *metrics.Histogram
	Throughput metrics.Throughput
}

// Run drives opts.Processes closed-loop workers issuing op until the
// request budget or duration is exhausted.
func Run(ctx context.Context, opts Options, op Op) Result {
	if opts.Processes <= 0 {
		opts.Processes = 1
	}
	if opts.Requests <= 0 && opts.Duration <= 0 {
		opts.Duration = time.Second
	}
	res := Result{TTFB: metrics.NewHistogram(), TTLB: metrics.NewHistogram()}
	var bytes, ops, errs atomic.Int64
	var budget atomic.Int64
	budget.Store(int64(opts.Requests))

	runCtx := ctx
	var cancel context.CancelFunc
	if opts.Duration > 0 {
		runCtx, cancel = context.WithTimeout(ctx, opts.Duration)
		defer cancel()
	}

	start := time.Now()
	var wg sync.WaitGroup
	for p := 0; p < opts.Processes; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opts.Seed + int64(p)*7919))
			for {
				if runCtx.Err() != nil {
					return
				}
				if opts.Requests > 0 && budget.Add(-1) < 0 {
					return
				}
				if opts.ThinkMax > opts.ThinkMin {
					think := opts.ThinkMin + time.Duration(rng.Int63n(int64(opts.ThinkMax-opts.ThinkMin)))
					select {
					case <-runCtx.Done():
						return
					case <-time.After(think):
					}
				}
				t0 := time.Now()
				r := op(runCtx, rng)
				total := time.Since(t0)
				if r.Err != nil {
					errs.Add(1)
					continue
				}
				ttfb := r.TTFB
				if ttfb <= 0 {
					ttfb = total
				}
				res.TTFB.Observe(ttfb)
				res.TTLB.Observe(total)
				bytes.Add(int64(r.Bytes))
				ops.Add(1)
			}
		}(p)
	}
	wg.Wait()
	res.Throughput = metrics.Throughput{
		Bytes:   bytes.Load(),
		Ops:     ops.Load(),
		Errors:  errs.Load(),
		Elapsed: time.Since(start),
	}
	return res
}
