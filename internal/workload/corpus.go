// Package workload generates the evaluation's datasets and load, playing
// the role of the paper's 36 GB XML corpus and the Microsoft Web
// Application Stress Tool (§6.1-6.2): deterministic synthetic corpora with
// the paper's size distributions, closed-loop concurrent request
// generators with randomized think time, and TTFB/TTLB/RPS/throughput
// measurement.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
)

// Item is one object in a corpus. Payload bytes are generated on demand so
// large corpora cost index memory only.
type Item struct {
	Key  string
	Size int
	// Class is the resource type: "a", "b" or "c" (the paper's Fig 12
	// compares three resource types, which we map to small / medium /
	// large size classes).
	Class string
	seed  int64
}

// Payload materializes the item's deterministic pseudo-XML bytes.
func (it Item) Payload() []byte {
	head := fmt.Sprintf("<?xml version=\"1.0\"?><component key=%q size=\"%d\" class=%q>", it.Key, it.Size, it.Class)
	buf := make([]byte, it.Size)
	n := copy(buf, head)
	rng := rand.New(rand.NewSource(it.seed))
	const alphabet = "abcdefghijklmnopqrstuvwxyzABCDEF <>/=\"etag"
	for i := n; i < len(buf); i++ {
		buf[i] = alphabet[rng.Intn(len(alphabet))]
	}
	tail := "</component>"
	if len(buf) > len(tail) {
		copy(buf[len(buf)-len(tail):], tail)
	}
	return buf
}

// Corpus is a deterministic set of items.
type Corpus struct {
	Items []Item
	rng   *rand.Rand
}

// CorpusConfig sizes a corpus.
type CorpusConfig struct {
	// N is the number of items.
	N int
	// MinSize and MaxSize bound item sizes in bytes. The paper's read
	// corpus uses 3 KB - 600 KB XML files; the Put corpus 18 KB - 7633 KB.
	MinSize, MaxSize int
	// Seed makes the corpus reproducible.
	Seed int64
}

// ReadCorpusConfig mirrors §6.1's dataset shape (3-600 KB XML) at a
// laptop-scale item count.
func ReadCorpusConfig(n int, seed int64) CorpusConfig {
	return CorpusConfig{N: n, MinSize: 3 << 10, MaxSize: 600 << 10, Seed: seed}
}

// PutCorpusConfig mirrors §6.2's dataset shape (18 KB - 7633 KB files).
func PutCorpusConfig(n int, seed int64) CorpusConfig {
	return CorpusConfig{N: n, MinSize: 18 << 10, MaxSize: 7633 << 10, Seed: seed}
}

// NewCorpus builds a corpus: sizes are log-uniform between the bounds
// (matching a file-size population dominated by small files with a long
// tail), classes split small/medium/large at the terciles of the log-size
// range.
func NewCorpus(cfg CorpusConfig) *Corpus {
	if cfg.N <= 0 {
		cfg.N = 1
	}
	if cfg.MinSize <= 0 {
		cfg.MinSize = 1024
	}
	if cfg.MaxSize < cfg.MinSize {
		cfg.MaxSize = cfg.MinSize
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	c := &Corpus{rng: rng}
	logMin, logMax := math.Log(float64(cfg.MinSize)), math.Log(float64(cfg.MaxSize))
	for i := 0; i < cfg.N; i++ {
		logSize := logMin + rng.Float64()*(logMax-logMin)
		size := int(math.Exp(logSize))
		frac := 0.0
		if logMax > logMin {
			frac = (logSize - logMin) / (logMax - logMin)
		}
		class := "a"
		switch {
		case frac > 2.0/3:
			class = "c"
		case frac > 1.0/3:
			class = "b"
		}
		c.Items = append(c.Items, Item{
			Key:   fmt.Sprintf("item-%08d", i),
			Size:  size,
			Class: class,
			seed:  cfg.Seed ^ int64(i)*2654435761,
		})
	}
	return c
}

// TotalBytes sums item sizes.
func (c *Corpus) TotalBytes() int64 {
	var total int64
	for _, it := range c.Items {
		total += int64(it.Size)
	}
	return total
}

// ByClass returns the items of one resource class.
func (c *Corpus) ByClass(class string) []Item {
	var out []Item
	for _, it := range c.Items {
		if it.Class == class {
			out = append(out, it)
		}
	}
	return out
}

// PickUniform returns a uniformly random item using the corpus RNG.
func (c *Corpus) PickUniform() Item {
	return c.Items[c.rng.Intn(len(c.Items))]
}

// GaussianPicker reproduces §6.2's selection procedure: "these files are
// sorted by their sizes and fetched to test system according to the
// Gaussian distribution of their sizes with parameters µ=15, σ=5 that makes
// most of the sizes of the randomly selected files be got from the
// dataset" — items are sorted by size and the pick index is drawn from
// N(µ, σ) over a 0-99 percentile scale, clamped, so selections concentrate
// in the lower-middle of the size range.
type GaussianPicker struct {
	mu     sync.Mutex
	sorted []Item
	rng    *rand.Rand
	mean   float64
	sigma  float64
}

// NewGaussianPicker builds a picker over the corpus with the paper's
// parameters µ=15, σ=5 on a 100-point scale.
func NewGaussianPicker(c *Corpus, seed int64) *GaussianPicker {
	sorted := append([]Item(nil), c.Items...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Size < sorted[j].Size })
	return &GaussianPicker{
		sorted: sorted,
		rng:    rand.New(rand.NewSource(seed)),
		mean:   15,
		sigma:  5,
	}
}

// Pick draws one item. It is safe for concurrent use.
func (p *GaussianPicker) Pick() Item {
	p.mu.Lock()
	defer p.mu.Unlock()
	percentile := p.rng.NormFloat64()*p.sigma + p.mean
	if percentile < 0 {
		percentile = 0
	}
	if percentile > 99 {
		percentile = 99
	}
	idx := int(percentile / 100 * float64(len(p.sorted)))
	if idx >= len(p.sorted) {
		idx = len(p.sorted) - 1
	}
	return p.sorted[idx]
}
