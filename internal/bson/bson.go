// Package bson implements the subset of the BSON (Binary JSON) document
// format MyStore uses for record storage and network transfer. The paper's
// basic unit of writing is "a BSON document similar to MongoDB"; this codec
// supports the element types those records and the query engine need:
// double, string, embedded document, array, binary, ObjectId, boolean,
// UTC datetime, null, int32 and int64.
//
// Documents are ordered: a D preserves the key order it was built with, and
// Marshal/Unmarshal round-trip that order byte-for-byte, which lets the
// storage layer compare encoded documents for identity.
package bson

import (
	"errors"
	"fmt"
	"time"

	"mystore/internal/uuid"
)

// Element type tags from the BSON specification.
const (
	tagDouble   = 0x01
	tagString   = 0x02
	tagDocument = 0x03
	tagArray    = 0x04
	tagBinary   = 0x05
	tagObjectId = 0x07
	tagBool     = 0x08
	tagDatetime = 0x09
	tagNull     = 0x0A
	tagInt32    = 0x10
	tagInt64    = 0x12
)

// MaxDocumentSize bounds a single encoded document. MongoDB 1.6 used 4 MB;
// MyStore stores guideline videos of several MB, so we allow 16 MB.
const MaxDocumentSize = 16 << 20

// MaxDepth bounds document nesting to keep decoding of hostile input cheap.
const MaxDepth = 64

// E is a single key/value element of a document.
type E struct {
	Key   string
	Value any
}

// D is an ordered BSON document. The zero value is an empty document.
type D []E

// A is a BSON array value.
type A []any

// Errors returned by the codec.
var (
	ErrTooLarge   = errors.New("bson: document exceeds maximum size")
	ErrTooDeep    = errors.New("bson: document exceeds maximum nesting depth")
	ErrCorrupt    = errors.New("bson: corrupt document")
	ErrBadElement = errors.New("bson: unsupported element type")
)

// Get returns the value for key and whether it was present. Lookup is linear;
// MyStore records hold five keys.
func (d D) Get(key string) (any, bool) {
	for _, e := range d {
		if e.Key == key {
			return e.Value, true
		}
	}
	return nil, false
}

// Set returns a document with key set to value, replacing an existing element
// in place or appending a new one. The receiver may be mutated and the result
// must be used, in the manner of append.
func (d D) Set(key string, value any) D {
	for i := range d {
		if d[i].Key == key {
			d[i].Value = value
			return d
		}
	}
	return append(d, E{Key: key, Value: value})
}

// Delete returns the document with key removed, preserving order.
func (d D) Delete(key string) D {
	for i := range d {
		if d[i].Key == key {
			return append(d[:i], d[i+1:]...)
		}
	}
	return d
}

// Has reports whether key is present.
func (d D) Has(key string) bool {
	_, ok := d.Get(key)
	return ok
}

// StringOr returns the string value for key, or fallback when the key is
// absent or holds a non-string.
func (d D) StringOr(key, fallback string) string {
	if v, ok := d.Get(key); ok {
		if s, ok := v.(string); ok {
			return s
		}
	}
	return fallback
}

// Clone returns a deep copy of the document. Binary values, embedded
// documents and arrays are copied; scalar values are immutable.
func (d D) Clone() D {
	if d == nil {
		return nil
	}
	out := make(D, len(d))
	for i, e := range d {
		out[i] = E{Key: e.Key, Value: cloneValue(e.Value)}
	}
	return out
}

// CloneValue deep-copies a BSON value: binary data, embedded documents and
// arrays are copied; scalars are returned as-is.
func CloneValue(v any) any { return cloneValue(v) }

func cloneValue(v any) any {
	switch t := v.(type) {
	case []byte:
		b := make([]byte, len(t))
		copy(b, t)
		return b
	case D:
		return t.Clone()
	case A:
		a := make(A, len(t))
		for i, e := range t {
			a[i] = cloneValue(e)
		}
		return a
	default:
		return v
	}
}

// String renders the document in the shell-like notation the paper uses,
// e.g. {"self-key": "Resistor5", "isData": "1"}.
func (d D) String() string {
	s := "{"
	for i, e := range d {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%q: %s", e.Key, valueString(e.Value))
	}
	return s + "}"
}

func valueString(v any) string {
	switch t := v.(type) {
	case nil:
		return "null"
	case string:
		return fmt.Sprintf("%q", t)
	case []byte:
		return fmt.Sprintf("BinData(0, <%d bytes>)", len(t))
	case uuid.ObjectId:
		return t.String()
	case time.Time:
		return fmt.Sprintf("ISODate(%q)", t.UTC().Format(time.RFC3339Nano))
	case D:
		return t.String()
	case A:
		s := "["
		for i, e := range t {
			if i > 0 {
				s += ", "
			}
			s += valueString(e)
		}
		return s + "]"
	default:
		return fmt.Sprintf("%v", t)
	}
}

// Marshal encodes the document into BSON bytes.
func Marshal(d D) ([]byte, error) {
	return AppendTo(make([]byte, 0, 128), d)
}

// AppendTo encodes the document into BSON appended to dst, returning the
// extended slice. Marshal is AppendTo with a fresh buffer; RPC hot paths
// pass a pooled one so encoding a frame costs no allocation. On error dst is
// returned truncated to its original length.
func AppendTo(dst []byte, d D) ([]byte, error) {
	start := len(dst)
	out, err := appendDocument(dst, d, 0)
	if err != nil {
		return dst[:start], err
	}
	if len(out)-start > MaxDocumentSize {
		return dst[:start], ErrTooLarge
	}
	return out, nil
}

func appendDocument(buf []byte, d D, depth int) ([]byte, error) {
	if depth > MaxDepth {
		return nil, ErrTooDeep
	}
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0) // length placeholder
	var err error
	for _, e := range d {
		if buf, err = appendElement(buf, e.Key, e.Value, depth); err != nil {
			return nil, err
		}
	}
	buf = append(buf, 0)
	putInt32(buf[start:], int32(len(buf)-start))
	return buf, nil
}

func appendElement(buf []byte, key string, v any, depth int) ([]byte, error) {
	switch t := v.(type) {
	case float64:
		buf = appendHeader(buf, tagDouble, key)
		buf = appendInt64(buf, int64(float64bits(t)))
	case float32:
		return appendElement(buf, key, float64(t), depth)
	case string:
		buf = appendHeader(buf, tagString, key)
		buf = appendInt32(buf, int32(len(t)+1))
		buf = append(buf, t...)
		buf = append(buf, 0)
	case D:
		buf = appendHeader(buf, tagDocument, key)
		return appendDocument(buf, t, depth+1)
	case A:
		buf = appendHeader(buf, tagArray, key)
		arr := make(D, len(t))
		for i, el := range t {
			arr[i] = E{Key: itoa(i), Value: el}
		}
		return appendDocument(buf, arr, depth+1)
	case []byte:
		buf = appendHeader(buf, tagBinary, key)
		buf = appendInt32(buf, int32(len(t)))
		buf = append(buf, 0) // generic binary subtype
		buf = append(buf, t...)
	case uuid.ObjectId:
		buf = appendHeader(buf, tagObjectId, key)
		buf = append(buf, t[:]...)
	case bool:
		buf = appendHeader(buf, tagBool, key)
		if t {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	case time.Time:
		buf = appendHeader(buf, tagDatetime, key)
		buf = appendInt64(buf, t.UnixMilli())
	case nil:
		buf = appendHeader(buf, tagNull, key)
	case int32:
		buf = appendHeader(buf, tagInt32, key)
		buf = appendInt32(buf, t)
	case int64:
		buf = appendHeader(buf, tagInt64, key)
		buf = appendInt64(buf, t)
	case int:
		buf = appendHeader(buf, tagInt64, key)
		buf = appendInt64(buf, int64(t))
	default:
		return nil, fmt.Errorf("%w: %T for key %q", ErrBadElement, v, key)
	}
	return buf, nil
}

func appendHeader(buf []byte, tag byte, key string) []byte {
	buf = append(buf, tag)
	buf = append(buf, key...)
	return append(buf, 0)
}

// Unmarshal decodes BSON bytes into a document. The input is fully validated:
// truncated or oversized length prefixes, bad tags and missing terminators
// all return ErrCorrupt-wrapped errors rather than panicking.
func Unmarshal(data []byte) (D, error) {
	d, rest, err := readDocument(data, 0)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(rest))
	}
	return d, nil
}

func readDocument(data []byte, depth int) (D, []byte, error) {
	if depth > MaxDepth {
		return nil, nil, ErrTooDeep
	}
	if len(data) < 5 {
		return nil, nil, fmt.Errorf("%w: document shorter than 5 bytes", ErrCorrupt)
	}
	size := int(getInt32(data))
	if size < 5 || size > len(data) || size > MaxDocumentSize {
		return nil, nil, fmt.Errorf("%w: bad document length %d", ErrCorrupt, size)
	}
	body, rest := data[4:size], data[size:]
	if body[len(body)-1] != 0 {
		return nil, nil, fmt.Errorf("%w: missing document terminator", ErrCorrupt)
	}
	body = body[:len(body)-1]
	var d D
	for len(body) > 0 {
		tag := body[0]
		body = body[1:]
		key, after, err := readCString(body)
		if err != nil {
			return nil, nil, err
		}
		body = after
		var v any
		if v, body, err = readValue(tag, body, depth); err != nil {
			return nil, nil, err
		}
		d = append(d, E{Key: key, Value: v})
	}
	return d, rest, nil
}

func readValue(tag byte, body []byte, depth int) (any, []byte, error) {
	switch tag {
	case tagDouble:
		if len(body) < 8 {
			return nil, nil, truncated("double")
		}
		return float64frombits(uint64(getInt64(body))), body[8:], nil
	case tagString:
		if len(body) < 4 {
			return nil, nil, truncated("string length")
		}
		n := int(getInt32(body))
		body = body[4:]
		if n < 1 || n > len(body) || body[n-1] != 0 {
			return nil, nil, fmt.Errorf("%w: bad string length %d", ErrCorrupt, n)
		}
		return string(body[:n-1]), body[n:], nil
	case tagDocument:
		return readNested(body, depth, false)
	case tagArray:
		return readNested(body, depth, true)
	case tagBinary:
		if len(body) < 5 {
			return nil, nil, truncated("binary header")
		}
		n := int(getInt32(body))
		body = body[5:] // length + subtype byte
		if n < 0 || n > len(body) {
			return nil, nil, fmt.Errorf("%w: bad binary length %d", ErrCorrupt, n)
		}
		b := make([]byte, n)
		copy(b, body[:n])
		return b, body[n:], nil
	case tagObjectId:
		if len(body) < 12 {
			return nil, nil, truncated("ObjectId")
		}
		var id uuid.ObjectId
		copy(id[:], body[:12])
		return id, body[12:], nil
	case tagBool:
		if len(body) < 1 {
			return nil, nil, truncated("bool")
		}
		return body[0] != 0, body[1:], nil
	case tagDatetime:
		if len(body) < 8 {
			return nil, nil, truncated("datetime")
		}
		ms := getInt64(body)
		return time.UnixMilli(ms).UTC(), body[8:], nil
	case tagNull:
		return nil, body, nil
	case tagInt32:
		if len(body) < 4 {
			return nil, nil, truncated("int32")
		}
		return getInt32(body), body[4:], nil
	case tagInt64:
		if len(body) < 8 {
			return nil, nil, truncated("int64")
		}
		return getInt64(body), body[8:], nil
	default:
		return nil, nil, fmt.Errorf("%w: tag 0x%02x", ErrBadElement, tag)
	}
}

func readNested(body []byte, depth int, asArray bool) (any, []byte, error) {
	doc, rest, err := readDocument(body, depth+1)
	if err != nil {
		return nil, nil, err
	}
	if !asArray {
		return doc, rest, nil
	}
	arr := make(A, len(doc))
	for i, e := range doc {
		arr[i] = e.Value
	}
	return arr, rest, nil
}

func readCString(b []byte) (string, []byte, error) {
	for i := 0; i < len(b); i++ {
		if b[i] == 0 {
			return string(b[:i]), b[i+1:], nil
		}
	}
	return "", nil, fmt.Errorf("%w: unterminated key", ErrCorrupt)
}

func truncated(what string) error {
	return fmt.Errorf("%w: truncated %s", ErrCorrupt, what)
}
