package bson

import (
	"bytes"
	"testing"
)

func TestAppendToMatchesMarshal(t *testing.T) {
	doc := D{
		{Key: "s", Value: "hello"},
		{Key: "i", Value: int64(99)},
		{Key: "b", Value: []byte{1, 2, 3}},
		{Key: "sub", Value: D{{Key: "x", Value: true}}},
	}
	enc, err := Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	prefix := []byte("prefix-")
	out, err := AppendTo(append([]byte(nil), prefix...), doc)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out[:len(prefix)], prefix) {
		t.Fatal("AppendTo clobbered the existing buffer prefix")
	}
	if !bytes.Equal(out[len(prefix):], enc) {
		t.Fatal("AppendTo payload differs from Marshal")
	}
}

func TestAppendToErrorRestoresLength(t *testing.T) {
	buf := append(make([]byte, 0, 64), "keep"...)
	out, err := AppendTo(buf, D{{Key: "bad", Value: struct{}{}}})
	if err == nil {
		t.Fatal("want encode error for unsupported type")
	}
	if string(out) != "keep" {
		t.Fatalf("buffer after error = %q, want original prefix", string(out))
	}
}

// TestAppendToZeroAlloc pins the encode-buffer pooling win: encoding a flat
// document (the shape of every RPC envelope and record) into a pre-sized
// buffer allocates nothing.
func TestAppendToZeroAlloc(t *testing.T) {
	doc := D{
		{Key: "type", Value: "nwr.get.replica"},
		{Key: "from", Value: "127.0.0.1:7001"},
		{Key: "dl", Value: int64(1722945000000000000)},
		{Key: "body", Value: D{
			{Key: "self-key", Value: "user:42"},
			{Key: "val", Value: []byte("0123456789abcdef")},
			{Key: "ver", Value: int64(3)},
		}},
	}
	buf := make([]byte, 0, 512)
	allocs := testing.AllocsPerRun(100, func() {
		out, err := AppendTo(buf[:0], doc)
		if err != nil {
			t.Fatal(err)
		}
		buf = out[:0]
	})
	if allocs != 0 {
		t.Fatalf("AppendTo allocated %.1f times per document, want 0", allocs)
	}
}
