package bson

import (
	"encoding/binary"
	"math"
	"strconv"
)

// Little-endian integer helpers. BSON mandates little-endian encoding for
// all fixed-width integers.

func appendInt32(buf []byte, v int32) []byte {
	return binary.LittleEndian.AppendUint32(buf, uint32(v))
}

func appendInt64(buf []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(buf, uint64(v))
}

func putInt32(buf []byte, v int32) {
	binary.LittleEndian.PutUint32(buf, uint32(v))
}

func getInt32(buf []byte) int32 {
	return int32(binary.LittleEndian.Uint32(buf))
}

func getInt64(buf []byte) int64 {
	return int64(binary.LittleEndian.Uint64(buf))
}

func float64bits(f float64) uint64     { return math.Float64bits(f) }
func float64frombits(b uint64) float64 { return math.Float64frombits(b) }

func itoa(i int) string { return strconv.Itoa(i) }
