package bson

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"mystore/internal/uuid"
)

func paperRecord() D {
	id, _ := uuid.ParseObjectId("4ee4462739a8727afc917ee6")
	return D{
		{Key: "_id", Value: id},
		{Key: "self-key", Value: "Resistor5"},
		{Key: "val", Value: []byte("this is test data for read")},
		{Key: "isData", Value: "1"},
		{Key: "isDel", Value: "0"},
	}
}

func TestMarshalUnmarshalPaperRecord(t *testing.T) {
	d := paperRecord()
	enc, err := Marshal(d)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	dec, err := Unmarshal(enc)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !reflect.DeepEqual(d, dec) {
		t.Fatalf("round trip mismatch:\n got %s\nwant %s", dec, d)
	}
}

func TestMarshalAllTypes(t *testing.T) {
	when := time.Date(2013, 1, 31, 8, 30, 0, 0, time.UTC)
	d := D{
		{Key: "double", Value: 3.14159},
		{Key: "string", Value: "hello"},
		{Key: "doc", Value: D{{Key: "nested", Value: int32(1)}}},
		{Key: "arr", Value: A{"a", int64(2), true}},
		{Key: "bin", Value: []byte{1, 2, 3}},
		{Key: "oid", Value: uuid.NewObjectId()},
		{Key: "boolT", Value: true},
		{Key: "boolF", Value: false},
		{Key: "time", Value: when},
		{Key: "null", Value: nil},
		{Key: "i32", Value: int32(-42)},
		{Key: "i64", Value: int64(1 << 40)},
	}
	enc, err := Marshal(d)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	dec, err := Unmarshal(enc)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if !reflect.DeepEqual(d, dec) {
		t.Fatalf("round trip mismatch:\n got %#v\nwant %#v", dec, d)
	}
}

func TestMarshalIntNormalizesToInt64(t *testing.T) {
	enc, err := Marshal(D{{Key: "n", Value: 7}})
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	dec, err := Unmarshal(enc)
	if err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if v, _ := dec.Get("n"); v != int64(7) {
		t.Fatalf("int round-tripped as %T(%v), want int64(7)", v, v)
	}
}

func TestMarshalFloat32NormalizesToFloat64(t *testing.T) {
	enc, err := Marshal(D{{Key: "f", Value: float32(1.5)}})
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	dec, _ := Unmarshal(enc)
	if v, _ := dec.Get("f"); v != float64(1.5) {
		t.Fatalf("float32 round-tripped as %T(%v), want float64(1.5)", v, v)
	}
}

func TestMarshalUnsupportedType(t *testing.T) {
	_, err := Marshal(D{{Key: "ch", Value: make(chan int)}})
	if !errors.Is(err, ErrBadElement) {
		t.Fatalf("err = %v, want ErrBadElement", err)
	}
}

func TestMarshalPreservesKeyOrder(t *testing.T) {
	d := D{{Key: "z", Value: int32(1)}, {Key: "a", Value: int32(2)}, {Key: "m", Value: int32(3)}}
	enc, _ := Marshal(d)
	dec, _ := Unmarshal(enc)
	keys := make([]string, len(dec))
	for i, e := range dec {
		keys[i] = e.Key
	}
	if !reflect.DeepEqual(keys, []string{"z", "a", "m"}) {
		t.Fatalf("key order = %v", keys)
	}
}

func TestMarshalDeterministic(t *testing.T) {
	d := paperRecord()
	a, _ := Marshal(d)
	b, _ := Marshal(d)
	if !bytes.Equal(a, b) {
		t.Fatal("Marshal is not deterministic")
	}
}

func TestUnmarshalRejectsCorrupt(t *testing.T) {
	valid, _ := Marshal(paperRecord())
	cases := map[string][]byte{
		"empty":            {},
		"short":            {1, 2, 3},
		"bad length small": {4, 0, 0, 0, 0},
		"bad length big":   {0xff, 0xff, 0xff, 0x7f, 0},
		"trailing bytes":   append(append([]byte{}, valid...), 0xde, 0xad),
		"no terminator":    func() []byte { b := append([]byte{}, valid...); b[len(b)-1] = 7; return b }(),
		"truncated body":   valid[:len(valid)-4],
	}
	for name, data := range cases {
		if _, err := Unmarshal(data); err == nil {
			t.Errorf("%s: Unmarshal succeeded on corrupt input", name)
		}
	}
}

func TestUnmarshalRejectsBadTag(t *testing.T) {
	// Hand-build a document with an unknown tag 0x7f.
	body := []byte{0x7f, 'k', 0x00, 0x00}
	doc := append([]byte{byte(len(body) + 5), 0, 0, 0}, body...)
	doc = append(doc, 0)
	if _, err := Unmarshal(doc); !errors.Is(err, ErrBadElement) {
		t.Fatalf("err = %v, want ErrBadElement", err)
	}
}

func TestDeepNestingRejected(t *testing.T) {
	d := D{{Key: "x", Value: int32(1)}}
	for i := 0; i < MaxDepth+2; i++ {
		d = D{{Key: "n", Value: d}}
	}
	if _, err := Marshal(d); !errors.Is(err, ErrTooDeep) {
		t.Fatalf("err = %v, want ErrTooDeep", err)
	}
}

func TestGetSetDelete(t *testing.T) {
	d := D{}
	d = d.Set("a", "1")
	d = d.Set("b", "2")
	d = d.Set("a", "updated")
	if v, ok := d.Get("a"); !ok || v != "updated" {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	if len(d) != 2 {
		t.Fatalf("Set duplicated key: %s", d)
	}
	d = d.Delete("a")
	if d.Has("a") {
		t.Fatal("Delete left key behind")
	}
	if !d.Has("b") {
		t.Fatal("Delete removed wrong key")
	}
	d = d.Delete("missing") // must be a no-op
	if len(d) != 1 {
		t.Fatalf("Delete(missing) changed document: %s", d)
	}
}

func TestStringOr(t *testing.T) {
	d := D{{Key: "s", Value: "v"}, {Key: "n", Value: int32(1)}}
	if got := d.StringOr("s", "x"); got != "v" {
		t.Errorf("StringOr(s) = %q", got)
	}
	if got := d.StringOr("n", "x"); got != "x" {
		t.Errorf("StringOr on non-string = %q, want fallback", got)
	}
	if got := d.StringOr("missing", "x"); got != "x" {
		t.Errorf("StringOr(missing) = %q, want fallback", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	d := D{
		{Key: "bin", Value: []byte{1, 2}},
		{Key: "doc", Value: D{{Key: "in", Value: []byte{9}}}},
		{Key: "arr", Value: A{[]byte{5}}},
	}
	c := d.Clone()
	c[0].Value.([]byte)[0] = 99
	c[1].Value.(D)[0].Value.([]byte)[0] = 99
	c[2].Value.(A)[0].([]byte)[0] = 99
	if d[0].Value.([]byte)[0] != 1 ||
		d[1].Value.(D)[0].Value.([]byte)[0] != 9 ||
		d[2].Value.(A)[0].([]byte)[0] != 5 {
		t.Fatal("Clone shared memory with original")
	}
	if D(nil).Clone() != nil {
		t.Fatal("Clone(nil) should be nil")
	}
}

func TestStringRendering(t *testing.T) {
	s := paperRecord().String()
	for _, want := range []string{`"self-key": "Resistor5"`, `ObjectId("4ee4462739a8727afc917ee6")`, "BinData(0,"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %s missing %q", s, want)
		}
	}
	arr := D{{Key: "a", Value: A{int64(1), "x", nil}}, {Key: "t", Value: time.Unix(0, 0)}, {Key: "f", Value: 1.5}}
	if got := arr.String(); !strings.Contains(got, `[1, "x", null]`) {
		t.Errorf("array rendering = %s", got)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(s string, b []byte, i int64, n int32, fl float64, flag bool) bool {
		if b == nil {
			b = []byte{}
		}
		d := D{
			{Key: "s", Value: s},
			{Key: "b", Value: b},
			{Key: "i", Value: i},
			{Key: "n", Value: n},
			{Key: "f", Value: fl},
			{Key: "flag", Value: flag},
		}
		enc, err := Marshal(d)
		if err != nil {
			return false
		}
		dec, err := Unmarshal(enc)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(d, dec)
	}
	cfg := &quick.Config{MaxCount: 300}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestUnmarshalNeverPanicsProperty(t *testing.T) {
	f := func(data []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		Unmarshal(data) //nolint:errcheck // only panic matters here
		return true
	}
	cfg := &quick.Config{MaxCount: 2000}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyDocument(t *testing.T) {
	enc, err := Marshal(D{})
	if err != nil {
		t.Fatalf("Marshal empty: %v", err)
	}
	if len(enc) != 5 {
		t.Fatalf("empty document = %d bytes, want 5", len(enc))
	}
	dec, err := Unmarshal(enc)
	if err != nil {
		t.Fatalf("Unmarshal empty: %v", err)
	}
	if len(dec) != 0 {
		t.Fatalf("empty document decoded to %d elements", len(dec))
	}
}

func BenchmarkMarshalPaperRecord(b *testing.B) {
	d := paperRecord()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Marshal(d); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshalPaperRecord(b *testing.B) {
	enc, _ := Marshal(paperRecord())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(enc); err != nil {
			b.Fatal(err)
		}
	}
}
