// Package auth implements MyStore's URI-based digital signatures (paper
// §4, Fig 2). RESTful interfaces are stateless, so requests cannot be
// authorized through sessions or cookies; instead each request carries a
// token and an MD5 digest over (token, request URI, secret key). The secret
// key identifies a user durably; a token identifies a single request and is
// issued from the token DB.
package auth

import (
	"crypto/md5"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"net/url"
	"sync"
	"time"

	"mystore/internal/uuid"
)

// Signature query parameters appended to authorized request URIs.
const (
	ParamToken = "token"
	ParamSign  = "sign"
)

// Errors returned by verification.
var (
	ErrUnknownUser  = errors.New("auth: unknown user")
	ErrBadToken     = errors.New("auth: token unknown or expired")
	ErrBadSignature = errors.New("auth: signature mismatch")
	ErrTokenReplay  = errors.New("auth: token already used")
)

// Sign computes the digest signature for a request: MD5 over the token,
// the canonical request URI (path plus sorted data parameters, excluding
// the signature parameters themselves) and the user's secret key.
func Sign(token, requestURI, secret string) string {
	sum := md5.Sum([]byte(token + "\n" + requestURI + "\n" + secret))
	return hex.EncodeToString(sum[:])
}

// CanonicalURI strips the signature parameters from a URI so signer and
// verifier digest identical bytes.
func CanonicalURI(raw string) (string, error) {
	u, err := url.Parse(raw)
	if err != nil {
		return "", fmt.Errorf("auth: bad uri: %w", err)
	}
	q := u.Query()
	q.Del(ParamToken)
	q.Del(ParamSign)
	u.RawQuery = q.Encode()
	return u.RequestURI(), nil
}

// TokenDB issues single-request tokens and stores user secrets, playing
// the paper's "TOKEN DB" role. It is safe for concurrent use.
type TokenDB struct {
	mu      sync.Mutex
	secrets map[string]string // user -> secret key
	tokens  map[string]tokenInfo
	ttl     time.Duration
	now     func() time.Time
}

type tokenInfo struct {
	user   string
	issued time.Time
	used   bool
}

// NewTokenDB returns a token DB with the given token lifetime (zero means
// 5 minutes).
func NewTokenDB(ttl time.Duration) *TokenDB {
	if ttl <= 0 {
		ttl = 5 * time.Minute
	}
	return &TokenDB{
		secrets: make(map[string]string),
		tokens:  make(map[string]tokenInfo),
		ttl:     ttl,
		now:     time.Now,
	}
}

// SetClock injects a clock for deterministic tests.
func (db *TokenDB) SetClock(now func() time.Time) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.now = now
}

// Register creates a user and returns their generated secret key.
func (db *TokenDB) Register(user string) (string, error) {
	var buf [16]byte
	if _, err := rand.Read(buf[:]); err != nil {
		return "", fmt.Errorf("auth: generate secret: %w", err)
	}
	secret := hex.EncodeToString(buf[:])
	db.mu.Lock()
	defer db.mu.Unlock()
	db.secrets[user] = secret
	return secret, nil
}

// Secret returns the user's secret key.
func (db *TokenDB) Secret(user string) (string, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	s, ok := db.secrets[user]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrUnknownUser, user)
	}
	return s, nil
}

// IssueToken creates a fresh single-request token for the user.
func (db *TokenDB) IssueToken(user string) (string, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if _, ok := db.secrets[user]; !ok {
		return "", fmt.Errorf("%w: %q", ErrUnknownUser, user)
	}
	token := uuid.NewUUID().String()
	db.tokens[token] = tokenInfo{user: user, issued: db.now()}
	return token, nil
}

// Verify checks a request URI's token and signature, consuming the token.
// On success it returns the authenticated user.
func (db *TokenDB) Verify(rawURI string) (string, error) {
	u, err := url.Parse(rawURI)
	if err != nil {
		return "", fmt.Errorf("auth: bad uri: %w", err)
	}
	q := u.Query()
	token := q.Get(ParamToken)
	sign := q.Get(ParamSign)
	if token == "" || sign == "" {
		return "", ErrBadSignature
	}
	canonical, err := CanonicalURI(rawURI)
	if err != nil {
		return "", err
	}

	db.mu.Lock()
	defer db.mu.Unlock()
	info, ok := db.tokens[token]
	if !ok {
		return "", ErrBadToken
	}
	if db.now().Sub(info.issued) > db.ttl {
		delete(db.tokens, token)
		return "", ErrBadToken
	}
	if info.used {
		return "", ErrTokenReplay
	}
	secret := db.secrets[info.user]
	if Sign(token, canonical, secret) != sign {
		return "", ErrBadSignature
	}
	info.used = true
	db.tokens[token] = info
	return info.user, nil
}

// AuthorizeURI is the client-side helper (the paper's "new authorized
// request URI"): given a base URI, a token and the secret, it returns the
// URI with token and signature parameters attached.
func AuthorizeURI(rawURI, token, secret string) (string, error) {
	canonical, err := CanonicalURI(rawURI)
	if err != nil {
		return "", err
	}
	u, err := url.Parse(rawURI)
	if err != nil {
		return "", err
	}
	q := u.Query()
	q.Set(ParamToken, token)
	q.Set(ParamSign, Sign(token, canonical, secret))
	u.RawQuery = q.Encode()
	return u.String(), nil
}

// PruneExpired removes expired tokens, for long-running gateways.
func (db *TokenDB) PruneExpired() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	now := db.now()
	removed := 0
	for tok, info := range db.tokens {
		if now.Sub(info.issued) > db.ttl {
			delete(db.tokens, tok)
			removed++
		}
	}
	return removed
}
