package auth

import (
	"errors"
	"testing"
	"time"
)

func TestRegisterAndSecret(t *testing.T) {
	db := NewTokenDB(0)
	secret, err := db.Register("alice")
	if err != nil || secret == "" {
		t.Fatalf("Register = %q, %v", secret, err)
	}
	got, err := db.Secret("alice")
	if err != nil || got != secret {
		t.Fatalf("Secret = %q, %v", got, err)
	}
	if _, err := db.Secret("bob"); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("Secret(bob) err = %v", err)
	}
}

func TestIssueTokenRequiresUser(t *testing.T) {
	db := NewTokenDB(0)
	if _, err := db.IssueToken("nobody"); !errors.Is(err, ErrUnknownUser) {
		t.Fatalf("err = %v", err)
	}
}

// TestFullSignatureFlow walks the paper's Fig 2 sequence: get token, build
// digest over token + URI + secret, attach, verify.
func TestFullSignatureFlow(t *testing.T) {
	db := NewTokenDB(0)
	secret, _ := db.Register("alice")
	token, err := db.IssueToken("alice")
	if err != nil {
		t.Fatal(err)
	}
	authorized, err := AuthorizeURI("/data/Resistor5?fmt=xml", token, secret)
	if err != nil {
		t.Fatal(err)
	}
	user, err := db.Verify(authorized)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if user != "alice" {
		t.Fatalf("Verify user = %q", user)
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	db := NewTokenDB(0)
	secret, _ := db.Register("alice")
	token, _ := db.IssueToken("alice")
	authorized, _ := AuthorizeURI("/data/item1", token, secret)
	// Tamper with the path.
	tampered := authorized[:len("/data/item")] + "2" + authorized[len("/data/item1"):]
	if _, err := db.Verify(tampered); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("tampered path err = %v", err)
	}
}

func TestVerifyRejectsWrongSecret(t *testing.T) {
	db := NewTokenDB(0)
	db.Register("alice") //nolint:errcheck
	token, _ := db.IssueToken("alice")
	authorized, _ := AuthorizeURI("/data/x", token, "wrong-secret")
	if _, err := db.Verify(authorized); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("wrong secret err = %v", err)
	}
}

func TestVerifyRejectsUnknownToken(t *testing.T) {
	db := NewTokenDB(0)
	secret, _ := db.Register("alice")
	authorized, _ := AuthorizeURI("/data/x", "fabricated-token", secret)
	if _, err := db.Verify(authorized); !errors.Is(err, ErrBadToken) {
		t.Fatalf("unknown token err = %v", err)
	}
}

func TestVerifyRejectsMissingParams(t *testing.T) {
	db := NewTokenDB(0)
	if _, err := db.Verify("/data/x"); !errors.Is(err, ErrBadSignature) {
		t.Fatalf("no params err = %v", err)
	}
}

func TestTokenSingleUse(t *testing.T) {
	db := NewTokenDB(0)
	secret, _ := db.Register("alice")
	token, _ := db.IssueToken("alice")
	authorized, _ := AuthorizeURI("/data/x", token, secret)
	if _, err := db.Verify(authorized); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Verify(authorized); !errors.Is(err, ErrTokenReplay) {
		t.Fatalf("replay err = %v", err)
	}
}

func TestTokenExpiry(t *testing.T) {
	db := NewTokenDB(time.Minute)
	now := time.Unix(1000, 0)
	db.SetClock(func() time.Time { return now })
	secret, _ := db.Register("alice")
	token, _ := db.IssueToken("alice")
	authorized, _ := AuthorizeURI("/data/x", token, secret)
	now = now.Add(2 * time.Minute)
	if _, err := db.Verify(authorized); !errors.Is(err, ErrBadToken) {
		t.Fatalf("expired token err = %v", err)
	}
}

func TestPruneExpired(t *testing.T) {
	db := NewTokenDB(time.Minute)
	now := time.Unix(1000, 0)
	db.SetClock(func() time.Time { return now })
	db.Register("alice") //nolint:errcheck
	for i := 0; i < 5; i++ {
		db.IssueToken("alice") //nolint:errcheck
	}
	now = now.Add(2 * time.Minute)
	fresh, _ := db.IssueToken("alice")
	if removed := db.PruneExpired(); removed != 5 {
		t.Fatalf("PruneExpired = %d, want 5", removed)
	}
	// The fresh token remains usable.
	secret, _ := db.Secret("alice")
	authorized, _ := AuthorizeURI("/data/x", fresh, secret)
	if _, err := db.Verify(authorized); err != nil {
		t.Fatalf("fresh token rejected after prune: %v", err)
	}
}

func TestSignDeterministicAndSensitive(t *testing.T) {
	a := Sign("tok", "/data/x", "secret")
	if a != Sign("tok", "/data/x", "secret") {
		t.Fatal("Sign not deterministic")
	}
	if a == Sign("tok2", "/data/x", "secret") ||
		a == Sign("tok", "/data/y", "secret") ||
		a == Sign("tok", "/data/x", "secret2") {
		t.Fatal("Sign insensitive to an input")
	}
	if len(a) != 32 {
		t.Fatalf("Sign length = %d, want 32 hex chars (MD5)", len(a))
	}
}

func TestCanonicalURIStripsOnlySignatureParams(t *testing.T) {
	got, err := CanonicalURI("/data/x?b=2&token=t&a=1&sign=s")
	if err != nil {
		t.Fatal(err)
	}
	want := "/data/x?a=1&b=2"
	if got != want {
		t.Fatalf("CanonicalURI = %q, want %q", got, want)
	}
	if _, err := CanonicalURI("://bad"); err == nil {
		t.Fatal("bad URI accepted")
	}
}
