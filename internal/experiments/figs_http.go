package experiments

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"time"

	"mystore/internal/workload"
)

// preload inserts the corpus into a system through its backend URL.
func preload(url string, corpus *workload.Corpus) error {
	client := newHTTPClient(64)
	for _, it := range corpus.Items {
		resp, err := client.Post(url+"/data/"+it.Key, "application/octet-stream",
			bytes.NewReader(it.Payload()))
		if err != nil {
			return fmt.Errorf("preload %s: %w", it.Key, err)
		}
		io.Copy(io.Discard, resp.Body) //nolint:errcheck
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("preload %s: status %d", it.Key, resp.StatusCode)
		}
	}
	return nil
}

func newHTTPClient(maxConns int) *http.Client {
	tr := &http.Transport{
		MaxIdleConns:        maxConns,
		MaxIdleConnsPerHost: maxConns,
	}
	return &http.Client{Transport: tr, Timeout: 30 * time.Second}
}

// httpReadOp issues one GET for a corpus item, measuring time to first
// byte and reading the full body (time to last byte is the op's total).
func httpReadOp(client *http.Client, url string, pick func(rng *rand.Rand) workload.Item) workload.Op {
	return func(ctx context.Context, rng *rand.Rand) workload.OpResult {
		it := pick(rng)
		start := time.Now()
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/data/"+it.Key, nil)
		if err != nil {
			return workload.OpResult{Err: err}
		}
		resp, err := client.Do(req)
		if err != nil {
			return workload.OpResult{Err: err}
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, resp.Body) //nolint:errcheck
			return workload.OpResult{Err: fmt.Errorf("status %d", resp.StatusCode)}
		}
		// First byte.
		var one [1]byte
		if _, err := io.ReadFull(resp.Body, one[:]); err != nil {
			return workload.OpResult{Err: err}
		}
		ttfb := time.Since(start)
		n, err := io.Copy(io.Discard, resp.Body)
		if err != nil {
			return workload.OpResult{Err: err}
		}
		return workload.OpResult{Bytes: int(n) + 1, TTFB: ttfb}
	}
}

// cacheReadRun preloads a small corpus into sys and measures mean read
// latency and the gateway's cache hit rate (used by the cache ablation).
func cacheReadRun(sys *system, scale Scale) (meanMs, hitRatePct float64, err error) {
	scale = scale.withDefaults()
	corpus := workload.NewCorpus(workload.ReadCorpusConfig(scale.ReadItems/4+1, scale.Seed))
	if err := preload(sys.URL(), corpus); err != nil {
		return 0, 0, err
	}
	client := newHTTPClient(scale.LoadProcesses)
	res := workload.Run(context.Background(), workload.Options{
		Processes: scale.LoadProcesses / 2,
		Duration:  scale.StepDuration,
		Seed:      scale.Seed,
	}, httpReadOp(client, sys.URL(), func(rng *rand.Rand) workload.Item {
		// Zipf-ish hot set: 80% of reads hit 20% of items.
		if rng.Intn(5) > 0 {
			return corpus.Items[rng.Intn(len(corpus.Items)/5+1)]
		}
		return corpus.Items[rng.Intn(len(corpus.Items))]
	}))
	st := sys.gateway.Stats()
	total := st.CacheHits + st.CacheMisses
	rate := 0.0
	if total > 0 {
		rate = 100 * float64(st.CacheHits) / float64(total)
	}
	return float64(res.TTLB.Mean()) / 1e6, rate, nil
}

// Fig11Row is one system's read throughput and request rate.
type Fig11Row struct {
	System     string
	MBPerSec   float64
	RPS        float64
	Errors     int64
	MeanTTLBms float64
}

// Fig11Result reproduces Fig 11: "Comparison of throughput and RPS in
// three systems".
type Fig11Result struct {
	Rows []Fig11Row
}

// String renders the paper-shaped table.
func (r Fig11Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 11 — read throughput and RPS, three systems behind the same REST interface\n")
	fmt.Fprintf(&b, "%-10s %12s %10s %12s %8s\n", "system", "MB/s", "req/s", "mean TTLB", "errors")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %12.2f %10.1f %10.1fms %8d\n",
			row.System, row.MBPerSec, row.RPS, row.MeanTTLBms, row.Errors)
	}
	return b.String()
}

// RunFig11 measures read throughput and RPS for the three systems.
func RunFig11(scale Scale, tmpDir string) (Fig11Result, error) {
	scale = scale.withDefaults()
	corpus := workload.NewCorpus(workload.ReadCorpusConfig(scale.ReadItems, scale.Seed))
	var result Fig11Result
	systems, err := buildThreeSystems(tmpDir)
	if err != nil {
		return result, err
	}
	defer closeAll(systems)
	for _, sys := range systems {
		if err := preload(sys.URL(), corpus); err != nil {
			return result, fmt.Errorf("%s: %w", sys.name, err)
		}
		client := newHTTPClient(scale.LoadProcesses)
		res := workload.Run(context.Background(), workload.Options{
			Processes: scale.LoadProcesses,
			Duration:  scale.StepDuration,
			Seed:      scale.Seed,
		}, httpReadOp(client, sys.URL(), func(rng *rand.Rand) workload.Item {
			return corpus.Items[rng.Intn(len(corpus.Items))]
		}))
		result.Rows = append(result.Rows, Fig11Row{
			System:     sys.name,
			MBPerSec:   res.Throughput.MBPerSec(),
			RPS:        res.Throughput.RPS(),
			Errors:     res.Throughput.Errors,
			MeanTTLBms: float64(res.TTLB.Mean()) / 1e6,
		})
	}
	return result, nil
}

func buildThreeSystems(tmpDir string) ([]*system, error) {
	my, _, err := newMyStoreSystem(nil)
	if err != nil {
		return nil, err
	}
	fs, err := newFSSystem(tmpDir)
	if err != nil {
		my.Close()
		return nil, err
	}
	sql := newSQLSystem()
	return []*system{my, fs, sql}, nil
}

func closeAll(systems []*system) {
	for _, s := range systems {
		s.Close()
	}
}

// Fig12Row is one (system, resource class) latency pair.
type Fig12Row struct {
	System     string
	Class      string
	MeanTTFBms float64
	MeanTTLBms float64
}

// Fig12Result reproduces Fig 12: TTFB and TTLB across three resource types
// in the three systems.
type Fig12Result struct {
	Rows []Fig12Row
}

// String renders the paper-shaped table.
func (r Fig12Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 12 — TTFB / TTLB by resource type (a = small, b = medium, c = large)\n")
	fmt.Fprintf(&b, "%-10s %6s %14s %14s\n", "system", "type", "mean TTFB", "mean TTLB")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s %6s %12.1fms %12.1fms\n",
			row.System, row.Class, row.MeanTTFBms, row.MeanTTLBms)
	}
	return b.String()
}

// RunFig12 measures per-class latencies for the three systems.
func RunFig12(scale Scale, tmpDir string) (Fig12Result, error) {
	scale = scale.withDefaults()
	corpus := workload.NewCorpus(workload.ReadCorpusConfig(scale.ReadItems, scale.Seed))
	var result Fig12Result
	systems, err := buildThreeSystems(tmpDir)
	if err != nil {
		return result, err
	}
	defer closeAll(systems)
	for _, sys := range systems {
		if err := preload(sys.URL(), corpus); err != nil {
			return result, fmt.Errorf("%s: %w", sys.name, err)
		}
		client := newHTTPClient(scale.LoadProcesses)
		for _, class := range []string{"a", "b", "c"} {
			items := corpus.ByClass(class)
			if len(items) == 0 {
				continue
			}
			res := workload.Run(context.Background(), workload.Options{
				Processes: scale.LoadProcesses / 2,
				Duration:  scale.StepDuration / 2,
				Seed:      scale.Seed,
			}, httpReadOp(client, sys.URL(), func(rng *rand.Rand) workload.Item {
				return items[rng.Intn(len(items))]
			}))
			result.Rows = append(result.Rows, Fig12Row{
				System:     sys.name,
				Class:      class,
				MeanTTFBms: float64(res.TTFB.Mean()) / 1e6,
				MeanTTLBms: float64(res.TTLB.Mean()) / 1e6,
			})
		}
	}
	return result, nil
}

// Fig13Row is one sweep point of the scalability experiment.
type Fig13Row struct {
	Processes  int
	MeanTTFBms float64
	P95TTFBms  float64
	MBPerSec   float64
	RPS        float64
	ErrorRate  float64
}

// Fig13Result reproduces Figs 13 and 14 together (the paper plots the same
// sweep twice: TTFB vs processes, then throughput and RPS vs processes).
type Fig13Result struct {
	Rows []Fig13Row
}

// String renders both figures' series.
func (r Fig13Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 13/14 — MyStore under increasing request processes\n")
	fmt.Fprintf(&b, "%10s %12s %12s %10s %10s %9s\n",
		"processes", "mean TTFB", "p95 TTFB", "MB/s", "req/s", "err rate")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%10d %10.1fms %10.1fms %10.2f %10.1f %8.1f%%\n",
			row.Processes, row.MeanTTFBms, row.P95TTFBms, row.MBPerSec, row.RPS, row.ErrorRate*100)
	}
	return b.String()
}

// RunFig13 sweeps client-process counts against the full MyStore stack.
func RunFig13(scale Scale) (Fig13Result, error) {
	scale = scale.withDefaults()
	corpus := workload.NewCorpus(workload.ReadCorpusConfig(scale.ReadItems, scale.Seed))
	var result Fig13Result
	sys, _, err := newMyStoreSystem(nil)
	if err != nil {
		return result, err
	}
	defer sys.Close()
	if err := preload(sys.URL(), corpus); err != nil {
		return result, err
	}
	for _, procs := range scale.Processes {
		client := newHTTPClient(procs)
		res := workload.Run(context.Background(), workload.Options{
			Processes: procs,
			Duration:  scale.StepDuration,
			ThinkMin:  0,
			ThinkMax:  20 * time.Millisecond,
			Seed:      scale.Seed + int64(procs),
		}, httpReadOp(client, sys.URL(), func(rng *rand.Rand) workload.Item {
			return corpus.Items[rng.Intn(len(corpus.Items))]
		}))
		totalAttempts := res.Throughput.Ops + res.Throughput.Errors
		errRate := 0.0
		if totalAttempts > 0 {
			errRate = float64(res.Throughput.Errors) / float64(totalAttempts)
		}
		result.Rows = append(result.Rows, Fig13Row{
			Processes:  procs,
			MeanTTFBms: float64(res.TTFB.Mean()) / 1e6,
			P95TTFBms:  float64(res.TTFB.Quantile(0.95)) / 1e6,
			MBPerSec:   res.Throughput.MBPerSec(),
			RPS:        res.Throughput.RPS(),
			ErrorRate:  errRate,
		})
		client.CloseIdleConnections()
	}
	return result, nil
}
