package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"mystore"
	"mystore/internal/bson"
	"mystore/internal/gossip"
	"mystore/internal/metrics"
	"mystore/internal/ring"
	"mystore/internal/simdisk"
	"mystore/internal/transport"
)

// AblationResult collects the design-choice studies DESIGN.md §5 lists plus
// the A7 write-path study.
type AblationResult struct {
	VNodes    VNodesAblation
	NWR       []NWRAblationRow
	Hints     HintsAblation
	Cache     CacheAblation
	Gossip    GossipAblation
	Pool      PoolAblation
	WritePath WritePathAblation
}

// String renders every ablation.
func (r AblationResult) String() string {
	var b strings.Builder
	b.WriteString(r.VNodes.String())
	b.WriteString("\nA2 — NWR settings (paper §5.2.2 trade-off)\n")
	fmt.Fprintf(&b, "%10s %12s %12s %22s\n", "(N,W,R)", "put mean", "get mean", "puts ok w/ node down")
	for _, row := range r.NWR {
		fmt.Fprintf(&b, "%10s %10.2fms %10.2fms %21.0f%%\n",
			row.Config, row.PutMeanMs, row.GetMeanMs, row.DownSuccessPct)
	}
	b.WriteString("\n" + r.Hints.String())
	b.WriteString("\n" + r.Cache.String())
	b.WriteString("\n" + r.Gossip.String())
	b.WriteString("\n" + r.Pool.String())
	b.WriteString("\n" + r.WritePath.String())
	return b.String()
}

// --- A1: virtual nodes ---

// VNodesAblation compares placement balance across virtual-node counts and
// key remapping between consistent hashing and mod-N (paper Eq. 1 vs 2).
type VNodesAblation struct {
	SpreadByVNodes    map[int]float64 // vnodes-per-node -> (max-min)/ideal
	ConsistentMovePct float64         // keys remapped when a 6th node joins
	ModNMovePct       float64
}

// String renders the study.
func (a VNodesAblation) String() string {
	var b strings.Builder
	b.WriteString("A1 — virtual nodes and placement (paper §5.2.1)\n")
	for _, v := range []int{1, 10, 100, 200} {
		if s, ok := a.SpreadByVNodes[v]; ok {
			fmt.Fprintf(&b, "  %4d vnodes/node: load spread (max-min)/ideal = %5.1f%%\n", v, s*100)
		}
	}
	fmt.Fprintf(&b, "  adding a 6th node remaps %.1f%% of keys (consistent hash) vs %.1f%% (hash mod N)\n",
		a.ConsistentMovePct, a.ModNMovePct)
	return b.String()
}

func runVNodesAblation(keys int) VNodesAblation {
	a := VNodesAblation{SpreadByVNodes: map[int]float64{}}
	for _, vn := range []int{1, 10, 100, 200} {
		r := ring.New(ring.WithVNodesPerWeight(vn))
		for i := 1; i <= 5; i++ {
			r.AddNode(ring.Node{ID: fmt.Sprintf("node-%d", i)}) //nolint:errcheck
		}
		counts := map[string]int{}
		for i := 0; i < keys; i++ {
			owner, _ := r.Primary(fmt.Sprintf("key-%d", i))
			counts[owner]++
		}
		min, max := keys, 0
		for i := 1; i <= 5; i++ {
			c := counts[fmt.Sprintf("node-%d", i)]
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		a.SpreadByVNodes[vn] = float64(max-min) / (float64(keys) / 5)
	}
	// Remap fraction on membership change.
	r := ring.New()
	for i := 1; i <= 5; i++ {
		r.AddNode(ring.Node{ID: fmt.Sprintf("node-%d", i)}) //nolint:errcheck
	}
	before := make([]string, keys)
	for i := range before {
		before[i], _ = r.Primary(fmt.Sprintf("key-%d", i))
	}
	r.AddNode(ring.Node{ID: "node-6"}) //nolint:errcheck
	moved := 0
	for i := range before {
		if after, _ := r.Primary(fmt.Sprintf("key-%d", i)); after != before[i] {
			moved++
		}
	}
	a.ConsistentMovePct = 100 * float64(moved) / float64(keys)

	m := ring.NewModN("n1", "n2", "n3", "n4", "n5")
	beforeMod := make([]string, keys)
	for i := range beforeMod {
		beforeMod[i], _ = m.Primary(fmt.Sprintf("key-%d", i))
	}
	m.AddNode("n6")
	movedMod := 0
	for i := range beforeMod {
		if after, _ := m.Primary(fmt.Sprintf("key-%d", i)); after != beforeMod[i] {
			movedMod++
		}
	}
	a.ModNMovePct = 100 * float64(movedMod) / float64(keys)
	return a
}

// --- A2: NWR settings ---

// NWRAblationRow measures one (N,W,R) configuration.
type NWRAblationRow struct {
	Config         string
	PutMeanMs      float64
	GetMeanMs      float64
	DownSuccessPct float64 // put success with one node down, hints off
}

func runNWRAblation(ops int) ([]NWRAblationRow, error) {
	configs := []struct {
		name    string
		n, w, r int
	}{
		{"(3,3,1)", 3, 3, 1}, // high consistency
		{"(3,2,1)", 3, 2, 1}, // the paper's default
		{"(3,1,1)", 3, 1, 1}, // high availability
	}
	var rows []NWRAblationRow
	for _, cfg := range configs {
		cl, err := mystore.StartCluster(mystore.ClusterOptions{
			Nodes: 5, N: cfg.n, W: cfg.w, R: cfg.r,
			LatencyBase: lanBase, Bandwidth: lanBandwidth,
			DisableHints: true,
		})
		if err != nil {
			return nil, err
		}
		client, err := cl.Client()
		if err != nil {
			cl.Close()
			return nil, err
		}
		ctx := context.Background()
		putH, getH := metrics.NewHistogram(), metrics.NewHistogram()
		payload := make([]byte, 32<<10)
		for i := 0; i < ops; i++ {
			key := fmt.Sprintf("nwr-%s-%d", cfg.name, i)
			t0 := time.Now()
			if err := client.Put(ctx, key, payload); err == nil {
				putH.Observe(time.Since(t0))
			}
			t0 = time.Now()
			if _, err := client.Get(ctx, key); err == nil {
				getH.Observe(time.Since(t0))
			}
		}
		// Availability with one replica-holding node down and no hints.
		cl.StopNode(4)
		okDown := 0
		for i := 0; i < ops; i++ {
			if err := client.Put(ctx, fmt.Sprintf("down-%d", i), payload); err == nil {
				okDown++
			}
		}
		rows = append(rows, NWRAblationRow{
			Config:         cfg.name,
			PutMeanMs:      float64(putH.Mean()) / 1e6,
			GetMeanMs:      float64(getH.Mean()) / 1e6,
			DownSuccessPct: 100 * float64(okDown) / float64(ops),
		})
		cl.Close()
	}
	return rows, nil
}

// --- A3: hinted handoff ---

// HintsAblation compares put success under faults with and without hinted
// handoff.
type HintsAblation struct {
	WithHintsPct    float64
	WithoutHintsPct float64
}

// String renders the study.
func (a HintsAblation) String() string {
	return fmt.Sprintf("A3 — hinted handoff under one downed replica node\n  puts ok: with hints %.1f%%, without %.1f%%\n",
		a.WithHintsPct, a.WithoutHintsPct)
}

func runHintsAblation(ops int) (HintsAblation, error) {
	var a HintsAblation
	run := func(disable bool) (float64, error) {
		cl, err := mystore.StartCluster(mystore.ClusterOptions{
			Nodes: 5, DisableHints: disable,
		})
		if err != nil {
			return 0, err
		}
		defer cl.Close()
		client, err := cl.Client()
		if err != nil {
			return 0, err
		}
		cl.StopNode(3)
		time.Sleep(500 * time.Millisecond) // let the detector notice
		ok := 0
		ctx := context.Background()
		for i := 0; i < ops; i++ {
			if err := client.Put(ctx, fmt.Sprintf("h-%d", i), []byte("v")); err == nil {
				ok++
			}
		}
		return 100 * float64(ok) / float64(ops), nil
	}
	var err error
	if a.WithHintsPct, err = run(false); err != nil {
		return a, err
	}
	if a.WithoutHintsPct, err = run(true); err != nil {
		return a, err
	}
	return a, nil
}

// --- A4: cache tier ---

// CacheAblation compares gateway read latency with and without the LRU
// cache tier.
type CacheAblation struct {
	WithCacheMeanMs    float64
	WithoutCacheMeanMs float64
	HitRatePct         float64
}

// String renders the study.
func (a CacheAblation) String() string {
	return fmt.Sprintf("A4 — cache tier on reads\n  mean TTLB: with cache %.2fms (hit rate %.0f%%), without %.2fms\n",
		a.WithCacheMeanMs, a.HitRatePct, a.WithoutCacheMeanMs)
}

// --- A5: gossip style ---

// GossipAblation compares rounds-to-convergence of push-pull vs push-only
// gossip on a 16-node simulated cluster.
type GossipAblation struct {
	PushPullRounds int
	PushOnlyRounds int
}

// String renders the study.
func (a GossipAblation) String() string {
	return fmt.Sprintf("A5 — gossip style: state converged in %d rounds (push-pull) vs %d (push-only), 16 nodes\n",
		a.PushPullRounds, a.PushOnlyRounds)
}

func runGossipAblation() GossipAblation {
	measure := func(pushOnly bool) int {
		net := transport.NewMemNetwork()
		now := time.Unix(9000, 0)
		var gs []*gossip.Gossiper
		for i := 0; i < 16; i++ {
			ep, _ := net.Endpoint(fmt.Sprintf("g-%d", i))
			g := gossip.New(ep, gossip.Config{
				Seeds:    []string{"g-0"},
				Interval: time.Second,
				Now:      func() time.Time { return now },
				Seed:     int64(i + 1),
				PushOnly: pushOnly,
			})
			ep.SetHandler(g.HandleMessage)
			gs = append(gs, g)
		}
		ctx := context.Background()
		// Warm membership.
		for r := 0; r < 30; r++ {
			for _, g := range gs {
				g.Tick(ctx)
			}
			now = now.Add(time.Second)
		}
		gs[7].SetLocal("marker", "x")
		for round := 1; round <= 100; round++ {
			for _, g := range gs {
				g.Tick(ctx)
			}
			now = now.Add(time.Second)
			all := true
			for _, g := range gs {
				if v, _ := g.Lookup("g-7", "marker"); v != "x" {
					all = false
					break
				}
			}
			if all {
				return round
			}
		}
		return 100
	}
	return GossipAblation{
		PushPullRounds: measure(false),
		PushOnlyRounds: measure(true),
	}
}

// --- A6: connection pool ---

// PoolAblation compares TCP call latency with and without the connection
// pool (paper §5.1's Connect design).
type PoolAblation struct {
	PooledMeanUs   float64
	UnpooledMeanUs float64
}

// String renders the study.
func (a PoolAblation) String() string {
	return fmt.Sprintf("A6 — connection pool: mean RPC %0.0fµs pooled vs %0.0fµs dialing per call\n",
		a.PooledMeanUs, a.UnpooledMeanUs)
}

func runPoolAblation(calls int) (PoolAblation, error) {
	var a PoolAblation
	srv, err := transport.ListenTCP("127.0.0.1:0", transport.TCPOptions{})
	if err != nil {
		return a, err
	}
	defer srv.Close()
	srv.SetHandler(func(ctx context.Context, msg transport.Message) (bson.D, error) {
		return bson.D{{Key: "ok", Value: true}}, nil
	})
	measure := func(disablePool bool) (float64, error) {
		cli, err := transport.ListenTCP("127.0.0.1:0", transport.TCPOptions{DisablePool: disablePool})
		if err != nil {
			return 0, err
		}
		defer cli.Close()
		ctx := context.Background()
		h := metrics.NewHistogram()
		for i := 0; i < calls; i++ {
			t0 := time.Now()
			if _, err := cli.Call(ctx, srv.Addr(), transport.Message{Type: "ping"}); err != nil {
				return 0, err
			}
			h.Observe(time.Since(t0))
		}
		return float64(h.Mean()) / 1e3, nil
	}
	if a.PooledMeanUs, err = measure(false); err != nil {
		return a, err
	}
	if a.UnpooledMeanUs, err = measure(true); err != nil {
		return a, err
	}
	return a, nil
}

// RunAblations runs every study at the given scale.
func RunAblations(scale Scale) (AblationResult, error) {
	scale = scale.withDefaults()
	var result AblationResult
	result.VNodes = runVNodesAblation(scale.PutItems)
	var err error
	if result.NWR, err = runNWRAblation(scale.ReadItems / 10); err != nil {
		return result, err
	}
	if result.Hints, err = runHintsAblation(scale.ReadItems / 5); err != nil {
		return result, err
	}
	if result.Cache, err = runCacheAblation(scale); err != nil {
		return result, err
	}
	result.Gossip = runGossipAblation()
	if result.Pool, err = runPoolAblation(300); err != nil {
		return result, err
	}
	if result.WritePath, err = RunWritePathAblation(64, scale.PutItems); err != nil {
		return result, err
	}
	return result, nil
}

// runCacheAblation measures the gateway with and without the tier. It
// lives here but reuses the HTTP helpers from figs_http.go.
func runCacheAblation(scale Scale) (CacheAblation, error) {
	var a CacheAblation
	// With cache: the standard MyStore system (tier included).
	sys, _, err := newMyStoreSystem(nil)
	if err != nil {
		return a, err
	}
	withMs, hitRate, err := cacheReadRun(sys, scale)
	sys.Close()
	if err != nil {
		return a, err
	}
	// Without cache: same cluster assembly, gateway built tier-less.
	cl, err := mystore.StartCluster(mystore.ClusterOptions{
		Nodes: 5, LatencyBase: lanBase, Bandwidth: lanBandwidth,
	})
	if err != nil {
		return a, err
	}
	disks := make([]*simdisk.Disk, 5)
	for i := range disks {
		disks[i] = simdisk.New(simdisk.Params{Seek: diskSeek, BytesPerSec: diskBW, Spindles: diskSpindles})
	}
	wireFaults(cl, nil, disks)
	client, err := cl.Client()
	if err != nil {
		cl.Close()
		return a, err
	}
	plain := newSystem("MyStore-nocache", mystore.ClusterBackend{Client: client}, nil,
		func() { cl.Close() })
	withoutMs, _, err := cacheReadRun(plain, scale)
	plain.Close()
	if err != nil {
		return a, err
	}
	a.WithCacheMeanMs = withMs
	a.WithoutCacheMeanMs = withoutMs
	a.HitRatePct = hitRate
	return a, nil
}
