//go:build race

package experiments

// raceDetectorEnabled lets the shape tests skip assertions that compare
// throughput between systems: the race detector's ~10x slowdown distorts
// the timing-sensitive experiments beyond usefulness.
const raceDetectorEnabled = true
