package experiments

import (
	"context"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"mystore/internal/bson"
	"mystore/internal/docstore"
	"mystore/internal/transport"
	"mystore/internal/wal"
)

// --- A7: the write path (this PR's tentpole) ---
//
// Three independent toggles, ablated one at a time against the full
// configuration: WAL group commit (vs one fsync per append), the lock-split
// docstore write path (vs the seed's single global writeMu), and the
// multiplexed RPC transport (vs one pooled connection per in-flight call).

// WritePathRow measures one docstore configuration under a 64-goroutine
// durable put storm.
type WritePathRow struct {
	Config      string
	OpsPerSec   float64
	FsyncsPerOp float64
	MeanBatch   float64 // records per group fsync (0 when group commit off)
}

// WritePathAblation is the A7 study.
type WritePathAblation struct {
	Writers int
	Store   []WritePathRow
	// Transport throughput, 64 concurrent callers against one echo server.
	MuxRPS    float64
	LegacyRPS float64
}

// String renders the study.
func (a WritePathAblation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "A7 — write path (group commit / lock split / mux), %d writers\n", a.Writers)
	fmt.Fprintf(&b, "  %-28s %12s %12s %10s\n", "docstore config", "puts/s", "fsyncs/op", "mean batch")
	for _, row := range a.Store {
		fmt.Fprintf(&b, "  %-28s %12.0f %12.3f %10.1f\n", row.Config, row.OpsPerSec, row.FsyncsPerOp, row.MeanBatch)
	}
	fmt.Fprintf(&b, "  transport: %.0f calls/s multiplexed vs %.0f one-call-per-conn\n", a.MuxRPS, a.LegacyRPS)
	return b.String()
}

// runWritePathStoreConfig hammers one durable docstore configuration with
// writers goroutines and returns its throughput and fsync counters.
func runWritePathStoreConfig(name string, opts docstore.Options, writers, ops int) (WritePathRow, error) {
	row := WritePathRow{Config: name}
	dir, err := os.MkdirTemp("", "mystore-ablate-wp-*")
	if err != nil {
		return row, err
	}
	defer os.RemoveAll(dir)
	opts.Dir = dir
	s, err := docstore.Open(opts)
	if err != nil {
		return row, err
	}
	defer s.Close()

	perWriter := ops / writers
	if perWriter < 1 {
		perWriter = 1
	}
	var wg sync.WaitGroup
	var firstErr error
	var errMu sync.Mutex
	start := time.Now()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			coll := s.C("bench")
			for i := 0; i < perWriter; i++ {
				doc := bson.D{
					{Key: "_id", Value: fmt.Sprintf("w%d-%d", w, i)},
					{Key: "val", Value: make([]byte, 512)},
				}
				if _, err := coll.Insert(doc); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if firstErr != nil {
		return row, firstErr
	}
	total := writers * perWriter
	row.OpsPerSec = float64(total) / elapsed.Seconds()
	if st, ok := s.WALStats(); ok && st.Appends > 0 {
		row.FsyncsPerOp = float64(st.Fsyncs) / float64(st.Appends)
		if st.Batches > 0 {
			row.MeanBatch = float64(st.BatchedRecords) / float64(st.Batches)
		}
	}
	return row, nil
}

// runWritePathTransport measures concurrent RPC throughput with and without
// multiplexing.
func runWritePathTransport(callers, calls int) (muxRPS, legacyRPS float64, err error) {
	measure := func(disableMux bool) (float64, error) {
		srv, err := transport.ListenTCP("127.0.0.1:0", transport.TCPOptions{DisableMux: disableMux})
		if err != nil {
			return 0, err
		}
		defer srv.Close()
		srv.SetHandler(func(ctx context.Context, msg transport.Message) (bson.D, error) {
			return bson.D{{Key: "ok", Value: true}}, nil
		})
		cli, err := transport.ListenTCP("127.0.0.1:0", transport.TCPOptions{DisableMux: disableMux})
		if err != nil {
			return 0, err
		}
		defer cli.Close()
		ctx := context.Background()
		var wg sync.WaitGroup
		var callErr error
		var errMu sync.Mutex
		start := time.Now()
		for c := 0; c < callers; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < calls; i++ {
					if _, err := cli.Call(ctx, srv.Addr(), transport.Message{Type: "ping"}); err != nil {
						errMu.Lock()
						if callErr == nil {
							callErr = err
						}
						errMu.Unlock()
						return
					}
				}
			}()
		}
		wg.Wait()
		if callErr != nil {
			return 0, callErr
		}
		return float64(callers*calls) / time.Since(start).Seconds(), nil
	}
	if muxRPS, err = measure(false); err != nil {
		return 0, 0, err
	}
	if legacyRPS, err = measure(true); err != nil {
		return 0, 0, err
	}
	return muxRPS, legacyRPS, nil
}

// RunWritePathAblation runs the A7 study: each tentpole change toggled
// independently against the full configuration, plus the seed (both store
// changes off) as the baseline.
func RunWritePathAblation(writers, ops int) (WritePathAblation, error) {
	if writers <= 0 {
		writers = 64
	}
	if ops <= 0 {
		ops = 2048
	}
	a := WritePathAblation{Writers: writers}
	durable := wal.Options{SyncEveryAppend: true}
	noGC := wal.Options{SyncEveryAppend: true, GroupCommit: wal.GroupCommit{Disable: true}}
	configs := []struct {
		name string
		opts docstore.Options
	}{
		{"full (gc + lock split)", docstore.Options{WAL: durable}},
		{"no group commit", docstore.Options{WAL: noGC}},
		{"no lock split", docstore.Options{WAL: durable, SerializeWritePath: true}},
		{"seed (neither)", docstore.Options{WAL: noGC, SerializeWritePath: true}},
	}
	for _, cfg := range configs {
		row, err := runWritePathStoreConfig(cfg.name, cfg.opts, writers, ops)
		if err != nil {
			return a, err
		}
		a.Store = append(a.Store, row)
	}
	var err error
	if a.MuxRPS, a.LegacyRPS, err = runWritePathTransport(writers, 50); err != nil {
		return a, err
	}
	return a, nil
}
