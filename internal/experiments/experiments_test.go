package experiments

import (
	"strings"
	"testing"
)

// The experiment smoke tests run every figure at Quick scale and assert
// the qualitative shapes the paper reports, not absolute numbers.

// skipShapeUnderRace skips timing-sensitive cross-system comparisons when
// the race detector's slowdown would distort them.
func skipShapeUnderRace(t *testing.T) {
	t.Helper()
	if raceDetectorEnabled {
		t.Skip("timing-shape assertions are unreliable under -race")
	}
}

func TestFig11Shape(t *testing.T) {
	skipShapeUnderRace(t)
	res, err := RunFig11(Quick(), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	byName := map[string]Fig11Row{}
	for _, r := range res.Rows {
		byName[r.System] = r
		if r.RPS <= 0 || r.MBPerSec <= 0 {
			t.Fatalf("%s reported no throughput: %+v", r.System, r)
		}
	}
	// The paper's shape: MyStore (cache + 5 partitions) beats both
	// baselines on read throughput.
	my, fs, sql := byName["MyStore"], byName["ext3-FS"], byName["MySQL-MS"]
	if my.MBPerSec <= fs.MBPerSec || my.MBPerSec <= sql.MBPerSec {
		t.Errorf("MyStore should lead on MB/s: my=%.1f fs=%.1f sql=%.1f",
			my.MBPerSec, fs.MBPerSec, sql.MBPerSec)
	}
	if s := res.String(); !strings.Contains(s, "MyStore") {
		t.Error("String() missing system name")
	}
}

func TestFig12Shape(t *testing.T) {
	res, err := RunFig12(Quick(), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	// Within each system, larger resource classes must cost more TTLB.
	perSystem := map[string]map[string]Fig12Row{}
	for _, r := range res.Rows {
		if perSystem[r.System] == nil {
			perSystem[r.System] = map[string]Fig12Row{}
		}
		perSystem[r.System][r.Class] = r
		if r.MeanTTFBms > r.MeanTTLBms {
			t.Errorf("%s/%s: TTFB %.2f > TTLB %.2f", r.System, r.Class, r.MeanTTFBms, r.MeanTTLBms)
		}
	}
	for name, rows := range perSystem {
		a, okA := rows["a"]
		c, okC := rows["c"]
		if okA && okC && c.MeanTTLBms <= a.MeanTTLBms {
			t.Errorf("%s: class c TTLB %.2fms should exceed class a %.2fms", name, c.MeanTTLBms, a.MeanTTLBms)
		}
	}
}

func TestFig13Shape(t *testing.T) {
	skipShapeUnderRace(t)
	res, err := RunFig13(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// RPS must grow from the first to the last sweep point (more offered
	// load) — the paper's pre-saturation region.
	if res.Rows[len(res.Rows)-1].RPS <= res.Rows[0].RPS {
		t.Errorf("RPS did not grow across the sweep: %+v", res.Rows)
	}
	if s := res.String(); !strings.Contains(s, "processes") {
		t.Error("String() malformed")
	}
}

func TestFig15Balance(t *testing.T) {
	scale := Quick()
	scale.PutItems = 1000
	res, err := RunFig15(scale)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 3000 {
		t.Fatalf("total replicas = %d, want 3000", res.Total)
	}
	if len(res.PerNode) != 5 {
		t.Fatalf("nodes = %d", len(res.PerNode))
	}
	for i, n := range res.PerNode {
		if n == 0 {
			t.Errorf("node %d holds nothing", i)
		}
	}
	if res.SpreadPct > 60 {
		t.Errorf("spread = %.1f%%, want reasonably balanced", res.SpreadPct)
	}
}

func TestFig16FaultArmSlower(t *testing.T) {
	res, err := RunFig16(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if res.NoFaultMeanHits <= 0 || res.FaultMeanHits <= 0 {
		t.Fatalf("empty series: %+v", res)
	}
	// At Quick scale a short run may not include a breakdown, so allow the
	// arms to tie within noise; the fault arm must never lead decisively.
	if res.FaultMeanHits > res.NoFaultMeanHits*1.15 {
		t.Errorf("fault arm (%.1f hits/s) should not lead no-fault (%.1f)",
			res.FaultMeanHits, res.NoFaultMeanHits)
	}
	if s := res.String(); !strings.Contains(s, "no-fault") {
		t.Error("String() malformed")
	}
}

func TestFig17Ordering(t *testing.T) {
	scale := Quick()
	scale.PutItems = 200
	res, err := RunFig17(scale)
	if err != nil {
		t.Fatal(err)
	}
	n := len(Fig17Thresholds)
	if len(res.MyStoreNoFault) != n || len(res.MyStoreFault) != n || len(res.MasterSlave) != n {
		t.Fatalf("series lengths wrong")
	}
	// Monotone cumulative counts.
	for i := 1; i < n; i++ {
		if res.MyStoreNoFault[i] < res.MyStoreNoFault[i-1] {
			t.Fatal("no-fault series not monotone")
		}
	}
	// The paper's ordering at mid thresholds: no-fault >= fault >= m/s.
	mid := n / 2
	if res.MyStoreNoFault[mid] < res.MyStoreFault[mid] {
		t.Errorf("at %v: no-fault %d < fault %d", Fig17Thresholds[mid],
			res.MyStoreNoFault[mid], res.MyStoreFault[mid])
	}
	if s := res.String(); !strings.Contains(s, "MyStore") {
		t.Error("String() malformed")
	}
}

func TestContextScalars(t *testing.T) {
	res, err := RunContext(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if res.LoadMBPerSec <= 0 || res.ReadMBPerSec <= 0 || res.ReadRPS <= 0 {
		t.Fatalf("scalars missing: %+v", res)
	}
}

func TestSoakNoViolations(t *testing.T) {
	res, err := RunSoak(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("soak did nothing")
	}
	if res.Violations != 0 {
		t.Fatalf("soak found %d invariant violations", res.Violations)
	}
}

func TestChaosNoViolations(t *testing.T) {
	res, err := RunChaos(Quick(), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if res.AckedPuts == 0 {
		t.Fatal("chaos acked no writes")
	}
	if res.StrongAckedPuts == 0 {
		t.Fatal("chaos acked no strong writes: invariant 7 was not exercised")
	}
	if res.CrashRestarts < 2 || res.Partitions < 1 {
		t.Fatalf("schedule incomplete: %d crash-restarts, %d partitions", res.CrashRestarts, res.Partitions)
	}
	if v := res.Violations(); v != 0 {
		t.Fatalf("chaos found %d invariant violations:\n%s", v, res.String())
	}
}

func TestAblations(t *testing.T) {
	scale := Quick()
	scale.ReadItems = 1000 // 100 ops per NWR config: enough for stable means
	res, err := RunAblations(scale)
	if err != nil {
		t.Fatal(err)
	}
	// A1: more vnodes, better balance.
	if res.VNodes.SpreadByVNodes[1] <= res.VNodes.SpreadByVNodes[200] {
		t.Errorf("vnodes did not improve balance: %v", res.VNodes.SpreadByVNodes)
	}
	if res.VNodes.ModNMovePct <= res.VNodes.ConsistentMovePct {
		t.Errorf("mod-N (%.1f%%) should remap more than consistent hashing (%.1f%%)",
			res.VNodes.ModNMovePct, res.VNodes.ConsistentMovePct)
	}
	// A2: W=3 writes slower than W=1; W=3 unavailable with a node down.
	byCfg := map[string]NWRAblationRow{}
	for _, r := range res.NWR {
		byCfg[r.Config] = r
	}
	if byCfg["(3,3,1)"].PutMeanMs <= byCfg["(3,1,1)"].PutMeanMs {
		t.Errorf("W=3 puts (%.2fms) should cost more than W=1 (%.2fms)",
			byCfg["(3,3,1)"].PutMeanMs, byCfg["(3,1,1)"].PutMeanMs)
	}
	if byCfg["(3,3,1)"].DownSuccessPct >= 90 {
		t.Errorf("W=3 with a node down and no hints should lose writes, got %.0f%% ok",
			byCfg["(3,3,1)"].DownSuccessPct)
	}
	if byCfg["(3,1,1)"].DownSuccessPct < 99 {
		t.Errorf("W=1 should stay available, got %.0f%% ok", byCfg["(3,1,1)"].DownSuccessPct)
	}
	// A3: hints rescue writes.
	if res.Hints.WithHintsPct < res.Hints.WithoutHintsPct {
		t.Errorf("hints (%.1f%%) should not trail no-hints (%.1f%%)",
			res.Hints.WithHintsPct, res.Hints.WithoutHintsPct)
	}
	// A5: push-pull converges at least as fast as push-only.
	if res.Gossip.PushPullRounds > res.Gossip.PushOnlyRounds {
		t.Errorf("push-pull (%d rounds) slower than push-only (%d)",
			res.Gossip.PushPullRounds, res.Gossip.PushOnlyRounds)
	}
	if s := res.String(); !strings.Contains(s, "A1") {
		t.Error("String() malformed")
	}
}

func TestConsensusAblation(t *testing.T) {
	skipShapeUnderRace(t)
	res, err := RunConsensusAblation(Quick())
	if err != nil {
		t.Fatal(err)
	}
	byCfg := map[string]ConsensusWriteRow{}
	for _, r := range res.Writes {
		byCfg[r.Config] = r
		if r.Errors != 0 {
			t.Errorf("%s: %d write errors", r.Config, r.Errors)
		}
	}
	strong, eventual := byCfg["strong (consensus)"], byCfg["eventual (quorum W)"]
	if strong.Writes == 0 || eventual.Writes == 0 {
		t.Fatalf("missing write rows: %+v", res.Writes)
	}
	// The acceptance headline: linearizable writes cost a log append plus a
	// majority round trip — same order as a quorum write, not 10x. Quick
	// scale is noisy, so gate at 3x rather than the documented ~2x.
	if eventual.P50ms > 0 && strong.P50ms/eventual.P50ms > 3 {
		t.Errorf("strong put p50 %.2fms over eventual %.2fms exceeds 3x", strong.P50ms, eventual.P50ms)
	}
	byRead := map[string]ConsensusReadRow{}
	for _, r := range res.Reads {
		byRead[r.Config] = r
		if r.Errors != 0 {
			t.Errorf("%s: %d read errors", r.Config, r.Errors)
		}
	}
	local, quorum := byRead["strong leader-local"], byRead["eventual quorum (R)"]
	// The lease's point: a leaseholder read touches no peer, a quorum read
	// pays replica round trips over the LAN model.
	if local.P50ms >= quorum.P50ms {
		t.Errorf("leader-local strong read p50 %.3fms should beat quorum read p50 %.3fms",
			local.P50ms, quorum.P50ms)
	}
	f := res.Failover
	if f.DowntimeETs <= 0 || f.DowntimeETs >= 10 {
		t.Errorf("failover downtime %.1f election timeouts, want (0, 10)", f.DowntimeETs)
	}
	if f.Lost != 0 {
		t.Errorf("%d acked strong writes lost across failover", f.Lost)
	}
	if s := res.String(); !strings.Contains(s, "A11") {
		t.Error("String() malformed")
	}
}

func TestReadPathAblation(t *testing.T) {
	skipShapeUnderRace(t)
	res, err := RunReadPathAblation(Quick())
	if err != nil {
		t.Fatal(err)
	}
	byCfg := map[string]ReadPathRow{}
	for _, r := range res.Rows {
		byCfg[r.Config] = r
		if r.Errors != 0 {
			t.Errorf("%s: %d read errors", r.Config, r.Errors)
		}
	}
	full, seed, noHedge := byCfg["full"], byCfg["wait-for-all (seed)"], byCfg["no hedge"]
	// The acceptance headline: quorum-first + hedging cuts p99 by >=5x
	// against the seed's wait-for-all read with one slow replica.
	if full.P99ms <= 0 || seed.P99ms/full.P99ms < 5 {
		t.Errorf("wait-for-all p99 %.2fms / full p99 %.2fms < 5x", seed.P99ms, full.P99ms)
	}
	// Without the hedge the tail collapses back toward the slow replica's
	// round trip whenever the slow node is the primary.
	if noHedge.P99ms <= full.P99ms {
		t.Errorf("no-hedge p99 %.2fms should exceed full p99 %.2fms", noHedge.P99ms, full.P99ms)
	}
	if full.HedgedReads == 0 {
		t.Error("full config never hedged")
	}
	// Coalescing bounds hot-key fan-outs to O(generations).
	hot := res.HotCoalesced
	if hot.Generations >= hot.Reads/4 {
		t.Errorf("coalesced hot key ran %d generations for %d reads", hot.Generations, hot.Reads)
	}
	if res.HotAblated.Generations != res.HotAblated.Reads {
		t.Errorf("uncoalesced hot key: %d generations for %d reads, want equal",
			res.HotAblated.Generations, res.HotAblated.Reads)
	}
	if s := res.String(); !strings.Contains(s, "A8") {
		t.Error("String() malformed")
	}
}
