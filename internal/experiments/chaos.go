package experiments

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mystore"
	"mystore/internal/faults"
)

// ChaosResult reports a chaos soak: randomized Table 2 faults plus directed
// node crash-restarts (WAL recovery on the same directory) and network
// partitions, over a durable 5-node cluster, with the resilience invariants
// checked after heal:
//
//  1. every acknowledged Put is readable with its exact value,
//  2. all hint queues drain to zero,
//  3. no request overran its deadline by more than one replica CallTimeout.
type ChaosResult struct {
	Duration      time.Duration
	Ops           int64
	AckedPuts     int64
	OpFailures    int64 // availability events during chaos (allowed)
	CrashRestarts int
	Partitions    int
	FaultsFired   map[faults.Kind]int64

	LostWrites         int64 // invariant 1 violations
	ValueViolations    int64 // successful mid-chaos read returned wrong bytes
	HintsAtEnd         int   // invariant 2: must be 0
	MaxOvershoot       time.Duration
	DeadlineViolations int64 // invariant 3 violations
	BreakersOpened     int64

	// HedgedReads counts reserve replica reads launched by the hedge timer
	// or primary failures during the soak (informational — chaos makes
	// hedging fire constantly).
	HedgedReads int64
	// ReadQuorumViolations is invariant 4: the read path's tripwire for a
	// quorum-first or batched read that settled with fewer than R responses.
	// Hedged reads must never weaken the R contract, so this must stay 0.
	ReadQuorumViolations int64
	// VersionRegressions is invariant 5: anti-entropy, rebalance and
	// streamed transfers must never replace a record with an older version.
	// Every node's apply path counts such regressions; the sum must stay 0.
	VersionRegressions int64
	// TornTables is invariant 6: nodes run the lsm engine with a memtable
	// small enough that flushes and compactions are continuously in flight,
	// and crashes are kill -9 (in-flight table writes abandoned torn on
	// disk). After heal, every node's table set is checksum-scrubbed: a
	// recovery that loaded a torn or corrupt table counts here. Must be 0.
	TornTables int64

	// StrongAckedPuts counts linearizable writes acknowledged through the CP
	// tier mid-chaos (informational).
	StrongAckedPuts int64
	// LeaderKills counts kill -9s that landed on a node while it led a
	// consensus range with strong proposals in flight (informational — the
	// schedule aims for leaders, so this should be > 0).
	LeaderKills int
	// StrongLost is invariant 7a: an acked strong write — a unique key or a
	// register update — unreadable or rolled back after heal. Must be 0.
	StrongLost int64
	// StrongReorders is invariant 7b: a strong read of a single-writer
	// register returned a sequence older than one the writer had already
	// seen acknowledged — linearizability lost across a leader change.
	// Must be 0.
	StrongReorders int64
}

// Violations totals the invariant breaches; zero means the soak passed.
func (r ChaosResult) Violations() int64 {
	return r.LostWrites + r.ValueViolations + int64(r.HintsAtEnd) + r.DeadlineViolations +
		r.ReadQuorumViolations + r.VersionRegressions + r.TornTables +
		r.StrongLost + r.StrongReorders
}

// String summarizes the run.
func (r ChaosResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos — %v of faults + %d crash-restarts + %d partitions over a durable 5-node cluster\n",
		r.Duration.Round(time.Second), r.CrashRestarts, r.Partitions)
	fmt.Fprintf(&b, "  ops %d (%d acked Puts), op failures during chaos %d (availability events, allowed)\n",
		r.Ops, r.AckedPuts, r.OpFailures)
	fmt.Fprintf(&b, "  faults fired: %v; breakers opened %d times\n", r.FaultsFired, r.BreakersOpened)
	fmt.Fprintf(&b, "  invariant 1 — acked writes lost after heal:   %d\n", r.LostWrites)
	fmt.Fprintf(&b, "  invariant 1b — wrong values served:           %d\n", r.ValueViolations)
	fmt.Fprintf(&b, "  invariant 2 — hints left undelivered:         %d\n", r.HintsAtEnd)
	fmt.Fprintf(&b, "  invariant 3 — deadline overruns > CallTimeout: %d (max overshoot %v)\n",
		r.DeadlineViolations, r.MaxOvershoot.Round(time.Millisecond))
	fmt.Fprintf(&b, "  invariant 4 — reads settled below R quorum:    %d (%d reads hedged)\n",
		r.ReadQuorumViolations, r.HedgedReads)
	fmt.Fprintf(&b, "  invariant 5 — repair regressed record versions: %d\n", r.VersionRegressions)
	fmt.Fprintf(&b, "  invariant 6 — torn/corrupt tables after kill -9: %d\n", r.TornTables)
	fmt.Fprintf(&b, "  invariant 7 — strong writes lost %d / reordered %d (%d acked, %d leader kills)\n",
		r.StrongLost, r.StrongReorders, r.StrongAckedPuts, r.LeaderKills)
	if r.Violations() == 0 {
		fmt.Fprintf(&b, "  PASS: no acked write was lost\n")
	} else {
		fmt.Fprintf(&b, "  FAIL: %d invariant violations\n", r.Violations())
	}
	return b.String()
}

// chaosCallTimeout bounds each replica RPC during the soak; the deadline
// invariant allows at most this much overshoot past an op's own deadline.
const chaosCallTimeout = 300 * time.Millisecond

// RunChaos drives the soak. dir hosts the nodes' durable stores (WAL +
// snapshots); crash-restarted nodes recover from it.
func RunChaos(scale Scale, dir string) (ChaosResult, error) {
	scale = scale.withDefaults()
	result := ChaosResult{Duration: 4 * scale.StepDuration, FaultsFired: map[faults.Kind]int64{}}
	opTimeout := 4 * chaosCallTimeout

	// Nodes run the lsm engine with a deliberately tiny memtable, so the
	// soak's write load keeps flushes and background compactions in flight —
	// which is exactly when the kill -9 crashes below land.
	cl, err := mystore.StartCluster(mystore.ClusterOptions{
		Nodes:              5,
		DataDir:            dir,
		Durable:            true,
		ReplicaCallTimeout: chaosCallTimeout,
		GossipInterval:     100 * time.Millisecond,
		StorageEngine:      "lsm",
		MemtableBytes:      32 << 10,
		StrongRanges:       4,
	})
	if err != nil {
		return result, err
	}
	defer cl.Close()

	// Table 2-shaped plan, with short delays so the compressed soak keeps
	// moving; breakdowns are recovered during the heal phase.
	inj := faults.NewInjector(faults.Plan{
		faults.NetworkException: 0.05,
		faults.DiskIOError:      0.002,
		faults.BlockingProcess:  0.002,
		faults.NodeBreakdown:    0.001,
	}, scale.Seed)
	inj.BlockDelay = 2 * time.Millisecond
	inj.NetworkDelay = 2 * time.Millisecond

	// chaosActive gates every injected fault. OnLocalOp closures are
	// installed once per node lifetime — before the node serves traffic —
	// and never reassigned, so flipping this flag is the only mutation.
	// No simulated disks here: chaos measures survival, not service time,
	// and disk queueing would conflate overload with failure.
	var chaosActive atomic.Bool
	chaosActive.Store(true)
	wireNode := func(node *mystore.Node) {
		addr := node.Addr()
		node.Coordinator().OnLocalOp = func(op string, bytes int) error {
			if !chaosActive.Load() || op == "read-transfer" {
				return nil
			}
			_, err := inj.Roll(addr)
			return err
		}
	}
	cl.Network().SetFault(func(from, to, msgType string) error {
		if chaosActive.Load() && (inj.IsDown(to) || inj.IsDown(from)) {
			return faults.ErrNodeDown
		}
		return nil
	})
	for _, node := range cl.Nodes() {
		wireNode(node)
	}
	client, err := cl.Client()
	if err != nil {
		return result, err
	}

	// Acked-write ledger: every key is written exactly once (unique per
	// writer + sequence), so "readable with its exact value after heal" is
	// unambiguous — no LWW tiebreak can excuse a miss.
	var mu sync.Mutex
	acked := map[string][]byte{}
	var ops, ackedPuts, opFailures, valueViolations, deadlineViolations int64
	var maxOvershoot int64 // nanos, atomically maxed

	noteOvershoot := func(deadline time.Time) {
		over := time.Since(deadline)
		if over <= 0 {
			return
		}
		for {
			prev := atomic.LoadInt64(&maxOvershoot)
			if int64(over) <= prev || atomic.CompareAndSwapInt64(&maxOvershoot, prev, int64(over)) {
				break
			}
		}
		if over > chaosCallTimeout {
			atomic.AddInt64(&deadlineViolations, 1)
		}
	}

	churnCtx, stopChurn := context.WithCancel(context.Background())
	defer stopChurn()
	var writerWG sync.WaitGroup
	const writers = 6
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			rng := rand.New(rand.NewSource(scale.Seed + int64(w)*7919))
			var mine []string // keys this writer has had acked
			for seq := 0; churnCtx.Err() == nil; seq++ {
				opCtx, cancel := context.WithTimeout(context.Background(), opTimeout)
				deadline := time.Now().Add(opTimeout)
				if len(mine) > 0 && rng.Intn(4) == 0 {
					// Read back one of our own acked writes mid-chaos: errors
					// are availability events, wrong bytes are violations.
					key := mine[rng.Intn(len(mine))]
					val, err := client.Get(opCtx, key)
					noteOvershoot(deadline)
					atomic.AddInt64(&ops, 1)
					if err != nil {
						atomic.AddInt64(&opFailures, 1)
					} else {
						mu.Lock()
						want := acked[key]
						mu.Unlock()
						if !bytes.Equal(val, want) {
							atomic.AddInt64(&valueViolations, 1)
						}
					}
					cancel()
					continue
				}
				key := fmt.Sprintf("chaos-%d-%06d", w, seq)
				val := []byte(fmt.Sprintf("val-%d-%06d-%d", w, seq, rng.Int63()))
				err := client.Put(opCtx, key, val)
				noteOvershoot(deadline)
				cancel()
				atomic.AddInt64(&ops, 1)
				if err != nil {
					atomic.AddInt64(&opFailures, 1)
					continue
				}
				atomic.AddInt64(&ackedPuts, 1)
				mu.Lock()
				acked[key] = val
				mu.Unlock()
				mine = append(mine, key)
			}
		}(w)
	}

	// Strong writers (invariant 7). Each owns one register key it updates
	// with a strictly increasing sequence, plus a stream of unique keys —
	// all through the CP tier. After every acked register write the writer
	// reads the register back strongly: a sequence older than its highest
	// acked one means a leader change served a rolled-back prefix, which
	// is exactly what the lease + term fencing must prevent. Failures are
	// availability events (elections in flight); only acked state counts.
	strongAcked := map[string][]byte{}
	regMax := make([]int64, 2)
	for i := range regMax {
		regMax[i] = -1
	}
	var strongAckedPuts, strongReorders int64
	const strongWriters = 2
	for w := 0; w < strongWriters; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			reg := fmt.Sprintf("strongreg-%d", w)
			for seq := int64(0); churnCtx.Err() == nil; seq++ {
				opCtx, cancel := context.WithTimeout(context.Background(), opTimeout)
				key := fmt.Sprintf("strong-%d-%06d", w, seq)
				val := []byte(fmt.Sprintf("sval-%d-%06d", w, seq))
				err := client.StrongPut(opCtx, key, val)
				atomic.AddInt64(&ops, 1)
				if err != nil {
					atomic.AddInt64(&opFailures, 1)
				} else {
					atomic.AddInt64(&strongAckedPuts, 1)
					mu.Lock()
					strongAcked[key] = val
					mu.Unlock()
				}
				if err := client.StrongPut(opCtx, reg, []byte(fmt.Sprintf("%d", seq))); err != nil {
					atomic.AddInt64(&opFailures, 1)
				} else {
					atomic.AddInt64(&strongAckedPuts, 1)
					atomic.StoreInt64(&regMax[w], seq)
				}
				if got, err := client.StrongGet(opCtx, reg); err == nil {
					var have int64
					fmt.Sscanf(string(got), "%d", &have)
					if floor := atomic.LoadInt64(&regMax[w]); floor >= 0 && have < floor {
						atomic.AddInt64(&strongReorders, 1)
					}
				}
				cancel()
			}
		}(w)
	}

	// leaderVictim aims a crash at whichever crashable node currently leads
	// a strong register's range — so the kill -9 lands while that leader
	// has proposals in flight. Node 0 (the gossip seed) stays protected;
	// when no crashable leader exists the pick falls back to random.
	leaderVictim := func(rng *rand.Rand) (int, bool) {
		nodes := cl.Nodes()
		for w := 0; w < strongWriters; w++ {
			reg := fmt.Sprintf("strongreg-%d", w)
			for i := 1; i < len(nodes); i++ {
				if cns := nodes[i].Consensus(); cns != nil && cns.LeadsKey(reg) {
					return i, true
				}
			}
		}
		return 1 + rng.Intn(4), false
	}

	// The fault schedule: two cycles of kill -9 → WAL-recovery restart →
	// partition → heal, spread over the soak window. KillNode abandons the
	// victim's store mid-flight: no flush, no fsync, any in-progress table
	// write left torn on disk — recovery must come from the WAL tail past
	// the last flush checkpoint plus whatever tables committed. Node 0 is
	// the gossip seed and is never crashed (the paper's deployment protects
	// its seed the same way).
	rng := rand.New(rand.NewSource(scale.Seed * 31))
	step := result.Duration / 8
	for cycle := 0; cycle < 2; cycle++ {
		victim, ledRange := leaderVictim(rng)
		if ledRange {
			result.LeaderKills++
		}
		if err := cl.KillNode(victim); err != nil {
			return result, fmt.Errorf("chaos: kill node %d: %w", victim, err)
		}
		time.Sleep(step)
		if _, err := cl.RestartNodeFresh(victim, wireNode); err != nil {
			return result, fmt.Errorf("chaos: restart node %d: %w", victim, err)
		}
		result.CrashRestarts++
		time.Sleep(step)

		a := 1 + rng.Intn(4)
		b := 1 + rng.Intn(4)
		for b == a {
			b = 1 + rng.Intn(4)
		}
		addrs := cl.Addrs()
		cl.Network().Partition(addrs[a], addrs[b])
		result.Partitions++
		time.Sleep(step)
		cl.Network().Heal(addrs[a], addrs[b])
		time.Sleep(step)
	}
	stopChurn()
	writerWG.Wait()

	// Heal: stop injecting, recover broken-down nodes, reopen everything,
	// and let gossip reconverge.
	chaosActive.Store(false)
	for _, down := range inj.Down() {
		inj.Recover(down)
	}
	for i := range cl.Nodes() {
		cl.RestartNode(i)
	}
	cl.WaitConverged(10 * time.Second)

	// Settle: drive the recovery machinery to completion rather than waiting
	// on tick phase — writeback of parked hints, rebalance of records whose
	// owners changed while nodes were out of the ring, and anti-entropy for
	// whatever the first two missed.
	settle := func() {
		for _, node := range cl.Nodes() {
			sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			node.Coordinator().DeliverHints(sctx)
			node.Rebalance(sctx)
			node.AntiEntropyRound(sctx)
			cancel()
		}
	}

	// Invariant 2: hint queues must drain to zero.
	drainDeadline := time.Now().Add(30 * time.Second)
	for {
		settle()
		total := 0
		for _, node := range cl.Nodes() {
			total += node.Coordinator().HintCount()
		}
		if total == 0 || time.Now().After(drainDeadline) {
			result.HintsAtEnd = total
			break
		}
		time.Sleep(200 * time.Millisecond)
	}

	// Invariant 1: every acked Put must be readable with its exact value.
	// Recovery is allowed bounded time; a write still missing when the
	// deadline passes is lost.
	mu.Lock()
	missing := make(map[string][]byte, len(acked))
	for k, v := range acked {
		missing[k] = v
	}
	mu.Unlock()
	verifyDeadline := time.Now().Add(30 * time.Second)
	for len(missing) > 0 {
		for key, want := range missing {
			vctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			got, err := client.Get(vctx, key)
			cancel()
			if err == nil && bytes.Equal(got, want) {
				delete(missing, key)
			} else if err == nil && !bytes.Equal(got, want) {
				// A wrong value can never become right again under LWW of
				// once-written keys; count it immediately.
				result.ValueViolations++
				delete(missing, key)
			}
		}
		if len(missing) == 0 || time.Now().After(verifyDeadline) {
			break
		}
		settle()
	}
	result.LostWrites = int64(len(missing))

	// Invariant 7: every acked strong write must read back — strongly, so
	// the check itself exercises post-heal elections — with its exact
	// value, and each register must sit at or past its writer's highest
	// acked sequence (an older value is an acked update rolled back by a
	// leader change).
	strongMissing := make(map[string][]byte, len(strongAcked))
	for k, v := range strongAcked {
		strongMissing[k] = v
	}
	strongDeadline := time.Now().Add(30 * time.Second)
	for len(strongMissing) > 0 {
		for key, want := range strongMissing {
			vctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			got, err := client.StrongGet(vctx, key)
			cancel()
			if err == nil && bytes.Equal(got, want) {
				delete(strongMissing, key)
			} else if err == nil {
				result.StrongLost++
				delete(strongMissing, key)
			}
		}
		if len(strongMissing) == 0 || time.Now().After(strongDeadline) {
			break
		}
		time.Sleep(200 * time.Millisecond)
	}
	result.StrongLost += int64(len(strongMissing))
	for w := 0; w < strongWriters; w++ {
		floor := atomic.LoadInt64(&regMax[w])
		if floor < 0 {
			continue
		}
		vctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		got, err := client.StrongGet(vctx, fmt.Sprintf("strongreg-%d", w))
		cancel()
		var have int64 = -1
		if err == nil {
			fmt.Sscanf(string(got), "%d", &have)
		}
		if have < floor {
			result.StrongLost++
		}
	}
	result.StrongAckedPuts = strongAckedPuts
	result.StrongReorders = strongReorders

	// Invariant 6: every surviving table passes a full checksum scrub — a
	// torn flush or compaction output was never installed.
	for _, node := range cl.Nodes() {
		if eng := node.Store().Engine(); eng != nil {
			if err := eng.Scrub(); err != nil {
				result.TornTables++
			}
		}
	}

	for _, node := range cl.Nodes() {
		result.BreakersOpened += node.Breakers().Stats().Opened
		st := node.Coordinator().Stats()
		result.HedgedReads += st.HedgedReads
		result.ReadQuorumViolations += st.ReadQuorumViolations
		result.VersionRegressions += node.VersionRegressions()
	}
	result.Ops = ops
	result.AckedPuts = ackedPuts
	result.OpFailures = opFailures
	result.ValueViolations += valueViolations
	result.DeadlineViolations = deadlineViolations
	result.MaxOvershoot = time.Duration(maxOvershoot)
	result.FaultsFired = inj.Counts()
	return result, nil
}
