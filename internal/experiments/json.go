package experiments

// JSON summaries for BENCH_results.json. Each experiment result reduces to
// the headline numbers a reader (or the acceptance checks) wants — MB/s,
// req/s, p95 — plus the full series for the sweep-shaped figures. Keys are
// snake_case so the file diffs cleanly across bench runs.

// JSONSummary converts an experiment result into a marshal-friendly value
// for BENCH_results.json, or nil for results that are not recorded.
func JSONSummary(res any) any {
	switch r := res.(type) {
	case Fig11Result:
		rows := make([]map[string]any, 0, len(r.Rows))
		for _, row := range r.Rows {
			rows = append(rows, map[string]any{
				"system":       row.System,
				"mb_per_sec":   round2(row.MBPerSec),
				"req_per_sec":  round2(row.RPS),
				"mean_ttlb_ms": round2(row.MeanTTLBms),
				"errors":       row.Errors,
			})
		}
		return map[string]any{"rows": rows}
	case Fig12Result:
		rows := make([]map[string]any, 0, len(r.Rows))
		for _, row := range r.Rows {
			rows = append(rows, map[string]any{
				"system":       row.System,
				"class":        row.Class,
				"mean_ttfb_ms": round2(row.MeanTTFBms),
				"mean_ttlb_ms": round2(row.MeanTTLBms),
			})
		}
		return map[string]any{"rows": rows}
	case Fig13Result:
		return fig13JSON(r)
	case Fig15Result:
		return map[string]any{
			"records":    r.Records,
			"per_node":   r.PerNode,
			"total":      r.Total,
			"spread_pct": round2(r.SpreadPct),
		}
	case Fig16Result:
		ratio := 0.0
		if r.NoFaultMeanHits > 0 {
			ratio = r.FaultMeanHits / r.NoFaultMeanHits
		}
		return map[string]any{
			"no_fault_mean_req_per_sec": round2(r.NoFaultMeanHits),
			"fault_mean_req_per_sec":    round2(r.FaultMeanHits),
			"fault_over_no_fault":       round2(ratio),
		}
	case Fig17Result:
		ms := make([]float64, len(r.Thresholds))
		for i, th := range r.Thresholds {
			ms[i] = float64(th.Milliseconds())
		}
		return map[string]any{
			"ops":              r.Ops,
			"thresholds_ms":    ms,
			"mystore_no_fault": r.MyStoreNoFault,
			"mystore_fault":    r.MyStoreFault,
			"master_slave":     r.MasterSlave,
		}
	case AblationResult:
		return map[string]any{"write_path": writePathJSON(r.WritePath)}
	case WritePathAblation:
		return writePathJSON(r)
	case ReadPathAblation:
		return readPathJSON(r)
	case RepairAblation:
		return repairJSON(r)
	case StorageAblation:
		return storageJSON(r)
	case ConsensusAblation:
		return consensusJSON(r)
	default:
		return nil
	}
}

// fig13JSON emits the sweep series plus the scalability headline: MB/s at
// the 800-process point as a fraction of the 200-process rate (the
// write-path PR's acceptance check — the seed regressed >50% here).
func fig13JSON(r Fig13Result) map[string]any {
	rows := make([]map[string]any, 0, len(r.Rows))
	var mbAt200, mbAt800 float64
	for _, row := range r.Rows {
		rows = append(rows, map[string]any{
			"processes":    row.Processes,
			"mean_ttfb_ms": round2(row.MeanTTFBms),
			"p95_ttfb_ms":  round2(row.P95TTFBms),
			"mb_per_sec":   round2(row.MBPerSec),
			"req_per_sec":  round2(row.RPS),
			"error_rate":   round2(row.ErrorRate),
		})
		switch row.Processes {
		case 200:
			mbAt200 = row.MBPerSec
		case 800:
			mbAt800 = row.MBPerSec
		}
	}
	out := map[string]any{"rows": rows}
	if mbAt200 > 0 && mbAt800 > 0 {
		out["mb_per_sec_at_200"] = round2(mbAt200)
		out["mb_per_sec_at_800"] = round2(mbAt800)
		out["sustained_at_800_pct"] = round2(100 * mbAt800 / mbAt200)
	}
	return out
}

func writePathJSON(a WritePathAblation) map[string]any {
	store := make([]map[string]any, 0, len(a.Store))
	var full, seed float64
	for _, row := range a.Store {
		store = append(store, map[string]any{
			"config":        row.Config,
			"puts_per_sec":  round2(row.OpsPerSec),
			"fsyncs_per_op": round2(row.FsyncsPerOp),
			"mean_batch":    round2(row.MeanBatch),
		})
		switch row.Config {
		case "full (gc + lock split)":
			full = row.OpsPerSec
		case "seed (neither)":
			seed = row.OpsPerSec
		}
	}
	out := map[string]any{
		"writers":            a.Writers,
		"store":              store,
		"mux_req_per_sec":    round2(a.MuxRPS),
		"legacy_req_per_sec": round2(a.LegacyRPS),
	}
	if seed > 0 && full > 0 {
		out["full_over_seed"] = round2(full / seed)
	}
	return out
}

// readPathJSON emits the A8 rows plus the tail-latency headline: the seed
// wait-for-all p99 over the full read path's p99 with one slow replica (the
// read-path PR's acceptance check wants ≥5x), and the hot-key coalescing
// bound (replica fan-out generations per client read).
func readPathJSON(a ReadPathAblation) map[string]any {
	rows := make([]map[string]any, 0, len(a.Rows))
	var fullP99, seedP99 float64
	for _, row := range a.Rows {
		rows = append(rows, map[string]any{
			"config":       row.Config,
			"reads":        row.Reads,
			"p50_ms":       round2(row.P50ms),
			"p95_ms":       round2(row.P95ms),
			"p99_ms":       round2(row.P99ms),
			"hedged_reads": row.HedgedReads,
			"errors":       row.Errors,
		})
		switch row.Config {
		case "full":
			fullP99 = row.P99ms
		case "wait-for-all (seed)":
			seedP99 = row.P99ms
		}
	}
	out := map[string]any{
		"readers":                 a.Readers,
		"corpus":                  a.Corpus,
		"slow_replica_one_way_ms": round2(a.SlowOneWayMs),
		"rows":                    rows,
		"hot_key": map[string]any{
			"reads":                   a.HotCoalesced.Reads,
			"generations":             a.HotCoalesced.Generations,
			"coalesced_reads":         a.HotCoalesced.Coalesced,
			"uncoalesced_generations": a.HotAblated.Generations,
		},
	}
	if fullP99 > 0 && seedP99 > 0 {
		out["waitforall_over_full_p99"] = round2(seedP99 / fullP99)
	}
	return out
}

// repairJSON emits the A9 rows plus the repair PR's acceptance headlines:
// seed recovery time over the Merkle+stream recovery time (wants ≥5x), the
// steady-state digest-cost ratio (O(keys) vs O(log keys)), and foreground
// read p99 during throttled repair vs quiescent.
func repairJSON(a RepairAblation) map[string]any {
	rows := make([]map[string]any, 0, len(a.Rows))
	var merkleMs, flatMs, merkleSteady, flatSteady float64
	for _, row := range a.Rows {
		rows = append(rows, map[string]any{
			"config":              row.Config,
			"lost_replicas":       row.Lost,
			"recovery_ms":         round2(row.RecoveryMs),
			"sweeps":              row.Sweeps,
			"digest_bytes":        row.DigestBytes,
			"stream_bytes":        row.StreamBytes,
			"stream_records":      row.StreamRecords,
			"steady_digest_bytes": row.SteadyDigestBytes,
		})
		switch row.Config {
		case "merkle+stream":
			merkleMs, merkleSteady = row.RecoveryMs, float64(row.SteadyDigestBytes)
		case "flat+item (seed)":
			flatMs, flatSteady = row.RecoveryMs, float64(row.SteadyDigestBytes)
		}
	}
	out := map[string]any{
		"records": a.Corpus,
		"rows":    rows,
		"foreground": map[string]any{
			"repair_bandwidth_bps": a.Foreground.BandwidthBps,
			"reads":                a.Foreground.Reads,
			"quiescent_p99_ms":     round2(a.Foreground.QuiescentP99ms),
			"repair_p99_ms":        round2(a.Foreground.RepairP99ms),
			"throttle_wait_ms":     round2(a.Foreground.ThrottleWaitMs),
		},
	}
	if merkleMs > 0 && flatMs > 0 {
		out["seed_over_full_recovery"] = round2(flatMs / merkleMs)
	}
	if merkleSteady > 0 && flatSteady > 0 {
		out["seed_over_full_steady_digest"] = round2(flatSteady / merkleSteady)
	}
	return out
}

// storageJSON emits the A10 rows plus the storage PR's acceptance
// headlines: map restart time over lsm (checkpointed WAL, wants ≥10x), heap
// growth ratio for a dataset ~10x the memtable budget, and the foreground
// p99 penalty while rate-limited compaction runs (wants ≤25%).
func storageJSON(a StorageAblation) map[string]any {
	restart := make([]map[string]any, 0, len(a.Restart))
	for _, row := range a.Restart {
		restart = append(restart, map[string]any{
			"engine":       row.Engine,
			"history_ops":  row.Ops,
			"replayed_ops": row.ReplayedOps,
			"open_ms":      round2(row.OpenMs),
		})
	}
	m := a.Memory
	f := a.Foreground
	out := map[string]any{
		"restart": restart,
		"memory": map[string]any{
			"docs":            m.Docs,
			"dataset_bytes":   m.DatasetBytes,
			"memtable_bytes":  m.MemtableBudget,
			"map_heap_bytes":  m.MapHeapBytes,
			"lsm_heap_bytes":  m.LsmHeapBytes,
			"cold_p99_ms":     round2(m.ColdP99ms),
			"warm_p99_ms":     round2(m.WarmP99ms),
			"cache_hits":      m.CacheHits,
			"cache_misses":    m.CacheMisses,
			"bloom_negatives": m.BloomNegatives,
		},
		"foreground": map[string]any{
			"reads":                    f.Reads,
			"compaction_bandwidth_bps": f.BandwidthBps,
			"idle_p99_ms":              round2(f.IdleP99ms),
			"compacting_p99_ms":        round2(f.CompactingP99ms),
			"compactions":              f.Compactions,
			"compact_bytes":            f.CompactBytes,
			"throttle_wait_ms":         round2(f.ThrottleWaitMs),
		},
	}
	if s := a.restartSpeedup(); s > 0 {
		out["map_over_lsm_restart"] = round2(s)
	}
	if m.LsmHeapBytes > 0 {
		out["map_over_lsm_heap"] = round2(float64(m.MapHeapBytes) / float64(m.LsmHeapBytes))
	}
	if f.IdleP99ms > 0 {
		out["compacting_over_idle_p99"] = round2(f.CompactingP99ms / f.IdleP99ms)
	}
	return out
}

// consensusJSON emits the A11 rows plus the consensus PR's acceptance
// headlines: strong put p50 over eventual put p50 (wants ~2x, not an order
// of magnitude), eventual quorum read p50 over leader-local strong read p50
// (the lease's saved round trips), and failover downtime in election
// timeouts (wants < 10) with zero acked strong writes lost.
func consensusJSON(a ConsensusAblation) map[string]any {
	writes := make([]map[string]any, 0, len(a.Writes))
	var strongP50, eventualP50 float64
	for _, row := range a.Writes {
		writes = append(writes, map[string]any{
			"config":       row.Config,
			"writes":       row.Writes,
			"p50_ms":       round2(row.P50ms),
			"p95_ms":       round2(row.P95ms),
			"puts_per_sec": round2(row.PutsPerSec),
			"errors":       row.Errors,
		})
		switch row.Config {
		case "strong (consensus)":
			strongP50 = row.P50ms
		case "eventual (quorum W)":
			eventualP50 = row.P50ms
		}
	}
	reads := make([]map[string]any, 0, len(a.Reads))
	var localP50, quorumP50 float64
	for _, row := range a.Reads {
		reads = append(reads, map[string]any{
			"config": row.Config,
			"reads":  row.Reads,
			"p50_ms": round2(row.P50ms),
			"p95_ms": round2(row.P95ms),
			"errors": row.Errors,
		})
		switch row.Config {
		case "strong leader-local":
			localP50 = row.P50ms
		case "eventual quorum (R)":
			quorumP50 = row.P50ms
		}
	}
	f := a.Failover
	out := map[string]any{
		"writers": a.Writers,
		"writes":  writes,
		"reads":   reads,
		"failover": map[string]any{
			"election_timeout_ms": round2(f.ElectionTimeoutMs),
			"downtime_ms":         round2(f.DowntimeMs),
			"downtime_ets":        round2(f.DowntimeETs),
			"acked_before_kill":   f.AckedBeforeKill,
			"lost":                f.Lost,
		},
	}
	if eventualP50 > 0 && strongP50 > 0 {
		out["strong_over_eventual_put_p50"] = round2(strongP50 / eventualP50)
	}
	if localP50 > 0 && quorumP50 > 0 {
		out["quorum_over_leader_local_read_p50"] = round2(quorumP50 / localP50)
	}
	return out
}

func round2(f float64) float64 {
	return float64(int64(f*100+0.5)) / 100
}
