package experiments

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"

	"mystore"
	"mystore/internal/baseline/fsstore"
	"mystore/internal/baseline/sqlstore"
	"mystore/internal/cache"
	"mystore/internal/faults"
	"mystore/internal/rest"
	"mystore/internal/simdisk"
)

// system is one storage pattern under test, bound to a RESTful interface
// exactly as the paper binds all three (§6.1).
type system struct {
	name    string
	gateway *rest.Gateway
	httpSrv *httptest.Server
	cleanup []func()
}

func (s *system) URL() string { return s.httpSrv.URL }

func (s *system) Close() {
	s.httpSrv.Close()
	s.gateway.Close()
	for i := len(s.cleanup) - 1; i >= 0; i-- {
		s.cleanup[i]()
	}
}

// newSystem finishes assembly: gateway + HTTP server.
func newSystem(name string, backend rest.Backend, tier *cache.Tier, cleanup ...func()) *system {
	gw := rest.NewGateway(backend, rest.Config{
		Cache:      tier,
		Workers:    32,
		QueueDepth: 64,
	})
	return &system{
		name:    name,
		gateway: gw,
		httpSrv: httptest.NewServer(gw.Handler()),
		cleanup: cleanup,
	}
}

// wireFaults connects simulated disks and (optionally) a Table 2 injector
// to a MyStore cluster. The injector rolls once per node-level operation
// (put / get / hint) at that node, covering all four fault kinds; a node in
// breakdown is additionally unreachable on the wire, so peers see it fail
// exactly as a crashed server would.
func wireFaults(cl *mystore.Cluster, inj *faults.Injector, disks []*simdisk.Disk) {
	if inj != nil {
		cl.Network().SetFault(func(from, to, msgType string) error {
			if inj.IsDown(to) || inj.IsDown(from) {
				return faults.ErrNodeDown
			}
			return nil
		})
	}
	for i, node := range cl.Nodes() {
		wireNodeFaults(node, inj, disks[i])
	}
}

// wireNodeFaults attaches one node's disk model and fault rolls. A node
// restarted with RestartNodeFresh gets a brand-new coordinator, so the
// chaos harness re-wires it through this after every restart.
func wireNodeFaults(node *mystore.Node, inj *faults.Injector, disk *simdisk.Disk) {
	addr := node.Addr()
	node.Coordinator().OnLocalOp = func(op string, bytes int) error {
		if disk != nil {
			disk.Access(bytes)
		}
		if inj == nil || op == "read-transfer" {
			return nil
		}
		_, err := inj.Roll(addr)
		return err
	}
}

// newMyStoreSystem boots the full MyStore stack: a 5-node cluster over the
// simulated LAN, per-node simulated disks, the 4-server cache tier of the
// paper's deployment, and the REST gateway. inj may be nil (no-fault arm).
func newMyStoreSystem(inj *faults.Injector) (*system, *mystore.Cluster, error) {
	cl, err := mystore.StartCluster(mystore.ClusterOptions{
		Nodes:       5,
		N:           3,
		W:           2,
		R:           1,
		LatencyBase: lanBase,
		Bandwidth:   lanBandwidth,
	})
	if err != nil {
		return nil, nil, err
	}
	disks := make([]*simdisk.Disk, 5)
	for i := range disks {
		disks[i] = simdisk.New(simdisk.Params{Seek: diskSeek, BytesPerSec: diskBW, Spindles: diskSpindles})
	}
	wireFaults(cl, inj, disks)
	client, err := cl.Client()
	if err != nil {
		cl.Close()
		return nil, nil, err
	}
	// Four cache servers (deployed on the four normal DB nodes in Fig 10),
	// 64 MB each at laptop scale.
	tier := cache.NewTier(4, 64<<20)
	sys := newSystem("MyStore", mystore.ClusterBackend{Client: client}, tier,
		func() { cl.Close() })
	return sys, cl, nil
}

// newFSSystem is the ext3 baseline: one file server on one simulated disk,
// no cache tier, no replication.
func newFSSystem(dir string) (*system, error) {
	store, err := newFSBackend(dir)
	if err != nil {
		return nil, err
	}
	return newSystem("ext3-FS", store, nil), nil
}

type fsBackend struct {
	inner *fsstore.Store
	disk  *simdisk.Disk
}

func newFSBackend(dir string) (*fsBackend, error) {
	inner, err := fsstore.Open(dir)
	if err != nil {
		return nil, err
	}
	return &fsBackend{
		inner: inner,
		disk:  simdisk.New(simdisk.Params{Seek: diskSeek, BytesPerSec: diskBW, Spindles: diskSpindles}),
	}, nil
}

func (b *fsBackend) Put(ctx context.Context, key string, val []byte) error {
	b.disk.Access(len(val))
	return b.inner.Put(ctx, key, val)
}

func (b *fsBackend) Get(ctx context.Context, key string) ([]byte, error) {
	val, err := b.inner.Get(ctx, key)
	if err != nil {
		return nil, err
	}
	b.disk.Access(len(val))
	return val, nil
}

func (b *fsBackend) Delete(ctx context.Context, key string) error {
	b.disk.Access(0)
	return b.inner.Delete(ctx, key)
}

// newSQLSystem is the MySQL master-slave baseline: a master and two slaves
// each on a simulated disk; the table write lock is held across the
// master's disk write and the synchronous slave writes, and reads are
// served by the master's disk. No cache tier, no partitioning.
func newSQLSystem() *system {
	b := newSQLBackend(nil)
	return newSystem("MySQL-MS", b, nil)
}

type sqlBackend struct {
	inner   *sqlstore.Store
	writeMu sync.Mutex
	disks   []*simdisk.Disk
	inj     *faults.Injector
}

func newSQLBackend(inj *faults.Injector) *sqlBackend {
	disks := make([]*simdisk.Disk, 3)
	for i := range disks {
		disks[i] = simdisk.New(simdisk.Params{Seek: diskSeek, BytesPerSec: diskBW, Spindles: diskSpindles})
	}
	return &sqlBackend{inner: sqlstore.New(2), disks: disks, inj: inj}
}

func (b *sqlBackend) node(i int) string { return fmt.Sprintf("mysql-%d", i) }

func (b *sqlBackend) roll(i int) error {
	if b.inj == nil {
		return nil
	}
	_, err := b.inj.Roll(b.node(i))
	return err
}

func (b *sqlBackend) Put(ctx context.Context, key string, val []byte) error {
	// The table lock is held across the master write and the synchronous
	// replication to both slaves.
	b.writeMu.Lock()
	defer b.writeMu.Unlock()
	for i := 0; i < 3; i++ {
		if err := b.roll(i); err != nil {
			return err
		}
		b.disks[i].Access(len(val))
	}
	return b.inner.Put(ctx, key, val)
}

func (b *sqlBackend) Get(ctx context.Context, key string) ([]byte, error) {
	if err := b.roll(0); err != nil {
		return nil, err
	}
	val, err := b.inner.Get(ctx, key)
	if err != nil {
		return nil, err
	}
	b.disks[0].Access(len(val))
	return val, nil
}

func (b *sqlBackend) Delete(ctx context.Context, key string) error {
	b.writeMu.Lock()
	defer b.writeMu.Unlock()
	for i := 0; i < 3; i++ {
		if err := b.roll(i); err != nil {
			return err
		}
		b.disks[i].Access(0)
	}
	return b.inner.Delete(ctx, key)
}
