package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
	"time"

	"mystore"
	"mystore/internal/bson"
	"mystore/internal/docstore"
	"mystore/internal/faults"
	"mystore/internal/metrics"
	"mystore/internal/simdisk"
	"mystore/internal/workload"
)

// Fig15Result reproduces Fig 15: the replica balance census after loading
// the put corpus with N = 3 on five nodes.
type Fig15Result struct {
	Records   int
	PerNode   []int
	Total     int
	SpreadPct float64 // (max-min)/ideal
}

// String renders the per-node census.
func (r Fig15Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 15 — records in nodes after %d puts with N=3 (expect ~%d per node)\n",
		r.Records, r.Records*3/len(r.PerNode))
	for i, n := range r.PerNode {
		fmt.Fprintf(&b, "  node-%d: %6d replicas\n", i, n)
	}
	fmt.Fprintf(&b, "  total:  %6d (want %d); spread (max-min)/ideal = %.1f%%\n",
		r.Total, r.Records*3, r.SpreadPct)
	return b.String()
}

// RunFig15 loads the corpus and counts replicas per node.
func RunFig15(scale Scale) (Fig15Result, error) {
	scale = scale.withDefaults()
	var result Fig15Result
	cl, err := mystore.StartCluster(mystore.ClusterOptions{Nodes: 5})
	if err != nil {
		return result, err
	}
	defer cl.Close()
	client, err := cl.Client()
	if err != nil {
		return result, err
	}
	ctx := context.Background()
	// Balance depends on key placement, not payload size: store the
	// corpus's keys with small bodies so the census runs at full speed.
	for i := 0; i < scale.PutItems; i++ {
		if err := client.Put(ctx, fmt.Sprintf("record-%07d", i), []byte("x")); err != nil {
			return result, err
		}
	}
	result.Records = scale.PutItems
	// Puts return at the W quorum; wait for the trailing replications.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		total := 0
		for _, node := range cl.Nodes() {
			total += node.Store().C("records").Len()
		}
		if total >= scale.PutItems*3 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	min, max := 1<<31, 0
	for _, node := range cl.Nodes() {
		n := node.Store().C("records").Len()
		result.PerNode = append(result.PerNode, n)
		result.Total += n
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	ideal := float64(result.Records*3) / float64(len(result.PerNode))
	result.SpreadPct = float64(max-min) / ideal * 100
	return result, nil
}

// Fig16Result reproduces Fig 16: successful Puts per second over time,
// no-fault vs fault.
type Fig16Result struct {
	BucketSeconds   float64
	NoFault         []int64
	Fault           []int64
	NoFaultMeanHits float64
	FaultMeanHits   float64
	FaultCounts     map[faults.Kind]int64
}

// String renders the two series side by side.
func (r Fig16Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 16 — successful Puts per second, no-fault vs fault (Table 2 probabilities)\n")
	fmt.Fprintf(&b, "%6s %12s %12s\n", "t(s)", "no-fault", "fault")
	n := len(r.NoFault)
	if len(r.Fault) > n {
		n = len(r.Fault)
	}
	for i := 0; i < n; i++ {
		var a, c int64
		if i < len(r.NoFault) {
			a = r.NoFault[i]
		}
		if i < len(r.Fault) {
			c = r.Fault[i]
		}
		fmt.Fprintf(&b, "%6d %12d %12d\n", i, a, c)
	}
	fmt.Fprintf(&b, "mean hits/s: no-fault %.1f, fault %.1f (fault/no-fault = %.2f)\n",
		r.NoFaultMeanHits, r.FaultMeanHits, r.FaultMeanHits/r.NoFaultMeanHits)
	if len(r.FaultCounts) > 0 {
		fmt.Fprintf(&b, "injected faults:")
		for _, k := range []faults.Kind{faults.NetworkException, faults.DiskIOError, faults.BlockingProcess, faults.NodeBreakdown} {
			if c := r.FaultCounts[k]; c > 0 {
				fmt.Fprintf(&b, " %s=%d", k, c)
			}
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// RunFig16 runs timed Put streams against a no-fault and a fault cluster.
func RunFig16(scale Scale) (Fig16Result, error) {
	scale = scale.withDefaults()
	var result Fig16Result
	corpus := workload.NewCorpus(workload.PutCorpusConfig(500, scale.Seed))
	duration := scale.StepDuration * 3

	runArm := func(inj *faults.Injector) ([]int64, float64, error) {
		cl, err := mystore.StartCluster(mystore.ClusterOptions{
			Nodes: 5, LatencyBase: lanBase, Bandwidth: lanBandwidth,
		})
		if err != nil {
			return nil, 0, err
		}
		defer cl.Close()
		disks := make([]*simdisk.Disk, 5)
		for i := range disks {
			disks[i] = simdisk.New(simdisk.Params{Seek: diskSeek, BytesPerSec: diskBW, Spindles: diskSpindles})
		}
		wireFaults(cl, inj, disks)
		client, err := cl.Client()
		if err != nil {
			return nil, 0, err
		}
		picker := workload.NewGaussianPicker(corpus, scale.Seed)
		series := metrics.NewTimeSeries(time.Now(), time.Second)
		ctx := context.Background()
		res := workload.Run(ctx, workload.Options{
			Processes: scale.LoadProcesses / 4,
			Duration:  duration,
			Seed:      scale.Seed,
		}, func(ctx context.Context, rng *rand.Rand) workload.OpResult {
			it := picker.Pick()
			key := fmt.Sprintf("%s-%d", it.Key, rng.Int63())
			if err := client.Put(ctx, key, it.Payload()); err != nil {
				return workload.OpResult{Err: err}
			}
			series.Record(time.Now())
			return workload.OpResult{Bytes: it.Size}
		})
		mean := res.Throughput.RPS()
		return series.Buckets(), mean, nil
	}

	var err error
	result.BucketSeconds = 1
	if result.NoFault, result.NoFaultMeanHits, err = runArm(nil); err != nil {
		return result, err
	}
	inj := faults.NewInjector(faults.PaperTable2(), scale.Seed)
	if result.Fault, result.FaultMeanHits, err = runArm(inj); err != nil {
		return result, err
	}
	result.FaultCounts = inj.Counts()
	return result, nil
}

// Fig17Thresholds are the consuming-time bins the cumulative counts are
// reported at.
var Fig17Thresholds = []time.Duration{
	1 * time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
	10 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 200 * time.Millisecond, 500 * time.Millisecond,
	1 * time.Second, 2 * time.Second,
}

// Fig17Result reproduces Fig 17: how many Puts complete within each
// consuming time, across three arms.
type Fig17Result struct {
	Ops            int
	Thresholds     []time.Duration
	MyStoreNoFault []int
	MyStoreFault   []int
	MasterSlave    []int
}

// String renders the cumulative table.
func (r Fig17Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 17 — Puts completing within t (of %d), three systems\n", r.Ops)
	fmt.Fprintf(&b, "%10s %16s %14s %18s\n", "t", "MyStore no-fault", "MyStore fault", "MongoDB m/s fault")
	for i, th := range r.Thresholds {
		fmt.Fprintf(&b, "%10s %16d %14d %18d\n", th, r.MyStoreNoFault[i], r.MyStoreFault[i], r.MasterSlave[i])
	}
	return b.String()
}

// RunFig17 measures the Put consuming-time distribution for the three arms.
func RunFig17(scale Scale) (Fig17Result, error) {
	scale = scale.withDefaults()
	result := Fig17Result{Thresholds: Fig17Thresholds}
	corpus := workload.NewCorpus(workload.PutCorpusConfig(500, scale.Seed))
	ops := scale.PutItems

	runMyStoreArm := func(inj *faults.Injector) ([]int, error) {
		cl, err := mystore.StartCluster(mystore.ClusterOptions{
			Nodes: 5, LatencyBase: lanBase, Bandwidth: lanBandwidth,
		})
		if err != nil {
			return nil, err
		}
		defer cl.Close()
		disks := make([]*simdisk.Disk, 5)
		for i := range disks {
			disks[i] = simdisk.New(simdisk.Params{Seek: diskSeek, BytesPerSec: diskBW, Spindles: diskSpindles})
		}
		wireFaults(cl, inj, disks)
		client, err := cl.Client()
		if err != nil {
			return nil, err
		}
		hist := putLatencies(client.Put, corpus, scale, ops)
		return hist.CumulativeWithin(Fig17Thresholds), nil
	}

	var err error
	if result.MyStoreNoFault, err = runMyStoreArm(nil); err != nil {
		return result, err
	}
	if result.MyStoreFault, err = runMyStoreArm(faults.NewInjector(faults.PaperTable2(), scale.Seed)); err != nil {
		return result, err
	}
	result.MasterSlave = runMasterSlaveArm(corpus, scale, ops)
	result.Ops = ops
	return result, nil
}

// putLatencies drives ops puts through put and returns the latency
// histogram of operations that ultimately succeeded (failed quorums are
// retried by the client up to three times, their total time counted — the
// paper measures "the consuming time of every Put operation").
func putLatencies(put func(context.Context, string, []byte) error, corpus *workload.Corpus, scale Scale, ops int) *metrics.Histogram {
	picker := workload.NewGaussianPicker(corpus, scale.Seed)
	hist := metrics.NewHistogram()
	// Eight closed-loop writers: enough concurrency to exercise queueing
	// without the client loop itself dominating the latency distribution.
	procs := scale.LoadProcesses / 8
	if procs < 1 {
		procs = 1
	}
	workload.Run(context.Background(), workload.Options{
		Processes: procs,
		Requests:  ops,
		Seed:      scale.Seed,
	}, func(ctx context.Context, rng *rand.Rand) workload.OpResult {
		it := picker.Pick()
		key := fmt.Sprintf("%s-%d", it.Key, rng.Int63())
		payload := it.Payload()
		start := time.Now()
		var err error
		for attempt := 0; attempt < 3; attempt++ {
			if err = put(ctx, key, payload); err == nil {
				break
			}
			time.Sleep(25 * time.Millisecond) // driver autoconnectretry backoff
		}
		if err != nil {
			return workload.OpResult{Err: err}
		}
		hist.Observe(time.Since(start))
		return workload.OpResult{Bytes: it.Size}
	})
	return hist
}

// runMasterSlaveArm is the paper's comparator: the document store in plain
// master/slave mode (three nodes) under the same fault plan, with the
// client retrying through master unavailability. Master/slave mode has no
// automatic failover, so a node-breakdown fault on the master would end
// the experiment with every remaining write lost; a watchdog models the
// operator-assisted recovery a production deployment relies on, restoring
// a broken node after two seconds. MyStore's arms need no such watchdog —
// that asymmetry is the availability gap the paper measures.
func runMasterSlaveArm(corpus *workload.Corpus, scale Scale, ops int) []int {
	master, _ := docstore.Open(docstore.Options{})
	defer master.Close()
	slave1, _ := docstore.Open(docstore.Options{ReadOnly: true})
	defer slave1.Close()
	slave2, _ := docstore.Open(docstore.Options{ReadOnly: true})
	defer slave2.Close()
	rs := docstore.NewReplicaSet(master, slave1, slave2)

	inj := faults.NewInjector(faults.PaperTable2(), scale.Seed+1)
	disks := make([]*simdisk.Disk, 3)
	for i := range disks {
		disks[i] = simdisk.New(simdisk.Params{Seek: diskSeek, BytesPerSec: diskBW, Spindles: diskSpindles})
	}
	var currentSize atomic.Int64
	rs.BeforeOp = func(node int, kind string) error {
		size := int(currentSize.Load())
		// Every node-level operation pays one LAN hop (client→master or
		// master→slave), the same wire model the MyStore arms run on.
		time.Sleep(lanBase + time.Duration(float64(size)/lanBandwidth*float64(time.Second)))
		disks[node].Access(size)
		_, err := inj.Roll(fmt.Sprintf("ms-%d", node))
		return err
	}

	// Operator watchdog: recover any broken-down node after two seconds.
	watchCtx, stopWatch := context.WithCancel(context.Background())
	defer stopWatch()
	go func() {
		downSince := map[string]time.Time{}
		t := time.NewTicker(100 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-watchCtx.Done():
				return
			case now := <-t.C:
				for i := 0; i < 3; i++ {
					node := fmt.Sprintf("ms-%d", i)
					if !inj.IsDown(node) {
						delete(downSince, node)
						continue
					}
					since, seen := downSince[node]
					if !seen {
						downSince[node] = now
						continue
					}
					if now.Sub(since) >= 2*time.Second {
						inj.Recover(node)
						delete(downSince, node)
						rs.CatchUp()
					}
				}
			}
		}
	}()

	put := func(ctx context.Context, key string, val []byte) error {
		currentSize.Store(int64(len(val)))
		doc := bson.D{
			{Key: "_id", Value: key},
			{Key: "self-key", Value: key},
			{Key: "val", Value: val},
		}
		_, err := rs.Put("records", doc)
		return err
	}
	hist := putLatencies(put, corpus, scale, ops)
	return hist.CumulativeWithin(Fig17Thresholds)
}
