package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mystore"
	"mystore/internal/metrics"
)

// --- A8: the read path (quorum-first + hedging + coalescing) ---
//
// One replica of a 5-node cluster is made slow (+slowOneWay per message leg)
// and the same uniform read load runs against four read-path configurations:
// the full path (quorum-first return at R, hedged reserves, coalescer), the
// hedge ablated, the coalescer ablated, and the seed's wait-for-all-N read.
// Tail latency is the figure of merit: quorum-first plus hedging should cut
// p99 by the slow replica's full round trip. A separate hot-key phase
// measures the coalescer's RPC bound: concurrent reads of one key collapse
// onto shared replica fan-out generations.

// slowOneWay is the extra one-way delivery latency of the slow replica.
const slowOneWay = 40 * time.Millisecond

// ReadPathRow measures one read-path configuration.
type ReadPathRow struct {
	Config string
	Reads  int
	P50ms  float64
	P95ms  float64
	P99ms  float64
	// HedgedReads counts reserve replica reads the configuration launched
	// early (hedge timer or primary failure).
	HedgedReads int64
	Errors      int64
}

// ReadPathHotKey measures the coalescer's fan-out bound under a single-key
// hammer: Generations is the number of replica fan-outs actually run for
// Reads client reads (uncoalesced, it equals Reads).
type ReadPathHotKey struct {
	Reads       int64
	Generations int64
	Coalesced   int64
}

// ReadPathAblation is the A8 study.
type ReadPathAblation struct {
	Readers      int
	Corpus       int
	SlowOneWayMs float64
	Rows         []ReadPathRow
	HotCoalesced ReadPathHotKey // coalescer on
	HotAblated   ReadPathHotKey // coalescer off
}

// String renders the study.
func (a ReadPathAblation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "A8 — read path (quorum-first / hedge / coalesce), %d readers, one replica +%.0fms/leg\n",
		a.Readers, a.SlowOneWayMs)
	fmt.Fprintf(&b, "  %-22s %8s %10s %10s %10s %8s %7s\n", "config", "reads", "p50", "p95", "p99", "hedged", "errors")
	for _, row := range a.Rows {
		fmt.Fprintf(&b, "  %-22s %8d %8.2fms %8.2fms %8.2fms %8d %7d\n",
			row.Config, row.Reads, row.P50ms, row.P95ms, row.P99ms, row.HedgedReads, row.Errors)
	}
	fmt.Fprintf(&b, "  hot key: %d reads -> %d replica fan-out generations coalesced (%d reads piggybacked) vs %d uncoalesced\n",
		a.HotCoalesced.Reads, a.HotCoalesced.Generations, a.HotCoalesced.Coalesced, a.HotAblated.Generations)
	return b.String()
}

// coordStatTotals sums the read-path counters across every node.
func coordStatTotals(cl *mystore.Cluster) (gets, hedged, coalesced int64) {
	for _, node := range cl.Nodes() {
		st := node.Coordinator().Stats()
		gets += st.Gets
		hedged += st.HedgedReads
		coalesced += st.CoalescedReads
	}
	return gets, hedged, coalesced
}

// runReadPathConfig measures one configuration: preload a corpus, slow one
// replica, and drive uniform random reads through the four fast nodes'
// coordinators.
func runReadPathConfig(name string, opts mystore.ClusterOptions, corpus, reads, readers int, seed int64) (ReadPathRow, error) {
	row := ReadPathRow{Config: name, Reads: reads}
	opts.Nodes = 5
	cl, err := mystore.StartCluster(opts)
	if err != nil {
		return row, err
	}
	defer cl.Close()
	nodes := cl.Nodes()
	ctx := context.Background()

	keys := make([]string, corpus)
	val := make([]byte, 512)
	for i := range keys {
		keys[i] = fmt.Sprintf("rp-%05d", i)
		if err := nodes[0].Coordinator().Put(ctx, keys[i], val); err != nil {
			return row, err
		}
	}
	// Put acks at W; wait out the background third replicas so an R=1 read
	// cannot catch an unsupplemented replica mid-measurement.
	deadline := time.Now().Add(30 * time.Second)
	for _, k := range keys {
		for {
			n := 0
			for _, node := range nodes {
				if _, found, _ := node.Coordinator().GetLocal(k); found {
					n++
				}
			}
			if n >= 3 || time.Now().After(deadline) {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}

	// One slow replica: every message leg to or from the last node carries
	// the extra delay on top of the LAN base.
	slow := cl.Addrs()[4]
	cl.Network().SetLatencyModel(func(from, to string, _ int) time.Duration {
		if from == slow || to == slow {
			return lanBase + slowOneWay
		}
		return lanBase
	})

	hist := metrics.NewHistogramCap(reads)
	var errs atomic.Int64
	perReader := reads / readers
	if perReader < 1 {
		perReader = 1
	}
	_, hedged0, _ := coordStatTotals(cl)
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(r)*104729))
			co := nodes[r%4].Coordinator() // the four fast nodes coordinate
			for i := 0; i < perReader; i++ {
				key := keys[rng.Intn(len(keys))]
				t0 := time.Now()
				if _, err := co.Get(ctx, key); err != nil {
					errs.Add(1)
				} else {
					hist.Observe(time.Since(t0))
				}
			}
		}(r)
	}
	wg.Wait()
	_, hedged1, _ := coordStatTotals(cl)

	row.Reads = readers * perReader
	row.P50ms = float64(hist.Quantile(0.50)) / 1e6
	row.P95ms = float64(hist.Quantile(0.95)) / 1e6
	row.P99ms = float64(hist.Quantile(0.99)) / 1e6
	row.HedgedReads = hedged1 - hedged0
	row.Errors = errs.Load()
	return row, nil
}

// runReadPathHotKey hammers a single key with concurrent readers through one
// coordinator and reports how many replica fan-out generations served them.
func runReadPathHotKey(disableCoalesce bool, reads, readers int) (ReadPathHotKey, error) {
	var hk ReadPathHotKey
	cl, err := mystore.StartCluster(mystore.ClusterOptions{
		Nodes:               5,
		DisableReadCoalesce: disableCoalesce,
	})
	if err != nil {
		return hk, err
	}
	defer cl.Close()
	// Latency long enough that a fan-out generation is in flight while the
	// next wave of readers arrives — the window coalescing exploits.
	cl.Network().SetLatencyModel(func(_, _ string, _ int) time.Duration { return time.Millisecond })
	ctx := context.Background()
	nodes := cl.Nodes()
	const key = "hot-key"
	if err := nodes[0].Coordinator().Put(ctx, key, []byte("hot")); err != nil {
		return hk, err
	}
	gets0, _, coalesced0 := coordStatTotals(cl)
	perReader := reads / readers
	if perReader < 1 {
		perReader = 1
	}
	co := nodes[0].Coordinator()
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perReader; i++ {
				co.Get(ctx, key) //nolint:errcheck
			}
		}()
	}
	wg.Wait()
	gets1, _, coalesced1 := coordStatTotals(cl)
	hk.Reads = int64(readers * perReader)
	hk.Generations = gets1 - gets0
	hk.Coalesced = coalesced1 - coalesced0
	return hk, nil
}

// RunReadPathAblation runs the A8 study.
func RunReadPathAblation(scale Scale) (ReadPathAblation, error) {
	scale = scale.withDefaults()
	a := ReadPathAblation{
		Readers:      32,
		Corpus:       scale.ReadItems / 3,
		SlowOneWayMs: float64(slowOneWay) / 1e6,
	}
	if a.Corpus < 40 {
		a.Corpus = 40
	}
	reads := scale.ReadItems * 4

	configs := []struct {
		name string
		opts mystore.ClusterOptions
	}{
		{"full", mystore.ClusterOptions{}},
		{"no hedge", mystore.ClusterOptions{DisableReadHedge: true}},
		{"no coalesce", mystore.ClusterOptions{DisableReadCoalesce: true}},
		{"wait-for-all (seed)", mystore.ClusterOptions{WaitForAllReads: true}},
	}
	for _, cfg := range configs {
		row, err := runReadPathConfig(cfg.name, cfg.opts, a.Corpus, reads, a.Readers, scale.Seed)
		if err != nil {
			return a, err
		}
		a.Rows = append(a.Rows, row)
	}

	hotReads := scale.ReadItems * 4
	var err error
	if a.HotCoalesced, err = runReadPathHotKey(false, hotReads, a.Readers); err != nil {
		return a, err
	}
	if a.HotAblated, err = runReadPathHotKey(true, hotReads, a.Readers); err != nil {
		return a, err
	}
	return a, nil
}
