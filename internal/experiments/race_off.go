//go:build !race

package experiments

// raceDetectorEnabled reports whether the build runs under -race.
const raceDetectorEnabled = false
