package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"mystore"
	"mystore/internal/cluster"
	"mystore/internal/metrics"
	"mystore/internal/nwr"
)

// --- A9: repair & recovery (Merkle anti-entropy + streaming transfer) ---
//
// A loaded 5-node cluster loses one node to a hard crash (diskless, so the
// replacement boots empty) and the repair machinery — rebalance plus
// anti-entropy, exactly what each background tick runs — rebuilds the
// victim's replicas. The same schedule runs under two configurations: the
// full path (per-peer Merkle forests localize divergence in O(log n)
// exchanges, records move in size-bounded streamed batches) and the seed
// path (flat per-record digest exchange, one read+write RPC per record).
// Wall-clock time-to-full-replication and reconciliation metadata volume are
// the figures of merit; a converged steady-state sweep afterwards shows the
// O(keys) vs O(log keys) digest cost directly. A separate foreground phase
// repeats the recovery with the stream throttled and measures client read
// tail latency during active repair against the quiescent baseline.

// RepairRow measures one repair configuration.
type RepairRow struct {
	Config string
	// Lost is how many replicas the crashed node held (and must recover).
	Lost int
	// RecoveryMs is wall-clock time from the replacement node rejoining to
	// full re-replication.
	RecoveryMs float64
	// Sweeps counts full repair sweeps (every node: rebalance + one AE
	// round) the driver ran before the victim was whole.
	Sweeps int
	// DigestBytes is reconciliation metadata shipped during recovery;
	// StreamBytes/StreamRecords the streamed payload volume (zero for the
	// item-at-a-time baseline, which moves records one RPC each).
	DigestBytes   int64
	StreamBytes   int64
	StreamRecords int64
	// SteadyDigestBytes is the metadata cost of one full AE sweep on the
	// converged cluster after recovery — the per-tick background price.
	SteadyDigestBytes int64
}

// RepairForeground measures client reads during throttled repair.
type RepairForeground struct {
	BandwidthBps   int64
	Reads          int
	QuiescentP99ms float64
	RepairP99ms    float64
	ThrottleWaitMs float64
}

// RepairAblation is the A9 study.
type RepairAblation struct {
	Corpus     int
	Rows       []RepairRow
	Foreground RepairForeground
}

// String renders the study.
func (a RepairAblation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "A9 — repair & recovery, 5 nodes, %d records, one diskless crash\n", a.Corpus)
	fmt.Fprintf(&b, "  %-22s %6s %12s %7s %12s %12s %14s\n",
		"config", "lost", "recovery", "sweeps", "digest", "streamed", "steady digest")
	for _, row := range a.Rows {
		fmt.Fprintf(&b, "  %-22s %6d %10.0fms %7d %10dB %10dB %12dB\n",
			row.Config, row.Lost, row.RecoveryMs, row.Sweeps,
			row.DigestBytes, row.StreamBytes, row.SteadyDigestBytes)
	}
	var merkle, flat RepairRow
	for _, row := range a.Rows {
		switch row.Config {
		case "merkle+stream":
			merkle = row
		case "flat+item (seed)":
			flat = row
		}
	}
	if merkle.RecoveryMs > 0 && flat.RecoveryMs > 0 {
		fmt.Fprintf(&b, "  recovery speedup (seed/full): %.1fx; steady-state digest ratio: %.1fx\n",
			flat.RecoveryMs/merkle.RecoveryMs,
			ratioOr1(float64(flat.SteadyDigestBytes), float64(merkle.SteadyDigestBytes)))
	}
	fmt.Fprintf(&b, "  foreground under %dKB/s-throttled repair: %d reads, p99 %.2fms quiescent vs %.2fms repairing (throttle stalled %.0fms)\n",
		a.Foreground.BandwidthBps/1024, a.Foreground.Reads,
		a.Foreground.QuiescentP99ms, a.Foreground.RepairP99ms, a.Foreground.ThrottleWaitMs)
	return b.String()
}

func ratioOr1(num, den float64) float64 {
	if den <= 0 {
		return 1
	}
	return num / den
}

// sumAEStats totals the anti-entropy/transfer counters across the cluster.
func sumAEStats(cl *mystore.Cluster) cluster.AEStats {
	var t cluster.AEStats
	for _, node := range cl.Nodes() {
		s := node.AEStats()
		t.Rounds += s.Rounds
		t.FallbackRounds += s.FallbackRounds
		t.DigestBytes += s.DigestBytes
		t.LeavesDiverged += s.LeavesDiverged
		t.StreamBatches += s.StreamBatches
		t.StreamRecords += s.StreamRecords
		t.StreamBytes += s.StreamBytes
		t.ThrottleWaitNanos += s.ThrottleWaitNanos
		t.VersionRegressions += s.VersionRegressions
	}
	return t
}

// repairSweep runs one full repair sweep: every node rebalances and runs one
// anti-entropy round — the repair work one background tick performs.
func repairSweep(ctx context.Context, cl *mystore.Cluster) {
	for _, node := range cl.Nodes() {
		node.Rebalance(ctx)
		node.AntiEntropyRound(ctx)
	}
}

// replicaCount returns how many record replicas node i holds.
func replicaCount(node *mystore.Node) int {
	return node.Store().C(nwr.RecordCollection).Len()
}

// loadAndSettle boots a 5-node cluster, loads records valBytes-sized values,
// and drives repair sweeps until every record reaches all three replicas.
func loadAndSettle(opts mystore.ClusterOptions, records, valBytes int) (*mystore.Cluster, error) {
	opts.Nodes = 5
	cl, err := mystore.StartCluster(opts)
	if err != nil {
		return nil, err
	}
	ctx := context.Background()
	co := cl.Nodes()[0].Coordinator()
	val := make([]byte, valBytes)
	for i := 0; i < records; i++ {
		if err := co.Put(ctx, fmt.Sprintf("rr-%06d", i), val); err != nil {
			cl.Close()
			return nil, fmt.Errorf("preload: %w", err)
		}
	}
	deadline := time.Now().Add(90 * time.Second)
	for {
		total := 0
		for _, node := range cl.Nodes() {
			total += replicaCount(node)
		}
		if total >= 3*records {
			return cl, nil
		}
		if time.Now().After(deadline) {
			cl.Close()
			return nil, fmt.Errorf("preload never reached full replication: %d/%d replicas", total, 3*records)
		}
		repairSweep(ctx, cl)
	}
}

// crashAndRecover crashes node victim (diskless — the replacement boots
// empty), rejoins it, and drives repair sweeps until it is whole again.
func crashAndRecover(cl *mystore.Cluster, victim int) (lost, sweeps int, elapsed time.Duration, err error) {
	ctx := context.Background()
	lost = replicaCount(cl.Nodes()[victim])
	if lost == 0 {
		return 0, 0, 0, fmt.Errorf("victim node %d held no replicas", victim)
	}
	if err := cl.CrashNode(victim); err != nil {
		return lost, 0, 0, err
	}
	fresh, err := cl.RestartNodeFresh(victim)
	if err != nil {
		return lost, 0, 0, err
	}
	if !cl.WaitConverged(10 * time.Second) {
		return lost, 0, 0, fmt.Errorf("replacement node never rejoined the ring")
	}
	start := time.Now()
	deadline := start.Add(120 * time.Second)
	for replicaCount(fresh) < lost {
		if time.Now().After(deadline) {
			return lost, sweeps, time.Since(start),
				fmt.Errorf("recovery stalled: %d/%d replicas after %d sweeps", replicaCount(fresh), lost, sweeps)
		}
		sweeps++
		repairSweep(ctx, cl)
	}
	return lost, sweeps, time.Since(start), nil
}

// runRepairConfig measures one configuration's crash recovery.
func runRepairConfig(name string, opts mystore.ClusterOptions, records int, seed int64) (RepairRow, error) {
	row := RepairRow{Config: name}
	opts.Seed = seed
	opts.LatencyBase = lanBase
	opts.Bandwidth = lanBandwidth
	opts.GossipInterval = 50 * time.Millisecond
	cl, err := loadAndSettle(opts, records, 512)
	if err != nil {
		return row, err
	}
	defer cl.Close()

	before := sumAEStats(cl)
	lost, sweeps, elapsed, err := crashAndRecover(cl, 4)
	if err != nil {
		return row, err
	}
	after := sumAEStats(cl)
	row.Lost = lost
	row.Sweeps = sweeps
	row.RecoveryMs = float64(elapsed) / 1e6
	row.DigestBytes = after.DigestBytes - before.DigestBytes
	row.StreamBytes = after.StreamBytes - before.StreamBytes
	row.StreamRecords = after.StreamRecords - before.StreamRecords

	// Steady state: one full AE sweep on the now-converged cluster — the
	// recurring background cost a tick pays when nothing diverged.
	ctx := context.Background()
	s0 := sumAEStats(cl)
	for _, node := range cl.Nodes() {
		node.AntiEntropyRound(ctx)
	}
	row.SteadyDigestBytes = sumAEStats(cl).DigestBytes - s0.DigestBytes

	if vr := sumAEStats(cl).VersionRegressions; vr != 0 {
		return row, fmt.Errorf("%s: repair regressed %d record versions", name, vr)
	}
	return row, nil
}

// runRepairForeground measures client read p99 during bandwidth-throttled
// recovery against the same cluster's quiescent p99. Values are 4 KiB here
// so the lost replica set comfortably exceeds the throttle's burst
// allowance — the repair runs for many seconds, pinned to the cap, while
// the reads are measured.
func runRepairForeground(records, reads, readers int, seed int64) (RepairForeground, error) {
	fg := RepairForeground{BandwidthBps: 128 << 10, Reads: reads}
	cl, err := loadAndSettle(mystore.ClusterOptions{
		Seed:            seed,
		LatencyBase:     lanBase,
		Bandwidth:       lanBandwidth,
		GossipInterval:  50 * time.Millisecond,
		RepairBandwidth: fg.BandwidthBps,
	}, records, 4096)
	if err != nil {
		return fg, err
	}
	defer cl.Close()
	ctx := context.Background()

	measure := func() float64 {
		hist := metrics.NewHistogramCap(reads)
		perReader := reads / readers
		if perReader < 1 {
			perReader = 1
		}
		nodes := cl.Nodes()
		var wg sync.WaitGroup
		for r := 0; r < readers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed + int64(r)*104729))
				co := nodes[r%4].Coordinator() // the four surviving nodes
				for i := 0; i < perReader; i++ {
					key := fmt.Sprintf("rr-%06d", rng.Intn(records))
					t0 := time.Now()
					if _, err := co.Get(ctx, key); err == nil {
						hist.Observe(time.Since(t0))
					}
				}
			}(r)
		}
		wg.Wait()
		return float64(hist.Quantile(0.99)) / 1e6
	}

	fg.QuiescentP99ms = measure()

	// Crash, rejoin, and measure reads while a background driver repairs the
	// victim through the throttle.
	if err := cl.CrashNode(4); err != nil {
		return fg, err
	}
	if _, err := cl.RestartNodeFresh(4); err != nil {
		return fg, err
	}
	if !cl.WaitConverged(10 * time.Second) {
		return fg, fmt.Errorf("replacement node never rejoined the ring")
	}
	t0 := sumAEStats(cl).ThrottleWaitNanos
	driveCtx, stopDriver := context.WithCancel(ctx)
	var driver sync.WaitGroup
	driver.Add(1)
	go func() {
		defer driver.Done()
		deadline := time.Now().Add(60 * time.Second)
		for driveCtx.Err() == nil && time.Now().Before(deadline) {
			repairSweep(driveCtx, cl)
		}
	}()
	fg.RepairP99ms = measure()
	stopDriver()
	driver.Wait()
	fg.ThrottleWaitMs = float64(sumAEStats(cl).ThrottleWaitNanos-t0) / 1e6
	return fg, nil
}

// RunRepairAblation runs the A9 study.
func RunRepairAblation(scale Scale) (RepairAblation, error) {
	scale = scale.withDefaults()
	a := RepairAblation{Corpus: scale.PutItems}

	configs := []struct {
		name string
		opts mystore.ClusterOptions
	}{
		{"merkle+stream", mystore.ClusterOptions{}},
		{"flat+item (seed)", mystore.ClusterOptions{DisableMerkleAE: true, DisableStreamTransfer: true}},
	}
	for _, cfg := range configs {
		row, err := runRepairConfig(cfg.name, cfg.opts, a.Corpus, scale.Seed)
		if err != nil {
			return a, err
		}
		a.Rows = append(a.Rows, row)
	}

	// The foreground phase needs enough data that the throttle bites (the
	// bucket's burst floor is 256 KiB per node); 4 KiB values over at least
	// 1000 records keep the repair pinned to the cap for many seconds.
	fgRecords := a.Corpus
	if fgRecords < 1000 {
		fgRecords = 1000
	}
	var err error
	a.Foreground, err = runRepairForeground(fgRecords, a.Corpus*2, 16, scale.Seed)
	return a, err
}
