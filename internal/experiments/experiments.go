// Package experiments regenerates every figure in the paper's evaluation
// section (§6) plus the ablation studies DESIGN.md calls out. Each
// experiment is a pure function from a Scale to a result struct that knows
// how to print itself in the shape the paper reports; cmd/mystore-bench and
// the repository's bench_test.go are thin callers.
//
// All three compared systems run against identical simulated hardware
// (internal/simdisk for storage service time, the MemNetwork LAN model for
// the wire), so differences come from architecture — the cache tier, the
// consistent-hash partitioning, the replication protocol — not from host
// effects. Absolute numbers therefore differ from the paper's testbed;
// the shapes (who wins, where curves flatten) are the reproduction target.
package experiments

import (
	"time"
)

// Scale sizes an experiment run. The zero value takes defaults matching a
// laptop-scale but faithful run; Quick shrinks everything for smoke tests
// and testing.B iterations.
type Scale struct {
	// ReadItems is the corpus size for the read experiments (Figs 11-14).
	ReadItems int
	// PutItems is the operation count for the put experiments (Figs 15-17).
	PutItems int
	// Processes is the client-process sweep for Figs 13-14.
	Processes []int
	// StepDuration bounds each measured run (per system or sweep point).
	StepDuration time.Duration
	// LoadProcesses is the fixed client concurrency for non-sweep runs.
	LoadProcesses int
	// Seed makes runs reproducible.
	Seed int64
}

func (s Scale) withDefaults() Scale {
	if s.ReadItems <= 0 {
		s.ReadItems = 1500
	}
	if s.PutItems <= 0 {
		s.PutItems = 10000
	}
	if len(s.Processes) == 0 {
		s.Processes = []int{25, 50, 100, 200, 400, 800, 1200, 1600, 2000}
	}
	if s.StepDuration <= 0 {
		s.StepDuration = 3 * time.Second
	}
	if s.LoadProcesses <= 0 {
		s.LoadProcesses = 64
	}
	if s.Seed == 0 {
		s.Seed = 20090925 // the paper's acceptance date
	}
	return s
}

// Quick returns a Scale small enough for unit tests and testing.B loops.
func Quick() Scale {
	return Scale{
		ReadItems:     120,
		PutItems:      300,
		Processes:     []int{8, 32, 128},
		StepDuration:  300 * time.Millisecond,
		LoadProcesses: 16,
		Seed:          7,
	}
}

// Hardware models shared by every system (documented in EXPERIMENTS.md).
const (
	lanBase      = 150 * time.Microsecond // per-message LAN overhead
	lanBandwidth = 110e6                  // gigabit wire, bytes/sec
	diskSeek     = 100 * time.Microsecond
	diskBW       = 100e6
	diskSpindles = 2
)
