package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"time"

	"mystore/internal/bson"
	"mystore/internal/docstore"
	"mystore/internal/lsm"
	"mystore/internal/metrics"
	"mystore/internal/wal"
)

// --- A10: storage engine (map vs lsm) ---
//
// Three claims are measured against a single document store, one per phase:
//
//  1. Restart. The map engine replays its full WAL history on open (absent
//     an explicit snapshot); the lsm engine checkpoints the WAL on every
//     memtable flush, so open replays only the unflushed tail. Both engines
//     apply the same op history, close, and reopen under a timer.
//  2. Memory. The map engine keeps every decoded document resident; the lsm
//     engine keeps the memtable plus a block cache. A dataset ~10x the
//     memtable budget is loaded into each and the post-GC heap growth
//     compared, then the lsm store is reopened cold and random gets are
//     timed cold (cache empty) and warm.
//  3. Foreground interference. With a compaction backlog accumulated and
//     background compaction rate-limited by the token bucket, random-get
//     p99 is measured with compaction paused and again with it running
//     (plus a concurrent writer keeping flushes coming). The bucket should
//     keep the two within shouting distance.

// StorageRestartRow measures one engine's reopen cost.
type StorageRestartRow struct {
	Engine      string
	Ops         int
	ReplayedOps uint64
	OpenMs      float64
}

// StorageMemory compares resident heap for a dataset ~10x the lsm
// memtable budget, plus lsm read latency cold and warm.
type StorageMemory struct {
	Docs           int
	DatasetBytes   int64
	MemtableBudget int64
	MapHeapBytes   int64
	LsmHeapBytes   int64
	ColdP99ms      float64
	WarmP99ms      float64
	CacheHits      int64
	CacheMisses    int64
	BloomNegatives int64
}

// StorageForeground measures read p99 against an idle vs an actively
// compacting engine.
type StorageForeground struct {
	Reads           int
	BandwidthBps    int64
	IdleP99ms       float64
	CompactingP99ms float64
	Compactions     int64
	CompactBytes    int64
	ThrottleWaitMs  float64
}

// StorageAblation is the A10 study.
type StorageAblation struct {
	Restart    []StorageRestartRow
	Memory     StorageMemory
	Foreground StorageForeground
}

// String renders the study.
func (a StorageAblation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "A10 — storage engine: map (seed) vs lsm\n")
	fmt.Fprintf(&b, "  restart after %d-op history (clean close, no explicit snapshot):\n", restartOps(a))
	for _, row := range a.Restart {
		fmt.Fprintf(&b, "    %-4s  replayed %6d ops, open %8.1fms\n", row.Engine, row.ReplayedOps, row.OpenMs)
	}
	if s := a.restartSpeedup(); s > 0 {
		fmt.Fprintf(&b, "    checkpointed restart speedup (map/lsm): %.1fx\n", s)
	}
	m := a.Memory
	fmt.Fprintf(&b, "  memory, %d docs (%.1f MiB ≈ %.0fx the %d KiB memtable):\n",
		m.Docs, float64(m.DatasetBytes)/(1<<20),
		ratioOr1(float64(m.DatasetBytes), float64(m.MemtableBudget)), m.MemtableBudget>>10)
	fmt.Fprintf(&b, "    heap growth: map %.1f MiB, lsm %.1f MiB (%.1fx less)\n",
		float64(m.MapHeapBytes)/(1<<20), float64(m.LsmHeapBytes)/(1<<20),
		ratioOr1(float64(m.MapHeapBytes), float64(m.LsmHeapBytes)))
	fmt.Fprintf(&b, "    lsm random get p99: %.2fms cold, %.2fms warm (cache %d hits / %d misses, %d bloom negatives)\n",
		m.ColdP99ms, m.WarmP99ms, m.CacheHits, m.CacheMisses, m.BloomNegatives)
	f := a.Foreground
	fmt.Fprintf(&b, "  foreground under %dKB/s-throttled compaction: %d reads, p99 %.2fms idle vs %.2fms compacting",
		f.BandwidthBps/1024, f.Reads, f.IdleP99ms, f.CompactingP99ms)
	if f.IdleP99ms > 0 {
		fmt.Fprintf(&b, " (+%.0f%%)", 100*(f.CompactingP99ms-f.IdleP99ms)/f.IdleP99ms)
	}
	fmt.Fprintf(&b, "\n    %d compactions moved %.1f MiB, throttle stalled %.0fms\n",
		f.Compactions, float64(f.CompactBytes)/(1<<20), f.ThrottleWaitMs)
	return b.String()
}

func restartOps(a StorageAblation) int {
	if len(a.Restart) > 0 {
		return a.Restart[0].Ops
	}
	return 0
}

func (a StorageAblation) restartSpeedup() float64 {
	var mapMs, lsmMs float64
	for _, row := range a.Restart {
		switch row.Engine {
		case "map":
			mapMs = row.OpenMs
		case "lsm":
			lsmMs = row.OpenMs
		}
	}
	if mapMs <= 0 || lsmMs <= 0 {
		return 0
	}
	return mapMs / lsmMs
}

// storageDoc builds one workload document: a fixed-size opaque value under a
// sequential key.
func storageDoc(i, valBytes int) bson.D {
	return bson.D{
		{Key: "_id", Value: fmt.Sprintf("doc-%07d", i)},
		{Key: "val", Value: make([]byte, valBytes)},
	}
}

// applyHistory writes an op history: inserts with a 25% chance of instead
// updating an already-written key, so the history exercises overwrites too.
func applyHistory(s *docstore.Store, ops, valBytes int, seed int64) error {
	c := s.C("records")
	rng := rand.New(rand.NewSource(seed))
	written := 0
	for i := 0; i < ops; i++ {
		if written > 0 && rng.Intn(4) == 0 {
			doc := storageDoc(rng.Intn(written), valBytes)
			if err := c.Update(doc); err != nil {
				return err
			}
			continue
		}
		if _, err := c.Insert(storageDoc(written, valBytes)); err != nil {
			return err
		}
		written++
	}
	return nil
}

// smallStorage is the lsm tuning the ablation runs under: budgets small
// enough that laptop-scale histories still flush, checkpoint and compact.
func smallStorage() lsm.Tuning {
	return lsm.Tuning{
		MemtableBytes:    256 << 10,
		BlockBytes:       4 << 10,
		BlockCacheBytes:  256 << 10,
		L0CompactTrigger: 4,
		LevelBaseBytes:   1 << 20,
		TargetFileBytes:  512 << 10,
	}
}

func storageOpts(dir, engine string) docstore.Options {
	return docstore.Options{
		Dir:     dir,
		WAL:     wal.Options{SegmentSize: 1 << 20},
		Engine:  engine,
		Storage: smallStorage(),
	}
}

// runStorageRestart measures one engine's reopen after an op history.
func runStorageRestart(dir, engine string, ops int, seed int64) (StorageRestartRow, error) {
	row := StorageRestartRow{Engine: engine, Ops: ops}
	s, err := docstore.Open(storageOpts(dir, engine))
	if err != nil {
		return row, err
	}
	if err := applyHistory(s, ops, 64, seed); err != nil {
		s.Close()
		return row, err
	}
	if err := s.Close(); err != nil {
		return row, err
	}

	t0 := time.Now()
	s2, err := docstore.Open(storageOpts(dir, engine))
	if err != nil {
		return row, err
	}
	row.OpenMs = float64(time.Since(t0)) / 1e6
	row.ReplayedOps = s2.ReplayedOps()
	// Sanity: the reopened store serves the history.
	if n := s2.C("records").Len(); n == 0 {
		s2.Close()
		return row, fmt.Errorf("storage %s: reopened store is empty", engine)
	}
	return row, s2.Close()
}

// heapAfterGC returns the live heap after a full collection.
func heapAfterGC() int64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return int64(m.HeapAlloc)
}

// measureGetP99 times random gets over [0, docs) with `readers` concurrent
// goroutines and returns the p99 in milliseconds.
func measureGetP99(s *docstore.Store, docs, reads, readers int, seed int64) float64 {
	hist := metrics.NewHistogramCap(reads)
	perReader := reads / readers
	if perReader < 1 {
		perReader = 1
	}
	c := s.C("records")
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(r)*15485863))
			for i := 0; i < perReader; i++ {
				key := fmt.Sprintf("doc-%07d", rng.Intn(docs))
				t0 := time.Now()
				if _, ok := c.Get(key); ok {
					hist.Observe(time.Since(t0))
				}
			}
		}(r)
	}
	wg.Wait()
	return float64(hist.Quantile(0.99)) / 1e6
}

// runStorageMemory loads a dataset ~10x the lsm memtable budget into each
// engine and compares post-GC heap growth, then reopens the lsm store and
// times random gets cold and warm.
func runStorageMemory(mapDir, lsmDir string, seed int64) (StorageMemory, error) {
	tun := smallStorage()
	const valBytes = 512
	docs := int(10 * tun.MemtableBytes / (valBytes + 48))
	m := StorageMemory{Docs: docs, MemtableBudget: tun.MemtableBytes}

	load := func(dir, engine string) (*docstore.Store, error) {
		s, err := docstore.Open(storageOpts(dir, engine))
		if err != nil {
			return nil, err
		}
		c := s.C("records")
		for i := 0; i < docs; i++ {
			doc := storageDoc(i, valBytes)
			enc, _ := bson.Marshal(doc)
			m.DatasetBytes += int64(len(enc))
			if _, err := c.Insert(doc); err != nil {
				s.Close()
				return nil, err
			}
		}
		return s, nil
	}

	m.DatasetBytes = 0
	base := heapAfterGC()
	ms, err := load(mapDir, "map")
	if err != nil {
		return m, err
	}
	m.MapHeapBytes = heapAfterGC() - base
	mapDataset := m.DatasetBytes
	if err := ms.Close(); err != nil {
		return m, err
	}

	m.DatasetBytes = 0
	base = heapAfterGC()
	ls, err := load(lsmDir, "lsm")
	if err != nil {
		return m, err
	}
	if err := ls.Compact(); err != nil { // flush: tables on disk, memtable empty
		ls.Close()
		return m, err
	}
	if err := ls.Engine().CompactNow(); err != nil {
		ls.Close()
		return m, err
	}
	m.LsmHeapBytes = heapAfterGC() - base
	m.DatasetBytes = mapDataset
	if err := ls.Close(); err != nil {
		return m, err
	}

	// Cold reopen: block cache empty, every get pages table blocks in.
	ls, err = docstore.Open(storageOpts(lsmDir, "lsm"))
	if err != nil {
		return m, err
	}
	defer ls.Close()
	reads := docs
	if reads > 4000 {
		reads = 4000
	}
	m.ColdP99ms = measureGetP99(ls, docs, reads, 8, seed)
	m.WarmP99ms = measureGetP99(ls, docs, reads, 8, seed) // same key stream
	st := ls.Engine().Stats()
	m.CacheHits = st.BlockCacheHits
	m.CacheMisses = st.BlockCacheMisses
	m.BloomNegatives = st.BloomNegatives
	return m, nil
}

// runStorageForeground builds a compaction backlog with compaction paused,
// measures read p99 against the idle engine, then resumes the rate-limited
// compactor (with a writer keeping flushes coming) and measures again.
func runStorageForeground(dir string, reads int, seed int64) (StorageForeground, error) {
	fg := StorageForeground{Reads: reads, BandwidthBps: 8 << 20}
	tun := smallStorage()
	tun.MemtableBytes = 128 << 10
	tun.CompactionBandwidth = fg.BandwidthBps
	opts := storageOpts(dir, "lsm")
	opts.Storage = tun
	s, err := docstore.Open(opts)
	if err != nil {
		return fg, err
	}
	defer s.Close()
	eng := s.Engine()
	eng.PauseCompaction(true)

	const valBytes = 512
	docs := int(20 * tun.MemtableBytes / (valBytes + 48))
	c := s.C("records")
	for i := 0; i < docs; i++ {
		if _, err := c.Insert(storageDoc(i, valBytes)); err != nil {
			return fg, err
		}
	}
	if err := s.Compact(); err != nil { // drain the flush queue; L0 is piled up
		return fg, err
	}

	fg.IdleP99ms = measureGetP99(s, docs, reads, 8, seed)

	// Resume compaction against the accumulated backlog and keep a writer
	// running so flushes keep feeding it while reads are measured.
	before := eng.Stats()
	eng.PauseCompaction(false)
	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		rng := rand.New(rand.NewSource(seed * 17))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			doc := storageDoc(rng.Intn(docs), valBytes)
			if err := c.Update(doc); err != nil {
				return
			}
			if i%64 == 0 {
				time.Sleep(time.Millisecond)
			}
		}
	}()
	fg.CompactingP99ms = measureGetP99(s, docs, reads, 8, seed+1)
	close(stop)
	writer.Wait()
	if err := eng.CompactNow(); err != nil {
		return fg, err
	}
	after := eng.Stats()
	fg.Compactions = after.Compactions - before.Compactions
	fg.CompactBytes = after.CompactBytesOut - before.CompactBytesOut
	fg.ThrottleWaitMs = float64(after.ThrottleWaitNanos-before.ThrottleWaitNanos) / 1e6
	return fg, nil
}

// RunStorageAblation runs the A10 study. dir hosts the stores.
func RunStorageAblation(scale Scale, dir string) (StorageAblation, error) {
	scale = scale.withDefaults()
	a := StorageAblation{}

	ops := scale.PutItems * 10 // default 100k-op history
	for _, engine := range []string{"map", "lsm"} {
		row, err := runStorageRestart(fmt.Sprintf("%s/restart-%s", dir, engine), engine, ops, scale.Seed)
		if err != nil {
			return a, fmt.Errorf("storage restart (%s): %w", engine, err)
		}
		a.Restart = append(a.Restart, row)
	}

	var err error
	a.Memory, err = runStorageMemory(dir+"/mem-map", dir+"/mem-lsm", scale.Seed)
	if err != nil {
		return a, fmt.Errorf("storage memory: %w", err)
	}

	a.Foreground, err = runStorageForeground(dir+"/fg", scale.PutItems*2, scale.Seed)
	if err != nil {
		return a, fmt.Errorf("storage foreground: %w", err)
	}
	return a, nil
}
