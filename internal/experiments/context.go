package experiments

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"sync"
	"time"

	"mystore"
	"mystore/internal/faults"
	"mystore/internal/simdisk"
	"mystore/internal/workload"
)

// ContextResult reproduces §6.1's scalar context numbers: the bulk-load
// throughput (paper: ~6 MB/s), the steady read throughput (~11 MB/s) and
// request rate (236 req/s at 125 offered req/s).
type ContextResult struct {
	LoadMBPerSec float64
	ReadMBPerSec float64
	ReadRPS      float64
}

// String renders the scalars.
func (r ContextResult) String() string {
	return fmt.Sprintf("§6.1 context — bulk load %.2f MB/s; steady read %.2f MB/s at %.1f req/s\n",
		r.LoadMBPerSec, r.ReadMBPerSec, r.ReadRPS)
}

// RunContext measures the bulk-load and steady-read scalars on the full
// MyStore stack.
func RunContext(scale Scale) (ContextResult, error) {
	scale = scale.withDefaults()
	var result ContextResult
	sys, _, err := newMyStoreSystem(nil)
	if err != nil {
		return result, err
	}
	defer sys.Close()
	corpus := workload.NewCorpus(workload.ReadCorpusConfig(scale.ReadItems, scale.Seed))

	// Bulk load through the REST interface, 8 concurrent loaders.
	client := newHTTPClient(scale.LoadProcesses)
	start := time.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	itemCh := make(chan workload.Item, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range itemCh {
				resp, err := client.Post(sys.URL()+"/data/"+it.Key, "application/octet-stream",
					bytes.NewReader(it.Payload()))
				if err != nil {
					errCh <- err
					return
				}
				io.Copy(io.Discard, resp.Body) //nolint:errcheck
				resp.Body.Close()
			}
		}()
	}
	for _, it := range corpus.Items {
		itemCh <- it
	}
	close(itemCh)
	wg.Wait()
	select {
	case err := <-errCh:
		return result, err
	default:
	}
	result.LoadMBPerSec = float64(corpus.TotalBytes()) / 1e6 / time.Since(start).Seconds()

	// Steady read.
	res := workload.Run(context.Background(), workload.Options{
		Processes: scale.LoadProcesses,
		Duration:  scale.StepDuration,
		Seed:      scale.Seed,
	}, httpReadOp(client, sys.URL(), func(rng *rand.Rand) workload.Item {
		return corpus.Items[rng.Intn(len(corpus.Items))]
	}))
	result.ReadMBPerSec = res.Throughput.MBPerSec()
	result.ReadRPS = res.Throughput.RPS()
	return result, nil
}

// SoakResult is the shortened stand-in for the paper's 7×24h stability run:
// mixed CRUD under Table 2 faults and membership churn, with invariants
// checked continuously.
type SoakResult struct {
	Duration    time.Duration
	Ops         int64
	Failures    int64
	Violations  int64
	FaultsFired map[faults.Kind]int64
	ChurnEvents int
}

// String summarizes the run.
func (r SoakResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§6.1 soak — %v of mixed CRUD under faults and churn\n", r.Duration.Round(time.Second))
	fmt.Fprintf(&b, "  ops %d, op failures %d (%.2f%%), churn events %d\n",
		r.Ops, r.Failures, 100*float64(r.Failures)/float64(max64(r.Ops, 1)), r.ChurnEvents)
	fmt.Fprintf(&b, "  INVARIANT VIOLATIONS: %d (acked writes must stay readable)\n", r.Violations)
	return b.String()
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// RunSoak drives the soak for roughly 4x the step duration.
func RunSoak(scale Scale) (SoakResult, error) {
	scale = scale.withDefaults()
	result := SoakResult{Duration: 4 * scale.StepDuration}
	cl, err := mystore.StartCluster(mystore.ClusterOptions{
		Nodes: 5, LatencyBase: lanBase / 4, Bandwidth: lanBandwidth,
	})
	if err != nil {
		return result, err
	}
	defer cl.Close()
	disks := make([]*simdisk.Disk, 5)
	for i := range disks {
		disks[i] = simdisk.New(simdisk.Params{Seek: diskSeek / 4, BytesPerSec: diskBW, Spindles: diskSpindles})
	}
	// Short-failure-only plan: the soak's churn injects its own outages.
	inj := faults.NewInjector(faults.Plan{
		faults.NetworkException: 0.05,
		faults.DiskIOError:      0.002,
		faults.BlockingProcess:  0.002,
	}, scale.Seed)
	inj.BlockDelay = 2 * time.Millisecond
	inj.NetworkDelay = 2 * time.Millisecond // keep the short soak moving
	wireFaults(cl, inj, disks)
	client, err := cl.Client()
	if err != nil {
		return result, err
	}

	// Acked-write ledger for the invariant check.
	var mu sync.Mutex
	acked := map[string][]byte{}

	ctx, cancel := context.WithTimeout(context.Background(), result.Duration)
	defer cancel()

	// Churn goroutine: periodically bounce a node (short failures).
	churnDone := make(chan struct{})
	go func() {
		defer close(churnDone)
		rng := rand.New(rand.NewSource(scale.Seed * 3))
		for {
			select {
			case <-ctx.Done():
				return
			case <-time.After(result.Duration / 6):
			}
			victim := 1 + rng.Intn(4) // never the seed
			cl.StopNode(victim)
			result.ChurnEvents++
			select {
			case <-ctx.Done():
				cl.RestartNode(victim)
				return
			case <-time.After(result.Duration / 12):
			}
			cl.RestartNode(victim)
			result.ChurnEvents++
		}
	}()

	res := workload.Run(ctx, workload.Options{
		Processes: scale.LoadProcesses / 4,
		Duration:  result.Duration,
		ThinkMin:  0,
		ThinkMax:  2 * time.Millisecond,
		Seed:      scale.Seed,
	}, func(ctx context.Context, rng *rand.Rand) workload.OpResult {
		switch rng.Intn(10) {
		case 0, 1, 2: // write
			key := fmt.Sprintf("soak-%06d", rng.Intn(2000))
			val := []byte(fmt.Sprintf("v-%d", rng.Int63()))
			if err := client.Put(ctx, key, val); err != nil {
				return workload.OpResult{Err: err}
			}
			mu.Lock()
			acked[key] = val
			mu.Unlock()
			return workload.OpResult{Bytes: len(val)}
		case 3: // delete
			key := fmt.Sprintf("soak-%06d", rng.Intn(2000))
			if err := client.Delete(ctx, key); err != nil {
				return workload.OpResult{Err: err}
			}
			mu.Lock()
			delete(acked, key)
			mu.Unlock()
			return workload.OpResult{Bytes: 0}
		default: // read + invariant check
			mu.Lock()
			var key string
			for k := range acked {
				key = k
				break
			}
			mu.Unlock()
			if key == "" {
				return workload.OpResult{Bytes: 0}
			}
			val, err := client.Get(ctx, key)
			if err != nil {
				// Reads may fail transiently under churn (quorum loss); a
				// failure is an availability event, not a correctness
				// violation. A success returning stale/garbage is.
				return workload.OpResult{Err: err}
			}
			if len(val) == 0 || val[0] != 'v' {
				mu.Lock()
				result.Violations++
				mu.Unlock()
			}
			return workload.OpResult{Bytes: len(val)}
		}
	})
	<-churnDone
	result.Ops = res.Throughput.Ops
	result.Failures = res.Throughput.Errors
	result.FaultsFired = inj.Counts()
	return result, nil
}
