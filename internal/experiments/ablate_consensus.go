package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mystore"
	"mystore/internal/metrics"
)

// --- A11: the CP replication tier (per-range consensus + leader leases) ---
//
// The same 5-node cluster serves both tiers, and the same client drives the
// same write load through each: eventual quorum puts (W acks, hints on
// failure) against strong puts (replicated through the range's consensus
// log, acked at majority commit). The cost of linearizability is the figure
// of merit: strong writes pay a log append plus a majority round trip and
// should land within ~2x of eventual writes, not an order of magnitude.
//
// The read phase measures what the leases buy: a strong read served on the
// range's leaseholder touches no peer (a lease check plus a local read),
// while an eventual quorum read pays R replica round trips over the LAN
// model. A client-routed strong read adds one client->leader hop.
//
// The failover phase kills a range's leader outright (kill -9, no goodbye)
// with acked strong writes in its log, then measures how long strong
// writes to that range stay unavailable: the next election plus the new
// leader's no-op barrier. Downtime is reported in election timeouts; every
// write acked before the kill must still be readable after it.

// ConsensusWriteRow measures one write configuration.
type ConsensusWriteRow struct {
	Config     string
	Writes     int
	P50ms      float64
	P95ms      float64
	PutsPerSec float64
	Errors     int64
}

// ConsensusReadRow measures one read configuration.
type ConsensusReadRow struct {
	Config string
	Reads  int
	P50ms  float64
	P95ms  float64
	Errors int64
}

// ConsensusFailover measures strong-write availability across a leader kill.
type ConsensusFailover struct {
	ElectionTimeoutMs float64
	// DowntimeMs is the gap from the kill to the first strong write acked
	// by the range's new leader.
	DowntimeMs float64
	// DowntimeETs is the same gap in election timeouts (acceptance: < 10).
	DowntimeETs float64
	// AckedBeforeKill strong writes were in the dead leader's log; Lost
	// counts those unreadable after failover (must be 0).
	AckedBeforeKill int
	Lost            int
}

// ConsensusAblation is the A11 study.
type ConsensusAblation struct {
	Writers  int
	Writes   []ConsensusWriteRow
	Reads    []ConsensusReadRow
	Failover ConsensusFailover
}

// String renders the study.
func (a ConsensusAblation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "A11 — CP tier (per-range consensus + leader leases), %d writers\n", a.Writers)
	fmt.Fprintf(&b, "  %-24s %8s %10s %10s %12s %7s\n", "write config", "writes", "p50", "p95", "puts/s", "errors")
	for _, row := range a.Writes {
		fmt.Fprintf(&b, "  %-24s %8d %8.2fms %8.2fms %12.0f %7d\n",
			row.Config, row.Writes, row.P50ms, row.P95ms, row.PutsPerSec, row.Errors)
	}
	fmt.Fprintf(&b, "  %-24s %8s %10s %10s\n", "read config", "reads", "p50", "p95")
	for _, row := range a.Reads {
		fmt.Fprintf(&b, "  %-24s %8d %8.2fms %8.2fms\n", row.Config, row.Reads, row.P50ms, row.P95ms)
	}
	f := a.Failover
	fmt.Fprintf(&b, "  failover: leader killed with %d acked strong writes; strong writes back in %.0fms (%.1f election timeouts), %d lost\n",
		f.AckedBeforeKill, f.DowntimeMs, f.DowntimeETs, f.Lost)
	return b.String()
}

// consensusET is the election timeout the study runs at; failover downtime
// is reported as a multiple of it.
const consensusET = 150 * time.Millisecond

func consensusClusterOptions() mystore.ClusterOptions {
	return mystore.ClusterOptions{
		Nodes:                 5,
		LatencyBase:           lanBase,
		Bandwidth:             lanBandwidth,
		StrongRanges:          4,
		StrongElectionTimeout: consensusET,
	}
}

// runConsensusWrites drives writes writes through put, writers at a time,
// and returns the latency row.
func runConsensusWrites(name string, writes, writers int, put func(ctx context.Context, key string, val []byte) error) ConsensusWriteRow {
	row := ConsensusWriteRow{Config: name}
	hist := metrics.NewHistogramCap(writes)
	var errs atomic.Int64
	perWriter := writes / writers
	if perWriter < 1 {
		perWriter = 1
	}
	ctx := context.Background()
	val := []byte("consensus-ablation-value")
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("%s-%d-%05d", name[:2], w, i)
				t0 := time.Now()
				if err := put(ctx, key, val); err != nil {
					errs.Add(1)
				} else {
					hist.Observe(time.Since(t0))
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	row.Writes = writers * perWriter
	row.P50ms = float64(hist.Quantile(0.50)) / 1e6
	row.P95ms = float64(hist.Quantile(0.95)) / 1e6
	if elapsed > 0 {
		row.PutsPerSec = float64(row.Writes) / elapsed
	}
	row.Errors = errs.Load()
	return row
}

// runConsensusReads measures reads of preloaded keys through get.
func runConsensusReads(name string, keys []string, rounds int, seed int64, get func(ctx context.Context, key string) error) ConsensusReadRow {
	row := ConsensusReadRow{Config: name}
	hist := metrics.NewHistogramCap(rounds)
	rng := rand.New(rand.NewSource(seed))
	ctx := context.Background()
	var errs int64
	for i := 0; i < rounds; i++ {
		key := keys[rng.Intn(len(keys))]
		t0 := time.Now()
		if err := get(ctx, key); err != nil {
			errs++
		} else {
			hist.Observe(time.Since(t0))
		}
	}
	row.Reads = rounds
	row.P50ms = float64(hist.Quantile(0.50)) / 1e6
	row.P95ms = float64(hist.Quantile(0.95)) / 1e6
	row.Errors = errs
	return row
}

// leaderFor returns the node currently leading key's range, or nil.
func leaderFor(cl *mystore.Cluster, key string) *mystore.Node {
	for _, node := range cl.Nodes() {
		if cns := node.Consensus(); cns != nil && cns.LeadsKey(key) {
			return node
		}
	}
	return nil
}

// runConsensusFailover kills the leader of a loaded range and measures the
// strong-write outage plus durability of the writes acked before the kill.
func runConsensusFailover(scale Scale) (ConsensusFailover, error) {
	f := ConsensusFailover{ElectionTimeoutMs: float64(consensusET) / 1e6}
	cl, err := mystore.StartCluster(consensusClusterOptions())
	if err != nil {
		return f, err
	}
	defer cl.Close()
	client, err := cl.Client()
	if err != nil {
		return f, err
	}
	ctx := context.Background()

	// Find a key whose range leader is not node 0 (the client's bootstrap
	// contact survives, like chaos keeps its seed node up), and load the
	// leader's log with acked strong writes the failover must preserve.
	var probe string
	var victim int
	for k := 0; victim == 0 && k < 256; k++ {
		probe = fmt.Sprintf("fo-probe-%d", k)
		if err := client.StrongPut(ctx, probe, []byte("x")); err != nil {
			return f, err
		}
		for i, node := range cl.Nodes() {
			if i > 0 && node.Consensus().LeadsKey(probe) {
				victim = i
			}
		}
	}
	if victim == 0 {
		return f, fmt.Errorf("no range led away from node 0 after 256 probes")
	}
	n := scale.ReadItems / 2
	if n < 20 {
		n = 20
	}
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("fo-%s-%05d", probe, i)
		if err := client.StrongPut(ctx, keys[i], []byte(keys[i])); err != nil {
			return f, err
		}
	}
	f.AckedBeforeKill = len(keys) + 1

	if err := cl.KillNode(victim); err != nil {
		return f, err
	}
	killed := time.Now()

	// Strong writes to the dead leader's range stall until a successor wins
	// the election and commits its no-op barrier; measure the gap to the
	// first post-kill ack.
	deadline := killed.Add(30 * consensusET)
	for {
		opCtx, cancel := context.WithTimeout(ctx, 5*consensusET)
		err := client.StrongPut(opCtx, probe, []byte("post-failover"))
		cancel()
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return f, fmt.Errorf("strong writes still unavailable %v after leader kill: %v", time.Since(killed), err)
		}
	}
	down := time.Since(killed)
	f.DowntimeMs = float64(down) / 1e6
	f.DowntimeETs = float64(down) / float64(consensusET)

	for _, k := range keys {
		got, err := client.StrongGet(ctx, k)
		if err != nil || string(got) != k {
			f.Lost++
		}
	}
	return f, nil
}

// RunConsensusAblation runs the A11 study.
func RunConsensusAblation(scale Scale) (ConsensusAblation, error) {
	scale = scale.withDefaults()
	a := ConsensusAblation{Writers: 8}
	writes := scale.ReadItems * 2

	cl, err := mystore.StartCluster(consensusClusterOptions())
	if err != nil {
		return a, err
	}
	defer cl.Close()
	client, err := cl.Client()
	if err != nil {
		return a, err
	}
	ctx := context.Background()

	// Warm every range's election before timing anything: the lazy first
	// proposal of each range pays the initial election, which is failover
	// cost (measured below), not steady-state write cost.
	for i := 0; i < 64; i++ {
		if err := client.StrongPut(ctx, fmt.Sprintf("warm-%d", i), []byte("w")); err != nil {
			return a, err
		}
	}

	a.Writes = append(a.Writes,
		runConsensusWrites("eventual (quorum W)", writes, a.Writers, client.Put),
		runConsensusWrites("strong (consensus)", writes, a.Writers, client.StrongPut),
	)

	// Each tier reads its own corpus: strong-written keys live on their
	// range's consensus replicas (lease-readable on the leader), eventual
	// keys on their per-key NWR owner set (quorum-readable) — the rows
	// compare path cost, not cross-tier placement.
	n := scale.ReadItems
	if n < 40 {
		n = 40
	}
	strongKeys := make([]string, n)
	eventualKeys := make([]string, n)
	for i := range strongKeys {
		strongKeys[i] = fmt.Sprintf("rd-strong-%05d", i)
		if err := client.StrongPut(ctx, strongKeys[i], []byte("read-corpus")); err != nil {
			return a, err
		}
		eventualKeys[i] = fmt.Sprintf("rd-ev-%05d", i)
		if err := client.Put(ctx, eventualKeys[i], []byte("read-corpus")); err != nil {
			return a, err
		}
	}
	rounds := scale.ReadItems * 4
	a.Reads = append(a.Reads,
		runConsensusReadRowLocal(cl, strongKeys, rounds, scale.Seed),
		runConsensusReads("strong via client", strongKeys, rounds, scale.Seed+1, func(ctx context.Context, key string) error {
			_, err := client.StrongGet(ctx, key)
			return err
		}),
		runConsensusReads("eventual quorum (R)", eventualKeys, rounds, scale.Seed+2, func(ctx context.Context, key string) error {
			_, err := client.Get(ctx, key)
			return err
		}),
	)

	a.Failover, err = runConsensusFailover(scale)
	return a, err
}

// runConsensusReadRowLocal measures strong reads issued directly on each
// key's leaseholder — the no-RPC path the leases exist for.
func runConsensusReadRowLocal(cl *mystore.Cluster, keys []string, rounds int, seed int64) ConsensusReadRow {
	return runConsensusReads("strong leader-local", keys, rounds, seed, func(ctx context.Context, key string) error {
		leader := leaderFor(cl, key)
		if leader == nil {
			return fmt.Errorf("no leader for %s", key)
		}
		_, err := leader.StrongGet(ctx, key)
		return err
	})
}
