// Package lsm implements the log-structured storage engine under the
// document store: a mutable memtable absorbing writes, immutable memtables
// queued for flush, and leveled immutable SSTables with per-table bloom
// filters and a shared sharded block cache. The engine owns no log of its
// own — the docstore's WAL is the recovery log — but it tracks the highest
// WAL LSN each flushed table covers and exposes a checkpoint (the first LSN
// not yet durable in tables), so the owner can truncate the WAL after every
// flush and a restart replays only the short unflushed tail instead of the
// full history (the Taurus log/page separation).
//
// Reads consult memtable → immutable memtables (newest first) → L0 tables
// (newest first) → L1..Ln (one candidate table per level), with bloom
// filters short-circuiting tables that cannot hold the key. Background
// compaction merges runs down the levels, rate-limited through a byte token
// bucket so foreground latency stays flat while it runs.
package lsm

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"mystore/internal/cache"
	"mystore/internal/trace"
)

// ErrClosed is returned by operations on a closed engine.
var ErrClosed = errors.New("lsm: engine is closed")

// Tuning holds the engine's performance knobs; the zero value takes
// defaults sized for tests and single-node deployments.
type Tuning struct {
	// MemtableBytes rotates the mutable memtable to the flush queue once its
	// payload crosses this budget. Default 4 MiB.
	MemtableBytes int64
	// BlockBytes is the SSTable data-block target size. Default 4 KiB.
	BlockBytes int
	// BlockCacheBytes bounds the shared block cache. Default 32 MiB.
	BlockCacheBytes int64
	// BloomBitsPerKey sizes per-table bloom filters. Default 10 (~1% FP).
	BloomBitsPerKey int
	// L0CompactTrigger is the L0 table count that starts an L0→L1
	// compaction. Default 4.
	L0CompactTrigger int
	// LevelBaseBytes is the L1 size limit; each deeper level is LevelFanout
	// times larger. Default 8 MiB.
	LevelBaseBytes int64
	// LevelFanout is the size ratio between adjacent levels. Default 10.
	LevelFanout int
	// TargetFileBytes splits compaction output runs into tables of roughly
	// this size. Default 2 MiB.
	TargetFileBytes int64
	// CompactionBandwidth caps compaction I/O (bytes read plus written per
	// second) through a token bucket, so background merging cannot starve
	// foreground reads and writes. Zero means unthrottled.
	CompactionBandwidth int64
	// MaxImmutable is the flush-queue depth at which writers stall (the
	// write-stall backpressure every LSM needs so an overrun flusher cannot
	// accumulate unbounded frozen memtables). Default 4.
	MaxImmutable int
}

func (t Tuning) withDefaults() Tuning {
	if t.MemtableBytes <= 0 {
		t.MemtableBytes = 4 << 20
	}
	if t.BlockBytes <= 0 {
		t.BlockBytes = DefaultBlockBytes
	}
	if t.BlockCacheBytes <= 0 {
		t.BlockCacheBytes = 32 << 20
	}
	if t.BloomBitsPerKey <= 0 {
		t.BloomBitsPerKey = DefaultBloomBitsPerKey
	}
	if t.L0CompactTrigger <= 0 {
		t.L0CompactTrigger = 4
	}
	if t.LevelBaseBytes <= 0 {
		t.LevelBaseBytes = 8 << 20
	}
	if t.LevelFanout <= 0 {
		t.LevelFanout = 10
	}
	if t.TargetFileBytes <= 0 {
		t.TargetFileBytes = 2 << 20
	}
	if t.MaxImmutable <= 0 {
		t.MaxImmutable = 4
	}
	return t
}

// Options configure an Engine.
type Options struct {
	// Dir is the directory holding SSTables and the manifest. Required.
	Dir string
	Tuning
	// Checkpoint, when non-nil, is invoked after each flush's manifest
	// commit with the new checkpoint LSN (the first LSN not yet durable in
	// SSTables). The docstore wires it to WAL truncation.
	Checkpoint func(lsn uint64)
	// Tracer, when non-nil, records memtable.flush and compaction.run spans.
	Tracer *trace.Collector
}

// engineCounters are the engine's atomic stats, shared with table readers.
type engineCounters struct {
	flushes           atomic.Int64
	flushBytes        atomic.Int64
	compactions       atomic.Int64
	compactBytesIn    atomic.Int64
	compactBytesOut   atomic.Int64
	bloomNegatives    atomic.Int64
	blockCacheHits    atomic.Int64
	blockCacheMisses  atomic.Int64
	throttleWaitNanos atomic.Int64
}

// Engine is one log-structured store instance. Writers must be externally
// serialized (the docstore's writeMu); reads and scans are safe for
// concurrent use with the single writer and with background flush and
// compaction.
type Engine struct {
	opts   Options
	bcache *cache.Server

	// mu guards the version fields below. Writers hold it exclusively only
	// for the in-memory memtable insert; readers snapshot the version (and
	// pin tables) under the read lock and do all disk I/O outside it.
	mu         sync.Mutex
	cond       *sync.Cond // imm-queue backpressure + flush completion
	mem        *memtable
	imm        []*memtable // oldest first
	levels     [][]*table  // levels[0] newest-first; deeper levels key-ordered
	nextFile   uint64
	checkpoint uint64
	closed     bool
	flushErr   error // sticky: a failed flush poisons the engine

	crashed atomic.Bool
	paused  atomic.Bool

	// compactMu serializes compactions (background loop vs CompactNow).
	compactMu sync.Mutex
	// manifestMu orders manifest writes with the version updates they record.
	manifestMu sync.Mutex

	throttle *rateBucket

	flushC   chan struct{}
	compactC chan struct{}
	quit     chan struct{}
	wg       sync.WaitGroup

	counters engineCounters
}

// Open opens (creating if needed) an engine in opts.Dir: it reads the
// manifest, deletes unreferenced and temporary files left by a crash, opens
// every live table (validating index, bloom and props checksums), and
// starts the background flusher and compactor.
func Open(opts Options) (*Engine, error) {
	if opts.Dir == "" {
		return nil, errors.New("lsm: Dir is required")
	}
	opts.Tuning = opts.Tuning.withDefaults()
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("lsm: create dir: %w", err)
	}
	man, err := readManifest(opts.Dir)
	if err != nil {
		return nil, err
	}
	if err := removeUnreferenced(opts.Dir, man); err != nil {
		return nil, err
	}
	e := &Engine{
		opts:       opts,
		bcache:     cache.NewServerShards(opts.BlockCacheBytes, cache.DefaultShards),
		mem:        newMemtable(),
		nextFile:   man.NextFile,
		checkpoint: man.Checkpoint,
		throttle:   newRateBucket(opts.CompactionBandwidth),
		flushC:     make(chan struct{}, 1),
		compactC:   make(chan struct{}, 1),
		quit:       make(chan struct{}),
	}
	e.cond = sync.NewCond(&e.mu)
	for _, lvl := range man.Levels {
		var tables []*table
		for _, num := range lvl {
			t, terr := openTable(opts.Dir, num)
			if terr != nil {
				e.releaseTables()
				return nil, terr
			}
			tables = append(tables, t)
		}
		e.levels = append(e.levels, tables)
	}
	e.wg.Add(2)
	go e.flusher()
	go e.compactor()
	return e, nil
}

// Apply records key -> val (the write itself is already in the owner's WAL
// at lsn; the engine only needs the position for checkpointing). Writers
// are externally serialized. When the flush queue is full, Apply stalls
// until the flusher catches up.
func (e *Engine) Apply(key, val []byte, lsn uint64) error {
	return e.put(key, val, false, lsn)
}

// Delete records a tombstone for key.
func (e *Engine) Delete(key []byte, lsn uint64) error {
	return e.put(key, nil, true, lsn)
}

func (e *Engine) put(key, val []byte, tombstone bool, lsn uint64) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		if e.crashed.Load() {
			return nil // a crashed process loses in-flight work silently
		}
		return ErrClosed
	}
	for len(e.imm) >= e.opts.MaxImmutable && !e.closed && e.flushErr == nil {
		e.cond.Wait()
	}
	if e.flushErr != nil {
		return e.flushErr
	}
	e.mem.set(key, val, tombstone, lsn)
	if e.mem.bytes >= e.opts.MemtableBytes {
		e.rotateLocked()
	}
	return nil
}

// rotateLocked freezes the mutable memtable into the flush queue. Caller
// holds mu.
func (e *Engine) rotateLocked() {
	if e.mem.len() == 0 {
		return
	}
	e.imm = append(e.imm, e.mem)
	e.mem = newMemtable()
	select {
	case e.flushC <- struct{}{}:
	default:
	}
}

// Get returns the newest value for key, or found=false if the key is absent
// or deleted. The returned slice must not be modified.
func (e *Engine) Get(key []byte) ([]byte, bool, error) {
	e.mu.Lock()
	if e.closed && e.crashed.Load() {
		e.mu.Unlock()
		return nil, false, ErrClosed
	}
	if ent, ok := e.mem.get(key); ok {
		e.mu.Unlock()
		if ent.tombstone {
			return nil, false, nil
		}
		return ent.val, true, nil
	}
	imms := make([]*memtable, len(e.imm))
	copy(imms, e.imm)
	pinned := e.pinTablesLocked()
	e.mu.Unlock()
	defer unpin(pinned.all)

	// Frozen memtables, newest first.
	for i := len(imms) - 1; i >= 0; i-- {
		if ent, ok := imms[i].get(key); ok {
			if ent.tombstone {
				return nil, false, nil
			}
			return ent.val, true, nil
		}
	}
	// L0 newest first (tables overlap), then one candidate per deeper level.
	for _, t := range pinned.l0 {
		val, tomb, found, err := t.get(key, e.bcache, &e.counters)
		if err != nil {
			return nil, false, err
		}
		if found {
			if tomb {
				return nil, false, nil
			}
			return val, true, nil
		}
	}
	for _, lvl := range pinned.deep {
		i := sort.Search(len(lvl), func(i int) bool { return bytes.Compare(lvl[i].maxKey, key) >= 0 })
		if i >= len(lvl) || bytes.Compare(lvl[i].minKey, key) > 0 {
			continue
		}
		val, tomb, found, err := lvl[i].get(key, e.bcache, &e.counters)
		if err != nil {
			return nil, false, err
		}
		if found {
			if tomb {
				return nil, false, nil
			}
			return val, true, nil
		}
	}
	return nil, false, nil
}

// pinnedTables is a read-consistent snapshot of the table set.
type pinnedTables struct {
	l0   []*table
	deep [][]*table
	all  []*table
}

// pinTablesLocked refs every live table so compaction cannot delete files
// out from under a read or scan. Caller holds mu.
func (e *Engine) pinTablesLocked() pinnedTables {
	var p pinnedTables
	for n, lvl := range e.levels {
		tables := make([]*table, len(lvl))
		copy(tables, lvl)
		for _, t := range tables {
			t.ref()
			p.all = append(p.all, t)
		}
		if n == 0 {
			p.l0 = tables
		} else {
			p.deep = append(p.deep, tables)
		}
	}
	return p
}

func unpin(tables []*table) {
	for _, t := range tables {
		t.unref()
	}
}

// Iter streams every live (non-tombstoned) entry with lo <= key < hi in
// ascending key order through fn; nil bounds are open. Iteration stops early
// when fn returns false. The key and value slices are only valid during the
// callback for table-resident entries.
func (e *Engine) Iter(lo, hi []byte, fn func(key, val []byte) bool) error {
	e.mu.Lock()
	if e.closed && e.crashed.Load() {
		e.mu.Unlock()
		return ErrClosed
	}
	srcs := []iterator{newMemIter(e.mem, lo, hi)}
	for i := len(e.imm) - 1; i >= 0; i-- {
		srcs = append(srcs, newMemIter(e.imm[i], lo, hi))
	}
	pinned := e.pinTablesLocked()
	e.mu.Unlock()
	defer unpin(pinned.all)

	// Scans bypass the block cache so a bulk read cannot evict the
	// point-read working set.
	for _, t := range pinned.l0 {
		srcs = append(srcs, newTableIter(t, lo, hi, nil, &e.counters))
	}
	for _, lvl := range pinned.deep {
		srcs = append(srcs, newLevelIter(lvl, lo, hi, nil, &e.counters))
	}
	m := newMergeIter(srcs)
	for m.next() {
		if m.tombstone() {
			continue
		}
		if !fn(m.key(), m.val()) {
			break
		}
	}
	return iterErr(srcs)
}

// flusher drains the immutable-memtable queue in arrival order.
func (e *Engine) flusher() {
	defer e.wg.Done()
	for {
		select {
		case <-e.quit:
			return
		case <-e.flushC:
		}
		for e.flushOne() {
		}
	}
}

// flushOne writes the oldest frozen memtable to a new L0 table, commits the
// manifest, advances the WAL checkpoint, and wakes stalled writers. It
// reports whether it did work.
func (e *Engine) flushOne() bool {
	e.mu.Lock()
	if len(e.imm) == 0 || e.flushErr != nil || e.crashed.Load() {
		e.mu.Unlock()
		return false
	}
	m := e.imm[0]
	num := e.nextFile
	e.nextFile++
	e.mu.Unlock()

	sp := e.span("memtable.flush")
	t, err := e.writeMemtable(m, num)
	if err != nil {
		sp.End(err)
		if errors.Is(err, errFlushAborted) {
			return false
		}
		e.mu.Lock()
		e.flushErr = fmt.Errorf("lsm: flush: %w", err)
		e.cond.Broadcast()
		e.mu.Unlock()
		return false
	}

	var checkpoint uint64
	e.manifestMu.Lock()
	e.mu.Lock()
	e.imm = e.imm[1:]
	if len(e.levels) == 0 {
		e.levels = append(e.levels, nil)
	}
	e.levels[0] = append([]*table{t}, e.levels[0]...)
	if m.maxLSN > 0 && m.maxLSN+1 > e.checkpoint {
		e.checkpoint = m.maxLSN + 1
	}
	checkpoint = e.checkpoint
	man := e.manifestLocked()
	e.mu.Unlock()
	merr := writeManifest(e.opts.Dir, man)
	e.manifestMu.Unlock()
	sp.End(merr)
	if merr != nil {
		e.mu.Lock()
		e.flushErr = merr
		e.cond.Broadcast()
		e.mu.Unlock()
		return false
	}
	e.counters.flushes.Add(1)
	e.counters.flushBytes.Add(t.bytes)
	if cb := e.opts.Checkpoint; cb != nil && checkpoint > 1 {
		cb(checkpoint)
	}
	// Wake stalled writers and Flush waiters only now: a completed flush is
	// one whose manifest is durable and whose checkpoint has been delivered.
	e.mu.Lock()
	e.cond.Broadcast()
	e.mu.Unlock()
	e.maybeScheduleCompaction()
	return true
}

// writeMemtable streams one frozen memtable into a new SSTable.
func (e *Engine) writeMemtable(m *memtable, num uint64) (*table, error) {
	tw, err := newTableWriter(e.opts.Dir, num, e.opts.BlockBytes, e.opts.BloomBitsPerKey)
	if err != nil {
		return nil, err
	}
	tw.abort = func() bool { return e.crashed.Load() }
	tw.observeLSN(m.maxLSN)
	m.ascendRange(nil, nil, func(key []byte, ent memEntry) bool {
		err = tw.add(key, ent.val, ent.tombstone)
		return err == nil
	})
	if err != nil {
		if !errors.Is(err, errFlushAborted) {
			tw.abandon()
		}
		return nil, err
	}
	t, err := tw.finish()
	if err != nil {
		if !errors.Is(err, errFlushAborted) {
			tw.abandon()
		}
		return nil, err
	}
	return t, nil
}

// manifestLocked snapshots the current version. Caller holds mu.
func (e *Engine) manifestLocked() manifest {
	man := manifest{NextFile: e.nextFile, Checkpoint: e.checkpoint}
	for _, lvl := range e.levels {
		nums := make([]uint64, len(lvl))
		for i, t := range lvl {
			nums[i] = t.num
		}
		man.Levels = append(man.Levels, nums)
	}
	return man
}

// span opens a background trace span when a tracer is configured.
func (e *Engine) span(name string) *trace.Span {
	if e.opts.Tracer == nil {
		return nil
	}
	_, sp := trace.Start(trace.WithCollector(context.Background(), e.opts.Tracer), name)
	return sp
}

// Flush synchronously rotates the mutable memtable and waits until the
// whole flush queue is on disk (tests, graceful close, the retired
// Compact() path).
func (e *Engine) Flush() error {
	e.mu.Lock()
	e.rotateLocked()
	for (len(e.imm) > 0 || e.flushErr != nil) && !e.crashed.Load() {
		if e.flushErr != nil {
			err := e.flushErr
			e.mu.Unlock()
			return err
		}
		e.cond.Wait()
	}
	e.mu.Unlock()
	return nil
}

// CheckpointLSN returns the first LSN not yet durable in SSTables: the
// position WAL replay must resume from after a restart.
func (e *Engine) CheckpointLSN() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.checkpoint
}

// PauseCompaction suspends (true) or resumes (false) background compaction;
// the storage ablation uses it to measure foreground latency with and
// without an active compaction backlog.
func (e *Engine) PauseCompaction(paused bool) {
	e.paused.Store(paused)
	if !paused {
		e.maybeScheduleCompaction()
	}
}

// Scrub re-reads every data block of every live table and verifies its
// checksum — the chaos harness's torn-table detector.
func (e *Engine) Scrub() error {
	e.mu.Lock()
	pinned := e.pinTablesLocked()
	e.mu.Unlock()
	defer unpin(pinned.all)
	for _, t := range pinned.all {
		if err := t.scrub(); err != nil {
			return err
		}
	}
	return nil
}

// Stats snapshot the engine for metrics and tests.
type Stats struct {
	MemtableBytes     int64
	ImmMemtables      int
	Flushes           int64
	FlushBytes        int64
	TableCounts       []int // per level
	Tables            int
	TableBytes        int64
	Compactions       int64
	CompactBytesIn    int64
	CompactBytesOut   int64
	BloomNegatives    int64
	BlockCacheHits    int64
	BlockCacheMisses  int64
	ThrottleWaitNanos int64
	CheckpointLSN     uint64
}

// Stats returns a snapshot.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	st := Stats{
		MemtableBytes: e.mem.bytes,
		ImmMemtables:  len(e.imm),
		CheckpointLSN: e.checkpoint,
	}
	for _, lvl := range e.levels {
		st.TableCounts = append(st.TableCounts, len(lvl))
		st.Tables += len(lvl)
		for _, t := range lvl {
			st.TableBytes += t.bytes
		}
	}
	e.mu.Unlock()
	st.Flushes = e.counters.flushes.Load()
	st.FlushBytes = e.counters.flushBytes.Load()
	st.Compactions = e.counters.compactions.Load()
	st.CompactBytesIn = e.counters.compactBytesIn.Load()
	st.CompactBytesOut = e.counters.compactBytesOut.Load()
	st.BloomNegatives = e.counters.bloomNegatives.Load()
	st.BlockCacheHits = e.counters.blockCacheHits.Load()
	st.BlockCacheMisses = e.counters.blockCacheMisses.Load()
	st.ThrottleWaitNanos = e.counters.throttleWaitNanos.Load()
	return st
}

// Close stops background work, flushes everything in memory to tables (so
// the next open replays an empty WAL tail), commits the manifest and
// releases every file handle.
func (e *Engine) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.cond.Broadcast()
	e.mu.Unlock()
	close(e.quit)
	e.wg.Wait()
	// Final flush on the caller's goroutine: the background flusher is gone.
	e.mu.Lock()
	e.rotateLocked()
	e.mu.Unlock()
	for e.flushOne() {
	}
	e.mu.Lock()
	err := e.flushErr
	e.mu.Unlock()
	e.releaseTables()
	return err
}

// Crash abandons the engine as a kill -9 would: background work aborts at
// its next block boundary (leaving any in-flight table write torn on disk),
// nothing is flushed, and in-memory state is dropped. The directory is left
// exactly as a hard process death would leave it; a subsequent Open
// recovers from the manifest and the owner's WAL.
func (e *Engine) Crash() {
	e.crashed.Store(true)
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.cond.Broadcast()
	e.mu.Unlock()
	close(e.quit)
	e.wg.Wait()
	e.releaseTables()
}

// releaseTables closes every table file handle.
func (e *Engine) releaseTables() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, lvl := range e.levels {
		for _, t := range lvl {
			t.f.Close()
		}
	}
	e.levels = nil
}

// rateBucket is a byte token bucket pacing compaction I/O.
type rateBucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func newRateBucket(bytesPerSec int64) *rateBucket {
	if bytesPerSec <= 0 {
		return nil
	}
	burst := float64(bytesPerSec)
	if burst < float64(DefaultBlockBytes*16) {
		burst = float64(DefaultBlockBytes * 16)
	}
	return &rateBucket{rate: float64(bytesPerSec), burst: burst}
}

// take reserves n bytes and returns the stall the caller owes.
func (b *rateBucket) take(n int) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	if b.last.IsZero() {
		b.tokens = b.burst
	} else {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.last = now
	b.tokens -= float64(n)
	if b.tokens >= 0 {
		return 0
	}
	return time.Duration(-b.tokens / b.rate * float64(time.Second))
}

// throttleIO charges compaction I/O against the bandwidth budget, sleeping
// out any stall (cut short by engine shutdown).
func (e *Engine) throttleIO(n int) {
	if e.throttle == nil {
		return
	}
	d := e.throttle.take(n)
	if d <= 0 {
		return
	}
	e.counters.throttleWaitNanos.Add(int64(d))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-e.quit:
	}
}
