package lsm

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"

	"mystore/internal/cache"
)

// SSTable file layout. An SSTable is an immutable sorted run of key/value
// entries (values are the docstore's length-prefixed BSON documents;
// tombstones record deletions that mask older tables until compaction):
//
//	file   := block* index bloom props footer
//	block  := entry* crc32            (≈ BlockBytes of entries per block)
//	entry  := uvarint(klen) key flag  (flag 0: uvarint(vlen) val; flag 1: tombstone)
//	index  := idx* crc32              (idx = uvarint(klen) firstKey uvarint(off) uvarint(len))
//	bloom  := filterBytes k crc32
//	props  := count maxLSN minKey maxKey crc32
//	footer := indexOff indexLen bloomOff bloomLen propsOff propsLen crc32 magic
//
// All section lengths include their trailing crc32. The footer is fixed-size
// at the end of the file so a reader seeks straight to it. Every section is
// CRC-checked on load (index/bloom/props at open, data blocks on every read
// from disk), so a torn or bit-flipped table is detected, never served.

const (
	tableMagic  = 0x4c534d5431 // "LSMT1"
	footerSize  = 6*8 + 4 + 8
	tableSuffix = ".sst"
	tmpSuffix   = ".tmp"
	entryValue  = 0
	entryDelete = 1
	// DefaultBlockBytes is the target data-block payload size.
	DefaultBlockBytes = 4 << 10
)

// ErrTableCorrupt reports a failed CRC or structural check.
var ErrTableCorrupt = errors.New("lsm: corrupt sstable")

// errFlushAborted is returned by an aborted table write (engine crash
// simulation): the temp file is left torn on disk, exactly as kill -9
// mid-flush would.
var errFlushAborted = errors.New("lsm: flush aborted")

type idxEntry struct {
	firstKey []byte
	off      int64
	length   int64
}

// table is one open, immutable SSTable: the index, bloom filter and
// properties live in memory; data blocks are read on demand through the
// block cache. refs counts pins (the engine's current version plus any
// in-flight reads and iterators); once a compaction marks the table
// obsolete, the last unpin deletes the file.
type table struct {
	num    uint64
	path   string
	f      *os.File
	size   int64
	index  []idxEntry
	bloom  bloomFilter
	count  int
	bytes  int64 // data-section payload bytes, the level-size accounting unit
	maxLSN uint64
	minKey []byte
	maxKey []byte

	refs     atomic.Int32
	obsolete atomic.Bool
}

func tableName(num uint64) string { return fmt.Sprintf("%012d%s", num, tableSuffix) }

// ref pins the table against deletion.
func (t *table) ref() { t.refs.Add(1) }

// unref releases a pin; the last pin on an obsolete table removes its file.
func (t *table) unref() {
	if t.refs.Add(-1) == 0 && t.obsolete.Load() {
		t.f.Close()
		os.Remove(t.path)
	}
}

// markObsolete schedules the file for deletion once every pin is released.
func (t *table) markObsolete() {
	t.obsolete.Store(true)
	t.unref() // drop the version's own pin
}

// cacheKey identifies one block in the shared block cache. Keys are scoped
// by file number; file numbers are never reused within an engine directory.
func (t *table) cacheKey(off int64) string {
	return strconv.FormatUint(t.num, 36) + "@" + strconv.FormatInt(off, 36)
}

// block returns the decoded (CRC-stripped) data block at index position i,
// consulting the block cache first. Stats count hits/misses at the engine.
func (t *table) block(i int, bc *cache.Server, st *engineCounters) ([]byte, error) {
	ie := t.index[i]
	if bc != nil {
		if b, ok := bc.Get(t.cacheKey(ie.off)); ok {
			st.blockCacheHits.Add(1)
			return b, nil
		}
		st.blockCacheMisses.Add(1)
	}
	raw := make([]byte, ie.length)
	if _, err := t.f.ReadAt(raw, ie.off); err != nil {
		return nil, fmt.Errorf("lsm: read block: %w", err)
	}
	payload, err := checkCRC(raw)
	if err != nil {
		return nil, fmt.Errorf("%w: table %d block @%d", ErrTableCorrupt, t.num, ie.off)
	}
	if bc != nil {
		bc.Set(t.cacheKey(ie.off), payload)
	}
	return payload, nil
}

// get searches the table for key. found=false with nil error means the key
// is not in this table (the caller continues to older tables).
func (t *table) get(key []byte, bc *cache.Server, st *engineCounters) (val []byte, tombstone, found bool, err error) {
	if bytes.Compare(key, t.minKey) < 0 || bytes.Compare(key, t.maxKey) > 0 {
		return nil, false, false, nil
	}
	if !t.bloom.mayContain(key) {
		st.bloomNegatives.Add(1)
		return nil, false, false, nil
	}
	i := t.blockFor(key)
	if i < 0 {
		return nil, false, false, nil
	}
	blk, err := t.block(i, bc, st)
	if err != nil {
		return nil, false, false, err
	}
	for pos := 0; pos < len(blk); {
		k, v, tomb, n, perr := parseEntry(blk[pos:])
		if perr != nil {
			return nil, false, false, fmt.Errorf("%w: table %d entry", ErrTableCorrupt, t.num)
		}
		pos += n
		switch bytes.Compare(k, key) {
		case 0:
			return v, tomb, true, nil
		case 1:
			return nil, false, false, nil // past it: not here
		}
	}
	return nil, false, false, nil
}

// blockFor returns the position of the last block whose first key is <= key,
// or -1 when key precedes the whole table.
func (t *table) blockFor(key []byte) int {
	lo, hi := 0, len(t.index)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(t.index[mid].firstKey, key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo - 1
}

// parseEntry decodes one entry, returning the consumed byte count.
func parseEntry(b []byte) (key, val []byte, tombstone bool, n int, err error) {
	klen, kn := binary.Uvarint(b)
	if kn <= 0 || int(klen) > len(b)-kn {
		return nil, nil, false, 0, ErrTableCorrupt
	}
	n = kn + int(klen)
	key = b[kn:n]
	if n >= len(b) {
		return nil, nil, false, 0, ErrTableCorrupt
	}
	flag := b[n]
	n++
	if flag == entryDelete {
		return key, nil, true, n, nil
	}
	if flag != entryValue {
		return nil, nil, false, 0, ErrTableCorrupt
	}
	vlen, vn := binary.Uvarint(b[n:])
	if vn <= 0 || int(vlen) > len(b)-n-vn {
		return nil, nil, false, 0, ErrTableCorrupt
	}
	val = b[n+vn : n+vn+int(vlen)]
	n += vn + int(vlen)
	return key, val, false, n, nil
}

// checkCRC verifies a section's trailing crc32 and returns the payload.
func checkCRC(sec []byte) ([]byte, error) {
	if len(sec) < 4 {
		return nil, ErrTableCorrupt
	}
	payload := sec[:len(sec)-4]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(sec[len(sec)-4:]) {
		return nil, ErrTableCorrupt
	}
	return payload, nil
}

func appendCRC(sec []byte) []byte {
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(sec))
	return append(sec, crc[:]...)
}

// openTable opens and validates an existing SSTable.
func openTable(dir string, num uint64) (*table, error) {
	path := filepath.Join(dir, tableName(num))
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	t := &table{num: num, path: path, f: f, size: st.Size()}
	if err := t.loadMeta(); err != nil {
		f.Close()
		return nil, fmt.Errorf("table %s: %w", tableName(num), err)
	}
	t.refs.Store(1) // the engine version's pin
	return t, nil
}

func (t *table) loadMeta() error {
	if t.size < footerSize {
		return ErrTableCorrupt
	}
	foot := make([]byte, footerSize)
	if _, err := t.f.ReadAt(foot, t.size-footerSize); err != nil {
		return err
	}
	if binary.LittleEndian.Uint64(foot[footerSize-8:]) != tableMagic {
		return fmt.Errorf("%w: bad magic", ErrTableCorrupt)
	}
	if crc32.ChecksumIEEE(foot[:48]) != binary.LittleEndian.Uint32(foot[48:52]) {
		return fmt.Errorf("%w: footer crc", ErrTableCorrupt)
	}
	read := func(off, length uint64) ([]byte, error) {
		if off+length > uint64(t.size) {
			return nil, ErrTableCorrupt
		}
		sec := make([]byte, length)
		if _, err := t.f.ReadAt(sec, int64(off)); err != nil {
			return nil, err
		}
		return checkCRC(sec)
	}
	idx, err := read(binary.LittleEndian.Uint64(foot[0:]), binary.LittleEndian.Uint64(foot[8:]))
	if err != nil {
		return fmt.Errorf("index: %w", err)
	}
	bloomSec, err := read(binary.LittleEndian.Uint64(foot[16:]), binary.LittleEndian.Uint64(foot[24:]))
	if err != nil {
		return fmt.Errorf("bloom: %w", err)
	}
	props, err := read(binary.LittleEndian.Uint64(foot[32:]), binary.LittleEndian.Uint64(foot[40:]))
	if err != nil {
		return fmt.Errorf("props: %w", err)
	}
	for pos := 0; pos < len(idx); {
		klen, kn := binary.Uvarint(idx[pos:])
		if kn <= 0 || pos+kn+int(klen) > len(idx) {
			return fmt.Errorf("%w: index entry", ErrTableCorrupt)
		}
		key := idx[pos+kn : pos+kn+int(klen)]
		pos += kn + int(klen)
		off, on := binary.Uvarint(idx[pos:])
		if on <= 0 {
			return fmt.Errorf("%w: index offset", ErrTableCorrupt)
		}
		pos += on
		length, ln := binary.Uvarint(idx[pos:])
		if ln <= 0 {
			return fmt.Errorf("%w: index length", ErrTableCorrupt)
		}
		pos += ln
		t.index = append(t.index, idxEntry{firstKey: key, off: int64(off), length: int64(length)})
		t.bytes += int64(length)
	}
	t.bloom = parseBloom(bloomSec)
	if len(props) < 16 {
		return fmt.Errorf("%w: props", ErrTableCorrupt)
	}
	t.count = int(binary.LittleEndian.Uint64(props[0:]))
	t.maxLSN = binary.LittleEndian.Uint64(props[8:])
	pos := 16
	for _, dst := range []*[]byte{&t.minKey, &t.maxKey} {
		klen, kn := binary.Uvarint(props[pos:])
		if kn <= 0 || pos+kn+int(klen) > len(props) {
			return fmt.Errorf("%w: props keys", ErrTableCorrupt)
		}
		*dst = props[pos+kn : pos+kn+int(klen)]
		pos += kn + int(klen)
	}
	return nil
}

// scrub re-reads and CRC-verifies every data block (bypassing the cache).
// The chaos harness runs it after crash-recovery cycles: a loaded table must
// never contain a torn or corrupt block.
func (t *table) scrub() error {
	for _, ie := range t.index {
		raw := make([]byte, ie.length)
		if _, err := t.f.ReadAt(raw, ie.off); err != nil {
			return err
		}
		if _, err := checkCRC(raw); err != nil {
			return fmt.Errorf("%w: table %d block @%d", ErrTableCorrupt, t.num, ie.off)
		}
	}
	return nil
}

// tableWriter streams sorted entries into a new SSTable. Creation is
// crash-atomic: everything is written to a .tmp file, fsynced, renamed into
// place, and the directory fsynced — a crash at any point leaves either no
// table or a complete one, and recovery deletes stray .tmp files. abort is
// polled between blocks so a simulated kill -9 tears the temp file exactly
// as a real one would.
type tableWriter struct {
	dir        string
	num        uint64
	f          *os.File
	w          *bufio.Writer
	off        int64
	blockBuf   []byte
	blockFirst []byte
	blockBytes int
	index      []idxEntry
	hashes     []uint64
	bitsPerKey int
	count      int
	maxLSN     uint64
	minKey     []byte
	maxKey     []byte
	onBlock    func(payloadBytes int) // throttling hook
	abort      func() bool            // crash simulation hook
}

func newTableWriter(dir string, num uint64, blockBytes, bitsPerKey int) (*tableWriter, error) {
	if blockBytes <= 0 {
		blockBytes = DefaultBlockBytes
	}
	f, err := os.Create(filepath.Join(dir, tableName(num)+tmpSuffix))
	if err != nil {
		return nil, err
	}
	return &tableWriter{
		dir: dir, num: num, f: f,
		w:          bufio.NewWriterSize(f, 1<<20),
		blockBytes: blockBytes,
		bitsPerKey: bitsPerKey,
	}, nil
}

// add appends one entry; keys must arrive in strictly ascending order.
func (tw *tableWriter) add(key, val []byte, tombstone bool) error {
	if tw.blockFirst == nil {
		tw.blockFirst = append([]byte(nil), key...)
	}
	var varint [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(varint[:], uint64(len(key)))
	tw.blockBuf = append(tw.blockBuf, varint[:n]...)
	tw.blockBuf = append(tw.blockBuf, key...)
	if tombstone {
		tw.blockBuf = append(tw.blockBuf, entryDelete)
	} else {
		tw.blockBuf = append(tw.blockBuf, entryValue)
		n = binary.PutUvarint(varint[:], uint64(len(val)))
		tw.blockBuf = append(tw.blockBuf, varint[:n]...)
		tw.blockBuf = append(tw.blockBuf, val...)
	}
	tw.hashes = append(tw.hashes, bloomHash(key))
	tw.count++
	if tw.minKey == nil {
		tw.minKey = append([]byte(nil), key...)
	}
	tw.maxKey = append(tw.maxKey[:0], key...)
	if len(tw.blockBuf) >= tw.blockBytes {
		return tw.flushBlock()
	}
	return nil
}

// observeLSN folds an input's WAL position into the table's high-water mark.
func (tw *tableWriter) observeLSN(lsn uint64) {
	if lsn > tw.maxLSN {
		tw.maxLSN = lsn
	}
}

func (tw *tableWriter) flushBlock() error {
	if len(tw.blockBuf) == 0 {
		return nil
	}
	if tw.abort != nil && tw.abort() {
		return errFlushAborted
	}
	sec := appendCRC(tw.blockBuf)
	if _, err := tw.w.Write(sec); err != nil {
		return err
	}
	tw.index = append(tw.index, idxEntry{firstKey: tw.blockFirst, off: tw.off, length: int64(len(sec))})
	tw.off += int64(len(sec))
	if tw.onBlock != nil {
		tw.onBlock(len(sec))
	}
	tw.blockBuf = tw.blockBuf[:0]
	tw.blockFirst = nil
	return nil
}

// finish seals the table: index, bloom, props, footer, fsync, rename,
// directory fsync — then opens it for reading. The caller discards the
// writer on error; abandon cleans up the temp file for non-crash errors.
func (tw *tableWriter) finish() (*table, error) {
	if err := tw.flushBlock(); err != nil {
		return nil, err
	}
	writeSection := func(payload []byte) (off, length uint64, err error) {
		sec := appendCRC(payload)
		if _, err := tw.w.Write(sec); err != nil {
			return 0, 0, err
		}
		off = uint64(tw.off)
		tw.off += int64(len(sec))
		return off, uint64(len(sec)), nil
	}
	var idxBuf []byte
	var varint [binary.MaxVarintLen64]byte
	for _, ie := range tw.index {
		n := binary.PutUvarint(varint[:], uint64(len(ie.firstKey)))
		idxBuf = append(idxBuf, varint[:n]...)
		idxBuf = append(idxBuf, ie.firstKey...)
		n = binary.PutUvarint(varint[:], uint64(ie.off))
		idxBuf = append(idxBuf, varint[:n]...)
		n = binary.PutUvarint(varint[:], uint64(ie.length))
		idxBuf = append(idxBuf, varint[:n]...)
	}
	idxOff, idxLen, err := writeSection(idxBuf)
	if err != nil {
		return nil, err
	}
	bloomOff, bloomLen, err := writeSection(buildBloom(tw.hashes, tw.bitsPerKey))
	if err != nil {
		return nil, err
	}
	props := make([]byte, 16)
	binary.LittleEndian.PutUint64(props[0:], uint64(tw.count))
	binary.LittleEndian.PutUint64(props[8:], tw.maxLSN)
	for _, k := range [][]byte{tw.minKey, tw.maxKey} {
		n := binary.PutUvarint(varint[:], uint64(len(k)))
		props = append(props, varint[:n]...)
		props = append(props, k...)
	}
	propsOff, propsLen, err := writeSection(props)
	if err != nil {
		return nil, err
	}
	foot := make([]byte, footerSize)
	binary.LittleEndian.PutUint64(foot[0:], idxOff)
	binary.LittleEndian.PutUint64(foot[8:], idxLen)
	binary.LittleEndian.PutUint64(foot[16:], bloomOff)
	binary.LittleEndian.PutUint64(foot[24:], bloomLen)
	binary.LittleEndian.PutUint64(foot[32:], propsOff)
	binary.LittleEndian.PutUint64(foot[40:], propsLen)
	binary.LittleEndian.PutUint32(foot[48:], crc32.ChecksumIEEE(foot[:48]))
	binary.LittleEndian.PutUint64(foot[footerSize-8:], tableMagic)
	if _, err := tw.w.Write(foot); err != nil {
		return nil, err
	}
	if err := tw.w.Flush(); err != nil {
		return nil, err
	}
	if err := tw.f.Sync(); err != nil {
		return nil, err
	}
	if err := tw.f.Close(); err != nil {
		return nil, err
	}
	tmp := filepath.Join(tw.dir, tableName(tw.num)+tmpSuffix)
	if err := os.Rename(tmp, filepath.Join(tw.dir, tableName(tw.num))); err != nil {
		return nil, err
	}
	if err := fsyncDir(tw.dir); err != nil {
		return nil, err
	}
	return openTable(tw.dir, tw.num)
}

// abandon discards a partially written table (non-crash error paths).
func (tw *tableWriter) abandon() {
	tw.f.Close()
	os.Remove(filepath.Join(tw.dir, tableName(tw.num)+tmpSuffix))
}

// fsyncDir makes a directory entry change (rename, remove) durable.
func fsyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
