package lsm

// Bloom filter over the keys of one SSTable. A negative answer proves the
// key is absent, so point reads skip the table's index and blocks entirely —
// the short-circuit that keeps a leveled store's read amplification near one
// table probe per read. Double hashing (Kirsch-Mitzenmacher) derives the k
// probe positions from one 64-bit FNV-1a pass over the key, so filter
// queries cost one hash regardless of k.

const (
	// DefaultBloomBitsPerKey is ~1% false positives at k=7.
	DefaultBloomBitsPerKey = 10
)

// bloomFilter is an immutable bit array plus its probe count. The on-disk
// encoding is the bit array followed by one byte holding k.
type bloomFilter struct {
	bits []byte
	k    int
}

// bloomHash is 64-bit FNV-1a; the two 32-bit halves seed double hashing.
func bloomHash(key []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// buildBloom returns the encoded filter for keys at bitsPerKey.
func buildBloom(hashes []uint64, bitsPerKey int) []byte {
	if bitsPerKey <= 0 {
		bitsPerKey = DefaultBloomBitsPerKey
	}
	// k = bitsPerKey * ln2, clamped to a sane probe count.
	k := bitsPerKey * 69 / 100
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	nBits := len(hashes) * bitsPerKey
	if nBits < 64 {
		nBits = 64
	}
	nBytes := (nBits + 7) / 8
	nBits = nBytes * 8
	out := make([]byte, nBytes+1)
	out[nBytes] = byte(k)
	for _, h := range hashes {
		delta := h>>33 | h<<31
		for i := 0; i < k; i++ {
			pos := h % uint64(nBits)
			out[pos/8] |= 1 << (pos % 8)
			h += delta
		}
	}
	return out
}

// parseBloom wraps an encoded filter; a malformed buffer yields a filter
// that admits everything (safe: blooms are advisory).
func parseBloom(enc []byte) bloomFilter {
	if len(enc) < 2 {
		return bloomFilter{}
	}
	return bloomFilter{bits: enc[:len(enc)-1], k: int(enc[len(enc)-1])}
}

// mayContain reports whether key was possibly added. An empty filter says
// yes to everything.
func (f bloomFilter) mayContain(key []byte) bool {
	if len(f.bits) == 0 || f.k == 0 || f.k > 30 {
		return true
	}
	nBits := uint64(len(f.bits)) * 8
	h := bloomHash(key)
	delta := h>>33 | h<<31
	for i := 0; i < f.k; i++ {
		pos := h % nBits
		if f.bits[pos/8]&(1<<(pos%8)) == 0 {
			return false
		}
		h += delta
	}
	return true
}
