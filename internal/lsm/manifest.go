package lsm

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// The manifest is the engine's durable root: which SSTable files are live,
// their level layout (L0 in newest-first order), the next file number, and
// the WAL checkpoint — the LSN from which replay must resume after a
// restart. It is rewritten crash-atomically (temp, fsync, rename, directory
// fsync) after every flush and compaction; any .sst or .tmp file the current
// manifest does not reference is garbage from a torn flush or an
// uncommitted compaction and is deleted at open, which is what guarantees a
// torn table is never loaded.

const manifestFile = "MANIFEST"

type manifest struct {
	NextFile   uint64     `json:"next_file"`
	Checkpoint uint64     `json:"checkpoint_lsn"`
	Levels     [][]uint64 `json:"levels"`
}

func writeManifest(dir string, m manifest) error {
	enc, err := json.Marshal(m)
	if err != nil {
		return err
	}
	tmp := filepath.Join(dir, manifestFile+tmpSuffix)
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	_, err = f.Write(enc)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("lsm: write manifest: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestFile)); err != nil {
		return fmt.Errorf("lsm: install manifest: %w", err)
	}
	return fsyncDir(dir)
}

// readManifest loads the manifest, or returns an empty one for a fresh
// directory.
func readManifest(dir string) (manifest, error) {
	raw, err := os.ReadFile(filepath.Join(dir, manifestFile))
	if errors.Is(err, os.ErrNotExist) {
		return manifest{NextFile: 1, Checkpoint: 1}, nil
	}
	if err != nil {
		return manifest{}, err
	}
	var m manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return manifest{}, fmt.Errorf("lsm: corrupt manifest: %w", err)
	}
	if m.NextFile == 0 {
		m.NextFile = 1
	}
	if m.Checkpoint == 0 {
		m.Checkpoint = 1
	}
	return m, nil
}

// removeUnreferenced deletes table and temp files the manifest does not
// claim: torn flushes (.tmp) and tables orphaned by a crash between table
// creation and manifest commit.
func removeUnreferenced(dir string, m manifest) error {
	live := map[uint64]bool{}
	for _, lvl := range m.Levels {
		for _, num := range lvl {
			live[num] = true
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasSuffix(name, tmpSuffix):
			os.Remove(filepath.Join(dir, name))
		case strings.HasSuffix(name, tableSuffix):
			numStr := strings.TrimSuffix(name, tableSuffix)
			num, perr := strconv.ParseUint(numStr, 10, 64)
			if perr != nil || !live[num] {
				os.Remove(filepath.Join(dir, name))
			}
		}
	}
	return fsyncDir(dir)
}
