package lsm

import (
	"bytes"
	"errors"
	"time"
)

// Leveled compaction. L0 tables overlap (each is one flushed memtable);
// once L0CompactTrigger of them accumulate, all of L0 merges with the
// overlapping span of L1. Deeper levels are sorted non-overlapping runs
// with geometric size limits; when level n outgrows its limit, one of its
// tables merges with the overlapping tables of level n+1. Output runs are
// split at TargetFileBytes. All compaction I/O (bytes read and written) is
// charged against the CompactionBandwidth token bucket so foreground
// operations keep their latency while merging runs behind them.

// compactor is the background compaction loop. Work is triggered after
// flushes and after each compaction (the cascade check), with a slow ticker
// as a safety net.
func (e *Engine) compactor() {
	defer e.wg.Done()
	tick := time.NewTicker(time.Second)
	defer tick.Stop()
	for {
		select {
		case <-e.quit:
			return
		case <-e.compactSignal():
		case <-tick.C:
		}
		for !e.paused.Load() {
			did, err := e.compactOnce()
			if err != nil || !did {
				break
			}
			select {
			case <-e.quit:
				return
			default:
			}
		}
	}
}

// compactC is created lazily-safe in Open; compactSignal just exposes it.
func (e *Engine) compactSignal() <-chan struct{} { return e.compactC }

// maybeScheduleCompaction nudges the compactor if any level is over budget.
func (e *Engine) maybeScheduleCompaction() {
	e.mu.Lock()
	need := e.needsCompactionLocked()
	e.mu.Unlock()
	if !need {
		return
	}
	select {
	case e.compactC <- struct{}{}:
	default:
	}
}

func (e *Engine) needsCompactionLocked() bool {
	if len(e.levels) > 0 && len(e.levels[0]) >= e.opts.L0CompactTrigger {
		return true
	}
	for n := 1; n < len(e.levels); n++ {
		if e.levelBytesLocked(n) > e.levelLimit(n) {
			return true
		}
	}
	return false
}

func (e *Engine) levelBytesLocked(n int) int64 {
	var total int64
	for _, t := range e.levels[n] {
		total += t.bytes
	}
	return total
}

// levelLimit returns level n's byte budget (n >= 1).
func (e *Engine) levelLimit(n int) int64 {
	limit := e.opts.LevelBaseBytes
	for i := 1; i < n; i++ {
		limit *= int64(e.opts.LevelFanout)
	}
	return limit
}

// compaction describes one picked merge: inputs from srcLevel plus the
// overlapping tables of srcLevel+1, all pinned.
type compaction struct {
	srcLevel int
	inputs   []*table // from srcLevel (L0: all of it, newest first)
	overlaps []*table // from srcLevel+1, key order
}

func (c *compaction) allInputs() []*table {
	return append(append([]*table(nil), c.inputs...), c.overlaps...)
}

// pickCompactionLocked chooses the next merge, or ok=false when the tree is
// in shape. Caller holds mu; picked tables are pinned before returning.
func (e *Engine) pickCompactionLocked() (compaction, bool) {
	if len(e.levels) > 0 && len(e.levels[0]) >= e.opts.L0CompactTrigger {
		c := compaction{srcLevel: 0, inputs: append([]*table(nil), e.levels[0]...)}
		lo, hi := keySpan(c.inputs)
		c.overlaps = e.overlapping(1, lo, hi)
		pin(c.allInputs())
		return c, true
	}
	for n := 1; n < len(e.levels); n++ {
		if e.levelBytesLocked(n) <= e.levelLimit(n) {
			continue
		}
		// Compact the level's first table; its key span picks the victims in
		// the next level down.
		t := e.levels[n][0]
		c := compaction{srcLevel: n, inputs: []*table{t}}
		c.overlaps = e.overlapping(n+1, t.minKey, t.maxKey)
		pin(c.allInputs())
		return c, true
	}
	return compaction{}, false
}

func pin(tables []*table) {
	for _, t := range tables {
		t.ref()
	}
}

// keySpan returns the smallest and largest keys covered by tables.
func keySpan(tables []*table) (lo, hi []byte) {
	for _, t := range tables {
		if lo == nil || bytes.Compare(t.minKey, lo) < 0 {
			lo = t.minKey
		}
		if hi == nil || bytes.Compare(t.maxKey, hi) > 0 {
			hi = t.maxKey
		}
	}
	return lo, hi
}

// overlapping returns level's tables intersecting [lo, hi] (inclusive).
// Caller holds mu.
func (e *Engine) overlapping(level int, lo, hi []byte) []*table {
	if level >= len(e.levels) {
		return nil
	}
	var out []*table
	for _, t := range e.levels[level] {
		if bytes.Compare(t.maxKey, lo) < 0 || bytes.Compare(t.minKey, hi) > 0 {
			continue
		}
		out = append(out, t)
	}
	return out
}

// compactOnce runs a single compaction if one is due, reporting whether it
// did work. Serialized by compactMu (background loop vs CompactNow).
func (e *Engine) compactOnce() (bool, error) {
	e.compactMu.Lock()
	defer e.compactMu.Unlock()

	e.mu.Lock()
	if e.closed && e.crashed.Load() {
		e.mu.Unlock()
		return false, ErrClosed
	}
	c, ok := e.pickCompactionLocked()
	e.mu.Unlock()
	if !ok {
		return false, nil
	}
	all := c.allInputs()
	defer unpin(all)

	sp := e.span("compaction.run")
	outputs, err := e.mergeTables(c)
	if err != nil {
		sp.End(err)
		if errors.Is(err, errFlushAborted) {
			return false, nil
		}
		return false, err
	}

	// Install: drop the inputs from their levels, slot the outputs into the
	// target level in key order, commit the manifest.
	target := c.srcLevel + 1
	e.manifestMu.Lock()
	e.mu.Lock()
	for len(e.levels) <= target {
		e.levels = append(e.levels, nil)
	}
	drop := make(map[uint64]bool, len(all))
	for _, t := range all {
		drop[t.num] = true
	}
	for _, n := range []int{c.srcLevel, target} {
		kept := e.levels[n][:0]
		for _, t := range e.levels[n] {
			if !drop[t.num] {
				kept = append(kept, t)
			}
		}
		e.levels[n] = kept
	}
	e.levels[target] = insertByKey(e.levels[target], outputs)
	man := e.manifestLocked()
	e.mu.Unlock()
	merr := writeManifest(e.opts.Dir, man)
	e.manifestMu.Unlock()
	sp.End(merr)
	if merr != nil {
		// The new tables are orphans; the old version is still the durable
		// root. Drop the outputs and surface the error.
		for _, t := range outputs {
			t.markObsolete()
		}
		return false, merr
	}
	for _, t := range all {
		t.markObsolete()
	}
	e.counters.compactions.Add(1)
	e.maybeScheduleCompaction() // cascade: the target level may now overflow
	return true, nil
}

// mergeTables streams the compaction inputs through a merge iterator into
// size-split output tables, charging the bandwidth bucket per block.
func (e *Engine) mergeTables(c compaction) ([]*table, error) {
	// Tombstones can be dropped only when no deeper level can hold an older
	// version of the key they mask.
	target := c.srcLevel + 1
	e.mu.Lock()
	dropTombstones := true
	for n := target + 1; n < len(e.levels); n++ {
		if len(e.levels[n]) > 0 {
			dropTombstones = false
			break
		}
	}
	e.mu.Unlock()

	// Sources newest first: srcLevel inputs (L0 is already newest-first; a
	// single deeper table trivially so), then the older overlapping run.
	srcs := make([]iterator, 0, len(c.inputs)+1)
	for _, t := range c.inputs {
		srcs = append(srcs, newTableIter(t, nil, nil, nil, &e.counters))
	}
	if len(c.overlaps) > 0 {
		srcs = append(srcs, newLevelIter(c.overlaps, nil, nil, nil, &e.counters))
	}
	for _, t := range c.allInputs() {
		e.counters.compactBytesIn.Add(t.bytes)
		e.throttleIO(int(t.bytes))
	}

	var outputs []*table
	var tw *tableWriter
	m := newMergeIter(srcs)
	var err error
	for m.next() {
		if m.tombstone() && dropTombstones {
			continue
		}
		if tw == nil {
			var num uint64
			e.mu.Lock()
			num = e.nextFile
			e.nextFile++
			e.mu.Unlock()
			tw, err = newTableWriter(e.opts.Dir, num, e.opts.BlockBytes, e.opts.BloomBitsPerKey)
			if err != nil {
				break
			}
			tw.abort = func() bool { return e.crashed.Load() }
			tw.onBlock = func(n int) {
				e.counters.compactBytesOut.Add(int64(n))
				e.throttleIO(n)
			}
			for _, t := range c.allInputs() {
				tw.observeLSN(t.maxLSN)
			}
		}
		if err = tw.add(m.key(), m.val(), m.tombstone()); err != nil {
			break
		}
		if tw.off >= e.opts.TargetFileBytes {
			var t *table
			t, err = tw.finish()
			if err != nil {
				break
			}
			outputs = append(outputs, t)
			tw = nil
		}
	}
	if err == nil {
		err = iterErr(srcs)
	}
	if err == nil && tw != nil {
		var t *table
		t, err = tw.finish()
		if err == nil {
			outputs = append(outputs, t)
			tw = nil
		}
	}
	if err != nil {
		if tw != nil && !errors.Is(err, errFlushAborted) {
			tw.abandon()
		}
		for _, t := range outputs {
			t.markObsolete()
		}
		return nil, err
	}
	return outputs, nil
}

// insertByKey merges the new tables into a level's key-ordered run.
func insertByKey(level, added []*table) []*table {
	out := append(level, added...)
	// Insertion sort: levels are short and mostly ordered already.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && bytes.Compare(out[j].minKey, out[j-1].minKey) < 0; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// CompactNow synchronously drains all due compactions (tests and the
// storage ablation use it for deterministic shaping).
func (e *Engine) CompactNow() error {
	for {
		did, err := e.compactOnce()
		if err != nil {
			return err
		}
		if !did {
			return nil
		}
	}
}
