package lsm

import (
	"bytes"

	"mystore/internal/cache"
)

// Iterators. Every source in the store — the mutable memtable (snapshotted
// at iterator creation), frozen memtables, and SSTables — presents the same
// cursor shape; mergeIter folds any number of them into one ascending
// stream where the newest source wins each key. Tombstones flow through the
// merge (compaction needs them); user-facing scans skip them.

type iterator interface {
	// next advances to the following entry, reporting whether one exists.
	next() bool
	key() []byte
	val() []byte
	tombstone() bool
}

// kvEntry is one materialized entry.
type kvEntry struct {
	k    []byte
	v    []byte
	tomb bool
}

// sliceIter iterates a materialized entry slice (memtable range snapshots).
type sliceIter struct {
	entries []kvEntry
	pos     int
}

// newMemIter snapshots m's entries in [lo, hi) into a slice. Call only on a
// frozen memtable or while holding the engine's version lock: the copy is
// what makes the iterator safe once the lock is released.
func newMemIter(m *memtable, lo, hi []byte) *sliceIter {
	it := &sliceIter{pos: -1}
	m.ascendRange(lo, hi, func(key []byte, e memEntry) bool {
		it.entries = append(it.entries, kvEntry{k: key, v: e.val, tomb: e.tombstone})
		return true
	})
	return it
}

func (it *sliceIter) next() bool {
	it.pos++
	return it.pos < len(it.entries)
}
func (it *sliceIter) key() []byte     { return it.entries[it.pos].k }
func (it *sliceIter) val() []byte     { return it.entries[it.pos].v }
func (it *sliceIter) tombstone() bool { return it.entries[it.pos].tomb }

// tableIter streams one SSTable's entries in [lo, hi), reading blocks
// through the table's reader (cache optional: scans and compactions pass
// nil so bulk reads do not evict the point-read working set).
type tableIter struct {
	t      *table
	bc     *cache.Server
	st     *engineCounters
	lo, hi []byte

	blockPos int
	blk      []byte
	pos      int
	curK     []byte
	curV     []byte
	curTomb  bool
	err      error
	started  bool
}

func newTableIter(t *table, lo, hi []byte, bc *cache.Server, st *engineCounters) *tableIter {
	return &tableIter{t: t, bc: bc, st: st, lo: lo, hi: hi}
}

func (it *tableIter) next() bool {
	if it.err != nil {
		return false
	}
	if !it.started {
		it.started = true
		it.blockPos = 0
		if it.lo != nil {
			if b := it.t.blockFor(it.lo); b > 0 {
				it.blockPos = b
			}
		}
		if !it.loadBlock() {
			return false
		}
	}
	for {
		for it.pos < len(it.blk) {
			k, v, tomb, n, err := parseEntry(it.blk[it.pos:])
			if err != nil {
				it.err = err
				return false
			}
			it.pos += n
			if it.lo != nil && bytes.Compare(k, it.lo) < 0 {
				continue
			}
			if it.hi != nil && bytes.Compare(k, it.hi) >= 0 {
				return false
			}
			it.curK, it.curV, it.curTomb = k, v, tomb
			return true
		}
		it.blockPos++
		if !it.loadBlock() {
			return false
		}
	}
}

func (it *tableIter) loadBlock() bool {
	if it.blockPos >= len(it.t.index) {
		return false
	}
	blk, err := it.t.block(it.blockPos, it.bc, it.st)
	if err != nil {
		it.err = err
		return false
	}
	it.blk, it.pos = blk, 0
	return true
}

func (it *tableIter) key() []byte     { return it.curK }
func (it *tableIter) val() []byte     { return it.curV }
func (it *tableIter) tombstone() bool { return it.curTomb }

// levelIter concatenates the non-overlapping, key-ordered tables of one
// level (L1+), opening each table's iterator lazily.
type levelIter struct {
	tables []*table
	bc     *cache.Server
	st     *engineCounters
	lo, hi []byte

	ti  *tableIter
	idx int
}

func newLevelIter(tables []*table, lo, hi []byte, bc *cache.Server, st *engineCounters) *levelIter {
	return &levelIter{tables: tables, bc: bc, st: st, lo: lo, hi: hi}
}

func (it *levelIter) next() bool {
	for {
		if it.ti != nil && it.ti.next() {
			return true
		}
		for {
			if it.idx >= len(it.tables) {
				return false
			}
			t := it.tables[it.idx]
			it.idx++
			if it.lo != nil && bytes.Compare(t.maxKey, it.lo) < 0 {
				continue
			}
			if it.hi != nil && bytes.Compare(t.minKey, it.hi) >= 0 {
				return false
			}
			it.ti = newTableIter(t, it.lo, it.hi, it.bc, it.st)
			break
		}
	}
}

func (it *levelIter) key() []byte     { return it.ti.key() }
func (it *levelIter) val() []byte     { return it.ti.val() }
func (it *levelIter) tombstone() bool { return it.ti.tombstone() }

// mergeIter folds sources into one ascending stream. Sources are ordered
// newest first; when several hold the same key, the newest version is
// yielded and the older ones are skipped.
type mergeIter struct {
	srcs  []iterator
	valid []bool

	curK    []byte
	curV    []byte
	curTomb bool
}

func newMergeIter(srcs []iterator) *mergeIter {
	m := &mergeIter{srcs: srcs, valid: make([]bool, len(srcs))}
	for i, s := range srcs {
		m.valid[i] = s.next()
	}
	return m
}

func (m *mergeIter) next() bool {
	var minK []byte
	winner := -1
	for i, s := range m.srcs {
		if !m.valid[i] {
			continue
		}
		if winner == -1 || bytes.Compare(s.key(), minK) < 0 {
			minK, winner = s.key(), i
		}
	}
	if winner == -1 {
		return false
	}
	w := m.srcs[winner]
	m.curK, m.curV, m.curTomb = w.key(), w.val(), w.tombstone()
	// Advance the winner and every older source positioned on the same key.
	for i := winner; i < len(m.srcs); i++ {
		if m.valid[i] && bytes.Equal(m.srcs[i].key(), minK) {
			m.valid[i] = m.srcs[i].next()
		}
	}
	return true
}

func (m *mergeIter) key() []byte     { return m.curK }
func (m *mergeIter) val() []byte     { return m.curV }
func (m *mergeIter) tombstone() bool { return m.curTomb }

// iterErr surfaces the first read error any table source hit (merge sources
// silently end on error; the engine re-checks after the scan).
func iterErr(srcs []iterator) error {
	for _, s := range srcs {
		switch it := s.(type) {
		case *tableIter:
			if it.err != nil {
				return it.err
			}
		case *levelIter:
			if it.ti != nil && it.ti.err != nil {
				return it.ti.err
			}
		}
	}
	return nil
}
