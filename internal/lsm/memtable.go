package lsm

import (
	"mystore/internal/btree"
)

// memtable is the mutable in-memory head of the log-structured store: a
// sorted map from key to value-or-tombstone. Writers insert under the
// engine's version lock; once the table crosses the engine's byte budget it
// is rotated into the immutable flush queue and never written again, so the
// flusher and iterators read it without locks.
type memtable struct {
	tree   *btree.Tree // key -> memEntry
	bytes  int64       // approximate payload footprint
	maxLSN uint64      // highest WAL lsn applied to this table
}

// memEntry is one memtable value. A tombstone records a deletion that must
// mask older SSTable versions until compaction drops both.
type memEntry struct {
	val       []byte
	tombstone bool
}

func newMemtable() *memtable {
	return &memtable{tree: btree.New()}
}

// set records key -> val (or a tombstone) and the op's WAL lsn.
func (m *memtable) set(key, val []byte, tombstone bool, lsn uint64) {
	if old, ok := m.tree.Get(key); ok {
		m.bytes -= int64(len(old.(memEntry).val))
	} else {
		m.bytes += int64(len(key)) + memEntryOverhead
	}
	m.bytes += int64(len(val))
	m.tree.Set(key, memEntry{val: val, tombstone: tombstone})
	if lsn > m.maxLSN {
		m.maxLSN = lsn
	}
}

// memEntryOverhead approximates the per-entry bookkeeping cost, so the byte
// budget tracks real memory growth even for small keys and values.
const memEntryOverhead = 64

// get returns the entry for key, if present (a tombstone counts as present:
// it answers "deleted", stopping the search at this table).
func (m *memtable) get(key []byte) (memEntry, bool) {
	v, ok := m.tree.Get(key)
	if !ok {
		return memEntry{}, false
	}
	return v.(memEntry), true
}

// len returns the entry count (tombstones included).
func (m *memtable) len() int { return m.tree.Len() }

// ascendRange walks entries with lo <= key < hi in key order; nil bounds are
// open. Only safe on a frozen (immutable) memtable or under the engine's
// version lock.
func (m *memtable) ascendRange(lo, hi []byte, fn func(key []byte, e memEntry) bool) {
	m.tree.AscendRange(lo, hi, func(it btree.Item) bool {
		return fn(it.Key, it.Value.(memEntry))
	})
}
