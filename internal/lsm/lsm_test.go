package lsm

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func TestBloomFilter(t *testing.T) {
	var hashes []uint64
	for i := 0; i < 1000; i++ {
		hashes = append(hashes, bloomHash([]byte(fmt.Sprintf("key-%04d", i))))
	}
	f := parseBloom(buildBloom(hashes, DefaultBloomBitsPerKey))
	for i := 0; i < 1000; i++ {
		if !f.mayContain([]byte(fmt.Sprintf("key-%04d", i))) {
			t.Fatalf("false negative for key-%04d", i)
		}
	}
	fp := 0
	for i := 0; i < 10000; i++ {
		if f.mayContain([]byte(fmt.Sprintf("other-%05d", i))) {
			fp++
		}
	}
	// 10 bits/key targets ~1% false positives; 5% is far past broken.
	if fp > 500 {
		t.Fatalf("false positive rate too high: %d/10000", fp)
	}
}

func TestBloomEmpty(t *testing.T) {
	f := parseBloom(buildBloom(nil, DefaultBloomBitsPerKey))
	if f.mayContain([]byte("anything")) {
		t.Fatal("empty filter claims membership")
	}
}

func writeTestTable(t *testing.T, dir string, num uint64, n int) *table {
	t.Helper()
	tw, err := newTableWriter(dir, num, 256, DefaultBloomBitsPerKey)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		key := []byte(fmt.Sprintf("key-%06d", i))
		if i%7 == 3 {
			err = tw.add(key, nil, true)
		} else {
			err = tw.add(key, []byte(fmt.Sprintf("value-%06d", i)), false)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	tw.observeLSN(uint64(n))
	tbl, err := tw.finish()
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestTableRoundtrip(t *testing.T) {
	dir := t.TempDir()
	tbl := writeTestTable(t, dir, 1, 500)
	defer tbl.markObsolete()
	var st engineCounters
	if tbl.count != 500 || tbl.maxLSN != 500 {
		t.Fatalf("props: count=%d maxLSN=%d", tbl.count, tbl.maxLSN)
	}
	if string(tbl.minKey) != "key-000000" || string(tbl.maxKey) != "key-000499" {
		t.Fatalf("key range %q..%q", tbl.minKey, tbl.maxKey)
	}
	for i := 0; i < 500; i++ {
		key := []byte(fmt.Sprintf("key-%06d", i))
		val, tomb, found, err := tbl.get(key, nil, &st)
		if err != nil {
			t.Fatal(err)
		}
		if !found {
			t.Fatalf("missing %s", key)
		}
		if i%7 == 3 {
			if !tomb {
				t.Fatalf("%s should be a tombstone", key)
			}
		} else if tomb || string(val) != fmt.Sprintf("value-%06d", i) {
			t.Fatalf("%s: tomb=%v val=%q", key, tomb, val)
		}
	}
	if _, _, found, _ := tbl.get([]byte("key-000500"), nil, &st); found {
		t.Fatal("found key past the end")
	}
	if _, _, found, _ := tbl.get([]byte("aaa"), nil, &st); found {
		t.Fatal("found key before the start")
	}
	// Full iteration sees every entry in order, tombstones included.
	it := newTableIter(tbl, nil, nil, nil, &st)
	n := 0
	var last []byte
	for it.next() {
		if last != nil && bytes.Compare(it.key(), last) <= 0 {
			t.Fatal("iteration out of order")
		}
		last = append(last[:0], it.key()...)
		n++
	}
	if it.err != nil || n != 500 {
		t.Fatalf("iterated %d entries, err=%v", n, it.err)
	}
	// Bounded iteration respects [lo, hi).
	it = newTableIter(tbl, []byte("key-000100"), []byte("key-000110"), nil, &st)
	n = 0
	for it.next() {
		n++
	}
	if n != 10 {
		t.Fatalf("range scan saw %d entries, want 10", n)
	}
	if err := tbl.scrub(); err != nil {
		t.Fatalf("scrub: %v", err)
	}
}

func TestTableCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	tbl := writeTestTable(t, dir, 1, 300)
	path := tbl.path
	tbl.markObsolete() // close; file removed
	tbl = writeTestTable(t, dir, 2, 300)
	path = tbl.path
	tbl.f.Close()

	flip := func(off int64) {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if off < 0 {
			off += int64(len(raw))
		}
		raw[off] ^= 0xff
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Flip a byte in the first data block: open succeeds (meta is intact)
	// but reading or scrubbing the block must fail.
	flip(10)
	tbl2, err := openTable(dir, 2)
	if err != nil {
		t.Fatalf("open with torn data block should defer the error to reads: %v", err)
	}
	var st engineCounters
	if err := tbl2.scrub(); err == nil {
		t.Fatal("scrub missed a corrupt block")
	}
	if _, err := tbl2.block(0, nil, &st); err == nil {
		t.Fatal("block read missed corruption")
	}
	tbl2.f.Close()
	flip(10) // restore
	// Flip the footer: open must fail outright.
	flip(-9)
	if _, err := openTable(dir, 2); err == nil {
		t.Fatal("open accepted a corrupt footer")
	}
	flip(-9)
	// Truncate mid-file (torn write): open must fail.
	raw, _ := os.ReadFile(path)
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := openTable(dir, 2); err == nil {
		t.Fatal("open accepted a truncated table")
	}
}

func testEngine(t *testing.T, tune Tuning) *Engine {
	t.Helper()
	dir := t.TempDir()
	e, err := Open(Options{Dir: dir, Tuning: tune})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func smallTuning() Tuning {
	return Tuning{
		MemtableBytes:   8 << 10,
		BlockBytes:      512,
		LevelBaseBytes:  16 << 10,
		TargetFileBytes: 8 << 10,
	}
}

func TestEngineBasic(t *testing.T) {
	e := testEngine(t, smallTuning())
	var lsn uint64
	put := func(k, v string) {
		lsn++
		if err := e.Apply([]byte(k), []byte(v), lsn); err != nil {
			t.Fatal(err)
		}
	}
	put("a", "1")
	put("b", "2")
	put("c", "3")
	lsn++
	if err := e.Delete([]byte("b"), lsn); err != nil {
		t.Fatal(err)
	}
	put("a", "1b")

	check := func() {
		t.Helper()
		v, ok, err := e.Get([]byte("a"))
		if err != nil || !ok || string(v) != "1b" {
			t.Fatalf("a: %q %v %v", v, ok, err)
		}
		if _, ok, _ := e.Get([]byte("b")); ok {
			t.Fatal("deleted key b visible")
		}
		var keys []string
		if err := e.Iter(nil, nil, func(k, v []byte) bool {
			keys = append(keys, string(k))
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if strings.Join(keys, ",") != "a,c" {
			t.Fatalf("scan: %v", keys)
		}
	}
	check()
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	check() // same answers from tables
	st := e.Stats()
	if st.Flushes == 0 || st.Tables == 0 {
		t.Fatalf("expected flushed tables: %+v", st)
	}
}

// TestEngineFlushCompactReopen pushes enough data through a tiny engine to
// force flushes and compactions, then reopens and verifies every key.
func TestEngineFlushCompactReopen(t *testing.T) {
	dir := t.TempDir()
	tune := smallTuning()
	e, err := Open(Options{Dir: dir, Tuning: tune})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	want := map[string]string{}
	var lsn uint64
	const keys = 400
	for op := 0; op < 5000; op++ {
		k := fmt.Sprintf("key-%04d", rng.Intn(keys))
		lsn++
		if rng.Intn(10) == 0 {
			delete(want, k)
			if err := e.Delete([]byte(k), lsn); err != nil {
				t.Fatal(err)
			}
		} else {
			v := fmt.Sprintf("val-%d-%d", op, rng.Intn(1000))
			want[k] = v
			if err := e.Apply([]byte(k), []byte(v), lsn); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := e.CompactNow(); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Compactions == 0 {
		t.Fatalf("expected compactions to run: %+v", st)
	}
	if st.CompactBytesIn == 0 || st.CompactBytesOut == 0 {
		t.Fatalf("compaction byte counters empty: %+v", st)
	}
	verify := func(e *Engine) {
		t.Helper()
		for k, v := range want {
			got, ok, err := e.Get([]byte(k))
			if err != nil {
				t.Fatal(err)
			}
			if !ok || string(got) != v {
				t.Fatalf("%s: got %q ok=%v want %q", k, got, ok, v)
			}
		}
		n := 0
		if err := e.Iter(nil, nil, func(k, v []byte) bool {
			if want[string(k)] != string(v) {
				t.Fatalf("scan %s: got %q want %q", k, v, want[string(k)])
			}
			n++
			return true
		}); err != nil {
			t.Fatal(err)
		}
		if n != len(want) {
			t.Fatalf("scan saw %d keys, want %d", n, len(want))
		}
	}
	verify(e)
	ckpt := e.CheckpointLSN()
	if ckpt != lsn+1 {
		t.Fatalf("checkpoint %d, want %d (all flushed)", ckpt, lsn+1)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	e, err = Open(Options{Dir: dir, Tuning: tune})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.CheckpointLSN() != ckpt {
		t.Fatalf("checkpoint lost across reopen: %d != %d", e.CheckpointLSN(), ckpt)
	}
	verify(e)
}

// TestEngineCheckpointCallback verifies the flush → checkpoint contract the
// docstore relies on for WAL truncation.
func TestEngineCheckpointCallback(t *testing.T) {
	dir := t.TempDir()
	var mu sync.Mutex
	var ckpts []uint64
	e, err := Open(Options{
		Dir:    dir,
		Tuning: smallTuning(),
		Checkpoint: func(lsn uint64) {
			mu.Lock()
			ckpts = append(ckpts, lsn)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	for i := 1; i <= 200; i++ {
		if err := e.Apply([]byte(fmt.Sprintf("k%06d", i)), bytes.Repeat([]byte("x"), 100), uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Flush(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(ckpts) == 0 {
		t.Fatal("no checkpoint callbacks")
	}
	for i := 1; i < len(ckpts); i++ {
		if ckpts[i] < ckpts[i-1] {
			t.Fatalf("checkpoint went backwards: %v", ckpts)
		}
	}
	if last := ckpts[len(ckpts)-1]; last != 201 {
		t.Fatalf("final checkpoint %d, want 201", last)
	}
}

// TestEngineCrashMidFlushNeverLoadsTornTable simulates kill -9 during a
// flush: the aborted table write leaves a torn temp file, and reopening
// must discard it rather than load it.
func TestEngineCrashMidFlushNeverLoadsTornTable(t *testing.T) {
	dir := t.TempDir()
	tune := smallTuning()
	e, err := Open(Options{Dir: dir, Tuning: tune})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := e.Apply([]byte(fmt.Sprintf("k%06d", i)), bytes.Repeat([]byte("v"), 64), uint64(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	e.Crash()

	// Plant a torn temp file and an orphan table the manifest doesn't
	// reference, as an interrupted flush could leave either.
	torn := filepath.Join(dir, tableName(999)+tmpSuffix)
	if err := os.WriteFile(torn, []byte("partial table write"), 0o644); err != nil {
		t.Fatal(err)
	}
	orphan := writeTestTable(t, dir, 998, 50)
	orphan.f.Close()

	e2, err := Open(Options{Dir: dir, Tuning: tune})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer e2.Close()
	if _, err := os.Stat(torn); !os.IsNotExist(err) {
		t.Fatal("torn temp file survived recovery")
	}
	if _, err := os.Stat(filepath.Join(dir, tableName(998))); !os.IsNotExist(err) {
		t.Fatal("orphan table survived recovery")
	}
	if err := e2.Scrub(); err != nil {
		t.Fatalf("recovered engine failed scrub: %v", err)
	}
	// Whatever did flush before the crash must still read correctly.
	if err := e2.Iter(nil, nil, func(k, v []byte) bool { return true }); err != nil {
		t.Fatalf("scan after recovery: %v", err)
	}
}

// TestEngineConcurrentReadsDuringWrites hammers the engine with one writer
// (the docstore contract) and several readers while flushes and compactions
// run underneath; run with -race.
func TestEngineConcurrentReadsDuringWrites(t *testing.T) {
	e := testEngine(t, smallTuning())
	const keys = 200
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-done:
					return
				default:
				}
				k := []byte(fmt.Sprintf("key-%04d", rng.Intn(keys)))
				if _, _, err := e.Get(k); err != nil {
					t.Errorf("get: %v", err)
					return
				}
				if rng.Intn(20) == 0 {
					if err := e.Iter(nil, nil, func(k, v []byte) bool { return true }); err != nil {
						t.Errorf("iter: %v", err)
						return
					}
				}
			}
		}(int64(r))
	}
	rng := rand.New(rand.NewSource(99))
	for op := 0; op < 4000; op++ {
		k := []byte(fmt.Sprintf("key-%04d", rng.Intn(keys)))
		var err error
		if rng.Intn(8) == 0 {
			err = e.Delete(k, uint64(op+1))
		} else {
			err = e.Apply(k, bytes.Repeat([]byte("p"), 50), uint64(op+1))
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
}

func TestRateBucket(t *testing.T) {
	b := newRateBucket(1 << 20) // 1 MiB/s
	if b.take(1024) != 0 {
		t.Fatal("burst allowance should absorb the first block")
	}
	var stall bool
	for i := 0; i < 64; i++ {
		if b.take(1<<20) > 0 {
			stall = true
		}
	}
	if !stall {
		t.Fatal("sustained overdraw never stalled")
	}
	if newRateBucket(0) != nil {
		t.Fatal("zero bandwidth should disable the bucket")
	}
}
