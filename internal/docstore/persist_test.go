package docstore

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"mystore/internal/bson"
	"mystore/internal/wal"
)

func diskStore(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(Options{Dir: dir, WAL: wal.Options{SegmentSize: 4096}})
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return s
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := diskStore(t, dir)
	c := s.C("records")
	c.EnsureIndex("self-key", false) //nolint:errcheck
	for i := 0; i < 50; i++ {
		if _, err := c.Insert(record(fmt.Sprintf("k%02d", i), 64)); err != nil {
			t.Fatal(err)
		}
	}
	// Delete some, update some.
	docs, _ := c.Find(Filter{{Key: "self-key", Value: "k10"}}, FindOptions{})
	id, _ := docs[0].Get("_id")
	c.Delete(id) //nolint:errcheck
	docs, _ = c.Find(Filter{{Key: "self-key", Value: "k20"}}, FindOptions{})
	c.Update(docs[0].Set("isDel", "1")) //nolint:errcheck
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := diskStore(t, dir)
	defer s2.Close()
	c2 := s2.C("records")
	if c2.Len() != 49 {
		t.Fatalf("Len after reopen = %d, want 49", c2.Len())
	}
	// Index definitions are recovered and functional.
	got, err := c2.Find(Filter{{Key: "self-key", Value: "k20"}}, FindOptions{})
	if err != nil || len(got) != 1 {
		t.Fatalf("indexed query after reopen: %d docs, err %v", len(got), err)
	}
	if got[0].StringOr("isDel", "") != "1" {
		t.Fatal("update lost across reopen")
	}
	if s2.Stats().IndexHits == 0 {
		t.Error("recovered index was not used")
	}
	if got, _ := c2.Find(Filter{{Key: "self-key", Value: "k10"}}, FindOptions{}); len(got) != 0 {
		t.Fatal("deleted document resurrected on reopen")
	}
}

func TestCompactAndRecoverFromSnapshot(t *testing.T) {
	dir := t.TempDir()
	s := diskStore(t, dir)
	c := s.C("records")
	c.EnsureIndex("self-key", true) //nolint:errcheck
	for i := 0; i < 100; i++ {
		c.Insert(record(fmt.Sprintf("k%03d", i), 128)) //nolint:errcheck
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotFile)); err != nil {
		t.Fatalf("snapshot file missing: %v", err)
	}
	// Write more after the snapshot so recovery = snapshot + WAL tail.
	for i := 100; i < 120; i++ {
		c.Insert(record(fmt.Sprintf("k%03d", i), 128)) //nolint:errcheck
	}
	s.Close()

	s2 := diskStore(t, dir)
	defer s2.Close()
	c2 := s2.C("records")
	if c2.Len() != 120 {
		t.Fatalf("Len after snapshot recovery = %d, want 120", c2.Len())
	}
	// Unique index survived the snapshot.
	if _, err := c2.Insert(record("k050", 8)); err == nil {
		t.Fatal("unique index lost through snapshot")
	}
	if got, _ := c2.Find(Filter{{Key: "self-key", Value: "k115"}}, FindOptions{}); len(got) != 1 {
		t.Fatal("post-snapshot WAL tail not replayed")
	}
}

func TestCompactTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	s := diskStore(t, dir)
	c := s.C("records")
	for i := 0; i < 300; i++ {
		c.Insert(record(fmt.Sprintf("k%03d", i), 256)) //nolint:errcheck
	}
	segsBefore, _ := filepath.Glob(filepath.Join(dir, "wal", "wal-*.seg"))
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	segsAfter, _ := filepath.Glob(filepath.Join(dir, "wal", "wal-*.seg"))
	if len(segsAfter) >= len(segsBefore) {
		t.Fatalf("Compact kept %d of %d segments", len(segsAfter), len(segsBefore))
	}
	s.Close()
	// Everything still recovers.
	s2 := diskStore(t, dir)
	defer s2.Close()
	if got := s2.C("records").Len(); got != 300 {
		t.Fatalf("Len after compacted recovery = %d, want 300", got)
	}
}

func TestCompactInMemoryIsNoop(t *testing.T) {
	s := memStore(t)
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact on memory store: %v", err)
	}
}

func TestRejectedOpsNotPersisted(t *testing.T) {
	dir := t.TempDir()
	s := diskStore(t, dir)
	c := s.C("records")
	c.Insert(record("a", 8).Set("_id", "k")) //nolint:errcheck
	// This duplicate is rejected and must not pollute the WAL.
	if _, err := c.Insert(record("b", 8).Set("_id", "k")); err == nil {
		t.Fatal("duplicate accepted")
	}
	s.Close()
	s2 := diskStore(t, dir)
	defer s2.Close()
	got, _ := s2.C("records").Get("k")
	if got.StringOr("self-key", "") != "a" {
		t.Fatalf("rejected op replayed: %s", got)
	}
}

func TestDropCollectionPersists(t *testing.T) {
	dir := t.TempDir()
	s := diskStore(t, dir)
	s.C("gone").Insert(record("x", 8))  //nolint:errcheck
	s.C("stays").Insert(record("y", 8)) //nolint:errcheck
	s.DropCollection("gone")            //nolint:errcheck
	s.Close()
	s2 := diskStore(t, dir)
	defer s2.Close()
	if s2.C("gone").Len() != 0 {
		t.Fatal("dropped collection resurrected")
	}
	if s2.C("stays").Len() != 1 {
		t.Fatal("surviving collection lost")
	}
}

func TestSnapshotHeaderValidation(t *testing.T) {
	dir := t.TempDir()
	// Write garbage where the snapshot should be.
	if err := os.WriteFile(filepath.Join(dir, snapshotFile), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("Open accepted corrupt snapshot")
	}
}

func TestLargeDocumentPersistence(t *testing.T) {
	dir := t.TempDir()
	s := diskStore(t, dir)
	// A multi-megabyte video record, as VeePalms stores.
	big := make([]byte, 3<<20)
	for i := range big {
		big[i] = byte(i)
	}
	if _, err := s.C("videos").Insert(bson.D{
		{Key: "_id", Value: "video-1"},
		{Key: "self-key", Value: "guideline-video"},
		{Key: "val", Value: big},
	}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s2 := diskStore(t, dir)
	defer s2.Close()
	got, ok := s2.C("videos").Get("video-1")
	if !ok {
		t.Fatal("large document lost")
	}
	val, _ := got.Get("val")
	if len(val.([]byte)) != len(big) {
		t.Fatalf("large value truncated: %d bytes", len(val.([]byte)))
	}
}
