package docstore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"mystore/internal/bson"
	"mystore/internal/uuid"
)

// Value comparison and order-preserving key encoding shared by the query
// engine and the index layer. A total order is defined across all supported
// BSON types so that mixed-type fields still sort deterministically:
//
//	null < numbers < string < binary < ObjectId < bool < datetime < document < array
//
// Numbers (int32, int64, float64) compare by numeric value regardless of
// their concrete type, as in MongoDB.

const (
	rankNull = iota
	rankNumber
	rankString
	rankBinary
	rankObjectId
	rankBool
	rankDatetime
	rankDocument
	rankArray
)

func typeRank(v any) int {
	switch v.(type) {
	case nil:
		return rankNull
	case int32, int64, float64:
		return rankNumber
	case string:
		return rankString
	case []byte:
		return rankBinary
	case uuid.ObjectId:
		return rankObjectId
	case bool:
		return rankBool
	case time.Time:
		return rankDatetime
	case bson.D:
		return rankDocument
	case bson.A:
		return rankArray
	default:
		// Unknown values sort after everything; they cannot be produced by
		// the codec, only by in-process misuse.
		return rankArray + 1
	}
}

func numeric(v any) (float64, bool) {
	switch t := v.(type) {
	case int32:
		return float64(t), true
	case int64:
		return float64(t), true
	case float64:
		return t, true
	default:
		return 0, false
	}
}

// Compare orders two BSON values per the canonical order above. It returns
// -1, 0 or +1.
func Compare(a, b any) int {
	ra, rb := typeRank(a), typeRank(b)
	if ra != rb {
		return sign(ra - rb)
	}
	switch ra {
	case rankNull:
		return 0
	case rankNumber:
		fa, _ := numeric(a)
		fb, _ := numeric(b)
		switch {
		case fa < fb:
			return -1
		case fa > fb:
			return 1
		default:
			return 0
		}
	case rankString:
		return sign(bytes.Compare([]byte(a.(string)), []byte(b.(string))))
	case rankBinary:
		return sign(bytes.Compare(a.([]byte), b.([]byte)))
	case rankObjectId:
		oa, ob := a.(uuid.ObjectId), b.(uuid.ObjectId)
		return sign(bytes.Compare(oa[:], ob[:]))
	case rankBool:
		ba, bb := a.(bool), b.(bool)
		switch {
		case ba == bb:
			return 0
		case !ba:
			return -1
		default:
			return 1
		}
	case rankDatetime:
		ta, tb := a.(time.Time), b.(time.Time)
		switch {
		case ta.Before(tb):
			return -1
		case ta.After(tb):
			return 1
		default:
			return 0
		}
	case rankDocument:
		return compareDocs(a.(bson.D), b.(bson.D))
	case rankArray:
		return compareArrays(a.(bson.A), b.(bson.A))
	default:
		return 0
	}
}

func compareDocs(a, b bson.D) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if c := sign(bytes.Compare([]byte(a[i].Key), []byte(b[i].Key))); c != 0 {
			return c
		}
		if c := Compare(a[i].Value, b[i].Value); c != 0 {
			return c
		}
	}
	return sign(len(a) - len(b))
}

func compareArrays(a, b bson.A) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if c := Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	return sign(len(a) - len(b))
}

func sign(n int) int {
	switch {
	case n < 0:
		return -1
	case n > 0:
		return 1
	default:
		return 0
	}
}

// EncodeKey produces an order-preserving byte encoding of a value:
// bytes.Compare(EncodeKey(a), EncodeKey(b)) == Compare(a, b) for all
// supported values. Index trees are keyed by these encodings.
func EncodeKey(v any) []byte {
	return appendKey(nil, v)
}

func appendKey(buf []byte, v any) []byte {
	buf = append(buf, byte(typeRank(v)))
	switch t := v.(type) {
	case nil:
		return buf
	case int32:
		return appendOrderedFloat(buf, float64(t))
	case int64:
		return appendOrderedFloat(buf, float64(t))
	case float64:
		return appendOrderedFloat(buf, t)
	case string:
		return appendEscaped(buf, []byte(t))
	case []byte:
		return appendEscaped(buf, t)
	case uuid.ObjectId:
		return append(buf, t[:]...)
	case bool:
		if t {
			return append(buf, 1)
		}
		return append(buf, 0)
	case time.Time:
		return appendOrderedInt64(buf, t.UnixNano())
	case bson.D:
		for _, e := range t {
			buf = appendEscaped(buf, []byte(e.Key))
			buf = appendKey(buf, e.Value)
		}
		return append(buf, 0) // rank bytes are ≥ 0; terminator sorts shorter docs first
	case bson.A:
		for _, e := range t {
			buf = appendKey(buf, e)
		}
		return append(buf, 0)
	default:
		return buf
	}
}

// appendOrderedFloat encodes a float64 so its bytes sort in numeric order:
// flip the sign bit for non-negatives, flip all bits for negatives.
func appendOrderedFloat(buf []byte, f float64) []byte {
	bits := math.Float64bits(f)
	if bits&(1<<63) != 0 {
		bits = ^bits
	} else {
		bits |= 1 << 63
	}
	return binary.BigEndian.AppendUint64(buf, bits)
}

func appendOrderedInt64(buf []byte, n int64) []byte {
	return binary.BigEndian.AppendUint64(buf, uint64(n)^(1<<63))
}

// appendEscaped writes data so that no encoded value is a prefix of another:
// 0x00 bytes become 0x00 0xFF and the sequence ends with 0x00 0x00.
func appendEscaped(buf, data []byte) []byte {
	for _, b := range data {
		if b == 0 {
			buf = append(buf, 0, 0xFF)
		} else {
			buf = append(buf, b)
		}
	}
	return append(buf, 0, 0)
}

// idKey returns the primary-index encoding of a document's _id, validating
// the id is a supported primary-key type.
func idKey(id any) ([]byte, error) {
	switch id.(type) {
	case uuid.ObjectId, string, int32, int64:
		return EncodeKey(id), nil
	default:
		return nil, fmt.Errorf("%w: _id of type %T", ErrBadId, id)
	}
}
