package docstore

import (
	"container/list"
	"regexp"
	"sync"
)

// regexLRU is a small LRU cache of compiled regular expressions so that a
// $regex scan compiles its pattern once, not once per document.
type regexLRU struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recent; values are *regexEntry
	entries  map[string]*list.Element
}

type regexEntry struct {
	pattern string
	re      *regexp.Regexp
}

func newRegexCache(capacity int) *regexLRU {
	return &regexLRU{
		capacity: capacity,
		order:    list.New(),
		entries:  make(map[string]*list.Element),
	}
}

func (c *regexLRU) get(pattern string) (*regexp.Regexp, error) {
	c.mu.Lock()
	if el, ok := c.entries[pattern]; ok {
		c.order.MoveToFront(el)
		re := el.Value.(*regexEntry).re
		c.mu.Unlock()
		return re, nil
	}
	c.mu.Unlock()

	re, err := regexp.Compile(pattern)
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[pattern]; ok { // raced with another compiler
		c.order.MoveToFront(el)
		return el.Value.(*regexEntry).re, nil
	}
	el := c.order.PushFront(&regexEntry{pattern: pattern, re: re})
	c.entries[pattern] = el
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*regexEntry).pattern)
	}
	return re, nil
}
