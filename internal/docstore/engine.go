package docstore

import (
	"fmt"
	"sync"

	"mystore/internal/bson"
	"mystore/internal/btree"
	"mystore/internal/lsm"
)

// The store's primary index is pluggable: the seed "map" engine keeps every
// decoded document in an in-memory btree (snapshot + full WAL replay for
// persistence), while the "lsm" engine keeps documents in the log-structured
// table store and only the working set in memory. Collections talk to either
// through primaryStore; mutations additionally carry the op's WAL LSN so the
// lsm engine can checkpoint (truncate) the log as memtables flush.
//
// LSM key encoding. One engine holds every collection, namespaced as
// <collection> 0x00 <idKey>. Metadata sorts before all documents under the
// 0x00 prefix:
//
//	0x00 'c' 0x00 <collection>                 collection marker
//	0x00 'i' 0x00 <collection> 0x00 <field>    index definition (value: unique flag)
//
// Markers make empty-but-written-to collections and index definitions
// recoverable without scanning documents: open reads just the metadata range
// and rebuilds secondary indexes by scanning only the collections that
// declare them.

// primaryStore is the primary (_id -> document) index of one collection.
// Callers treat returned documents as immutable, exactly like the btree
// engine's stored documents.
type primaryStore interface {
	// Get returns the stored document for key.
	Get(key []byte) (bson.D, bool)
	// Set stores doc (already encoded as enc) at key. isNew tells the
	// engine whether key is a fresh insert (the caller has verified
	// existence under the store's write lock).
	Set(key []byte, doc bson.D, enc []byte, lsn uint64, isNew bool) error
	// Delete removes key; the caller has verified it exists.
	Delete(key []byte, lsn uint64) error
	// Ascend walks documents in key order until fn returns false.
	Ascend(fn func(key []byte, doc bson.D) bool)
	// Len returns the document count.
	Len() int
}

// memPrimary is the seed engine: decoded documents in an in-memory btree.
type memPrimary struct {
	tree *btree.Tree // idKey -> bson.D
}

func newMemPrimary() *memPrimary { return &memPrimary{tree: btree.New()} }

func (p *memPrimary) Get(key []byte) (bson.D, bool) {
	v, ok := p.tree.Get(key)
	if !ok {
		return nil, false
	}
	return v.(bson.D), true
}

func (p *memPrimary) Set(key []byte, doc bson.D, enc []byte, lsn uint64, isNew bool) error {
	p.tree.Set(key, doc)
	return nil
}

func (p *memPrimary) Delete(key []byte, lsn uint64) error {
	p.tree.Delete(key)
	return nil
}

func (p *memPrimary) Ascend(fn func(key []byte, doc bson.D) bool) {
	p.tree.Ascend(func(it btree.Item) bool {
		return fn(it.Key, it.Value.(bson.D))
	})
}

func (p *memPrimary) Len() int { return p.tree.Len() }

// --- lsm engine adapter ---

const (
	metaCollPrefix  = "\x00c\x00"
	metaIndexPrefix = "\x00i\x00"
)

func docKey(coll string, idk []byte) []byte {
	k := make([]byte, 0, len(coll)+1+len(idk))
	k = append(k, coll...)
	k = append(k, 0)
	return append(k, idk...)
}

func collRange(coll string) (lo, hi []byte) {
	return append([]byte(coll), 0), append([]byte(coll), 1)
}

func collMarkerKey(coll string) []byte {
	return append([]byte(metaCollPrefix), coll...)
}

func indexDefKey(coll, field string) []byte {
	k := append([]byte(metaIndexPrefix), coll...)
	k = append(k, 0)
	return append(k, field...)
}

// lsmPrimary scopes one collection onto the store-wide lsm engine. The
// document count is maintained incrementally once known; the first Len()
// after a restart discovers it with one scan (the engine keeps no per-prefix
// counts).
type lsmPrimary struct {
	eng    *lsm.Engine
	coll   string
	marked bool // collection marker written (writers are store-serialized)

	countMu    sync.Mutex
	count      int
	countKnown bool
}

func newLsmPrimary(eng *lsm.Engine, coll string) *lsmPrimary {
	return &lsmPrimary{eng: eng, coll: coll}
}

// decode unwraps an engine value. Engine reads fail only on a poisoned
// (crashed/closed) engine or on storage corruption; the former reads as
// absent (the store is on its way down), the latter is fatal — serving a
// wrong answer would silently lose data.
func (p *lsmPrimary) decode(val []byte, err error) (bson.D, bool) {
	if err != nil {
		if err == lsm.ErrClosed {
			return nil, false
		}
		panic(fmt.Sprintf("docstore: lsm read failed: %v", err))
	}
	doc, derr := bson.Unmarshal(val)
	if derr != nil {
		panic(fmt.Sprintf("docstore: corrupt document in lsm store: %v", derr))
	}
	return doc, true
}

func (p *lsmPrimary) Get(key []byte) (bson.D, bool) {
	val, ok, err := p.eng.Get(docKey(p.coll, key))
	if err == nil && !ok {
		return nil, false
	}
	return p.decode(val, err)
}

func (p *lsmPrimary) Set(key []byte, doc bson.D, enc []byte, lsn uint64, isNew bool) error {
	if !p.marked {
		if err := p.eng.Apply(collMarkerKey(p.coll), nil, lsn); err != nil {
			return err
		}
		p.marked = true
	}
	if err := p.eng.Apply(docKey(p.coll, key), enc, lsn); err != nil {
		return err
	}
	if isNew {
		p.adjust(1)
	}
	return nil
}

func (p *lsmPrimary) Delete(key []byte, lsn uint64) error {
	if err := p.eng.Delete(docKey(p.coll, key), lsn); err != nil {
		return err
	}
	p.adjust(-1)
	return nil
}

func (p *lsmPrimary) Ascend(fn func(key []byte, doc bson.D) bool) {
	lo, hi := collRange(p.coll)
	err := p.eng.Iter(lo, hi, func(k, v []byte) bool {
		doc, ok := p.decode(v, nil)
		if !ok {
			return false
		}
		return fn(k[len(p.coll)+1:], doc)
	})
	if err != nil && err != lsm.ErrClosed {
		panic(fmt.Sprintf("docstore: lsm scan failed: %v", err))
	}
}

func (p *lsmPrimary) Len() int {
	p.countMu.Lock()
	defer p.countMu.Unlock()
	if !p.countKnown {
		// Discovery scan. Callers hold the collection lock (read or write),
		// and mutations hold it exclusively, so the count cannot move
		// underneath the scan.
		n := 0
		lo, hi := collRange(p.coll)
		if err := p.eng.Iter(lo, hi, func(k, v []byte) bool {
			n++
			return true
		}); err != nil {
			return 0 // crashed engine: report empty rather than lie
		}
		p.count = n
		p.countKnown = true
	}
	return p.count
}

func (p *lsmPrimary) adjust(delta int) {
	p.countMu.Lock()
	if p.countKnown {
		p.count += delta
	}
	p.countMu.Unlock()
}

// saveIndexDef persists an index definition in the engine's metadata range
// so restarts can rebuild the index without replaying the full WAL history.
func (p *lsmPrimary) saveIndexDef(field string, unique bool, lsn uint64) error {
	val := []byte{0}
	if unique {
		val[0] = 1
	}
	return p.eng.Apply(indexDefKey(p.coll, field), val, lsn)
}

// dropCollLSM tombstones every key belonging to a dropped collection:
// documents, the collection marker, and its index definitions. Caller holds
// writeMu.
func (s *Store) dropCollLSM(name string, lsn uint64) error {
	var keys [][]byte
	collect := func(lo, hi []byte) error {
		return s.engine.Iter(lo, hi, func(k, v []byte) bool {
			keys = append(keys, append([]byte(nil), k...))
			return true
		})
	}
	lo, hi := collRange(name)
	if err := collect(lo, hi); err != nil {
		return err
	}
	ixLo := indexDefKey(name, "")
	ixHi := append([]byte(nil), ixLo...)
	ixHi[len(ixHi)-1] = 1 // 0x00 terminator -> 0x01: covers every field suffix
	if err := collect(ixLo, ixHi); err != nil {
		return err
	}
	keys = append(keys, collMarkerKey(name))
	for _, k := range keys {
		if err := s.engine.Delete(k, lsn); err != nil {
			return err
		}
	}
	return nil
}

// indexDef is one recovered index definition.
type indexDef struct {
	coll   string
	field  string
	unique bool
}

// loadLSMMeta scans the engine's metadata range, creating every known
// collection and returning the index definitions to rebuild.
func (s *Store) loadLSMMeta() ([]indexDef, error) {
	var defs []indexDef
	err := s.engine.Iter([]byte{0}, []byte{1}, func(k, v []byte) bool {
		key := string(k)
		switch {
		case len(key) > len(metaCollPrefix) && key[:len(metaCollPrefix)] == metaCollPrefix:
			s.C(key[len(metaCollPrefix):])
		case len(key) > len(metaIndexPrefix) && key[:len(metaIndexPrefix)] == metaIndexPrefix:
			rest := key[len(metaIndexPrefix):]
			for i := 0; i < len(rest); i++ {
				if rest[i] == 0 {
					defs = append(defs, indexDef{
						coll:   rest[:i],
						field:  rest[i+1:],
						unique: len(v) > 0 && v[0] == 1,
					})
					break
				}
			}
		}
		return true
	})
	if err != nil {
		return nil, err
	}
	return defs, nil
}
