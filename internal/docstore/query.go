package docstore

import (
	"fmt"
	"regexp"
	"sort"
	"strings"

	"mystore/internal/bson"
)

// The query engine. Filters use the MongoDB shell dialect the paper's
// "complex query functions" refer to: a filter document whose elements are
// either `field: value` equality matches, `field: {$op: operand}` operator
// matches, or the logical combinators `$and`, `$or`, `$not` / `$nor`.
//
// Supported operators: $eq, $ne, $gt, $gte, $lt, $lte, $in, $nin, $exists,
// $regex, $size. Dotted field paths descend into embedded documents.

// Filter is a query filter document.
type Filter = bson.D

// Match reports whether doc satisfies filter. A nil/empty filter matches
// every document. It returns an error for malformed filters (unknown
// operators, non-array $in operands, invalid $regex patterns).
func Match(doc bson.D, filter Filter) (bool, error) {
	for _, e := range filter {
		ok, err := matchElement(doc, e)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

func matchElement(doc bson.D, e bson.E) (bool, error) {
	switch e.Key {
	case "$and":
		arr, ok := e.Value.(bson.A)
		if !ok {
			return false, fmt.Errorf("%w: $and requires an array", ErrBadFilter)
		}
		for _, sub := range arr {
			f, ok := sub.(bson.D)
			if !ok {
				return false, fmt.Errorf("%w: $and elements must be documents", ErrBadFilter)
			}
			m, err := Match(doc, f)
			if err != nil || !m {
				return m, err
			}
		}
		return true, nil
	case "$or":
		arr, ok := e.Value.(bson.A)
		if !ok {
			return false, fmt.Errorf("%w: $or requires an array", ErrBadFilter)
		}
		for _, sub := range arr {
			f, ok := sub.(bson.D)
			if !ok {
				return false, fmt.Errorf("%w: $or elements must be documents", ErrBadFilter)
			}
			m, err := Match(doc, f)
			if err != nil {
				return false, err
			}
			if m {
				return true, nil
			}
		}
		return false, nil
	case "$nor":
		m, err := matchElement(doc, bson.E{Key: "$or", Value: e.Value})
		if err != nil {
			return false, err
		}
		return !m, nil
	}
	if strings.HasPrefix(e.Key, "$") {
		return false, fmt.Errorf("%w: unknown top-level operator %q", ErrBadFilter, e.Key)
	}

	val, present := lookupPath(doc, e.Key)
	if ops, ok := e.Value.(bson.D); ok && isOperatorDoc(ops) {
		return matchOperators(val, present, ops)
	}
	// Implicit equality.
	return present && Compare(val, e.Value) == 0, nil
}

// isOperatorDoc reports whether every key of d starts with '$'. A plain
// embedded document used as an equality operand has no $-keys.
func isOperatorDoc(d bson.D) bool {
	if len(d) == 0 {
		return false
	}
	for _, e := range d {
		if !strings.HasPrefix(e.Key, "$") {
			return false
		}
	}
	return true
}

func matchOperators(val any, present bool, ops bson.D) (bool, error) {
	for _, op := range ops {
		ok, err := matchOperator(val, present, op.Key, op.Value)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

func matchOperator(val any, present bool, op string, operand any) (bool, error) {
	switch op {
	case "$eq":
		return present && Compare(val, operand) == 0, nil
	case "$ne":
		return !present || Compare(val, operand) != 0, nil
	case "$gt", "$gte", "$lt", "$lte":
		if !present || typeRank(val) != typeRank(operand) {
			return false, nil
		}
		c := Compare(val, operand)
		switch op {
		case "$gt":
			return c > 0, nil
		case "$gte":
			return c >= 0, nil
		case "$lt":
			return c < 0, nil
		default:
			return c <= 0, nil
		}
	case "$in", "$nin":
		arr, ok := operand.(bson.A)
		if !ok {
			return false, fmt.Errorf("%w: %s requires an array", ErrBadFilter, op)
		}
		found := false
		if present {
			for _, candidate := range arr {
				if Compare(val, candidate) == 0 {
					found = true
					break
				}
			}
		}
		if op == "$in" {
			return found, nil
		}
		return !found, nil
	case "$exists":
		want, ok := operand.(bool)
		if !ok {
			return false, fmt.Errorf("%w: $exists requires a bool", ErrBadFilter)
		}
		return present == want, nil
	case "$regex":
		pattern, ok := operand.(string)
		if !ok {
			return false, fmt.Errorf("%w: $regex requires a string pattern", ErrBadFilter)
		}
		re, err := compileRegex(pattern)
		if err != nil {
			return false, fmt.Errorf("%w: bad $regex %q: %v", ErrBadFilter, pattern, err)
		}
		s, isStr := val.(string)
		return present && isStr && re.MatchString(s), nil
	case "$size":
		n, ok := numeric(operand)
		if !ok {
			return false, fmt.Errorf("%w: $size requires a number", ErrBadFilter)
		}
		arr, isArr := val.(bson.A)
		return present && isArr && float64(len(arr)) == n, nil
	case "$not":
		sub, ok := operand.(bson.D)
		if !ok {
			return false, fmt.Errorf("%w: $not requires an operator document", ErrBadFilter)
		}
		m, err := matchOperators(val, present, sub)
		if err != nil {
			return false, err
		}
		return !m, nil
	default:
		return false, fmt.Errorf("%w: unknown operator %q", ErrBadFilter, op)
	}
}

// regexCache avoids recompiling patterns on every document of a scan.
var regexCache = newRegexCache(256)

func compileRegex(pattern string) (*regexp.Regexp, error) {
	return regexCache.get(pattern)
}

// lookupPath resolves a possibly dotted field path against a document.
func lookupPath(doc bson.D, path string) (any, bool) {
	cur := any(doc)
	for {
		dot := strings.IndexByte(path, '.')
		head := path
		if dot >= 0 {
			head = path[:dot]
		}
		d, ok := cur.(bson.D)
		if !ok {
			return nil, false
		}
		v, ok := d.Get(head)
		if !ok {
			return nil, false
		}
		if dot < 0 {
			return v, true
		}
		cur = v
		path = path[dot+1:]
	}
}

// SortField names a field and direction for result ordering.
type SortField struct {
	Field string
	Desc  bool
}

// FindOptions shape a query's results.
type FindOptions struct {
	Sort       []SortField
	Skip       int
	Limit      int      // 0 means no limit
	Projection []string // empty means all fields; _id is always included
}

// SortDocuments orders docs in place by the given sort specification. It is
// exported for layers that merge documents from several stores (the
// cluster's scatter-gather query path) and need identical ordering rules.
func SortDocuments(docs []bson.D, fields []SortField) {
	sortDocs(docs, fields)
}

// WindowDocuments applies skip and limit to a merged result slice with the
// same semantics Find uses.
func WindowDocuments(docs []bson.D, skip, limit int) []bson.D {
	return applyWindow(docs, skip, limit)
}

// sortDocs orders docs in place by the given sort specification.
func sortDocs(docs []bson.D, fields []SortField) {
	if len(fields) == 0 {
		return
	}
	sort.SliceStable(docs, func(i, j int) bool {
		for _, f := range fields {
			vi, _ := lookupPath(docs[i], f.Field)
			vj, _ := lookupPath(docs[j], f.Field)
			c := Compare(vi, vj)
			if c == 0 {
				continue
			}
			if f.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
}

// applyWindow applies skip and limit to a result slice.
func applyWindow(docs []bson.D, skip, limit int) []bson.D {
	if skip > 0 {
		if skip >= len(docs) {
			return nil
		}
		docs = docs[skip:]
	}
	if limit > 0 && limit < len(docs) {
		docs = docs[:limit]
	}
	return docs
}

// project returns a copy of doc containing only the requested fields (plus
// _id, which is always kept, matching MongoDB's default).
func project(doc bson.D, fields []string) bson.D {
	if len(fields) == 0 {
		return doc
	}
	out := bson.D{}
	if id, ok := doc.Get("_id"); ok {
		out = append(out, bson.E{Key: "_id", Value: id})
	}
	for _, f := range fields {
		if f == "_id" {
			continue
		}
		if v, ok := doc.Get(f); ok {
			out = append(out, bson.E{Key: f, Value: v})
		}
	}
	return out
}
