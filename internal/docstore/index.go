package docstore

import (
	"mystore/internal/bson"
	"mystore/internal/btree"
)

// fieldIndex is a secondary index over one (possibly dotted) field path. It
// maps the order-preserving encoding of the field value to the set of
// primary keys of documents holding that value. Documents missing the field
// are not indexed; queries that must consider them fall back to a scan.
type fieldIndex struct {
	field  string
	unique bool
	tree   *btree.Tree // EncodeKey(field value) -> map[string]struct{} of id keys
}

func newFieldIndex(field string, unique bool) *fieldIndex {
	return &fieldIndex{field: field, unique: unique, tree: btree.New()}
}

// insert adds a document's entry under idKey.
func (ix *fieldIndex) insert(idKey string, doc bson.D) {
	v, ok := lookupPath(doc, ix.field)
	if !ok {
		return
	}
	key := EncodeKey(v)
	if cur, ok := ix.tree.Get(key); ok {
		cur.(map[string]struct{})[idKey] = struct{}{}
		return
	}
	ix.tree.Set(key, map[string]struct{}{idKey: {}})
}

// wouldViolate reports whether inserting doc under idKey would break a
// unique constraint.
func (ix *fieldIndex) wouldViolate(idKey string, doc bson.D) bool {
	if !ix.unique {
		return false
	}
	v, ok := lookupPath(doc, ix.field)
	if !ok {
		return false
	}
	cur, ok := ix.tree.Get(EncodeKey(v))
	if !ok {
		return false
	}
	set := cur.(map[string]struct{})
	if len(set) == 0 {
		return false
	}
	if _, same := set[idKey]; same && len(set) == 1 {
		return false
	}
	return true
}

// remove drops a document's entry.
func (ix *fieldIndex) remove(idKey string, doc bson.D) {
	v, ok := lookupPath(doc, ix.field)
	if !ok {
		return
	}
	key := EncodeKey(v)
	cur, ok := ix.tree.Get(key)
	if !ok {
		return
	}
	set := cur.(map[string]struct{})
	delete(set, idKey)
	if len(set) == 0 {
		ix.tree.Delete(key)
	}
}

// lookupEq returns the id keys of documents whose field equals v.
func (ix *fieldIndex) lookupEq(v any) []string {
	cur, ok := ix.tree.Get(EncodeKey(v))
	if !ok {
		return nil
	}
	set := cur.(map[string]struct{})
	out := make([]string, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	return out
}

// lookupRange returns id keys for field values between lo and hi, where nil
// means unbounded on that side. The result is a superset of the exact range:
// the planner always re-verifies candidates with Match, so the index may
// over-include (the lower bound stays inclusive even for $gt) but must never
// miss a matching document.
func (ix *fieldIndex) lookupRange(lo, hi any, hiIncl bool) []string {
	var loKey, hiKey []byte
	if lo != nil {
		loKey = EncodeKey(lo)
	}
	if hi != nil {
		hiKey = EncodeKey(hi)
		if hiIncl {
			hiKey = append(hiKey, 0xFF) // admit exact matches of hi
		}
	}
	var out []string
	ix.tree.AscendRange(loKey, hiKey, func(it btree.Item) bool {
		for id := range it.Value.(map[string]struct{}) {
			out = append(out, id)
		}
		return true
	})
	return out
}

// entryCount reports the number of distinct indexed values, for stats.
func (ix *fieldIndex) entryCount() int { return ix.tree.Len() }
