package docstore

import (
	"errors"
	"testing"

	"mystore/internal/bson"
)

func aggFixture(t *testing.T) *Collection {
	t.Helper()
	s := memStore(t)
	c := s.C("assets")
	rows := []struct {
		kind  string
		bytes int64
		score float64
	}{
		{"scene", 100, 1.0},
		{"scene", 300, 2.0},
		{"video", 5000, 3.0},
		{"video", 7000, 5.0},
		{"video", 3000, 1.0},
		{"report", 50, 4.0},
	}
	for i, r := range rows {
		c.Insert(bson.D{ //nolint:errcheck
			{Key: "_id", Value: int64(i)},
			{Key: "kind", Value: r.kind},
			{Key: "bytes", Value: r.bytes},
			{Key: "score", Value: r.score},
		})
	}
	return c
}

func TestAggregateGroupCountSum(t *testing.T) {
	c := aggFixture(t)
	rows, err := c.Aggregate(nil, GroupSpec{
		By: "kind",
		Accumulators: []AccumulatorSpec{
			{Name: "n", Op: AccCount},
			{Name: "total", Op: AccSum, Field: "bytes"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("groups = %d, want 3", len(rows))
	}
	// Groups are ordered by value: report < scene < video.
	wantOrder := []string{"report", "scene", "video"}
	wantN := []int64{1, 2, 3}
	wantTotal := []int64{50, 400, 15000}
	for i, row := range rows {
		id, _ := row.Get("_id")
		n, _ := row.Get("n")
		total, _ := row.Get("total")
		if id != wantOrder[i] || n != wantN[i] || total != wantTotal[i] {
			t.Fatalf("row %d = %s, want %s/%d/%d", i, row, wantOrder[i], wantN[i], wantTotal[i])
		}
	}
}

func TestAggregateAvgMinMax(t *testing.T) {
	c := aggFixture(t)
	rows, err := c.Aggregate(Filter{{Key: "kind", Value: "video"}}, GroupSpec{
		By: "kind",
		Accumulators: []AccumulatorSpec{
			{Name: "avgScore", Op: AccAvg, Field: "score"},
			{Name: "minB", Op: AccMin, Field: "bytes"},
			{Name: "maxB", Op: AccMax, Field: "bytes"},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("groups = %d", len(rows))
	}
	avg, _ := rows[0].Get("avgScore")
	if avg != 3.0 {
		t.Errorf("avgScore = %v", avg)
	}
	if v, _ := rows[0].Get("minB"); v != int64(3000) {
		t.Errorf("minB = %v", v)
	}
	if v, _ := rows[0].Get("maxB"); v != int64(7000) {
		t.Errorf("maxB = %v", v)
	}
}

func TestAggregateFloatSum(t *testing.T) {
	c := aggFixture(t)
	rows, err := c.Aggregate(nil, GroupSpec{
		By:           "kind",
		Accumulators: []AccumulatorSpec{{Name: "s", Op: AccSum, Field: "score"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rows {
		if _, isFloat := func() (any, bool) { v, _ := row.Get("s"); _, f := v.(float64); return v, f }(); !isFloat {
			t.Fatalf("float field sum should stay float: %s", row)
		}
	}
}

func TestAggregateMissingGroupField(t *testing.T) {
	s := memStore(t)
	c := s.C("x")
	c.Insert(bson.D{{Key: "a", Value: int64(1)}})                             //nolint:errcheck
	c.Insert(bson.D{{Key: "a", Value: int64(2)}, {Key: "g", Value: "named"}}) //nolint:errcheck
	rows, err := c.Aggregate(nil, GroupSpec{
		By:           "g",
		Accumulators: []AccumulatorSpec{{Name: "n", Op: AccCount}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("groups = %d, want 2 (nil group + named)", len(rows))
	}
	// nil sorts first in the canonical order.
	if id, _ := rows[0].Get("_id"); id != nil {
		t.Fatalf("first group = %v, want nil", id)
	}
}

func TestAggregateErrors(t *testing.T) {
	c := aggFixture(t)
	cases := []GroupSpec{
		{By: "kind", Accumulators: []AccumulatorSpec{{Name: "x", Op: "$median", Field: "bytes"}}},
		{By: "kind", Accumulators: []AccumulatorSpec{{Name: "", Op: AccCount}}},
		{By: "kind", Accumulators: []AccumulatorSpec{{Name: "x", Op: AccSum}}},
	}
	for i, spec := range cases {
		if _, err := c.Aggregate(nil, spec); !errors.Is(err, ErrBadAggregate) {
			t.Errorf("case %d: err = %v", i, err)
		}
	}
	// Summing a non-numeric field.
	if _, err := c.Aggregate(nil, GroupSpec{
		By:           "kind",
		Accumulators: []AccumulatorSpec{{Name: "x", Op: AccSum, Field: "kind"}},
	}); !errors.Is(err, ErrBadAggregate) {
		t.Errorf("non-numeric sum err = %v", err)
	}
	// Bad filter propagates.
	if _, err := c.Aggregate(Filter{{Key: "x", Value: bson.D{{Key: "$bogus", Value: 1}}}},
		GroupSpec{By: "kind", Accumulators: []AccumulatorSpec{{Name: "n", Op: AccCount}}}); err == nil {
		t.Error("bad filter accepted")
	}
}

func TestAggregateEmptyCollection(t *testing.T) {
	s := memStore(t)
	rows, err := s.C("empty").Aggregate(nil, GroupSpec{
		By:           "kind",
		Accumulators: []AccumulatorSpec{{Name: "n", Op: AccCount}},
	})
	if err != nil || len(rows) != 0 {
		t.Fatalf("Aggregate on empty = %v, %v", rows, err)
	}
}
