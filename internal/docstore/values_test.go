package docstore

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"mystore/internal/bson"
	"mystore/internal/uuid"
)

func TestCompareNumbersAcrossTypes(t *testing.T) {
	cases := []struct {
		a, b any
		want int
	}{
		{int32(1), int64(1), 0},
		{int32(1), float64(1), 0},
		{int64(2), float64(2.5), -1},
		{float64(3), int32(2), 1},
		{int64(-5), int64(5), -1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareTypeRankOrder(t *testing.T) {
	// The canonical cross-type order from values.go.
	ordered := []any{
		nil,
		int64(999999),
		"a string",
		[]byte{0xff},
		uuid.NewObjectId(),
		false,
		time.Now(),
		bson.D{{Key: "k", Value: int32(1)}},
		bson.A{int32(1)},
	}
	for i := 0; i < len(ordered)-1; i++ {
		if got := Compare(ordered[i], ordered[i+1]); got != -1 {
			t.Errorf("Compare(rank %d, rank %d) = %d, want -1", i, i+1, got)
		}
		if got := Compare(ordered[i+1], ordered[i]); got != 1 {
			t.Errorf("Compare(rank %d, rank %d) = %d, want 1", i+1, i, got)
		}
	}
}

func TestCompareSameType(t *testing.T) {
	t1 := time.Unix(100, 0)
	t2 := time.Unix(200, 0)
	id1, id2 := uuid.NewObjectIdAt(t1), uuid.NewObjectIdAt(t2)
	cases := []struct {
		a, b any
		want int
	}{
		{"abc", "abd", -1},
		{"abc", "abc", 0},
		{[]byte{1, 2}, []byte{1, 3}, -1},
		{false, true, -1},
		{true, true, 0},
		{t1, t2, -1},
		{t2, t2, 0},
		{id1, id2, -1},
		{nil, nil, 0},
		{bson.D{{Key: "a", Value: int32(1)}}, bson.D{{Key: "a", Value: int32(2)}}, -1},
		{bson.D{{Key: "a", Value: int32(1)}}, bson.D{{Key: "b", Value: int32(1)}}, -1},
		{bson.D{{Key: "a", Value: int32(1)}}, bson.D{{Key: "a", Value: int32(1)}, {Key: "b", Value: int32(1)}}, -1},
		{bson.A{int32(1)}, bson.A{int32(1), int32(2)}, -1},
		{bson.A{int32(2)}, bson.A{int32(1), int32(2)}, 1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestEncodeKeyPreservesOrder(t *testing.T) {
	values := []any{
		nil,
		int64(-1000), int32(-1), float64(-0.5), int32(0), float64(0.5), int64(7), float64(1e9),
		"", "a", "a\x00b", "a\x00c", "ab", "b",
		[]byte{}, []byte{0}, []byte{0, 1}, []byte{1},
		uuid.NewObjectIdAt(time.Unix(1, 0)), uuid.NewObjectIdAt(time.Unix(2, 0)),
		false, true,
		time.Unix(0, 5), time.Unix(0, 6),
		bson.D{{Key: "a", Value: int32(1)}}, bson.D{{Key: "a", Value: int32(2)}},
		bson.A{int32(1)}, bson.A{int32(2)},
	}
	for i := range values {
		for j := range values {
			cmp := Compare(values[i], values[j])
			enc := bytes.Compare(EncodeKey(values[i]), EncodeKey(values[j]))
			if cmp != enc {
				t.Errorf("order mismatch between Compare and EncodeKey for (%v, %v): cmp=%d enc=%d",
					values[i], values[j], cmp, enc)
			}
		}
	}
}

func TestEncodeKeyOrderPropertyInts(t *testing.T) {
	f := func(a, b int64) bool {
		cmp := Compare(a, b)
		// int64 goes through the int -> int64 normalization in bson; here we
		// pass int64 directly.
		enc := bytes.Compare(EncodeKey(a), EncodeKey(b))
		return cmp == enc
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeKeyOrderPropertyStrings(t *testing.T) {
	f := func(a, b string) bool {
		return Compare(a, b) == bytes.Compare(EncodeKey(a), EncodeKey(b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeKeyNoPrefixCollisionStrings(t *testing.T) {
	// "a" must not be a prefix-equal of "a\x00...", the classic terminator bug.
	a, b := EncodeKey("a"), EncodeKey("a\x00")
	if bytes.Equal(a, b) {
		t.Fatal("distinct strings encoded identically")
	}
	if bytes.HasPrefix(b, a) {
		t.Fatal("escaped encoding produced a prefix collision")
	}
}

func TestIdKeyTypes(t *testing.T) {
	for _, good := range []any{uuid.NewObjectId(), "string-id", int32(1), int64(2)} {
		if _, err := idKey(good); err != nil {
			t.Errorf("idKey(%T) rejected: %v", good, err)
		}
	}
	for _, bad := range []any{3.14, true, nil, bson.D{}, []byte{1}} {
		if _, err := idKey(bad); err == nil {
			t.Errorf("idKey(%T) accepted, want error", bad)
		}
	}
}

func TestLookupPathDotted(t *testing.T) {
	doc := bson.D{
		{Key: "meta", Value: bson.D{
			{Key: "owner", Value: bson.D{{Key: "name", Value: "alice"}}},
			{Key: "size", Value: int64(42)},
		}},
		{Key: "flat", Value: "x"},
	}
	if v, ok := lookupPath(doc, "meta.owner.name"); !ok || v != "alice" {
		t.Errorf("lookupPath(meta.owner.name) = %v, %v", v, ok)
	}
	if v, ok := lookupPath(doc, "meta.size"); !ok || v != int64(42) {
		t.Errorf("lookupPath(meta.size) = %v, %v", v, ok)
	}
	if v, ok := lookupPath(doc, "flat"); !ok || v != "x" {
		t.Errorf("lookupPath(flat) = %v, %v", v, ok)
	}
	if _, ok := lookupPath(doc, "meta.absent"); ok {
		t.Error("lookupPath(meta.absent) found something")
	}
	if _, ok := lookupPath(doc, "flat.deeper"); ok {
		t.Error("lookupPath through a scalar found something")
	}
}
