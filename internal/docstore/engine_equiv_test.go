package docstore

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"mystore/internal/bson"
	"mystore/internal/lsm"
	"mystore/internal/wal"
)

// Tiny lsm tuning so small test workloads still exercise flushes, multiple
// tables, and compaction.
func testTuning() lsm.Tuning {
	return lsm.Tuning{
		MemtableBytes:    8 << 10,
		BlockBytes:       512,
		BlockCacheBytes:  64 << 10,
		L0CompactTrigger: 3,
		LevelBaseBytes:   32 << 10,
		TargetFileBytes:  16 << 10,
		MaxImmutable:     2,
	}
}

func lsmStore(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(Options{
		Dir:     dir,
		WAL:     wal.Options{SegmentSize: 4096},
		Engine:  "lsm",
		Storage: testTuning(),
	})
	if err != nil {
		t.Fatalf("Open lsm store: %v", err)
	}
	return s
}

// contents walks every collection and returns name -> _id key -> document,
// read through the public scan path.
func contents(s *Store) map[string]map[string]bson.D {
	out := make(map[string]map[string]bson.D)
	for _, name := range s.Collections() {
		docs := make(map[string]bson.D)
		s.C(name).Each(func(doc bson.D) bool {
			id, _ := doc.Get("_id")
			docs[fmt.Sprintf("%v", id)] = doc
			return true
		})
		out[name] = docs
	}
	return out
}

// TestEngineEquivalence drives the map engine and the lsm engine with one
// randomized op sequence and checks they agree — after every batch, after
// flush and compaction, and after reopen. This is the contract that lets
// the cluster layer stay engine-oblivious.
func TestEngineEquivalence(t *testing.T) {
	seed := time.Now().UnixNano()
	rng := rand.New(rand.NewSource(seed))
	t.Logf("seed %d", seed)

	mapDir, lsmDir := t.TempDir(), t.TempDir()
	ms := diskStore(t, mapDir)
	ls := lsmStore(t, lsmDir)
	closeBoth := func() { ms.Close(); ls.Close() }
	defer func() { closeBoth() }()

	colls := []string{"alpha", "beta", "gamma"}
	// ids we know exist, per collection, for targeted updates/deletes.
	live := map[string][]string{}
	next := 0

	stores := func() [2]*Store { return [2]*Store{ms, ls} }

	applyBoth := func(fn func(s *Store) error) {
		t.Helper()
		for i, s := range stores() {
			if err := fn(s); err != nil {
				t.Fatalf("engine %d (seed %d): %v", i, seed, err)
			}
		}
	}

	for _, coll := range colls[:2] {
		coll := coll
		applyBoth(func(s *Store) error { return s.C(coll).EnsureIndex("tag", false) })
	}

	const rounds = 6
	const opsPerRound = 300
	for round := 0; round < rounds; round++ {
		for i := 0; i < opsPerRound; i++ {
			coll := colls[rng.Intn(len(colls))]
			switch r := rng.Float64(); {
			case r < 0.55 || len(live[coll]) == 0: // insert
				id := fmt.Sprintf("d%06d", next)
				next++
				doc := bson.D{
					{Key: "_id", Value: id},
					{Key: "tag", Value: fmt.Sprintf("t%d", rng.Intn(20))},
					{Key: "pad", Value: strings.Repeat("x", rng.Intn(100))},
				}
				applyBoth(func(s *Store) error { _, err := s.C(coll).Insert(doc); return err })
				live[coll] = append(live[coll], id)
			case r < 0.80: // update
				id := live[coll][rng.Intn(len(live[coll]))]
				doc := bson.D{
					{Key: "_id", Value: id},
					{Key: "tag", Value: fmt.Sprintf("t%d", rng.Intn(20))},
					{Key: "rev", Value: int64(round)},
				}
				applyBoth(func(s *Store) error { return s.C(coll).Update(doc) })
			default: // delete
				n := rng.Intn(len(live[coll]))
				id := live[coll][n]
				live[coll] = append(live[coll][:n], live[coll][n+1:]...)
				applyBoth(func(s *Store) error { _, err := s.C(coll).Delete(id); return err })
			}
		}

		// Flush/compact the lsm store mid-history so the comparison spans
		// memtable-only, mixed, and table-resident states.
		if round%2 == 1 {
			if err := ls.Compact(); err != nil {
				t.Fatalf("lsm Compact: %v", err)
			}
			if err := ls.Engine().CompactNow(); err != nil {
				t.Fatalf("lsm CompactNow: %v", err)
			}
		}

		want, got := contents(ms), contents(ls)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("round %d (seed %d): engines diverged", round, seed)
		}
		// Indexed queries agree too.
		for _, coll := range colls[:2] {
			f := Filter{{Key: "tag", Value: fmt.Sprintf("t%d", rng.Intn(20))}}
			wd, err1 := ms.C(coll).Find(f, FindOptions{})
			gd, err2 := ls.C(coll).Find(f, FindOptions{})
			if err1 != nil || err2 != nil {
				t.Fatalf("find: %v / %v", err1, err2)
			}
			if len(wd) != len(gd) {
				t.Fatalf("round %d (seed %d): indexed find %s: map %d docs, lsm %d", round, seed, coll, len(wd), len(gd))
			}
		}
	}

	// Drop one collection on both and re-verify.
	applyBoth(func(s *Store) error { return s.DropCollection("gamma") })
	if !reflect.DeepEqual(contents(ms), contents(ls)) {
		t.Fatalf("post-drop (seed %d): engines diverged", seed)
	}

	// Reopen both; state and index definitions must survive.
	closeBoth()
	ms = diskStore(t, mapDir)
	ls = lsmStore(t, lsmDir)
	if !reflect.DeepEqual(contents(ms), contents(ls)) {
		t.Fatalf("post-reopen (seed %d): engines diverged", seed)
	}
	for _, s := range stores() {
		if got := s.C("alpha").Indexes(); len(got) != 1 || got[0] != "tag" {
			t.Fatalf("indexes after reopen = %v, want [tag]", got)
		}
	}
	if n1, n2 := ms.C("alpha").Len(), ls.C("alpha").Len(); n1 != n2 {
		t.Fatalf("Len after reopen: map %d, lsm %d", n1, n2)
	}
}

// TestLSMRestartReplaysOnlyTail is the checkpointing contract: after a
// flush, reopening replays only ops past the checkpoint, not the full
// history.
func TestLSMRestartReplaysOnlyTail(t *testing.T) {
	dir := t.TempDir()
	s := lsmStore(t, dir)
	c := s.C("records")
	const total = 500
	for i := 0; i < total; i++ {
		if _, err := c.Insert(record(fmt.Sprintf("k%04d", i), 64)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil { // flush => checkpoint => WAL truncate
		t.Fatal(err)
	}
	const tail = 25
	for i := 0; i < tail; i++ {
		if _, err := c.Insert(record(fmt.Sprintf("tail%04d", i), 64)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := lsmStore(t, dir)
	defer s2.Close()
	if n := s2.C("records").Len(); n != total+tail {
		t.Fatalf("Len after reopen = %d, want %d", n, total+tail)
	}
	if replayed := s2.ReplayedOps(); replayed >= total {
		t.Fatalf("reopen replayed %d ops; checkpoint should bound it well under %d", replayed, total)
	}
}

// TestCompactDoesNotStallWriters is the regression test for the snapshot
// stall: Compact used to hold the write lock for the entire dump. Now the
// lock is held only to pin the LSN; a writer issued while the dump is
// mid-flight must complete before the dump does.
func TestCompactDoesNotStallWriters(t *testing.T) {
	dir := t.TempDir()
	s := diskStore(t, dir)
	defer s.Close()
	c := s.C("records")
	for i := 0; i < 200; i++ {
		if _, err := c.Insert(record(fmt.Sprintf("k%04d", i), 256)); err != nil {
			t.Fatal(err)
		}
	}

	// The hook fires per document inside the dump's encode phase. On the
	// first firing, launch a concurrent insert and require it to finish
	// while the dump is still running (i.e. before the last hook firing).
	var (
		once       sync.Once
		wroteCh    = make(chan struct{})
		hookCalls  int
		lastHookAt int // hookCalls value when the insert completed; 0 = never
		mu         sync.Mutex
	)
	s.compactDocHook = func() {
		mu.Lock()
		hookCalls++
		mu.Unlock()
		once.Do(func() {
			go func() {
				doc := bson.D{{Key: "_id", Value: "mid-dump"}, {Key: "val", Value: make([]byte, 64)}}
				if _, err := c.Insert(doc); err != nil {
					t.Errorf("insert during compact: %v", err)
				}
				close(wroteCh)
			}()
		})
		// Give the writer real time to run while we are "dumping".
		select {
		case <-wroteCh:
			mu.Lock()
			if lastHookAt == 0 {
				lastHookAt = hookCalls
			}
			mu.Unlock()
		case <-time.After(time.Millisecond):
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	s.compactDocHook = nil
	<-wroteCh

	mu.Lock()
	defer mu.Unlock()
	if hookCalls < 200 {
		t.Fatalf("hook fired %d times, want >= 200", hookCalls)
	}
	if lastHookAt == 0 || lastHookAt >= hookCalls {
		t.Fatalf("concurrent insert completed only after the dump (hook %d of %d); Compact is stalling writers",
			lastHookAt, hookCalls)
	}
	if _, ok := c.Get("mid-dump"); !ok {
		t.Fatal("mid-dump insert lost")
	}
}

// TestLSMCrashDuringFlushRecovers is satellite 1 at the store level: a
// kill -9 while a memtable flush is mid-write must lose no acknowledged
// write and must never load a torn table. We simulate the torn flush by
// crashing the store (which abandons in-flight table writes) and planting
// a half-written .tmp plus an orphan .sst in the table directory.
func TestLSMCrashDuringFlushRecovers(t *testing.T) {
	dir := t.TempDir()
	s := lsmStore(t, dir)
	c := s.C("records")
	const n = 400 // several memtable budgets worth
	for i := 0; i < n; i++ {
		doc := bson.D{{Key: "_id", Value: fmt.Sprintf("k%04d", i)}, {Key: "val", Value: make([]byte, 128)}}
		if _, err := c.Insert(doc); err != nil {
			t.Fatal(err)
		}
	}
	// Every insert above was acked (WAL-durable). Crash without flushing.
	s.Crash()

	// A crash mid-flush leaves a torn temp table; a crash between a table's
	// rename and its manifest commit leaves an orphan .sst. Plant both.
	tables := filepath.Join(dir, "tables")
	torn := filepath.Join(tables, "999999999998.tmp")
	orphan := filepath.Join(tables, "999999999999.sst")
	for _, p := range []string{torn, orphan} {
		if err := os.WriteFile(p, []byte("torn partial table write"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	s2 := lsmStore(t, dir)
	defer s2.Close()
	if got := s2.C("records").Len(); got != n {
		t.Fatalf("recovered %d documents, want %d (acked writes lost)", got, n)
	}
	for _, i := range []int{0, n / 2, n - 1} {
		if _, ok := s2.C("records").Get(fmt.Sprintf("k%04d", i)); !ok {
			t.Fatalf("acked write k%04d lost after crash", i)
		}
	}
	// The junk files were never loaded — and were removed at open.
	for _, p := range []string{torn, orphan} {
		if _, err := os.Stat(p); !os.IsNotExist(err) {
			t.Fatalf("%s still present after recovery open", filepath.Base(p))
		}
	}
	// Every surviving table passes a full checksum scrub.
	if err := s2.Engine().Scrub(); err != nil {
		t.Fatalf("post-recovery scrub: %v", err)
	}
}
