package docstore

import (
	"fmt"
	"sync"
	"testing"

	"mystore/internal/bson"
)

func TestApplyObserverSeesAllMutations(t *testing.T) {
	s := memStore(t)
	c := s.C("records")

	type event struct{ old, new string }
	var mu sync.Mutex
	var events []event
	name := func(d bson.D) string {
		if d == nil {
			return ""
		}
		id, _ := d.Get("_id")
		return fmt.Sprint(id)
	}
	c.SetApplyObserver(func(old, new bson.D) {
		mu.Lock()
		events = append(events, event{name(old), name(new)})
		mu.Unlock()
	})

	doc := bson.D{{Key: "_id", Value: "k1"}, {Key: "v", Value: int64(1)}}
	if _, err := c.Insert(doc); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	doc2 := bson.D{{Key: "_id", Value: "k1"}, {Key: "v", Value: int64(2)}}
	if err := c.Update(doc2); err != nil {
		t.Fatalf("Update: %v", err)
	}
	if _, err := c.Delete("k1"); err != nil {
		t.Fatalf("Delete: %v", err)
	}

	want := []event{{"", "k1"}, {"k1", "k1"}, {"k1", ""}}
	mu.Lock()
	defer mu.Unlock()
	if len(events) != len(want) {
		t.Fatalf("observer saw %d events, want %d: %v", len(events), len(want), events)
	}
	for i, e := range events {
		if e != want[i] {
			t.Fatalf("event %d = %v, want %v", i, e, want[i])
		}
	}
}

func TestApplyObserverRemoval(t *testing.T) {
	s := memStore(t)
	c := s.C("records")
	var calls int
	c.SetApplyObserver(func(old, new bson.D) { calls++ })
	if _, err := c.Insert(bson.D{{Key: "_id", Value: "a"}}); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	c.SetApplyObserver(nil)
	if _, err := c.Insert(bson.D{{Key: "_id", Value: "b"}}); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if calls != 1 {
		t.Fatalf("observer called %d times after removal, want 1", calls)
	}
}

func TestEachIteratesAllWithoutCloning(t *testing.T) {
	s := memStore(t)
	c := s.C("records")
	const n = 50
	for i := 0; i < n; i++ {
		if _, err := c.Insert(bson.D{{Key: "_id", Value: fmt.Sprintf("k%02d", i)}}); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}
	var seen int
	var prev string
	c.Each(func(doc bson.D) bool {
		id, _ := doc.Get("_id")
		k := id.(string)
		if prev != "" && k <= prev {
			t.Fatalf("Each out of order: %q after %q", k, prev)
		}
		prev = k
		seen++
		return true
	})
	if seen != n {
		t.Fatalf("Each visited %d docs, want %d", seen, n)
	}
	// Early stop.
	seen = 0
	c.Each(func(doc bson.D) bool {
		seen++
		return seen < 7
	})
	if seen != 7 {
		t.Fatalf("Each early stop visited %d, want 7", seen)
	}
}

func TestEachSyncedWindowIsExact(t *testing.T) {
	// A writer hammers the collection while EachSynced rebuilds a count via
	// its begin hook: docs counted by the scan plus inserts observed after
	// begin must equal the final collection size exactly — no mutation is
	// double-counted or lost across the snapshot point.
	s := memStore(t)
	c := s.C("records")
	for i := 0; i < 100; i++ {
		if _, err := c.Insert(bson.D{{Key: "_id", Value: fmt.Sprintf("pre%03d", i)}}); err != nil {
			t.Fatalf("Insert: %v", err)
		}
	}

	stop := make(chan struct{})
	done := make(chan int)
	go func() {
		n := 0
		for {
			select {
			case <-stop:
				done <- n
				return
			default:
			}
			if _, err := c.Insert(bson.D{{Key: "_id", Value: fmt.Sprintf("live%04d", n)}}); err != nil {
				t.Errorf("Insert: %v", err)
				done <- n
				return
			}
			n++
		}
	}()

	var mu sync.Mutex
	var observed int
	var scanned int
	c.EachSynced(func() {
		c.observer = func(old, new bson.D) {
			mu.Lock()
			observed++
			mu.Unlock()
		}
	}, func(doc bson.D) bool {
		scanned++
		return true
	})
	close(stop)
	<-done
	c.SetApplyObserver(nil)

	mu.Lock()
	total := scanned + observed
	mu.Unlock()
	if total != c.Len() {
		t.Fatalf("scan(%d) + observed(%d) = %d, want %d", scanned, observed, total, c.Len())
	}
}
