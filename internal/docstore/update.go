package docstore

import (
	"fmt"

	"mystore/internal/bson"
)

// Partial updates in the MongoDB shell dialect: an update document whose
// top-level keys are operators applied to the stored document. Supported:
//
//	$set   {field: value, ...}   set fields (dotted paths descend)
//	$unset {field: anything}     remove fields
//	$inc   {field: number}       add to a numeric field (missing = 0)
//
// A plain document without $-operators is a full replacement, matching
// MongoDB's update semantics of the era.

// ErrBadUpdate reports a malformed update document.
var ErrBadUpdate = fmt.Errorf("docstore: malformed update")

// UpdateById applies update to the document with the given primary key.
func (c *Collection) UpdateById(id any, update bson.D) error {
	current, ok := c.Get(id)
	if !ok {
		return fmt.Errorf("%w: _id %v", ErrNotFound, id)
	}
	next, err := ApplyUpdate(current, update)
	if err != nil {
		return err
	}
	return c.Update(next)
}

// UpdateMany applies update to every document matching filter, returning
// how many changed. The scan snapshot is taken first, so an update that
// changes a document's match status does not affect the set.
func (c *Collection) UpdateMany(filter Filter, update bson.D) (int, error) {
	docs, err := c.Find(filter, FindOptions{})
	if err != nil {
		return 0, err
	}
	for i, doc := range docs {
		next, err := ApplyUpdate(doc, update)
		if err != nil {
			return i, err
		}
		if err := c.Update(next); err != nil {
			return i, err
		}
	}
	return len(docs), nil
}

// ApplyUpdate returns the document that results from applying update to
// doc. doc is not modified. _id cannot be changed.
func ApplyUpdate(doc bson.D, update bson.D) (bson.D, error) {
	if !isOperatorDoc(update) {
		// Full replacement, keeping the original _id.
		next := update.Clone()
		if id, ok := doc.Get("_id"); ok {
			if nid, has := next.Get("_id"); has {
				if Compare(nid, id) != 0 {
					return nil, fmt.Errorf("%w: cannot change _id", ErrBadUpdate)
				}
			} else {
				next = append(bson.D{{Key: "_id", Value: id}}, next...)
			}
		}
		return next, nil
	}
	next := doc.Clone()
	for _, op := range update {
		operand, ok := op.Value.(bson.D)
		if !ok {
			return nil, fmt.Errorf("%w: %s requires a document operand", ErrBadUpdate, op.Key)
		}
		for _, field := range operand {
			if field.Key == "_id" {
				return nil, fmt.Errorf("%w: cannot update _id", ErrBadUpdate)
			}
			var err error
			switch op.Key {
			case "$set":
				next, err = setPath(next, field.Key, field.Value)
			case "$unset":
				next, err = unsetPath(next, field.Key)
			case "$inc":
				next, err = incPath(next, field.Key, field.Value)
			default:
				return nil, fmt.Errorf("%w: unknown operator %q", ErrBadUpdate, op.Key)
			}
			if err != nil {
				return nil, err
			}
		}
	}
	return next, nil
}

// setPath sets a possibly dotted path, creating intermediate documents.
func setPath(doc bson.D, path string, value any) (bson.D, error) {
	head, rest := splitPath(path)
	if rest == "" {
		return doc.Set(head, bson.CloneValue(value)), nil
	}
	sub := bson.D{}
	if v, ok := doc.Get(head); ok {
		d, isDoc := v.(bson.D)
		if !isDoc {
			return nil, fmt.Errorf("%w: %q is not a document", ErrBadUpdate, head)
		}
		sub = d
	}
	newSub, err := setPath(sub, rest, value)
	if err != nil {
		return nil, err
	}
	return doc.Set(head, newSub), nil
}

// unsetPath removes a possibly dotted path; absent paths are no-ops.
func unsetPath(doc bson.D, path string) (bson.D, error) {
	head, rest := splitPath(path)
	if rest == "" {
		return doc.Delete(head), nil
	}
	v, ok := doc.Get(head)
	if !ok {
		return doc, nil
	}
	sub, isDoc := v.(bson.D)
	if !isDoc {
		return doc, nil
	}
	newSub, err := unsetPath(sub, rest)
	if err != nil {
		return nil, err
	}
	return doc.Set(head, newSub), nil
}

// incPath adds a numeric delta to a path, creating it at zero when absent.
func incPath(doc bson.D, path string, delta any) (bson.D, error) {
	d, ok := numeric(delta)
	if !ok {
		return nil, fmt.Errorf("%w: $inc delta must be numeric, got %T", ErrBadUpdate, delta)
	}
	cur := 0.0
	wasInt := true
	if v, found := lookupPath(doc, path); found {
		c, isNum := numeric(v)
		if !isNum {
			return nil, fmt.Errorf("%w: $inc target %q is not numeric", ErrBadUpdate, path)
		}
		cur = c
		if _, isFloat := v.(float64); isFloat {
			wasInt = false
		}
	}
	if _, deltaFloat := delta.(float64); deltaFloat {
		wasInt = false
	}
	var value any
	if wasInt {
		value = int64(cur) + int64(d)
	} else {
		value = cur + d
	}
	return setPath(doc, path, value)
}

func splitPath(path string) (head, rest string) {
	for i := 0; i < len(path); i++ {
		if path[i] == '.' {
			return path[:i], path[i+1:]
		}
	}
	return path, ""
}
