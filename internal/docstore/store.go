// Package docstore implements the MongoDB-like document store MyStore
// clusters: schema-free BSON collections with automatically assigned _id
// keys, secondary indexes, a query engine with the shell operator dialect,
// WAL-backed persistence with snapshot compaction, and (for the paper's
// baseline comparison) master/slave oplog replication.
package docstore

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"mystore/internal/bson"
	"mystore/internal/lsm"
	"mystore/internal/trace"
	"mystore/internal/wal"
)

// Errors returned by the store.
var (
	ErrClosed       = errors.New("docstore: store is closed")
	ErrBadId        = errors.New("docstore: unsupported _id type")
	ErrNotFound     = errors.New("docstore: document not found")
	ErrDuplicate    = errors.New("docstore: duplicate key")
	ErrBadFilter    = errors.New("docstore: malformed filter")
	ErrReadOnly     = errors.New("docstore: store is read-only (slave)")
	ErrNoCollection = errors.New("docstore: no such collection")
)

// Options configure a Store.
type Options struct {
	// Dir is the persistence directory. Empty means a purely in-memory
	// store (used heavily by simulations and tests).
	Dir string
	// WAL tunes the write-ahead log when Dir is set.
	WAL wal.Options
	// ReadOnly rejects all mutations; slave replicas set this and apply
	// ops through the replication channel instead.
	ReadOnly bool
	// SerializeWritePath reverts to the seed write path: validation, BSON
	// encoding, WAL append (with its fsync), apply, and the replication
	// hook all run under one global writeMu. Kept for the write-path
	// ablation bench; the default path keeps only append+apply under
	// writeMu.
	SerializeWritePath bool
	// Engine selects the storage engine: "map" (default — every decoded
	// document in memory, snapshot + full WAL replay on restart) or "lsm"
	// (documents in log-structured SSTables with a memtable in front; the
	// WAL is checkpointed on every memtable flush so restart replays only
	// the unflushed tail, and resident memory is bounded by the memtable
	// and block-cache budgets rather than the dataset). "lsm" requires Dir.
	Engine string
	// Storage tunes the lsm engine (memtable budget, block cache size,
	// compaction bandwidth, ...). Ignored by the map engine.
	Storage lsm.Tuning
	// Tracer, when non-nil, records the lsm engine's background spans
	// (memtable.flush, compaction.run).
	Tracer *trace.Collector
}

// Op is one logical mutation, as written to the WAL and shipped to slaves.
type Op struct {
	Kind   string // "insert", "update", "delete", "index", "dropcoll"
	Coll   string
	Doc    bson.D // insert/update: full document
	Id     any    // delete: primary key
	Field  string // index: field path
	Unique bool   // index: uniqueness
	Seq    uint64 // assigned in apply order, 1-based
}

// Store is a document database instance. All exported methods are safe for
// concurrent use.
//
// Locking protocol (see DESIGN.md): writeMu serializes the WAL append and
// in-memory apply of every mutation, which is what makes WAL order equal
// apply order; mu guards the collection map and the closed flag; pubMu
// guards the replication hook and the in-order publish queue. The write
// path holds writeMu only for the authoritative re-check, the buffered WAL
// append, and the apply — validation, BSON encoding, the durability wait
// (where group commit coalesces fsyncs across writers) and the replication
// fan-out all happen outside it.
type Store struct {
	writeMu sync.Mutex // serializes mutations so WAL order == apply order
	mu      sync.RWMutex
	opts    Options
	log     *wal.Log
	engine  *lsm.Engine // nil for the map engine
	colls   map[string]*Collection
	seq     uint64 // guarded by writeMu
	closed  bool

	// recovering is true only during single-threaded open (snapshot load +
	// WAL replay) and relaxes apply semantics to blind writes: insert of an
	// existing document overwrites, update of a missing one inserts. The
	// fuzzy snapshot and the lsm checkpoint both allow the recovery baseline
	// to run slightly ahead of the replay position; relaxed replay makes
	// re-application converge instead of erroring.
	recovering bool

	replayedOps atomic.Uint64 // WAL records re-applied by the last open

	// compactDocHook, when non-nil, runs once per document during Compact's
	// encode phase, outside every lock. Tests use it to prove concurrent
	// writers are not blocked for the dump duration.
	compactDocHook func()

	// Replication publish queue: ops are delivered to onOp in seq order,
	// off writeMu, and synchronously (mutate returns only after its own op
	// has been delivered).
	pubMu   sync.Mutex
	pubCond *sync.Cond
	pubNext uint64   // seq of the next op to deliver, 1-based
	onOp    func(Op) // replication hook, guarded by pubMu

	statScans    atomic.Uint64
	statIndexHit atomic.Uint64
}

// Open opens a store. With a Dir, the map engine loads the latest snapshot
// (if any) and replays the WAL from it; the lsm engine opens its table
// store and replays only the WAL tail past the last flush checkpoint.
// Without a Dir the store is purely in-memory.
func Open(opts Options) (*Store, error) {
	s := &Store{opts: opts, colls: make(map[string]*Collection), pubNext: 1}
	s.pubCond = sync.NewCond(&s.pubMu)
	if opts.Dir == "" {
		if opts.Engine == "lsm" {
			return nil, errors.New("docstore: lsm engine requires Dir")
		}
		return s, nil
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("docstore: create dir: %w", err)
	}
	var from wal.LSN
	if opts.Engine == "lsm" {
		log, err := wal.Open(filepath.Join(opts.Dir, "wal"), opts.WAL)
		if err != nil {
			return nil, err
		}
		s.log = log
		eng, err := lsm.Open(lsm.Options{
			Dir:    filepath.Join(opts.Dir, "tables"),
			Tuning: opts.Storage,
			Tracer: opts.Tracer,
			// After every flush the engine's manifest is the durable root for
			// everything below the checkpoint; the WAL tail before it is dead
			// weight and can go.
			Checkpoint: func(lsn uint64) { log.TruncateBefore(wal.LSN(lsn)) },
		})
		if err != nil {
			log.Close()
			return nil, err
		}
		s.engine = eng
		defs, err := s.loadLSMMeta()
		if err == nil {
			for _, def := range defs {
				c := s.C(def.coll)
				c.mu.Lock()
				c.buildIndexLocked(def.field, def.unique)
				c.mu.Unlock()
			}
		}
		if err != nil {
			eng.Crash()
			log.Close()
			return nil, err
		}
		from = wal.LSN(eng.CheckpointLSN())
	} else {
		var err error
		from, err = s.loadSnapshot()
		if err != nil {
			return nil, err
		}
		log, err := wal.Open(filepath.Join(opts.Dir, "wal"), opts.WAL)
		if err != nil {
			return nil, err
		}
		s.log = log
	}
	s.recovering = true
	err := s.log.Replay(from, func(lsn wal.LSN, rec []byte) error {
		doc, err := bson.Unmarshal(rec)
		if err != nil {
			return fmt.Errorf("docstore: corrupt WAL record: %w", err)
		}
		op, err := decodeOp(doc)
		if err != nil {
			return err
		}
		s.replayedOps.Add(1)
		return s.applyLocked(op, uint64(lsn))
	})
	s.recovering = false
	if err != nil {
		if s.engine != nil {
			s.engine.Crash()
		}
		s.log.Close()
		return nil, err
	}
	return s, nil
}

// Engine exposes the lsm engine for metrics and tests; nil when the store
// runs the map engine.
func (s *Store) Engine() *lsm.Engine { return s.engine }

// ReplayedOps reports how many WAL records the last Open re-applied — the
// restart-cost measure the storage ablation compares across engines.
func (s *Store) ReplayedOps() uint64 { return s.replayedOps.Load() }

// SetReplicationHook installs fn to receive every mutation in apply order.
// Pass nil to remove. The hook runs synchronously inside the write path:
// when a mutation returns, its op has been delivered.
func (s *Store) SetReplicationHook(fn func(Op)) {
	s.pubMu.Lock()
	defer s.pubMu.Unlock()
	s.onOp = fn
}

// C returns the named collection, creating it on first use (the MongoDB
// behaviour the paper's record examples rely on). The RLock fast path keeps
// the hot case — the collection already exists — off the write lock.
func (s *Store) C(name string) *Collection {
	s.mu.RLock()
	c, ok := s.colls[name]
	s.mu.RUnlock()
	if ok {
		return c
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.colls[name]; ok { // double-check: we raced another creator
		return c
	}
	c = newCollection(s, name)
	s.colls[name] = c
	return c
}

// Collections returns the names of existing collections.
func (s *Store) Collections() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.colls))
	for name := range s.colls {
		out = append(out, name)
	}
	return out
}

// DropCollection removes a collection and its documents.
func (s *Store) DropCollection(name string) error {
	return s.mutate(Op{Kind: "dropcoll", Coll: name})
}

// mutate validates, logs, applies and publishes one op.
func (s *Store) mutate(op Op) error { return s.mutateCtx(context.Background(), op) }

// mutateCtx is mutate with the caller's context, used only for tracing: the
// durability wait gets its own "wal.commit" span so a trace shows how much
// of a write sat waiting on the group fsync.
func (s *Store) mutateCtx(ctx context.Context, op Op) error {
	s.mu.RLock()
	closed, readOnly := s.closed, s.opts.ReadOnly
	s.mu.RUnlock()
	if closed {
		return ErrClosed
	}
	if readOnly {
		return ErrReadOnly
	}
	if s.opts.SerializeWritePath {
		s.writeMu.Lock()
		defer s.writeMu.Unlock()
		return s.commitSerialized(op)
	}

	// Optimistic pre-check outside the write lock: rejects the common error
	// cases (duplicate _id, missing update target) without serializing. It
	// is advisory only — a concurrent writer can invalidate it — so the
	// authoritative re-check below runs under writeMu before anything
	// reaches the WAL.
	if err := s.checkOp(op); err != nil {
		return err
	}
	// BSON-encode outside the lock; it is the expensive part of the old
	// critical section.
	var rec []byte
	if s.log != nil {
		var err error
		rec, err = bson.Marshal(encodeOp(op))
		if err != nil {
			return err
		}
	}

	s.writeMu.Lock()
	s.mu.RLock()
	closed = s.closed
	s.mu.RUnlock()
	if closed {
		s.writeMu.Unlock()
		return ErrClosed
	}
	if err := s.checkOp(op); err != nil {
		s.writeMu.Unlock()
		return err
	}
	var lsn wal.LSN
	if s.log != nil {
		var err error
		// Buffered append only: the fsync wait happens after writeMu is
		// released, so concurrent writers form one group-commit cohort
		// instead of serializing their fsyncs behind the apply lock.
		lsn, err = s.log.AppendNoWait(rec)
		if err != nil {
			s.writeMu.Unlock()
			return err
		}
	}
	if err := s.applyLocked(op, uint64(lsn)); err != nil {
		// checkOp guarantees this cannot happen; if it does, the in-memory
		// state and WAL have diverged and continuing would corrupt data.
		panic(fmt.Sprintf("docstore: apply after successful check failed: %v", err))
	}
	s.seq++
	op.Seq = s.seq
	s.writeMu.Unlock()

	var syncErr error
	if s.log != nil {
		_, sp := trace.Start(ctx, "wal.commit")
		syncErr = s.log.WaitDurable(lsn)
		sp.End(syncErr)
	}
	// Publish even when the durability wait failed: pubNext must advance or
	// every later op would block forever. A failed fsync poisons the log, so
	// the store is on its way down anyway.
	s.publish(op)
	return syncErr
}

// publish delivers op to the replication hook in seq order. Sequencing on
// pubNext preserves apply order even though callers reach here outside
// writeMu in arbitrary interleavings; each caller blocks until its own op is
// delivered, keeping the hook synchronous.
func (s *Store) publish(op Op) {
	s.pubMu.Lock()
	for s.pubNext != op.Seq {
		s.pubCond.Wait()
	}
	hook := s.onOp
	s.pubMu.Unlock()
	if hook != nil {
		hook(op)
	}
	s.pubMu.Lock()
	s.pubNext++
	s.pubCond.Broadcast()
	s.pubMu.Unlock()
}

// commitSerialized is the seed write path, kept for the write-path ablation:
// everything — check, encode, WAL append with fsync, apply, hook — under
// writeMu. Caller holds writeMu.
func (s *Store) commitSerialized(op Op) error {
	// Validate by dry-applying before logging, so the WAL never holds a
	// rejected op (e.g. a duplicate key insert).
	if err := s.checkOp(op); err != nil {
		return err
	}
	var lsn wal.LSN
	if s.log != nil {
		rec, err := bson.Marshal(encodeOp(op))
		if err != nil {
			return err
		}
		if lsn, err = s.log.Append(rec); err != nil {
			return err
		}
	}
	if err := s.applyLocked(op, uint64(lsn)); err != nil {
		// checkOp guarantees this cannot happen; if it does, the in-memory
		// state and WAL have diverged and continuing would corrupt data.
		panic(fmt.Sprintf("docstore: apply after successful check failed: %v", err))
	}
	s.seq++
	op.Seq = s.seq
	s.pubMu.Lock()
	hook := s.onOp
	s.pubNext++ // keep the publish queue consistent with seq
	s.pubMu.Unlock()
	if hook != nil {
		hook(op)
	}
	return nil
}

// ApplyReplicated applies an op received from a master, bypassing the
// read-only check. Ops must arrive in master order.
func (s *Store) ApplyReplicated(op Op) error {
	s.writeMu.Lock()
	s.mu.RLock()
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		s.writeMu.Unlock()
		return ErrClosed
	}
	if err := s.checkOp(op); err != nil {
		s.writeMu.Unlock()
		return err
	}
	var lsn wal.LSN
	if s.log != nil {
		rec, err := bson.Marshal(encodeOp(op))
		if err != nil {
			s.writeMu.Unlock()
			return err
		}
		if lsn, err = s.log.AppendNoWait(rec); err != nil {
			s.writeMu.Unlock()
			return err
		}
	}
	err := s.applyLocked(op, uint64(lsn))
	s.writeMu.Unlock()
	if err == nil && s.log != nil {
		err = s.log.WaitDurable(lsn)
	}
	return err
}

// checkOp verifies op can apply cleanly.
func (s *Store) checkOp(op Op) error {
	switch op.Kind {
	case "insert":
		return s.C(op.Coll).checkInsert(op.Doc)
	case "update":
		return s.C(op.Coll).checkUpdate(op.Doc)
	case "delete":
		_, err := idKey(op.Id)
		return err
	case "index", "dropcoll":
		return nil
	default:
		return fmt.Errorf("docstore: unknown op kind %q", op.Kind)
	}
}

// applyLocked mutates store state; lsn is the op's WAL position (0 for an
// in-memory store), threaded to the storage engine for checkpointing.
// Caller holds writeMu (or is in single-threaded recovery).
func (s *Store) applyLocked(op Op, lsn uint64) error {
	switch op.Kind {
	case "insert":
		return s.C(op.Coll).applyInsert(op.Doc, lsn)
	case "update":
		return s.C(op.Coll).applyUpdate(op.Doc, lsn)
	case "delete":
		return s.C(op.Coll).applyDelete(op.Id, lsn)
	case "index":
		return s.C(op.Coll).applyEnsureIndex(op.Field, op.Unique, lsn)
	case "dropcoll":
		if s.engine != nil {
			if err := s.dropCollLSM(op.Coll, lsn); err != nil {
				return err
			}
		}
		s.mu.Lock()
		delete(s.colls, op.Coll)
		s.mu.Unlock()
		return nil
	default:
		return fmt.Errorf("docstore: unknown op kind %q", op.Kind)
	}
}

// Stats summarize the store for monitoring and tests.
type Stats struct {
	Collections int
	Documents   int
	DataBytes   int64
	IndexHits   uint64
	Scans       uint64
}

// Stats returns current aggregate statistics. With the lsm engine,
// DataBytes reports on-disk table bytes plus the memtable (per-collection
// running deltas reset at restart), and the first call after a restart pays
// one discovery scan per collection to learn document counts.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	st := Stats{Collections: len(s.colls), IndexHits: s.statIndexHit.Load(), Scans: s.statScans.Load()}
	for _, c := range s.colls {
		c.mu.RLock()
		st.Documents += c.primary.Len()
		st.DataBytes += c.dataBytes
		c.mu.RUnlock()
	}
	if s.engine != nil {
		est := s.engine.Stats()
		st.DataBytes = est.TableBytes + est.MemtableBytes
	}
	return st
}

// WAL exposes the write-ahead log so callers can register its histograms
// (fsync latency, batch sizes) with a metrics registry. Nil for an in-memory
// store.
func (s *Store) WAL() *wal.Log { return s.log }

// WALStats reports the write-ahead log's commit counters (appends, fsyncs,
// group-commit batch sizes). The second result is false for an in-memory
// store, which has no log.
func (s *Store) WALStats() (wal.SyncStats, bool) {
	if s.log == nil {
		return wal.SyncStats{}, false
	}
	return s.log.Stats(), true
}

// Close flushes and closes the store. With the lsm engine, the final
// memtable flush checkpoints the WAL, so the next open replays nothing.
func (s *Store) Close() error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var err error
	if s.engine != nil {
		err = s.engine.Close()
	}
	if s.log != nil {
		if cerr := s.log.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Crash abandons the store as an abrupt process death (kill -9) would: no
// flush, no fsync, file handles dropped, any in-flight table write left
// torn on disk. In-flight writers get errors instead of durability; a
// subsequent Open must recover from exactly what a hard crash leaves. The
// chaos harness uses it to exercise recovery invariants in-process.
func (s *Store) Crash() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	// Order matters: crash the engine first so stalled writers unblock with
	// the engine refusing work, then abandon the log so durability waiters
	// fail out rather than fsync.
	if s.engine != nil {
		s.engine.Crash()
	}
	if s.log != nil {
		s.log.Abandon()
	}
}

func encodeOp(op Op) bson.D {
	d := bson.D{{Key: "op", Value: op.Kind}, {Key: "coll", Value: op.Coll}}
	if op.Doc != nil {
		d = append(d, bson.E{Key: "doc", Value: op.Doc})
	}
	if op.Id != nil {
		d = append(d, bson.E{Key: "id", Value: op.Id})
	}
	if op.Field != "" {
		d = append(d, bson.E{Key: "field", Value: op.Field})
		d = append(d, bson.E{Key: "unique", Value: op.Unique})
	}
	return d
}

func decodeOp(d bson.D) (Op, error) {
	op := Op{}
	op.Kind = d.StringOr("op", "")
	op.Coll = d.StringOr("coll", "")
	if v, ok := d.Get("doc"); ok {
		doc, ok := v.(bson.D)
		if !ok {
			return op, fmt.Errorf("docstore: op doc is %T", v)
		}
		op.Doc = doc
	}
	if v, ok := d.Get("id"); ok {
		op.Id = v
	}
	op.Field = d.StringOr("field", "")
	if v, ok := d.Get("unique"); ok {
		b, _ := v.(bool)
		op.Unique = b
	}
	if op.Kind == "" {
		return op, errors.New("docstore: op record missing kind")
	}
	return op, nil
}
