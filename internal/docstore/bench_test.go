package docstore

import (
	"fmt"
	"testing"

	"mystore/internal/bson"
)

func benchCollection(b *testing.B, docs int, indexed bool) *Collection {
	b.Helper()
	s, err := Open(Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	c := s.C("bench")
	if indexed {
		if err := c.EnsureIndex("self-key", false); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < docs; i++ {
		if _, err := c.Insert(record(fmt.Sprintf("key-%06d", i), 128)); err != nil {
			b.Fatal(err)
		}
	}
	return c
}

func BenchmarkInsert(b *testing.B) {
	c := benchCollection(b, 0, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Insert(record(fmt.Sprintf("bench-%09d", i), 128)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFindIndexedEquality(b *testing.B) {
	c := benchCollection(b, 10000, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		docs, err := c.Find(Filter{{Key: "self-key", Value: fmt.Sprintf("key-%06d", i%10000)}}, FindOptions{})
		if err != nil || len(docs) != 1 {
			b.Fatalf("Find: %d docs, %v", len(docs), err)
		}
	}
}

func BenchmarkFindScanEquality(b *testing.B) {
	c := benchCollection(b, 10000, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		docs, err := c.Find(Filter{{Key: "self-key", Value: fmt.Sprintf("key-%06d", i%10000)}}, FindOptions{})
		if err != nil || len(docs) != 1 {
			b.Fatalf("Find: %d docs, %v", len(docs), err)
		}
	}
}

func BenchmarkFindRegexScan(b *testing.B) {
	c := benchCollection(b, 2000, false)
	filter := Filter{{Key: "self-key", Value: bson.D{{Key: "$regex", Value: "^key-00001"}}}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Find(filter, FindOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGetByPrimaryKey(b *testing.B) {
	c := benchCollection(b, 10000, false)
	ids := make([]any, 0, 10000)
	docs, _ := c.Find(Filter{}, FindOptions{})
	for _, d := range docs {
		id, _ := d.Get("_id")
		ids = append(ids, id)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := c.Get(ids[i%len(ids)]); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkUpdateById(b *testing.B) {
	c := benchCollection(b, 1, false)
	docs, _ := c.Find(Filter{}, FindOptions{})
	id, _ := docs[0].Get("_id")
	inc := bson.D{{Key: "$inc", Value: bson.D{{Key: "views", Value: int64(1)}}}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.UpdateById(id, inc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatchComplexFilter(b *testing.B) {
	doc := sampleDoc()
	filter := Filter{
		{Key: "$and", Value: bson.A{
			bson.D{{Key: "type", Value: "scene"}},
			bson.D{{Key: "size", Value: bson.D{{Key: "$gte", Value: int64(100)}, {Key: "$lt", Value: int64(200)}}}},
			bson.D{{Key: "meta.course", Value: bson.D{{Key: "$regex", Value: "^EE"}}}},
		}},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ok, err := Match(doc, filter)
		if err != nil || !ok {
			b.Fatalf("Match = %v, %v", ok, err)
		}
	}
}
