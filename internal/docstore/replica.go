package docstore

import (
	"errors"
	"fmt"
	"sync"

	"mystore/internal/bson"
)

// ReplicaSet implements the "simple master/slave mechanism" the paper
// attributes to stock MongoDB and uses as the clustered baseline ("MongoDB
// is configured to be master-slave mode using three physical nodes",
// Fig 17). All writes go to the single master; the master's op stream is
// shipped to each slave in order. There is no failover: when the master is
// unreachable writes fail, which is exactly the availability weakness the
// paper's NWR layer removes.
//
// A BeforeOp hook lets the failure-injection framework perturb individual
// node operations; a hook error on a slave queues the op for catch-up, a
// hook error on the master fails the write.
type ReplicaSet struct {
	mu      sync.Mutex
	master  *Store
	slaves  []*Store
	pending [][]Op // per-slave catch-up queues, in op order

	// BeforeOp, when non-nil, runs before every node-level operation.
	// node 0 is the master; slaves are 1..len(slaves). Returning an error
	// makes that node's operation fail.
	BeforeOp func(node int, kind string) error
}

// ErrMasterDown reports a failed master-side write.
var ErrMasterDown = errors.New("docstore: master unavailable")

// NewReplicaSet wires a master and slaves. The master must not already have
// a replication hook.
func NewReplicaSet(master *Store, slaves ...*Store) *ReplicaSet {
	rs := &ReplicaSet{
		master:  master,
		slaves:  slaves,
		pending: make([][]Op, len(slaves)),
	}
	master.SetReplicationHook(rs.ship)
	return rs
}

// Master returns the master store (for direct inspection in tests).
func (rs *ReplicaSet) Master() *Store { return rs.master }

// Slaves returns the slave stores.
func (rs *ReplicaSet) Slaves() []*Store { return rs.slaves }

// ship is the master's replication hook: append the op to every slave,
// queueing for any slave whose hook rejects the delivery.
func (rs *ReplicaSet) ship(op Op) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	for i := range rs.slaves {
		rs.pending[i] = append(rs.pending[i], op)
	}
	rs.flushLocked()
}

// flushLocked delivers queued ops to each slave until a hook failure stops
// that slave's queue (order must be preserved per slave).
func (rs *ReplicaSet) flushLocked() {
	for i, slave := range rs.slaves {
		q := rs.pending[i]
		n := 0
		for _, op := range q {
			if rs.BeforeOp != nil {
				if err := rs.BeforeOp(i+1, "replicate"); err != nil {
					break
				}
			}
			if err := slave.ApplyReplicated(op); err != nil {
				break
			}
			n++
		}
		rs.pending[i] = q[n:]
	}
}

// CatchUp retries delivery of queued ops, e.g. after a failure clears.
func (rs *ReplicaSet) CatchUp() {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rs.flushLocked()
}

// Lag returns the number of ops queued for each slave.
func (rs *ReplicaSet) Lag() []int {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	out := make([]int, len(rs.pending))
	for i, q := range rs.pending {
		out[i] = len(q)
	}
	return out
}

// Put inserts or replaces doc in the master's collection coll.
func (rs *ReplicaSet) Put(coll string, doc bson.D) (any, error) {
	if rs.BeforeOp != nil {
		if err := rs.BeforeOp(0, "put"); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMasterDown, err)
		}
	}
	return rs.master.C(coll).Upsert(doc)
}

// Delete removes id from the master's collection coll.
func (rs *ReplicaSet) Delete(coll string, id any) (bool, error) {
	if rs.BeforeOp != nil {
		if err := rs.BeforeOp(0, "delete"); err != nil {
			return false, fmt.Errorf("%w: %v", ErrMasterDown, err)
		}
	}
	return rs.master.C(coll).Delete(id)
}

// Get reads id from the first reachable node, master first — the
// master/slave read path MongoDB drivers of the era used.
func (rs *ReplicaSet) Get(coll string, id any) (bson.D, bool, error) {
	for node := 0; node <= len(rs.slaves); node++ {
		if rs.BeforeOp != nil {
			if err := rs.BeforeOp(node, "get"); err != nil {
				continue
			}
		}
		var store *Store
		if node == 0 {
			store = rs.master
		} else {
			store = rs.slaves[node-1]
		}
		if doc, ok := store.C(coll).Get(id); ok {
			return doc, true, nil
		}
		// A reachable node that lacks the document answers authoritatively
		// only if it is the master; a lagging slave may simply not have it
		// yet.
		if node == 0 {
			return nil, false, nil
		}
	}
	return nil, false, errors.New("docstore: no reachable replica")
}
