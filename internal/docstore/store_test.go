package docstore

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"mystore/internal/bson"
	"mystore/internal/uuid"
)

func memStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func record(selfKey string, size int) bson.D {
	return bson.D{
		{Key: "self-key", Value: selfKey},
		{Key: "val", Value: make([]byte, size)},
		{Key: "isData", Value: "1"},
		{Key: "isDel", Value: "0"},
	}
}

func TestInsertAssignsObjectId(t *testing.T) {
	s := memStore(t)
	c := s.C("records")
	id, err := c.Insert(record("Resistor5", 16))
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	oid, ok := id.(uuid.ObjectId)
	if !ok || oid.IsZero() {
		t.Fatalf("assigned id = %T %v", id, id)
	}
	doc, found := c.Get(id)
	if !found {
		t.Fatal("Get after Insert: not found")
	}
	if doc[0].Key != "_id" {
		t.Fatalf("_id not first field: %s", doc)
	}
	if got := doc.StringOr("self-key", ""); got != "Resistor5" {
		t.Fatalf("self-key = %q", got)
	}
}

func TestInsertExplicitIdAndDuplicate(t *testing.T) {
	s := memStore(t)
	c := s.C("records")
	doc := record("a", 4).Set("_id", "my-key")
	if _, err := c.Insert(doc); err != nil {
		t.Fatalf("Insert: %v", err)
	}
	if _, err := c.Insert(doc); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate insert err = %v, want ErrDuplicate", err)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d after rejected duplicate", c.Len())
	}
}

func TestInsertRejectsBadIdType(t *testing.T) {
	s := memStore(t)
	_, err := s.C("x").Insert(bson.D{{Key: "_id", Value: 3.14}})
	if !errors.Is(err, ErrBadId) {
		t.Fatalf("err = %v, want ErrBadId", err)
	}
}

func TestInsertClonesInput(t *testing.T) {
	s := memStore(t)
	c := s.C("records")
	doc := bson.D{{Key: "_id", Value: "k"}, {Key: "val", Value: []byte{1, 2}}}
	if _, err := c.Insert(doc); err != nil {
		t.Fatal(err)
	}
	doc[1].Value.([]byte)[0] = 99 // caller mutates after insert
	got, _ := c.Get("k")
	if got[1].Value.([]byte)[0] != 1 {
		t.Fatal("store shares memory with caller's document")
	}
}

func TestUpdate(t *testing.T) {
	s := memStore(t)
	c := s.C("records")
	doc := record("a", 4).Set("_id", "k")
	c.Insert(doc) //nolint:errcheck
	updated := record("a", 4).Set("_id", "k").Set("isDel", "1")
	if err := c.Update(updated); err != nil {
		t.Fatalf("Update: %v", err)
	}
	got, _ := c.Get("k")
	if got.StringOr("isDel", "") != "1" {
		t.Fatalf("update not applied: %s", got)
	}
	if err := c.Update(record("b", 4).Set("_id", "missing")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("update missing err = %v", err)
	}
	if err := c.Update(record("b", 4)); !errors.Is(err, ErrBadId) {
		t.Fatalf("update without _id err = %v", err)
	}
}

func TestUpsert(t *testing.T) {
	s := memStore(t)
	c := s.C("records")
	if _, err := c.Upsert(record("a", 4).Set("_id", "k")); err != nil {
		t.Fatalf("Upsert insert: %v", err)
	}
	if _, err := c.Upsert(record("a2", 4).Set("_id", "k")); err != nil {
		t.Fatalf("Upsert update: %v", err)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	got, _ := c.Get("k")
	if got.StringOr("self-key", "") != "a2" {
		t.Fatalf("upsert did not replace: %s", got)
	}
	// Upsert without _id inserts fresh.
	if _, err := c.Upsert(record("b", 4)); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestDelete(t *testing.T) {
	s := memStore(t)
	c := s.C("records")
	c.Insert(record("a", 4).Set("_id", "k")) //nolint:errcheck
	ok, err := c.Delete("k")
	if err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	if _, found := c.Get("k"); found {
		t.Fatal("document survives Delete")
	}
	ok, err = c.Delete("k")
	if err != nil || ok {
		t.Fatalf("second Delete = %v, %v; want false, nil", ok, err)
	}
}

func TestFindWithIndexAndScan(t *testing.T) {
	s := memStore(t)
	c := s.C("records")
	if err := c.EnsureIndex("self-key", false); err != nil {
		t.Fatalf("EnsureIndex: %v", err)
	}
	for i := 0; i < 200; i++ {
		doc := record(fmt.Sprintf("key-%03d", i), 8).Set("size", int64(i))
		if _, err := c.Insert(doc); err != nil {
			t.Fatal(err)
		}
	}
	// Indexed equality.
	docs, err := c.Find(Filter{{Key: "self-key", Value: "key-007"}}, FindOptions{})
	if err != nil {
		t.Fatalf("Find: %v", err)
	}
	if len(docs) != 1 {
		t.Fatalf("indexed equality returned %d docs", len(docs))
	}
	st := s.Stats()
	if st.IndexHits == 0 {
		t.Error("indexed query did not count an index hit")
	}
	// Unindexed predicate forces a scan.
	docs, err = c.Find(Filter{{Key: "size", Value: bson.D{{Key: "$gte", Value: int64(195)}}}}, FindOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 5 {
		t.Fatalf("scan range returned %d docs, want 5", len(docs))
	}
	if s.Stats().Scans == 0 {
		t.Error("unindexed query did not count a scan")
	}
	// Indexed range via the index.
	if err := c.EnsureIndex("size", false); err != nil {
		t.Fatal(err)
	}
	docs, err = c.Find(Filter{{Key: "size", Value: bson.D{{Key: "$gt", Value: int64(189)}, {Key: "$lte", Value: int64(194)}}}}, FindOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 5 {
		t.Fatalf("indexed range returned %d docs, want 5 (190..194)", len(docs))
	}
	// $in through the index.
	docs, err = c.Find(Filter{{Key: "self-key", Value: bson.D{{Key: "$in", Value: bson.A{"key-001", "key-002", "nope"}}}}}, FindOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 {
		t.Fatalf("$in returned %d docs, want 2", len(docs))
	}
}

func TestFindByPrimaryKey(t *testing.T) {
	s := memStore(t)
	c := s.C("records")
	for i := 0; i < 50; i++ {
		c.Insert(record("r", 4).Set("_id", fmt.Sprintf("id-%02d", i))) //nolint:errcheck
	}
	docs, err := c.Find(Filter{{Key: "_id", Value: "id-07"}}, FindOptions{})
	if err != nil || len(docs) != 1 {
		t.Fatalf("Find by _id: %d docs, err %v", len(docs), err)
	}
	if s.Stats().IndexHits == 0 {
		t.Error("primary-key query did not use the primary index")
	}
	docs, err = c.Find(Filter{{Key: "_id", Value: bson.D{{Key: "$in", Value: bson.A{"id-01", "id-02"}}}}}, FindOptions{})
	if err != nil || len(docs) != 2 {
		t.Fatalf("Find by _id $in: %d docs, err %v", len(docs), err)
	}
}

func TestFindSortSkipLimitProjection(t *testing.T) {
	s := memStore(t)
	c := s.C("records")
	for i := 0; i < 20; i++ {
		c.Insert(record(fmt.Sprintf("k%02d", i), 4).Set("n", int64(i))) //nolint:errcheck
	}
	docs, err := c.Find(Filter{}, FindOptions{
		Sort:       []SortField{{Field: "n", Desc: true}},
		Skip:       2,
		Limit:      3,
		Projection: []string{"n"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 3 {
		t.Fatalf("got %d docs, want 3", len(docs))
	}
	for i, want := range []int64{17, 16, 15} {
		n, _ := docs[i].Get("n")
		if n != want {
			t.Errorf("docs[%d].n = %v, want %d", i, n, want)
		}
		if docs[i].Has("self-key") {
			t.Error("projection kept self-key")
		}
		if !docs[i].Has("_id") {
			t.Error("projection dropped _id")
		}
	}
}

func TestFindOneAndCount(t *testing.T) {
	s := memStore(t)
	c := s.C("records")
	for i := 0; i < 10; i++ {
		c.Insert(record("dup", 4)) //nolint:errcheck
	}
	doc, found, err := c.FindOne(Filter{{Key: "self-key", Value: "dup"}})
	if err != nil || !found || doc == nil {
		t.Fatalf("FindOne = %v, %v, %v", doc, found, err)
	}
	_, found, err = c.FindOne(Filter{{Key: "self-key", Value: "none"}})
	if err != nil || found {
		t.Fatalf("FindOne(none) found=%v err=%v", found, err)
	}
	n, err := c.Count(Filter{{Key: "self-key", Value: "dup"}})
	if err != nil || n != 10 {
		t.Fatalf("Count = %d, %v", n, err)
	}
	n, err = c.Count(Filter{})
	if err != nil || n != 10 {
		t.Fatalf("Count(all) = %d, %v", n, err)
	}
}

func TestFindBadFilterPropagates(t *testing.T) {
	s := memStore(t)
	c := s.C("records")
	c.Insert(record("a", 4)) //nolint:errcheck
	if _, err := c.Find(Filter{{Key: "x", Value: bson.D{{Key: "$bogus", Value: 1}}}}, FindOptions{}); !errors.Is(err, ErrBadFilter) {
		t.Fatalf("err = %v, want ErrBadFilter", err)
	}
}

func TestUniqueIndex(t *testing.T) {
	s := memStore(t)
	c := s.C("records")
	if err := c.EnsureIndex("self-key", true); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert(record("u1", 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Insert(record("u1", 4)); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("unique violation err = %v", err)
	}
	// Updating the same doc to keep its value must not violate.
	id, _ := c.Insert(record("u2", 4))
	doc, _ := c.Get(id)
	if err := c.Update(doc.Set("isDel", "1")); err != nil {
		t.Fatalf("self-update on unique index: %v", err)
	}
	// EnsureIndex(unique) over existing duplicates must fail.
	c2 := s.C("other")
	c2.Insert(record("same", 4)) //nolint:errcheck
	c2.Insert(record("same", 4)) //nolint:errcheck
	if err := c2.EnsureIndex("self-key", true); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("unique build over dups err = %v", err)
	}
}

func TestIndexMaintenanceOnUpdateDelete(t *testing.T) {
	s := memStore(t)
	c := s.C("records")
	c.EnsureIndex("self-key", false) //nolint:errcheck
	id, _ := c.Insert(record("before", 4))
	doc, _ := c.Get(id)
	if err := c.Update(doc.Set("self-key", "after")); err != nil {
		t.Fatal(err)
	}
	docs, _ := c.Find(Filter{{Key: "self-key", Value: "before"}}, FindOptions{})
	if len(docs) != 0 {
		t.Fatal("stale index entry after update")
	}
	docs, _ = c.Find(Filter{{Key: "self-key", Value: "after"}}, FindOptions{})
	if len(docs) != 1 {
		t.Fatal("index missing new value after update")
	}
	c.Delete(id) //nolint:errcheck
	docs, _ = c.Find(Filter{{Key: "self-key", Value: "after"}}, FindOptions{})
	if len(docs) != 0 {
		t.Fatal("stale index entry after delete")
	}
}

func TestDropCollection(t *testing.T) {
	s := memStore(t)
	s.C("a").Insert(record("x", 4)) //nolint:errcheck
	s.C("b").Insert(record("y", 4)) //nolint:errcheck
	if err := s.DropCollection("a"); err != nil {
		t.Fatal(err)
	}
	names := s.Collections()
	if len(names) != 1 || names[0] != "b" {
		t.Fatalf("Collections = %v", names)
	}
	if s.C("a").Len() != 0 {
		t.Fatal("dropped collection still has documents")
	}
}

func TestReadOnlyStore(t *testing.T) {
	s, err := Open(Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.C("x").Insert(record("a", 4)); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("err = %v, want ErrReadOnly", err)
	}
	// Replicated applies bypass read-only.
	op := Op{Kind: "insert", Coll: "x", Doc: record("a", 4).Set("_id", "k")}
	if err := s.ApplyReplicated(op); err != nil {
		t.Fatalf("ApplyReplicated on read-only store: %v", err)
	}
	if s.C("x").Len() != 1 {
		t.Fatal("replicated op not applied")
	}
}

func TestClosedStore(t *testing.T) {
	s, _ := Open(Options{})
	s.Close()
	if _, err := s.C("x").Insert(record("a", 4)); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestStatsTrackDataBytes(t *testing.T) {
	s := memStore(t)
	c := s.C("records")
	id, _ := c.Insert(record("a", 1000))
	before := s.Stats()
	if before.DataBytes < 1000 {
		t.Fatalf("DataBytes = %d, want >= 1000", before.DataBytes)
	}
	if before.Documents != 1 || before.Collections != 1 {
		t.Fatalf("Stats = %+v", before)
	}
	c.Delete(id) //nolint:errcheck
	if after := s.Stats(); after.DataBytes != 0 {
		t.Fatalf("DataBytes after delete = %d, want 0", after.DataBytes)
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	s := memStore(t)
	c := s.C("records")
	c.EnsureIndex("self-key", false) //nolint:errcheck
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if _, err := c.Insert(record(fmt.Sprintf("w%d-%d", w, i), 16)); err != nil {
					t.Errorf("Insert: %v", err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, err := c.Find(Filter{{Key: "self-key", Value: "w0-50"}}, FindOptions{}); err != nil {
					t.Errorf("Find: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if c.Len() != 800 {
		t.Fatalf("Len = %d, want 800", c.Len())
	}
}

func TestReplicationHookSeesOpsInOrder(t *testing.T) {
	s := memStore(t)
	var seqs []uint64
	var kinds []string
	s.SetReplicationHook(func(op Op) {
		seqs = append(seqs, op.Seq)
		kinds = append(kinds, op.Kind)
	})
	c := s.C("records")
	id, _ := c.Insert(record("a", 4))
	doc, _ := c.Get(id)
	c.Update(doc.Set("isDel", "1")) //nolint:errcheck
	c.Delete(id)                    //nolint:errcheck
	if len(seqs) != 3 {
		t.Fatalf("hook saw %d ops, want 3", len(seqs))
	}
	for i, want := range []uint64{1, 2, 3} {
		if seqs[i] != want {
			t.Fatalf("seqs = %v", seqs)
		}
	}
	for i, want := range []string{"insert", "update", "delete"} {
		if kinds[i] != want {
			t.Fatalf("kinds = %v", kinds)
		}
	}
}
