package docstore

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"mystore/internal/bson"
	"mystore/internal/uuid"
)

// Collection is a named set of documents with a primary _id index and
// optional secondary indexes.
type Collection struct {
	// mu guards the in-memory structures. Mutations additionally serialize
	// through the store's writeMu, so at most one writer exists at a time.
	mu        sync.RWMutex
	store     *Store
	name      string
	primary   primaryStore // idKey -> document, engine-backed
	indexes   map[string]*fieldIndex
	dataBytes int64

	// observer, when non-nil, runs inside every applied mutation with the
	// previous and new version of the document (nil when absent), under the
	// collection write lock. The cluster layer uses it to maintain the
	// anti-entropy hash trees incrementally. It must be fast and must not
	// call back into the collection.
	observer func(old, new bson.D)
}

func newCollection(s *Store, name string) *Collection {
	var primary primaryStore
	if s.engine != nil {
		primary = newLsmPrimary(s.engine, name)
	} else {
		primary = newMemPrimary()
	}
	return &Collection{
		store:   s,
		name:    name,
		primary: primary,
		indexes: make(map[string]*fieldIndex),
	}
}

// Name returns the collection name.
func (c *Collection) Name() string { return c.name }

// Len returns the number of documents.
func (c *Collection) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.primary.Len()
}

// DataBytes returns the approximate encoded size of all documents.
func (c *Collection) DataBytes() int64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.dataBytes
}

// Insert stores a new document. A missing _id is assigned a fresh ObjectId.
// The (possibly augmented) document's id is returned. The document is cloned
// before insertion, so the caller may reuse it.
func (c *Collection) Insert(doc bson.D) (any, error) {
	return c.InsertCtx(context.Background(), doc)
}

// InsertCtx is Insert carrying the caller's context so the write's
// durability wait appears in its trace.
func (c *Collection) InsertCtx(ctx context.Context, doc bson.D) (any, error) {
	doc = doc.Clone()
	id, ok := doc.Get("_id")
	if !ok {
		id = uuid.NewObjectId()
		// Prepend _id, matching MongoDB's canonical layout.
		doc = append(bson.D{{Key: "_id", Value: id}}, doc...)
	}
	if err := c.store.mutateCtx(ctx, Op{Kind: "insert", Coll: c.name, Doc: doc}); err != nil {
		return nil, err
	}
	return id, nil
}

// Update replaces the document whose _id matches doc's _id. The document
// must already exist.
func (c *Collection) Update(doc bson.D) error {
	return c.UpdateCtx(context.Background(), doc)
}

// UpdateCtx is Update carrying the caller's context so the write's
// durability wait appears in its trace.
func (c *Collection) UpdateCtx(ctx context.Context, doc bson.D) error {
	if !doc.Has("_id") {
		return fmt.Errorf("%w: update requires _id", ErrBadId)
	}
	return c.store.mutateCtx(ctx, Op{Kind: "update", Coll: c.name, Doc: doc.Clone()})
}

// Upsert inserts doc if its _id is unknown and replaces the stored document
// otherwise. A missing _id always inserts.
func (c *Collection) Upsert(doc bson.D) (any, error) {
	id, ok := doc.Get("_id")
	if !ok {
		return c.Insert(doc)
	}
	key, err := idKey(id)
	if err != nil {
		return nil, err
	}
	c.mu.RLock()
	_, exists := c.primary.Get(key)
	c.mu.RUnlock()
	if exists {
		return id, c.Update(doc)
	}
	return c.Insert(doc)
}

// Delete removes the document with the given id, reporting whether it
// existed.
func (c *Collection) Delete(id any) (bool, error) {
	return c.DeleteCtx(context.Background(), id)
}

// DeleteCtx is Delete carrying the caller's context so the write's
// durability wait appears in its trace.
func (c *Collection) DeleteCtx(ctx context.Context, id any) (bool, error) {
	key, err := idKey(id)
	if err != nil {
		return false, err
	}
	c.mu.RLock()
	_, exists := c.primary.Get(key)
	c.mu.RUnlock()
	if !exists {
		return false, nil
	}
	if err := c.store.mutateCtx(ctx, Op{Kind: "delete", Coll: c.name, Id: id}); err != nil {
		return false, err
	}
	return true, nil
}

// Get returns the document with the given primary key.
func (c *Collection) Get(id any) (bson.D, bool) {
	key, err := idKey(id)
	if err != nil {
		return nil, false
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.primary.Get(key)
	if !ok {
		return nil, false
	}
	return v.Clone(), true
}

// EnsureIndex creates a secondary index over the given field path if one
// does not exist, indexing current documents. Unique indexes fail if
// existing documents already collide.
func (c *Collection) EnsureIndex(field string, unique bool) error {
	c.mu.RLock()
	_, exists := c.indexes[field]
	c.mu.RUnlock()
	if exists {
		return nil
	}
	if unique {
		// Pre-validate against current contents to keep the WAL clean.
		seen := map[string]bool{}
		var dup bool
		c.mu.RLock()
		c.primary.Ascend(func(_ []byte, doc bson.D) bool {
			v, ok := lookupPath(doc, field)
			if !ok {
				return true
			}
			k := string(EncodeKey(v))
			if seen[k] {
				dup = true
				return false
			}
			seen[k] = true
			return true
		})
		c.mu.RUnlock()
		if dup {
			return fmt.Errorf("%w: existing documents collide on %q", ErrDuplicate, field)
		}
	}
	return c.store.mutate(Op{Kind: "index", Coll: c.name, Field: field, Unique: unique})
}

// Indexes lists the indexed field paths.
func (c *Collection) Indexes() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.indexes))
	for f := range c.indexes {
		out = append(out, f)
	}
	return out
}

// Distinct returns the distinct values of field among documents matching
// filter, in the canonical value order. Documents missing the field are
// skipped.
func (c *Collection) Distinct(field string, filter Filter) ([]any, error) {
	docs, err := c.Find(filter, FindOptions{})
	if err != nil {
		return nil, err
	}
	seen := map[string]any{}
	for _, doc := range docs {
		v, ok := lookupPath(doc, field)
		if !ok {
			continue
		}
		seen[string(EncodeKey(v))] = v
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys) // EncodeKey is order-preserving, so this is value order
	out := make([]any, len(keys))
	for i, k := range keys {
		out[i] = seen[k]
	}
	return out, nil
}

// FindOne returns the first document matching filter, in unspecified order.
func (c *Collection) FindOne(filter Filter) (bson.D, bool, error) {
	docs, err := c.Find(filter, FindOptions{Limit: 1})
	if err != nil {
		return nil, false, err
	}
	if len(docs) == 0 {
		return nil, false, nil
	}
	return docs[0], true, nil
}

// FindOneEach returns, for each value, the first document whose field equals
// that value, keyed by value — the batch counterpart of one FindOne per
// value, paying a single read-lock acquisition and one index probe per value
// instead of re-entering the collection N times. Values with no match are
// simply absent from the result. An unindexed field falls back to per-value
// FindOne.
func (c *Collection) FindOneEach(field string, values []string) (map[string]bson.D, error) {
	c.mu.RLock()
	ix, indexed := c.indexes[field]
	if !indexed {
		c.mu.RUnlock()
		out := make(map[string]bson.D, len(values))
		for _, v := range values {
			doc, found, err := c.FindOne(Filter{{Key: field, Value: v}})
			if err != nil {
				return nil, err
			}
			if found {
				out[v] = doc
			}
		}
		return out, nil
	}
	out := make(map[string]bson.D, len(values))
	for _, v := range values {
		if _, dup := out[v]; dup {
			continue
		}
		for _, idk := range ix.lookupEq(v) {
			if doc, ok := c.primary.Get([]byte(idk)); ok {
				out[v] = doc.Clone()
				break
			}
		}
	}
	c.mu.RUnlock()
	c.store.statIndexHit.Add(uint64(len(values)))
	return out, nil
}

// SetApplyObserver installs fn to run on every applied mutation with the
// document's previous and new version (nil when absent): (nil, doc) for an
// insert, (old, doc) for an update, (old, nil) for a delete. fn runs under
// the collection write lock in apply order — it must be fast and must not
// call back into this collection. Pass nil to remove. WAL replay happens
// before any observer can be installed, so derived state covering restart
// data must be rebuilt by scanning (see Each).
func (c *Collection) SetApplyObserver(fn func(old, new bson.D)) {
	c.mu.Lock()
	c.observer = fn
	c.mu.Unlock()
}

// Each calls fn for every document in primary-key order under a single read
// lock — the batch counterpart of Find(Filter{}) without materializing (or
// deep-cloning) the whole collection. fn receives the stored document
// itself: it must treat it as immutable and must not call back into the
// collection. Iteration stops when fn returns false. Retaining the document
// or values inside it past the callback is safe — applied mutations replace
// whole documents, never edit them in place.
func (c *Collection) Each(fn func(doc bson.D) bool) {
	c.EachSynced(nil, fn)
}

// EachSynced is Each with a begin hook invoked after the read lock is held
// and before the first document. Writers are excluded for the whole scan, so
// callers rebuilding derived state (the cluster's Merkle forest) use begin
// to open their live-update window exactly at the snapshot point: every
// mutation either completed before the scan (and is seen by it) or starts
// after it (and reaches the observer installed by begin) — never both.
func (c *Collection) EachSynced(begin func(), fn func(doc bson.D) bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if begin != nil {
		begin()
	}
	c.primary.Ascend(func(_ []byte, doc bson.D) bool {
		return fn(doc)
	})
	c.store.statScans.Add(1)
}

// Count returns the number of documents matching filter.
func (c *Collection) Count(filter Filter) (int, error) {
	if len(filter) == 0 {
		return c.Len(), nil
	}
	docs, err := c.Find(filter, FindOptions{})
	if err != nil {
		return 0, err
	}
	return len(docs), nil
}

// Find returns the documents matching filter, shaped by opts. Returned
// documents are deep copies; callers may mutate them freely.
func (c *Collection) Find(filter Filter, opts FindOptions) ([]bson.D, error) {
	c.mu.RLock()
	candidates, usedIndex, err := c.planLocked(filter)
	if err != nil {
		c.mu.RUnlock()
		return nil, err
	}
	var out []bson.D
	verify := func(doc bson.D) error {
		m, err := Match(doc, filter)
		if err != nil {
			return err
		}
		if m {
			out = append(out, doc.Clone())
		}
		return nil
	}
	if candidates != nil {
		for _, idk := range candidates {
			if v, ok := c.primary.Get([]byte(idk)); ok {
				if err := verify(v); err != nil {
					c.mu.RUnlock()
					return nil, err
				}
			}
		}
	} else {
		// Full scan, unless we can short-circuit: an unsorted, unfiltered
		// window query stops after skip+limit documents.
		budget := -1
		if len(filter) == 0 && len(opts.Sort) == 0 && opts.Limit > 0 {
			budget = opts.Skip + opts.Limit
		}
		var scanErr error
		c.primary.Ascend(func(_ []byte, doc bson.D) bool {
			if scanErr = verify(doc); scanErr != nil {
				return false
			}
			return budget < 0 || len(out) < budget
		})
		if scanErr != nil {
			c.mu.RUnlock()
			return nil, scanErr
		}
	}
	c.mu.RUnlock()

	// Atomic stat bumps: the read path must not touch the store-wide lock.
	if usedIndex {
		c.store.statIndexHit.Add(1)
	} else {
		c.store.statScans.Add(1)
	}

	sortDocs(out, opts.Sort)
	out = applyWindow(out, opts.Skip, opts.Limit)
	if len(opts.Projection) > 0 {
		for i, d := range out {
			out[i] = project(d, opts.Projection)
		}
	}
	return out, nil
}

// planLocked inspects filter for a predicate servable by an index. It
// returns (candidateIdKeys, true, nil) when an index narrowed the search, or
// (nil, false, nil) to request a full scan. Caller holds mu.
func (c *Collection) planLocked(filter Filter) ([]string, bool, error) {
	for _, e := range filter {
		if e.Key == "_id" {
			// Primary key predicates hit the primary tree directly.
			if ids, ok := c.planPrimaryLocked(e.Value); ok {
				return ids, true, nil
			}
			continue
		}
		ix, ok := c.indexes[e.Key]
		if !ok {
			continue
		}
		if ids, ok := planIndexPredicate(ix, e.Value); ok {
			return ids, true, nil
		}
	}
	return nil, false, nil
}

func (c *Collection) planPrimaryLocked(operand any) ([]string, bool) {
	resolve := func(v any) ([]string, bool) {
		key, err := idKey(v)
		if err != nil {
			return nil, false
		}
		if _, ok := c.primary.Get(key); ok {
			return []string{string(key)}, true
		}
		return nil, true // definitively empty
	}
	if ops, isDoc := operand.(bson.D); isDoc && isOperatorDoc(ops) {
		if eq, ok := ops.Get("$eq"); ok && len(ops) == 1 {
			return resolve(eq)
		}
		if in, ok := ops.Get("$in"); ok && len(ops) == 1 {
			arr, isArr := in.(bson.A)
			if !isArr {
				return nil, false
			}
			var out []string
			for _, v := range arr {
				ids, ok := resolve(v)
				if !ok {
					return nil, false
				}
				out = append(out, ids...)
			}
			return out, true
		}
		return nil, false
	}
	return resolve(operand)
}

// planIndexPredicate maps one filter element onto an index lookup.
func planIndexPredicate(ix *fieldIndex, operand any) ([]string, bool) {
	ops, isDoc := operand.(bson.D)
	if !isDoc || !isOperatorDoc(ops) {
		// Implicit equality on an embedded-document operand still works:
		// the index stores whole-value encodings.
		return ix.lookupEq(operand), true
	}
	if eq, ok := ops.Get("$eq"); ok && len(ops) == 1 {
		return ix.lookupEq(eq), true
	}
	if in, ok := ops.Get("$in"); ok && len(ops) == 1 {
		arr, isArr := in.(bson.A)
		if !isArr {
			return nil, false
		}
		var out []string
		for _, v := range arr {
			out = append(out, ix.lookupEq(v)...)
		}
		return out, true
	}
	// Range predicates: combine any of $gt/$gte (lower) and $lt/$lte (upper).
	var lo, hi any
	hiIncl := false
	supported := true
	for _, op := range ops {
		switch op.Key {
		case "$gt", "$gte":
			lo = op.Value
		case "$lt":
			hi = op.Value
		case "$lte":
			hi, hiIncl = op.Value, true
		default:
			supported = false
		}
	}
	if !supported || (lo == nil && hi == nil) {
		return nil, false
	}
	return ix.lookupRange(lo, hi, hiIncl), true
}

// --- internal apply/check operations (called with store.writeMu held) ---

func (c *Collection) checkInsert(doc bson.D) error {
	id, ok := doc.Get("_id")
	if !ok {
		return fmt.Errorf("%w: insert op missing _id", ErrBadId)
	}
	key, err := idKey(id)
	if err != nil {
		return err
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	if _, exists := c.primary.Get(key); exists {
		return fmt.Errorf("%w: _id %v", ErrDuplicate, id)
	}
	for _, ix := range c.indexes {
		if ix.wouldViolate(string(key), doc) {
			return fmt.Errorf("%w: unique index on %q", ErrDuplicate, ix.field)
		}
	}
	return nil
}

func (c *Collection) applyInsert(doc bson.D, lsn uint64) error {
	id, _ := doc.Get("_id")
	key, err := idKey(id)
	if err != nil {
		return err
	}
	enc, err := bson.Marshal(doc)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, exists := c.primary.Get(key); exists {
		if c.store.recovering {
			// Relaxed replay: a fuzzy snapshot (or checkpointed table state)
			// may already hold ops at or past the replay position, so an
			// insert of an existing document re-applies as an overwrite.
			return c.replaceLocked(key, old, doc, enc, lsn)
		}
		return fmt.Errorf("%w: _id %v", ErrDuplicate, id)
	}
	return c.insertLocked(key, doc, enc, lsn)
}

// insertLocked stores a fresh document. Caller holds c.mu and has verified
// the key is absent.
func (c *Collection) insertLocked(key []byte, doc bson.D, enc []byte, lsn uint64) error {
	if err := c.primary.Set(key, doc, enc, lsn, true); err != nil {
		return err
	}
	for _, ix := range c.indexes {
		ix.insert(string(key), doc)
	}
	c.dataBytes += int64(len(enc))
	if c.observer != nil {
		c.observer(nil, doc)
	}
	return nil
}

// replaceLocked swaps an existing document for doc. Caller holds c.mu.
func (c *Collection) replaceLocked(key []byte, oldDoc, doc bson.D, enc []byte, lsn uint64) error {
	if err := c.primary.Set(key, doc, enc, lsn, false); err != nil {
		return err
	}
	oldEnc, _ := bson.Marshal(oldDoc)
	for _, ix := range c.indexes {
		ix.remove(string(key), oldDoc)
		ix.insert(string(key), doc)
	}
	c.dataBytes += int64(len(enc)) - int64(len(oldEnc))
	if c.observer != nil {
		c.observer(oldDoc, doc)
	}
	return nil
}

func (c *Collection) checkUpdate(doc bson.D) error {
	id, ok := doc.Get("_id")
	if !ok {
		return fmt.Errorf("%w: update op missing _id", ErrBadId)
	}
	key, err := idKey(id)
	if err != nil {
		return err
	}
	c.mu.RLock()
	defer c.mu.RUnlock()
	if _, exists := c.primary.Get(key); !exists {
		return fmt.Errorf("%w: _id %v", ErrNotFound, id)
	}
	for _, ix := range c.indexes {
		if ix.wouldViolate(string(key), doc) {
			return fmt.Errorf("%w: unique index on %q", ErrDuplicate, ix.field)
		}
	}
	return nil
}

func (c *Collection) applyUpdate(doc bson.D, lsn uint64) error {
	id, _ := doc.Get("_id")
	key, err := idKey(id)
	if err != nil {
		return err
	}
	enc, err := bson.Marshal(doc)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	old, exists := c.primary.Get(key)
	if !exists {
		if c.store.recovering {
			// Relaxed replay: the snapshot may reflect a later delete of this
			// document; re-applying the update as an insert converges because
			// that delete is also in the replayed tail.
			return c.insertLocked(key, doc, enc, lsn)
		}
		return fmt.Errorf("%w: _id %v", ErrNotFound, id)
	}
	return c.replaceLocked(key, old, doc, enc, lsn)
}

func (c *Collection) applyDelete(id any, lsn uint64) error {
	key, err := idKey(id)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	old, exists := c.primary.Get(key)
	if !exists {
		return nil // deleting an absent document is a no-op on replay
	}
	oldEnc, _ := bson.Marshal(old)
	for _, ix := range c.indexes {
		ix.remove(string(key), old)
	}
	if err := c.primary.Delete(key, lsn); err != nil {
		return err
	}
	c.dataBytes -= int64(len(oldEnc))
	if c.observer != nil {
		c.observer(old, nil)
	}
	return nil
}

func (c *Collection) applyEnsureIndex(field string, unique bool, lsn uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, exists := c.indexes[field]; exists {
		return nil
	}
	if lp, ok := c.primary.(*lsmPrimary); ok {
		// Persist the definition so a restart can rebuild the index from
		// table state alone, even after the WAL that carried the "index" op
		// has been checkpointed away.
		if err := lp.saveIndexDef(field, unique, lsn); err != nil {
			return err
		}
	}
	c.buildIndexLocked(field, unique)
	return nil
}

// buildIndexLocked constructs a secondary index over current contents.
// Caller holds c.mu.
func (c *Collection) buildIndexLocked(field string, unique bool) {
	ix := newFieldIndex(field, unique)
	c.primary.Ascend(func(key []byte, doc bson.D) bool {
		ix.insert(string(key), doc)
		return true
	})
	c.indexes[field] = ix
}
