package docstore

import (
	"errors"
	"testing"

	"mystore/internal/bson"
)

func mustMatch(t *testing.T, doc bson.D, filter Filter) bool {
	t.Helper()
	ok, err := Match(doc, filter)
	if err != nil {
		t.Fatalf("Match(%s, %s): %v", doc, bson.D(filter), err)
	}
	return ok
}

func sampleDoc() bson.D {
	return bson.D{
		{Key: "self-key", Value: "Resistor5"},
		{Key: "size", Value: int64(120)},
		{Key: "type", Value: "scene"},
		{Key: "tags", Value: bson.A{"physics", "circuit"}},
		{Key: "meta", Value: bson.D{{Key: "course", Value: "EE101"}}},
		{Key: "isDel", Value: "0"},
	}
}

func TestMatchImplicitEquality(t *testing.T) {
	doc := sampleDoc()
	if !mustMatch(t, doc, Filter{{Key: "self-key", Value: "Resistor5"}}) {
		t.Error("equality on string failed")
	}
	if mustMatch(t, doc, Filter{{Key: "self-key", Value: "Resistor6"}}) {
		t.Error("wrong value matched")
	}
	if mustMatch(t, doc, Filter{{Key: "absent", Value: "x"}}) {
		t.Error("absent field matched")
	}
	if !mustMatch(t, doc, Filter{}) {
		t.Error("empty filter must match")
	}
	if !mustMatch(t, doc, Filter{{Key: "size", Value: int32(120)}}) {
		t.Error("cross-numeric-type equality failed")
	}
}

func TestMatchComparisonOperators(t *testing.T) {
	doc := sampleDoc()
	cases := []struct {
		filter Filter
		want   bool
	}{
		{Filter{{Key: "size", Value: bson.D{{Key: "$gt", Value: int64(100)}}}}, true},
		{Filter{{Key: "size", Value: bson.D{{Key: "$gt", Value: int64(120)}}}}, false},
		{Filter{{Key: "size", Value: bson.D{{Key: "$gte", Value: int64(120)}}}}, true},
		{Filter{{Key: "size", Value: bson.D{{Key: "$lt", Value: int64(121)}}}}, true},
		{Filter{{Key: "size", Value: bson.D{{Key: "$lte", Value: int64(119)}}}}, false},
		{Filter{{Key: "size", Value: bson.D{{Key: "$gt", Value: int64(100)}, {Key: "$lt", Value: int64(130)}}}}, true},
		{Filter{{Key: "size", Value: bson.D{{Key: "$eq", Value: float64(120)}}}}, true},
		{Filter{{Key: "size", Value: bson.D{{Key: "$ne", Value: int64(120)}}}}, false},
		{Filter{{Key: "absent", Value: bson.D{{Key: "$ne", Value: "v"}}}}, true},     // $ne matches missing fields
		{Filter{{Key: "size", Value: bson.D{{Key: "$gt", Value: "string"}}}}, false}, // cross-type range never matches
	}
	for i, c := range cases {
		if got := mustMatch(t, doc, c.filter); got != c.want {
			t.Errorf("case %d: Match = %v, want %v", i, got, c.want)
		}
	}
}

func TestMatchInNin(t *testing.T) {
	doc := sampleDoc()
	in := Filter{{Key: "type", Value: bson.D{{Key: "$in", Value: bson.A{"video", "scene"}}}}}
	if !mustMatch(t, doc, in) {
		t.Error("$in failed")
	}
	nin := Filter{{Key: "type", Value: bson.D{{Key: "$nin", Value: bson.A{"video", "report"}}}}}
	if !mustMatch(t, doc, nin) {
		t.Error("$nin failed")
	}
	ninMiss := Filter{{Key: "absent", Value: bson.D{{Key: "$nin", Value: bson.A{"x"}}}}}
	if !mustMatch(t, doc, ninMiss) {
		t.Error("$nin on absent field should match")
	}
	if _, err := Match(doc, Filter{{Key: "type", Value: bson.D{{Key: "$in", Value: "not-array"}}}}); !errors.Is(err, ErrBadFilter) {
		t.Errorf("$in non-array: err = %v", err)
	}
}

func TestMatchExists(t *testing.T) {
	doc := sampleDoc()
	if !mustMatch(t, doc, Filter{{Key: "meta", Value: bson.D{{Key: "$exists", Value: true}}}}) {
		t.Error("$exists true failed")
	}
	if !mustMatch(t, doc, Filter{{Key: "nope", Value: bson.D{{Key: "$exists", Value: false}}}}) {
		t.Error("$exists false failed")
	}
	if _, err := Match(doc, Filter{{Key: "meta", Value: bson.D{{Key: "$exists", Value: "yes"}}}}); !errors.Is(err, ErrBadFilter) {
		t.Errorf("$exists non-bool: err = %v", err)
	}
}

func TestMatchRegex(t *testing.T) {
	doc := sampleDoc()
	if !mustMatch(t, doc, Filter{{Key: "self-key", Value: bson.D{{Key: "$regex", Value: "^Resistor[0-9]+$"}}}}) {
		t.Error("$regex failed")
	}
	if mustMatch(t, doc, Filter{{Key: "size", Value: bson.D{{Key: "$regex", Value: "1"}}}}) {
		t.Error("$regex matched a non-string")
	}
	if _, err := Match(doc, Filter{{Key: "self-key", Value: bson.D{{Key: "$regex", Value: "("}}}}); !errors.Is(err, ErrBadFilter) {
		t.Errorf("bad pattern: err = %v", err)
	}
}

func TestMatchSize(t *testing.T) {
	doc := sampleDoc()
	if !mustMatch(t, doc, Filter{{Key: "tags", Value: bson.D{{Key: "$size", Value: int32(2)}}}}) {
		t.Error("$size failed")
	}
	if mustMatch(t, doc, Filter{{Key: "tags", Value: bson.D{{Key: "$size", Value: int32(3)}}}}) {
		t.Error("$size wrong count matched")
	}
	if _, err := Match(doc, Filter{{Key: "tags", Value: bson.D{{Key: "$size", Value: "2"}}}}); !errors.Is(err, ErrBadFilter) {
		t.Errorf("$size non-number: err = %v", err)
	}
}

func TestMatchLogicalOperators(t *testing.T) {
	doc := sampleDoc()
	and := Filter{{Key: "$and", Value: bson.A{
		bson.D{{Key: "type", Value: "scene"}},
		bson.D{{Key: "size", Value: bson.D{{Key: "$gt", Value: int64(100)}}}},
	}}}
	if !mustMatch(t, doc, and) {
		t.Error("$and failed")
	}
	or := Filter{{Key: "$or", Value: bson.A{
		bson.D{{Key: "type", Value: "video"}},
		bson.D{{Key: "type", Value: "scene"}},
	}}}
	if !mustMatch(t, doc, or) {
		t.Error("$or failed")
	}
	nor := Filter{{Key: "$nor", Value: bson.A{
		bson.D{{Key: "type", Value: "video"}},
		bson.D{{Key: "type", Value: "report"}},
	}}}
	if !mustMatch(t, doc, nor) {
		t.Error("$nor failed")
	}
	notOp := Filter{{Key: "size", Value: bson.D{{Key: "$not", Value: bson.D{{Key: "$lt", Value: int64(100)}}}}}}
	if !mustMatch(t, doc, notOp) {
		t.Error("$not failed")
	}
	for _, bad := range []Filter{
		{{Key: "$and", Value: "x"}},
		{{Key: "$or", Value: bson.A{"not-a-doc"}}},
		{{Key: "$unknown", Value: bson.A{}}},
		{{Key: "size", Value: bson.D{{Key: "$bogus", Value: int64(1)}}}},
		{{Key: "size", Value: bson.D{{Key: "$not", Value: "x"}}}},
	} {
		if _, err := Match(doc, bad); err == nil {
			t.Errorf("malformed filter %v accepted", bson.D(bad))
		}
	}
}

func TestMatchDottedPath(t *testing.T) {
	doc := sampleDoc()
	if !mustMatch(t, doc, Filter{{Key: "meta.course", Value: "EE101"}}) {
		t.Error("dotted equality failed")
	}
	if mustMatch(t, doc, Filter{{Key: "meta.course", Value: "CS101"}}) {
		t.Error("dotted equality false positive")
	}
}

func TestMatchEmbeddedDocEquality(t *testing.T) {
	doc := sampleDoc()
	// A plain embedded document without $-keys is an equality operand.
	if !mustMatch(t, doc, Filter{{Key: "meta", Value: bson.D{{Key: "course", Value: "EE101"}}}}) {
		t.Error("whole-document equality failed")
	}
}

func TestSortDocs(t *testing.T) {
	docs := []bson.D{
		{{Key: "n", Value: int64(3)}, {Key: "s", Value: "b"}},
		{{Key: "n", Value: int64(1)}, {Key: "s", Value: "c"}},
		{{Key: "n", Value: int64(3)}, {Key: "s", Value: "a"}},
		{{Key: "n", Value: int64(2)}, {Key: "s", Value: "d"}},
	}
	sortDocs(docs, []SortField{{Field: "n", Desc: false}, {Field: "s", Desc: true}})
	gotN := []int64{}
	gotS := []string{}
	for _, d := range docs {
		n, _ := d.Get("n")
		s, _ := d.Get("s")
		gotN = append(gotN, n.(int64))
		gotS = append(gotS, s.(string))
	}
	wantN := []int64{1, 2, 3, 3}
	wantS := []string{"c", "d", "b", "a"}
	for i := range wantN {
		if gotN[i] != wantN[i] || gotS[i] != wantS[i] {
			t.Fatalf("sorted = %v/%v, want %v/%v", gotN, gotS, wantN, wantS)
		}
	}
}

func TestApplyWindow(t *testing.T) {
	docs := make([]bson.D, 10)
	for i := range docs {
		docs[i] = bson.D{{Key: "i", Value: int64(i)}}
	}
	if got := applyWindow(docs, 2, 3); len(got) != 3 {
		t.Fatalf("window(2,3) len = %d", len(got))
	} else if v, _ := got[0].Get("i"); v != int64(2) {
		t.Fatalf("window(2,3)[0] = %v", v)
	}
	if got := applyWindow(docs, 20, 0); got != nil {
		t.Fatalf("skip past end should be empty, got %d", len(got))
	}
	if got := applyWindow(docs, 0, 0); len(got) != 10 {
		t.Fatalf("no window should keep all, got %d", len(got))
	}
}

func TestProject(t *testing.T) {
	doc := bson.D{
		{Key: "_id", Value: "id1"},
		{Key: "a", Value: int64(1)},
		{Key: "b", Value: int64(2)},
	}
	p := project(doc, []string{"b"})
	if len(p) != 2 || !p.Has("_id") || !p.Has("b") || p.Has("a") {
		t.Fatalf("project = %s", p)
	}
	if got := project(doc, nil); len(got) != 3 {
		t.Fatal("empty projection should keep all fields")
	}
}
