package docstore

import (
	"testing"

	"mystore/internal/bson"
)

func TestDistinct(t *testing.T) {
	s := memStore(t)
	c := s.C("items")
	for i := 0; i < 12; i++ {
		c.Insert(bson.D{ //nolint:errcheck
			{Key: "kind", Value: []string{"scene", "video", "report"}[i%3]},
			{Key: "n", Value: int64(i % 4)},
		})
	}
	c.Insert(bson.D{{Key: "other", Value: "no kind field"}}) //nolint:errcheck

	kinds, err := c.Distinct("kind", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(kinds) != 3 {
		t.Fatalf("Distinct(kind) = %v", kinds)
	}
	// Value order: strings sort lexically.
	if kinds[0] != "report" || kinds[1] != "scene" || kinds[2] != "video" {
		t.Fatalf("Distinct order = %v", kinds)
	}

	ns, err := c.Distinct("n", Filter{{Key: "kind", Value: "scene"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ns) != 4 {
		t.Fatalf("Distinct(n | scene) = %v", ns)
	}
	prev := int64(-1)
	for _, v := range ns {
		n := v.(int64)
		if n <= prev {
			t.Fatalf("Distinct numeric order = %v", ns)
		}
		prev = n
	}

	empty, err := c.Distinct("missing-everywhere", nil)
	if err != nil || len(empty) != 0 {
		t.Fatalf("Distinct(absent) = %v, %v", empty, err)
	}
	if _, err := c.Distinct("kind", Filter{{Key: "x", Value: bson.D{{Key: "$bogus", Value: 1}}}}); err == nil {
		t.Fatal("bad filter accepted")
	}
}

func TestDistinctDottedPath(t *testing.T) {
	s := memStore(t)
	c := s.C("items")
	for _, course := range []string{"EE101", "EE102", "EE101"} {
		c.Insert(bson.D{{Key: "meta", Value: bson.D{{Key: "course", Value: course}}}}) //nolint:errcheck
	}
	courses, err := c.Distinct("meta.course", nil)
	if err != nil || len(courses) != 2 {
		t.Fatalf("Distinct(meta.course) = %v, %v", courses, err)
	}
}
