package docstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"mystore/internal/bson"
	"mystore/internal/btree"
	"mystore/internal/wal"
)

// Snapshotting bounds WAL growth: Compact writes the full store contents to
// a snapshot file, records the WAL position it covers, and drops the WAL
// segments before that position. On open, the snapshot loads first and the
// WAL replays from the recorded position.
//
// Snapshot file layout: a stream of length-prefixed BSON documents. The
// first is a header {"lsn": int64}; then, per collection, one
// {"coll": name, "indexes": [{"field": f, "unique": b}, ...]} descriptor
// followed by one {"coll": name, "doc": <document>} entry per document.

const snapshotFile = "snapshot.bson"

// Compact writes a snapshot and truncates the WAL before it. It is a no-op
// for in-memory stores.
func (s *Store) Compact() error {
	if s.opts.Dir == "" {
		return nil
	}
	// Hold writeMu so the snapshot is a consistent point-in-time image and
	// its LSN matches exactly the ops it contains.
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return ErrClosed
	}
	colls := make(map[string]*Collection, len(s.colls))
	for name, c := range s.colls {
		colls[name] = c
	}
	s.mu.RUnlock()

	upto := s.log.NextLSN()
	tmp := filepath.Join(s.opts.Dir, snapshotFile+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("docstore: create snapshot: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<20)

	writeDoc := func(d bson.D) error {
		enc, err := bson.Marshal(d)
		if err != nil {
			return err
		}
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(enc)))
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		_, err = w.Write(enc)
		return err
	}

	err = writeDoc(bson.D{{Key: "lsn", Value: int64(upto)}})
	if err == nil {
		for name, c := range colls {
			var indexes bson.A
			c.mu.RLock()
			for field, ix := range c.indexes {
				indexes = append(indexes, bson.D{
					{Key: "field", Value: field},
					{Key: "unique", Value: ix.unique},
				})
			}
			if err = writeDoc(bson.D{{Key: "coll", Value: name}, {Key: "indexes", Value: indexes}}); err == nil {
				c.primary.Ascend(func(it btree.Item) bool {
					err = writeDoc(bson.D{{Key: "coll", Value: name}, {Key: "doc", Value: it.Value.(bson.D)}})
					return err == nil
				})
			}
			c.mu.RUnlock()
			if err != nil {
				break
			}
		}
	}
	if err == nil {
		err = w.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("docstore: write snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.opts.Dir, snapshotFile)); err != nil {
		return fmt.Errorf("docstore: install snapshot: %w", err)
	}
	return s.log.TruncateBefore(upto)
}

// loadSnapshot restores collections from the snapshot file, if present, and
// returns the LSN from which the WAL must replay.
func (s *Store) loadSnapshot() (wal.LSN, error) {
	path := filepath.Join(s.opts.Dir, snapshotFile)
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 1, nil
	}
	if err != nil {
		return 0, fmt.Errorf("docstore: open snapshot: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)

	readDoc := func() (bson.D, error) {
		var hdr [4]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil, err
		}
		n := binary.LittleEndian.Uint32(hdr[:])
		if n > bson.MaxDocumentSize {
			return nil, fmt.Errorf("docstore: snapshot entry of %d bytes", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		return bson.Unmarshal(buf)
	}

	header, err := readDoc()
	if err != nil {
		return 0, fmt.Errorf("docstore: snapshot header: %w", err)
	}
	lsnVal, ok := header.Get("lsn")
	lsn, isInt := lsnVal.(int64)
	if !ok || !isInt || lsn < 1 {
		return 0, errors.New("docstore: snapshot header missing lsn")
	}

	for {
		entry, err := readDoc()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return 0, fmt.Errorf("docstore: snapshot entry: %w", err)
		}
		name := entry.StringOr("coll", "")
		if name == "" {
			return 0, errors.New("docstore: snapshot entry missing coll")
		}
		c := s.C(name)
		if docVal, ok := entry.Get("doc"); ok {
			doc, isDoc := docVal.(bson.D)
			if !isDoc {
				return 0, fmt.Errorf("docstore: snapshot doc is %T", docVal)
			}
			if err := c.applyInsert(doc); err != nil {
				return 0, err
			}
			continue
		}
		if ixVal, ok := entry.Get("indexes"); ok {
			arr, _ := ixVal.(bson.A)
			for _, v := range arr {
				spec, isDoc := v.(bson.D)
				if !isDoc {
					continue
				}
				uniqueVal, _ := spec.Get("unique")
				unique, _ := uniqueVal.(bool)
				if err := c.applyEnsureIndex(spec.StringOr("field", ""), unique); err != nil {
					return 0, err
				}
			}
		}
	}
	return wal.LSN(lsn), nil
}
