package docstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"mystore/internal/bson"
	"mystore/internal/wal"
)

// Snapshotting bounds WAL growth: Compact writes the full store contents to
// a snapshot file, records the WAL position it covers, and drops the WAL
// segments before that position. On open, the snapshot loads first and the
// WAL replays from the recorded position.
//
// Snapshot file layout: a stream of length-prefixed BSON documents. The
// first is a header {"lsn": int64}; then, per collection, one
// {"coll": name, "indexes": [{"field": f, "unique": b}, ...]} descriptor
// followed by one {"coll": name, "doc": <document>} entry per document.

const snapshotFile = "snapshot.bson"

// Compact bounds WAL growth. With the lsm engine it forces a memtable
// flush — the tables are the snapshot, and the flush's checkpoint truncates
// the WAL. With the map engine it writes a fuzzy snapshot: the covered LSN
// is pinned under a brief writeMu hold, document references are gathered
// per collection under that collection's read lock only (documents are
// immutable once applied, so holding pointers is safe), and all encoding
// and file I/O runs outside every lock. Writers therefore stall for O(1)
// lock work, not for the dump. The snapshot may include ops at or past its
// recorded LSN; recovery replays the tail with relaxed (blind-write)
// semantics, which converges to the same state.
func (s *Store) Compact() error {
	if s.opts.Dir == "" {
		return nil
	}
	if s.engine != nil {
		return s.engine.Flush()
	}
	// Pin the snapshot position with no apply in flight, and snapshot the
	// collection map.
	s.writeMu.Lock()
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		s.writeMu.Unlock()
		return ErrClosed
	}
	colls := make(map[string]*Collection, len(s.colls))
	for name, c := range s.colls {
		colls[name] = c
	}
	s.mu.RUnlock()
	upto := s.log.NextLSN()
	s.writeMu.Unlock()

	// Gather phase: per-collection read lock, pointer copies only.
	type collDump struct {
		name    string
		indexes bson.A
		docs    []bson.D
	}
	dumps := make([]collDump, 0, len(colls))
	for name, c := range colls {
		d := collDump{name: name}
		c.mu.RLock()
		for field, ix := range c.indexes {
			d.indexes = append(d.indexes, bson.D{
				{Key: "field", Value: field},
				{Key: "unique", Value: ix.unique},
			})
		}
		d.docs = make([]bson.D, 0, c.primary.Len())
		c.primary.Ascend(func(_ []byte, doc bson.D) bool {
			d.docs = append(d.docs, doc)
			return true
		})
		c.mu.RUnlock()
		dumps = append(dumps, d)
	}

	// Encode-and-write phase: no locks held; concurrent writers proceed.
	tmp := filepath.Join(s.opts.Dir, snapshotFile+".tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("docstore: create snapshot: %w", err)
	}
	w := bufio.NewWriterSize(f, 1<<20)

	writeDoc := func(d bson.D) error {
		enc, err := bson.Marshal(d)
		if err != nil {
			return err
		}
		var hdr [4]byte
		binary.LittleEndian.PutUint32(hdr[:], uint32(len(enc)))
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		_, err = w.Write(enc)
		return err
	}

	err = writeDoc(bson.D{{Key: "lsn", Value: int64(upto)}})
	if err == nil {
	dump:
		for _, d := range dumps {
			if err = writeDoc(bson.D{{Key: "coll", Value: d.name}, {Key: "indexes", Value: d.indexes}}); err != nil {
				break
			}
			for _, doc := range d.docs {
				if hook := s.compactDocHook; hook != nil {
					hook()
				}
				if err = writeDoc(bson.D{{Key: "coll", Value: d.name}, {Key: "doc", Value: doc}}); err != nil {
					break dump
				}
			}
		}
	}
	if err == nil {
		err = w.Flush()
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("docstore: write snapshot: %w", err)
	}
	// Crash-atomic install: rename, then fsync the directory so the rename
	// itself survives a power cut. A crash before this point leaves the old
	// snapshot (and a stray .tmp recovery ignores); never a torn new one.
	if err := os.Rename(tmp, filepath.Join(s.opts.Dir, snapshotFile)); err != nil {
		return fmt.Errorf("docstore: install snapshot: %w", err)
	}
	if err := fsyncDir(s.opts.Dir); err != nil {
		return fmt.Errorf("docstore: sync snapshot dir: %w", err)
	}
	return s.log.TruncateBefore(upto)
}

// fsyncDir makes a directory entry change (rename) durable.
func fsyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// loadSnapshot restores collections from the snapshot file, if present, and
// returns the LSN from which the WAL must replay.
func (s *Store) loadSnapshot() (wal.LSN, error) {
	// A stray temp file is a snapshot whose write was interrupted; it is
	// never loaded, only removed.
	os.Remove(filepath.Join(s.opts.Dir, snapshotFile+".tmp"))
	path := filepath.Join(s.opts.Dir, snapshotFile)
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 1, nil
	}
	if err != nil {
		return 0, fmt.Errorf("docstore: open snapshot: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)

	readDoc := func() (bson.D, error) {
		var hdr [4]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil, err
		}
		n := binary.LittleEndian.Uint32(hdr[:])
		if n > bson.MaxDocumentSize {
			return nil, fmt.Errorf("docstore: snapshot entry of %d bytes", n)
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		return bson.Unmarshal(buf)
	}

	header, err := readDoc()
	if err != nil {
		return 0, fmt.Errorf("docstore: snapshot header: %w", err)
	}
	lsnVal, ok := header.Get("lsn")
	lsn, isInt := lsnVal.(int64)
	if !ok || !isInt || lsn < 1 {
		return 0, errors.New("docstore: snapshot header missing lsn")
	}

	for {
		entry, err := readDoc()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return 0, fmt.Errorf("docstore: snapshot entry: %w", err)
		}
		name := entry.StringOr("coll", "")
		if name == "" {
			return 0, errors.New("docstore: snapshot entry missing coll")
		}
		c := s.C(name)
		if docVal, ok := entry.Get("doc"); ok {
			doc, isDoc := docVal.(bson.D)
			if !isDoc {
				return 0, fmt.Errorf("docstore: snapshot doc is %T", docVal)
			}
			if err := c.applyInsert(doc, 0); err != nil {
				return 0, err
			}
			continue
		}
		if ixVal, ok := entry.Get("indexes"); ok {
			arr, _ := ixVal.(bson.A)
			for _, v := range arr {
				spec, isDoc := v.(bson.D)
				if !isDoc {
					continue
				}
				uniqueVal, _ := spec.Get("unique")
				unique, _ := uniqueVal.(bool)
				if err := c.applyEnsureIndex(spec.StringOr("field", ""), unique, 0); err != nil {
					return 0, err
				}
			}
		}
	}
	return wal.LSN(lsn), nil
}
