package docstore

import (
	"fmt"
	"sort"

	"mystore/internal/bson"
)

// A small aggregation facility in the spirit of MongoDB's group stage —
// part of the "complex query functions" the paper keeps from MongoDB that
// key-value stores give up. A GroupSpec names a grouping field and a set
// of accumulators; Aggregate filters, groups and reduces in one pass.

// Accumulator kinds.
const (
	AccCount = "$count" // number of documents in the group
	AccSum   = "$sum"   // sum of a numeric field
	AccAvg   = "$avg"   // mean of a numeric field
	AccMin   = "$min"   // minimum value of a field (canonical order)
	AccMax   = "$max"   // maximum value of a field
)

// AccumulatorSpec is one output of a group: Name in the result document,
// Op one of the Acc* kinds, Field the input field ($count ignores it).
type AccumulatorSpec struct {
	Name  string
	Op    string
	Field string
}

// GroupSpec describes an aggregation.
type GroupSpec struct {
	// By is the grouping field path; documents missing it group under nil.
	By string
	// Accumulators compute the group outputs.
	Accumulators []AccumulatorSpec
}

// ErrBadAggregate reports a malformed group specification.
var ErrBadAggregate = fmt.Errorf("docstore: malformed aggregation")

type groupState struct {
	key    any
	count  int64
	sums   map[string]float64
	sumInt map[string]bool // whether every summed value so far was integral
	avgN   map[string]int64
	mins   map[string]any
	maxs   map[string]any
}

// Aggregate filters the collection, groups matching documents by spec.By
// and reduces each group with the accumulators. Results are one document
// per group — {"_id": groupValue, <name>: <value>, ...} — ordered by group
// value.
func (c *Collection) Aggregate(filter Filter, spec GroupSpec) ([]bson.D, error) {
	docs, err := c.Find(filter, FindOptions{})
	if err != nil {
		return nil, err
	}
	return GroupDocuments(docs, spec)
}

// validateSpec checks a group specification.
func validateSpec(spec GroupSpec) error {
	for _, acc := range spec.Accumulators {
		switch acc.Op {
		case AccCount, AccSum, AccAvg, AccMin, AccMax:
		default:
			return fmt.Errorf("%w: unknown accumulator %q", ErrBadAggregate, acc.Op)
		}
		if acc.Name == "" {
			return fmt.Errorf("%w: accumulator without a name", ErrBadAggregate)
		}
		if acc.Op != AccCount && acc.Field == "" {
			return fmt.Errorf("%w: %s requires a field", ErrBadAggregate, acc.Op)
		}
	}
	return nil
}

// GroupDocuments groups and reduces an in-memory document slice. It is the
// shared core under Collection.Aggregate and the cluster's distributed
// aggregation (which merges deduplicated documents from every node first).
func GroupDocuments(docs []bson.D, spec GroupSpec) ([]bson.D, error) {
	if err := validateSpec(spec); err != nil {
		return nil, err
	}
	groups := map[string]*groupState{}
	for _, doc := range docs {
		key, _ := lookupPath(doc, spec.By)
		gk := string(EncodeKey(key))
		g, ok := groups[gk]
		if !ok {
			g = &groupState{
				key:    key,
				sums:   map[string]float64{},
				sumInt: map[string]bool{},
				avgN:   map[string]int64{},
				mins:   map[string]any{},
				maxs:   map[string]any{},
			}
			groups[gk] = g
		}
		g.count++
		for _, acc := range spec.Accumulators {
			switch acc.Op {
			case AccSum, AccAvg:
				v, ok := lookupPath(doc, acc.Field)
				if !ok {
					continue
				}
				f, isNum := numeric(v)
				if !isNum {
					return nil, fmt.Errorf("%w: %s over non-numeric field %q", ErrBadAggregate, acc.Op, acc.Field)
				}
				if _, seen := g.sumInt[acc.Name]; !seen {
					g.sumInt[acc.Name] = true
				}
				if _, isFloat := v.(float64); isFloat {
					g.sumInt[acc.Name] = false
				}
				g.sums[acc.Name] += f
				g.avgN[acc.Name]++
			case AccMin:
				if v, ok := lookupPath(doc, acc.Field); ok {
					if cur, seen := g.mins[acc.Name]; !seen || Compare(v, cur) < 0 {
						g.mins[acc.Name] = v
					}
				}
			case AccMax:
				if v, ok := lookupPath(doc, acc.Field); ok {
					if cur, seen := g.maxs[acc.Name]; !seen || Compare(v, cur) > 0 {
						g.maxs[acc.Name] = v
					}
				}
			}
		}
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys) // EncodeKey order == canonical value order
	out := make([]bson.D, 0, len(groups))
	for _, gk := range keys {
		g := groups[gk]
		row := bson.D{{Key: "_id", Value: g.key}}
		for _, acc := range spec.Accumulators {
			switch acc.Op {
			case AccCount:
				row = append(row, bson.E{Key: acc.Name, Value: g.count})
			case AccSum:
				if g.sumInt[acc.Name] {
					row = append(row, bson.E{Key: acc.Name, Value: int64(g.sums[acc.Name])})
				} else {
					row = append(row, bson.E{Key: acc.Name, Value: g.sums[acc.Name]})
				}
			case AccAvg:
				if n := g.avgN[acc.Name]; n > 0 {
					row = append(row, bson.E{Key: acc.Name, Value: g.sums[acc.Name] / float64(n)})
				} else {
					row = append(row, bson.E{Key: acc.Name, Value: nil})
				}
			case AccMin:
				row = append(row, bson.E{Key: acc.Name, Value: g.mins[acc.Name]})
			case AccMax:
				row = append(row, bson.E{Key: acc.Name, Value: g.maxs[acc.Name]})
			}
		}
		out = append(out, row)
	}
	return out, nil
}
