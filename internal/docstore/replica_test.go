package docstore

import (
	"errors"
	"fmt"
	"testing"
)

func newTestReplicaSet(t *testing.T, slaves int) *ReplicaSet {
	t.Helper()
	master, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { master.Close() })
	var ss []*Store
	for i := 0; i < slaves; i++ {
		s, err := Open(Options{ReadOnly: true})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		ss = append(ss, s)
	}
	return NewReplicaSet(master, ss...)
}

func TestReplicaSetShipsOps(t *testing.T) {
	rs := newTestReplicaSet(t, 2)
	for i := 0; i < 20; i++ {
		if _, err := rs.Put("records", record(fmt.Sprintf("k%02d", i), 16)); err != nil {
			t.Fatal(err)
		}
	}
	for i, slave := range rs.Slaves() {
		if got := slave.C("records").Len(); got != 20 {
			t.Fatalf("slave %d has %d docs, want 20", i, got)
		}
	}
	for _, lag := range rs.Lag() {
		if lag != 0 {
			t.Fatalf("Lag = %v, want zeros", rs.Lag())
		}
	}
}

func TestReplicaSetGetFallsBackToSlaves(t *testing.T) {
	rs := newTestReplicaSet(t, 2)
	rs.Put("records", record("a", 8).Set("_id", "k")) //nolint:errcheck
	// Master becomes unreachable for reads.
	rs.BeforeOp = func(node int, kind string) error {
		if node == 0 {
			return errors.New("master down")
		}
		return nil
	}
	doc, found, err := rs.Get("records", "k")
	if err != nil || !found {
		t.Fatalf("Get via slave = %v, %v, %v", doc, found, err)
	}
}

func TestReplicaSetMasterDownFailsWrites(t *testing.T) {
	rs := newTestReplicaSet(t, 1)
	rs.BeforeOp = func(node int, kind string) error {
		if node == 0 && kind == "put" {
			return errors.New("breakdown")
		}
		return nil
	}
	if _, err := rs.Put("records", record("x", 8)); !errors.Is(err, ErrMasterDown) {
		t.Fatalf("err = %v, want ErrMasterDown", err)
	}
	if _, err := rs.Delete("records", "k"); err == nil {
		rs.BeforeOp = func(int, string) error { return errors.New("any") }
		if _, err := rs.Delete("records", "k"); !errors.Is(err, ErrMasterDown) {
			t.Fatalf("delete err = %v, want ErrMasterDown", err)
		}
	}
}

func TestReplicaSetSlaveLagAndCatchUp(t *testing.T) {
	rs := newTestReplicaSet(t, 2)
	slaveDown := true
	rs.BeforeOp = func(node int, kind string) error {
		if node == 2 && slaveDown {
			return errors.New("slave 2 down")
		}
		return nil
	}
	for i := 0; i < 10; i++ {
		rs.Put("records", record(fmt.Sprintf("k%d", i), 8)) //nolint:errcheck
	}
	if rs.Slaves()[0].C("records").Len() != 10 {
		t.Fatal("healthy slave did not replicate")
	}
	if rs.Slaves()[1].C("records").Len() != 0 {
		t.Fatal("down slave replicated")
	}
	if lag := rs.Lag(); lag[1] != 10 {
		t.Fatalf("Lag = %v, want [0 10]", lag)
	}
	// Recovery: ops are delivered in order.
	slaveDown = false
	rs.CatchUp()
	if got := rs.Slaves()[1].C("records").Len(); got != 10 {
		t.Fatalf("slave after catch-up has %d docs, want 10", got)
	}
	if lag := rs.Lag(); lag[1] != 0 {
		t.Fatalf("Lag after catch-up = %v", lag)
	}
}

func TestReplicaSetOrderPreservedThroughFailure(t *testing.T) {
	rs := newTestReplicaSet(t, 1)
	fail := false
	rs.BeforeOp = func(node int, kind string) error {
		if node == 1 && fail {
			return errors.New("down")
		}
		return nil
	}
	rs.Put("records", record("v1", 8).Set("_id", "k")) //nolint:errcheck
	fail = true
	rs.Put("records", record("v2", 8).Set("_id", "k")) //nolint:errcheck
	rs.Put("records", record("v3", 8).Set("_id", "k")) //nolint:errcheck
	fail = false
	rs.CatchUp()
	doc, ok := rs.Slaves()[0].C("records").Get("k")
	if !ok || doc.StringOr("self-key", "") != "v3" {
		t.Fatalf("slave state after ordered catch-up = %s", doc)
	}
}

func TestReplicaSetDeleteReplicates(t *testing.T) {
	rs := newTestReplicaSet(t, 1)
	rs.Put("records", record("a", 8).Set("_id", "k")) //nolint:errcheck
	ok, err := rs.Delete("records", "k")
	if err != nil || !ok {
		t.Fatalf("Delete = %v, %v", ok, err)
	}
	if rs.Slaves()[0].C("records").Len() != 0 {
		t.Fatal("delete not replicated")
	}
	_, found, err := rs.Get("records", "k")
	if err != nil || found {
		t.Fatalf("Get after delete = %v, %v", found, err)
	}
}
