package docstore

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"mystore/internal/bson"
)

// TestPlannerEquivalenceProperty cross-checks the index-backed query path
// against brute-force Match over every document: for random data and
// random filters, Find must return exactly the documents Match admits,
// whether or not an index serves the predicate. This guards the planner's
// central contract — indexes narrow candidates but never change results.
func TestPlannerEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2013))
	kinds := []string{"scene", "video", "report", "component"}
	for trial := 0; trial < 30; trial++ {
		s, err := Open(Options{})
		if err != nil {
			t.Fatal(err)
		}
		indexed := trial%2 == 0
		c := s.C("data")
		if indexed {
			if err := c.EnsureIndex("kind", false); err != nil {
				t.Fatal(err)
			}
			if err := c.EnsureIndex("n", false); err != nil {
				t.Fatal(err)
			}
		}
		nDocs := 50 + rng.Intn(150)
		var all []bson.D
		for i := 0; i < nDocs; i++ {
			doc := bson.D{
				{Key: "_id", Value: fmt.Sprintf("d-%04d", i)},
				{Key: "kind", Value: kinds[rng.Intn(len(kinds))]},
				{Key: "n", Value: int64(rng.Intn(40))},
			}
			if rng.Intn(4) == 0 {
				doc = append(doc, bson.E{Key: "extra", Value: "x"})
			}
			if _, err := c.Insert(doc); err != nil {
				t.Fatal(err)
			}
			all = append(all, doc)
		}
		// Random filters drawn from the supported operator set.
		filters := []Filter{
			{{Key: "kind", Value: kinds[rng.Intn(len(kinds))]}},
			{{Key: "n", Value: bson.D{{Key: "$gte", Value: int64(rng.Intn(40))}}}},
			{{Key: "n", Value: bson.D{
				{Key: "$gt", Value: int64(rng.Intn(20))},
				{Key: "$lte", Value: int64(20 + rng.Intn(20))},
			}}},
			{{Key: "kind", Value: bson.D{{Key: "$in", Value: bson.A{kinds[0], kinds[1]}}}}},
			{{Key: "extra", Value: bson.D{{Key: "$exists", Value: true}}}},
			{{Key: "kind", Value: kinds[rng.Intn(len(kinds))]},
				{Key: "n", Value: bson.D{{Key: "$lt", Value: int64(rng.Intn(40))}}}},
			{{Key: "_id", Value: fmt.Sprintf("d-%04d", rng.Intn(nDocs))}},
			{{Key: "_id", Value: bson.D{{Key: "$in", Value: bson.A{"d-0001", "d-0002", "ghost"}}}}},
			// $or over indexed fields must fall back to a scan without
			// changing results.
			{{Key: "$or", Value: bson.A{
				bson.D{{Key: "kind", Value: kinds[0]}},
				bson.D{{Key: "n", Value: bson.D{{Key: "$gte", Value: int64(35)}}}},
			}}},
			// $ne must consider documents the index never stored.
			{{Key: "kind", Value: bson.D{{Key: "$ne", Value: kinds[rng.Intn(len(kinds))]}}}},
		}
		for fi, filter := range filters {
			got, err := c.Find(filter, FindOptions{})
			if err != nil {
				t.Fatalf("trial %d filter %d: Find: %v", trial, fi, err)
			}
			var want []string
			for _, doc := range all {
				m, err := Match(doc, filter)
				if err != nil {
					t.Fatalf("trial %d filter %d: Match: %v", trial, fi, err)
				}
				if m {
					id, _ := doc.Get("_id")
					want = append(want, id.(string))
				}
			}
			var gotIds []string
			for _, doc := range got {
				id, _ := doc.Get("_id")
				gotIds = append(gotIds, id.(string))
			}
			sort.Strings(want)
			sort.Strings(gotIds)
			if len(want) != len(gotIds) {
				t.Fatalf("trial %d filter %d (indexed=%v): Find returned %d docs, brute force %d\nfilter: %s",
					trial, fi, indexed, len(gotIds), len(want), bson.D(filter))
			}
			for i := range want {
				if want[i] != gotIds[i] {
					t.Fatalf("trial %d filter %d: result sets differ at %d: %s vs %s",
						trial, fi, i, gotIds[i], want[i])
				}
			}
		}
		s.Close()
	}
}
