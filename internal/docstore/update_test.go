package docstore

import (
	"errors"
	"testing"

	"mystore/internal/bson"
)

func TestApplyUpdateSet(t *testing.T) {
	doc := bson.D{{Key: "_id", Value: "k"}, {Key: "a", Value: int64(1)}}
	next, err := ApplyUpdate(doc, bson.D{{Key: "$set", Value: bson.D{
		{Key: "a", Value: int64(2)},
		{Key: "b", Value: "new"},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := next.Get("a"); v != int64(2) {
		t.Errorf("a = %v", v)
	}
	if v, _ := next.Get("b"); v != "new" {
		t.Errorf("b = %v", v)
	}
	// Original untouched.
	if v, _ := doc.Get("a"); v != int64(1) {
		t.Error("ApplyUpdate mutated its input")
	}
}

func TestApplyUpdateSetDottedCreatesIntermediates(t *testing.T) {
	doc := bson.D{{Key: "_id", Value: "k"}}
	next, err := ApplyUpdate(doc, bson.D{{Key: "$set", Value: bson.D{
		{Key: "meta.owner.name", Value: "alice"},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := lookupPath(next, "meta.owner.name"); !ok || v != "alice" {
		t.Fatalf("dotted set = %v, %v", v, ok)
	}
	// Setting through a scalar fails.
	doc2 := bson.D{{Key: "x", Value: "scalar"}}
	if _, err := ApplyUpdate(doc2, bson.D{{Key: "$set", Value: bson.D{{Key: "x.y", Value: 1}}}}); !errors.Is(err, ErrBadUpdate) {
		t.Fatalf("set through scalar err = %v", err)
	}
}

func TestApplyUpdateUnset(t *testing.T) {
	doc := bson.D{
		{Key: "_id", Value: "k"},
		{Key: "a", Value: int64(1)},
		{Key: "meta", Value: bson.D{{Key: "x", Value: int64(2)}, {Key: "y", Value: int64(3)}}},
	}
	next, err := ApplyUpdate(doc, bson.D{{Key: "$unset", Value: bson.D{
		{Key: "a", Value: int32(1)},
		{Key: "meta.x", Value: int32(1)},
		{Key: "absent", Value: int32(1)},
		{Key: "meta.absent.deeper", Value: int32(1)},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if next.Has("a") {
		t.Error("a not unset")
	}
	if _, ok := lookupPath(next, "meta.x"); ok {
		t.Error("meta.x not unset")
	}
	if _, ok := lookupPath(next, "meta.y"); !ok {
		t.Error("meta.y collateral damage")
	}
}

func TestApplyUpdateInc(t *testing.T) {
	doc := bson.D{
		{Key: "_id", Value: "k"},
		{Key: "views", Value: int64(10)},
		{Key: "score", Value: 1.5},
	}
	next, err := ApplyUpdate(doc, bson.D{{Key: "$inc", Value: bson.D{
		{Key: "views", Value: int64(5)},
		{Key: "score", Value: 0.5},
		{Key: "fresh", Value: int64(3)},
	}}})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := next.Get("views"); v != int64(15) {
		t.Errorf("views = %v (%T)", v, v)
	}
	if v, _ := next.Get("score"); v != 2.0 {
		t.Errorf("score = %v", v)
	}
	if v, _ := next.Get("fresh"); v != int64(3) {
		t.Errorf("fresh = %v", v)
	}
	// Bad targets.
	doc2 := bson.D{{Key: "s", Value: "text"}}
	if _, err := ApplyUpdate(doc2, bson.D{{Key: "$inc", Value: bson.D{{Key: "s", Value: int64(1)}}}}); !errors.Is(err, ErrBadUpdate) {
		t.Fatalf("$inc on string err = %v", err)
	}
	if _, err := ApplyUpdate(doc2, bson.D{{Key: "$inc", Value: bson.D{{Key: "n", Value: "1"}}}}); !errors.Is(err, ErrBadUpdate) {
		t.Fatalf("$inc with string delta err = %v", err)
	}
}

func TestApplyUpdateReplacement(t *testing.T) {
	doc := bson.D{{Key: "_id", Value: "k"}, {Key: "old", Value: int64(1)}}
	next, err := ApplyUpdate(doc, bson.D{{Key: "fresh", Value: "v"}})
	if err != nil {
		t.Fatal(err)
	}
	if next.Has("old") || !next.Has("fresh") {
		t.Fatalf("replacement = %s", next)
	}
	if id, _ := next.Get("_id"); id != "k" {
		t.Fatal("replacement dropped _id")
	}
	// Changing _id in a replacement is rejected.
	if _, err := ApplyUpdate(doc, bson.D{{Key: "_id", Value: "other"}}); !errors.Is(err, ErrBadUpdate) {
		t.Fatalf("id change err = %v", err)
	}
}

func TestApplyUpdateRejects(t *testing.T) {
	doc := bson.D{{Key: "_id", Value: "k"}}
	for _, bad := range []bson.D{
		{{Key: "$set", Value: "not-a-doc"}},
		{{Key: "$bogus", Value: bson.D{{Key: "a", Value: 1}}}},
		{{Key: "$set", Value: bson.D{{Key: "_id", Value: "other"}}}},
	} {
		if _, err := ApplyUpdate(doc, bad); !errors.Is(err, ErrBadUpdate) {
			t.Errorf("update %s accepted (err=%v)", bad, err)
		}
	}
}

func TestUpdateByIdAndMany(t *testing.T) {
	s := memStore(t)
	c := s.C("items")
	for i := 0; i < 10; i++ {
		c.Insert(bson.D{ //nolint:errcheck
			{Key: "_id", Value: int64(i)},
			{Key: "views", Value: int64(0)},
			{Key: "group", Value: []string{"a", "b"}[i%2]},
		})
	}
	if err := c.UpdateById(int64(3), bson.D{{Key: "$inc", Value: bson.D{{Key: "views", Value: int64(7)}}}}); err != nil {
		t.Fatal(err)
	}
	doc, _ := c.Get(int64(3))
	if v, _ := doc.Get("views"); v != int64(7) {
		t.Fatalf("views = %v", v)
	}
	if err := c.UpdateById(int64(99), bson.D{{Key: "$set", Value: bson.D{{Key: "x", Value: 1}}}}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing id err = %v", err)
	}
	n, err := c.UpdateMany(Filter{{Key: "group", Value: "a"}},
		bson.D{{Key: "$set", Value: bson.D{{Key: "flagged", Value: true}}}})
	if err != nil || n != 5 {
		t.Fatalf("UpdateMany = %d, %v", n, err)
	}
	flagged, _ := c.Count(Filter{{Key: "flagged", Value: true}})
	if flagged != 5 {
		t.Fatalf("flagged count = %d", flagged)
	}
}

func TestUpdateManyMaintainsIndexes(t *testing.T) {
	s := memStore(t)
	c := s.C("items")
	c.EnsureIndex("status", false) //nolint:errcheck
	for i := 0; i < 6; i++ {
		c.Insert(bson.D{{Key: "_id", Value: int64(i)}, {Key: "status", Value: "new"}}) //nolint:errcheck
	}
	n, err := c.UpdateMany(Filter{{Key: "status", Value: "new"}},
		bson.D{{Key: "$set", Value: bson.D{{Key: "status", Value: "done"}}}})
	if err != nil || n != 6 {
		t.Fatalf("UpdateMany = %d, %v", n, err)
	}
	news, _ := c.Find(Filter{{Key: "status", Value: "new"}}, FindOptions{})
	dones, _ := c.Find(Filter{{Key: "status", Value: "done"}}, FindOptions{})
	if len(news) != 0 || len(dones) != 6 {
		t.Fatalf("index stale after UpdateMany: new=%d done=%d", len(news), len(dones))
	}
}
