package docstore

import (
	"fmt"
	"sync"
	"testing"

	"mystore/internal/bson"
	"mystore/internal/wal"
)

// TestConcurrentWritePathReplayEquivalence is the lock-split property test:
// 64 goroutines hammer a durable store with inserts, updates and deletes;
// afterwards the store is closed and reopened so its state is rebuilt purely
// from WAL replay. The replayed state must match the live in-memory state
// exactly — the WAL-order == apply-order invariant — and the replication
// hook must have observed every committed op exactly once, in seq order.
func TestConcurrentWritePathReplayEquivalence(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, WAL: wal.Options{SyncEveryAppend: true}})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}

	var hookMu sync.Mutex
	var hookSeqs []uint64
	s.SetReplicationHook(func(op Op) {
		hookMu.Lock()
		hookSeqs = append(hookSeqs, op.Seq)
		hookMu.Unlock()
	})

	const writers = 64
	const opsPerWriter = 30
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			coll := s.C(fmt.Sprintf("coll-%d", w%4))
			for i := 0; i < opsPerWriter; i++ {
				id := fmt.Sprintf("w%d-doc%d", w, i)
				doc := bson.D{{Key: "_id", Value: id}, {Key: "n", Value: int64(i)}}
				switch i % 5 {
				case 0, 1, 2: // insert
					if _, err := coll.Insert(doc); err != nil {
						t.Errorf("Insert %s: %v", id, err)
						return
					}
				case 3: // update the doc inserted at i-1
					prev := fmt.Sprintf("w%d-doc%d", w, i-1)
					upd := bson.D{{Key: "_id", Value: prev}, {Key: "n", Value: int64(-i)}}
					if err := coll.Update(upd); err != nil {
						t.Errorf("Update %s: %v", prev, err)
						return
					}
				case 4: // delete the doc inserted at i-2
					prev := fmt.Sprintf("w%d-doc%d", w, i-2)
					if _, err := coll.Delete(prev); err != nil {
						t.Errorf("Delete %s: %v", prev, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// The hook must have seen a gap-free 1..N sequence, in order.
	hookMu.Lock()
	seqs := append([]uint64(nil), hookSeqs...)
	hookMu.Unlock()
	if len(seqs) != writers*opsPerWriter {
		t.Fatalf("hook saw %d ops, want %d", len(seqs), writers*opsPerWriter)
	}
	for i, seq := range seqs {
		if seq != uint64(i+1) {
			t.Fatalf("hook op %d has seq %d (out of order or gapped)", i, seq)
		}
	}

	live := dumpStore(t, s)
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r.Close()
	replayed := dumpStore(t, r)

	if len(replayed) != len(live) {
		t.Fatalf("replayed %d collections, want %d", len(replayed), len(live))
	}
	for coll, docs := range live {
		rdocs, ok := replayed[coll]
		if !ok {
			t.Fatalf("collection %s missing after replay", coll)
		}
		if len(rdocs) != len(docs) {
			t.Fatalf("collection %s: replayed %d docs, want %d", coll, len(rdocs), len(docs))
		}
		for id, enc := range docs {
			if rdocs[id] != enc {
				t.Fatalf("collection %s doc %s diverged after replay", coll, id)
			}
		}
	}
}

// dumpStore renders every collection as id -> canonical encoded doc.
func dumpStore(t *testing.T, s *Store) map[string]map[string]string {
	t.Helper()
	out := map[string]map[string]string{}
	for _, name := range s.Collections() {
		docs, err := s.C(name).Find(nil, FindOptions{})
		if err != nil {
			t.Fatalf("Find %s: %v", name, err)
		}
		m := map[string]string{}
		for _, d := range docs {
			id, _ := d.Get("_id")
			enc, err := bson.Marshal(d)
			if err != nil {
				t.Fatalf("Marshal: %v", err)
			}
			m[fmt.Sprint(id)] = string(enc)
		}
		out[name] = m
	}
	return out
}

// TestConcurrentDuplicateInsertsOneWinner: racing inserts of the same _id
// must produce exactly one success, and the WAL must never hold the loser
// (replay would otherwise diverge).
func TestConcurrentDuplicateInsertsOneWinner(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, WAL: wal.Options{SyncEveryAppend: true}})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	const racers = 32
	var wins, dups int
	var mu sync.Mutex
	var wg sync.WaitGroup
	doc := bson.D{{Key: "_id", Value: "contested"}, {Key: "v", Value: int64(1)}}
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.C("c").Insert(doc)
			mu.Lock()
			defer mu.Unlock()
			if err == nil {
				wins++
			} else {
				dups++
			}
		}()
	}
	wg.Wait()
	if wins != 1 || dups != racers-1 {
		t.Fatalf("wins=%d dups=%d, want 1/%d", wins, dups, racers-1)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen (losing insert leaked into the WAL?): %v", err)
	}
	defer r.Close()
	if n := r.C("c").Len(); n != 1 {
		t.Fatalf("replayed %d docs, want 1", n)
	}
}

// TestSerializeWritePathEquivalent: the ablation mode must behave like the
// default path functionally (hook order, persistence), just slower.
func TestSerializeWritePathEquivalent(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(Options{Dir: dir, SerializeWritePath: true, WAL: wal.Options{SyncEveryAppend: true}})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	var hookMu sync.Mutex
	var seqs []uint64
	s.SetReplicationHook(func(op Op) {
		hookMu.Lock()
		seqs = append(seqs, op.Seq)
		hookMu.Unlock()
	})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				doc := bson.D{{Key: "_id", Value: fmt.Sprintf("w%d-%d", w, i)}}
				if _, err := s.C("c").Insert(doc); err != nil {
					t.Errorf("Insert: %v", err)
				}
			}
		}(w)
	}
	wg.Wait()
	hookMu.Lock()
	n := len(seqs)
	ordered := true
	for i, seq := range seqs {
		if seq != uint64(i+1) {
			ordered = false
		}
	}
	hookMu.Unlock()
	if n != 80 || !ordered {
		t.Fatalf("hook saw %d ops (ordered=%v), want 80 in order", n, ordered)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	r, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r.Close()
	if got := r.C("c").Len(); got != 80 {
		t.Fatalf("replayed %d docs, want 80", got)
	}
}
