// Package nwr implements MyStore's quorum replication (paper §5.2.2): each
// record is replicated to the N distinct physical nodes that follow its key
// on the consistent-hash ring; a Put succeeds once W replicas acknowledge
// and a Get once R replicas answer. Writes that cannot reach a replica are
// handed to the next node on the ring as a hint (short-failure handling,
// §5.2.4 Fig 8) and written back when the replica returns. Reads collect
// every reachable replica, resolve conflicts last-write-wins, repair stale
// replicas and re-supplement missing ones.
package nwr

import (
	"fmt"
	"time"

	"mystore/internal/bson"
	"mystore/internal/uuid"
)

// RecordCollection is the docstore collection replicas live in; HintCollection
// holds records parked for unreachable replicas.
const (
	RecordCollection = "records"
	HintCollection   = "hints"
)

// Record is the paper's five-field storage unit plus the version metadata
// last-write-wins needs. The _id private key is assigned at first local
// materialization; self-key is the user key records are read by.
type Record struct {
	Key     string // self-key
	Val     []byte // val: the data entity
	IsData  bool   // isData: false marks a copy made by internal movement
	Deleted bool   // isDel: tombstone flag; deletes never remove the row
	Ver     int64  // _ver: origin timestamp (ns) for last-write-wins
	Origin  string // _origin: coordinator address, tiebreak for equal Ver
	Strong  bool   // _strong: written through a range's consensus log
}

// Newer reports whether r should supersede other under last-write-wins.
func (r Record) Newer(other Record) bool {
	if r.Ver != other.Ver {
		return r.Ver > other.Ver
	}
	return r.Origin > other.Origin
}

// ToDoc renders the record as the paper's BSON document shape. The _strong
// marker rides along only when set, so eventual-tier documents keep their
// original shape.
func (r Record) ToDoc() bson.D {
	d := bson.D{
		{Key: "self-key", Value: r.Key},
		{Key: "val", Value: r.Val},
		{Key: "isData", Value: boolFlag(r.IsData)},
		{Key: "isDel", Value: boolFlag(r.Deleted)},
		{Key: "_ver", Value: r.Ver},
		{Key: "_origin", Value: r.Origin},
	}
	if r.Strong {
		d = append(d, bson.E{Key: "_strong", Value: "1"})
	}
	return d
}

// WithId returns ToDoc prefixed with a fresh ObjectId _id, for insertion.
func (r Record) WithId(at time.Time) bson.D {
	return append(bson.D{{Key: "_id", Value: uuid.NewObjectIdAt(at)}}, r.ToDoc()...)
}

func boolFlag(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

// RecordFromDoc parses a stored or wire document into a Record.
func RecordFromDoc(d bson.D) (Record, error) {
	r := Record{}
	r.Key = d.StringOr("self-key", "")
	if r.Key == "" {
		return r, fmt.Errorf("nwr: document missing self-key: %s", d)
	}
	if v, ok := d.Get("val"); ok {
		b, isBytes := v.([]byte)
		if !isBytes {
			return r, fmt.Errorf("nwr: val is %T, want binary", v)
		}
		r.Val = b
	}
	r.IsData = d.StringOr("isData", "1") == "1"
	r.Deleted = d.StringOr("isDel", "0") == "1"
	if v, ok := d.Get("_ver"); ok {
		ver, isInt := v.(int64)
		if !isInt {
			return r, fmt.Errorf("nwr: _ver is %T, want int64", v)
		}
		r.Ver = ver
	}
	r.Origin = d.StringOr("_origin", "")
	r.Strong = d.StringOr("_strong", "0") == "1"
	return r, nil
}
