package nwr

// The quorum-first read path. A read dispatches its R primary replica reads
// immediately and parks the remaining N−R as reserves; the reserves launch
// when a hedge timer fires (recent p95 of read latency), when a primary
// fails, or — at the latest — once the quorum is met, as background repair
// probes. The caller gets an answer as soon as R replicas respond; the
// stragglers finish on a detached context and feed the async repair pool, so
// every read still drives repair and replica supplementation across all N
// replicas ("if replications are less than N ... some more replications are
// supplemented", §5.2.2) without paying max-over-N latency for it.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"mystore/internal/bson"
	"mystore/internal/trace"
)

// minHedgeDelay floors the adaptive hedge delay: below ~1ms the timer fires
// on ordinary scheduling jitter and the reserves stop being reserves.
const minHedgeDelay = time.Millisecond

// hedgeRecomputeEvery bounds how often the adaptive delay re-snapshots the
// read-latency histogram; Snapshot allocates and reads are hot.
const hedgeRecomputeEvery = 100 * time.Millisecond

// stragglerGrace is how long past a replica call's own timeout the
// background finisher keeps draining answers before repairing with what it
// has.
const stragglerGrace = time.Second

// hedgeDelay returns how long the reserves stay parked: the configured
// override, else the recent p95 of this coordinator's read latency floored
// at minHedgeDelay and capped at CallTimeout/2.
func (c *Coordinator) hedgeDelay() time.Duration {
	if c.cfg.HedgeDelay > 0 {
		return c.cfg.HedgeDelay
	}
	now := c.cfg.Now().UnixNano()
	if stamp := c.hedgeStamp.Load(); stamp != 0 && now-stamp < int64(hedgeRecomputeEvery) {
		return time.Duration(c.hedgeCached.Load())
	}
	d := time.Duration(c.getLatency.Snapshot().Quantile(0.95))
	if d < minHedgeDelay {
		d = minHedgeDelay
	}
	if lim := c.cfg.CallTimeout / 2; d > lim {
		d = lim
	}
	c.hedgeCached.Store(int64(d))
	c.hedgeStamp.Store(now)
	return d
}

// GetEx is Get returning provenance. With Config.DegradedReads set, a read
// that falls short of R but reached at least one replica returns that
// replica's newest answer flagged Degraded instead of ErrQuorumRead.
func (c *Coordinator) GetEx(ctx context.Context, key string) (res GetResult, err error) {
	ctx, sp := trace.Start(ctx, "nwr.read")
	start := c.cfg.Now()
	defer func() {
		c.getLatency.ObserveDuration(c.cfg.Now().Sub(start))
		sp.End(err)
	}()
	if c.cfg.DisableCoalesce {
		return c.readQuorum(ctx, key)
	}
	return c.coalescedRead(ctx, key)
}

// flight is one in-progress replica fan-out generation for a key; readers
// arriving while it is in flight wait on done instead of fanning out again.
type flight struct {
	done chan struct{}
	res  GetResult
	err  error
}

// coalescedRead is the per-key singleflight in front of the read path: the
// first reader of a key starts a fan-out generation, readers arriving while
// it is in flight share its outcome, so a hot key costs one fan-out per
// generation instead of one per client. The flight is unregistered before
// its result publishes, so a reader arriving after completion starts a fresh
// generation and never sees a stale answer. The generation runs detached
// from the leader's context — a follower may outlive the leader — bounded by
// its own timeout; every caller, leader included, waits under its own
// context.
func (c *Coordinator) coalescedRead(ctx context.Context, key string) (GetResult, error) {
	c.flightMu.Lock()
	f, joined := c.flights[key]
	if !joined {
		f = &flight{done: make(chan struct{})}
		c.flights[key] = f
	}
	c.flightMu.Unlock()

	if joined {
		c.bump(func(s *Stats) { s.CoalescedReads++ })
	} else {
		fctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), 2*c.cfg.CallTimeout)
		go func() {
			defer cancel()
			res, err := c.readQuorum(fctx, key)
			c.flightMu.Lock()
			delete(c.flights, key)
			c.flightMu.Unlock()
			f.res, f.err = res, err
			close(f.done)
		}()
	}
	select {
	case <-f.done:
		return f.res, f.err
	case <-ctx.Done():
		return GetResult{}, fmt.Errorf("%w: abandoned coalesced read for key %q: %v",
			ErrQuorumRead, key, ctx.Err())
	}
}

// replicaAnswer is one replica's response to a read.
type replicaAnswer struct {
	target string
	rec    Record
	found  bool
	err    error
}

// readOp is the per-read state machine: which replicas were dispatched,
// which are still parked as reserves, and what has answered so far. It is
// only ever touched by one goroutine at a time — the quorum loop until
// settle, then the background finisher.
type readOp struct {
	c          *Coordinator
	key        string
	bctx       context.Context // detached from the caller; values only
	answers    chan replicaAnswer
	pending    []string // replicas not yet dispatched
	dispatched int
	collected  []replicaAnswer
	responded  int
}

// readQuorum runs one replica fan-out generation for key and returns at R
// responses (or, in wait-for-all mode, when every replica has answered).
func (c *Coordinator) readQuorum(ctx context.Context, key string) (GetResult, error) {
	targets, err := c.ring.Successors(key, c.cfg.N)
	if err != nil {
		return GetResult{}, err
	}
	op := &readOp{
		c:       c,
		key:     key,
		bctx:    context.WithoutCancel(ctx),
		answers: make(chan replicaAnswer, len(targets)),
	}
	primaries := c.cfg.R
	if c.cfg.WaitForAllReads || primaries > len(targets) {
		primaries = len(targets)
	}
	for _, t := range targets[:primaries] {
		op.dispatch(t)
	}
	op.pending = append(op.pending, targets[primaries:]...)

	var hedgeCh <-chan time.Time
	if len(op.pending) > 0 && !c.cfg.DisableHedge {
		timer := time.NewTimer(c.hedgeDelay())
		defer timer.Stop()
		hedgeCh = timer.C
	}

	for len(op.collected) < op.dispatched {
		select {
		case a := <-op.answers:
			op.collected = append(op.collected, a)
			if a.err == nil {
				op.responded++
				if !c.cfg.WaitForAllReads && op.responded >= c.cfg.R {
					return op.settle()
				}
			} else {
				// A failed primary is the strongest hedge signal: launch the
				// reserves now regardless of the timer (and regardless of
				// DisableHedge — correctness, not a latency optimisation).
				op.launchPending(true)
				hedgeCh = nil
			}
		case <-hedgeCh:
			op.launchPending(true)
			hedgeCh = nil
		case <-ctx.Done():
			c.bump(func(s *Stats) { s.GetFailures++ })
			return GetResult{}, fmt.Errorf("%w: abandoned at %d/%d answers for key %q: %v",
				ErrQuorumRead, op.responded, c.cfg.R, key, ctx.Err())
		}
	}
	// Every dispatched replica has answered without reaching the early
	// return: wait-for-all mode, or the fan-out fell short of R. (The loop
	// cannot exit with reserves still parked — any primary failure launches
	// them.)
	return op.resolve()
}

// dispatch launches one replica read; its answer lands on op.answers.
func (op *readOp) dispatch(target string) {
	op.dispatched++
	go func() {
		rctx, rsp := trace.Start(op.bctx, "nwr.replica.read")
		rsp.SetPeer(target)
		rec, found, err := op.c.readReplica(rctx, target, op.key)
		rsp.End(err)
		op.answers <- replicaAnswer{target: target, rec: rec, found: found, err: err}
	}()
}

// launchPending dispatches the parked reserves. hedge marks launches that
// happen while the caller is still waiting (timer or error signal) — those
// count as hedged reads; the post-settle launch from finish does not.
func (op *readOp) launchPending(hedge bool) {
	if len(op.pending) == 0 {
		return
	}
	if hedge {
		op.c.bump(func(s *Stats) { s.HedgedReads += int64(len(op.pending)) })
		_, hsp := trace.Start(op.bctx, "nwr.read.hedge")
		hsp.End(nil)
	}
	for _, t := range op.pending {
		op.dispatch(t)
	}
	op.pending = nil
}

// newestOf resolves last-write-wins over the successful answers.
func newestOf(answers []replicaAnswer) (Record, bool) {
	var newest Record
	have := false
	for _, a := range answers {
		if a.err == nil && a.found && (!have || a.rec.Newer(newest)) {
			newest = a.rec
			have = true
		}
	}
	return newest, have
}

// settle answers the caller the moment the quorum is met. The stragglers and
// any still-parked reserves move to a background finisher that completes the
// full N-replica picture and feeds the repair pool.
func (op *readOp) settle() (GetResult, error) {
	c := op.c
	if op.responded < c.cfg.R {
		// Defensive tripwire — settle must only ever run at quorum.
		c.bump(func(s *Stats) { s.ReadQuorumViolations++ })
	}
	newest, haveNewest := newestOf(op.collected)
	c.bump(func(s *Stats) { s.Gets++ })
	go op.finish()
	if !haveNewest || newest.Deleted {
		return GetResult{}, fmt.Errorf("%w: %q", ErrNotFound, op.key)
	}
	return GetResult{Val: newest.Val}, nil
}

// resolve is the full-picture resolution: every dispatched replica has
// answered. Reached in wait-for-all mode and when the fan-out falls short of
// R (quorum failure or degraded read).
func (op *readOp) resolve() (GetResult, error) {
	c := op.c
	newest, haveNewest := newestOf(op.collected)
	degraded := false
	if op.responded < c.cfg.R {
		if !c.cfg.DegradedReads || op.responded == 0 {
			c.bump(func(s *Stats) { s.GetFailures++ })
			return GetResult{}, fmt.Errorf("%w: %d/%d replicas answered for key %q",
				ErrQuorumRead, op.responded, c.cfg.R, op.key)
		}
		// Degraded read: serve whatever the reachable minority knows,
		// flagged so callers can tell it may be stale.
		degraded = true
		c.bump(func(s *Stats) { s.DegradedReads++ })
	}
	c.bump(func(s *Stats) { s.Gets++ })
	c.repairFromAnswers(op.bctx, op.key, op.collected)
	if !haveNewest || newest.Deleted {
		return GetResult{Degraded: degraded}, fmt.Errorf("%w: %q", ErrNotFound, op.key)
	}
	return GetResult{Val: newest.Val, Degraded: degraded}, nil
}

// finish runs after the caller already has its answer: launch the reserves
// the hedge never reached (keeping the read-all-N repair semantics without
// its latency), drain the stragglers bounded by their own RPC timeout, then
// hand the complete replica picture to the repair pool.
func (op *readOp) finish() {
	op.launchPending(false)
	timeout := time.NewTimer(op.c.cfg.CallTimeout + stragglerGrace)
	defer timeout.Stop()
collect:
	for len(op.collected) < op.dispatched {
		select {
		case a := <-op.answers:
			op.collected = append(op.collected, a)
		case <-timeout.C:
			// A straggler outlived even its own RPC timeout; repair with
			// what we have.
			break collect
		}
	}
	op.c.repairFromAnswers(op.bctx, op.key, op.collected)
}

// repairFromAnswers compares the collected answers and enqueues one repair
// job covering every responder that is stale (read repair) or missing the
// record entirely (replica supplementation).
func (c *Coordinator) repairFromAnswers(bctx context.Context, key string, answers []replicaAnswer) {
	newest, have := newestOf(answers)
	if !have {
		return
	}
	var stale []repairTarget
	for _, a := range answers {
		if a.err != nil {
			continue
		}
		if !a.found || newest.Newer(a.rec) {
			stale = append(stale, repairTarget{addr: a.target, found: a.found})
		}
	}
	if len(stale) == 0 {
		return
	}
	c.enqueueRepair(repairJob{ctx: bctx, key: key, newest: newest, stale: stale})
}

// repairJob is one unit of async read repair: write newest back to each
// stale or missing replica.
type repairJob struct {
	ctx    context.Context // detached, value-only: repairs race no deadline
	key    string
	newest Record
	stale  []repairTarget
}

type repairTarget struct {
	addr  string
	found bool // false → the replica had no record at all (supplementation)
}

// enqueueRepair hands a job to the repair pool without blocking: the request
// path must never stall on repair backlog, so a full queue drops the job —
// anti-entropy catches the replica up later — and counts the drop.
func (c *Coordinator) enqueueRepair(job repairJob) {
	c.repairOnce.Do(c.startRepairWorkers)
	c.pendingRepairs.Add(1)
	select {
	case c.repairQ <- job:
	default:
		c.pendingRepairs.Add(-1)
		c.bump(func(s *Stats) { s.ReadRepairDropped++ })
	}
}

func (c *Coordinator) startRepairWorkers() {
	for i := 0; i < c.cfg.RepairWorkers; i++ {
		c.repairWG.Add(1)
		go c.repairWorker()
	}
}

func (c *Coordinator) repairWorker() {
	defer c.repairWG.Done()
	for {
		select {
		case job := <-c.repairQ:
			c.runRepair(job)
			c.pendingRepairs.Add(-1)
		case <-c.repairQuit:
			return
		}
	}
}

// runRepair writes the newest version back to each stale replica under the
// pool's own timeout, detached from whatever request discovered the
// staleness — a caller hitting its deadline no longer silently drops the
// repair.
func (c *Coordinator) runRepair(job repairJob) {
	ctx, cancel := context.WithTimeout(job.ctx, c.cfg.CallTimeout)
	defer cancel()
	ctx, sp := trace.Start(ctx, "nwr.repair")
	var firstErr error
	for _, t := range job.stale {
		if c.writeReplica(ctx, t.addr, job.newest) {
			if t.found {
				c.bump(func(s *Stats) { s.ReadRepairs++ })
			} else {
				c.bump(func(s *Stats) { s.ReplicaSupplements++ })
			}
		} else if firstErr == nil {
			firstErr = fmt.Errorf("nwr: repair of %s for key %q failed", t.addr, job.key)
		}
	}
	sp.End(firstErr)
}

// RepairBacklog returns queued plus in-flight repair jobs — the repair-queue
// depth gauge; tests also use it to wait for repairs to settle.
func (c *Coordinator) RepairBacklog() int64 { return c.pendingRepairs.Load() }

// Close stops the repair workers. It never closes the job channel, so a read
// that settles after Close still enqueues safely (the job just no longer
// drains).
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() {
		close(c.repairQuit)
		c.repairWG.Wait()
	})
}

// KeyResult is one key's outcome within a GetMany.
type KeyResult struct {
	Key string
	Res GetResult
	Err error // nil, ErrNotFound, or ErrQuorumRead
}

// peerAnswer is one peer's response to a batched replica read.
type peerAnswer struct {
	peer string
	keys []string
	recs map[string]Record // found keys only
	err  error
}

// GetMany reads many keys in one replica round: keys are grouped by replica
// set, each peer receives a single MsgGetReplicaBatch RPC covering every key
// it replicates (the local share is one indexed batch scan), and the call
// returns as soon as every key has R answers. Straggling peers finish on a
// detached context and feed read repair exactly like single-key reads.
func (c *Coordinator) GetMany(ctx context.Context, keys []string) (results []KeyResult, err error) {
	ctx, sp := trace.Start(ctx, "nwr.read.batch")
	start := c.cfg.Now()
	defer func() {
		c.getLatency.ObserveDuration(c.cfg.Now().Sub(start))
		sp.End(err)
	}()
	c.bump(func(s *Stats) { s.BatchGets++ })

	uniq := make([]string, 0, len(keys))
	dup := make(map[string]bool, len(keys))
	for _, k := range keys {
		if !dup[k] {
			dup[k] = true
			uniq = append(uniq, k)
		}
	}
	if len(uniq) == 0 {
		return nil, nil
	}

	// Group keys by replica: one batch RPC per peer.
	perPeer := make(map[string][]string)
	for _, k := range uniq {
		targets, terr := c.ring.Successors(k, c.cfg.N)
		if terr != nil {
			err = terr
			return nil, err
		}
		for _, t := range targets {
			perPeer[t] = append(perPeer[t], k)
		}
	}

	bctx := context.WithoutCancel(ctx)
	answers := make(chan peerAnswer, len(perPeer))
	for peer, pk := range perPeer {
		go func(peer string, pk []string) {
			rctx, rsp := trace.Start(bctx, "nwr.replica.read.batch")
			rsp.SetPeer(peer)
			recs, rerr := c.readReplicaBatch(rctx, peer, pk)
			rsp.End(rerr)
			answers <- peerAnswer{peer: peer, keys: pk, recs: recs, err: rerr}
		}(peer, pk)
	}

	// Per-key quorum accounting as peer answers arrive; quorum-first across
	// the whole batch — return once every key has R responses.
	perKey := make(map[string][]replicaAnswer, len(uniq))
	responded := make(map[string]int, len(uniq))
	unsettled := len(uniq)
	received := 0
collect:
	for received < len(perPeer) {
		select {
		case a := <-answers:
			received++
			for _, k := range a.keys {
				ans := replicaAnswer{target: a.peer, err: a.err}
				if a.err == nil {
					if rec, ok := a.recs[k]; ok {
						ans.rec, ans.found = rec, true
					}
					responded[k]++
					if responded[k] == c.cfg.R {
						unsettled--
					}
				}
				perKey[k] = append(perKey[k], ans)
			}
			if unsettled == 0 && !c.cfg.WaitForAllReads {
				break collect
			}
		case <-ctx.Done():
			c.bump(func(s *Stats) { s.GetFailures += int64(len(uniq)) })
			err = fmt.Errorf("%w: abandoned batch read: %v", ErrQuorumRead, ctx.Err())
			return nil, err
		}
	}

	earlyReturn := received < len(perPeer)
	results = make([]KeyResult, 0, len(uniq))
	for _, k := range uniq {
		kr := KeyResult{Key: k}
		newest, have := newestOf(perKey[k])
		switch {
		case responded[k] >= c.cfg.R:
			c.bump(func(s *Stats) { s.Gets++ })
			if !have || newest.Deleted {
				kr.Err = fmt.Errorf("%w: %q", ErrNotFound, k)
			} else {
				kr.Res = GetResult{Val: newest.Val}
			}
		case c.cfg.DegradedReads && responded[k] > 0:
			c.bump(func(s *Stats) { s.Gets++; s.DegradedReads++ })
			kr.Res.Degraded = true
			if !have || newest.Deleted {
				kr.Err = fmt.Errorf("%w: %q", ErrNotFound, k)
			} else {
				kr.Res.Val = newest.Val
			}
		default:
			if earlyReturn {
				// Tripwire: the early break requires every key at quorum.
				c.bump(func(s *Stats) { s.ReadQuorumViolations++ })
			}
			c.bump(func(s *Stats) { s.GetFailures++ })
			kr.Err = fmt.Errorf("%w: %d/%d replicas answered for key %q",
				ErrQuorumRead, responded[k], c.cfg.R, k)
		}
		results = append(results, kr)
	}
	// perKey is handed off to the finisher; no reads of it past this point.
	go c.finishBatch(bctx, uniq, perKey, answers, len(perPeer)-received)
	return results, nil
}

// finishBatch drains the straggling peer answers after a batch read already
// returned, then enqueues repair jobs for every key with a stale or missing
// replica.
func (c *Coordinator) finishBatch(bctx context.Context, keys []string, perKey map[string][]replicaAnswer, answers chan peerAnswer, remaining int) {
	timeout := time.NewTimer(c.cfg.CallTimeout + stragglerGrace)
	defer timeout.Stop()
drain:
	for i := 0; i < remaining; i++ {
		select {
		case a := <-answers:
			for _, k := range a.keys {
				ans := replicaAnswer{target: a.peer, err: a.err}
				if a.err == nil {
					if rec, ok := a.recs[k]; ok {
						ans.rec, ans.found = rec, true
					}
				}
				perKey[k] = append(perKey[k], ans)
			}
		case <-timeout.C:
			break drain
		}
	}
	for _, k := range keys {
		c.repairFromAnswers(bctx, k, perKey[k])
	}
}

// readReplicaBatch fetches a key set from one peer in a single RPC (one
// indexed scan when the peer is this node). The result holds only keys the
// peer had a record for.
func (c *Coordinator) readReplicaBatch(ctx context.Context, target string, keys []string) (map[string]Record, error) {
	if target == c.self {
		return c.GetLocalBatch(keys)
	}
	if c.Live != nil && !c.Live(target) {
		return nil, fmt.Errorf("nwr: %s believed down", target)
	}
	arr := make(bson.A, len(keys))
	for i, k := range keys {
		arr[i] = k
	}
	resp, err := c.callPeer(ctx, target, MsgGetReplicaBatch, bson.D{{Key: "keys", Value: arr}})
	if err != nil {
		return nil, err
	}
	rv, _ := resp.Get("results")
	ra, ok := rv.(bson.A)
	if !ok {
		return nil, errors.New("nwr: malformed batch replica response")
	}
	out := make(map[string]Record, len(ra))
	for _, ev := range ra {
		d, isDoc := ev.(bson.D)
		if !isDoc {
			continue
		}
		if found, _ := d.Get("found"); found != true {
			continue
		}
		recDoc, has := d.Get("record")
		rd, isRec := recDoc.(bson.D)
		if !has || !isRec {
			return nil, errors.New("nwr: malformed batch replica entry")
		}
		rec, rerr := RecordFromDoc(rd)
		if rerr != nil {
			return nil, rerr
		}
		out[d.StringOr("self-key", "")] = rec
	}
	return out, nil
}

// GetLocalBatch reads many keys from the local store in one indexed pass —
// one read-lock acquisition instead of one per key. Missing keys are simply
// absent from the result.
func (c *Coordinator) GetLocalBatch(keys []string) (map[string]Record, error) {
	if c.OnLocalOp != nil {
		if err := c.OnLocalOp("get", 0); err != nil {
			return nil, err
		}
	}
	docs, err := c.store.C(RecordCollection).FindOneEach("self-key", keys)
	if err != nil {
		return nil, err
	}
	out := make(map[string]Record, len(docs))
	transfer := 0
	for k, doc := range docs {
		rec, rerr := RecordFromDoc(doc)
		if rerr != nil {
			return nil, rerr
		}
		out[k] = rec
		transfer += len(rec.Val)
	}
	if c.OnLocalOp != nil && transfer > 0 {
		if err := c.OnLocalOp("read-transfer", transfer); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// handleGetReplicaBatch serves MsgGetReplicaBatch, the replica side of
// GetMany. Wire format: {"keys": [k, ...]} in; {"results": [{self-key,
// found, record?}, ...]} out, one entry per requested key in request order.
func (c *Coordinator) handleGetReplicaBatch(body bson.D) (bson.D, error) {
	kv, _ := body.Get("keys")
	arr, ok := kv.(bson.A)
	if !ok {
		return nil, errors.New("nwr: malformed batch get request")
	}
	keys := make([]string, 0, len(arr))
	for _, v := range arr {
		if s, isStr := v.(string); isStr {
			keys = append(keys, s)
		}
	}
	recs, err := c.GetLocalBatch(keys)
	if err != nil {
		return nil, err
	}
	results := make(bson.A, 0, len(keys))
	for _, k := range keys {
		rec, found := recs[k]
		entry := bson.D{{Key: "self-key", Value: k}, {Key: "found", Value: found}}
		if found {
			entry = append(entry, bson.E{Key: "record", Value: rec.ToDoc()})
		}
		results = append(results, entry)
	}
	return bson.D{{Key: "results", Value: results}}, nil
}
