package nwr

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"mystore/internal/docstore"
	"mystore/internal/transport"
)

// coordFor returns the coordinator running at addr.
func (tc *testCluster) coordFor(t *testing.T, addr string) *Coordinator {
	t.Helper()
	for i, a := range tc.addrs {
		if a == addr {
			return tc.coords[i]
		}
	}
	t.Fatalf("no coordinator at %s", addr)
	return nil
}

// nonOwnerCoord returns a coordinator that does not replicate key, so reads
// through it always cross the (latency-modelled) network.
func (tc *testCluster) nonOwnerCoord(t *testing.T, key string) *Coordinator {
	t.Helper()
	owners, _ := tc.ring.Successors(key, 3)
	for i, a := range tc.addrs {
		owner := false
		for _, o := range owners {
			if o == a {
				owner = true
			}
		}
		if !owner {
			return tc.coords[i]
		}
	}
	t.Fatalf("every node replicates %q", key)
	return nil
}

// staleVictim force-overwrites one replica of key with an ancient record and
// returns that replica's coordinator.
func (tc *testCluster) staleVictim(t *testing.T, key string) *Coordinator {
	t.Helper()
	owners, _ := tc.ring.Successors(key, 3)
	victim := tc.coordFor(t, owners[1])
	doc, _, _ := victim.store.C(RecordCollection).FindOne(docstore.Filter{{Key: "self-key", Value: key}})
	id, _ := doc.Get("_id")
	victim.store.C(RecordCollection).Delete(id) //nolint:errcheck
	if err := victim.ApplyLocal(Record{Key: key, Val: []byte("ancient"), Ver: 1, Origin: "old"}); err != nil {
		t.Fatal(err)
	}
	return victim
}

// TestQuorumFirstReturnsBeforeStraggler pins the tentpole behaviour: a read
// settles at R consistent answers and does not wait for slow replicas — the
// straggler feeds background repair instead of the caller's latency.
func TestQuorumFirstReturnsBeforeStraggler(t *testing.T) {
	cfg := defaultCfg()
	cfg.CallTimeout = 2 * time.Second
	tc := newTestCluster(t, 5, cfg)
	ctx := context.Background()
	key := "qf-key"
	if err := tc.coords[0].Put(ctx, key, []byte("v")); err != nil {
		t.Fatal(err)
	}
	tc.waitReplicas(t, key, 3)
	owners, _ := tc.ring.Successors(key, 3)
	slow := owners[2] // not the R=1 primary: a pure straggler
	tc.net.SetLatencyModel(func(from, to string, _ int) time.Duration {
		if from == slow || to == slow {
			return 800 * time.Millisecond
		}
		return 0
	})
	co := tc.nonOwnerCoord(t, key)
	start := time.Now()
	val, err := co.Get(ctx, key)
	elapsed := time.Since(start)
	if err != nil || string(val) != "v" {
		t.Fatalf("Get = %q, %v", val, err)
	}
	if elapsed > 400*time.Millisecond {
		t.Fatalf("quorum-first read took %v; should not wait for the %v straggler", elapsed, 800*time.Millisecond)
	}
}

// TestHedgedReadSurvivesHangingReplica is the integration half of the hedge:
// with the only primary hung far past CallTimeout, the hedge timer launches
// the reserves and the read completes correctly in a small fraction of
// CallTimeout.
func TestHedgedReadSurvivesHangingReplica(t *testing.T) {
	cfg := defaultCfg()
	cfg.CallTimeout = 2 * time.Second
	cfg.HedgeDelay = 5 * time.Millisecond
	tc := newTestCluster(t, 5, cfg)
	ctx := context.Background()
	key := "hedge-key"
	if err := tc.coords[0].Put(ctx, key, []byte("v")); err != nil {
		t.Fatal(err)
	}
	tc.waitReplicas(t, key, 3)
	owners, _ := tc.ring.Successors(key, 3)
	hang := owners[0] // the lone R=1 primary
	tc.net.SetLatencyModel(func(from, to string, _ int) time.Duration {
		if from == hang || to == hang {
			return 20 * time.Second // far past CallTimeout: effectively hung
		}
		return 0
	})
	co := tc.nonOwnerCoord(t, key)
	start := time.Now()
	val, err := co.Get(ctx, key)
	elapsed := time.Since(start)
	if err != nil || string(val) != "v" {
		t.Fatalf("Get = %q, %v", val, err)
	}
	if elapsed > cfg.CallTimeout/4 {
		t.Fatalf("hedged read took %v with a hanging replica; CallTimeout is %v", elapsed, cfg.CallTimeout)
	}
	if co.Stats().HedgedReads == 0 {
		t.Fatal("hedge timer never launched the reserves")
	}
}

// TestCoalescedConcurrentReads checks the singleflight contract directly:
// concurrent reads of one key share a single replica fan-out generation.
func TestCoalescedConcurrentReads(t *testing.T) {
	cfg := defaultCfg()
	tc := newTestCluster(t, 5, cfg)
	tc.net.SetLatencyModel(transport.ConstantLatency(5 * time.Millisecond))
	ctx := context.Background()
	key := "coalesce-key"
	if err := tc.coords[0].Put(ctx, key, []byte("v")); err != nil {
		t.Fatal(err)
	}
	tc.waitReplicas(t, key, 3)
	co := tc.nonOwnerCoord(t, key)
	const readers = 8
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if val, err := co.Get(ctx, key); err != nil || string(val) != "v" {
				t.Errorf("Get = %q, %v", val, err)
			}
		}()
	}
	wg.Wait()
	st := co.Stats()
	if st.CoalescedReads == 0 {
		t.Fatal("no concurrent reads coalesced")
	}
	if st.Gets+st.CoalescedReads != readers {
		t.Fatalf("generations (%d) + coalesced (%d) != %d client reads", st.Gets, st.CoalescedReads, readers)
	}
}

// TestCoalescerHammer races GetEx/GetMany/Put over a handful of hot keys from
// every coordinator; run under -race it is the coalescer's data-race gate,
// and it asserts the quorum tripwire stays silent under contention.
func TestCoalescerHammer(t *testing.T) {
	cfg := defaultCfg()
	cfg.CallTimeout = 5 * time.Second
	tc := newTestCluster(t, 5, cfg)
	tc.net.SetLatencyModel(transport.ConstantLatency(time.Millisecond))
	ctx := context.Background()
	hot := []string{"hot-0", "hot-1", "hot-2", "hot-3"}
	for _, k := range hot {
		if err := tc.coords[0].Put(ctx, k, []byte("seed")); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			co := tc.coords[g%len(tc.coords)]
			for i := 0; i < 40; i++ {
				k := hot[(g+i)%len(hot)]
				switch i % 8 {
				case 0:
					co.Put(ctx, k, []byte(fmt.Sprintf("v-%d-%d", g, i))) //nolint:errcheck
				case 1:
					co.GetMany(ctx, hot) //nolint:errcheck
				default:
					co.GetEx(ctx, k) //nolint:errcheck
				}
			}
		}(g)
	}
	wg.Wait()
	var coalesced int64
	for _, c := range tc.coords {
		st := c.Stats()
		coalesced += st.CoalescedReads
		if st.ReadQuorumViolations != 0 {
			t.Fatalf("%d quorum violations under hammer", st.ReadQuorumViolations)
		}
	}
	if coalesced == 0 {
		t.Fatal("hot-key hammer never coalesced a read")
	}
}

// TestReadRepairSurvivesCallerCancel is the satellite bugfix regression:
// repair runs on a detached context, so cancelling the read's context the
// moment it returns must not abort the repair.
func TestReadRepairSurvivesCallerCancel(t *testing.T) {
	tc := newTestCluster(t, 5, defaultCfg())
	ctx := context.Background()
	key := "detach-key"
	if err := tc.coords[0].Put(ctx, key, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	tc.waitReplicas(t, key, 3)
	victim := tc.staleVictim(t, key)
	rctx, cancel := context.WithCancel(ctx)
	val, err := tc.coords[0].Get(rctx, key)
	cancel() // caller walks away immediately
	if err != nil || string(val) != "v1" {
		t.Fatalf("Get = %q, %v", val, err)
	}
	waitFor(t, "repair survived caller cancellation", func() bool {
		rec, _, _ := victim.GetLocal(key)
		return string(rec.Val) == "v1"
	})
}

// TestReadRepairDroppedCounter pins the bounded-queue contract: with the
// workers never started and the queue full, further jobs are dropped and
// counted rather than blocking the read path.
func TestReadRepairDroppedCounter(t *testing.T) {
	cfg := defaultCfg()
	cfg.RepairQueue = 2
	tc := newTestCluster(t, 3, cfg)
	c := tc.coords[0]
	c.repairOnce.Do(func() {}) // burn the Once: the queue never drains
	job := repairJob{
		ctx:    context.Background(),
		key:    "k",
		newest: Record{Key: "k", Val: []byte("v"), Ver: 2},
		stale:  []repairTarget{{addr: tc.addrs[1], found: true}},
	}
	for i := 0; i < 4; i++ {
		c.enqueueRepair(job)
	}
	if got := c.Stats().ReadRepairDropped; got != 2 {
		t.Fatalf("ReadRepairDropped = %d, want 2", got)
	}
	if got := c.RepairBacklog(); got != 2 {
		t.Fatalf("RepairBacklog = %d, want 2", got)
	}
}

func TestGetMany(t *testing.T) {
	tc := newTestCluster(t, 5, defaultCfg())
	ctx := context.Background()
	var keys []string
	for i := 0; i < 10; i++ {
		k := fmt.Sprintf("batch-%d", i)
		keys = append(keys, k)
		if err := tc.coords[0].Put(ctx, k, []byte(fmt.Sprintf("val-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Put returns at W=2; wait out the background third replica so an R=1
	// batched read cannot legitimately catch an unsupplemented replica.
	for _, k := range keys {
		tc.waitReplicas(t, k, 3)
	}
	// Duplicates collapse, missing keys come back as per-key ErrNotFound.
	req := append(append([]string{}, keys...), "batch-missing", keys[0])
	results, err := tc.coords[1].GetMany(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(keys)+1 {
		t.Fatalf("got %d results, want %d", len(results), len(keys)+1)
	}
	byKey := make(map[string]KeyResult, len(results))
	for _, kr := range results {
		byKey[kr.Key] = kr
	}
	for i, k := range keys {
		kr := byKey[k]
		if kr.Err != nil || string(kr.Res.Val) != fmt.Sprintf("val-%d", i) {
			t.Fatalf("key %q = %q, %v", k, kr.Res.Val, kr.Err)
		}
	}
	if kr := byKey["batch-missing"]; !errors.Is(kr.Err, ErrNotFound) {
		t.Fatalf("missing key err = %v, want ErrNotFound", kr.Err)
	}
	if st := tc.coords[1].Stats(); st.BatchGets != 1 {
		t.Fatalf("BatchGets = %d, want 1", st.BatchGets)
	}
}

// TestGetManyRepairsStaleReplica: batched reads feed the same async repair
// path as single-key reads.
func TestGetManyRepairsStaleReplica(t *testing.T) {
	// R=2: with one replica staled, any two answers include a fresh record,
	// so the last-write-wins resolution is deterministic (at R=1 the stale
	// replica answering first would legitimately win the race).
	cfg := defaultCfg()
	cfg.R = 2
	tc := newTestCluster(t, 5, cfg)
	ctx := context.Background()
	key := "batch-repair-key"
	if err := tc.coords[0].Put(ctx, key, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	tc.waitReplicas(t, key, 3)
	victim := tc.staleVictim(t, key)
	results, err := tc.coords[0].GetMany(ctx, []string{key})
	if err != nil || len(results) != 1 || string(results[0].Res.Val) != "v1" {
		t.Fatalf("GetMany = %+v, %v", results, err)
	}
	waitFor(t, "batched read repaired the stale replica", func() bool {
		rec, _, _ := victim.GetLocal(key)
		return string(rec.Val) == "v1"
	})
}
