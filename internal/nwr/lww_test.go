package nwr

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"mystore/internal/docstore"
)

// TestLWWConvergenceProperty checks the eventual-consistency core: two
// replicas receiving the same set of writes in different orders converge
// to the same record. This is the invariant that lets read repair,
// hinted-handoff writeback, rebalancing and anti-entropy all push records
// at each other blindly.
func TestLWWConvergenceProperty(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		// A set of competing writes for one key: random versions, some
		// tombstones, a few exact version ties with different origins.
		n := 2 + rng.Intn(8)
		writes := make([]Record, n)
		seen := map[string]bool{}
		for i := range writes {
			// Coordinators guarantee (Ver, Origin) uniqueness (nextVer is
			// strictly monotonic per node); generate under that invariant
			// while still forcing cross-origin Ver ties.
			var ver int64
			var origin string
			for {
				ver = int64(1 + rng.Intn(5))
				origin = fmt.Sprintf("node-%d", rng.Intn(3))
				pair := fmt.Sprintf("%d/%s", ver, origin)
				if !seen[pair] {
					seen[pair] = true
					break
				}
			}
			writes[i] = Record{
				Key:     "contended",
				Val:     []byte(fmt.Sprintf("v%d", i)),
				IsData:  true,
				Deleted: rng.Intn(4) == 0,
				Ver:     ver,
				Origin:  origin,
			}
		}
		apply := func(order []int) Record {
			store, err := docstore.Open(docstore.Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer store.Close()
			coord := &Coordinator{cfg: Config{N: 1, W: 1, R: 1}.withDefaults(), self: "x", store: store}
			if err := store.C(RecordCollection).EnsureIndex("self-key", true); err != nil {
				t.Fatal(err)
			}
			for _, idx := range order {
				if err := coord.ApplyLocal(writes[idx]); err != nil {
					t.Fatal(err)
				}
			}
			rec, found, err := coord.GetLocal("contended")
			if err != nil || !found {
				t.Fatalf("final read: %v, %v", found, err)
			}
			return rec
		}
		orderA := rng.Perm(n)
		orderB := rng.Perm(n)
		a := apply(orderA)
		b := apply(orderB)
		if a.Ver != b.Ver || a.Origin != b.Origin || string(a.Val) != string(b.Val) || a.Deleted != b.Deleted {
			t.Fatalf("trial %d: replicas diverged:\n a=%+v (order %v)\n b=%+v (order %v)",
				trial, a, orderA, b, orderB)
		}
	}
}

// TestNextVerMonotonic pins the uniqueness invariant the convergence
// property relies on: versions from one coordinator strictly increase even
// when the clock is frozen or steps backwards.
func TestNextVerMonotonic(t *testing.T) {
	frozen := int64(0)
	c := &Coordinator{cfg: Config{N: 1, W: 1, R: 1, Now: func() time.Time { return time.Unix(0, frozen) }}.withDefaults()}
	var prev int64
	for i := 0; i < 1000; i++ {
		if i == 500 {
			frozen = -1e9 // the clock steps backwards
		}
		v := c.nextVer()
		if v <= prev {
			t.Fatalf("version %d not greater than previous %d at step %d", v, prev, i)
		}
		prev = v
	}
}

func BenchmarkApplyLocal(b *testing.B) {
	store, err := docstore.Open(docstore.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	coord, err := NewCoordinator(Config{N: 1, W: 1, R: 1}, "self", nil, nil, store)
	if err != nil {
		b.Fatal(err)
	}
	val := make([]byte, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := Record{Key: fmt.Sprintf("k-%d", i%1000), Val: val, Ver: int64(i), Origin: "self"}
		if err := coord.ApplyLocal(rec); err != nil {
			b.Fatal(err)
		}
	}
}
