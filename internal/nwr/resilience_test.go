package nwr

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"mystore/internal/resilience"
)

// cfgWithBreakers is defaultCfg plus a wired BreakerSet.
func cfgWithBreakers(bs *resilience.BreakerSet) Config {
	cfg := defaultCfg()
	cfg.Breakers = bs
	return cfg
}

// TestOpenBreakerSkipsDeadPeerOnWritePath: with a replica's breaker open,
// a quorum write must complete fast via the hint path instead of burning
// CallTimeout (or retries) against the dead peer.
func TestOpenBreakerSkipsDeadPeerOnWritePath(t *testing.T) {
	bs := resilience.NewBreakerSet(resilience.BreakerConfig{OpenFor: time.Minute})
	tc := newTestCluster(t, 5, cfgWithBreakers(bs))
	ctx := context.Background()

	key := "breaker-key"
	owners, _ := tc.ring.Successors(key, 3)
	// Kill the last replica and open its breaker, as gossip would after
	// classifying the failure.
	var downIdx int
	for i, a := range tc.addrs {
		if a == owners[2] {
			downIdx = i
		}
	}
	tc.eps[downIdx].Close()
	bs.ObservePeer(owners[2], resilience.PeerShortFail)

	// Coordinate from a non-owner so every replica write goes remote.
	coordIdx := -1
	for i, a := range tc.addrs {
		isOwner := false
		for _, o := range owners {
			if o == a {
				isOwner = true
			}
		}
		if !isOwner {
			coordIdx = i
			break
		}
	}
	if coordIdx < 0 {
		t.Fatal("no non-owner coordinator")
	}

	start := time.Now()
	if err := tc.coords[coordIdx].Put(ctx, key, []byte("v")); err != nil {
		t.Fatalf("put with open-breaker replica: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("put took %v; open breaker should fast-fail the dead peer", elapsed)
	}
	// No retries were spent on the open-breaker peer.
	if got := tc.coords[coordIdx].Stats().RetriedReplicaWrites; got != 0 {
		t.Fatalf("RetriedReplicaWrites = %d, want 0 (breaker open)", got)
	}
	// Put returns at the W quorum, which the two healthy replicas can reach
	// before the dead replica's goroutine touches its breaker — poll.
	deadline := time.Now().Add(2 * time.Second)
	for bs.Stats().FastFailures == 0 {
		if time.Now().After(deadline) {
			t.Fatal("expected breaker fast-failures on the write path")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBreakerFedByCallOutcomes: repeated transport failures against a dead
// peer trip its breaker without any gossip involvement.
func TestBreakerFedByCallOutcomes(t *testing.T) {
	bs := resilience.NewBreakerSet(resilience.BreakerConfig{FailureThreshold: 3, OpenFor: time.Minute})
	cfg := cfgWithBreakers(bs)
	cfg.Retries = 1
	tc := newTestCluster(t, 5, cfg)
	ctx := context.Background()

	tc.eps[2].Close()
	dead := tc.addrs[2]
	for i := 0; i < 10; i++ {
		tc.coords[0].Put(ctx, fmt.Sprintf("k-%d", i), []byte("v")) //nolint:errcheck
	}
	// Give the background replica goroutines a moment to finish reporting.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if st, ok := bs.States()[dead]; ok && st == resilience.Open {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("breaker for %s = %v, want open after repeated failures", dead, bs.States()[dead])
}

// TestDegradedReadServesStaleFlagged: when fewer than R replicas answer but
// at least one does, DegradedReads returns its value flagged Degraded.
func TestDegradedReadServesStaleFlagged(t *testing.T) {
	cfg := Config{N: 3, W: 3, R: 2, Retries: 1, CallTimeout: time.Second, DegradedReads: true}
	tc := newTestCluster(t, 3, cfg)
	ctx := context.Background()

	if err := tc.coords[0].Put(ctx, "k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// Healthy read: full quorum, not degraded.
	res, err := tc.coords[0].GetEx(ctx, "k")
	if err != nil || res.Degraded || string(res.Val) != "v1" {
		t.Fatalf("healthy read = %+v, %v", res, err)
	}

	// Down everything but the coordinator: only the local replica answers,
	// 1 < R=2.
	owners, _ := tc.ring.Successors("k", 3)
	selfOwner := false
	for _, o := range owners {
		if o == tc.addrs[0] {
			selfOwner = true
		}
	}
	if !selfOwner {
		t.Skip("coordinator not a replica for this key layout")
	}
	for _, ep := range tc.eps[1:] {
		ep.Close()
	}
	res, err = tc.coords[0].GetEx(ctx, "k")
	if err != nil {
		t.Fatalf("degraded read failed: %v", err)
	}
	if !res.Degraded || string(res.Val) != "v1" {
		t.Fatalf("degraded read = %+v, want Degraded v1", res)
	}
	if tc.coords[0].Stats().DegradedReads != 1 {
		t.Fatalf("DegradedReads stat = %d, want 1", tc.coords[0].Stats().DegradedReads)
	}

	// Without the flag the same situation is a quorum failure.
	cfg.DegradedReads = false
	tc2 := newTestCluster(t, 3, cfg)
	if err := tc2.coords[0].Put(ctx, "k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	for _, ep := range tc2.eps[1:] {
		ep.Close()
	}
	if _, err := tc2.coords[0].GetEx(ctx, "k"); !errors.Is(err, ErrQuorumRead) {
		t.Fatalf("err = %v, want ErrQuorumRead", err)
	}
}

// TestHintRedeliveryBackoff: an unreachable hint target is not re-pinged
// every DeliverHints round; the next attempt backs off, and NoteTargetUp
// clears the backoff for an immediate retry.
func TestHintRedeliveryBackoff(t *testing.T) {
	now := time.Unix(5000, 0)
	cfg := defaultCfg()
	cfg.CallTimeout = 50 * time.Millisecond
	cfg.Now = func() time.Time { return now }
	tc := newTestCluster(t, 5, cfg)
	ctx := context.Background()

	key := "backoff-key"
	owners, _ := tc.ring.Successors(key, 3)
	var downIdx int
	for i, a := range tc.addrs {
		if a == owners[2] {
			downIdx = i
		}
	}
	tc.eps[downIdx].Close()
	if err := tc.coords[0].Put(ctx, key, []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Find the node holding the hint.
	var holder *Coordinator
	deadline := time.Now().Add(2 * time.Second)
	for holder == nil && time.Now().Before(deadline) {
		for _, c := range tc.coords {
			if c.HintCount() > 0 {
				holder = c
				break
			}
		}
		time.Sleep(time.Millisecond)
	}
	if holder == nil {
		t.Fatal("no hint was parked")
	}

	holder.DeliverHints(ctx) // target down: ping fails, backoff starts
	if holder.hintTargetDue(owners[2]) {
		t.Fatal("failed target must not be due immediately after a failed round")
	}
	// Second round inside the backoff window: the skip means no ping, so
	// even after reopening the target the hint stays parked.
	tc.eps[downIdx].Reopen()
	holder.DeliverHints(ctx)
	if holder.HintCount() != 1 {
		t.Fatal("backed-off target must be skipped inside its window")
	}
	// Gossip reports the node back: backoff clears, writeback succeeds.
	holder.NoteTargetUp(owners[2])
	holder.DeliverHints(ctx)
	if holder.HintCount() != 0 {
		t.Fatal("hint not delivered after NoteTargetUp")
	}
	if _, found, _ := tc.coords[downIdx].GetLocal(key); !found {
		t.Fatal("writeback did not restore the replica")
	}

	// The backoff window itself expires with the clock.
	holder.hintTargetFailed("elsewhere")
	if holder.hintTargetDue("elsewhere") {
		t.Fatal("freshly failed target must be inside its backoff window")
	}
	now = now.Add(time.Hour)
	if !holder.hintTargetDue("elsewhere") {
		t.Fatal("target must be due after the backoff window passes")
	}
	// Repeated failures grow the window but never beyond hintRetryMax.
	for i := 0; i < 40; i++ {
		holder.hintTargetFailed("elsewhere")
	}
	holder.hintMu.Lock()
	next := holder.hintRetry["elsewhere"].nextTry
	holder.hintMu.Unlock()
	if wait := next.Sub(now); wait > hintRetryMax {
		t.Fatalf("backoff window %v exceeds cap %v", wait, hintRetryMax)
	}
}
