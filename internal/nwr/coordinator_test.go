package nwr

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"mystore/internal/docstore"
	"mystore/internal/ring"
	"mystore/internal/transport"
)

// testCluster wires n coordinators over a MemNetwork and one shared ring,
// the smallest assembly that exercises the full replica protocol.
type testCluster struct {
	net    *transport.MemNetwork
	ring   *ring.Ring
	eps    []*transport.MemTransport
	coords []*Coordinator
	stores []*docstore.Store
	addrs  []string
}

func newTestCluster(t *testing.T, n int, cfg Config) *testCluster {
	t.Helper()
	tc := &testCluster{net: transport.NewMemNetwork(), ring: ring.New()}
	for i := 0; i < n; i++ {
		addr := fmt.Sprintf("node-%d", i)
		tc.addrs = append(tc.addrs, addr)
		if err := tc.ring.AddNode(ring.Node{ID: addr, Weight: 1}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		ep, err := tc.net.Endpoint(tc.addrs[i])
		if err != nil {
			t.Fatal(err)
		}
		store, err := docstore.Open(docstore.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { store.Close() })
		coord, err := NewCoordinator(cfg, tc.addrs[i], tc.ring, ep, store)
		if err != nil {
			t.Fatal(err)
		}
		ep.SetHandler(coord.HandleMessage)
		tc.eps = append(tc.eps, ep)
		tc.coords = append(tc.coords, coord)
		tc.stores = append(tc.stores, store)
	}
	return tc
}

// replicaCount reports on how many nodes key's record currently exists
// (tombstoned or not).
func (tc *testCluster) replicaCount(key string) int {
	n := 0
	for _, c := range tc.coords {
		if _, found, _ := c.GetLocal(key); found {
			n++
		}
	}
	return n
}

// waitReplicas polls until key exists on want nodes; Put returns at the W
// quorum and finishes the remaining replications in the background.
func (tc *testCluster) waitReplicas(t *testing.T, key string, want int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if tc.replicaCount(key) >= want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("key %q has %d replicas, want %d", key, tc.replicaCount(key), want)
}

// waitFor polls cond until it holds or a 2s deadline passes. The read path
// answers at the quorum and finishes read repair / supplementation on the
// async pool, so tests wait for repair effects instead of asserting them the
// instant Get returns.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("condition not reached: %s", what)
}

func defaultCfg() Config {
	return Config{N: 3, W: 2, R: 1, Retries: 1, CallTimeout: time.Second}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{N: 0, W: 1, R: 1},
		{N: 3, W: 0, R: 1},
		{N: 3, W: 4, R: 1},
		{N: 3, W: 2, R: 0},
		{N: 3, W: 2, R: 4},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Config%+v validated", c)
		}
	}
	if err := defaultCfg().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	tc := newTestCluster(t, 5, defaultCfg())
	ctx := context.Background()
	coord := tc.coords[0]
	if err := coord.Put(ctx, "Resistor5", []byte("payload")); err != nil {
		t.Fatalf("Put: %v", err)
	}
	// Any coordinator can serve the read.
	for i, c := range tc.coords {
		val, err := c.Get(ctx, "Resistor5")
		if err != nil {
			t.Fatalf("Get via node-%d: %v", i, err)
		}
		if string(val) != "payload" {
			t.Fatalf("Get via node-%d = %q", i, val)
		}
	}
	tc.waitReplicas(t, "Resistor5", 3)
}

func TestGetMissingKey(t *testing.T) {
	tc := newTestCluster(t, 5, defaultCfg())
	if _, err := tc.coords[0].Get(context.Background(), "ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestDeleteIsTombstone(t *testing.T) {
	tc := newTestCluster(t, 5, defaultCfg())
	ctx := context.Background()
	tc.coords[0].Put(ctx, "k", []byte("v")) //nolint:errcheck
	if err := tc.coords[1].Delete(ctx, "k"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := tc.coords[2].Get(ctx, "k"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after delete err = %v", err)
	}
	// The rows still exist physically, flagged isDel (paper §3.3). The last
	// replica may receive its tombstone from the background replication or
	// async read repair, so poll.
	if got := tc.replicaCount("k"); got == 0 {
		t.Fatal("tombstones were physically removed")
	}
	waitFor(t, "all live replicas tombstoned", func() bool {
		for _, c := range tc.coords {
			rec, found, _ := c.GetLocal("k")
			if found && !rec.Deleted {
				return false
			}
		}
		return true
	})
}

func TestLastWriteWins(t *testing.T) {
	tc := newTestCluster(t, 5, defaultCfg())
	ctx := context.Background()
	tc.coords[0].Put(ctx, "k", []byte("v1")) //nolint:errcheck
	time.Sleep(time.Millisecond)             // ensure a later timestamp
	tc.coords[3].Put(ctx, "k", []byte("v2")) //nolint:errcheck
	val, err := tc.coords[1].Get(ctx, "k")
	if err != nil || string(val) != "v2" {
		t.Fatalf("Get = %q, %v; want v2", val, err)
	}
	// Recreate after delete.
	tc.coords[0].Delete(ctx, "k") //nolint:errcheck
	time.Sleep(time.Millisecond)
	tc.coords[2].Put(ctx, "k", []byte("v3")) //nolint:errcheck
	val, err = tc.coords[4].Get(ctx, "k")
	if err != nil || string(val) != "v3" {
		t.Fatalf("Get after recreate = %q, %v", val, err)
	}
}

func TestStaleWriteIgnored(t *testing.T) {
	tc := newTestCluster(t, 3, Config{N: 3, W: 3, R: 1})
	c := tc.coords[0]
	newer := Record{Key: "k", Val: []byte("new"), Ver: 100, Origin: "b"}
	older := Record{Key: "k", Val: []byte("old"), Ver: 50, Origin: "a"}
	if err := c.ApplyLocal(newer); err != nil {
		t.Fatal(err)
	}
	if err := c.ApplyLocal(older); err != nil {
		t.Fatal(err)
	}
	rec, found, _ := c.GetLocal("k")
	if !found || string(rec.Val) != "new" {
		t.Fatalf("stale write overwrote: %q", rec.Val)
	}
	// Equal Ver: higher origin wins.
	tie := Record{Key: "k", Val: []byte("tie"), Ver: 100, Origin: "z"}
	c.ApplyLocal(tie) //nolint:errcheck
	rec, _, _ = c.GetLocal("k")
	if string(rec.Val) != "tie" {
		t.Fatalf("origin tiebreak failed: %q", rec.Val)
	}
}

func TestWriteQuorumFailure(t *testing.T) {
	tc := newTestCluster(t, 5, Config{N: 3, W: 3, R: 1, Retries: 1})
	ctx := context.Background()
	// Find the replica set for a key, kill two replicas AND enough of the
	// cluster that no hint target remains.
	key := "doomed-key"
	for _, ep := range tc.eps[1:] {
		ep.Close()
	}
	owners, _ := tc.ring.Successors(key, 3)
	selfIsOwner := false
	for _, o := range owners {
		if o == tc.addrs[0] {
			selfIsOwner = true
		}
	}
	err := tc.coords[0].Put(ctx, key, []byte("v"))
	if !errors.Is(err, ErrQuorumWrite) {
		t.Fatalf("err = %v, want ErrQuorumWrite (self owner: %v)", err, selfIsOwner)
	}
	st := tc.coords[0].Stats()
	if st.PutFailures != 1 {
		t.Fatalf("PutFailures = %d", st.PutFailures)
	}
}

func TestReadQuorumFailure(t *testing.T) {
	tc := newTestCluster(t, 5, Config{N: 3, W: 1, R: 3})
	ctx := context.Background()
	if err := tc.coords[0].Put(ctx, "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Take down everything except the coordinator: at most one replica
	// (possibly local) can answer, below R=3.
	for _, ep := range tc.eps[1:] {
		ep.Close()
	}
	if _, err := tc.coords[0].Get(ctx, "k"); !errors.Is(err, ErrQuorumRead) {
		t.Fatalf("err = %v, want ErrQuorumRead", err)
	}
}

func TestHintedHandoffAndWriteback(t *testing.T) {
	tc := newTestCluster(t, 5, defaultCfg())
	ctx := context.Background()
	key := "hinted-key"
	owners, _ := tc.ring.Successors(key, 3)
	// Pick a coordinator that is NOT a replica for the key, so closing one
	// replica cannot silently become a local write.
	coordIdx := -1
	for i, a := range tc.addrs {
		isOwner := false
		for _, o := range owners {
			if o == a {
				isOwner = true
			}
		}
		if !isOwner {
			coordIdx = i
			break
		}
	}
	if coordIdx < 0 {
		t.Fatal("no non-owner coordinator available")
	}
	// Down one replica.
	var downIdx int
	for i, a := range tc.addrs {
		if a == owners[2] {
			downIdx = i
		}
	}
	tc.eps[downIdx].Close()

	if err := tc.coords[coordIdx].Put(ctx, key, []byte("v")); err != nil {
		t.Fatalf("Put with one replica down: %v", err)
	}
	// A hint must be parked somewhere; the hint path may complete after the
	// W quorum returned, so poll briefly.
	totalHints := 0
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		totalHints = 0
		for _, c := range tc.coords {
			totalHints += c.HintCount()
		}
		if totalHints == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if totalHints != 1 {
		t.Fatalf("hints parked = %d, want 1", totalHints)
	}
	// The downed replica has no data yet.
	if _, found, _ := tc.coords[downIdx].GetLocal(key); found {
		t.Fatal("closed replica somehow has the record")
	}
	// Node recovers; hints are delivered on the next pass.
	tc.eps[downIdx].Reopen()
	for _, c := range tc.coords {
		c.DeliverHints(ctx)
	}
	if _, found, _ := tc.coords[downIdx].GetLocal(key); !found {
		t.Fatal("writeback did not restore the replica")
	}
	totalHints = 0
	delivered := int64(0)
	for _, c := range tc.coords {
		totalHints += c.HintCount()
		delivered += c.Stats().HintsDelivered
	}
	if totalHints != 0 || delivered != 1 {
		t.Fatalf("after writeback: hints=%d delivered=%d", totalHints, delivered)
	}
}

func TestSloppyQuorumKeepsWritesAvailable(t *testing.T) {
	// W=2 with one of three replicas down must still succeed via the hint.
	tc := newTestCluster(t, 5, defaultCfg())
	ctx := context.Background()
	succeeded := 0
	tc.eps[2].Close()
	for i := 0; i < 50; i++ {
		if err := tc.coords[0].Put(ctx, fmt.Sprintf("key-%d", i), []byte("v")); err == nil {
			succeeded++
		}
	}
	if succeeded != 50 {
		t.Fatalf("only %d/50 puts succeeded with one node down", succeeded)
	}
}

func TestReadRepair(t *testing.T) {
	tc := newTestCluster(t, 5, defaultCfg())
	ctx := context.Background()
	key := "repair-key"
	if err := tc.coords[0].Put(ctx, key, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	tc.waitReplicas(t, key, 3)
	// Manually stale one replica.
	owners, _ := tc.ring.Successors(key, 3)
	var victim *Coordinator
	for i, a := range tc.addrs {
		if a == owners[1] {
			victim = tc.coords[i]
		}
	}
	stale := Record{Key: key, Val: []byte("ancient"), Ver: 1, Origin: "old"}
	// Force-overwrite by deleting the row then applying the stale record.
	doc, _, _ := victim.store.C(RecordCollection).FindOne(docstore.Filter{{Key: "self-key", Value: key}})
	id, _ := doc.Get("_id")
	victim.store.C(RecordCollection).Delete(id) //nolint:errcheck
	if err := victim.ApplyLocal(stale); err != nil {
		t.Fatal(err)
	}
	// A read through any coordinator repairs it — asynchronously, off the
	// request path.
	val, err := tc.coords[0].Get(ctx, key)
	if err != nil || string(val) != "v1" {
		t.Fatalf("Get = %q, %v", val, err)
	}
	waitFor(t, "stale replica repaired and counted", func() bool {
		rec, _, _ := victim.GetLocal(key)
		return string(rec.Val) == "v1" && tc.coords[0].Stats().ReadRepairs > 0
	})
}

func TestReplicaSupplementationOnRead(t *testing.T) {
	tc := newTestCluster(t, 5, defaultCfg())
	ctx := context.Background()
	key := "supplement-key"
	tc.coords[0].Put(ctx, key, []byte("v")) //nolint:errcheck
	tc.waitReplicas(t, key, 3)
	// Physically remove the record from one replica (simulating data loss).
	owners, _ := tc.ring.Successors(key, 3)
	var victim *Coordinator
	for i, a := range tc.addrs {
		if a == owners[2] {
			victim = tc.coords[i]
		}
	}
	doc, _, _ := victim.store.C(RecordCollection).FindOne(docstore.Filter{{Key: "self-key", Value: key}})
	id, _ := doc.Get("_id")
	victim.store.C(RecordCollection).Delete(id) //nolint:errcheck
	if got := tc.replicaCount(key); got != 2 {
		t.Fatalf("setup: replicas = %d, want 2", got)
	}
	if _, err := tc.coords[1].Get(ctx, key); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "missing replica supplemented after read", func() bool {
		return tc.replicaCount(key) == 3
	})
}

func TestLocalOpFaultHook(t *testing.T) {
	tc := newTestCluster(t, 3, Config{N: 3, W: 3, R: 3})
	ctx := context.Background()
	boom := errors.New("disk io error")
	tc.coords[1].OnLocalOp = func(op string, bytes int) error { return boom }
	// W=3 cannot be met when one replica's disk fails every op and the
	// hint path also targets... actually hints can rescue; with 3 nodes
	// and all in the replica set, no hint target exists.
	err := tc.coords[0].Put(ctx, "k", []byte("v"))
	if !errors.Is(err, ErrQuorumWrite) {
		t.Fatalf("err = %v, want ErrQuorumWrite", err)
	}
}

func TestLiveGateSkipsDeadPeers(t *testing.T) {
	tc := newTestCluster(t, 5, defaultCfg())
	ctx := context.Background()
	dead := map[string]bool{tc.addrs[3]: true}
	for _, c := range tc.coords {
		c.Live = func(addr string) bool { return !dead[addr] }
	}
	for i := 0; i < 20; i++ {
		if err := tc.coords[0].Put(ctx, fmt.Sprintf("k%d", i), []byte("v")); err != nil {
			t.Fatalf("Put: %v", err)
		}
	}
	// node-3 must have received nothing: the gate filtered it out.
	if got := tc.stores[3].C(RecordCollection).Len(); got != 0 {
		t.Fatalf("dead-gated node received %d records", got)
	}
}

func TestPurgeTombstones(t *testing.T) {
	tc := newTestCluster(t, 3, Config{N: 3, W: 3, R: 1})
	ctx := context.Background()
	coord := tc.coords[0]
	// Live record, old tombstone, fresh tombstone.
	coord.Put(ctx, "alive", []byte("v"))    //nolint:errcheck
	coord.Put(ctx, "old-dead", []byte("v")) //nolint:errcheck
	coord.Delete(ctx, "old-dead")           //nolint:errcheck
	time.Sleep(5 * time.Millisecond)
	cutoff := time.Now()
	time.Sleep(5 * time.Millisecond)
	coord.Put(ctx, "fresh-dead", []byte("v")) //nolint:errcheck
	coord.Delete(ctx, "fresh-dead")           //nolint:errcheck

	purged, err := coord.PurgeTombstones(cutoff)
	if err != nil {
		t.Fatal(err)
	}
	if purged != 1 {
		t.Fatalf("purged = %d, want 1 (only the old tombstone)", purged)
	}
	if _, found, _ := coord.GetLocal("old-dead"); found {
		t.Fatal("old tombstone survived the purge")
	}
	if rec, found, _ := coord.GetLocal("fresh-dead"); !found || !rec.Deleted {
		t.Fatal("fresh tombstone must survive")
	}
	if _, found, _ := coord.GetLocal("alive"); !found {
		t.Fatal("live record purged")
	}
	// Idempotent.
	if again, _ := coord.PurgeTombstones(cutoff); again != 0 {
		t.Fatalf("second purge removed %d", again)
	}
}

func TestRecordDocRoundTrip(t *testing.T) {
	rec := Record{Key: "k", Val: []byte{1, 2, 3}, IsData: true, Deleted: false, Ver: 42, Origin: "node-1"}
	got, err := RecordFromDoc(rec.ToDoc())
	if err != nil {
		t.Fatal(err)
	}
	if got.Key != rec.Key || string(got.Val) != string(rec.Val) || got.IsData != rec.IsData ||
		got.Deleted != rec.Deleted || got.Ver != rec.Ver || got.Origin != rec.Origin {
		t.Fatalf("round trip: %+v != %+v", got, rec)
	}
	if _, err := RecordFromDoc(nil); err == nil {
		t.Error("nil doc accepted")
	}
	doc := rec.WithId(time.Now())
	if !doc.Has("_id") {
		t.Error("WithId missing _id")
	}
}

func TestNewerOrdering(t *testing.T) {
	a := Record{Ver: 1, Origin: "x"}
	b := Record{Ver: 2, Origin: "a"}
	if !b.Newer(a) || a.Newer(b) {
		t.Error("version ordering wrong")
	}
	c := Record{Ver: 1, Origin: "y"}
	if !c.Newer(a) || a.Newer(c) {
		t.Error("origin tiebreak wrong")
	}
}

func TestUnknownMessageType(t *testing.T) {
	tc := newTestCluster(t, 3, Config{N: 1, W: 1, R: 1})
	if _, err := tc.coords[0].HandleMessage(context.Background(), transport.Message{Type: "bogus"}); err == nil {
		t.Fatal("unknown message accepted")
	}
}

func TestStatsAccumulate(t *testing.T) {
	tc := newTestCluster(t, 5, defaultCfg())
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		tc.coords[0].Put(ctx, fmt.Sprintf("k%d", i), []byte("v")) //nolint:errcheck
		tc.coords[0].Get(ctx, fmt.Sprintf("k%d", i))              //nolint:errcheck
	}
	st := tc.coords[0].Stats()
	if st.Puts != 10 || st.Gets != 10 {
		t.Fatalf("Stats = %+v", st)
	}
}
