package nwr

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mystore/internal/bson"
	"mystore/internal/docstore"
	"mystore/internal/metrics"
	"mystore/internal/resilience"
	"mystore/internal/ring"
	"mystore/internal/trace"
	"mystore/internal/transport"
)

// Message types the coordinator registers on the node's transport mux.
const (
	MsgPutReplica      = "nwr.put.replica"
	MsgGetReplica      = "nwr.get.replica"
	MsgGetReplicaBatch = "nwr.get.replica.batch"
	MsgHintStore       = "nwr.hint.store"
	MsgPing            = "nwr.ping"
)

// Config is the paper's (N, W, R) plus operational knobs.
type Config struct {
	// N is the replication factor; W and R the write and read quorums.
	// The paper's evaluation runs (3, 2, 1).
	N, W, R int
	// Retries is how many additional attempts a failed replica write gets
	// before the coordinator hands the data off as a hint ("try to write
	// several times", §5.1). Zero means 2.
	Retries int
	// CallTimeout bounds each replica RPC. Zero means 2s.
	CallTimeout time.Duration
	// DisableHints turns hinted handoff off: a replica that stays
	// unreachable after retries simply fails. Used by the ablation bench
	// that measures what the short-failure path is worth.
	DisableHints bool
	// Breakers, when non-nil, gates every replica RPC per peer: a call to
	// a peer whose breaker is open fails in microseconds instead of
	// burning CallTimeout, so the successor walk prefers live peers. Call
	// outcomes feed the breakers back. Nil leaves resilience unwired.
	Breakers *resilience.BreakerSet
	// RetryBudget, when non-nil, bounds replica-write retry amplification
	// cluster-wide (token bucket). Nil always grants.
	RetryBudget *resilience.RetryBudget
	// RetryBackoff spaces replica-write retries with jittered exponential
	// delays. The zero value uses the package defaults.
	RetryBackoff resilience.Backoff
	// DegradedReads serves a below-quorum read from whatever replica did
	// answer — flagged Degraded, possibly stale — instead of failing with
	// ErrQuorumRead. Availability over freshness during partitions.
	DegradedReads bool
	// HedgeDelay overrides the adaptive delay before the N−R non-primary
	// replica reads launch. Zero means adaptive: the recent p95 of this
	// coordinator's read latency, floored at 1ms and capped at
	// CallTimeout/2.
	HedgeDelay time.Duration
	// DisableHedge keeps the non-primary replica reads parked until the
	// quorum settles or a primary fails — no hedge timer. Read-path
	// ablation: isolates what the early launch is worth.
	DisableHedge bool
	// DisableCoalesce turns the per-key singleflight read coalescer off, so
	// every concurrent reader of a hot key runs its own replica fan-out.
	DisableCoalesce bool
	// WaitForAllReads restores the seed read path: a read waits for every
	// replica to answer before resolving, instead of returning at R.
	WaitForAllReads bool
	// RepairWorkers and RepairQueue size the async read-repair pool. Zero
	// means 2 workers over a 256-job queue; jobs arriving on a full queue
	// are dropped and counted in Stats.ReadRepairDropped.
	RepairWorkers int
	RepairQueue   int
	// Now overrides the clock (deterministic tests). Nil means time.Now.
	Now func() time.Time
}

// Validate checks quorum sanity.
func (c Config) Validate() error {
	if c.N < 1 {
		return errors.New("nwr: N must be >= 1")
	}
	if c.W < 1 || c.W > c.N {
		return fmt.Errorf("nwr: W=%d out of range [1,%d]", c.W, c.N)
	}
	if c.R < 1 || c.R > c.N {
		return fmt.Errorf("nwr: R=%d out of range [1,%d]", c.R, c.N)
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.Retries == 0 {
		c.Retries = 2
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = 2 * time.Second
	}
	if c.RepairWorkers <= 0 {
		c.RepairWorkers = 2
	}
	if c.RepairQueue <= 0 {
		c.RepairQueue = 256
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Errors returned by coordinator operations.
var (
	ErrQuorumWrite = errors.New("nwr: write quorum not reached")
	ErrQuorumRead  = errors.New("nwr: read quorum not reached")
	ErrNotFound    = errors.New("nwr: key not found")
)

// Stats counts coordinator activity. Gets counts read generations (replica
// fan-outs); CoalescedReads counts callers served by joining one, so
// client-visible reads are Gets + CoalescedReads.
type Stats struct {
	Puts, PutFailures    int64
	Gets, GetFailures    int64
	HintsStored          int64
	HintsDelivered       int64
	ReadRepairs          int64
	ReplicaSupplements   int64
	RetriedReplicaWrites int64
	DegradedReads        int64
	// HedgedReads counts non-primary replica reads launched early by the
	// hedge timer or a primary's failure.
	HedgedReads int64
	// CoalescedReads counts reads served by an in-flight fan-out for the
	// same key instead of their own.
	CoalescedReads int64
	// BatchGets counts GetMany operations coordinated here.
	BatchGets int64
	// ReadRepairDropped counts repair jobs lost to a full repair queue.
	ReadRepairDropped int64
	// ReadQuorumViolations is a defensive tripwire: incremented if the
	// quorum-first path were ever about to answer OK with fewer than R
	// responses. The chaos harness asserts it stays zero.
	ReadQuorumViolations int64
}

// Coordinator runs the NWR protocol for one node. It is safe for concurrent
// use.
type Coordinator struct {
	cfg   Config
	self  string
	ring  *ring.Ring
	tr    transport.Transport
	store *docstore.Store

	// Live reports whether a peer is currently believed reachable; the
	// cluster layer wires this to gossip. Nil means "assume live".
	Live func(addr string) bool
	// StreamTo, when non-nil, ships a batch of records to target over the
	// cluster's streaming bulk-transfer path (size-bounded batches, token-
	// bucket throttle) and reports whether every record was acknowledged.
	// Hint writeback uses it to drain a page per RPC instead of one RPC per
	// parked record. Nil falls back to per-record replica writes.
	StreamTo func(ctx context.Context, target string, recs []Record) bool
	// SkipHint, when non-nil, reports records hint writeback must leave
	// parked for now. The cluster layer wires it to the consensus tier:
	// while a log-managed (_strong) record's range is led by a consensus
	// leader on another node, the replicated log is the only path allowed
	// to move it — racing an LWW writeback against it could resurrect a
	// superseded version. Skipped hints stay in the collection and retry
	// on a later pass.
	SkipHint func(rec Record) bool
	// OnLocalOp, when non-nil, runs before every local store operation
	// with the operation kind and the payload size involved. The
	// failure-injection framework uses it to model disk I/O errors and
	// blocking on this node; the benchmark harness charges simulated disk
	// time through it. A returned error fails the local operation.
	OnLocalOp func(op string, bytes int) error

	mu      sync.Mutex
	stats   Stats
	lastVer int64

	// Quorum-operation latency distributions behind /metrics.
	putLatency *metrics.BucketedHistogram
	getLatency *metrics.BucketedHistogram

	// Per-key singleflight coalescer: one replica fan-out per in-flight
	// generation per key, no matter how many callers pile on.
	flightMu sync.Mutex
	flights  map[string]*flight

	// Async read-repair pool. Workers start lazily on the first enqueue;
	// the quit channel (not a channel close) stops them so a late enqueue
	// after Close can never panic.
	repairQ        chan repairJob
	repairQuit     chan struct{}
	repairOnce     sync.Once
	closeOnce      sync.Once
	repairWG       sync.WaitGroup
	pendingRepairs atomic.Int64

	// Cached adaptive hedge delay: recomputing p95 snapshots per read would
	// put an allocation back on the hot path.
	hedgeCached atomic.Int64
	hedgeStamp  atomic.Int64

	// Per-target hint-redelivery backoff: a target that refused its last
	// writeback is not re-pinged every round.
	hintMu    sync.Mutex
	hintRetry map[string]hintRetryState
}

type hintRetryState struct {
	failures int
	nextTry  time.Time
}

// NewCoordinator wires a coordinator. The store gains a unique index on
// self-key in the records collection and is otherwise used as-is.
func NewCoordinator(cfg Config, self string, rg *ring.Ring, tr transport.Transport, store *docstore.Store) (*Coordinator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg: cfg, self: self, ring: rg, tr: tr, store: store,
		putLatency: metrics.NewBucketedHistogram(nil),
		getLatency: metrics.NewBucketedHistogram(nil),
		flights:    make(map[string]*flight),
		repairQ:    make(chan repairJob, cfg.RepairQueue),
		repairQuit: make(chan struct{}),
	}
	if err := store.C(RecordCollection).EnsureIndex("self-key", true); err != nil {
		return nil, err
	}
	if err := store.C(HintCollection).EnsureIndex("target", false); err != nil {
		return nil, err
	}
	return c, nil
}

// PutLatency exposes the quorum-write latency histogram for registry
// registration.
func (c *Coordinator) PutLatency() *metrics.BucketedHistogram { return c.putLatency }

// GetLatency exposes the quorum-read latency histogram for registry
// registration.
func (c *Coordinator) GetLatency() *metrics.BucketedHistogram { return c.getLatency }

// Stats returns a snapshot of activity counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

func (c *Coordinator) bump(f func(*Stats)) {
	c.mu.Lock()
	f(&c.stats)
	c.mu.Unlock()
}

// nextVer assigns a write version: the wall clock, forced strictly
// monotonic per coordinator. Distinct writes therefore never share a
// (Ver, Origin) pair — the uniqueness last-write-wins needs to be a total
// order even when the clock is coarse or steps backwards.
func (c *Coordinator) nextVer() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	v := c.cfg.Now().UnixNano()
	if v <= c.lastVer {
		v = c.lastVer + 1
	}
	c.lastVer = v
	return v
}

// Put writes val under key with the configured write quorum. The paper's
// DELETE maps to Put with deleted=true: "just update the flag and not
// physically remove the record from disk".
func (c *Coordinator) Put(ctx context.Context, key string, val []byte) error {
	return c.write(ctx, Record{Key: key, Val: val, IsData: true, Ver: c.nextVer(), Origin: c.self})
}

// Delete tombstones key with the write quorum.
func (c *Coordinator) Delete(ctx context.Context, key string) error {
	return c.write(ctx, Record{Key: key, IsData: true, Deleted: true, Ver: c.nextVer(), Origin: c.self})
}

// write replicates rec to the key's N replica nodes concurrently and
// returns as soon as W replicas acknowledge (the Dynamo-style quorum return
// that makes "W = 1 ... low writing latency" true, §5.2.2); the remaining
// replications continue in the background. A replica that stays unreachable
// after retries receives a hint on the next ring node, which counts toward
// the sloppy quorum ("if one node fails, the system writes to the next node
// on the ring, makes each writing success").
func (c *Coordinator) write(ctx context.Context, rec Record) (err error) {
	ctx, sp := trace.Start(ctx, "nwr.write")
	start := c.cfg.Now()
	defer func() {
		c.putLatency.ObserveDuration(c.cfg.Now().Sub(start))
		sp.End(err)
	}()
	targets, err := c.ring.Successors(rec.Key, c.cfg.N)
	if err != nil {
		return err
	}
	// The fan-out must outlive the caller: once W replicas ack, the write
	// is acked and the remaining replications (plus any hint handoff) are
	// the system's obligation, not the caller's — a caller cancelling its
	// context right after the ack must not strand them. Each RPC stays
	// bounded by CallTimeout; only the quorum wait below honours ctx.
	bctx := context.WithoutCancel(ctx)
	acksCh := make(chan bool, len(targets))
	for _, target := range targets {
		go func(target string) {
			acksCh <- c.writeReplicaWithRecovery(bctx, targets, target, rec)
		}(target)
	}
	acks := 0
	for done := 0; done < len(targets); done++ {
		select {
		case ok := <-acksCh:
			if ok {
				acks++
			}
		case <-ctx.Done():
			// The caller gave up waiting; the write is not acked to them
			// (replication may still complete in the background).
			c.bump(func(s *Stats) { s.PutFailures++ })
			return fmt.Errorf("%w: abandoned at %d/%d acks for key %q: %v",
				ErrQuorumWrite, acks, c.cfg.W, rec.Key, ctx.Err())
		}
		if acks >= c.cfg.W {
			// Quorum reached; the rest complete asynchronously.
			c.bump(func(s *Stats) { s.Puts++ })
			return nil
		}
	}
	c.bump(func(s *Stats) { s.PutFailures++ })
	return fmt.Errorf("%w: %d/%d acks for key %q", ErrQuorumWrite, acks, c.cfg.W, rec.Key)
}

// writeReplicaWithRecovery drives one replica write through its retry and
// hinted-handoff ladder, reporting whether the write was durably handled
// somewhere. Retries are spaced by jittered exponential backoff and gated
// on the retry budget; a peer whose breaker is open gets no retries at all
// — its calls would fast-fail anyway, so the write goes straight to the
// hint path on the next live ring node.
func (c *Coordinator) writeReplicaWithRecovery(ctx context.Context, targets []string, target string, rec Record) (ok bool) {
	ctx, sp := trace.Start(ctx, "nwr.replica")
	sp.SetPeer(target)
	defer func() {
		if ok {
			sp.End(nil)
		} else {
			sp.End(errors.New("replica write failed"))
		}
	}()
	if c.writeReplica(ctx, target, rec) {
		return true
	}
	for attempt := 0; attempt < c.cfg.Retries; attempt++ {
		if !c.peerWorthRetrying(target) || !c.cfg.RetryBudget.Spend() {
			break
		}
		if resilience.Sleep(ctx, c.cfg.RetryBackoff.Delay(attempt, nil)) != nil {
			break // caller gave up mid-backoff
		}
		c.bump(func(s *Stats) { s.RetriedReplicaWrites++ })
		if c.writeReplica(ctx, target, rec) {
			return true
		}
	}
	if c.cfg.DisableHints {
		return false
	}
	return c.storeHint(ctx, targets, target, rec)
}

// peerWorthRetrying reports whether another attempt at target could
// plausibly succeed: the local store always is; a remote peer is not when
// gossip believes it down or its breaker is open.
func (c *Coordinator) peerWorthRetrying(target string) bool {
	if target == c.self {
		return true
	}
	if c.Live != nil && !c.Live(target) {
		return false
	}
	if c.cfg.Breakers != nil && c.cfg.Breakers.For(target).State() == resilience.Open {
		return false
	}
	return true
}

// callPeer is the breaker-gated RPC every coordinator path goes through. An
// open breaker rejects in microseconds; outcomes feed the breaker — a
// transport-level failure counts against the peer, while a remote
// application error proves it alive.
func (c *Coordinator) callPeer(ctx context.Context, target, msgType string, body bson.D) (bson.D, error) {
	if !c.cfg.Breakers.Allow(target) {
		return nil, fmt.Errorf("%w: %s: circuit breaker open", transport.ErrUnreachable, target)
	}
	cctx, cancel := context.WithTimeout(ctx, c.cfg.CallTimeout)
	defer cancel()
	resp, err := c.tr.Call(cctx, target, transport.Message{Type: msgType, Body: body})
	c.cfg.Breakers.Report(target, err == nil || transport.IsRemote(err))
	if err == nil {
		c.cfg.RetryBudget.Earn()
	}
	return resp, err
}

// CallPeer exposes the breaker-gated RPC path to the cluster layer: the
// streaming bulk-transfer and Merkle anti-entropy RPCs ride the same
// breakers, timeout and retry-budget accounting as replica traffic, so an
// open breaker fast-fails repair work exactly like foreground work.
func (c *Coordinator) CallPeer(ctx context.Context, target, msgType string, body bson.D) (bson.D, error) {
	return c.callPeer(ctx, target, msgType, body)
}

// WriteReplicaTo applies rec on target (locally or over the wire),
// reporting success. The cluster rebalancer uses it to push replicas during
// migration and re-replication.
func (c *Coordinator) WriteReplicaTo(ctx context.Context, target string, rec Record) bool {
	return c.writeReplica(ctx, target, rec)
}

// ReadReplicaFrom fetches key's record from target (locally or remotely).
func (c *Coordinator) ReadReplicaFrom(ctx context.Context, target, key string) (Record, bool, error) {
	return c.readReplica(ctx, target, key)
}

// writeReplica applies rec on target (locally or over the wire).
func (c *Coordinator) writeReplica(ctx context.Context, target string, rec Record) bool {
	if target == c.self {
		return c.ApplyLocalCtx(ctx, rec) == nil
	}
	if c.Live != nil && !c.Live(target) {
		return false
	}
	_, err := c.callPeer(ctx, target, MsgPutReplica, rec.ToDoc())
	return err == nil
}

// storeHint parks rec on the first live node after the replica set,
// recording the intended target for later writeback (Fig 8: node C holds
// the replica and B's identifier).
func (c *Coordinator) storeHint(ctx context.Context, replicaSet []string, target string, rec Record) (ok bool) {
	ctx, sp := trace.Start(ctx, "nwr.hint")
	sp.SetPeer(target)
	defer func() {
		if ok {
			sp.End(nil)
		} else {
			sp.End(errors.New("no stand-in accepted the hint"))
		}
	}()
	exclude := make(map[string]bool, len(replicaSet)+1)
	for _, t := range replicaSet {
		exclude[t] = true
	}
	// Walk well beyond the replica set to find a stand-in.
	candidates, err := c.ring.Successors(rec.Key, c.cfg.N+len(exclude)+8)
	if err != nil {
		return false
	}
	body := bson.D{
		{Key: "target", Value: target},
		{Key: "record", Value: rec.ToDoc()},
	}
	for _, cand := range candidates {
		if exclude[cand] {
			continue
		}
		if cand == c.self {
			if err := c.storeHintLocal(ctx, target, rec); err == nil {
				c.bump(func(s *Stats) { s.HintsStored++ })
				return true
			}
			continue
		}
		if c.Live != nil && !c.Live(cand) {
			continue
		}
		// callPeer skips candidates with open breakers in microseconds, so
		// the walk settles on a live stand-in instead of burning a
		// CallTimeout per dead candidate.
		if _, err := c.callPeer(ctx, cand, MsgHintStore, body); err == nil {
			c.bump(func(s *Stats) { s.HintsStored++ })
			return true
		}
	}
	return false
}

// GetResult is a read answer with its provenance: Degraded marks a value
// served below the read quorum (possibly stale).
type GetResult struct {
	Val      []byte
	Degraded bool
}

// Get reads key with the read quorum: dispatch replica reads, return as soon
// as R replicas answer (quorum-first, resolved last-write-wins), and let the
// stragglers finish in the background feeding read repair / replica
// supplementation ("if replications are less than N ... some more
// replications are supplemented", §5.2.2). The full state machine lives in
// readpath.go.
func (c *Coordinator) Get(ctx context.Context, key string) ([]byte, error) {
	res, err := c.GetEx(ctx, key)
	return res.Val, err
}

// readReplica fetches key's record from target.
func (c *Coordinator) readReplica(ctx context.Context, target, key string) (Record, bool, error) {
	if target == c.self {
		return c.GetLocal(key)
	}
	if c.Live != nil && !c.Live(target) {
		return Record{}, false, fmt.Errorf("nwr: %s believed down", target)
	}
	resp, err := c.callPeer(ctx, target, MsgGetReplica,
		bson.D{{Key: "self-key", Value: key}})
	if err != nil {
		return Record{}, false, err
	}
	if found, ok := resp.Get("found"); !ok || found != true {
		return Record{}, false, nil
	}
	recDoc, ok := resp.Get("record")
	d, isDoc := recDoc.(bson.D)
	if !ok || !isDoc {
		return Record{}, false, errors.New("nwr: malformed replica response")
	}
	rec, err := RecordFromDoc(d)
	if err != nil {
		return Record{}, false, err
	}
	return rec, true, nil
}

// ApplyLocal merges rec into this node's store under last-write-wins.
func (c *Coordinator) ApplyLocal(rec Record) error {
	return c.ApplyLocalCtx(context.Background(), rec)
}

// ApplyLocalCtx is ApplyLocal carrying the caller's context so the store
// mutation (and its WAL commit wait) appears in the request's trace.
func (c *Coordinator) ApplyLocalCtx(ctx context.Context, rec Record) (err error) {
	ctx, sp := trace.Start(ctx, "docstore.apply")
	defer func() { sp.End(err) }()
	if c.OnLocalOp != nil {
		if err := c.OnLocalOp("put", len(rec.Val)); err != nil {
			return err
		}
	}
	coll := c.store.C(RecordCollection)
	existing, found, err := coll.FindOne(docstore.Filter{{Key: "self-key", Value: rec.Key}})
	if err != nil {
		return err
	}
	if !found {
		_, err := coll.InsertCtx(ctx, rec.WithId(c.cfg.Now()))
		if errors.Is(err, docstore.ErrDuplicate) {
			// Raced with another writer for first materialization; retry as
			// an update through the now-existing row.
			return c.ApplyLocalCtx(ctx, rec)
		}
		return err
	}
	old, err := RecordFromDoc(existing)
	if err != nil {
		return err
	}
	if !rec.Newer(old) {
		return nil // stale write; last write wins
	}
	id, _ := existing.Get("_id")
	doc := append(bson.D{{Key: "_id", Value: id}}, rec.ToDoc()...)
	return coll.UpdateCtx(ctx, doc)
}

// GetLocal reads key's record from this node's store.
func (c *Coordinator) GetLocal(key string) (Record, bool, error) {
	if c.OnLocalOp != nil {
		if err := c.OnLocalOp("get", 0); err != nil {
			return Record{}, false, err
		}
	}
	doc, found, err := c.store.C(RecordCollection).FindOne(docstore.Filter{{Key: "self-key", Value: key}})
	if err != nil || !found {
		return Record{}, false, err
	}
	rec, err := RecordFromDoc(doc)
	if err != nil {
		return Record{}, false, err
	}
	// Charge the read transfer now that the size is known.
	if c.OnLocalOp != nil {
		if err := c.OnLocalOp("read-transfer", len(rec.Val)); err != nil {
			return Record{}, false, err
		}
	}
	return rec, true, nil
}

// storeHintLocal parks a hint on this node.
func (c *Coordinator) storeHintLocal(ctx context.Context, target string, rec Record) error {
	if c.OnLocalOp != nil {
		if err := c.OnLocalOp("hint", len(rec.Val)); err != nil {
			return err
		}
	}
	_, err := c.store.C(HintCollection).InsertCtx(ctx, bson.D{
		{Key: "target", Value: target},
		{Key: "record", Value: rec.ToDoc()},
	})
	return err
}

// PurgeTombstones physically removes tombstoned records whose deletion is
// older than cutoff, returning how many were purged. The paper's DELETE
// only flips isDel ("not physically remove the record from disk"), so
// tombstones accumulate; purging ones old enough that every replica has
// long since seen them (hint writeback, read repair and anti-entropy all
// propagate tombstones) reclaims the space. Choose a cutoff comfortably
// larger than the longest plausible partition.
func (c *Coordinator) PurgeTombstones(cutoff time.Time) (int, error) {
	coll := c.store.C(RecordCollection)
	docs, err := coll.Find(docstore.Filter{
		{Key: "isDel", Value: "1"},
		{Key: "_ver", Value: bson.D{{Key: "$lt", Value: cutoff.UnixNano()}}},
	}, docstore.FindOptions{})
	if err != nil {
		return 0, err
	}
	purged := 0
	for _, doc := range docs {
		id, ok := doc.Get("_id")
		if !ok {
			continue
		}
		removed, err := coll.Delete(id)
		if err != nil {
			return purged, err
		}
		if removed {
			purged++
		}
	}
	return purged, nil
}

// HintCount returns the number of hints currently parked on this node.
func (c *Coordinator) HintCount() int {
	return c.store.C(HintCollection).Len()
}

// hintPageSize bounds how many hints one writeback pass materializes at a
// time: the scan pages through the target index instead of loading the
// whole hint collection, so a long outage's backlog has bounded memory.
const hintPageSize = 128

// Redelivery backoff bounds for targets that refused their last writeback.
// The cap stays modest: probing a dead target is near-free once its breaker
// is open, and gossip's Up transition clears the backoff only when THIS
// node believed the target down — failures caused by a partition elsewhere
// must age out on their own for writeback to resume promptly after heal.
const (
	hintRetryBase = 500 * time.Millisecond
	hintRetryMax  = 5 * time.Second
)

// DeliverHints pings each hinted target and, where it answers, writes the
// parked records back and drops the hints (Fig 8's writeback). Targets that
// refuse back off exponentially so a long-dead node is not re-pinged every
// round. Call it periodically and when gossip reports a node returning
// (NoteTargetUp clears the backoff for an immediate attempt).
func (c *Coordinator) DeliverHints(ctx context.Context) {
	targets, err := c.store.C(HintCollection).Distinct("target", docstore.Filter{})
	if err != nil {
		return
	}
	for _, tv := range targets {
		target, ok := tv.(string)
		if !ok || target == "" {
			continue
		}
		if !c.hintTargetDue(target) {
			continue
		}
		if !c.pingTarget(ctx, target) {
			c.hintTargetFailed(target)
			continue
		}
		c.NoteTargetUp(target)
		c.deliverHintsTo(ctx, target)
	}
}

// deliverHintsTo drains target's hint queue in pages via the target index.
// Delivered hints leave the collection, so each pass re-reads the first
// page; the loop stops when the queue is empty or a writeback fails.
func (c *Coordinator) deliverHintsTo(ctx context.Context, target string) {
	coll := c.store.C(HintCollection)
	filter := docstore.Filter{{Key: "target", Value: target}}
	for {
		page, err := coll.Find(filter, docstore.FindOptions{Limit: hintPageSize})
		if err != nil || len(page) == 0 {
			return
		}
		skipped := 0
		type hint struct {
			id  any
			rec Record
		}
		hints := make([]hint, 0, len(page))
		for _, h := range page {
			id, hasID := h.Get("_id")
			recDoc, ok := h.Get("record")
			d, isDoc := recDoc.(bson.D)
			if !ok || !isDoc {
				// A malformed hint can never deliver; drop it rather than
				// let it wedge the queue (and the paging loop) forever.
				if hasID {
					coll.Delete(id) //nolint:errcheck
				}
				continue
			}
			rec, err := RecordFromDoc(d)
			if err != nil {
				if hasID {
					coll.Delete(id) //nolint:errcheck
				}
				continue
			}
			if c.SkipHint != nil && c.SkipHint(rec) {
				skipped++ // stays parked; a later pass retries
				continue
			}
			hints = append(hints, hint{id: id, rec: rec})
		}
		if c.StreamTo != nil && len(hints) > 0 {
			// Bulk writeback: the whole page rides one (or few) streamed
			// batches. Delivery is acked per page; a failed page leaves its
			// hints parked — redelivery is idempotent under last-write-wins.
			recs := make([]Record, len(hints))
			for i, h := range hints {
				recs[i] = h.rec
			}
			if !c.StreamTo(ctx, target, recs) {
				c.hintTargetFailed(target)
				return
			}
			for _, h := range hints {
				if _, err := coll.Delete(h.id); err == nil {
					c.bump(func(s *Stats) { s.HintsDelivered++ })
				}
			}
		} else {
			for _, h := range hints {
				if !c.writeReplica(ctx, target, h.rec) {
					c.hintTargetFailed(target)
					return
				}
				if _, err := coll.Delete(h.id); err == nil {
					c.bump(func(s *Stats) { s.HintsDelivered++ })
				}
			}
		}
		if len(page) < hintPageSize {
			return
		}
		if len(hints) == 0 && skipped > 0 {
			// A full page of consensus-guarded hints would re-read the same
			// page forever; stop and let a later pass retry after failover.
			return
		}
	}
}

// hintTargetDue reports whether target's redelivery backoff has elapsed.
func (c *Coordinator) hintTargetDue(target string) bool {
	c.hintMu.Lock()
	defer c.hintMu.Unlock()
	st, ok := c.hintRetry[target]
	return !ok || !c.cfg.Now().Before(st.nextTry)
}

// hintTargetFailed doubles target's redelivery backoff (capped).
func (c *Coordinator) hintTargetFailed(target string) {
	c.hintMu.Lock()
	defer c.hintMu.Unlock()
	if c.hintRetry == nil {
		c.hintRetry = make(map[string]hintRetryState)
	}
	st := c.hintRetry[target]
	if st.failures < 30 {
		st.failures++
	}
	d := hintRetryBase << uint(st.failures-1)
	if d <= 0 || d > hintRetryMax {
		d = hintRetryMax
	}
	st.nextTry = c.cfg.Now().Add(d)
	c.hintRetry[target] = st
}

// NoteTargetUp clears target's redelivery backoff; the cluster layer calls
// it when gossip reports the node back so writeback starts immediately.
func (c *Coordinator) NoteTargetUp(target string) {
	c.hintMu.Lock()
	delete(c.hintRetry, target)
	c.hintMu.Unlock()
}

func (c *Coordinator) pingTarget(ctx context.Context, target string) bool {
	if target == c.self {
		return true
	}
	if c.Live != nil && !c.Live(target) {
		return false
	}
	_, err := c.callPeer(ctx, target, MsgPing, nil)
	return err == nil
}

// HandleMessage serves the replica-side protocol; the cluster mux routes
// nwr.* messages here.
func (c *Coordinator) HandleMessage(ctx context.Context, msg transport.Message) (bson.D, error) {
	switch msg.Type {
	case MsgPutReplica:
		rec, err := RecordFromDoc(msg.Body)
		if err != nil {
			return nil, err
		}
		if err := c.ApplyLocalCtx(ctx, rec); err != nil {
			return nil, err
		}
		return bson.D{{Key: "ok", Value: true}}, nil
	case MsgGetReplica:
		key := msg.Body.StringOr("self-key", "")
		rec, found, err := c.GetLocal(key)
		if err != nil {
			return nil, err
		}
		if !found {
			return bson.D{{Key: "found", Value: false}}, nil
		}
		return bson.D{{Key: "found", Value: true}, {Key: "record", Value: rec.ToDoc()}}, nil
	case MsgGetReplicaBatch:
		return c.handleGetReplicaBatch(msg.Body)
	case MsgHintStore:
		target := msg.Body.StringOr("target", "")
		recDoc, ok := msg.Body.Get("record")
		d, isDoc := recDoc.(bson.D)
		if !ok || !isDoc || target == "" {
			return nil, errors.New("nwr: malformed hint")
		}
		rec, err := RecordFromDoc(d)
		if err != nil {
			return nil, err
		}
		if err := c.storeHintLocal(ctx, target, rec); err != nil {
			return nil, err
		}
		return bson.D{{Key: "ok", Value: true}}, nil
	case MsgPing:
		return bson.D{{Key: "ok", Value: true}}, nil
	default:
		return nil, fmt.Errorf("nwr: unknown message type %q", msg.Type)
	}
}
