package trace_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mystore"
	"mystore/internal/trace"
)

// tracedSpan mirrors the /debug/traces span JSON.
type tracedSpan struct {
	Span   uint64        `json:"span"`
	Parent uint64        `json:"parent"`
	Name   string        `json:"name"`
	Peer   string        `json:"peer"`
	DurNs  time.Duration `json:"durNs"`
	Err    string        `json:"err"`
}

// tracedTrace mirrors the /debug/traces trace JSON.
type tracedTrace struct {
	ID    string        `json:"id"`
	Root  string        `json:"root"`
	DurNs time.Duration `json:"durNs"`
	Slow  bool          `json:"slow"`
	Spans []tracedSpan  `json:"spans"`
}

func fetchTraces(t *testing.T, url string) []tracedTrace {
	t.Helper()
	resp, err := http.Get(url + "/debug/traces?n=10")
	if err != nil {
		t.Fatalf("GET /debug/traces: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/traces: status %d", resp.StatusCode)
	}
	var out []tracedTrace
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode traces: %v", err)
	}
	return out
}

func findTrace(traces []tracedTrace, root string) (tracedTrace, bool) {
	for _, tr := range traces {
		if tr.Root == root {
			return tr, true
		}
	}
	return tracedTrace{}, false
}

// TestTracePropagationAcrossCluster drives one Put and one Get through the
// full stack — HTTP gateway, worker pool, cluster client, simulated
// transport, NWR coordinator, document store, WAL — on a five-node durable
// cluster and asserts the request produced a single trace whose spans cover
// every layer, form a rooted tree (no orphans), and whose root duration
// matches the externally measured end-to-end latency.
func TestTracePropagationAcrossCluster(t *testing.T) {
	cl, err := mystore.StartCluster(mystore.ClusterOptions{
		Nodes: 5, N: 3, W: 3, R: 1, // W = N: every replica span completes before the root finalizes
		DataDir: t.TempDir(),
		Durable: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	client, err := cl.Client()
	if err != nil {
		t.Fatal(err)
	}

	collector := trace.NewCollector(trace.Config{})
	gw := mystore.NewGateway(mystore.ClusterBackend{Client: client}, mystore.GatewayOptions{
		Trace: collector,
	})
	defer gw.Close()
	srv := httptest.NewServer(gw.Handler())
	defer srv.Close()

	start := time.Now()
	resp, err := http.Post(srv.URL+"/data/Resistor5", "application/octet-stream",
		strings.NewReader("<component id=\"Resistor5\"/>"))
	e2e := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST status = %d", resp.StatusCode)
	}

	if getResp, err := http.Get(srv.URL + "/data/Resistor5"); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, getResp.Body) //nolint:errcheck
		getResp.Body.Close()
		if getResp.StatusCode != http.StatusOK {
			t.Fatalf("GET status = %d", getResp.StatusCode)
		}
	}

	traces := fetchTraces(t, srv.URL)

	put, ok := findTrace(traces, "rest.post")
	if !ok {
		t.Fatalf("no rest.post trace among %d traces", len(traces))
	}
	if put.ID == "" || put.ID == fmt.Sprintf("%016x", 0) {
		t.Fatalf("put trace has no id: %+v", put)
	}

	// Every layer of the write path must appear.
	counts := map[string]int{}
	for _, sp := range put.Spans {
		counts[sp.Name]++
	}
	for _, layer := range []string{
		"rest.post", "dispatch.queue", "cluster.call", "transport.call",
		"nwr.write", "nwr.replica", "docstore.apply", "wal.commit",
	} {
		if counts[layer] == 0 {
			t.Errorf("put trace missing %q span; spans = %v", layer, counts)
		}
	}
	if counts["nwr.replica"] != 3 {
		t.Errorf("nwr.replica spans = %d, want 3 (N=W=3)", counts["nwr.replica"])
	}

	// The tree must be rooted: exactly one parentless span, every other
	// parent resolvable within the trace (no orphans).
	ids := map[uint64]bool{}
	for _, sp := range put.Spans {
		if sp.Span == 0 {
			t.Errorf("span %q has zero id", sp.Name)
		}
		ids[sp.Span] = true
	}
	roots := 0
	for _, sp := range put.Spans {
		if sp.Parent == 0 {
			roots++
			if sp.Name != "rest.post" {
				t.Errorf("parentless span %q, want only rest.post at the root", sp.Name)
			}
			continue
		}
		if !ids[sp.Parent] {
			t.Errorf("orphan span %q: parent %d not in trace", sp.Name, sp.Parent)
		}
	}
	if roots != 1 {
		t.Errorf("root spans = %d, want 1", roots)
	}

	// The root span is the gateway's measurement of the same interval we
	// timed around the HTTP call; the two must agree within 10% (plus a small
	// absolute allowance for HTTP client overhead on fast machines). Children
	// must nest within the root.
	root := put.Spans[0]
	for _, sp := range put.Spans {
		if sp.Name == "rest.post" {
			root = sp
		}
	}
	if root.DurNs > e2e {
		t.Errorf("root span %v exceeds measured end-to-end %v", root.DurNs, e2e)
	}
	if diff := e2e - root.DurNs; diff > e2e/10+5*time.Millisecond {
		t.Errorf("root span %v vs end-to-end %v: diff %v exceeds 10%%+5ms", root.DurNs, e2e, diff)
	}
	for _, sp := range put.Spans {
		if sp.DurNs > put.DurNs {
			t.Errorf("span %q (%v) outlasts its trace (%v)", sp.Name, sp.DurNs, put.DurNs)
		}
	}

	// The read path traces too.
	get, ok := findTrace(traces, "rest.get")
	if !ok {
		t.Fatalf("no rest.get trace among %d traces", len(traces))
	}
	gcounts := map[string]int{}
	for _, sp := range get.Spans {
		gcounts[sp.Name]++
	}
	for _, layer := range []string{"rest.get", "dispatch.queue", "cluster.call", "nwr.read", "nwr.replica.read"} {
		if gcounts[layer] == 0 {
			t.Errorf("get trace missing %q span; spans = %v", layer, gcounts)
		}
	}
}

// TestSlowOpLogEndToEnd checks a request crossing the threshold lands in the
// slow-op log with its layer breakdown.
func TestSlowOpLogEndToEnd(t *testing.T) {
	cl, err := mystore.StartCluster(mystore.ClusterOptions{Nodes: 3, N: 3, W: 3, R: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	client, err := cl.Client()
	if err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var lines []string
	collector := trace.NewCollector(trace.Config{
		SlowThreshold: time.Nanosecond, // everything is slow
		Logf: func(format string, args ...any) {
			mu.Lock()
			lines = append(lines, fmt.Sprintf(format, args...))
			mu.Unlock()
		},
	})
	gw := mystore.NewGateway(mystore.ClusterBackend{Client: client}, mystore.GatewayOptions{Trace: collector})
	defer gw.Close()
	srv := httptest.NewServer(gw.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/data/k", "application/octet-stream", strings.NewReader("v"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()

	mu.Lock()
	defer mu.Unlock()
	if len(lines) == 0 {
		t.Fatal("no slow-op lines emitted")
	}
	line := lines[0]
	for _, want := range []string{"slow-op", "op=rest.post", "nwr.write"} {
		if !strings.Contains(line, want) {
			t.Errorf("slow-op line %q missing %q", line, want)
		}
	}
}
