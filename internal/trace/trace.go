// Package trace implements MyStore's request tracing: a 64-bit trace id
// rides every RPC frame alongside the propagated deadline, each layer the
// request crosses (rest → dispatch → cluster client → transport → nwr
// coordinator → docstore → wal) opens a span recording start, duration and
// outcome, and completed traces land in a bounded ring buffer the gateway
// serves at /debug/traces. Traces whose end-to-end duration exceeds a
// configurable threshold are additionally emitted to the slow-op log, which
// is the tool for answering the question the paper's evaluation revolves
// around: where did a slow Put spend its time — gateway queue, cache,
// coordinator fan-out, RPC, or WAL fsync?
//
// Propagation is context-based. The gateway installs a Collector into each
// request context; Start reads it back and opens spans parented to the
// enclosing span. The in-memory transport passes the caller's context to the
// remote handler directly, so an in-process cluster yields one tree covering
// every node a request touched. The TCP transport carries the (trace id,
// parent span id) pair on the wire as the "tr"/"sp" frame fields and the
// server re-joins them to its own node-local collector, so cross-process
// spans correlate by id.
//
// When no collector is installed, Start returns a nil span whose methods are
// no-ops: tracing costs an idle hot path one context lookup.
package trace

import (
	"log"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ID is a 64-bit trace identifier. The zero ID means "no trace".
type ID uint64

type ctxKey struct{}

// ctxInfo is the tracing state carried by a context: the collector spans
// report to, the current trace id, and the enclosing span id (0 at the
// root).
type ctxInfo struct {
	c     *Collector
	trace ID
	span  uint64
}

// SpanRecord is one completed span.
type SpanRecord struct {
	TraceID  ID            `json:"-"`
	SpanID   uint64        `json:"span"`
	Parent   uint64        `json:"parent,omitempty"`
	Name     string        `json:"name"`
	Peer     string        `json:"peer,omitempty"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"durNs"`
	Err      string        `json:"err,omitempty"`
}

// Trace is one finished request: the root span's identity plus every span
// that completed before the root did.
type Trace struct {
	ID       ID            `json:"-"`
	Root     string        `json:"root"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"durNs"`
	Slow     bool          `json:"slow,omitempty"`
	Spans    []SpanRecord  `json:"spans"`
}

// Span is an in-flight span. A nil *Span is valid and inert, which is what
// Start returns when the context carries no collector.
type Span struct {
	c      *Collector
	trace  ID
	id     uint64
	parent uint64
	name   string
	peer   string
	root   bool
	start  time.Time
}

// Config tunes a Collector.
type Config struct {
	// Capacity bounds the completed-trace ring buffer. Zero means 256.
	Capacity int
	// MaxSpans bounds the spans retained per trace; spans beyond it are
	// counted as dropped instead of growing memory. Zero means 512.
	MaxSpans int
	// MaxActive bounds concurrently open traces; beyond it new root spans
	// are not tracked (their sub-spans become no-ops). Zero means 4096.
	MaxActive int
	// SlowThreshold sends any trace at least this long to the slow-op log.
	// Zero disables the log.
	SlowThreshold time.Duration
	// Logf receives slow-op lines. Nil means the stdlib default logger.
	Logf func(format string, args ...any)
	// Now overrides the clock (deterministic tests). Nil means time.Now.
	Now func() time.Time
}

func (c Config) withDefaults() Config {
	if c.Capacity <= 0 {
		c.Capacity = 256
	}
	if c.MaxSpans <= 0 {
		c.MaxSpans = 512
	}
	if c.MaxActive <= 0 {
		c.MaxActive = 4096
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// Stats counts collector activity.
type Stats struct {
	// Finished counts completed traces (root span ended).
	Finished int64
	// Slow counts finished traces that crossed SlowThreshold.
	Slow int64
	// DroppedSpans counts spans lost to the MaxSpans cap or to ending after
	// their trace finalized (a quorum write's background replications).
	DroppedSpans int64
	// DroppedTraces counts root spans not tracked because MaxActive open
	// traces already existed.
	DroppedTraces int64
}

type activeTrace struct {
	root  uint64
	start time.Time
	spans []SpanRecord
}

// Collector assembles spans into traces and retains the most recent
// Capacity completed traces in a ring buffer. It is safe for concurrent use.
type Collector struct {
	cfg Config

	nextSpan atomic.Uint64
	nextTr   atomic.Uint64
	seed     uint64

	mu     sync.Mutex
	active map[ID]*activeTrace
	ring   []Trace
	next   int // ring write position
	filled bool

	// strays retains spans whose trace this collector does not own — spans
	// Join-ed from a remote root (TCP deployments, where each node has its
	// own collector) or background replications ending after their quorum
	// root finalized. Fixed-size ring, strayNext is the write position.
	strays    []SpanRecord
	strayNext int
	strayFull bool

	finished      atomic.Int64
	slow          atomic.Int64
	droppedSpans  atomic.Int64
	droppedTraces atomic.Int64
}

// NewCollector returns an empty collector.
func NewCollector(cfg Config) *Collector {
	cfg = cfg.withDefaults()
	return &Collector{
		cfg:    cfg,
		seed:   uint64(cfg.Now().UnixNano()),
		active: make(map[ID]*activeTrace),
		ring:   make([]Trace, cfg.Capacity),
		strays: make([]SpanRecord, cfg.Capacity),
	}
}

// newTraceID derives a fresh id: the creation-time seed mixed with a
// process-unique sequence through a 64-bit finalizer, so concurrent
// collectors in one test binary do not collide.
func (c *Collector) newTraceID() ID {
	x := c.seed + c.nextTr.Add(1)*0x9E3779B97F4A7C15
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	if x == 0 {
		x = 1
	}
	return ID(x)
}

// Stats returns a snapshot of the collector's counters.
func (c *Collector) Stats() Stats {
	return Stats{
		Finished:      c.finished.Load(),
		Slow:          c.slow.Load(),
		DroppedSpans:  c.droppedSpans.Load(),
		DroppedTraces: c.droppedTraces.Load(),
	}
}

// Traces returns up to n completed traces, most recent first (n <= 0 means
// all retained).
func (c *Collector) Traces(n int) []Trace {
	c.mu.Lock()
	defer c.mu.Unlock()
	size := c.next
	if c.filled {
		size = len(c.ring)
	}
	if n <= 0 || n > size {
		n = size
	}
	out := make([]Trace, 0, n)
	for i := 0; i < n; i++ {
		idx := (c.next - 1 - i + len(c.ring)) % len(c.ring)
		out = append(out, c.ring[idx])
	}
	return out
}

// Strays returns the retained spans not attached to a locally owned trace,
// most recent first.
func (c *Collector) Strays() []SpanRecord {
	c.mu.Lock()
	defer c.mu.Unlock()
	size := c.strayNext
	if c.strayFull {
		size = len(c.strays)
	}
	out := make([]SpanRecord, 0, size)
	for i := 0; i < size; i++ {
		idx := (c.strayNext - 1 - i + len(c.strays)) % len(c.strays)
		out = append(out, c.strays[idx])
	}
	return out
}

// TraceByID returns a retained trace by id.
func (c *Collector) TraceByID(id ID) (Trace, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	size := c.next
	if c.filled {
		size = len(c.ring)
	}
	for i := 0; i < size; i++ {
		idx := (c.next - 1 - i + len(c.ring)) % len(c.ring)
		if c.ring[idx].ID == id {
			return c.ring[idx], true
		}
	}
	return Trace{}, false
}

// record files one completed span under its trace; the root span finalizes
// the trace into the ring.
func (c *Collector) record(sp *Span, end time.Time, errMsg string) {
	rec := SpanRecord{
		TraceID:  sp.trace,
		SpanID:   sp.id,
		Parent:   sp.parent,
		Name:     sp.name,
		Peer:     sp.peer,
		Start:    sp.start,
		Duration: end.Sub(sp.start),
		Err:      errMsg,
	}
	c.mu.Lock()
	at, ok := c.active[sp.trace]
	if !ok {
		// Not a trace this collector owns: a Join-ed remote span, or a
		// background replication that outlived its root. Keep it findable.
		c.strays[c.strayNext] = rec
		c.strayNext++
		if c.strayNext == len(c.strays) {
			c.strayNext = 0
			c.strayFull = true
		}
		c.mu.Unlock()
		c.droppedSpans.Add(1)
		return
	}
	if len(at.spans) < c.cfg.MaxSpans {
		at.spans = append(at.spans, rec)
	} else if !sp.root {
		c.mu.Unlock()
		c.droppedSpans.Add(1)
		return
	} else {
		// Over the cap, but the root must still finalize the trace; swap it
		// in for the last retained span so the tree keeps its anchor.
		at.spans[len(at.spans)-1] = rec
		c.droppedSpans.Add(1)
	}
	if !sp.root {
		c.mu.Unlock()
		return
	}
	delete(c.active, sp.trace)
	tr := Trace{
		ID:       sp.trace,
		Root:     sp.name,
		Start:    at.start,
		Duration: rec.Duration,
		Spans:    at.spans,
	}
	slow := c.cfg.SlowThreshold > 0 && tr.Duration >= c.cfg.SlowThreshold
	tr.Slow = slow
	c.ring[c.next] = tr
	c.next++
	if c.next == len(c.ring) {
		c.next = 0
		c.filled = true
	}
	c.mu.Unlock()
	c.finished.Add(1)
	if slow {
		c.slow.Add(1)
		c.cfg.Logf("slow-op trace=%016x op=%s dur=%s %s",
			uint64(tr.ID), tr.Root, tr.Duration.Round(time.Microsecond), summarize(tr.Spans))
	}
}

// summarize renders the longest spans of a trace as "name(peer)=dur" pairs
// for the slow-op log, longest first, capped at eight.
func summarize(spans []SpanRecord) string {
	sorted := make([]SpanRecord, len(spans))
	copy(sorted, spans)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Duration > sorted[j].Duration })
	if len(sorted) > 8 {
		sorted = sorted[:8]
	}
	out := make([]byte, 0, 128)
	out = append(out, "spans=["...)
	for i, s := range sorted {
		if i > 0 {
			out = append(out, ' ')
		}
		out = append(out, s.Name...)
		if s.Peer != "" {
			out = append(out, '(')
			out = append(out, s.Peer...)
			out = append(out, ')')
		}
		out = append(out, '=')
		out = append(out, s.Duration.Round(time.Microsecond).String()...)
	}
	out = append(out, ']')
	return string(out)
}

// open registers a new span. A zero trace id starts a new trace with this
// span as root.
func (c *Collector) open(trace ID, parent uint64, name string) *Span {
	now := c.cfg.Now()
	sp := &Span{c: c, parent: parent, name: name, start: now}
	if trace == 0 {
		sp.trace = c.newTraceID()
		sp.root = true
		sp.id = c.nextSpan.Add(1)
		c.mu.Lock()
		if len(c.active) >= c.cfg.MaxActive {
			c.mu.Unlock()
			c.droppedTraces.Add(1)
			return nil
		}
		c.active[sp.trace] = &activeTrace{root: sp.id, start: now}
		c.mu.Unlock()
		return sp
	}
	sp.trace = trace
	sp.id = c.nextSpan.Add(1)
	return sp
}

// End completes the span with the call's outcome. Safe on a nil span.
func (s *Span) End(err error) {
	if s == nil {
		return
	}
	msg := ""
	if err != nil {
		msg = err.Error()
	}
	s.c.record(s, s.c.cfg.Now(), msg)
}

// SetPeer annotates the span with the remote address it talked to. Safe on a
// nil span.
func (s *Span) SetPeer(peer string) {
	if s != nil {
		s.peer = peer
	}
}

// TraceID returns the span's trace id (0 on a nil span).
func (s *Span) TraceID() ID {
	if s == nil {
		return 0
	}
	return s.trace
}
