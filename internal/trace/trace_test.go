package trace

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock hands out strictly increasing instants so span durations are
// deterministic.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(time.Millisecond)
	return f.now
}

func TestSpanTreeAssembly(t *testing.T) {
	c := NewCollector(Config{Now: newFakeClock().Now})
	ctx := WithCollector(context.Background(), c)

	rctx, root := Start(ctx, "rest.put")
	cctx, child := Start(rctx, "nwr.write")
	_, leaf := Start(cctx, "wal.commit")
	leaf.End(nil)
	child.End(nil)
	root.End(nil)

	traces := c.Traces(0)
	if len(traces) != 1 {
		t.Fatalf("want 1 trace, got %d", len(traces))
	}
	tr := traces[0]
	if tr.Root != "rest.put" {
		t.Fatalf("root = %q", tr.Root)
	}
	if len(tr.Spans) != 3 {
		t.Fatalf("want 3 spans, got %d", len(tr.Spans))
	}
	byName := map[string]SpanRecord{}
	for _, s := range tr.Spans {
		if s.TraceID != tr.ID {
			t.Fatalf("span %s trace id %x != trace %x", s.Name, s.TraceID, tr.ID)
		}
		byName[s.Name] = s
	}
	if byName["rest.put"].Parent != 0 {
		t.Fatalf("root parent = %d", byName["rest.put"].Parent)
	}
	if byName["nwr.write"].Parent != byName["rest.put"].SpanID {
		t.Fatal("nwr.write not parented to rest.put")
	}
	if byName["wal.commit"].Parent != byName["nwr.write"].SpanID {
		t.Fatal("wal.commit not parented to nwr.write")
	}
	if got, ok := c.TraceByID(tr.ID); !ok || got.Root != "rest.put" {
		t.Fatalf("TraceByID(%x) = %v, %v", tr.ID, got.Root, ok)
	}
}

func TestNilSpanAndNoCollector(t *testing.T) {
	ctx, sp := Start(context.Background(), "anything")
	if sp != nil {
		t.Fatal("expected nil span without a collector")
	}
	// All methods are no-ops on nil.
	sp.SetPeer("x")
	sp.End(errors.New("ignored"))
	if id := sp.TraceID(); id != 0 {
		t.Fatalf("nil span trace id = %x", id)
	}
	if _, _, ok := Wire(ctx); ok {
		t.Fatal("Wire reported a live trace on a bare context")
	}
	if FromContext(ctx) != nil {
		t.Fatal("FromContext on bare context")
	}
}

func TestErrorOutcomeRecorded(t *testing.T) {
	c := NewCollector(Config{Now: newFakeClock().Now})
	ctx := WithCollector(context.Background(), c)
	_, root := Start(ctx, "rest.get")
	root.End(errors.New("quorum failed"))
	tr := c.Traces(1)[0]
	if tr.Spans[0].Err != "quorum failed" {
		t.Fatalf("err = %q", tr.Spans[0].Err)
	}
}

func TestRingEviction(t *testing.T) {
	c := NewCollector(Config{Capacity: 4, Now: newFakeClock().Now})
	ctx := WithCollector(context.Background(), c)
	for i := 0; i < 10; i++ {
		_, sp := Start(ctx, fmt.Sprintf("op%d", i))
		sp.End(nil)
	}
	traces := c.Traces(0)
	if len(traces) != 4 {
		t.Fatalf("ring retained %d traces, want 4", len(traces))
	}
	// Most recent first.
	for i, want := range []string{"op9", "op8", "op7", "op6"} {
		if traces[i].Root != want {
			t.Fatalf("traces[%d] = %s, want %s", i, traces[i].Root, want)
		}
	}
	if n := len(c.Traces(2)); n != 2 {
		t.Fatalf("Traces(2) returned %d", n)
	}
	if got := c.Stats().Finished; got != 10 {
		t.Fatalf("finished = %d", got)
	}
}

func TestSlowOpLog(t *testing.T) {
	clock := newFakeClock()
	var lines []string
	c := NewCollector(Config{
		SlowThreshold: 2 * time.Millisecond,
		Now:           clock.Now,
		Logf:          func(format string, args ...any) { lines = append(lines, fmt.Sprintf(format, args...)) },
	})
	ctx := WithCollector(context.Background(), c)

	// Fast: start+end consume 2 ticks = 1ms duration, under threshold.
	_, fast := Start(ctx, "fast.op")
	fast.End(nil)

	// Slow: the child span's two ticks stretch the root past the threshold.
	rctx, slow := Start(ctx, "slow.op")
	_, child := Start(rctx, "wal.commit")
	child.SetPeer("n1")
	child.End(nil)
	slow.End(nil)

	if len(lines) != 1 {
		t.Fatalf("slow-op lines = %d (%v)", len(lines), lines)
	}
	if !strings.Contains(lines[0], "slow.op") || !strings.Contains(lines[0], "wal.commit(n1)") {
		t.Fatalf("slow-op line missing fields: %s", lines[0])
	}
	if got := c.Stats().Slow; got != 1 {
		t.Fatalf("slow count = %d", got)
	}
	if !c.Traces(1)[0].Slow {
		t.Fatal("trace not marked slow")
	}
}

func TestLateSpanBecomesStray(t *testing.T) {
	c := NewCollector(Config{Now: newFakeClock().Now})
	ctx := WithCollector(context.Background(), c)
	rctx, root := Start(ctx, "rest.put")
	_, late := Start(rctx, "nwr.replica")
	late.SetPeer("n3")
	root.End(nil) // quorum returned; replica still in flight
	late.End(nil)

	if got := c.Stats().DroppedSpans; got != 1 {
		t.Fatalf("dropped spans = %d", got)
	}
	strays := c.Strays()
	if len(strays) != 1 || strays[0].Name != "nwr.replica" || strays[0].Peer != "n3" {
		t.Fatalf("strays = %+v", strays)
	}
	// The finished trace holds only the root.
	if n := len(c.Traces(1)[0].Spans); n != 1 {
		t.Fatalf("trace span count = %d", n)
	}
}

func TestMaxSpansCap(t *testing.T) {
	c := NewCollector(Config{MaxSpans: 3, Now: newFakeClock().Now})
	ctx := WithCollector(context.Background(), c)
	rctx, root := Start(ctx, "root")
	for i := 0; i < 5; i++ {
		_, sp := Start(rctx, "child")
		sp.End(nil)
	}
	root.End(nil)
	tr := c.Traces(1)[0]
	if len(tr.Spans) != 3 {
		t.Fatalf("span count = %d, want 3 (capped)", len(tr.Spans))
	}
	// 2 capped children + the root itself (cap hit before it filed).
	if got := c.Stats().DroppedSpans; got != 3 {
		t.Fatalf("dropped = %d", got)
	}
}

func TestJoinAndWire(t *testing.T) {
	gatewayC := NewCollector(Config{Now: newFakeClock().Now})
	nodeC := NewCollector(Config{Now: newFakeClock().Now})

	ctx := WithCollector(context.Background(), gatewayC)
	rctx, root := Start(ctx, "rest.put")
	id, parent, ok := Wire(rctx)
	if !ok || id == 0 || parent == 0 {
		t.Fatalf("Wire = %x, %d, %v", id, parent, ok)
	}

	// Remote node re-joins the ids against its own collector.
	remoteCtx := Join(context.Background(), nodeC, id, parent)
	_, remote := Start(remoteCtx, "docstore.apply")
	if remote.TraceID() != id {
		t.Fatalf("remote trace id %x != %x", remote.TraceID(), id)
	}
	remote.End(nil)
	root.End(nil)

	// The remote span lands in the node collector's stray ring, correlated
	// by trace id.
	strays := nodeC.Strays()
	if len(strays) != 1 || strays[0].TraceID != id || strays[0].Parent != parent {
		t.Fatalf("node strays = %+v", strays)
	}
	if len(gatewayC.Traces(0)) != 1 {
		t.Fatal("gateway trace missing")
	}

	// Join with a nil collector or zero id is inert.
	if got := Join(context.Background(), nil, id, parent); FromContext(got) != nil {
		t.Fatal("Join(nil collector) installed state")
	}
	if _, _, ok := Wire(Join(context.Background(), nodeC, 0, 9)); ok {
		t.Fatal("Join(zero id) produced a live trace")
	}
}

func TestMaxActiveBound(t *testing.T) {
	c := NewCollector(Config{MaxActive: 2, Now: newFakeClock().Now})
	ctx := WithCollector(context.Background(), c)
	_, s1 := Start(ctx, "a")
	_, s2 := Start(ctx, "b")
	_, s3 := Start(ctx, "c") // over the bound
	if s1 == nil || s2 == nil {
		t.Fatal("first two roots should be tracked")
	}
	if s3 != nil {
		t.Fatal("third root should be dropped")
	}
	if got := c.Stats().DroppedTraces; got != 1 {
		t.Fatalf("dropped traces = %d", got)
	}
	s1.End(nil)
	s2.End(nil)
	// Capacity freed: new roots track again.
	if _, s4 := Start(ctx, "d"); s4 == nil {
		t.Fatal("root after drain should be tracked")
	}
}

// TestConcurrentTraces hammers one collector from many goroutines; run under
// -race via verify.sh.
func TestConcurrentTraces(t *testing.T) {
	c := NewCollector(Config{Capacity: 64})
	ctx := WithCollector(context.Background(), c)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				rctx, root := Start(ctx, "op")
				_, child := Start(rctx, "child")
				child.End(nil)
				root.End(nil)
			}
		}()
	}
	wg.Wait()
	if got := c.Stats().Finished; got != 16*50 {
		t.Fatalf("finished = %d, want %d", got, 16*50)
	}
	for _, tr := range c.Traces(0) {
		if len(tr.Spans) != 2 {
			t.Fatalf("trace %x has %d spans", tr.ID, len(tr.Spans))
		}
	}
}
