package trace

import "context"

// WithCollector installs a collector into ctx. The next Start under this
// context opens a root span and allocates a fresh trace id.
func WithCollector(ctx context.Context, c *Collector) context.Context {
	if c == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, ctxInfo{c: c})
}

// FromContext returns the collector carried by ctx, or nil.
func FromContext(ctx context.Context) *Collector {
	info, _ := ctx.Value(ctxKey{}).(ctxInfo)
	return info.c
}

// Start opens a span named name as a child of the span enclosing ctx. With
// no collector installed it returns (ctx, nil); the nil span's methods are
// no-ops, so call sites need no conditionals.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	info, ok := ctx.Value(ctxKey{}).(ctxInfo)
	if !ok || info.c == nil {
		return ctx, nil
	}
	sp := info.c.open(info.trace, info.span, name)
	if sp == nil {
		return ctx, nil
	}
	return context.WithValue(ctx, ctxKey{}, ctxInfo{c: info.c, trace: sp.trace, span: sp.id}), sp
}

// Join attaches a remotely originated (trace id, parent span id) pair to ctx
// against the local collector c: spans Started under the returned context
// file under that trace id. The TCP server side uses this with the ids
// parsed off the frame; ids are recorded but the trace is only retained by
// the collector that owns the root span.
func Join(ctx context.Context, c *Collector, id ID, parentSpan uint64) context.Context {
	if c == nil || id == 0 {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, ctxInfo{c: c, trace: id, span: parentSpan})
}

// Wire returns the (trace id, current span id) pair to encode on an outgoing
// RPC frame, or ok=false when ctx carries no live trace.
func Wire(ctx context.Context) (id ID, span uint64, ok bool) {
	info, isSet := ctx.Value(ctxKey{}).(ctxInfo)
	if !isSet || info.trace == 0 {
		return 0, 0, false
	}
	return info.trace, info.span, true
}
