package ring

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"
)

func fiveNodeRing(t *testing.T) *Ring {
	t.Helper()
	r := New()
	for i := 1; i <= 5; i++ {
		if err := r.AddNode(Node{ID: fmt.Sprintf("node-%d", i), Weight: 1}); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestHashDeterministic(t *testing.T) {
	if Hash("abc") != Hash("abc") {
		t.Fatal("Hash not deterministic")
	}
	if Hash("abc") == Hash("abd") {
		t.Fatal("distinct keys should rarely collide (these do not)")
	}
}

func TestAddRemoveNodes(t *testing.T) {
	r := New()
	if err := r.AddNode(Node{ID: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := r.AddNode(Node{ID: "a"}); !errors.Is(err, ErrNodeExists) {
		t.Fatalf("duplicate add err = %v", err)
	}
	if err := r.AddNode(Node{ID: ""}); err == nil {
		t.Fatal("empty id accepted")
	}
	if !r.Contains("a") || r.Len() != 1 {
		t.Fatal("Contains/Len wrong after add")
	}
	if got := r.PointCount(); got != DefaultVNodesPerWeight {
		t.Fatalf("PointCount = %d, want %d", got, DefaultVNodesPerWeight)
	}
	if err := r.RemoveNode("a"); err != nil {
		t.Fatal(err)
	}
	if err := r.RemoveNode("a"); !errors.Is(err, ErrNodeUnknown) {
		t.Fatalf("remove absent err = %v", err)
	}
	if r.PointCount() != 0 {
		t.Fatal("points remain after removal")
	}
}

func TestEmptyRingErrors(t *testing.T) {
	r := New()
	if _, err := r.Primary("k"); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Primary on empty = %v", err)
	}
	if _, err := r.Successors("k", 3); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Successors on empty = %v", err)
	}
	if _, err := r.SuccessorsAfterNode("x", 1); !errors.Is(err, ErrEmpty) {
		t.Fatalf("SuccessorsAfterNode on empty = %v", err)
	}
}

func TestWeightScalesVNodes(t *testing.T) {
	r := New(WithVNodesPerWeight(100))
	r.AddNode(Node{ID: "light", Weight: 1}) //nolint:errcheck
	r.AddNode(Node{ID: "heavy", Weight: 4}) //nolint:errcheck
	if got := r.PointCount(); got != 500 {
		t.Fatalf("PointCount = %d, want 500", got)
	}
	// The heavy node should own roughly 4x the keys.
	counts := map[string]int{}
	for i := 0; i < 20000; i++ {
		owner, err := r.Primary(fmt.Sprintf("key-%d", i))
		if err != nil {
			t.Fatal(err)
		}
		counts[owner]++
	}
	ratio := float64(counts["heavy"]) / float64(counts["light"])
	if ratio < 2.5 || ratio > 6.5 {
		t.Fatalf("heavy/light ownership ratio = %.2f, want ~4", ratio)
	}
}

func TestPrimaryStable(t *testing.T) {
	r := fiveNodeRing(t)
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("key-%d", i)
		a, _ := r.Primary(k)
		b, _ := r.Primary(k)
		if a != b {
			t.Fatalf("Primary(%s) unstable: %s vs %s", k, a, b)
		}
	}
}

func TestSuccessorsDistinctPhysicalNodes(t *testing.T) {
	r := fiveNodeRing(t)
	for i := 0; i < 500; i++ {
		owners, err := r.Successors(fmt.Sprintf("key-%d", i), 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(owners) != 3 {
			t.Fatalf("got %d owners, want 3", len(owners))
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("duplicate physical node in replica set: %v", owners)
			}
			seen[o] = true
		}
	}
}

func TestSuccessorsCappedAtClusterSize(t *testing.T) {
	r := fiveNodeRing(t)
	owners, err := r.Successors("k", 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(owners) != 5 {
		t.Fatalf("got %d owners, want all 5", len(owners))
	}
	owners, err = r.Successors("k", 0) // n<=0 behaves as 1
	if err != nil || len(owners) != 1 {
		t.Fatalf("Successors(k, 0) = %v, %v", owners, err)
	}
}

func TestSuccessorsFirstEqualsPrimary(t *testing.T) {
	r := fiveNodeRing(t)
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("key-%d", i)
		p, _ := r.Primary(k)
		s, _ := r.Successors(k, 3)
		if s[0] != p {
			t.Fatalf("Successors[0] = %s, Primary = %s", s[0], p)
		}
	}
}

func TestSuccessorsAfterNodeExcludesSelf(t *testing.T) {
	r := fiveNodeRing(t)
	succ, err := r.SuccessorsAfterNode("node-3", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(succ) != 3 {
		t.Fatalf("got %d successors, want 3", len(succ))
	}
	for _, s := range succ {
		if s == "node-3" {
			t.Fatal("node appears in its own successor list")
		}
	}
}

// TestIncrementalScalability is the core consistent-hashing property (paper
// §2): adding one node to an N-node ring remaps about K/(N+1) keys, not
// nearly all of them as mod-N does.
func TestIncrementalScalability(t *testing.T) {
	const keys = 20000
	r := fiveNodeRing(t)
	before := make([]string, keys)
	for i := range before {
		before[i], _ = r.Primary(fmt.Sprintf("key-%d", i))
	}
	if err := r.AddNode(Node{ID: "node-6", Weight: 1}); err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := range before {
		after, _ := r.Primary(fmt.Sprintf("key-%d", i))
		if after != before[i] {
			moved++
			if after != "node-6" {
				t.Fatalf("key moved to %s, not the new node", after)
			}
		}
	}
	frac := float64(moved) / keys
	// Ideal is 1/6 ≈ 0.167; virtual nodes keep it close.
	if frac < 0.10 || frac > 0.25 {
		t.Fatalf("moved fraction = %.3f, want ~1/6", frac)
	}

	// mod-N baseline moves the vast majority.
	m := NewModN("n1", "n2", "n3", "n4", "n5")
	beforeMod := make([]string, keys)
	for i := range beforeMod {
		beforeMod[i], _ = m.Primary(fmt.Sprintf("key-%d", i))
	}
	m.AddNode("n6")
	movedMod := 0
	for i := range beforeMod {
		after, _ := m.Primary(fmt.Sprintf("key-%d", i))
		if after != beforeMod[i] {
			movedMod++
		}
	}
	fracMod := float64(movedMod) / keys
	if fracMod < 0.6 {
		t.Fatalf("mod-N moved fraction = %.3f, expected most keys to move", fracMod)
	}
	if fracMod <= frac {
		t.Fatalf("consistent hashing (%.3f) should move far fewer keys than mod-N (%.3f)", frac, fracMod)
	}
}

// TestBalance verifies virtual nodes even out placement (paper Fig 5): with
// equal weights, each of 5 nodes should own about 20% of keys.
func TestBalance(t *testing.T) {
	r := fiveNodeRing(t)
	const keys = 50000
	counts := map[string]int{}
	for i := 0; i < keys; i++ {
		owner, _ := r.Primary(fmt.Sprintf("key-%d", i))
		counts[owner]++
	}
	for node, c := range counts {
		frac := float64(c) / keys
		if frac < 0.12 || frac > 0.28 {
			t.Errorf("node %s owns %.1f%% of keys, want ~20%%", node, frac*100)
		}
	}
}

// TestFewVNodesImbalance documents why virtual nodes exist: with a single
// point per node, balance is far worse. This is the ablation the paper's
// §5.2.1 motivates.
func TestFewVNodesImbalance(t *testing.T) {
	spread := func(perWeight int) float64 {
		r := New(WithVNodesPerWeight(perWeight))
		for i := 1; i <= 5; i++ {
			r.AddNode(Node{ID: fmt.Sprintf("node-%d", i)}) //nolint:errcheck
		}
		counts := map[string]int{}
		const keys = 20000
		for i := 0; i < keys; i++ {
			owner, _ := r.Primary(fmt.Sprintf("key-%d", i))
			counts[owner]++
		}
		min, max := keys, 0
		for i := 1; i <= 5; i++ {
			c := counts[fmt.Sprintf("node-%d", i)]
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		return float64(max-min) / float64(keys)
	}
	if one, many := spread(1), spread(200); one <= many {
		t.Fatalf("1 vnode spread %.3f should exceed 200-vnode spread %.3f", one, many)
	}
}

func TestCloneIndependent(t *testing.T) {
	r := fiveNodeRing(t)
	c := r.Clone()
	if err := c.RemoveNode("node-1"); err != nil {
		t.Fatal(err)
	}
	if !r.Contains("node-1") {
		t.Fatal("mutating clone affected original")
	}
	if c.Len() != 4 || r.Len() != 5 {
		t.Fatalf("Len = %d/%d", c.Len(), r.Len())
	}
}

func TestNodesSorted(t *testing.T) {
	r := fiveNodeRing(t)
	nodes := r.Nodes()
	for i := 1; i < len(nodes); i++ {
		if nodes[i-1].ID >= nodes[i].ID {
			t.Fatalf("Nodes not sorted: %v", nodes)
		}
	}
}

func TestModNEmpty(t *testing.T) {
	m := NewModN()
	if _, err := m.Primary("k"); !errors.Is(err, ErrEmpty) {
		t.Fatalf("err = %v", err)
	}
}

func TestPrimaryIsSuccessorProperty(t *testing.T) {
	r := fiveNodeRing(t)
	f := func(key string) bool {
		p, err1 := r.Primary(key)
		s, err2 := r.Successors(key, 5)
		if err1 != nil || err2 != nil || len(s) != 5 {
			return false
		}
		seen := map[string]bool{}
		for _, id := range s {
			if seen[id] {
				return false
			}
			seen[id] = true
		}
		return s[0] == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPrimary(b *testing.B) {
	r := New()
	for i := 0; i < 5; i++ {
		r.AddNode(Node{ID: fmt.Sprintf("node-%d", i)}) //nolint:errcheck
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Primary(fmt.Sprintf("key-%d", i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSuccessors3(b *testing.B) {
	r := New()
	for i := 0; i < 5; i++ {
		r.AddNode(Node{ID: fmt.Sprintf("node-%d", i)}) //nolint:errcheck
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Successors(fmt.Sprintf("key-%d", i), 3); err != nil {
			b.Fatal(err)
		}
	}
}
