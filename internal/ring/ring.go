// Package ring implements the consistent-hashing layer that routes MyStore
// keys to storage nodes: a Ketama-style MD5 ring with weighted virtual
// nodes (paper §5.2.1). Each physical node is expanded into a number of
// virtual points proportional to its capacity ("more powerful means more
// virtual nodes"); a key is owned by the first virtual point clockwise from
// the key's hash, and a record's N replicas live on the first N *distinct
// physical* nodes encountered walking clockwise (§5.2.2).
//
// The package also provides the classic `hash(X) mod N` placement (paper
// Eq. 2) as a baseline for the ablation benches that measure how much data
// each scheme remaps when membership changes.
package ring

import (
	"crypto/md5"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// DefaultVNodesPerWeight is how many virtual points one unit of node weight
// contributes. 100 points per weight unit gives <5% load imbalance at the
// cluster sizes the paper evaluates (5 nodes).
const DefaultVNodesPerWeight = 100

// Node is a physical storage node participating in the ring.
type Node struct {
	// ID uniquely identifies the node (MyStore uses the host address).
	ID string
	// Weight scales the number of virtual nodes; it reflects the physical
	// node's capacity. Weight 0 is treated as 1.
	Weight int
}

func (n Node) vnodes(perWeight int) int {
	w := n.Weight
	if w <= 0 {
		w = 1
	}
	return w * perWeight
}

// point is one virtual node position on the ring.
type point struct {
	hash uint32
	node string
}

// Ring is a consistent-hash ring. It is safe for concurrent use.
type Ring struct {
	mu        sync.RWMutex
	perWeight int
	nodes     map[string]Node
	points    []point // sorted by hash, ties broken by node id
}

// Option configures a Ring.
type Option func(*Ring)

// WithVNodesPerWeight overrides the virtual-node multiplier.
func WithVNodesPerWeight(n int) Option {
	return func(r *Ring) {
		if n > 0 {
			r.perWeight = n
		}
	}
}

// New returns an empty ring.
func New(opts ...Option) *Ring {
	r := &Ring{perWeight: DefaultVNodesPerWeight, nodes: make(map[string]Node)}
	for _, o := range opts {
		o(r)
	}
	return r
}

// Hash is the Ketama-style key hash: the first four bytes of MD5, little
// endian. Both keys and virtual-node positions use it, mapping everything
// onto the same 32-bit circle.
func Hash(key string) uint32 {
	sum := md5.Sum([]byte(key))
	return binary.LittleEndian.Uint32(sum[0:4])
}

// vnodeLabel derives the position label of a node's i-th virtual node. The
// virtual node's position "is decided by the physical node's key" (§5.2.1).
func vnodeLabel(nodeID string, i int) string {
	return fmt.Sprintf("%s#%d", nodeID, i)
}

// Errors returned by the ring.
var (
	ErrNodeExists  = errors.New("ring: node already present")
	ErrNodeUnknown = errors.New("ring: node not present")
	ErrEmpty       = errors.New("ring: no nodes")
)

// AddNode inserts a physical node and its virtual points.
func (r *Ring) AddNode(n Node) error {
	if n.ID == "" {
		return errors.New("ring: empty node id")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[n.ID]; ok {
		return ErrNodeExists
	}
	r.nodes[n.ID] = n
	for i := 0; i < n.vnodes(r.perWeight); i++ {
		r.points = append(r.points, point{hash: Hash(vnodeLabel(n.ID, i)), node: n.ID})
	}
	r.sortLocked()
	return nil
}

// RemoveNode removes a physical node and all its virtual points.
func (r *Ring) RemoveNode(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[id]; !ok {
		return ErrNodeUnknown
	}
	delete(r.nodes, id)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != id {
			kept = append(kept, p)
		}
	}
	r.points = kept
	return nil
}

func (r *Ring) sortLocked() {
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
}

// Nodes returns the physical nodes currently in the ring.
func (r *Ring) Nodes() []Node {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Node, 0, len(r.nodes))
	for _, n := range r.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Len returns the number of physical nodes.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// Contains reports whether the node is in the ring.
func (r *Ring) Contains(id string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.nodes[id]
	return ok
}

// Primary returns the physical node owning key: the node of the first
// virtual point at or clockwise after the key's hash (paper Eq. 1).
func (r *Ring) Primary(key string) (string, error) {
	owners, err := r.Successors(key, 1)
	if err != nil {
		return "", err
	}
	return owners[0], nil
}

// Successors returns the first n distinct physical nodes walking clockwise
// from key's hash: the replica set for the key (§5.2.2, "these nodes are
// physical nodes"). If n exceeds the number of physical nodes, all nodes
// are returned in walk order.
func (r *Ring) Successors(key string, n int) ([]string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.successorsFromLocked(Hash(key), n)
}

// SuccessorsAt returns the first n distinct physical nodes walking clockwise
// from an explicit ring-hash position. The consensus tier uses it to derive
// the replica set of a hash range from the range's start position, the same
// walk Successors performs from a key's hash.
func (r *Ring) SuccessorsAt(h uint32, n int) ([]string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.successorsFromLocked(h, n)
}

// SuccessorsAfterNode returns the first n distinct physical nodes clockwise
// after any of node's virtual points — used to find supplementary replica
// targets when a node departs (§5.2.4, Fig 9). The walk starts at the
// node's first virtual point and skips the node itself.
func (r *Ring) SuccessorsAfterNode(id string, n int) ([]string, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return nil, ErrEmpty
	}
	start := Hash(vnodeLabel(id, 0))
	owners, err := r.successorsFromLocked(start, n+1)
	if err != nil {
		return nil, err
	}
	out := owners[:0]
	for _, o := range owners {
		if o != id {
			out = append(out, o)
		}
	}
	if len(out) > n {
		out = out[:n]
	}
	return out, nil
}

// successorsFromLocked walks clockwise from hash h collecting distinct
// physical nodes. Caller holds mu.
func (r *Ring) successorsFromLocked(h uint32, n int) ([]string, error) {
	if len(r.points) == 0 {
		return nil, ErrEmpty
	}
	if n <= 0 {
		n = 1
	}
	// First point with hash >= h; wraps to 0.
	idx := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if idx == len(r.points) {
		idx = 0
	}
	seen := make(map[string]bool, n)
	out := make([]string, 0, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(idx+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out, nil
}

// PointCount returns the number of virtual points (for tests and stats).
func (r *Ring) PointCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.points)
}

// Clone returns an independent copy of the ring, used to compute membership
// diffs (who owns what before vs after a change) without locking the live
// ring for the duration.
func (r *Ring) Clone() *Ring {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c := &Ring{perWeight: r.perWeight, nodes: make(map[string]Node, len(r.nodes))}
	for id, n := range r.nodes {
		c.nodes[id] = n
	}
	c.points = append([]point(nil), r.points...)
	return c
}

// ModNPlacement is the paper's Eq. 2 baseline: Y = hash(X) mod N over an
// ordered node list. Nearly every key moves when N changes, which is what
// the ablation bench demonstrates.
type ModNPlacement struct {
	mu    sync.RWMutex
	nodes []string
}

// NewModN returns a mod-N placement over the given nodes, in order.
func NewModN(nodes ...string) *ModNPlacement {
	return &ModNPlacement{nodes: append([]string(nil), nodes...)}
}

// AddNode appends a node.
func (m *ModNPlacement) AddNode(id string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.nodes = append(m.nodes, id)
}

// Primary returns the owner of key.
func (m *ModNPlacement) Primary(key string) (string, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if len(m.nodes) == 0 {
		return "", ErrEmpty
	}
	return m.nodes[int(Hash(key))%len(m.nodes)], nil
}
