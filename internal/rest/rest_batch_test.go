package rest

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"mystore/internal/cache"
)

// batchMapBackend adds a native GetMany to mapBackend so tests cover the
// BatchBackend fast path as well as the per-key fallback.
type batchMapBackend struct {
	*mapBackend
	batchCalls int
}

func (b *batchMapBackend) GetMany(_ context.Context, keys []string) (map[string][]byte, map[string]string, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.batchCalls++
	found := make(map[string][]byte, len(keys))
	for _, k := range keys {
		if v, ok := b.data[k]; ok {
			found[k] = append([]byte(nil), v...)
		}
	}
	return found, nil, nil
}

func postBatchGet(t *testing.T, url string, keys []string) (int, batchGetResponse) {
	t.Helper()
	body, _ := json.Marshal(map[string]any{"keys": keys})
	resp, err := http.Post(url+"/batch/get", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out batchGetResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, out
}

func TestBatchGetFallback(t *testing.T) {
	// mapBackend has no GetMany: the gateway falls back to per-key reads.
	_, backend, srv := newTestGateway(t, Config{})
	backend.Put(context.Background(), "a", []byte("va")) //nolint:errcheck
	backend.Put(context.Background(), "b", []byte("vb")) //nolint:errcheck

	code, out := postBatchGet(t, srv.URL, []string{"a", "b", "ghost"})
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if string(out.Results["a"]) != "va" || string(out.Results["b"]) != "vb" {
		t.Fatalf("results = %v", out.Results)
	}
	if len(out.Missing) != 1 || out.Missing[0] != "ghost" {
		t.Fatalf("missing = %v", out.Missing)
	}
}

func TestBatchGetBatchBackendAndCacheFill(t *testing.T) {
	backend := &batchMapBackend{mapBackend: newMapBackend()}
	tier := cache.NewTier(2, 1<<20)
	gw := NewGateway(backend, Config{Cache: tier})
	ts := httptest.NewServer(gw.Handler())
	t.Cleanup(func() { ts.Close(); gw.Close() })
	srv := ts.URL
	backend.Put(context.Background(), "a", []byte("va")) //nolint:errcheck
	backend.Put(context.Background(), "b", []byte("vb")) //nolint:errcheck

	code, out := postBatchGet(t, srv, []string{"a", "b"})
	if code != http.StatusOK || len(out.Results) != 2 {
		t.Fatalf("status = %d, results = %v", code, out.Results)
	}
	if backend.batchCalls != 1 {
		t.Fatalf("batchCalls = %d, want 1 (one RPC for the whole miss set)", backend.batchCalls)
	}
	// The first round filled the cache: a repeat batch hits it entirely and
	// never reaches the backend.
	code, out = postBatchGet(t, srv, []string{"a", "b"})
	if code != http.StatusOK || len(out.Results) != 2 {
		t.Fatalf("repeat status = %d, results = %v", code, out.Results)
	}
	if backend.batchCalls != 1 {
		t.Fatalf("batchCalls = %d after cached repeat, want 1", backend.batchCalls)
	}
}

func TestBatchGetValidation(t *testing.T) {
	_, _, srv := newTestGateway(t, Config{})
	if code, _ := postBatchGet(t, srv.URL, nil); code != http.StatusBadRequest {
		t.Fatalf("empty keys: status = %d, want 400", code)
	}
	resp, err := http.Get(srv.URL + "/batch/get")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET: status = %d, want 405", resp.StatusCode)
	}
}
