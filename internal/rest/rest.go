// Package rest implements MyStore's user interface module (paper §4): a
// RESTful gateway exposing GET/POST/DELETE over unstructured data, with the
// cache module consulted before the storage cluster, requests distributed
// round-robin over a pool of logical workers (the Nginx + spawn-fcgi
// analogue), and optional URI-signature authentication.
//
// The gateway fronts any Backend, which is how the evaluation binds the
// ext3-filesystem and MySQL-master/slave baselines to "the same RESTful
// interfaces" for the Fig 11/12 comparisons.
package rest

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"mystore/internal/auth"
	"mystore/internal/cache"
	"mystore/internal/dispatch"
	"mystore/internal/metrics"
	"mystore/internal/trace"
	"mystore/internal/uuid"
)

// Backend is a key-value store the gateway fronts.
type Backend interface {
	Put(ctx context.Context, key string, val []byte) error
	Get(ctx context.Context, key string) ([]byte, error)
	Delete(ctx context.Context, key string) error
}

// BatchBackend is an optional Backend extension that serves several keys in
// one backend round trip. POST /batch/get uses it when the backend provides
// it and falls back to per-key Gets otherwise. found holds the keys that
// exist; failed maps keys whose read failed (e.g. below quorum) to an error
// message; keys in neither simply do not exist.
type BatchBackend interface {
	GetMany(ctx context.Context, keys []string) (found map[string][]byte, failed map[string]string, err error)
}

// StrongBackend is an optional Backend extension serving linearizable
// operations. /data requests carrying ?consistency=strong route through it;
// strong GETs bypass the cache tier entirely (a cached value may predate the
// latest committed write, which is exactly what strong readers pay to avoid).
type StrongBackend interface {
	StrongPut(ctx context.Context, key string, val []byte) error
	StrongGet(ctx context.Context, key string) ([]byte, error)
	StrongDelete(ctx context.Context, key string) error
}

// ErrNotFound must be returned (or wrapped) by Backend.Get for absent keys
// so the gateway can answer 404.
var ErrNotFound = errors.New("rest: key not found")

// maxBatchKeys bounds one POST /batch/get request; larger batches get 400.
const maxBatchKeys = 1024

// Config tunes a Gateway.
type Config struct {
	// Cache, when non-nil, is consulted before the backend on GET and
	// updated on reads, writes and deletes.
	Cache *cache.Tier
	// Auth, when non-nil, requires every /data request to carry a valid
	// token + signature (paper Fig 2).
	Auth *auth.TokenDB
	// Workers sizes the logical-process pool (default 8).
	Workers int
	// QueueDepth bounds each worker's backlog (default 64).
	QueueDepth int
	// MaxBodyBytes bounds uploads (default 16 MiB).
	MaxBodyBytes int64
	// RequestTimeout is the per-request deadline the gateway attaches to
	// each /data operation; it propagates through the worker pool into the
	// storage RPCs, and a queued request that can no longer meet it is shed
	// with 503 + Retry-After instead of run. Zero means 10s; negative
	// disables the deadline.
	RequestTimeout time.Duration
	// Metrics, when non-nil, receives the gateway's metric families
	// (requests, latency, dispatch, per-server cache counters) and is
	// rendered at /metrics in the Prometheus text format. The registry's
	// snapshot also folds into /stats.
	Metrics *metrics.Registry
	// Trace, when non-nil, is installed into every /data request context so
	// each layer the request crosses records a span; finished traces are
	// served at /debug/traces.
	Trace *trace.Collector
	// EnablePprof mounts net/http/pprof under /debug/pprof/ (off by default:
	// profiles expose more than operators usually want on a data port).
	EnablePprof bool
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 16 << 20
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 10 * time.Second
	}
	return c
}

// Stats counts gateway activity. Shed counts requests answered 503 because
// the pool was saturated or their queue wait outlived the deadline;
// DeadlineMisses counts requests whose own deadline expired.
type Stats struct {
	Requests, CacheHits, CacheMisses int64
	Errors                           int64
	Shed, DeadlineMisses             int64
}

// Gateway is the HTTP front end.
type Gateway struct {
	cfg     Config
	backend Backend
	pool    *dispatch.Pool

	requests, cacheHits, cacheMisses, errs atomic.Int64
	shed, deadlineMisses                   atomic.Int64
	reqLatency                             *metrics.BucketedHistogram
}

// NewGateway builds a gateway over backend.
func NewGateway(backend Backend, cfg Config) *Gateway {
	cfg = cfg.withDefaults()
	g := &Gateway{
		cfg:        cfg,
		backend:    backend,
		pool:       dispatch.NewPool(cfg.Workers, cfg.QueueDepth),
		reqLatency: metrics.NewBucketedHistogram(nil),
	}
	if cfg.Metrics != nil {
		g.registerMetrics(cfg.Metrics)
	}
	return g
}

// registerMetrics adds the gateway-side families: HTTP counters and latency,
// the dispatch pool, and per-server cache traffic.
func (g *Gateway) registerMetrics(r *metrics.Registry) {
	r.CounterFunc("mystore_gateway_requests_total", "HTTP /data requests received.",
		func() float64 { return float64(g.requests.Load()) })
	r.CounterFunc("mystore_gateway_errors_total", "HTTP /data requests answered with an error.",
		func() float64 { return float64(g.errs.Load()) })
	r.CounterFunc("mystore_gateway_shed_total", "HTTP /data requests answered 503 under overload.",
		func() float64 { return float64(g.shed.Load()) })
	r.Register("mystore_gateway_request_seconds", "End-to-end /data request latency.", metrics.TypeHistogram, "").
		AddHistogram("", 1e-9, g.reqLatency.Snapshot)

	r.CounterFunc("mystore_dispatch_dispatched_total", "Requests accepted by the worker pool.",
		func() float64 { return float64(g.pool.Stats().Dispatched) })
	r.CounterFunc("mystore_dispatch_completed_total", "Requests finished by the worker pool.",
		func() float64 { return float64(g.pool.Stats().Completed) })
	r.CounterFunc("mystore_dispatch_shed_total", "Queued requests dropped because their deadline expired before a worker reached them.",
		func() float64 { return float64(g.pool.Stats().Shed) })
	r.Register("mystore_dispatch_queue_wait_seconds", "Time requests spend queued before a worker picks them up.", metrics.TypeHistogram, "").
		AddHistogram("", 1e-9, g.pool.QueueWait().Snapshot)

	if g.cfg.Cache != nil {
		hits := r.Register("mystore_cache_hits_total", "Cache hits by cache server.", metrics.TypeCounter, "server")
		misses := r.Register("mystore_cache_misses_total", "Cache misses by cache server.", metrics.TypeCounter, "server")
		evictions := r.Register("mystore_cache_evictions_total", "LRU evictions by cache server.", metrics.TypeCounter, "server")
		bytes := r.Register("mystore_cache_used_bytes", "Bytes of cached values by cache server.", metrics.TypeGauge, "server")
		for i, srv := range g.cfg.Cache.Servers() {
			srv := srv
			label := strconv.Itoa(i)
			hits.Add(label, func() float64 { return float64(srv.Stats().Hits) })
			misses.Add(label, func() float64 { return float64(srv.Stats().Misses) })
			evictions.Add(label, func() float64 { return float64(srv.Stats().Evictions) })
			bytes.Add(label, func() float64 { return float64(srv.UsedBytes()) })
		}
	}
}

// Close stops the worker pool.
func (g *Gateway) Close() { g.pool.Close() }

// Stats returns a snapshot.
func (g *Gateway) Stats() Stats {
	return Stats{
		Requests:       g.requests.Load(),
		CacheHits:      g.cacheHits.Load(),
		CacheMisses:    g.cacheMisses.Load(),
		Errors:         g.errs.Load(),
		Shed:           g.shed.Load(),
		DeadlineMisses: g.deadlineMisses.Load(),
	}
}

// Handler returns the gateway's HTTP handler:
//
//	GET    /data/{key}   retrieve
//	POST   /data/{key}   create or update (body = value)
//	POST   /data/        create with a generated key; returns the key
//	POST   /batch/get    retrieve many keys in one round (JSON {"keys": [...]})
//	DELETE /data/{key}   delete
//
// /data requests accept ?consistency=strong to route through the backend's
// linearizable path (StrongBackend); strong GETs bypass the cache tier.
//
//	GET    /token?user=u issue a request token (when auth is enabled)
//	GET    /stats        gateway counters as JSON (unauthenticated)
//	GET    /metrics      Prometheus text exposition (when Config.Metrics set)
//	GET    /debug/traces recent request traces as JSON (when Config.Trace set)
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/data/", g.handleData)
	mux.HandleFunc("/batch/get", g.handleBatchGet)
	mux.HandleFunc("/token", g.handleToken)
	mux.HandleFunc("/stats", g.handleStats)
	mux.HandleFunc("/metrics", g.handleMetrics)
	mux.HandleFunc("/debug/traces", g.handleTraces)
	if g.cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// handleStats answers the JSON counters endpoint. The historical keys
// (requests, cacheHits, workers, completed, ...) are always present; when a
// registry is configured its flattened snapshot rides along, so one curl
// shows WAL, NWR and breaker state next to the gateway counters.
func (g *Gateway) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := g.Stats()
	ps := g.pool.Stats()
	out := map[string]any{
		"requests":       st.Requests,
		"cacheHits":      st.CacheHits,
		"cacheMisses":    st.CacheMisses,
		"errors":         st.Errors,
		"shed":           st.Shed,
		"deadlineMisses": st.DeadlineMisses,
		"workers":        g.pool.Workers(),
		"dispatched":     ps.Dispatched,
		"completed":      ps.Completed,
		"failed":         ps.Failed,
		"poolShed":       ps.Shed,
	}
	if g.cfg.Metrics != nil {
		for name, v := range g.cfg.Metrics.Snapshot() {
			if _, taken := out[name]; !taken {
				out[name] = v
			}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out) //nolint:errcheck
}

func (g *Gateway) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	if g.cfg.Metrics == nil {
		http.Error(w, "metrics disabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	g.cfg.Metrics.WritePrometheus(w) //nolint:errcheck
}

// traceOut renders a trace with its id in hex (the id is a raw uint64
// internally, which JSON would mangle past 2^53).
type traceOut struct {
	ID string `json:"id"`
	trace.Trace
}

// handleTraces serves recent finished traces, newest first. ?n= bounds the
// count (default 20), ?slow=1 keeps only traces past the slow threshold,
// ?id=<hex> looks one trace up by id.
func (g *Gateway) handleTraces(w http.ResponseWriter, r *http.Request) {
	if g.cfg.Trace == nil {
		http.Error(w, "tracing disabled", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if hex := r.URL.Query().Get("id"); hex != "" {
		id, err := strconv.ParseUint(hex, 16, 64)
		if err != nil {
			http.Error(w, "bad trace id", http.StatusBadRequest)
			return
		}
		t, ok := g.cfg.Trace.TraceByID(trace.ID(id))
		if !ok {
			http.Error(w, "trace not found", http.StatusNotFound)
			return
		}
		json.NewEncoder(w).Encode(traceOut{ID: fmt.Sprintf("%016x", uint64(t.ID)), Trace: t}) //nolint:errcheck
		return
	}
	n, _ := strconv.Atoi(r.URL.Query().Get("n"))
	if n <= 0 {
		n = 20
	}
	slowOnly := r.URL.Query().Get("slow") != ""
	traces := g.cfg.Trace.Traces(n)
	out := make([]traceOut, 0, len(traces))
	for _, t := range traces {
		if slowOnly && !t.Slow {
			continue
		}
		out = append(out, traceOut{ID: fmt.Sprintf("%016x", uint64(t.ID)), Trace: t})
	}
	json.NewEncoder(w).Encode(out) //nolint:errcheck
}

func (g *Gateway) handleToken(w http.ResponseWriter, r *http.Request) {
	if g.cfg.Auth == nil {
		http.Error(w, "authentication disabled", http.StatusNotFound)
		return
	}
	user := r.URL.Query().Get("user")
	token, err := g.cfg.Auth.IssueToken(user)
	if err != nil {
		http.Error(w, err.Error(), http.StatusForbidden)
		return
	}
	fmt.Fprint(w, token)
}

func (g *Gateway) handleData(w http.ResponseWriter, r *http.Request) {
	g.requests.Add(1)
	if g.cfg.Auth != nil {
		if _, err := g.cfg.Auth.Verify(r.URL.RequestURI()); err != nil {
			g.errs.Add(1)
			http.Error(w, err.Error(), http.StatusForbidden)
			return
		}
	}
	// Attach the per-request deadline; it rides the context through the
	// worker pool and onto the storage RPC wire.
	if g.cfg.RequestTimeout > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), g.cfg.RequestTimeout)
		defer cancel()
		r = r.WithContext(ctx)
	}
	var opName string
	switch r.Method {
	case http.MethodGet:
		opName = "rest.get"
	case http.MethodPost:
		opName = "rest.post"
	case http.MethodDelete:
		opName = "rest.delete"
	default:
		g.errs.Add(1)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	// The root span: every span any layer below opens — dispatch queue,
	// coordinator fan-out, transport, WAL commit — descends from it, and its
	// end finalizes the trace.
	if g.cfg.Trace != nil {
		r = r.WithContext(trace.WithCollector(r.Context(), g.cfg.Trace))
	}
	ctx, sp := trace.Start(r.Context(), opName)
	r = r.WithContext(ctx)
	start := time.Now()
	defer func() {
		g.reqLatency.ObserveDuration(time.Since(start))
		sp.End(nil)
	}()
	key := strings.TrimPrefix(r.URL.Path, "/data/")
	strong := r.URL.Query().Get("consistency") == "strong"
	if strong {
		if _, ok := g.backend.(StrongBackend); !ok {
			g.errs.Add(1)
			http.Error(w, "strong consistency not supported by this backend", http.StatusNotImplemented)
			return
		}
	}
	switch r.Method {
	case http.MethodGet:
		g.handleGet(w, r, key, strong)
	case http.MethodPost:
		g.handlePost(w, r, key, strong)
	case http.MethodDelete:
		g.handleDelete(w, r, key, strong)
	}
}

// batchGetRequest is the POST /batch/get body.
type batchGetRequest struct {
	Keys []string `json:"keys"`
}

// batchGetResponse is the POST /batch/get answer. Results maps found keys to
// their values (base64 in JSON); Missing lists keys that do not exist;
// Errors maps keys whose read failed (for example below the read quorum) to
// an error message, so clients can tell "absent" from "unreadable".
type batchGetResponse struct {
	Results map[string][]byte `json:"results"`
	Missing []string          `json:"missing,omitempty"`
	Errors  map[string]string `json:"errors,omitempty"`
}

// handleBatchGet serves POST /batch/get: the cache tier is consulted once
// for the whole key set, then the entire miss set is fetched from the
// backend in one batched round (per-key Gets when the backend has no batch
// support) and written back to the cache.
func (g *Gateway) handleBatchGet(w http.ResponseWriter, r *http.Request) {
	g.requests.Add(1)
	if r.Method != http.MethodPost {
		g.errs.Add(1)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if g.cfg.Auth != nil {
		if _, err := g.cfg.Auth.Verify(r.URL.RequestURI()); err != nil {
			g.errs.Add(1)
			http.Error(w, err.Error(), http.StatusForbidden)
			return
		}
	}
	if g.cfg.RequestTimeout > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), g.cfg.RequestTimeout)
		defer cancel()
		r = r.WithContext(ctx)
	}
	if g.cfg.Trace != nil {
		r = r.WithContext(trace.WithCollector(r.Context(), g.cfg.Trace))
	}
	ctx, sp := trace.Start(r.Context(), "rest.batchget")
	start := time.Now()
	defer func() {
		g.reqLatency.ObserveDuration(time.Since(start))
		sp.End(nil)
	}()

	body, err := io.ReadAll(io.LimitReader(r.Body, g.cfg.MaxBodyBytes+1))
	if err != nil {
		g.fail(w, err)
		return
	}
	if int64(len(body)) > g.cfg.MaxBodyBytes {
		g.errs.Add(1)
		http.Error(w, "body too large", http.StatusRequestEntityTooLarge)
		return
	}
	var req batchGetRequest
	if err := json.Unmarshal(body, &req); err != nil {
		g.errs.Add(1)
		http.Error(w, "malformed request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Keys) == 0 || len(req.Keys) > maxBatchKeys {
		g.errs.Add(1)
		http.Error(w, fmt.Sprintf("need 1..%d keys", maxBatchKeys), http.StatusBadRequest)
		return
	}

	resp := batchGetResponse{Results: map[string][]byte{}}
	missing := req.Keys
	if g.cfg.Cache != nil {
		var hits map[string][]byte
		hits, missing = g.cfg.Cache.GetMany(req.Keys)
		g.cacheHits.Add(int64(len(hits)))
		g.cacheMisses.Add(int64(len(missing)))
		for k, v := range hits {
			resp.Results[k] = v
		}
	}
	if len(missing) > 0 {
		var fetched map[string][]byte
		var failed map[string]string
		err := g.pool.Do(ctx, func(ctx context.Context) error {
			var derr error
			fetched, failed, derr = g.backendGetMany(ctx, missing)
			return derr
		})
		if err != nil {
			g.fail(w, err)
			return
		}
		for k, v := range fetched {
			resp.Results[k] = v
			if g.cfg.Cache != nil {
				g.cfg.Cache.Set(k, v)
			}
		}
		resp.Errors = failed
		for _, k := range missing {
			if _, ok := fetched[k]; ok {
				continue
			}
			if _, ok := failed[k]; ok {
				continue
			}
			resp.Missing = append(resp.Missing, k)
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp) //nolint:errcheck
}

// backendGetMany fetches the miss set: one batched call when the backend
// implements BatchBackend, else a per-key fallback loop.
func (g *Gateway) backendGetMany(ctx context.Context, keys []string) (map[string][]byte, map[string]string, error) {
	if bb, ok := g.backend.(BatchBackend); ok {
		return bb.GetMany(ctx, keys)
	}
	found := make(map[string][]byte, len(keys))
	var failed map[string]string
	for _, k := range keys {
		val, err := g.backend.Get(ctx, k)
		switch {
		case err == nil:
			found[k] = val
		case errors.Is(err, ErrNotFound):
			// Simply absent.
		default:
			if failed == nil {
				failed = map[string]string{}
			}
			failed[k] = err.Error()
		}
	}
	return found, failed, nil
}

func (g *Gateway) handleGet(w http.ResponseWriter, r *http.Request, key string, strong bool) {
	if key == "" {
		http.Error(w, "missing key", http.StatusBadRequest)
		return
	}
	if strong {
		// Straight to the range leader: no cache lookup, no cache fill. The
		// response reflects every committed write; caching it would let a
		// later eventual read serve it stale, which is fine, but filling the
		// cache from here buys nothing a quorum write-through didn't already.
		var val []byte
		err := g.pool.Do(r.Context(), func(ctx context.Context) error {
			var err error
			val, err = g.backend.(StrongBackend).StrongGet(ctx, key)
			return err
		})
		if err != nil {
			g.fail(w, err)
			return
		}
		w.Header().Set("X-Cache", "bypass")
		w.Write(val) //nolint:errcheck
		return
	}
	if g.cfg.Cache != nil {
		if val, ok := g.cfg.Cache.Get(key); ok {
			g.cacheHits.Add(1)
			w.Header().Set("X-Cache", "hit")
			w.Write(val) //nolint:errcheck
			return
		}
		g.cacheMisses.Add(1)
	}
	var val []byte
	err := g.pool.Do(r.Context(), func(ctx context.Context) error {
		var err error
		val, err = g.backend.Get(ctx, key)
		return err
	})
	if err != nil {
		g.fail(w, err)
		return
	}
	if g.cfg.Cache != nil {
		g.cfg.Cache.Set(key, val)
	}
	w.Header().Set("X-Cache", "miss")
	w.Write(val) //nolint:errcheck
}

func (g *Gateway) handlePost(w http.ResponseWriter, r *http.Request, key string, strong bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, g.cfg.MaxBodyBytes+1))
	if err != nil {
		g.fail(w, err)
		return
	}
	if int64(len(body)) > g.cfg.MaxBodyBytes {
		g.errs.Add(1)
		http.Error(w, "body too large", http.StatusRequestEntityTooLarge)
		return
	}
	created := false
	if key == "" {
		// POST without a key creates a new item and returns its key
		// (paper §4: "it will create a new item in database and return a
		// key value to user").
		key = uuid.NewObjectId().Hex()
		created = true
	}
	err = g.pool.Do(r.Context(), func(ctx context.Context) error {
		if strong {
			return g.backend.(StrongBackend).StrongPut(ctx, key, body)
		}
		return g.backend.Put(ctx, key, body)
	})
	if err != nil {
		g.fail(w, err)
		return
	}
	if g.cfg.Cache != nil {
		g.cfg.Cache.Set(key, body)
	}
	if created {
		w.WriteHeader(http.StatusCreated)
		fmt.Fprint(w, key)
		return
	}
	w.WriteHeader(http.StatusOK)
}

func (g *Gateway) handleDelete(w http.ResponseWriter, r *http.Request, key string, strong bool) {
	if key == "" {
		http.Error(w, "missing key", http.StatusBadRequest)
		return
	}
	err := g.pool.Do(r.Context(), func(ctx context.Context) error {
		if strong {
			return g.backend.(StrongBackend).StrongDelete(ctx, key)
		}
		return g.backend.Delete(ctx, key)
	})
	if err != nil {
		g.fail(w, err)
		return
	}
	if g.cfg.Cache != nil {
		g.cfg.Cache.Delete(key)
	}
	w.WriteHeader(http.StatusOK)
}

func (g *Gateway) fail(w http.ResponseWriter, err error) {
	g.errs.Add(1)
	switch {
	case errors.Is(err, ErrNotFound):
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.Is(err, dispatch.ErrQueueFull), errors.Is(err, dispatch.ErrShed):
		// Overload: tell the client to back off briefly and retry — the
		// saturation that shed this request is usually transient.
		g.shed.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, context.DeadlineExceeded):
		g.deadlineMisses.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusBadGateway)
	}
}
