// Package rest implements MyStore's user interface module (paper §4): a
// RESTful gateway exposing GET/POST/DELETE over unstructured data, with the
// cache module consulted before the storage cluster, requests distributed
// round-robin over a pool of logical workers (the Nginx + spawn-fcgi
// analogue), and optional URI-signature authentication.
//
// The gateway fronts any Backend, which is how the evaluation binds the
// ext3-filesystem and MySQL-master/slave baselines to "the same RESTful
// interfaces" for the Fig 11/12 comparisons.
package rest

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"mystore/internal/auth"
	"mystore/internal/cache"
	"mystore/internal/dispatch"
	"mystore/internal/uuid"
)

// Backend is a key-value store the gateway fronts.
type Backend interface {
	Put(ctx context.Context, key string, val []byte) error
	Get(ctx context.Context, key string) ([]byte, error)
	Delete(ctx context.Context, key string) error
}

// ErrNotFound must be returned (or wrapped) by Backend.Get for absent keys
// so the gateway can answer 404.
var ErrNotFound = errors.New("rest: key not found")

// Config tunes a Gateway.
type Config struct {
	// Cache, when non-nil, is consulted before the backend on GET and
	// updated on reads, writes and deletes.
	Cache *cache.Tier
	// Auth, when non-nil, requires every /data request to carry a valid
	// token + signature (paper Fig 2).
	Auth *auth.TokenDB
	// Workers sizes the logical-process pool (default 8).
	Workers int
	// QueueDepth bounds each worker's backlog (default 64).
	QueueDepth int
	// MaxBodyBytes bounds uploads (default 16 MiB).
	MaxBodyBytes int64
	// RequestTimeout is the per-request deadline the gateway attaches to
	// each /data operation; it propagates through the worker pool into the
	// storage RPCs, and a queued request that can no longer meet it is shed
	// with 503 + Retry-After instead of run. Zero means 10s; negative
	// disables the deadline.
	RequestTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 16 << 20
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 10 * time.Second
	}
	return c
}

// Stats counts gateway activity. Shed counts requests answered 503 because
// the pool was saturated or their queue wait outlived the deadline;
// DeadlineMisses counts requests whose own deadline expired.
type Stats struct {
	Requests, CacheHits, CacheMisses int64
	Errors                           int64
	Shed, DeadlineMisses             int64
}

// Gateway is the HTTP front end.
type Gateway struct {
	cfg     Config
	backend Backend
	pool    *dispatch.Pool

	requests, cacheHits, cacheMisses, errs atomic.Int64
	shed, deadlineMisses                   atomic.Int64
}

// NewGateway builds a gateway over backend.
func NewGateway(backend Backend, cfg Config) *Gateway {
	cfg = cfg.withDefaults()
	return &Gateway{
		cfg:     cfg,
		backend: backend,
		pool:    dispatch.NewPool(cfg.Workers, cfg.QueueDepth),
	}
}

// Close stops the worker pool.
func (g *Gateway) Close() { g.pool.Close() }

// Stats returns a snapshot.
func (g *Gateway) Stats() Stats {
	return Stats{
		Requests:       g.requests.Load(),
		CacheHits:      g.cacheHits.Load(),
		CacheMisses:    g.cacheMisses.Load(),
		Errors:         g.errs.Load(),
		Shed:           g.shed.Load(),
		DeadlineMisses: g.deadlineMisses.Load(),
	}
}

// Handler returns the gateway's HTTP handler:
//
//	GET    /data/{key}   retrieve
//	POST   /data/{key}   create or update (body = value)
//	POST   /data/        create with a generated key; returns the key
//	DELETE /data/{key}   delete
//	GET    /token?user=u issue a request token (when auth is enabled)
//	GET    /stats        gateway counters as JSON (unauthenticated)
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/data/", g.handleData)
	mux.HandleFunc("/token", g.handleToken)
	mux.HandleFunc("/stats", g.handleStats)
	return mux
}

func (g *Gateway) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := g.Stats()
	ps := g.pool.Stats()
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"requests":%d,"cacheHits":%d,"cacheMisses":%d,"errors":%d,`+
		`"shed":%d,"deadlineMisses":%d,`+
		`"workers":%d,"dispatched":%d,"completed":%d,"failed":%d,"poolShed":%d}`,
		st.Requests, st.CacheHits, st.CacheMisses, st.Errors,
		st.Shed, st.DeadlineMisses,
		g.pool.Workers(), ps.Dispatched, ps.Completed, ps.Failed, ps.Shed)
	fmt.Fprintln(w)
}

func (g *Gateway) handleToken(w http.ResponseWriter, r *http.Request) {
	if g.cfg.Auth == nil {
		http.Error(w, "authentication disabled", http.StatusNotFound)
		return
	}
	user := r.URL.Query().Get("user")
	token, err := g.cfg.Auth.IssueToken(user)
	if err != nil {
		http.Error(w, err.Error(), http.StatusForbidden)
		return
	}
	fmt.Fprint(w, token)
}

func (g *Gateway) handleData(w http.ResponseWriter, r *http.Request) {
	g.requests.Add(1)
	if g.cfg.Auth != nil {
		if _, err := g.cfg.Auth.Verify(r.URL.RequestURI()); err != nil {
			g.errs.Add(1)
			http.Error(w, err.Error(), http.StatusForbidden)
			return
		}
	}
	// Attach the per-request deadline; it rides the context through the
	// worker pool and onto the storage RPC wire.
	if g.cfg.RequestTimeout > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), g.cfg.RequestTimeout)
		defer cancel()
		r = r.WithContext(ctx)
	}
	key := strings.TrimPrefix(r.URL.Path, "/data/")
	switch r.Method {
	case http.MethodGet:
		g.handleGet(w, r, key)
	case http.MethodPost:
		g.handlePost(w, r, key)
	case http.MethodDelete:
		g.handleDelete(w, r, key)
	default:
		g.errs.Add(1)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (g *Gateway) handleGet(w http.ResponseWriter, r *http.Request, key string) {
	if key == "" {
		http.Error(w, "missing key", http.StatusBadRequest)
		return
	}
	if g.cfg.Cache != nil {
		if val, ok := g.cfg.Cache.Get(key); ok {
			g.cacheHits.Add(1)
			w.Header().Set("X-Cache", "hit")
			w.Write(val) //nolint:errcheck
			return
		}
		g.cacheMisses.Add(1)
	}
	var val []byte
	err := g.pool.Do(r.Context(), func(ctx context.Context) error {
		var err error
		val, err = g.backend.Get(ctx, key)
		return err
	})
	if err != nil {
		g.fail(w, err)
		return
	}
	if g.cfg.Cache != nil {
		g.cfg.Cache.Set(key, val)
	}
	w.Header().Set("X-Cache", "miss")
	w.Write(val) //nolint:errcheck
}

func (g *Gateway) handlePost(w http.ResponseWriter, r *http.Request, key string) {
	body, err := io.ReadAll(io.LimitReader(r.Body, g.cfg.MaxBodyBytes+1))
	if err != nil {
		g.fail(w, err)
		return
	}
	if int64(len(body)) > g.cfg.MaxBodyBytes {
		g.errs.Add(1)
		http.Error(w, "body too large", http.StatusRequestEntityTooLarge)
		return
	}
	created := false
	if key == "" {
		// POST without a key creates a new item and returns its key
		// (paper §4: "it will create a new item in database and return a
		// key value to user").
		key = uuid.NewObjectId().Hex()
		created = true
	}
	err = g.pool.Do(r.Context(), func(ctx context.Context) error {
		return g.backend.Put(ctx, key, body)
	})
	if err != nil {
		g.fail(w, err)
		return
	}
	if g.cfg.Cache != nil {
		g.cfg.Cache.Set(key, body)
	}
	if created {
		w.WriteHeader(http.StatusCreated)
		fmt.Fprint(w, key)
		return
	}
	w.WriteHeader(http.StatusOK)
}

func (g *Gateway) handleDelete(w http.ResponseWriter, r *http.Request, key string) {
	if key == "" {
		http.Error(w, "missing key", http.StatusBadRequest)
		return
	}
	err := g.pool.Do(r.Context(), func(ctx context.Context) error {
		return g.backend.Delete(ctx, key)
	})
	if err != nil {
		g.fail(w, err)
		return
	}
	if g.cfg.Cache != nil {
		g.cfg.Cache.Delete(key)
	}
	w.WriteHeader(http.StatusOK)
}

func (g *Gateway) fail(w http.ResponseWriter, err error) {
	g.errs.Add(1)
	switch {
	case errors.Is(err, ErrNotFound):
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.Is(err, dispatch.ErrQueueFull), errors.Is(err, dispatch.ErrShed):
		// Overload: tell the client to back off briefly and retry — the
		// saturation that shed this request is usually transient.
		g.shed.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	case errors.Is(err, context.DeadlineExceeded):
		g.deadlineMisses.Add(1)
		w.Header().Set("Retry-After", "1")
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusBadGateway)
	}
}
