package rest

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mystore/internal/auth"
	"mystore/internal/cache"
)

// mapBackend is an in-memory Backend for gateway tests.
type mapBackend struct {
	mu   sync.Mutex
	data map[string][]byte
	gets int
}

func newMapBackend() *mapBackend { return &mapBackend{data: map[string][]byte{}} }

func (b *mapBackend) Put(_ context.Context, key string, val []byte) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.data[key] = append([]byte(nil), val...)
	return nil
}

func (b *mapBackend) Get(_ context.Context, key string) ([]byte, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.gets++
	v, ok := b.data[key]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	return v, nil
}

func (b *mapBackend) Delete(_ context.Context, key string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.data, key)
	return nil
}

func (b *mapBackend) getCount() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.gets
}

func newTestGateway(t *testing.T, cfg Config) (*Gateway, *mapBackend, *httptest.Server) {
	t.Helper()
	backend := newMapBackend()
	gw := NewGateway(backend, cfg)
	srv := httptest.NewServer(gw.Handler())
	t.Cleanup(func() { srv.Close(); gw.Close() })
	return gw, backend, srv
}

func TestCRUDOverHTTP(t *testing.T) {
	_, _, srv := newTestGateway(t, Config{})
	// POST with key.
	resp, err := http.Post(srv.URL+"/data/scene1", "application/octet-stream",
		strings.NewReader("xml-content"))
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("POST: %v, status %d", err, resp.StatusCode)
	}
	resp.Body.Close()
	// GET.
	resp, err = http.Get(srv.URL + "/data/scene1")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET: %v, status %d", err, resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "xml-content" {
		t.Fatalf("GET body = %q", body)
	}
	// DELETE.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/data/scene1", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: %v, status %d", err, resp.StatusCode)
	}
	resp.Body.Close()
	// GET now 404s.
	resp, _ = http.Get(srv.URL + "/data/scene1")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET after delete status = %d", resp.StatusCode)
	}
}

func TestPostWithoutKeyGeneratesOne(t *testing.T) {
	_, backend, srv := newTestGateway(t, Config{})
	resp, err := http.Post(srv.URL+"/data/", "application/octet-stream",
		strings.NewReader("payload"))
	if err != nil || resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST: %v, status %d", err, resp.StatusCode)
	}
	key, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if len(key) == 0 {
		t.Fatal("no key returned")
	}
	if v, err := backend.Get(context.Background(), string(key)); err != nil || string(v) != "payload" {
		t.Fatalf("backend missing generated key: %v", err)
	}
}

func TestCacheReadThrough(t *testing.T) {
	tier := cache.NewTier(2, 1<<20)
	_, backend, srv := newTestGateway(t, Config{Cache: tier})
	http.Post(srv.URL+"/data/k", "application/octet-stream", strings.NewReader("v")) //nolint:errcheck
	// First GET may hit cache already (write-through on POST).
	resp, _ := http.Get(srv.URL + "/data/k")
	io.ReadAll(resp.Body) //nolint:errcheck
	resp.Body.Close()
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("X-Cache = %q, want hit (write-through)", got)
	}
	if backend.getCount() != 0 {
		t.Fatalf("backend Get called %d times despite cache", backend.getCount())
	}
	// Evict by deleting from the tier, then GET misses and fills.
	tier.Delete("k")
	resp, _ = http.Get(srv.URL + "/data/k")
	io.ReadAll(resp.Body) //nolint:errcheck
	resp.Body.Close()
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("X-Cache = %q, want miss", got)
	}
	if backend.getCount() != 1 {
		t.Fatalf("backend Get count = %d", backend.getCount())
	}
	// And the next GET hits again.
	resp, _ = http.Get(srv.URL + "/data/k")
	io.ReadAll(resp.Body) //nolint:errcheck
	resp.Body.Close()
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("X-Cache after refill = %q", got)
	}
}

func TestDeleteInvalidatesCache(t *testing.T) {
	tier := cache.NewTier(1, 1<<20)
	_, _, srv := newTestGateway(t, Config{Cache: tier})
	http.Post(srv.URL+"/data/k", "application/octet-stream", strings.NewReader("v")) //nolint:errcheck
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/data/k", nil)
	http.DefaultClient.Do(req) //nolint:errcheck
	if _, ok := tier.Get("k"); ok {
		t.Fatal("cache still holds deleted key")
	}
}

func TestAuthRequired(t *testing.T) {
	db := auth.NewTokenDB(0)
	secret, _ := db.Register("alice")
	_, _, srv := newTestGateway(t, Config{Auth: db})

	// Unsigned request is rejected.
	resp, _ := http.Get(srv.URL + "/data/k")
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("unsigned GET status = %d, want 403", resp.StatusCode)
	}

	// Token endpoint issues tokens.
	resp, _ = http.Get(srv.URL + "/token?user=alice")
	tokenBytes, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	token := string(tokenBytes)
	if resp.StatusCode != http.StatusOK || token == "" {
		t.Fatalf("token endpoint status %d token %q", resp.StatusCode, token)
	}

	// Signed request passes.
	authorized, err := auth.AuthorizeURI("/data/k", token, secret)
	if err != nil {
		t.Fatal(err)
	}
	resp, _ = http.Post(srv.URL+authorized, "application/octet-stream", strings.NewReader("v"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("signed POST status = %d", resp.StatusCode)
	}

	// Token endpoint rejects unknown users.
	resp, _ = http.Get(srv.URL + "/token?user=mallory")
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("unknown user token status = %d", resp.StatusCode)
	}
}

func TestBodyTooLarge(t *testing.T) {
	_, _, srv := newTestGateway(t, Config{MaxBodyBytes: 10})
	resp, _ := http.Post(srv.URL+"/data/k", "application/octet-stream",
		bytes.NewReader(make([]byte, 100)))
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, _, srv := newTestGateway(t, Config{})
	req, _ := http.NewRequest(http.MethodPut, srv.URL+"/data/k", strings.NewReader("v"))
	resp, _ := http.DefaultClient.Do(req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d, want 405", resp.StatusCode)
	}
}

func TestMissingKeyRejected(t *testing.T) {
	_, _, srv := newTestGateway(t, Config{})
	resp, _ := http.Get(srv.URL + "/data/")
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("GET without key status = %d", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/data/", nil)
	resp, _ = http.DefaultClient.Do(req)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("DELETE without key status = %d", resp.StatusCode)
	}
}

func TestGatewayStats(t *testing.T) {
	gw, _, srv := newTestGateway(t, Config{Cache: cache.NewTier(1, 1<<20)})
	http.Post(srv.URL+"/data/k", "application/octet-stream", strings.NewReader("v")) //nolint:errcheck
	resp, _ := http.Get(srv.URL + "/data/k")
	resp.Body.Close()
	resp, _ = http.Get(srv.URL + "/data/absent")
	resp.Body.Close()
	st := gw.Stats()
	if st.Requests != 3 {
		t.Fatalf("Requests = %d, want 3", st.Requests)
	}
	if st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Fatalf("cache stats = %+v", st)
	}
	if st.Errors != 1 {
		t.Fatalf("Errors = %d (the 404)", st.Errors)
	}
}

func TestTokenEndpointWithoutAuth(t *testing.T) {
	_, _, srv := newTestGateway(t, Config{})
	resp, _ := http.Get(srv.URL + "/token?user=x")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("token endpoint without auth status = %d", resp.StatusCode)
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, _, srv := newTestGateway(t, Config{Cache: cache.NewTier(1, 1<<20)})
	http.Post(srv.URL+"/data/k", "application/octet-stream", strings.NewReader("v")) //nolint:errcheck
	resp, _ := http.Get(srv.URL + "/data/k")
	resp.Body.Close()
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /stats: %v / %d", err, resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	s := string(body)
	for _, want := range []string{`"requests":2`, `"cacheHits":1`, `"workers":`, `"completed":`} {
		if !strings.Contains(s, want) {
			t.Errorf("stats %s missing %q", s, want)
		}
	}
}

func TestConcurrentRequests(t *testing.T) {
	_, _, srv := newTestGateway(t, Config{Workers: 8, Cache: cache.NewTier(2, 1<<20)})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				key := fmt.Sprintf("k-%d-%d", w, i)
				resp, err := http.Post(srv.URL+"/data/"+key, "application/octet-stream",
					strings.NewReader("v"))
				if err != nil {
					t.Errorf("POST: %v", err)
					return
				}
				resp.Body.Close()
				resp, err = http.Get(srv.URL + "/data/" + key)
				if err != nil || resp.StatusCode != http.StatusOK {
					t.Errorf("GET: %v / %d", err, resp.StatusCode)
					return
				}
				resp.Body.Close()
			}
		}(w)
	}
	wg.Wait()
}

// blockingBackend parks every Get on a channel so a test can hold the single
// worker busy while more requests pile up in its queue.
type blockingBackend struct {
	mapBackend
	release chan struct{}
	entered chan struct{}
}

func (b *blockingBackend) Get(ctx context.Context, key string) ([]byte, error) {
	select {
	case b.entered <- struct{}{}:
	default:
	}
	<-b.release
	return b.mapBackend.Get(ctx, key)
}

func TestDeadlineShedAnswers503WithRetryAfter(t *testing.T) {
	backend := &blockingBackend{
		mapBackend: mapBackend{data: map[string][]byte{"k": []byte("v")}},
		release:    make(chan struct{}),
		entered:    make(chan struct{}, 1),
	}
	gw := NewGateway(backend, Config{Workers: 1, QueueDepth: 4, RequestTimeout: 50 * time.Millisecond})
	srv := httptest.NewServer(gw.Handler())
	defer func() { srv.Close(); close(backend.release); gw.Close() }()

	// Occupy the single worker.
	go http.Get(srv.URL + "/data/k") //nolint:errcheck
	<-backend.entered

	// This request queues behind the parked one and its 50ms gateway deadline
	// lapses in the backlog: the pool sheds it and the gateway answers 503
	// with a Retry-After hint.
	resp, err := http.Get(srv.URL + "/data/k")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("503 response missing Retry-After header")
	}
	st := gw.Stats()
	if st.Shed+st.DeadlineMisses == 0 {
		t.Fatalf("Stats = %+v, want a shed or deadline-miss recorded", st)
	}
}
