package uuid

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestNewObjectIdUnique(t *testing.T) {
	seen := make(map[ObjectId]bool)
	for i := 0; i < 10000; i++ {
		id := NewObjectId()
		if seen[id] {
			t.Fatalf("duplicate ObjectId after %d generations: %s", i, id)
		}
		seen[id] = true
	}
}

func TestNewObjectIdConcurrentUnique(t *testing.T) {
	const workers, per = 8, 2000
	var mu sync.Mutex
	seen := make(map[ObjectId]bool, workers*per)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]ObjectId, 0, per)
			for i := 0; i < per; i++ {
				local = append(local, NewObjectId())
			}
			mu.Lock()
			defer mu.Unlock()
			for _, id := range local {
				if seen[id] {
					t.Errorf("duplicate ObjectId under concurrency: %s", id)
					return
				}
				seen[id] = true
			}
		}()
	}
	wg.Wait()
}

func TestObjectIdTimestamp(t *testing.T) {
	at := time.Date(2013, 1, 31, 12, 0, 0, 0, time.UTC)
	id := NewObjectIdAt(at)
	if got := id.Timestamp().UTC(); !got.Equal(at) {
		t.Fatalf("Timestamp() = %v, want %v", got, at)
	}
}

func TestObjectIdHexRoundTrip(t *testing.T) {
	id := NewObjectId()
	parsed, err := ParseObjectId(id.Hex())
	if err != nil {
		t.Fatalf("ParseObjectId(%q): %v", id.Hex(), err)
	}
	if parsed != id {
		t.Fatalf("round trip changed id: %s != %s", parsed, id)
	}
}

func TestParseObjectIdErrors(t *testing.T) {
	for _, bad := range []string{"", "abc", strings.Repeat("z", 24), strings.Repeat("a", 23)} {
		if _, err := ParseObjectId(bad); err == nil {
			t.Errorf("ParseObjectId(%q) succeeded, want error", bad)
		}
	}
}

func TestObjectIdString(t *testing.T) {
	id := NewObjectId()
	s := id.String()
	if !strings.HasPrefix(s, `ObjectId("`) || !strings.HasSuffix(s, `")`) {
		t.Fatalf("String() = %q, want ObjectId(\"...\") form", s)
	}
}

func TestObjectIdIsZero(t *testing.T) {
	if !(ObjectId{}).IsZero() {
		t.Error("zero ObjectId not reported as zero")
	}
	if NewObjectId().IsZero() {
		t.Error("fresh ObjectId reported as zero")
	}
}

func TestUUIDVersionAndVariant(t *testing.T) {
	for i := 0; i < 100; i++ {
		u := NewUUID()
		if v := u[6] >> 4; v != 4 {
			t.Fatalf("UUID version = %d, want 4", v)
		}
		if u[8]&0xc0 != 0x80 {
			t.Fatalf("UUID variant bits = %08b, want 10xxxxxx", u[8])
		}
	}
}

func TestUUIDStringRoundTrip(t *testing.T) {
	u := NewUUID()
	s := u.String()
	if len(s) != 36 {
		t.Fatalf("String() length = %d, want 36", len(s))
	}
	parsed, err := ParseUUID(s)
	if err != nil {
		t.Fatalf("ParseUUID(%q): %v", s, err)
	}
	if parsed != u {
		t.Fatalf("round trip changed UUID: %s != %s", parsed, u)
	}
}

func TestParseUUIDErrors(t *testing.T) {
	for _, bad := range []string{"", "not-a-uuid", strings.Repeat("a", 36)} {
		if _, err := ParseUUID(bad); err == nil {
			t.Errorf("ParseUUID(%q) succeeded, want error", bad)
		}
	}
}

func TestUUIDUnique(t *testing.T) {
	seen := make(map[UUID]bool)
	for i := 0; i < 10000; i++ {
		u := NewUUID()
		if seen[u] {
			t.Fatalf("duplicate UUID after %d generations", i)
		}
		seen[u] = true
	}
}

func TestObjectIdHexPropertyRoundTrip(t *testing.T) {
	f := func(raw [12]byte) bool {
		id := ObjectId(raw)
		parsed, err := ParseObjectId(id.Hex())
		return err == nil && parsed == id
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
