package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"mystore/internal/bson"
	"mystore/internal/metrics"
	"mystore/internal/trace"
)

// TCP transport: each request is one length-prefixed BSON frame
// {"type","from","dl","body"} answered by one {"body"} or {"err"} frame. A
// small per-destination connection pool amortizes dials, mirroring the
// paper's connection-pool design for MongoDB access (§5.1): connections are
// created ahead of use, tested, reused and bounded.
//
// The "dl" element carries the caller's deadline as unix-nanos so the server
// can bound handler work by it and drop requests whose caller has already
// given up instead of doing work nobody will read (deadline propagation).

const maxFrame = 64 << 20

// TCPOptions tune a TCP transport.
type TCPOptions struct {
	// DialTimeout bounds connection establishment (the paper's
	// connecttimeoutms). Zero means 2s.
	DialTimeout time.Duration
	// CallTimeout bounds a full request/response exchange when the caller's
	// context carries no deadline (sockettimeoutms). Zero means 10s.
	CallTimeout time.Duration
	// MaxIdlePerHost bounds pooled idle connections per destination. Zero
	// means 4.
	MaxIdlePerHost int
	// DisablePool dials a fresh connection for every call, the behaviour
	// the paper's connection pool exists to avoid (§5.1); the ablation
	// bench measures the difference.
	DisablePool bool
	// DisableMux reverts to the one-call-per-connection mode: a call checks
	// a pooled connection out for its whole round trip. The default
	// multiplexed mode pipelines many in-flight calls over one connection
	// per peer (see mux.go). Kept for the write-path ablation bench.
	DisableMux bool
}

func (o TCPOptions) withDefaults() TCPOptions {
	if o.DialTimeout <= 0 {
		o.DialTimeout = 2 * time.Second
	}
	if o.CallTimeout <= 0 {
		o.CallTimeout = 10 * time.Second
	}
	if o.MaxIdlePerHost <= 0 {
		o.MaxIdlePerHost = 4
	}
	return o
}

// TCPTransport implements Transport over real sockets.
type TCPTransport struct {
	opts     TCPOptions
	listener net.Listener
	addr     string

	mu       sync.Mutex
	handler  Handler
	pools    map[string][]net.Conn
	muxConns map[string]*muxConn
	serving  map[net.Conn]struct{}
	closed   bool
	wg       sync.WaitGroup

	deadlineDropped atomic.Int64
	rpcLatency      *metrics.HistogramVec
	tracer          atomic.Pointer[trace.Collector]
}

// DeadlineDropped counts requests that arrived with their propagated
// deadline already expired and were answered with an error without invoking
// the handler.
func (t *TCPTransport) DeadlineDropped() int64 { return t.deadlineDropped.Load() }

// RPCLatency exposes the per-peer request/response latency histograms for
// registry registration.
func (t *TCPTransport) RPCLatency() *metrics.HistogramVec { return t.rpcLatency }

// SetTracer installs the node-local collector incoming requests join their
// on-wire trace ids against ("tr"/"sp" frame fields). Spans recorded here
// land in the collector's stray ring, correlated to the gateway's trace by
// id.
func (t *TCPTransport) SetTracer(c *trace.Collector) { t.tracer.Store(c) }

// ListenTCP starts a transport listening on addr ("host:port"; ":0" picks a
// free port — read the bound address back with Addr).
func ListenTCP(addr string, opts TCPOptions) (*TCPTransport, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen: %w", err)
	}
	t := &TCPTransport{
		opts:       opts.withDefaults(),
		listener:   ln,
		addr:       ln.Addr().String(),
		pools:      make(map[string][]net.Conn),
		muxConns:   make(map[string]*muxConn),
		serving:    make(map[net.Conn]struct{}),
		rpcLatency: metrics.NewHistogramVec(nil),
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr implements Transport.
func (t *TCPTransport) Addr() string { return t.addr }

// SetHandler implements Transport.
func (t *TCPTransport) SetHandler(h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handler = h
}

func (t *TCPTransport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.listener.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.serving[conn] = struct{}{}
		t.mu.Unlock()
		t.wg.Add(1)
		go t.serveConn(conn)
	}
}

func (t *TCPTransport) serveConn(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.serving, conn)
		t.mu.Unlock()
	}()
	// Mode sniff: a mux client opens with the "MUX1" magic; a legacy client's
	// first 4 bytes are a length prefix (first byte ≤ 0x03 under the 64 MiB
	// frame limit), so the two are unambiguous.
	var lead [4]byte
	if _, err := io.ReadFull(conn, lead[:]); err != nil {
		return
	}
	if string(lead[:]) == muxMagic {
		t.serveMux(conn)
		return
	}
	t.serveLegacy(conn, lead)
}

// serveLegacy answers one-frame-per-call clients; lead holds the already-read
// length prefix of the first request.
func (t *TCPTransport) serveLegacy(conn net.Conn, lead [4]byte) {
	frame, err := readFrameBody(conn, lead)
	for ; err == nil; frame, err = readFrame(conn) {
		resp := t.handleRequest(frame)
		if werr := writeFrame(conn, resp); werr != nil {
			return
		}
	}
}

// Call implements Transport.
func (t *TCPTransport) Call(ctx context.Context, to string, msg Message) (bson.D, error) {
	ctx, sp := trace.Start(ctx, "transport.call")
	sp.SetPeer(to)
	start := time.Now()
	body, err := t.call(ctx, to, msg)
	t.rpcLatency.With(to).ObserveDuration(time.Since(start))
	sp.End(err)
	return body, err
}

func (t *TCPTransport) call(ctx context.Context, to string, msg Message) (bson.D, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	t.mu.Unlock()

	deadline, hasDeadline := ctx.Deadline()
	if !hasDeadline {
		deadline = time.Now().Add(t.opts.CallTimeout)
	}

	if !t.opts.DisableMux {
		return t.callMux(ctx, to, msg, deadline)
	}

	conn, err := t.getConn(to)
	if err != nil {
		return nil, fmt.Errorf("%w: dial %s: %v", ErrUnreachable, to, err)
	}
	ok := false
	defer func() {
		if ok {
			t.putConn(to, conn)
		} else {
			conn.Close()
		}
	}()

	if err := conn.SetDeadline(deadline); err != nil {
		return nil, err
	}
	req := requestDoc(ctx, t.addr, msg, deadline)
	if err := writeFrame(conn, req); err != nil {
		return nil, classifyNetErr(err)
	}
	frame, err := readFrame(conn)
	if err != nil {
		return nil, classifyNetErr(err)
	}
	resp, err := bson.Unmarshal(frame)
	if err != nil {
		return nil, err
	}
	if msg, found := resp.Get("err"); found {
		s, _ := msg.(string)
		return nil, &RemoteError{Msg: s}
	}
	ok = true
	if b, found := resp.Get("body"); found {
		if body, isDoc := b.(bson.D); isDoc {
			return body, nil
		}
	}
	return nil, nil
}

func classifyNetErr(err error) error {
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		return fmt.Errorf("%w: %v", ErrTimeout, err)
	}
	return fmt.Errorf("%w: %v", ErrUnreachable, err)
}

func (t *TCPTransport) getConn(to string) (net.Conn, error) {
	if t.opts.DisablePool {
		return net.DialTimeout("tcp", to, t.opts.DialTimeout)
	}
	t.mu.Lock()
	pool := t.pools[to]
	if n := len(pool); n > 0 {
		conn := pool[n-1]
		t.pools[to] = pool[:n-1]
		t.mu.Unlock()
		return conn, nil
	}
	t.mu.Unlock()
	return net.DialTimeout("tcp", to, t.opts.DialTimeout)
}

func (t *TCPTransport) putConn(to string, conn net.Conn) {
	if t.opts.DisablePool {
		conn.Close()
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed || len(t.pools[to]) >= t.opts.MaxIdlePerHost {
		conn.Close()
		return
	}
	conn.SetDeadline(time.Time{}) //nolint:errcheck
	t.pools[to] = append(t.pools[to], conn)
}

// Close implements Transport: it stops the listener, drops pooled
// connections and waits for in-flight handlers.
func (t *TCPTransport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	for _, pool := range t.pools {
		for _, c := range pool {
			c.Close()
		}
	}
	t.pools = make(map[string][]net.Conn)
	muxConns := t.muxConns
	t.muxConns = make(map[string]*muxConn)
	// Force-close active server connections: an idle peer keeps its pooled
	// connection open, which would otherwise park serveConn in readFrame
	// forever.
	for c := range t.serving {
		c.Close()
	}
	t.mu.Unlock()
	// Fail outstanding multiplexed calls so their waiters return ErrClosed.
	for _, mc := range muxConns {
		mc.fail(ErrClosed)
	}
	err := t.listener.Close()
	t.wg.Wait()
	return err
}

// requestDoc builds the wire request document, carrying the call deadline
// as unix-nanos ("dl") so the server can abort work whose caller gave up,
// and the caller's trace identity ("tr" trace id, "sp" parent span id) so
// the server's spans correlate with the originating request.
func requestDoc(ctx context.Context, from string, msg Message, deadline time.Time) bson.D {
	req := bson.D{
		{Key: "type", Value: msg.Type},
		{Key: "from", Value: from},
	}
	if !deadline.IsZero() {
		req = append(req, bson.E{Key: "dl", Value: deadline.UnixNano()})
	}
	if id, span, ok := trace.Wire(ctx); ok {
		req = append(req,
			bson.E{Key: "tr", Value: int64(id)},
			bson.E{Key: "sp", Value: int64(span)})
	}
	if msg.Body != nil {
		req = append(req, bson.E{Key: "body", Value: msg.Body})
	}
	return req
}

func writeFrame(w io.Writer, doc bson.D) error {
	bufp := framePool.Get().(*[]byte)
	buf := append((*bufp)[:0], 0, 0, 0, 0)
	out, err := bson.AppendTo(buf, doc)
	if err != nil {
		framePool.Put(bufp)
		return err
	}
	binary.BigEndian.PutUint32(out[:4], uint32(len(out)-4))
	_, err = w.Write(out)
	*bufp = out[:0]
	framePool.Put(bufp)
	return err
}

func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	return readFrameBody(r, hdr)
}

// readFrameBody finishes reading a frame whose length prefix is already in
// hdr (the server's mode sniff consumes it before dispatching).
func readFrameBody(r io.Reader, hdr [4]byte) ([]byte, error) {
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	frame := make([]byte, n)
	if _, err := io.ReadFull(r, frame); err != nil {
		return nil, err
	}
	return frame, nil
}
