package transport

import (
	"encoding/binary"
	"testing"

	"mystore/internal/bson"
)

// poolTestDoc is shaped like a real replica-write request: a flat envelope
// with a nested flat body. Flat documents encode allocation-free through
// bson.AppendTo, which is what makes the pooled frame path zero-alloc.
func poolTestDoc() bson.D {
	return bson.D{
		{Key: "type", Value: "nwr.put.replica"},
		{Key: "from", Value: "127.0.0.1:7001"},
		{Key: "dl", Value: int64(1722945000000000000)},
		{Key: "body", Value: bson.D{
			{Key: "self-key", Value: "user:42"},
			{Key: "val", Value: []byte("payload-bytes-here")},
			{Key: "ver", Value: int64(7)},
			{Key: "deleted", Value: false},
		}},
	}
}

func TestAppendMuxFrame(t *testing.T) {
	doc := poolTestDoc()
	frame, err := appendMuxFrame(nil, 42, doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(frame) < muxHeaderSize {
		t.Fatalf("frame too short: %d", len(frame))
	}
	n := binary.BigEndian.Uint32(frame[0:4])
	rid := binary.BigEndian.Uint64(frame[4:12])
	if int(n) != len(frame)-muxHeaderSize {
		t.Fatalf("length header = %d, payload = %d", n, len(frame)-muxHeaderSize)
	}
	if rid != 42 {
		t.Fatalf("rid = %d, want 42", rid)
	}
	got, err := bson.Unmarshal(frame[muxHeaderSize:])
	if err != nil {
		t.Fatal(err)
	}
	if got.StringOr("type", "") != "nwr.put.replica" {
		t.Fatalf("round-trip type = %q", got.StringOr("type", ""))
	}

	// Appending to a non-empty buffer must leave the prefix intact and patch
	// the header at the frame's own offset.
	prefixed, err := appendMuxFrame(frame, 43, doc)
	if err != nil {
		t.Fatal(err)
	}
	if binary.BigEndian.Uint64(prefixed[len(frame)+4:len(frame)+12]) != 43 {
		t.Fatal("second frame's rid not at its own offset")
	}
}

// TestAppendMuxFrameZeroAlloc pins the hot-path guarantee the frame pool
// exists for: once the pooled buffer has grown to frame size, building a
// frame performs no allocations at all.
func TestAppendMuxFrameZeroAlloc(t *testing.T) {
	doc := poolTestDoc()
	buf := make([]byte, 0, 1024)
	allocs := testing.AllocsPerRun(100, func() {
		out, err := appendMuxFrame(buf[:0], 7, doc)
		if err != nil {
			t.Fatal(err)
		}
		buf = out[:0]
	})
	if allocs != 0 {
		t.Fatalf("appendMuxFrame allocated %.1f times per frame, want 0", allocs)
	}
}
