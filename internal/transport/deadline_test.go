package transport

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"mystore/internal/bson"
)

// TestDeadlineRidesTheWire checks that a client deadline is visible to the
// server-side handler's context, in both mux and legacy framing.
func TestDeadlineRidesTheWire(t *testing.T) {
	for _, mode := range []struct {
		name string
		opts TCPOptions
	}{
		{"mux", TCPOptions{}},
		{"legacy", TCPOptions{DisableMux: true}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			srv, err := ListenTCP("127.0.0.1:0", TCPOptions{})
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			var sawDeadline atomic.Int64
			srv.SetHandler(func(ctx context.Context, msg Message) (bson.D, error) {
				if dl, ok := ctx.Deadline(); ok {
					sawDeadline.Store(dl.UnixNano())
				}
				return bson.D{{Key: "ok", Value: true}}, nil
			})

			cli, err := ListenTCP("127.0.0.1:0", mode.opts)
			if err != nil {
				t.Fatal(err)
			}
			defer cli.Close()

			want := time.Now().Add(3 * time.Second)
			ctx, cancel := context.WithDeadline(context.Background(), want)
			defer cancel()
			if _, err := cli.Call(ctx, srv.Addr(), Message{Type: "t"}); err != nil {
				t.Fatalf("call: %v", err)
			}
			got := time.Unix(0, sawDeadline.Load())
			if got.IsZero() || got.Sub(want) > time.Millisecond || want.Sub(got) > time.Millisecond {
				t.Fatalf("handler deadline = %v, want %v", got, want)
			}
		})
	}
}

// TestExpiredDeadlineDroppedServerSide exercises the server-side shed: a
// request arriving with its "dl" already in the past is answered with an
// error without invoking the handler.
func TestExpiredDeadlineDroppedServerSide(t *testing.T) {
	srv, err := ListenTCP("127.0.0.1:0", TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var invoked atomic.Int64
	srv.SetHandler(func(ctx context.Context, msg Message) (bson.D, error) {
		invoked.Add(1)
		return nil, nil
	})

	// Drive handleRequest directly with a stale deadline; going through a
	// live socket would race the client's own deadline check.
	payload, err := bson.Marshal(bson.D{
		{Key: "type", Value: "t"},
		{Key: "from", Value: "tester"},
		{Key: "dl", Value: time.Now().Add(-time.Second).UnixNano()},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp := srv.handleRequest(payload)
	emsg, ok := resp.Get("err")
	if !ok || !strings.Contains(emsg.(string), deadlineExpiredMsg) {
		t.Fatalf("response = %v, want deadline-expired error", resp)
	}
	if invoked.Load() != 0 {
		t.Fatal("handler must not run for an expired request")
	}
	if srv.DeadlineDropped() != 1 {
		t.Fatalf("DeadlineDropped = %d, want 1", srv.DeadlineDropped())
	}
}

// TestMemExpiredDeadlineDropped checks the simulated transport applies the
// same policy: an expired caller context never reaches the handler.
func TestMemExpiredDeadlineDropped(t *testing.T) {
	net := NewMemNetwork()
	a, err := net.Endpoint("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := net.Endpoint("b")
	if err != nil {
		t.Fatal(err)
	}
	var invoked atomic.Int64
	b.SetHandler(func(ctx context.Context, msg Message) (bson.D, error) {
		invoked.Add(1)
		return nil, nil
	})

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the caller has already given up
	_, err = a.Call(ctx, "b", Message{Type: "t"})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if invoked.Load() != 0 {
		t.Fatal("handler must not run for an expired request")
	}
	if b.DeadlineDropped() != 1 {
		t.Fatalf("DeadlineDropped = %d, want 1", b.DeadlineDropped())
	}

	// A live context still goes through.
	if _, err := a.Call(context.Background(), "b", Message{Type: "t"}); err != nil {
		t.Fatalf("live call: %v", err)
	}
	if invoked.Load() != 1 {
		t.Fatalf("handler invocations = %d, want 1", invoked.Load())
	}
}
