package transport

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"mystore/internal/bson"
)

// TestMuxSharesOneConnection: many concurrent calls to one peer must ride a
// single multiplexed connection, not one connection each.
func TestMuxSharesOneConnection(t *testing.T) {
	a, b := tcpPair(t)
	b.SetHandler(func(ctx context.Context, msg Message) (bson.D, error) {
		time.Sleep(10 * time.Millisecond) // hold calls in flight together
		return bson.D{}, nil
	})
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := a.Call(context.Background(), b.Addr(), Message{Type: "x"}); err != nil {
				t.Errorf("call: %v", err)
			}
		}()
	}
	wg.Wait()
	b.mu.Lock()
	conns := len(b.serving)
	b.mu.Unlock()
	if conns != 1 {
		t.Fatalf("server sees %d connections from one mux peer, want 1", conns)
	}
	a.mu.Lock()
	muxes := len(a.muxConns)
	a.mu.Unlock()
	if muxes != 1 {
		t.Fatalf("client holds %d mux conns, want 1", muxes)
	}
}

// TestMuxSlowCallDoesNotBlockOthers: a slow handler must not head-of-line
// block pipelined calls sharing the connection.
func TestMuxSlowCallDoesNotBlockOthers(t *testing.T) {
	a, b := tcpPair(t)
	release := make(chan struct{})
	b.SetHandler(func(ctx context.Context, msg Message) (bson.D, error) {
		if msg.Type == "slow" {
			<-release
		}
		return bson.D{{Key: "t", Value: msg.Type}}, nil
	})
	slowDone := make(chan error, 1)
	go func() {
		_, err := a.Call(context.Background(), b.Addr(), Message{Type: "slow"})
		slowDone <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the slow call get in flight first
	start := time.Now()
	if _, err := a.Call(context.Background(), b.Addr(), Message{Type: "fast"}); err != nil {
		t.Fatalf("fast call: %v", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("fast call took %v behind a stalled slow call", d)
	}
	close(release)
	if err := <-slowDone; err != nil {
		t.Fatalf("slow call: %v", err)
	}
}

// TestMuxTimeoutLeavesConnectionUsable: a timed-out call abandons its
// request id; the connection keeps serving later calls, and the late
// response is dropped rather than delivered to the wrong caller.
func TestMuxTimeoutLeavesConnectionUsable(t *testing.T) {
	a, b := tcpPair(t)
	b.SetHandler(func(ctx context.Context, msg Message) (bson.D, error) {
		if msg.Type == "slow" {
			time.Sleep(80 * time.Millisecond)
		}
		return bson.D{{Key: "t", Value: msg.Type}}, nil
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := a.Call(ctx, b.Addr(), Message{Type: "slow"}); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	for i := 0; i < 5; i++ {
		resp, err := a.Call(context.Background(), b.Addr(), Message{Type: "ok"})
		if err != nil {
			t.Fatalf("call after timeout: %v", err)
		}
		if resp.StringOr("t", "") != "ok" {
			t.Fatalf("resp = %s (late response cross-delivered?)", resp)
		}
	}
}

// TestMuxReconnectsAfterPeerRestart: a broken mux connection is dropped and
// the next call redials.
func TestMuxReconnectsAfterPeerRestart(t *testing.T) {
	a, err := ListenTCP("127.0.0.1:0", TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenTCP("127.0.0.1:0", TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b.SetHandler(echoHandler)
	addr := b.Addr()
	if _, err := a.Call(context.Background(), addr, Message{Type: "x"}); err != nil {
		t.Fatalf("first call: %v", err)
	}
	b.Close()
	// The next call may race the close teardown; it must fail unreachable,
	// not hang.
	if _, err := a.Call(context.Background(), addr, Message{Type: "x"}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("call to closed peer: %v, want ErrUnreachable", err)
	}
	// Restart a listener on the same address and verify the client recovers.
	c, err := ListenTCP(addr, TCPOptions{})
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer c.Close()
	c.SetHandler(echoHandler)
	if _, err := a.Call(context.Background(), addr, Message{Type: "x"}); err != nil {
		t.Fatalf("call after peer restart: %v", err)
	}
}

// TestMuxLegacyInterop: a DisableMux client must interoperate with a default
// (mux-capable) server via the length-prefix sniff, and vice versa.
func TestMuxLegacyInterop(t *testing.T) {
	legacy, err := ListenTCP("127.0.0.1:0", TCPOptions{DisableMux: true})
	if err != nil {
		t.Fatal(err)
	}
	defer legacy.Close()
	legacy.SetHandler(echoHandler)
	modern, err := ListenTCP("127.0.0.1:0", TCPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer modern.Close()
	modern.SetHandler(echoHandler)

	// Legacy client -> mux-capable server.
	resp, err := legacy.Call(context.Background(), modern.Addr(), Message{Type: "ping"})
	if err != nil {
		t.Fatalf("legacy->modern: %v", err)
	}
	if resp.StringOr("echo", "") != "ping" {
		t.Fatalf("legacy->modern resp = %s", resp)
	}
	// Mux client -> legacy-mode server (serves both wire formats).
	resp, err = modern.Call(context.Background(), legacy.Addr(), Message{Type: "pong"})
	if err != nil {
		t.Fatalf("modern->legacy: %v", err)
	}
	if resp.StringOr("echo", "") != "pong" {
		t.Fatalf("modern->legacy resp = %s", resp)
	}
}

// TestMuxManyConcurrent hammers one connection with pipelined calls and
// verifies every response reaches its own caller (bodies must match).
func TestMuxManyConcurrent(t *testing.T) {
	a, b := tcpPair(t)
	b.SetHandler(func(ctx context.Context, msg Message) (bson.D, error) {
		v, _ := msg.Body.Get("n")
		return bson.D{{Key: "n2", Value: v.(int64) * 2}}, nil
	})
	var wg sync.WaitGroup
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				n := int64(w*1000 + i)
				resp, err := a.Call(context.Background(), b.Addr(), Message{
					Type: "double",
					Body: bson.D{{Key: "n", Value: n}},
				})
				if err != nil {
					t.Errorf("call: %v", err)
					return
				}
				if v, _ := resp.Get("n2"); v != n*2 {
					t.Errorf("resp for %d = %v (cross-delivered response)", n, v)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func BenchmarkTCPCallMux(b *testing.B) {
	srv, err := ListenTCP("127.0.0.1:0", TCPOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	srv.SetHandler(echoHandler)
	cli, err := ListenTCP("127.0.0.1:0", TCPOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer cli.Close()
	ctx := context.Background()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := cli.Call(ctx, srv.Addr(), Message{Type: "ping"}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkTCPCallLegacy(b *testing.B) {
	srv, err := ListenTCP("127.0.0.1:0", TCPOptions{DisableMux: true})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	srv.SetHandler(echoHandler)
	cli, err := ListenTCP("127.0.0.1:0", TCPOptions{DisableMux: true})
	if err != nil {
		b.Fatal(err)
	}
	defer cli.Close()
	ctx := context.Background()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := cli.Call(ctx, srv.Addr(), Message{Type: "ping"}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
