// Package transport carries MyStore's inter-node messages. It plays the
// role Netty plays in the paper (§5.1): an asynchronous, event-driven
// message framework the storage module's processes sit on.
//
// Two implementations share one interface:
//
//   - MemNetwork: an in-memory simulated network with configurable latency
//     and pluggable fault injection, used by the experiments so that the
//     paper's failure scenarios (Table 2) are deterministic and
//     laptop-scale.
//   - TCP: length-prefixed BSON frames over real sockets, with a tested
//     connection pool, used by the cmd/ binaries.
package transport

import (
	"context"
	"errors"
	"fmt"

	"mystore/internal/bson"
	"mystore/internal/metrics"
)

// Message is one request travelling between nodes.
type Message struct {
	// Type routes the message to a handler, e.g. "store.put" or
	// "gossip.syn".
	Type string
	// From is the sender's address, so handlers can reply out of band
	// (gossip) or record provenance (hints).
	From string
	// Body is the payload.
	Body bson.D
}

// Handler processes one request and returns a response body. Returning an
// error delivers a RemoteError to the caller.
type Handler func(ctx context.Context, msg Message) (bson.D, error)

// Transport is one node's attachment to the network.
type Transport interface {
	// Addr returns this endpoint's address.
	Addr() string
	// Call sends msg to the endpoint at 'to' and waits for its response.
	Call(ctx context.Context, to string, msg Message) (bson.D, error)
	// SetHandler installs the request handler. It must be set before the
	// endpoint receives traffic.
	SetHandler(h Handler)
	// Close detaches the endpoint; subsequent calls to it fail with
	// ErrUnreachable.
	Close() error
}

// Instrumented is the optional interface both built-in transports satisfy;
// the cluster layer uses it to register per-peer RPC latency and
// deadline-drop counters without knowing the concrete type.
type Instrumented interface {
	// RPCLatency holds one request/response latency histogram per peer
	// address this endpoint has called.
	RPCLatency() *metrics.HistogramVec
	// DeadlineDropped counts requests dropped on arrival because the
	// caller's propagated deadline had already expired.
	DeadlineDropped() int64
}

// Errors surfaced by transports. ErrUnreachable covers refused connections,
// partitions and closed endpoints — the paper's "network exception". Use
// errors.Is to classify.
var (
	ErrUnreachable = errors.New("transport: endpoint unreachable")
	ErrTimeout     = errors.New("transport: call timed out")
	ErrClosed      = errors.New("transport: endpoint closed")
	ErrNoHandler   = errors.New("transport: endpoint has no handler")
)

// deadlineExpiredMsg is the remote-error text a server answers with when a
// request's propagated deadline had already passed on arrival.
const deadlineExpiredMsg = "caller deadline expired before handling"

// RemoteError wraps an error returned by the remote handler; the call
// itself succeeded at the network layer.
type RemoteError struct {
	Msg string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("transport: remote error: %s", e.Msg)
}

// IsRemote reports whether err originated in the remote handler rather than
// the network.
func IsRemote(err error) bool {
	var re *RemoteError
	return errors.As(err, &re)
}
