package transport

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"mystore/internal/bson"
	"mystore/internal/metrics"
	"mystore/internal/trace"
)

// MemNetwork is an in-memory network of endpoints. Calls run the remote
// handler in the caller's goroutine after an optional simulated latency;
// a pluggable fault hook can fail or delay individual messages, which is
// how the failure-injection framework (internal/faults) reaches the wire.
type MemNetwork struct {
	mu        sync.RWMutex
	endpoints map[string]*MemTransport
	latency   func(from, to string, size int) time.Duration
	fault     func(from, to, msgType string) error
	partition map[[2]string]bool
}

// NewMemNetwork returns an empty network with zero latency and no faults.
func NewMemNetwork() *MemNetwork {
	return &MemNetwork{
		endpoints: make(map[string]*MemTransport),
		partition: make(map[[2]string]bool),
	}
}

// SetLatencyModel installs fn to compute one-way delivery latency per
// message. A nil fn means zero latency. size is the encoded body size.
func (n *MemNetwork) SetLatencyModel(fn func(from, to string, size int) time.Duration) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.latency = fn
}

// ConstantLatency is a convenience model: the same one-way delay for every
// message.
func ConstantLatency(d time.Duration) func(string, string, int) time.Duration {
	return func(string, string, int) time.Duration { return d }
}

// LANLatency models the paper's gigabit-switch testbed: a fixed per-message
// overhead plus transmission time at the given bytes/sec.
func LANLatency(base time.Duration, bytesPerSec float64) func(string, string, int) time.Duration {
	return func(_, _ string, size int) time.Duration {
		if bytesPerSec <= 0 {
			return base
		}
		return base + time.Duration(float64(size)/bytesPerSec*float64(time.Second))
	}
}

// SetFault installs a hook invoked for every message before delivery; a
// non-nil return fails the call with that error. A nil hook clears it.
func (n *MemNetwork) SetFault(fn func(from, to, msgType string) error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.fault = fn
}

// Partition severs both directions between a and b until Heal.
func (n *MemNetwork) Partition(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partition[[2]string{a, b}] = true
	n.partition[[2]string{b, a}] = true
}

// Heal restores connectivity between a and b.
func (n *MemNetwork) Heal(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.partition, [2]string{a, b})
	delete(n.partition, [2]string{b, a})
}

// Endpoint attaches a new endpoint at addr. Attaching an existing address
// returns an error (addresses identify nodes).
func (n *MemNetwork) Endpoint(addr string) (*MemTransport, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.endpoints[addr]; ok {
		return nil, fmt.Errorf("transport: address %q already attached", addr)
	}
	t := &MemTransport{net: n, addr: addr, rpcLatency: metrics.NewHistogramVec(nil)}
	n.endpoints[addr] = t
	return t, nil
}

// Addresses lists attached endpoints (tests and tooling).
func (n *MemNetwork) Addresses() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]string, 0, len(n.endpoints))
	for a := range n.endpoints {
		out = append(out, a)
	}
	return out
}

func (n *MemNetwork) deliver(ctx context.Context, from string, to string, msg Message) (bson.D, error) {
	n.mu.RLock()
	target, ok := n.endpoints[to]
	cut := n.partition[[2]string{from, to}]
	fault := n.fault
	latency := n.latency
	n.mu.RUnlock()

	if fault != nil {
		if err := fault(from, to, msg.Type); err != nil {
			return nil, fmt.Errorf("%w: %s -> %s: %v", ErrUnreachable, from, to, err)
		}
	}
	if !ok || cut {
		return nil, fmt.Errorf("%w: %s -> %s", ErrUnreachable, from, to)
	}
	if latency != nil {
		size := 0
		if msg.Body != nil {
			if enc, err := bson.Marshal(msg.Body); err == nil {
				size = len(enc)
			}
		}
		// Request-path latency here; response-path latency is applied in
		// handle once the response size is known.
		if err := sleepCtx(ctx, latency(from, to, size)); err != nil {
			return nil, err
		}
	}
	return target.handle(ctx, msg, latency, from)
}

func (t *MemTransport) handle(ctx context.Context, msg Message, latency func(string, string, int) time.Duration, from string) (bson.D, error) {
	t.mu.RLock()
	h := t.handler
	closed := t.closed
	t.mu.RUnlock()
	if closed {
		return nil, fmt.Errorf("%w: %s", ErrUnreachable, t.addr)
	}
	if h == nil {
		return nil, fmt.Errorf("%w: %s", ErrNoHandler, t.addr)
	}
	// Deadline propagation: the caller's context reaches this handler
	// directly, so mirror the TCP server's policy — if the caller has
	// already given up, drop the request instead of doing wasted work.
	if ctx.Err() != nil {
		t.deadlineDropped.Add(1)
		return nil, fmt.Errorf("%w: %s: %s", ErrTimeout, t.addr, deadlineExpiredMsg)
	}
	resp, err := h(ctx, msg)
	if err != nil {
		return nil, &RemoteError{Msg: err.Error()}
	}
	if latency != nil {
		size := 0
		if resp != nil {
			if enc, mErr := bson.Marshal(resp); mErr == nil {
				size = len(enc)
			}
		}
		if err := sleepCtx(ctx, latency(t.addr, from, size)); err != nil {
			return nil, err
		}
	}
	return resp, nil
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("%w: %v", ErrTimeout, ctx.Err())
	}
}

// MemTransport is one endpoint on a MemNetwork.
type MemTransport struct {
	mu      sync.RWMutex
	net     *MemNetwork
	addr    string
	handler Handler
	closed  bool

	deadlineDropped atomic.Int64
	rpcLatency      *metrics.HistogramVec
}

// DeadlineDropped counts requests dropped because the caller's deadline had
// already expired when they reached this endpoint's handler.
func (t *MemTransport) DeadlineDropped() int64 { return t.deadlineDropped.Load() }

// RPCLatency exposes the per-peer request/response latency histograms for
// registry registration.
func (t *MemTransport) RPCLatency() *metrics.HistogramVec { return t.rpcLatency }

// Addr implements Transport.
func (t *MemTransport) Addr() string { return t.addr }

// SetHandler implements Transport.
func (t *MemTransport) SetHandler(h Handler) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.handler = h
}

// Call implements Transport. The remote handler runs in this goroutine with
// this context, so the caller's trace (and collector) flows to the remote
// side without any wire encoding.
func (t *MemTransport) Call(ctx context.Context, to string, msg Message) (bson.D, error) {
	t.mu.RLock()
	closed := t.closed
	t.mu.RUnlock()
	if closed {
		return nil, ErrClosed
	}
	ctx, sp := trace.Start(ctx, "transport.call")
	sp.SetPeer(to)
	msg.From = t.addr
	start := time.Now()
	body, err := t.net.deliver(ctx, t.addr, to, msg)
	t.rpcLatency.With(to).ObserveDuration(time.Since(start))
	sp.End(err)
	return body, err
}

// Close implements Transport. The address remains reserved (a restarted
// node re-attaches via Reopen).
func (t *MemTransport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.closed = true
	return nil
}

// Reopen re-attaches a closed endpoint, simulating a node process restart.
func (t *MemTransport) Reopen() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.closed = false
}

// Closed reports whether the endpoint is detached.
func (t *MemTransport) Closed() bool {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.closed
}
